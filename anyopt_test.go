package anyopt

import (
	"math/rand"
	"testing"
	"time"

	"anyopt/internal/core/predict"
)

// sharedSystem amortizes the discovery campaign across facade tests.
var sharedSystem *System

func getSystem(t *testing.T) *System {
	t.Helper()
	if sharedSystem != nil {
		return sharedSystem
	}
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	sharedSystem = sys
	return sys
}

func TestNewValidatesParams(t *testing.T) {
	opts := DefaultOptions()
	opts.Topology.NumTier1 = 0
	if _, err := New(opts); err == nil {
		t.Error("invalid topology params accepted")
	}
}

func TestDiscoveryRequired(t *testing.T) {
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PredictCatchments(Config{1}); err == nil {
		t.Error("prediction before discovery succeeded")
	}
	if _, _, err := sys.PredictMeanRTT(Config{1}); err == nil {
		t.Error("mean RTT before discovery succeeded")
	}
	if _, err := sys.Optimize(4, 0); err == nil {
		t.Error("optimize before discovery succeeded")
	}
	if _, err := sys.GreedyConfig(4); err == nil {
		t.Error("greedy before discovery succeeded")
	}
}

func TestEndToEndOptimizeBeatsBaselines(t *testing.T) {
	sys := getSystem(t)
	const k = 6

	opt, err := sys.Optimize(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Config) != k {
		t.Fatalf("optimized config %v has %d sites", opt.Config, len(opt.Config))
	}
	if opt.OrderableClients < 200 {
		t.Errorf("only %d orderable clients", opt.OrderableClients)
	}

	greedy, err := sys.GreedyConfig(k)
	if err != nil {
		t.Fatal(err)
	}
	random, err := sys.RandomConfig(k, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}

	measure := func(cfg Config) time.Duration {
		_, rtts := sys.MeasureConfiguration(cfg)
		mean, n := predict.MeasuredMeanRTT(rtts)
		if n == 0 {
			t.Fatalf("config %v: no measurements", cfg)
		}
		return mean
	}
	mOpt := measure(opt.Config)
	mGreedy := measure(greedy)
	mRandom := measure(random)
	t.Logf("measured means: anyopt=%v greedy=%v random=%v (predicted %v)",
		mOpt, mGreedy, mRandom, opt.PredictedMean)

	// §5.3's headline: the optimizer's config beats greedy-by-unicast and
	// random on the deployed network (small tolerance for noise).
	if float64(mOpt) > float64(mGreedy)*1.02 {
		t.Errorf("anyopt (%v) did not beat greedy (%v)", mOpt, mGreedy)
	}
	if float64(mOpt) > float64(mRandom)*1.02 {
		t.Errorf("anyopt (%v) did not beat random (%v)", mOpt, mRandom)
	}
}

func TestPredictionMatchesDeployment(t *testing.T) {
	sys := getSystem(t)
	cfg := Config{1, 3, 4, 5, 6, 10}
	predicted, err := sys.PredictCatchments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	measured, _ := sys.MeasureConfiguration(cfg)
	acc, n := predict.Accuracy(predicted, measured)
	if n < 100 {
		t.Fatalf("only %d comparable clients", n)
	}
	if acc < 0.85 {
		t.Errorf("catchment accuracy %.3f below 0.85", acc)
	}
}

func TestAllSitesAndPeers(t *testing.T) {
	sys := getSystem(t)
	all := sys.AllSitesConfig()
	if len(all) != 15 {
		t.Errorf("all-sites config has %d sites", len(all))
	}
	seen := map[int]bool{}
	for _, id := range all {
		if seen[id] {
			t.Errorf("duplicate site %d in all-sites config", id)
		}
		seen[id] = true
	}
	if got := len(sys.AllPeerLinks()); got != 104 {
		t.Errorf("peer links = %d, want 104", got)
	}
}

func TestOnePassPeeringViaFacade(t *testing.T) {
	sys := getSystem(t)
	base := Config{1, 3, 4, 5, 6, 10}
	peers := sys.AllPeerLinks()[:10]
	res := sys.OnePassPeering(base, peers)
	if len(res.Reports) != 10 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	if res.BaselineMean <= 0 {
		t.Error("no baseline")
	}
}

func TestOptimizeWithBudget(t *testing.T) {
	sys := getSystem(t)
	res, err := sys.Optimize(0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubsetsEvaluated > 500 {
		t.Errorf("budget exceeded: %d", res.SubsetsEvaluated)
	}
	if len(res.Config) == 0 {
		t.Error("empty config from budgeted search")
	}
}

func TestExperimentsCounter(t *testing.T) {
	sys := getSystem(t)
	before := sys.Experiments()
	sys.MeasureConfiguration(Config{1})
	if sys.Experiments() != before+1 {
		t.Errorf("experiment counter did not advance")
	}
}

func TestOptimizeLoadAware(t *testing.T) {
	sys := getSystem(t)
	loads := map[Client]float64{}
	var total float64
	for _, tg := range sys.Topo.Targets {
		loads[Client(tg.AS)] = 1
		total++
	}
	const k = 6

	// Without caps, load-aware matches plain optimize on uniform loads.
	free, err := sys.OptimizeLoadAware(k, 0, loads, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Optimize(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if free.PredictedMean != plain.PredictedMean {
		t.Errorf("uniform load-aware mean %v != plain %v", free.PredictedMean, plain.PredictedMean)
	}

	// Find the hottest site under the free optimum and cap below its load:
	// the capped optimum must respect the cap and cannot be better.
	freeLoads, err := sys.PredictSiteLoads(free.Config, loads)
	if err != nil {
		t.Fatal(err)
	}
	hottest := 0.0
	for _, l := range freeLoads {
		if l > hottest {
			hottest = l
		}
	}
	if hottest <= total/float64(k) {
		t.Skip("free optimum already balanced; nothing to cap")
	}
	caps := map[int]float64{}
	for _, s := range sys.TB.Sites {
		caps[s.ID] = hottest * 0.9
	}
	capped, err := sys.OptimizeLoadAware(k, 0, loads, caps)
	if err != nil {
		t.Skipf("cap at 90%% of hotspot infeasible: %v", err)
	}
	if capped.PredictedMean < free.PredictedMean {
		t.Errorf("capped optimum %v beat the unconstrained one %v", capped.PredictedMean, free.PredictedMean)
	}
	cappedLoads, err := sys.PredictSiteLoads(capped.Config, loads)
	if err != nil {
		t.Fatal(err)
	}
	for site, l := range cappedLoads {
		if l > caps[site]+1e-9 {
			t.Errorf("site %d load %.0f exceeds cap %.0f", site, l, caps[site])
		}
	}
}

func TestPredictSiteLoadsWeighted(t *testing.T) {
	sys := getSystem(t)
	cfg := Config{1, 6}
	uniform, err := sys.PredictSiteLoads(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var totalU float64
	for _, l := range uniform {
		totalU += l
	}
	predicted, _ := sys.PredictCatchments(cfg)
	if int(totalU) != len(predicted) {
		t.Errorf("uniform loads sum %.0f != %d predicted clients", totalU, len(predicted))
	}
	// Doubling every client's load doubles every site's.
	loads := map[Client]float64{}
	for c := range predicted {
		loads[c] = 2
	}
	doubled, err := sys.PredictSiteLoads(cfg, loads)
	if err != nil {
		t.Fatal(err)
	}
	for site, l := range doubled {
		if l != 2*uniform[site] {
			t.Errorf("site %d: %v != 2×%v", site, l, uniform[site])
		}
	}
}

func TestOptimizeExcluding(t *testing.T) {
	sys := getSystem(t)
	full, err := sys.Optimize(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Exclude the first site of the unrestricted optimum.
	excluded := full.Config[0]
	res, err := sys.OptimizeExcluding(0, 0, excluded)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Config {
		if id == excluded {
			t.Fatalf("excluded site %d present in %v", excluded, res.Config)
		}
	}
	if res.PredictedMean < full.PredictedMean {
		t.Errorf("restricted optimum %v beat the unrestricted one %v", res.PredictedMean, full.PredictedMean)
	}
	if _, err := sys.OptimizeExcluding(0, 0, 99); err == nil {
		t.Error("unknown site excluded without error")
	}
}

func TestOptimizeWithAnytimeMatchesExact(t *testing.T) {
	sys := getSystem(t)
	exact, err := sys.Optimize(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A time budget routes the same search to the anytime solver; on the
	// paper-scale testbed it must land on the same optimum.
	any, err := sys.OptimizeWith(OptimizeOptions{
		K: 6, TimeBudget: 2 * time.Second, Restarts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if any.PredictedMean != exact.PredictedMean {
		t.Errorf("anytime mean %v, exact optimum %v", any.PredictedMean, exact.PredictedMean)
	}
	if len(any.Config) != 6 {
		t.Errorf("anytime config %v, want 6 sites", any.Config)
	}
	if any.Evals == 0 {
		t.Error("anytime path reported no evals")
	}

	// Exclusion carries through the anytime path too.
	excl, err := sys.OptimizeWith(OptimizeOptions{
		K: 6, TimeBudget: time.Second, Exclude: []int{any.Config[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range excl.Config {
		if id == any.Config[0] {
			t.Errorf("excluded site %d present in %v", id, excl.Config)
		}
	}
}

func TestWarmOptimizerAcrossGenerations(t *testing.T) {
	sys := getSystem(t)
	snap := sys.CurrentSnapshot()
	w := NewWarmOptimizer()
	opts := OptimizeOptions{K: 6, TimeBudget: time.Second}
	res1, raw1, err := w.Reoptimize(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if raw1.Patched != 0 {
		t.Errorf("cold solve reported %d patched clients", raw1.Patched)
	}
	if w.Gen() != snap.Gen {
		t.Errorf("gen %d, want %d", w.Gen(), snap.Gen)
	}
	// Same generation: continue refining; result stays at the optimum.
	res2, _, err := w.Reoptimize(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PredictedMean != res1.PredictedMean {
		t.Errorf("same-gen re-solve moved the optimum: %v vs %v", res2.PredictedMean, res1.PredictedMean)
	}
	// Republishing the identical campaign bumps the generation with zero
	// client churn: the warm path patches nothing and keeps the optimum.
	snap2 := sys.InstallCampaign(snap.Pred, snap.RTT, snap.AnnOrder, snap.Experiments, snap.Quarantined)
	res3, raw3, err := w.Reoptimize(snap2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if raw3.Patched != 0 {
		t.Errorf("no-churn republish patched %d clients", raw3.Patched)
	}
	if res3.PredictedMean != res1.PredictedMean {
		t.Errorf("no-churn republish moved the optimum: %v vs %v", res3.PredictedMean, res1.PredictedMean)
	}
	if w.Gen() != snap2.Gen {
		t.Errorf("gen %d, want %d", w.Gen(), snap2.Gen)
	}
}
