package anyopt

// Anytime optimization facade: routes configuration search to the right
// SPLPO solver. Paper-scale testbeds (≤63 sites) keep the exact bitmask
// solvers; larger networks — or any caller with a wall-clock budget — use
// the anytime link-guided local search, optionally as parallel multi-start
// through internal/exec. Warm-restart re-optimization across campaign
// snapshots lives here too, keyed to the snapshot generation counter.

import (
	"fmt"
	"time"

	"anyopt/internal/core/splpo"
	"anyopt/internal/exec"
)

// OptimizeOptions configures OptimizeWith.
type OptimizeOptions struct {
	// K restricts the search to exactly K open sites (0 = any size).
	K int
	// MaxSubsets bounds the exhaustive enumeration on bitmask-scale
	// networks (0 = unlimited). Ignored by the anytime solver, whose budget
	// is TimeBudget.
	MaxSubsets int
	// Exclude lists site IDs the configuration must avoid.
	Exclude []int
	// TimeBudget, when positive, runs the anytime solver under a wall-clock
	// deadline even on bitmask-scale networks — the operational "give me the
	// best configuration you can find in 200ms" knob. Zero keeps the exact
	// solvers on small networks; networks past 63 sites always use the
	// anytime solver (with a generous default work budget when no deadline
	// is set).
	TimeBudget time.Duration
	// Restarts is the number of parallel multi-start runs for the anytime
	// solver (0 = 1, serial).
	Restarts int
	// Workers sizes the executor pool for parallel restarts (0 = GOMAXPROCS).
	Workers int
	// Seed makes anytime runs deterministic under a pure work budget
	// (deadline runs are inherently timing-dependent); 0 means 1.
	Seed int64
}

// OptimizeWith searches for the lowest-predicted-latency configuration
// against this snapshot's frozen campaign under the given options.
func (sn *Snapshot) OptimizeWith(o OptimizeOptions) (OptimizeResult, error) {
	in, clients := sn.Pred.BuildInstance(sn.AnnOrder)
	if o.TimeBudget <= 0 && in.NumSites <= 63 {
		if len(o.Exclude) > 0 {
			return sn.OptimizeExcluding(o.K, o.MaxSubsets, o.Exclude...)
		}
		return sn.Optimize(o.K, o.MaxSubsets)
	}
	sopts, err := sn.searchOptions(in, o)
	if err != nil {
		return OptimizeResult{}, err
	}
	var (
		res splpo.Result
	)
	if o.Restarts > 1 {
		pool := exec.New(o.Workers)
		defer pool.Close()
		res, err = splpo.SearchParallel(in, sopts, o.Restarts, pool)
	} else {
		res, err = splpo.Search(in, sopts)
	}
	if err != nil {
		return OptimizeResult{}, fmt.Errorf("anyopt: optimize: %w", err)
	}
	return OptimizeResult{
		Config:           sn.Pred.SiteSetToConfig(res.Open, sn.AnnOrder),
		PredictedMean:    time.Duration(res.MeanCost * float64(time.Millisecond)),
		SubsetsEvaluated: res.Evals,
		OrderableClients: len(clients),
		Evals:            res.Evals,
		Moves:            res.Moves,
	}, nil
}

// searchOptions translates facade options into solver options, attaching a
// wall-clock Stop when a TimeBudget is set (the solver itself never reads
// the clock — the deadline crosses the boundary as a closure).
func (sn *Snapshot) searchOptions(in *splpo.Instance, o OptimizeOptions) (splpo.SearchOptions, error) {
	sopts := splpo.SearchOptions{
		ExactSize:       o.K,
		RequireFeasible: in.Cap != nil,
		Seed:            o.Seed,
	}
	if len(o.Exclude) > 0 {
		sopts.Forbidden = splpo.NewSiteSet(in.NumSites)
		for _, id := range o.Exclude {
			if id < 1 || id > in.NumSites {
				return sopts, fmt.Errorf("anyopt: cannot exclude unknown site %d", id)
			}
			sopts.Forbidden.Add(id - 1)
		}
	}
	if o.TimeBudget > 0 {
		deadline := time.Now().Add(o.TimeBudget)
		sopts.Stop = func() bool { return time.Now().After(deadline) }
		// The work budget becomes a backstop; the deadline is the governor.
		sopts.MaxWork = int64(^uint64(0) >> 2)
	}
	return sopts, nil
}

// OptimizeWith is Snapshot.OptimizeWith against the current campaign.
func (s *System) OptimizeWith(o OptimizeOptions) (OptimizeResult, error) {
	snap, err := s.requireDiscovery()
	if err != nil {
		return OptimizeResult{}, err
	}
	return snap.OptimizeWith(o)
}

// WarmOptimizer re-optimizes across campaign snapshots incrementally. It
// caches the SPLPO instance, the solver's inverted index, and the best
// configuration from the previous run; when a new snapshot generation
// arrives it diffs the instances row-by-row, patches the index for exactly
// the changed clients, and resumes the search from the previous optimum.
// The payoff is the "Anycast Agility" playbook loop: re-optimizing after
// partial preference churn costs O(changed clients) setup instead of a
// cold rebuild, and converges in few moves because the warm start is
// already near-optimal.
//
// A WarmOptimizer is not safe for concurrent use; serialize callers (the
// API's writer path does).
type WarmOptimizer struct {
	warm    *splpo.Warm
	in      *splpo.Instance
	clients []Client
	gen     uint64
}

// NewWarmOptimizer returns an empty handle; the first Reoptimize call is a
// cold solve.
func NewWarmOptimizer() *WarmOptimizer { return &WarmOptimizer{} }

// Gen returns the snapshot generation of the last solve (0 = never solved).
func (w *WarmOptimizer) Gen() uint64 { return w.gen }

// Reoptimize solves against the given snapshot, reusing as much of the
// previous solve as the snapshot delta allows: same generation continues
// refining, a changed generation with the same client population patches
// incrementally, anything else falls back to a cold solve. The result also
// reports how many client rows were patched (Patched > 0 ⇒ incremental).
func (w *WarmOptimizer) Reoptimize(sn *Snapshot, o OptimizeOptions) (OptimizeResult, splpo.Result, error) {
	in, clients := sn.Pred.BuildInstance(sn.AnnOrder)
	sopts, err := sn.searchOptions(in, o)
	if err != nil {
		return OptimizeResult{}, splpo.Result{}, err
	}
	var res splpo.Result
	switch {
	case w.warm == nil:
		w.warm, err = splpo.NewWarm(in, sn.Gen)
		if err == nil {
			res, err = w.warm.Solve(sopts)
		}
	case sn.Gen == w.gen:
		res, err = w.warm.Solve(sopts)
	default:
		changed := diffInstances(w.in, in, w.clients, clients)
		if changed == nil {
			// Population changed shape: cold restart.
			w.warm, err = splpo.NewWarm(in, sn.Gen)
			if err == nil {
				res, err = w.warm.Solve(sopts)
			}
		} else {
			res, err = w.warm.Reoptimize(in, sn.Gen, changed, sopts)
		}
	}
	if err != nil {
		return OptimizeResult{}, splpo.Result{}, fmt.Errorf("anyopt: warm reoptimize: %w", err)
	}
	w.in, w.clients, w.gen = in, clients, sn.Gen
	return OptimizeResult{
		Config:           sn.Pred.SiteSetToConfig(res.Open, sn.AnnOrder),
		PredictedMean:    time.Duration(res.MeanCost * float64(time.Millisecond)),
		SubsetsEvaluated: res.Evals,
		OrderableClients: len(clients),
		Evals:            res.Evals,
		Moves:            res.Moves,
	}, res, nil
}

// diffInstances returns the rows of next whose ranking, costs, weight, or
// load differ from prev, or nil when the instances are not row-compatible
// (different site counts, client populations, or capacitation).
func diffInstances(prev, next *splpo.Instance, prevClients, nextClients []Client) []int {
	if prev == nil || prev.NumSites != next.NumSites ||
		len(prev.Clients) != len(next.Clients) ||
		(prev.Cap == nil) != (next.Cap == nil) {
		return nil
	}
	for i := range prevClients {
		if prevClients[i] != nextClients[i] {
			return nil
		}
	}
	changed := []int{}
	for i := range next.Clients {
		if !sameClientRow(&prev.Clients[i], &next.Clients[i]) {
			changed = append(changed, i)
		}
	}
	return changed
}

func sameClientRow(a, b *splpo.Client) bool {
	if a.Weight != b.Weight || a.Load != b.Load ||
		len(a.Ranking) != len(b.Ranking) {
		return false
	}
	for i := range a.Ranking {
		if a.Ranking[i] != b.Ranking[i] || a.RankCost[i] != b.RankCost[i] {
			return false
		}
	}
	return true
}
