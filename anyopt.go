// Package anyopt predicts and optimizes IP anycast performance, reproducing
// the system from "AnyOpt: Predicting and Optimizing IP Anycast Performance"
// (SIGCOMM 2021).
//
// AnyOpt discovers, with O(n²) pairwise BGP experiments instead of O(2ⁿ)
// full deployments, how every client network ranks an anycast network's
// sites; it then predicts the catchment of any site subset and solves a
// plant-location problem to find the subset with the lowest mean client
// latency.
//
// This package is the high-level facade. A System bundles a synthetic
// Internet (topology + event-driven BGP with the arrival-order tie-breaker),
// the paper's 15-site testbed, the Verfploeter-style measurement plane, and
// the discovery → prediction → optimization pipeline:
//
//	sys, _ := anyopt.New(anyopt.DefaultOptions())
//	_ = sys.RunDiscovery()
//	res, _ := sys.Optimize(12, 0)
//	fmt.Println(res.Config, res.PredictedMean)
//
// The heavy lifting lives in the internal packages: internal/bgp (routing
// simulator), internal/topology (Internet generator), internal/testbed and
// internal/probe (measurement plane), internal/core/* (preferences,
// discovery, prediction, SPLPO optimization, peering heuristic).
package anyopt

import (
	"fmt"
	"math/rand"
	"time"

	"anyopt/internal/core/discovery"
	"anyopt/internal/core/peering"
	"anyopt/internal/core/predict"
	"anyopt/internal/core/prefs"
	"anyopt/internal/core/splpo"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// Client identifies a client network by its AS number.
type Client = prefs.Client

// Config is an anycast configuration: site IDs in announcement order.
type Config = predict.Config

// Options configures a System.
type Options struct {
	// Topology generates the synthetic Internet.
	Topology topology.Params
	// Testbed deploys the anycast network (defaults to the paper's Table 1).
	Testbed testbed.Options
	// Discovery drives the measurement campaign.
	Discovery discovery.Config
	// UseRTTHeuristic replaces intra-AS pairwise experiments with the §4.3
	// RTT heuristic (required for large networks).
	UseRTTHeuristic bool
}

// DefaultOptions reproduces the paper's testbed at unit-test-friendly scale.
func DefaultOptions() Options {
	return Options{
		Topology:  topology.TestParams(),
		Testbed:   testbed.Options{Seed: 1},
		Discovery: discovery.DefaultConfig(),
	}
}

// PaperScaleOptions sizes the synthetic Internet closer to the paper's
// measurement population (thousands of client networks).
func PaperScaleOptions() Options {
	o := DefaultOptions()
	o.Topology = topology.DefaultParams()
	return o
}

// System is an anycast network under AnyOpt management.
type System struct {
	Topo *topology.Topology
	TB   *testbed.Testbed
	Disc *discovery.Discovery

	// Pred and RTT are populated by RunDiscovery.
	Pred *predict.Predictor
	RTT  *discovery.RTTTable
	// AnnOrder is the provider announcement order that maximizes clients
	// with total orders (§4.5 step 3), chosen during RunDiscovery.
	AnnOrder []prefs.Item

	opts Options
}

// New builds the synthetic Internet and deploys the testbed on it.
func New(opts Options) (*System, error) {
	topo, err := topology.Generate(opts.Topology)
	if err != nil {
		return nil, fmt.Errorf("anyopt: generating topology: %w", err)
	}
	tb, err := testbed.New(topo, opts.Testbed)
	if err != nil {
		return nil, fmt.Errorf("anyopt: deploying testbed: %w", err)
	}
	return &System{
		Topo: topo,
		TB:   tb,
		Disc: discovery.New(tb, opts.Discovery),
		opts: opts,
	}, nil
}

// RunDiscovery executes the full measurement campaign (§4.5 steps 1–2):
// singleton RTT experiments, order-controlled provider-level pairwise
// experiments, and (unless UseRTTHeuristic) intra-AS site-level experiments.
// It then fixes the announcement order that maximizes orderable clients.
func (s *System) RunDiscovery() error {
	pred, rtt, err := predict.NewPredictor(s.TB, s.Disc, s.opts.UseRTTHeuristic)
	if err != nil {
		return fmt.Errorf("anyopt: discovery: %w", err)
	}
	s.Pred, s.RTT = pred, rtt
	order, _ := pred.Providers.BestAnnouncementOrder(7)
	s.AnnOrder = order
	return nil
}

// requireDiscovery guards methods that need RunDiscovery first.
func (s *System) requireDiscovery() error {
	if s.Pred == nil {
		return fmt.Errorf("anyopt: RunDiscovery has not been executed")
	}
	return nil
}

// PredictCatchments predicts each client's catchment site under cfg.
func (s *System) PredictCatchments(cfg Config) (map[Client]int, error) {
	if err := s.requireDiscovery(); err != nil {
		return nil, err
	}
	return s.Pred.All(cfg), nil
}

// PredictMeanRTT predicts the mean client RTT of cfg and returns the number
// of predictable clients.
func (s *System) PredictMeanRTT(cfg Config) (time.Duration, int, error) {
	if err := s.requireDiscovery(); err != nil {
		return 0, 0, err
	}
	mean, n := s.Pred.MeanRTT(cfg)
	return mean, n, nil
}

// MeasureConfiguration deploys cfg on a fresh experiment and measures every
// target's catchment and RTT — ground truth for validating predictions.
func (s *System) MeasureConfiguration(cfg Config) (map[Client]int, map[Client]time.Duration) {
	return s.Disc.RunConfigurationRTTs(cfg)
}

// MeasureConfigurations deploys each configuration on its own experiment,
// fanned across the discovery executor, and returns results in configuration
// order — identical to calling MeasureConfiguration once per entry.
func (s *System) MeasureConfigurations(cfgs []Config) []discovery.ConfigResult {
	raw := make([][]int, len(cfgs))
	for i, c := range cfgs {
		raw[i] = c
	}
	return s.Disc.RunConfigurationsRTTs(raw)
}

// OptimizeResult is the outcome of an offline configuration search.
type OptimizeResult struct {
	// Config is the chosen configuration in deployable announcement order.
	Config Config
	// PredictedMean is the optimizer's predicted mean client RTT.
	PredictedMean time.Duration
	// SubsetsEvaluated counts configurations examined.
	SubsetsEvaluated int
	// OrderableClients is the number of clients in the optimization.
	OrderableClients int
}

// Optimize searches for the lowest-predicted-latency configuration with
// exactly k sites (k = 0 searches all sizes). maxSubsets bounds the
// enumeration, mirroring the paper's offline time budget; 0 is unlimited.
// Networks with more than 20 sites use local search automatically.
func (s *System) Optimize(k, maxSubsets int) (OptimizeResult, error) {
	if err := s.requireDiscovery(); err != nil {
		return OptimizeResult{}, err
	}
	in, clients := s.Pred.BuildInstance(s.AnnOrder)
	opts := splpo.Options{ExactSize: k, MaxSubsets: maxSubsets}
	var (
		best      splpo.Assignment
		evaluated int
		err       error
	)
	if in.NumSites > 20 {
		seed := uint64(1)<<uint(min(k, 20)) - 1
		best, err = splpo.LocalSearch(in, seed, opts, 0)
		evaluated = -1
	} else {
		best, evaluated, err = splpo.Exhaustive(in, opts)
	}
	if err != nil {
		return OptimizeResult{}, fmt.Errorf("anyopt: optimize: %w", err)
	}
	return OptimizeResult{
		Config:           s.Pred.SubsetToConfig(best.Subset, s.AnnOrder),
		PredictedMean:    time.Duration(best.MeanCost * float64(time.Millisecond)),
		SubsetsEvaluated: evaluated,
		OrderableClients: len(clients),
	}, nil
}

// OptimizeExcluding is Optimize restricted to subsets that avoid the given
// sites — the operational case of §1's "regular maintenance": a site is
// down, and the saved campaign re-optimizes the rest offline.
func (s *System) OptimizeExcluding(k, maxSubsets int, exclude ...int) (OptimizeResult, error) {
	if err := s.requireDiscovery(); err != nil {
		return OptimizeResult{}, err
	}
	var forbidden uint64
	for _, id := range exclude {
		if id < 1 || id > len(s.TB.Sites) {
			return OptimizeResult{}, fmt.Errorf("anyopt: cannot exclude unknown site %d", id)
		}
		forbidden |= 1 << uint(id-1)
	}
	in, clients := s.Pred.BuildInstance(s.AnnOrder)
	opts := splpo.Options{ExactSize: k, MaxSubsets: maxSubsets, ForbiddenMask: forbidden}
	best, evaluated, err := splpo.Exhaustive(in, opts)
	if err != nil {
		return OptimizeResult{}, fmt.Errorf("anyopt: optimize excluding %v: %w", exclude, err)
	}
	return OptimizeResult{
		Config:           s.Pred.SubsetToConfig(best.Subset, s.AnnOrder),
		PredictedMean:    time.Duration(best.MeanCost * float64(time.Millisecond)),
		SubsetsEvaluated: evaluated,
		OrderableClients: len(clients),
	}, nil
}

// OptimizeLoadAware is Optimize with the Appendix B extensions: loads
// assigns each client a demand (defaulting to 1) that weights its RTT
// contribution and counts against capacity; caps limits the total load a
// site may absorb (site ID → capacity). Only feasible configurations — every
// client served, no site over capacity — are considered.
func (s *System) OptimizeLoadAware(k, maxSubsets int, loads map[Client]float64, caps map[int]float64) (OptimizeResult, error) {
	if err := s.requireDiscovery(); err != nil {
		return OptimizeResult{}, err
	}
	in, clients := s.Pred.BuildInstanceWeighted(s.AnnOrder, loads, caps)
	opts := splpo.Options{ExactSize: k, MaxSubsets: maxSubsets, RequireFeasible: true}
	var (
		best      splpo.Assignment
		evaluated int
		err       error
	)
	if in.NumSites > 20 {
		seed := uint64(1)<<uint(min(max(k, 1), 20)) - 1
		best, err = splpo.LocalSearch(in, seed, opts, 0)
		evaluated = -1
	} else {
		best, evaluated, err = splpo.Exhaustive(in, opts)
	}
	if err != nil {
		return OptimizeResult{}, fmt.Errorf("anyopt: load-aware optimize: %w", err)
	}
	return OptimizeResult{
		Config:           s.Pred.SubsetToConfig(best.Subset, s.AnnOrder),
		PredictedMean:    time.Duration(best.MeanCost * float64(time.Millisecond)),
		SubsetsEvaluated: evaluated,
		OrderableClients: len(clients),
	}, nil
}

// PredictSiteLoads predicts the load each site absorbs under cfg, using the
// given per-client demands (default 1).
func (s *System) PredictSiteLoads(cfg Config, loads map[Client]float64) (map[int]float64, error) {
	catch, err := s.PredictCatchments(cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64)
	for c, site := range catch {
		l := 1.0
		if loads != nil {
			if v, ok := loads[c]; ok {
				l = v
			}
		}
		out[site] += l
	}
	return out, nil
}

// GreedyConfig returns the baseline configuration of the k sites with the
// lowest mean unicast RTT (§5.3's "k-Greedy").
func (s *System) GreedyConfig(k int) (Config, error) {
	if err := s.requireDiscovery(); err != nil {
		return nil, err
	}
	in, _ := s.Pred.BuildInstance(s.AnnOrder)
	a, err := splpo.GreedyByCost(in, k)
	if err != nil {
		return nil, err
	}
	return s.Pred.SubsetToConfig(a.Subset, s.AnnOrder), nil
}

// RandomConfig returns a uniformly random k-site configuration.
func (s *System) RandomConfig(k int, rng *rand.Rand) (Config, error) {
	if err := s.requireDiscovery(); err != nil {
		return nil, err
	}
	ids := rng.Perm(len(s.TB.Sites))[:k]
	var subset uint64
	for _, i := range ids {
		subset |= 1 << uint(i)
	}
	return s.Pred.SubsetToConfig(subset, s.AnnOrder), nil
}

// AllSitesConfig returns the configuration enabling every site.
func (s *System) AllSitesConfig() Config {
	var subset uint64
	for _, site := range s.TB.Sites {
		subset |= 1 << uint(site.ID-1)
	}
	if s.Pred != nil {
		return s.Pred.SubsetToConfig(subset, s.AnnOrder)
	}
	cfg := make(Config, len(s.TB.Sites))
	for i, site := range s.TB.Sites {
		cfg[i] = site.ID
	}
	return cfg
}

// AllPeerLinks lists every peering link of the testbed in site order.
func (s *System) AllPeerLinks() []topology.LinkID {
	var out []topology.LinkID
	for _, site := range s.TB.Sites {
		out = append(out, site.PeerLinks...)
	}
	return out
}

// OnePassPeering runs the §4.4 one-pass campaign over the given peering
// links on top of base.
func (s *System) OnePassPeering(base Config, peers []topology.LinkID) *peering.Result {
	return peering.OnePass(s.Disc, base, peers)
}

// Experiments reports the number of BGP experiments run so far.
func (s *System) Experiments() int { return s.Disc.Experiments }
