// Package anyopt predicts and optimizes IP anycast performance, reproducing
// the system from "AnyOpt: Predicting and Optimizing IP Anycast Performance"
// (SIGCOMM 2021).
//
// AnyOpt discovers, with O(n²) pairwise BGP experiments instead of O(2ⁿ)
// full deployments, how every client network ranks an anycast network's
// sites; it then predicts the catchment of any site subset and solves a
// plant-location problem to find the subset with the lowest mean client
// latency.
//
// This package is the high-level facade. A System bundles a synthetic
// Internet (topology + event-driven BGP with the arrival-order tie-breaker),
// the paper's 15-site testbed, the Verfploeter-style measurement plane, and
// the discovery → prediction → optimization pipeline:
//
//	sys, _ := anyopt.New(anyopt.DefaultOptions())
//	_ = sys.RunDiscovery()
//	res, _ := sys.Optimize(12, 0)
//	fmt.Println(res.Config, res.PredictedMean)
//
// The heavy lifting lives in the internal packages: internal/bgp (routing
// simulator), internal/topology (Internet generator), internal/testbed and
// internal/probe (measurement plane), internal/core/* (preferences,
// discovery, prediction, SPLPO optimization, peering heuristic).
package anyopt

import (
	"fmt"
	"maps"
	"math/rand"
	"sync/atomic"
	"time"

	"anyopt/internal/core/discovery"
	"anyopt/internal/core/peering"
	"anyopt/internal/core/predict"
	"anyopt/internal/core/prefs"
	"anyopt/internal/core/splpo"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// Client identifies a client network by its AS number.
type Client = prefs.Client

// Config is an anycast configuration: site IDs in announcement order.
type Config = predict.Config

// Options configures a System.
type Options struct {
	// Topology generates the synthetic Internet.
	Topology topology.Params
	// Testbed deploys the anycast network (defaults to the paper's Table 1).
	Testbed testbed.Options
	// Discovery drives the measurement campaign.
	Discovery discovery.Config
	// UseRTTHeuristic replaces intra-AS pairwise experiments with the §4.3
	// RTT heuristic (required for large networks).
	UseRTTHeuristic bool
}

// DefaultOptions reproduces the paper's testbed at unit-test-friendly scale.
func DefaultOptions() Options {
	return Options{
		Topology:  topology.TestParams(),
		Testbed:   testbed.Options{Seed: 1},
		Discovery: discovery.DefaultConfig(),
	}
}

// PaperScaleOptions sizes the synthetic Internet closer to the paper's
// measurement population (thousands of client networks).
func PaperScaleOptions() Options {
	o := DefaultOptions()
	o.Topology = topology.DefaultParams()
	return o
}

// InternetScaleOptions sizes the synthetic Internet at ~100k ASes with a
// power-law provider-degree distribution — the §4.5 extrapolation target.
// Campaigns at this scale want the RTT heuristic (pairwise site experiments
// are quadratic) and usually sharded discovery.
func InternetScaleOptions() Options {
	o := DefaultOptions()
	o.Topology = topology.InternetParams()
	o.UseRTTHeuristic = true
	return o
}

// System is an anycast network under AnyOpt management.
//
// A System is not safe for concurrent mutation: RunDiscovery, campaign
// loading, and the Measure* methods drive shared campaign state. The read
// side, however, is lock-free: every completed campaign is published as an
// immutable Snapshot through an atomic pointer, and the prediction and
// optimization methods operate on whatever snapshot is current. Concurrent
// servers (internal/api) read snapshots directly and serialize only the
// writers.
type System struct {
	Topo *topology.Topology
	TB   *testbed.Testbed
	Disc *discovery.Discovery

	// Pred and RTT are populated by RunDiscovery. They mirror the current
	// Snapshot for single-threaded callers (CLIs, experiments); concurrent
	// readers must go through CurrentSnapshot instead.
	Pred *predict.Predictor
	RTT  *discovery.RTTTable
	// AnnOrder is the provider announcement order that maximizes clients
	// with total orders (§4.5 step 3), chosen during RunDiscovery.
	AnnOrder []prefs.Item

	opts Options

	// snap is the atomically-published campaign snapshot; gen numbers
	// publications.
	snap atomic.Pointer[Snapshot]
	gen  atomic.Uint64
}

// Snapshot is an immutable view of one completed measurement campaign: the
// two-level preference matrix, the singleton RTT table, and the chosen
// announcement order, frozen at publication time together with the
// campaign's accounting.
//
// A Snapshot is never mutated after InstallCampaign publishes it, and every
// structure it references (Predictor, preference stores, RTT table) is
// read-only after construction, so any number of goroutines may predict and
// optimize against the same Snapshot with no locking. Campaign re-discovery
// or import builds a fresh Snapshot and swaps the System's pointer —
// copy-on-write at campaign granularity, which is the natural write unit: a
// campaign is weeks of wall-clock experiments, a prediction is microseconds.
type Snapshot struct {
	// TB is the testbed the campaign measured (shared, immutable).
	TB *testbed.Testbed
	// Pred predicts catchments from the frozen preference matrix.
	Pred *predict.Predictor
	// RTT is the frozen singleton RTT table.
	RTT *discovery.RTTTable
	// AnnOrder is the frozen provider announcement order.
	AnnOrder []prefs.Item
	// Gen is the publication sequence number on the owning System (1 = first
	// campaign). Exposed for cache invalidation and metrics.
	Gen uint64
	// Experiments is the number of BGP experiments the campaign consumed.
	Experiments int
	// Quarantined records sites the campaign pulled out as dead (ID →
	// reason); nil for fault-free campaigns.
	Quarantined map[int]string
	// StaleRows maps clients whose rows predate a known routing change to
	// the generation whose campaign data they still reflect. A client absent
	// from the map is current at Gen. The churn reconciler marks a cone
	// stale the moment churn is applied (degraded-mode serving: answers stay
	// available, flagged) and clears entries only when a quorum-committed
	// repair replaces the whole row — a partially repaired row is never
	// representable. Nil when every row is current.
	StaleRows map[prefs.Client]uint64
}

// RowStale reports whether the client's row predates a known routing change,
// and if so, the generation whose data it still reflects.
func (sn *Snapshot) RowStale(c prefs.Client) (gen uint64, stale bool) {
	gen, stale = sn.StaleRows[c]
	return gen, stale
}

// New builds the synthetic Internet and deploys the testbed on it.
func New(opts Options) (*System, error) {
	topo, err := topology.Generate(opts.Topology)
	if err != nil {
		return nil, fmt.Errorf("anyopt: generating topology: %w", err)
	}
	tb, err := testbed.New(topo, opts.Testbed)
	if err != nil {
		return nil, fmt.Errorf("anyopt: deploying testbed: %w", err)
	}
	return &System{
		Topo: topo,
		TB:   tb,
		Disc: discovery.New(tb, opts.Discovery),
		opts: opts,
	}, nil
}

// RunDiscovery executes the full measurement campaign (§4.5 steps 1–2):
// singleton RTT experiments, order-controlled provider-level pairwise
// experiments, and (unless UseRTTHeuristic) intra-AS site-level experiments.
// It then fixes the announcement order that maximizes orderable clients.
func (s *System) RunDiscovery() error {
	pred, rtt, err := predict.NewPredictor(s.TB, s.Disc, s.opts.UseRTTHeuristic)
	if err != nil {
		return fmt.Errorf("anyopt: discovery: %w", err)
	}
	order, _ := pred.Providers.BestAnnouncementOrder(7)
	s.InstallCampaign(pred, rtt, order, s.Disc.Experiments, s.Disc.Quarantined())
	return nil
}

// InstallCampaign publishes campaign results as a fresh immutable Snapshot
// and mirrors them into the System's legacy fields. It is the single write
// point for campaign state: RunDiscovery, campaign import, and the API's
// async discovery jobs all end here. Concurrent readers observe either the
// previous snapshot or the new one, never a mix.
//
// Writers must be externally serialized (internal/api holds a writer lock);
// readers need no coordination.
func (s *System) InstallCampaign(pred *predict.Predictor, rtt *discovery.RTTTable, annOrder []prefs.Item, experiments int, quarantined map[int]string) *Snapshot {
	snap := &Snapshot{
		TB:          s.TB,
		Pred:        pred,
		RTT:         rtt,
		AnnOrder:    append([]prefs.Item(nil), annOrder...),
		Gen:         s.gen.Add(1),
		Experiments: experiments,
		Quarantined: maps.Clone(quarantined),
	}
	s.Pred, s.RTT, s.AnnOrder = pred, rtt, snap.AnnOrder
	s.snap.Store(snap)
	return snap
}

// PatchCampaign publishes a row-patched successor of the current campaign as
// a fresh immutable Snapshot — InstallCampaign's sibling write point, used by
// the churn reconciler. The inputs are already-patched copy-on-write
// structures (prefs.Store.PatchClients, discovery.RTTTable.Patch): the
// previous snapshot is never touched, readers observe either it or the
// complete successor. staleRows carries the rows still awaiting repair,
// keyed to the generation whose data they reflect; nil means fully healed.
//
// Writers must be externally serialized exactly like InstallCampaign.
func (s *System) PatchCampaign(pred *predict.Predictor, rtt *discovery.RTTTable, annOrder []prefs.Item, experiments int, quarantined map[int]string, staleRows map[prefs.Client]uint64) *Snapshot {
	snap := &Snapshot{
		TB:          s.TB,
		Pred:        pred,
		RTT:         rtt,
		AnnOrder:    append([]prefs.Item(nil), annOrder...),
		Gen:         s.gen.Add(1),
		Experiments: experiments,
		Quarantined: maps.Clone(quarantined),
		StaleRows:   maps.Clone(staleRows),
	}
	s.Pred, s.RTT, s.AnnOrder = pred, rtt, snap.AnnOrder
	s.snap.Store(snap)
	return snap
}

// CurrentSnapshot returns the most recently published campaign snapshot, or
// nil when no campaign has completed. Safe for any number of concurrent
// callers; the returned snapshot never changes.
func (s *System) CurrentSnapshot() *Snapshot { return s.snap.Load() }

// Options returns the options the System was built with.
func (s *System) Options() Options { return s.opts }

// requireDiscovery guards methods that need RunDiscovery first.
func (s *System) requireDiscovery() (*Snapshot, error) {
	if snap := s.snap.Load(); snap != nil {
		return snap, nil
	}
	return nil, fmt.Errorf("anyopt: RunDiscovery has not been executed")
}

// ValidateConfig rejects configurations that cannot name a deployment: empty
// configs, out-of-range site IDs, and duplicate sites. It needs only the
// testbed layout, so it works before discovery.
func (s *System) ValidateConfig(cfg Config) error {
	if len(cfg) == 0 {
		return fmt.Errorf("anyopt: empty configuration")
	}
	seen := make(map[int]bool, len(cfg))
	for _, id := range cfg {
		if id < 1 || id > len(s.TB.Sites) || s.TB.Site(id) == nil {
			return fmt.Errorf("anyopt: unknown site %d (testbed has sites 1..%d)", id, len(s.TB.Sites))
		}
		if seen[id] {
			return fmt.Errorf("anyopt: duplicate site %d in configuration", id)
		}
		seen[id] = true
	}
	return nil
}

// PredictCatchments predicts each client's catchment site under cfg.
func (s *System) PredictCatchments(cfg Config) (map[Client]int, error) {
	snap, err := s.requireDiscovery()
	if err != nil {
		return nil, err
	}
	return snap.PredictCatchments(cfg), nil
}

// PredictMeanRTT predicts the mean client RTT of cfg and returns the number
// of predictable clients.
func (s *System) PredictMeanRTT(cfg Config) (time.Duration, int, error) {
	snap, err := s.requireDiscovery()
	if err != nil {
		return 0, 0, err
	}
	mean, n := snap.PredictMeanRTT(cfg)
	return mean, n, nil
}

// PredictCatchments predicts each client's catchment site under cfg against
// this snapshot's frozen preference matrix. Lock-free; safe concurrently.
func (sn *Snapshot) PredictCatchments(cfg Config) map[Client]int {
	return sn.Pred.All(cfg)
}

// PredictMeanRTT predicts the mean client RTT of cfg against this snapshot
// and returns the number of predictable clients. Lock-free.
func (sn *Snapshot) PredictMeanRTT(cfg Config) (time.Duration, int) {
	return sn.Pred.MeanRTT(cfg)
}

// MeasureConfiguration deploys cfg on a fresh experiment and measures every
// target's catchment and RTT — ground truth for validating predictions.
func (s *System) MeasureConfiguration(cfg Config) (map[Client]int, map[Client]time.Duration) {
	return s.Disc.RunConfigurationRTTs(cfg)
}

// MeasureConfigurations deploys each configuration on its own experiment,
// fanned across the discovery executor, and returns results in configuration
// order — identical to calling MeasureConfiguration once per entry.
func (s *System) MeasureConfigurations(cfgs []Config) []discovery.ConfigResult {
	raw := make([][]int, len(cfgs))
	for i, c := range cfgs {
		raw[i] = c
	}
	return s.Disc.RunConfigurationsRTTs(raw)
}

// OptimizeResult is the outcome of an offline configuration search.
type OptimizeResult struct {
	// Config is the chosen configuration in deployable announcement order.
	Config Config
	// PredictedMean is the optimizer's predicted mean client RTT.
	PredictedMean time.Duration
	// SubsetsEvaluated counts configurations examined.
	SubsetsEvaluated int
	// OrderableClients is the number of clients in the optimization.
	OrderableClients int
	// Evals and Moves are the anytime solver's counters (candidate moves
	// evaluated, moves accepted); zero on the exact-solver paths.
	Evals int
	Moves int
}

// Optimize searches for the lowest-predicted-latency configuration with
// exactly k sites (k = 0 searches all sizes). maxSubsets bounds the
// enumeration, mirroring the paper's offline time budget; 0 is unlimited.
// Networks with more than 20 sites use local search automatically.
func (s *System) Optimize(k, maxSubsets int) (OptimizeResult, error) {
	snap, err := s.requireDiscovery()
	if err != nil {
		return OptimizeResult{}, err
	}
	return snap.Optimize(k, maxSubsets)
}

// Optimize is System.Optimize against this snapshot's frozen campaign. The
// SPLPO instance is built fresh per call, so concurrent optimizations share
// nothing but read-only campaign data.
func (sn *Snapshot) Optimize(k, maxSubsets int) (OptimizeResult, error) {
	in, clients := sn.Pred.BuildInstance(sn.AnnOrder)
	opts := splpo.Options{ExactSize: k, MaxSubsets: maxSubsets}
	var (
		best      splpo.Assignment
		evaluated int
		err       error
	)
	if in.NumSites > 20 {
		seed := uint64(1)<<uint(min(k, 20)) - 1
		best, err = splpo.LocalSearch(in, seed, opts, 0)
		evaluated = -1
	} else {
		best, evaluated, err = splpo.Exhaustive(in, opts)
	}
	if err != nil {
		return OptimizeResult{}, fmt.Errorf("anyopt: optimize: %w", err)
	}
	return OptimizeResult{
		Config:           sn.Pred.SubsetToConfig(best.Subset, sn.AnnOrder),
		PredictedMean:    time.Duration(best.MeanCost * float64(time.Millisecond)),
		SubsetsEvaluated: evaluated,
		OrderableClients: len(clients),
	}, nil
}

// OptimizeExcluding is Optimize restricted to subsets that avoid the given
// sites — the operational case of §1's "regular maintenance": a site is
// down, and the saved campaign re-optimizes the rest offline.
func (s *System) OptimizeExcluding(k, maxSubsets int, exclude ...int) (OptimizeResult, error) {
	snap, err := s.requireDiscovery()
	if err != nil {
		return OptimizeResult{}, err
	}
	return snap.OptimizeExcluding(k, maxSubsets, exclude...)
}

// OptimizeExcluding is System.OptimizeExcluding against this snapshot.
func (sn *Snapshot) OptimizeExcluding(k, maxSubsets int, exclude ...int) (OptimizeResult, error) {
	var forbidden uint64
	for _, id := range exclude {
		if id < 1 || id > len(sn.TB.Sites) {
			return OptimizeResult{}, fmt.Errorf("anyopt: cannot exclude unknown site %d", id)
		}
		forbidden |= 1 << uint(id-1)
	}
	in, clients := sn.Pred.BuildInstance(sn.AnnOrder)
	opts := splpo.Options{ExactSize: k, MaxSubsets: maxSubsets, ForbiddenMask: forbidden}
	best, evaluated, err := splpo.Exhaustive(in, opts)
	if err != nil {
		return OptimizeResult{}, fmt.Errorf("anyopt: optimize excluding %v: %w", exclude, err)
	}
	return OptimizeResult{
		Config:           sn.Pred.SubsetToConfig(best.Subset, sn.AnnOrder),
		PredictedMean:    time.Duration(best.MeanCost * float64(time.Millisecond)),
		SubsetsEvaluated: evaluated,
		OrderableClients: len(clients),
	}, nil
}

// OptimizeLoadAware is Optimize with the Appendix B extensions: loads
// assigns each client a demand (defaulting to 1) that weights its RTT
// contribution and counts against capacity; caps limits the total load a
// site may absorb (site ID → capacity). Only feasible configurations — every
// client served, no site over capacity — are considered.
func (s *System) OptimizeLoadAware(k, maxSubsets int, loads map[Client]float64, caps map[int]float64) (OptimizeResult, error) {
	snap, err := s.requireDiscovery()
	if err != nil {
		return OptimizeResult{}, err
	}
	return snap.OptimizeLoadAware(k, maxSubsets, loads, caps)
}

// OptimizeLoadAware is System.OptimizeLoadAware against this snapshot.
func (sn *Snapshot) OptimizeLoadAware(k, maxSubsets int, loads map[Client]float64, caps map[int]float64) (OptimizeResult, error) {
	in, clients := sn.Pred.BuildInstanceWeighted(sn.AnnOrder, loads, caps)
	opts := splpo.Options{ExactSize: k, MaxSubsets: maxSubsets, RequireFeasible: true}
	var (
		best      splpo.Assignment
		evaluated int
		err       error
	)
	if in.NumSites > 20 {
		seed := uint64(1)<<uint(min(max(k, 1), 20)) - 1
		best, err = splpo.LocalSearch(in, seed, opts, 0)
		evaluated = -1
	} else {
		best, evaluated, err = splpo.Exhaustive(in, opts)
	}
	if err != nil {
		return OptimizeResult{}, fmt.Errorf("anyopt: load-aware optimize: %w", err)
	}
	return OptimizeResult{
		Config:           sn.Pred.SubsetToConfig(best.Subset, sn.AnnOrder),
		PredictedMean:    time.Duration(best.MeanCost * float64(time.Millisecond)),
		SubsetsEvaluated: evaluated,
		OrderableClients: len(clients),
	}, nil
}

// PredictSiteLoads predicts the load each site absorbs under cfg, using the
// given per-client demands (default 1).
func (s *System) PredictSiteLoads(cfg Config, loads map[Client]float64) (map[int]float64, error) {
	snap, err := s.requireDiscovery()
	if err != nil {
		return nil, err
	}
	return snap.PredictSiteLoads(cfg, loads), nil
}

// PredictSiteLoads is System.PredictSiteLoads against this snapshot.
func (sn *Snapshot) PredictSiteLoads(cfg Config, loads map[Client]float64) map[int]float64 {
	out := make(map[int]float64)
	for c, site := range sn.PredictCatchments(cfg) {
		l := 1.0
		if loads != nil {
			if v, ok := loads[c]; ok {
				l = v
			}
		}
		out[site] += l
	}
	return out
}

// GreedyConfig returns the baseline configuration of the k sites with the
// lowest mean unicast RTT (§5.3's "k-Greedy").
func (s *System) GreedyConfig(k int) (Config, error) {
	snap, err := s.requireDiscovery()
	if err != nil {
		return nil, err
	}
	return snap.GreedyConfig(k)
}

// GreedyConfig is System.GreedyConfig against this snapshot.
func (sn *Snapshot) GreedyConfig(k int) (Config, error) {
	in, _ := sn.Pred.BuildInstance(sn.AnnOrder)
	a, err := splpo.GreedyByCost(in, k)
	if err != nil {
		return nil, err
	}
	return sn.Pred.SubsetToConfig(a.Subset, sn.AnnOrder), nil
}

// RandomConfig returns a uniformly random k-site configuration.
func (s *System) RandomConfig(k int, rng *rand.Rand) (Config, error) {
	snap, err := s.requireDiscovery()
	if err != nil {
		return nil, err
	}
	ids := rng.Perm(len(s.TB.Sites))[:k]
	var subset uint64
	for _, i := range ids {
		subset |= 1 << uint(i)
	}
	return snap.Pred.SubsetToConfig(subset, snap.AnnOrder), nil
}

// AllSitesConfig returns the configuration enabling every site.
func (s *System) AllSitesConfig() Config {
	var subset uint64
	for _, site := range s.TB.Sites {
		subset |= 1 << uint(site.ID-1)
	}
	if s.Pred != nil {
		return s.Pred.SubsetToConfig(subset, s.AnnOrder)
	}
	cfg := make(Config, len(s.TB.Sites))
	for i, site := range s.TB.Sites {
		cfg[i] = site.ID
	}
	return cfg
}

// AllPeerLinks lists every peering link of the testbed in site order.
func (s *System) AllPeerLinks() []topology.LinkID {
	var out []topology.LinkID
	for _, site := range s.TB.Sites {
		out = append(out, site.PeerLinks...)
	}
	return out
}

// OnePassPeering runs the §4.4 one-pass campaign over the given peering
// links on top of base.
func (s *System) OnePassPeering(base Config, peers []topology.LinkID) *peering.Result {
	return peering.OnePass(s.Disc, base, peers)
}

// Experiments reports the number of BGP experiments run so far.
func (s *System) Experiments() int { return s.Disc.Experiments }
