module anyopt

go 1.22
