package orchestrator

import (
	"testing"
	"time"

	"anyopt/internal/bgp"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

func setup(t *testing.T) (*Orchestrator, *testbed.Testbed, *bgp.Sim) {
	t.Helper()
	topo, err := topology.Generate(topology.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := testbed.New(topo, testbed.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim := bgp.New(topo, bgp.DefaultConfig())
	o, err := New(tb, sim)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	return o, tb, sim
}

func TestAnnounceViaBGPSessionsMatchesDirectAPI(t *testing.T) {
	o, tb, sim := setup(t)

	// Announce sites 1, 4, 6 through real BGP sessions, one flush per step
	// so announcement order is controlled.
	for _, siteID := range []int{1, 4, 6} {
		if err := o.Announce(siteID, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
		if n := o.Flush(6 * time.Minute); n != 1 {
			t.Fatalf("flush applied %d actions, want 1", n)
		}
	}
	if got := len(sim.AnnouncedLinks(0)); got != 3 {
		t.Fatalf("announced links = %d, want 3", got)
	}
	viaBGP := sim.CatchmentMap(0, tb.Topo.Targets)

	// The same deployment through the direct API on a fresh sim.
	sim2 := bgp.New(tb.Topo, bgp.DefaultConfig())
	dep := tb.NewDeployment(sim2, 0)
	dep.AnnounceSites(1, 4, 6)
	direct := sim2.CatchmentMap(0, tb.Topo.Targets)

	if len(viaBGP) != len(direct) {
		t.Fatalf("catchment sizes differ: %d vs %d", len(viaBGP), len(direct))
	}
	for asn, link := range direct {
		if viaBGP[asn] != link {
			t.Fatalf("AS%d: BGP-driven catchment %d != direct %d", asn, viaBGP[asn], link)
		}
	}
}

func TestWithdrawViaBGP(t *testing.T) {
	o, _, sim := setup(t)
	if err := o.Announce(3, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	o.Flush(time.Minute)
	if len(sim.AnnouncedLinks(0)) != 1 {
		t.Fatal("announce did not reach the sim")
	}
	if err := o.Withdraw(3, 0); err != nil {
		t.Fatal(err)
	}
	o.Flush(time.Minute)
	if got := len(sim.AnnouncedLinks(0)); got != 0 {
		t.Fatalf("links still announced after withdrawal: %d", got)
	}
	if n := sim.ReachableCount(0); n != 0 {
		t.Fatalf("%d ASes still route the prefix", n)
	}
}

func TestPeerLinkSteeringByCommunity(t *testing.T) {
	o, tb, sim := setup(t)
	// Announce via site 4's first peering link (ordinal 1).
	if err := o.Announce(4, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	o.Flush(time.Minute)
	links := sim.AnnouncedLinks(0)
	if len(links) != 1 {
		t.Fatalf("announced links = %v", links)
	}
	if want := tb.Site(4).PeerLinks[0]; links[0] != want {
		t.Fatalf("announced link %d, want peer link %d", links[0], want)
	}
}

func TestPrependingViaASPath(t *testing.T) {
	o, tb, sim := setup(t)
	if err := o.Announce(1, 0, 0, 2); err != nil {
		t.Fatal(err)
	}
	o.Flush(time.Minute)
	// A client's route should carry the prepended path (origin counted 3x).
	stub := tb.Topo.Stubs()[0]
	ri := sim.BestRoute(0, stub.ASN)
	if ri == nil {
		t.Fatal("no route at stub")
	}
	count := 0
	for _, hop := range ri.Path {
		if hop == tb.Origin {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("origin appears %d times in path %v, want 3 (2 prepends)", count, ri.Path)
	}
}

func TestSecondPrefixIndependent(t *testing.T) {
	o, tb, sim := setup(t)
	if err := o.Announce(1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Announce(6, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	o.Flush(time.Minute)
	l0, l1 := sim.AnnouncedLinks(0), sim.AnnouncedLinks(1)
	if len(l0) != 1 || l0[0] != tb.Site(1).TransitLink {
		t.Errorf("prefix 0 links = %v", l0)
	}
	if len(l1) != 1 || l1[0] != tb.Site(6).TransitLink {
		t.Errorf("prefix 1 links = %v", l1)
	}
}

func TestErrors(t *testing.T) {
	o, _, _ := setup(t)
	if err := o.Announce(99, 0, 0, 0); err == nil {
		t.Error("unknown site accepted")
	}
	if err := o.Announce(1, 99, 0, 0); err == nil {
		t.Error("unknown prefix accepted")
	}
	if err := o.Announce(1, 0, 99, 0); err == nil {
		t.Error("unknown link ordinal accepted")
	}
	if err := o.Withdraw(99, 0); err == nil {
		t.Error("withdraw at unknown site accepted")
	}
	if err := o.Withdraw(1, 99); err == nil {
		t.Error("withdraw of unknown prefix accepted")
	}
}

func TestFlushEmptyQueue(t *testing.T) {
	o, _, _ := setup(t)
	if n := o.Flush(time.Minute); n != 0 {
		t.Fatalf("empty flush applied %d actions", n)
	}
}
