package orchestrator

import (
	"context"
	"errors"
	"testing"
	"time"
)

// flakySessions injects a session reset before the first maxResets control
// messages — a deterministic stand-in for fault.Injector in this package's
// tests (the real injector satisfies the same interface).
type flakySessions struct {
	resets    int
	maxResets int
}

func (f *flakySessions) ResetSession(siteID int) bool {
	if f.resets >= f.maxResets {
		return false
	}
	f.resets++
	return true
}

func TestSessionResetSelfHeals(t *testing.T) {
	o, tb, sim := setup(t)
	o.Chaos = &flakySessions{maxResets: 3}

	// Every message rides a freshly re-established session for the first
	// three sends; the deployment must still land exactly.
	for _, siteID := range []int{1, 4, 6} {
		if err := o.Announce(siteID, 0, 0, 0); err != nil {
			t.Fatalf("announce site %d across session reset: %v", siteID, err)
		}
		if n := o.Flush(6 * time.Minute); n != 1 {
			t.Fatalf("flush applied %d actions, want 1", n)
		}
	}
	if o.SessionResets != 3 {
		t.Errorf("SessionResets = %d, want 3", o.SessionResets)
	}
	if got := len(sim.AnnouncedLinks(0)); got != 3 {
		t.Fatalf("announced links = %d, want 3", got)
	}

	// The healed control plane must produce the same catchments as one that
	// never failed.
	viaChaos := sim.CatchmentMap(0, tb.Topo.Targets)
	o2, _, sim2 := setup(t)
	for _, siteID := range []int{1, 4, 6} {
		if err := o2.Announce(siteID, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
		o2.Flush(6 * time.Minute)
	}
	calm := sim2.CatchmentMap(0, tb.Topo.Targets)
	if len(viaChaos) != len(calm) {
		t.Fatalf("catchment sizes differ: %d vs %d", len(viaChaos), len(calm))
	}
	for asn, link := range calm {
		if viaChaos[asn] != link {
			t.Fatalf("AS%d: catchment %d with resets != %d without", asn, viaChaos[asn], link)
		}
	}
}

func TestResetSiteUnknown(t *testing.T) {
	o, _, _ := setup(t)
	if err := o.ResetSite(99); err == nil {
		t.Error("reset of unknown site accepted")
	}
}

func TestFlushContextReportsPendingPerSite(t *testing.T) {
	o, _, _ := setup(t)

	// Model a control message lost in flight at site 3: counted as sent, but
	// its router never decodes it (a real session would wedge exactly this
	// way between the speaker's write and the router's read).
	o.sent.Add(1)
	o.tallies[3].sent.Add(1)
	if err := o.Announce(1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	n, err := o.FlushContext(ctx, time.Minute)
	var fe *FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("FlushContext err = %v, want *FlushError", err)
	}
	if len(fe.Sites) != 1 || fe.Sites[0].SiteID != 3 || fe.Sites[0].Pending != 1 {
		t.Fatalf("pending sites = %+v, want site 3 with 1 pending", fe.Sites)
	}
	if msg := fe.Error(); msg == "" {
		t.Error("empty FlushError message")
	}
	// The healthy site's action was decoded and still applied — degradation
	// is partial, not total.
	if n != 1 {
		t.Fatalf("deadline flush applied %d actions, want 1 (site 1's announce)", n)
	}

	// Self-heal: acknowledge the lost message, re-establish the session, and
	// the control plane is clean again.
	o.decoded.Add(1)
	o.tallies[3].decoded.Add(1)
	if err := o.ResetSite(3); err != nil {
		t.Fatal(err)
	}
	if err := o.Announce(3, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	n, err = o.FlushContext(context.Background(), time.Minute)
	if err != nil || n != 1 {
		t.Fatalf("flush after heal: n=%d err=%v", n, err)
	}
}

func TestFlushContextCleanReturnsNoError(t *testing.T) {
	o, _, _ := setup(t)
	if err := o.Announce(1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	n, err := o.FlushContext(context.Background(), time.Minute)
	if err != nil {
		t.Fatalf("clean flush returned %v", err)
	}
	if n != 1 {
		t.Fatalf("applied %d actions, want 1", n)
	}
}
