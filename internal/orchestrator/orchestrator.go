// Package orchestrator is the control plane of the testbed (§3.1): it holds
// a BGP session to every site's router — as the paper's GoBGP instance does
// over GRE tunnels — and turns real, wire-encoded UPDATE messages into
// anycast announcements and withdrawals at the sites.
//
// Which of a site's links (the transit link or a specific peering link) an
// announcement applies to is selected with a BGP community, the way
// production operators steer per-neighbor export policy. The site-router
// side is a small stub that parses the UPDATE, resolves the community to a
// link, and queues the action; Flush applies queued actions to the routing
// simulation in arrival order and converges.
package orchestrator

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anyopt/internal/bgp"
	"anyopt/internal/bgp/speaker"
	"anyopt/internal/bgp/wire"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// communityBase tags announcement-steering communities: the high 16 bits are
// the orchestrator's private ASN, the low 16 bits the link ordinal at the
// receiving site (0 = transit link, i+1 = i-th peering link).
const communityBase = uint32(64512) << 16

// action is one queued routing change decoded by a site router.
type action struct {
	announce bool
	prefix   bgp.PrefixID
	link     topology.LinkID
	prepend  int
}

// SessionChaos decides control-session fault injection for the
// orchestrator: internal/fault's Injector implements it. The indirection
// keeps this package free of a fault dependency.
type SessionChaos interface {
	// ResetSession reports whether the session to the site drops before
	// the next control message is sent.
	ResetSession(siteID int) bool
}

// siteTally tracks one site's control-plane message flow: sent counts
// messages pushed into the session, decoded counts UPDATEs the site router
// has finished processing. Flush waits for them to match and reports the
// difference per site when they don't.
type siteTally struct {
	sent, decoded atomic.Uint64
}

// Orchestrator manages the BGP control plane toward every site.
type Orchestrator struct {
	TB  *testbed.Testbed
	Sim *bgp.Sim

	// Chaos, when non-nil, injects control-session resets before sends;
	// the orchestrator self-heals by re-establishing the session.
	// SessionResets counts how many times it did.
	Chaos         SessionChaos
	SessionResets int

	mu       sync.Mutex
	sessions map[int]*speaker.Session
	tallies  map[int]*siteTally
	queue    []action
	routers  sync.WaitGroup

	// sent counts control messages pushed into sessions; decoded counts
	// UPDATEs the site routers have finished processing. Flush waits for
	// them to match.
	sent, decoded atomic.Uint64

	// Prefixes maps anycast prefix index → routable prefix. Built from the
	// testbed's anycast addresses as /24s.
	Prefixes []netip.Prefix
}

// New wires up an orchestrator with one in-process BGP session per site. The
// sessions run over synchronous pipes, exchanging genuine RFC 4271 bytes.
func New(tb *testbed.Testbed, sim *bgp.Sim) (*Orchestrator, error) {
	o := &Orchestrator{
		TB:       tb,
		Sim:      sim,
		sessions: make(map[int]*speaker.Session, len(tb.Sites)),
		tallies:  make(map[int]*siteTally, len(tb.Sites)),
	}
	for _, site := range tb.Sites {
		o.tallies[site.ID] = &siteTally{}
	}
	for _, addr := range tb.AnycastAddrs {
		o.Prefixes = append(o.Prefixes, netip.PrefixFrom(addr, 24).Masked())
	}
	for _, site := range tb.Sites {
		if err := o.connectSite(site); err != nil {
			o.Close()
			return nil, err
		}
	}
	return o, nil
}

// connectSite establishes the orchestrator↔site session and starts the site
// router stub.
func (o *Orchestrator) connectSite(site *testbed.Site) error {
	orchConn, siteConn := net.Pipe()

	type res struct {
		s   *speaker.Session
		err error
	}
	ch := make(chan res, 2)
	go func() {
		s, err := speaker.Establish(speaker.Config{
			AS: 64512, RouterID: 1, HoldTime: 30 * time.Second,
		}, orchConn)
		ch <- res{s, err}
	}()
	go func() {
		s, err := speaker.Establish(speaker.Config{
			AS: 64512 + uint16(site.ID), RouterID: uint32(site.ID), HoldTime: 30 * time.Second,
		}, siteConn)
		ch <- res{s, err}
	}()
	r1, r2 := <-ch, <-ch
	if r1.err != nil {
		return fmt.Errorf("orchestrator: site %d session: %w", site.ID, r1.err)
	}
	if r2.err != nil {
		return fmt.Errorf("orchestrator: site %d session: %w", site.ID, r2.err)
	}
	orchSess, siteSess := r1.s, r2.s
	if orchSess.PeerAS() == 64512 {
		orchSess, siteSess = siteSess, orchSess
	}
	o.mu.Lock()
	o.sessions[site.ID] = orchSess
	o.mu.Unlock()

	o.routers.Add(1)
	go o.siteRouter(site, siteSess)
	return nil
}

// ResetSite tears down the control session to a site and re-establishes it —
// the self-healing response to an injected (or real) session drop. Messages
// already decoded are unaffected; the caller sends on the fresh session.
func (o *Orchestrator) ResetSite(siteID int) error {
	site := o.TB.Site(siteID)
	if site == nil {
		return fmt.Errorf("orchestrator: unknown site %d", siteID)
	}
	o.mu.Lock()
	sess := o.sessions[siteID]
	delete(o.sessions, siteID)
	o.mu.Unlock()
	if sess != nil {
		sess.Close()
	}
	return o.connectSite(site)
}

// siteRouter is the stub running "at" a site: it consumes UPDATE messages
// from the orchestrator and queues the corresponding routing actions.
func (o *Orchestrator) siteRouter(site *testbed.Site, sess *speaker.Session) {
	defer o.routers.Done()
	for u := range sess.Updates() {
		o.routeUpdate(site, u)
		o.decoded.Add(1)
		o.tallies[site.ID].decoded.Add(1)
	}
}

// routeUpdate decodes one UPDATE into queued actions.
func (o *Orchestrator) routeUpdate(site *testbed.Site, u *wire.Update) {
	// Withdrawals carry no attributes: withdraw the prefix from every link
	// of this site that currently announces it. (The paper's experiments
	// withdraw per site, not per link.)
	for _, wd := range u.Withdrawn {
		if idx := o.prefixIndex(wd); idx >= 0 {
			o.enqueueWithdraw(site, bgp.PrefixID(idx))
		}
	}
	if u.Attrs == nil {
		return
	}
	ord, prepend := 0, 0
	for _, c := range u.Attrs.Communities {
		if c&0xffff0000 == communityBase {
			ord = int(c & 0xffff)
		}
	}
	// Prepending is conveyed in the AS_PATH itself: the origin ASN repeated
	// k times means k-1 prepends.
	if p := u.Attrs.FlatASPath(); len(p) > 0 {
		prepend = len(p) - 1
	}
	link, ok := site.LinkByOrdinal(ord)
	if !ok {
		return // unknown ordinal: drop, as a router with no matching policy would
	}
	for _, nlri := range u.NLRI {
		idx := o.prefixIndex(nlri)
		if idx < 0 {
			continue
		}
		o.mu.Lock()
		o.queue = append(o.queue, action{
			announce: true, prefix: bgp.PrefixID(idx), link: link, prepend: prepend,
		})
		o.mu.Unlock()
	}
}

func (o *Orchestrator) enqueueWithdraw(site *testbed.Site, prefix bgp.PrefixID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	links := append([]topology.LinkID{site.TransitLink}, site.PeerLinks...)
	for _, l := range links {
		o.queue = append(o.queue, action{announce: false, prefix: prefix, link: l})
	}
}

// prefixIndex resolves an announced prefix to its anycast index, or -1.
func (o *Orchestrator) prefixIndex(p netip.Prefix) int {
	for i, q := range o.Prefixes {
		if p == q {
			return i
		}
	}
	return -1
}

// Announce sends a real UPDATE over the site's BGP session instructing it to
// announce the prefix with the given index over the link with the given
// ordinal (0 = transit), with optional AS-path prepending.
func (o *Orchestrator) Announce(siteID, prefixIdx, linkOrdinal, prepend int) error {
	if err := o.maybeResetSession(siteID); err != nil {
		return err
	}
	sess, site, err := o.session(siteID)
	if err != nil {
		return err
	}
	if prefixIdx < 0 || prefixIdx >= len(o.Prefixes) {
		return fmt.Errorf("orchestrator: prefix index %d out of range", prefixIdx)
	}
	if _, ok := site.LinkByOrdinal(linkOrdinal); !ok {
		return fmt.Errorf("orchestrator: site %d has no link ordinal %d", siteID, linkOrdinal)
	}
	path := make([]uint32, 1+prepend)
	for i := range path {
		path[i] = 64512
	}
	attrs := &wire.PathAttrs{
		Origin:      wire.OriginIGP,
		ASPath:      []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: path}},
		NextHop:     o.TB.OrchAddr,
		Communities: []uint32{communityBase | uint32(linkOrdinal)},
	}
	if err := sess.Announce(o.Prefixes[prefixIdx], attrs); err != nil {
		return err
	}
	o.sent.Add(1)
	o.tallies[siteID].sent.Add(1)
	return nil
}

// maybeResetSession consults the chaos model and, when it fires, drops and
// re-establishes the site's control session before the next send.
func (o *Orchestrator) maybeResetSession(siteID int) error {
	if o.Chaos == nil || !o.Chaos.ResetSession(siteID) {
		return nil
	}
	if err := o.ResetSite(siteID); err != nil {
		return err
	}
	o.SessionResets++
	return nil
}

// Withdraw sends a real withdrawal for the prefix to the site, which removes
// it from all of the site's links.
func (o *Orchestrator) Withdraw(siteID, prefixIdx int) error {
	if err := o.maybeResetSession(siteID); err != nil {
		return err
	}
	sess, _, err := o.session(siteID)
	if err != nil {
		return err
	}
	if prefixIdx < 0 || prefixIdx >= len(o.Prefixes) {
		return fmt.Errorf("orchestrator: prefix index %d out of range", prefixIdx)
	}
	if err := sess.Withdraw(o.Prefixes[prefixIdx]); err != nil {
		return err
	}
	o.sent.Add(1)
	o.tallies[siteID].sent.Add(1)
	return nil
}

func (o *Orchestrator) session(siteID int) (*speaker.Session, *testbed.Site, error) {
	site := o.TB.Site(siteID)
	if site == nil {
		return nil, nil, fmt.Errorf("orchestrator: unknown site %d", siteID)
	}
	o.mu.Lock()
	sess := o.sessions[siteID]
	o.mu.Unlock()
	if sess == nil {
		return nil, nil, fmt.Errorf("orchestrator: no session to site %d", siteID)
	}
	return sess, site, nil
}

// SiteFlushError reports one site's undelivered control messages at flush
// time.
type SiteFlushError struct {
	SiteID  int
	Pending uint64
}

// FlushError is returned by FlushContext when the context expired before
// every sent control message was decoded. Sites lists who still owed
// messages, in site-ID order — nothing is dropped silently.
type FlushError struct {
	Sites []SiteFlushError
}

func (e *FlushError) Error() string {
	var b strings.Builder
	b.WriteString("orchestrator: flush deadline with undelivered messages:")
	for _, s := range e.Sites {
		fmt.Fprintf(&b, " site %d (%d pending)", s.SiteID, s.Pending)
	}
	return b.String()
}

// FlushContext waits for in-flight updates to be decoded, applies all queued
// routing actions in order (spaced by spacing of virtual time), and
// converges the simulation. It returns the number of actions applied.
//
// If ctx expires first, the actions decoded so far are still applied and the
// returned *FlushError lists, per site, how many sent messages were never
// decoded — so a wedged session degrades loudly instead of silently dropping
// withdrawals.
//
// Actions sent to *different* sites between two flushes are decoded by
// independent router goroutines, so their relative order is not guaranteed;
// when announcement order matters (it does — §4.2), announce one step and
// Flush before the next, exactly as the paper's orchestrator waits out its
// six-minute spacing.
func (o *Orchestrator) FlushContext(ctx context.Context, spacing time.Duration) (int, error) {
	// The site routers consume from session channels asynchronously: wait
	// until every sent control message has been decoded.
	var err error
	for o.decoded.Load() < o.sent.Load() {
		if ctx.Err() != nil {
			err = o.pendingError()
			break
		}
		time.Sleep(time.Millisecond)
	}

	o.mu.Lock()
	actions := o.queue
	o.queue = nil
	o.mu.Unlock()

	for i, a := range actions {
		a := a
		o.Sim.Engine.After(time.Duration(i)*spacing, func() {
			if a.announce {
				o.Sim.Announce(a.prefix, o.TB.Origin, a.link, a.prepend)
			} else {
				o.Sim.Withdraw(a.prefix, a.link)
			}
		})
	}
	o.Sim.Converge()
	return len(actions), err
}

// pendingError snapshots the per-site sent/decoded imbalance as a
// *FlushError, or nil when nothing is owed.
func (o *Orchestrator) pendingError() error {
	ids := make([]int, 0, len(o.tallies))
	for id := range o.tallies {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sites []SiteFlushError
	for _, id := range ids {
		t := o.tallies[id]
		if sent, dec := t.sent.Load(), t.decoded.Load(); sent > dec {
			sites = append(sites, SiteFlushError{SiteID: id, Pending: sent - dec})
		}
	}
	if len(sites) == 0 {
		return nil
	}
	return &FlushError{Sites: sites}
}

// Flush is FlushContext with the historical five-second deadline, dropping
// the error for callers that only need the applied-action count.
func (o *Orchestrator) Flush(spacing time.Duration) int {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n, _ := o.FlushContext(ctx, spacing)
	return n
}

// Close tears down every session.
func (o *Orchestrator) Close() {
	o.mu.Lock()
	ids := make([]int, 0, len(o.sessions))
	for id := range o.sessions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	sessions := make([]*speaker.Session, 0, len(ids))
	for _, id := range ids {
		sessions = append(sessions, o.sessions[id])
	}
	o.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
	o.routers.Wait()
}
