package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"anyopt"
	"anyopt/internal/analysis"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/predict"
	"anyopt/internal/core/prefs"
	"anyopt/internal/core/splpo"
	"anyopt/internal/topology"
)

// Sec45Schedule renders the §4.5 measurement-schedule analysis for the
// production-scale network (500 sites, 20 transits, 4 parallel prefixes).
func Sec45Schedule() string {
	plan := discovery.PlanTransitOnly(500, 20, 4, true)
	naivePairs := 500 * 499 / 2
	return fmt.Sprintf(
		"§4.5 schedule (500 sites, 20 transit providers, 4 parallel prefixes, 2h spacing):\n"+
			"  singleton experiments: %d → %.0f h (≈%.0f days)   [paper: 250 h ≈ 10 days]\n"+
			"  pairwise experiments:  %d → %.0f h (≈%.0f days)   [paper: 190 h ≈ 8 days]\n"+
			"  total ≈ %.1f days; flat site-level pairwise would need %d experiments\n",
		plan.SingletonExperiments, plan.SingletonHours(), plan.SingletonHours()/24,
		plan.PairwiseExperiments, plan.PairwiseHours(), plan.PairwiseHours()/24,
		plan.TotalDays(), naivePairs)
}

// RepStabilityResult is the §5.1 representative-site experiment.
type RepStabilityResult struct {
	// SamePrefFrac is the fraction of pairwise preferences unchanged when
	// every provider's representative site is swapped (paper: 94.2%).
	SamePrefFrac float64
	Compared     int
}

// Render formats the result.
func (r RepStabilityResult) Render() string {
	return fmt.Sprintf("Representative-site stability: %.1f%% of %d pairwise preferences unchanged when representatives vary (paper: 94.2%%)\n",
		100*r.SamePrefFrac, r.Compared)
}

// RepresentativeStability re-runs provider-level discovery with the
// alternative representative per provider and counts unchanged preferences.
func (e *Env) RepresentativeStability() (RepStabilityResult, error) {
	d := e.Sys.Disc
	repsA := d.Representatives()
	repsB := map[topology.ASN]int{}
	for _, s := range e.Sys.TB.Sites {
		if cur, ok := repsB[s.Transit]; !ok || s.ID > cur {
			repsB[s.Transit] = s.ID
		}
	}
	a, err := d.ProviderPrefs(repsA)
	if err != nil {
		return RepStabilityResult{}, err
	}
	b, err := d.ProviderPrefs(repsB)
	if err != nil {
		return RepStabilityResult{}, err
	}
	items := a.Items()
	same, total := 0, 0
	for _, c := range a.Clients() {
		cpB := b.Get(c)
		if cpB == nil {
			continue
		}
		for x := 0; x < len(items); x++ {
			for y := x + 1; y < len(items); y++ {
				rA, wA := a.Get(c).Relation(items[x], items[y])
				rB, wB := cpB.Relation(items[x], items[y])
				if rA == prefs.RelUnknown || rB == prefs.RelUnknown {
					continue
				}
				total++
				if rA == rB && wA == wB {
					same++
				}
			}
		}
	}
	if total == 0 {
		return RepStabilityResult{}, fmt.Errorf("experiments: no comparable preferences")
	}
	return RepStabilityResult{SamePrefFrac: float64(same) / float64(total), Compared: total}, nil
}

// StabilityResult is the §6 longitudinal study.
type StabilityResult struct {
	Weeks []StabilityWeek
}

// StabilityWeek is one re-measurement.
type StabilityWeek struct {
	Week          int
	UnchangedFrac float64
	MeanRTT       time.Duration
}

// Render formats the study.
func (r StabilityResult) Render() string {
	tab := analysis.NewTable("§6 stability: weekly re-measurement of the deployed optimum (paper: >90% unchanged over 3 weeks)",
		"week", "catchments unchanged %", "mean RTT")
	for _, w := range r.Weeks {
		tab.AddRow(w.Week, 100*w.UnchangedFrac, w.MeanRTT)
	}
	return tab.String()
}

// Stability deploys the k-site optimum and re-measures weekly under churn.
func (e *Env) Stability(k, weeks int, churnPerWeek float64) (StabilityResult, error) {
	if err := e.Discover(); err != nil {
		return StabilityResult{}, err
	}
	if k <= 0 {
		k = 12
	}
	if weeks <= 0 {
		weeks = 3
	}
	opt, err := e.Sys.Optimize(k, 0)
	if err != nil {
		return StabilityResult{}, err
	}
	base, baseRTTs := e.Sys.MeasureConfiguration(opt.Config)
	mean0, _ := predict.MeasuredMeanRTT(baseRTTs)
	res := StabilityResult{Weeks: []StabilityWeek{{Week: 0, UnchangedFrac: 1, MeanRTT: mean0}}}
	for w := 1; w <= weeks; w++ {
		topology.Churn(e.Sys.Topo, churnPerWeek, e.Seed*100+int64(w))
		catch, rtts := e.Sys.MeasureConfiguration(opt.Config)
		same, n := 0, 0
		for c, s0 := range base {
			if s1, ok := catch[c]; ok {
				n++
				if s0 == s1 {
					same++
				}
			}
		}
		mean, _ := predict.MeasuredMeanRTT(rtts)
		res.Weeks = append(res.Weeks, StabilityWeek{
			Week:          w,
			UnchangedFrac: float64(same) / float64(n),
			MeanRTT:       mean,
		})
	}
	return res, nil
}

// AblationResult compares a design choice's on/off behavior.
type AblationResult struct {
	Name     string
	Rows     [][2]string
	Comments string
}

// Render formats the ablation.
func (r AblationResult) Render() string {
	out := fmt.Sprintf("Ablation: %s\n", r.Name)
	for _, row := range r.Rows {
		out += fmt.Sprintf("  %-42s %s\n", row[0], row[1])
	}
	if r.Comments != "" {
		out += "  " + r.Comments + "\n"
	}
	return out
}

// AblationArrivalOrder quantifies what the arrival-order tie-breaker model
// buys: with it off (spec-only routers), reversing announcement order can't
// flip catchments.
func (e *Env) AblationArrivalOrder() (AblationResult, error) {
	onFlips := analysis.Mean(e.Fig4a().FlipFracs())

	offOpts := anyopt.DefaultOptions()
	offOpts.Topology = e.Sys.Topo.Params
	offOpts.Discovery.SimCfg.ArrivalOrderTieBreak = false
	offSys, err := anyopt.New(offOpts)
	if err != nil {
		return AblationResult{}, err
	}
	offEnv := &Env{Sys: offSys, Seed: e.Seed}
	offFlips := analysis.Mean(offEnv.Fig4a().FlipFracs())

	return AblationResult{
		Name: "arrival-order tie-breaker (Cisco/Juniper oldest-route rule)",
		Rows: [][2]string{
			{"mean catchment flip on order reversal, ON", fmt.Sprintf("%.1f%%", 100*onFlips)},
			{"mean catchment flip on order reversal, OFF", fmt.Sprintf("%.1f%%", 100*offFlips)},
		},
		Comments: "with spec-compliant routers announcement order is irrelevant; the paper's §4.2 machinery exists because deployed routers are not spec-compliant here",
	}, nil
}

// AblationTwoLevel counts experiments: flat pairwise over sites vs the
// two-level decomposition (§4.3).
func (e *Env) AblationTwoLevel() AblationResult {
	nSites := len(e.Sys.TB.Sites)
	providers := e.Sys.TB.TransitProviders()
	flat := nSites * (nSites - 1)                     // both orders
	twoLevel := len(providers) * (len(providers) - 1) // provider pairs, both orders
	for _, p := range providers {
		k := len(e.Sys.TB.SitesOfTransit(p))
		twoLevel += k * (k - 1) / 2
	}
	return AblationResult{
		Name: "two-level preference discovery (§4.3)",
		Rows: [][2]string{
			{"flat order-aware pairwise experiments", fmt.Sprint(flat)},
			{"two-level experiments (provider + intra-AS)", fmt.Sprint(twoLevel)},
			{"reduction", fmt.Sprintf("%.1fx", float64(flat)/float64(twoLevel))},
		},
	}
}

// AblationRTTHeuristic measures the prediction-agreement cost of replacing
// measured intra-AS preferences with the §4.3 RTT heuristic.
func (e *Env) AblationRTTHeuristic() (AblationResult, error) {
	if err := e.Discover(); err != nil {
		return AblationResult{}, err
	}
	heur := &predict.Predictor{
		TB:              e.Sys.TB,
		Providers:       e.Sys.Pred.Providers,
		RTT:             e.Sys.RTT,
		UseRTTHeuristic: true,
	}
	cfg := e.Sys.AllSitesConfig()
	a := e.Sys.Pred.All(cfg)
	b := heur.All(cfg)
	same, n := 0, 0
	for c, s := range a {
		if s2, ok := b[c]; ok {
			n++
			if s == s2 {
				same++
			}
		}
	}
	return AblationResult{
		Name: "intra-AS RTT heuristic vs measured site preferences (§4.3)",
		Rows: [][2]string{
			{"catchment agreement over all-sites config", fmt.Sprintf("%.1f%% of %d clients", 100*float64(same)/float64(n), n)},
		},
	}, nil
}

// AblationSolvers compares the exhaustive SPLPO solver against local search
// and the baselines on the discovered instance.
func (e *Env) AblationSolvers(k int) (AblationResult, error) {
	if err := e.Discover(); err != nil {
		return AblationResult{}, err
	}
	in, _ := e.Sys.Pred.BuildInstance(e.Sys.AnnOrder)
	start := time.Now()
	exact, evaluated, err := splpo.Exhaustive(in, splpo.Options{ExactSize: k})
	if err != nil {
		return AblationResult{}, err
	}
	exactTime := time.Since(start)
	start = time.Now()
	ls, err := splpo.LocalSearch(in, uint64(1)<<uint(k)-1, splpo.Options{ExactSize: k}, 0)
	if err != nil {
		return AblationResult{}, err
	}
	lsTime := time.Since(start)
	greedy, err := splpo.GreedyByCost(in, k)
	if err != nil {
		return AblationResult{}, err
	}
	rng := rand.New(rand.NewSource(e.Seed))
	random, err := splpo.BestRandom(in, k, 3, rng)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name: fmt.Sprintf("SPLPO solvers at k=%d (%d subsets enumerated)", k, evaluated),
		Rows: [][2]string{
			{"exhaustive mean cost", fmt.Sprintf("%.1f ms in %v", exact.MeanCost, exactTime.Round(time.Millisecond))},
			{"local search mean cost", fmt.Sprintf("%.1f ms in %v", ls.MeanCost, lsTime.Round(time.Millisecond))},
			{"greedy-by-unicast mean cost", fmt.Sprintf("%.1f ms", greedy.MeanCost)},
			{"best-of-3-random mean cost", fmt.Sprintf("%.1f ms", random.MeanCost)},
		},
	}, nil
}
