package experiments

import (
	"fmt"
	"sort"
	"time"

	"anyopt"
	"anyopt/internal/analysis"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/peering"
	"anyopt/internal/topology"
)

// Fig7Result holds the peering evaluation (§5.4).
type Fig7Result struct {
	// BaseConfig is the transit-only AnyOpt configuration.
	BaseConfig anyopt.Config
	// OnePass is the full §4.4 campaign outcome.
	OnePass *peering.Result
	// CatchmentFracs is each peer's one-pass catchment as a fraction of all
	// targets (Figure 7a).
	CatchmentFracs []float64
	// RankedDeltasMs is each peer's mean-RTT change, most beneficial first
	// (Figure 7b).
	RankedDeltasMs []float64
	// MeanTransitOnly/MeanBenefit/MeanAllPeers are the deployed means of the
	// three Figure 7c configurations, in ms.
	MeanTransitOnly float64
	MeanBenefit     float64
	MeanAllPeers    float64
}

// Render formats Figures 7a, 7b, and 7c.
func (r Fig7Result) Render() string {
	out := "Figure 7a: CDF of peer catchment sizes (paper: >80% of peers catch <2.5% of targets)\n"
	out += analysis.FormatCDFSeries("catchment fraction of targets",
		r.CatchmentFracs, []float64{0, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2})

	out += "\nFigure 7b: mean-RTT change per enabled peer, ranked (paper: only a few peers matter)\n"
	tab := analysis.NewTable("", "rank", "delta ms")
	step := len(r.RankedDeltasMs) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.RankedDeltasMs); i += step {
		tab.AddRow(i+1, r.RankedDeltasMs[i])
	}
	out += tab.String()

	out += fmt.Sprintf("\nFigure 7c: deployed mean RTT (paper: AnyOpt 68ms → +BenefitPeers 63ms → +AllPeers 61ms)\n"+
		"  AnyOpt (transit only):     %.1f ms\n"+
		"  AnyOpt + beneficial peers: %.1f ms (%d peers included)\n"+
		"  AnyOpt + all peers:        %.1f ms\n",
		r.MeanTransitOnly, r.MeanBenefit, len(r.OnePass.Included), r.MeanAllPeers)
	return out
}

// Fig7 runs the one-pass campaign over every peering link on top of the
// k-site AnyOpt optimum and deploys the three comparison configurations.
func (e *Env) Fig7(k int) (Fig7Result, error) {
	if err := e.Discover(); err != nil {
		return Fig7Result{}, err
	}
	if k <= 0 {
		k = 12
	}
	sys := e.Sys
	opt, err := sys.Optimize(k, 0)
	if err != nil {
		return Fig7Result{}, err
	}
	peers := sys.AllPeerLinks()
	one := sys.OnePassPeering(opt.Config, peers)

	res := Fig7Result{BaseConfig: opt.Config, OnePass: one}
	total := float64(len(sys.Topo.Targets))
	for _, rep := range one.Reports {
		res.CatchmentFracs = append(res.CatchmentFracs, float64(len(rep.Catchment))/total)
		res.RankedDeltasMs = append(res.RankedDeltasMs, float64(rep.Delta)/float64(time.Millisecond))
	}
	sort.Float64s(res.RankedDeltasMs)

	res.MeanTransitOnly = float64(one.BaselineMean) / float64(time.Millisecond)
	// The two comparison deployments (beneficial peers, all peers) are
	// independent experiments; submit them as one batch.
	means := deployWithPeers(e, opt.Config, [][]topology.LinkID{one.Included, peers})
	res.MeanBenefit = means[0]
	res.MeanAllPeers = means[1]
	return res, nil
}

// deployWithPeers measures the mean client RTT of base plus each given peer
// set, one batched experiment per set.
func deployWithPeers(e *Env, base anyopt.Config, peerSets [][]topology.LinkID) []float64 {
	deps := make([]discovery.PeerDeployment, len(peerSets))
	for i, ps := range peerSets {
		deps[i] = discovery.PeerDeployment{Sites: base, Peers: ps}
	}
	out := make([]float64, len(peerSets))
	for i, obs := range e.Sys.Disc.RunConfigurationsWithPeers(deps) {
		var sum float64
		n := 0
		for _, o := range obs {
			if o.HasRTT {
				sum += float64(o.RTT)
				n++
			}
		}
		if n > 0 {
			out[i] = sum / float64(n) / float64(time.Millisecond)
		}
	}
	return out
}
