package experiments

import (
	"fmt"

	"math/rand"
	"time"

	"anyopt"
	"anyopt/internal/analysis"
	"anyopt/internal/core/predict"
	"anyopt/internal/topology"
)

// Fig5Result holds the prediction-vs-deployment evaluation (§5.2).
type Fig5Result struct {
	Configs []Fig5Config
}

// Fig5Config is one random configuration's prediction quality.
type Fig5Config struct {
	Config        anyopt.Config
	Accuracy      float64 // Figure 5a
	Comparable    int
	PredictedMean time.Duration
	MeasuredMean  time.Duration
	AbsErr        time.Duration // Figure 5b
	RelErr        float64       // Figure 5c
}

// Accuracies lists per-config catchment accuracies.
func (r Fig5Result) Accuracies() []float64 {
	out := make([]float64, len(r.Configs))
	for i, c := range r.Configs {
		out[i] = c.Accuracy
	}
	return out
}

// AbsErrsMs lists per-config absolute mean-RTT errors in milliseconds.
func (r Fig5Result) AbsErrsMs() []float64 {
	out := make([]float64, len(r.Configs))
	for i, c := range r.Configs {
		out[i] = float64(c.AbsErr) / float64(time.Millisecond)
	}
	return out
}

// RelErrs lists per-config relative mean-RTT errors.
func (r Fig5Result) RelErrs() []float64 {
	out := make([]float64, len(r.Configs))
	for i, c := range r.Configs {
		out[i] = c.RelErr
	}
	return out
}

// Render formats Figures 5a, 5b, and 5c.
func (r Fig5Result) Render() string {
	tab := analysis.NewTable("Figure 5a/5c: catchment accuracy and RTT error per random configuration (paper: mean accuracy 94.7%, mean rel err ≤4.6%)",
		"config", "sites", "accuracy %", "pred mean", "meas mean", "rel err %")
	for _, c := range r.Configs {
		tab.AddRow(joinInts(c.Config), len(c.Config), 100*c.Accuracy,
			c.PredictedMean, c.MeasuredMean, 100*c.RelErr)
	}
	out := tab.String()
	out += fmt.Sprintf("mean accuracy %.1f%%  mean rel err %.1f%%\n",
		100*analysis.Mean(r.Accuracies()), 100*analysis.Mean(r.RelErrs()))
	out += "\nFigure 5b: CDF of |predicted - measured| mean RTT (paper: 80% within 6 ms)\n"
	out += analysis.FormatCDFSeries("absolute error (ms)", r.AbsErrsMs(),
		[]float64{1, 2, 3, 4, 5, 6, 8, 10, 15, 20})
	return out
}

// Fig5 predicts and then deploys numConfigs random configurations with sizes
// drawn from 1..14 (the paper uses 38). churnFrac, when nonzero, perturbs
// the Internet between discovery and each deployment, modeling the drift a
// real campaign experiences between measuring preferences and using them.
func (e *Env) Fig5(numConfigs int, churnFrac float64) (Fig5Result, error) {
	if err := e.Discover(); err != nil {
		return Fig5Result{}, err
	}
	if numConfigs <= 0 {
		numConfigs = 38
	}
	rng := rand.New(rand.NewSource(e.Seed*31 + 7))

	// Draw configurations and predictions up front; only rng state and the
	// (read-only until churn) discovery state feed them.
	cfgs := make([]anyopt.Config, numConfigs)
	predCatch := make([]map[anyopt.Client]int, numConfigs)
	predMeans := make([]time.Duration, numConfigs)
	for i := 0; i < numConfigs; i++ {
		size := 1 + rng.Intn(14)
		cfgs[i] = drawConfig(e.Sys, rng, size)
		predicted, err := e.Sys.PredictCatchments(cfgs[i])
		if err != nil {
			return Fig5Result{}, err
		}
		predMean, _, err := e.Sys.PredictMeanRTT(cfgs[i])
		if err != nil {
			return Fig5Result{}, err
		}
		predCatch[i] = predicted
		predMeans[i] = predMean
	}

	// Deploy and measure. With churn the topology mutates between
	// measurements — experiments are no longer independent, so they run
	// strictly in sequence; without churn the whole sweep batches across the
	// executor.
	measuredAll := make([]discoveryResult, numConfigs)
	if churnFrac > 0 {
		for i := 0; i < numConfigs; i++ {
			topology.Churn(e.Sys.Topo, churnFrac, e.Seed*1000+int64(i))
			catch, rtts := e.Sys.MeasureConfiguration(cfgs[i])
			measuredAll[i] = discoveryResult{catch, rtts}
		}
	} else {
		for i, r := range e.Sys.MeasureConfigurations(cfgs) {
			measuredAll[i] = discoveryResult{r.Catchments, r.RTTs}
		}
	}

	var res Fig5Result
	for i := 0; i < numConfigs; i++ {
		acc, n := predict.Accuracy(predCatch[i], measuredAll[i].catch)
		measMean, _ := predict.MeasuredMeanRTT(measuredAll[i].rtts)

		absErr := predMeans[i] - measMean
		if absErr < 0 {
			absErr = -absErr
		}
		res.Configs = append(res.Configs, Fig5Config{
			Config:        cfgs[i],
			Accuracy:      acc,
			Comparable:    n,
			PredictedMean: predMeans[i],
			MeasuredMean:  measMean,
			AbsErr:        absErr,
			RelErr:        analysis.RelErr(float64(predMeans[i]), float64(measMean)),
		})
	}
	return res, nil
}

// discoveryResult pairs one deployment's measured catchments and RTTs.
type discoveryResult struct {
	catch map[anyopt.Client]int
	rtts  map[anyopt.Client]time.Duration
}
