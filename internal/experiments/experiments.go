// Package experiments implements the paper's evaluation (§5): one entry
// point per table and figure, shared by cmd/figures (which renders them as
// text) and the top-level benchmarks (which regenerate them under go test
// -bench). Each experiment returns a structured result plus a Render()
// string whose series mirror the paper's plot.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"anyopt"
	"anyopt/internal/analysis"
	"anyopt/internal/core/prefs"
	"anyopt/internal/topology"
)

// Env is a lazily discovered system shared by the experiments.
type Env struct {
	Sys  *anyopt.System
	Seed int64

	discovered bool
}

// NewEnv builds the experiment environment. scale is "test" (fast,
// CI-sized), "paper" (thousands of client networks, as the evaluation
// should be read), or "internet" (~100k ASes with power-law attachment, the
// scale the columnar stores and sharded campaigns exist for).
func NewEnv(scale string, seed int64) (*Env, error) {
	var opts anyopt.Options
	switch scale {
	case "", "test":
		opts = anyopt.DefaultOptions()
	case "paper":
		opts = anyopt.PaperScaleOptions()
	case "internet":
		opts = anyopt.InternetScaleOptions()
	default:
		return nil, fmt.Errorf("experiments: unknown scale %q", scale)
	}
	opts.Topology.Seed = seed
	opts.Testbed.Seed = seed
	sys, err := anyopt.New(opts)
	if err != nil {
		return nil, err
	}
	return &Env{Sys: sys, Seed: seed}, nil
}

// MarkDiscovered tells the environment that discovery results were installed
// externally (e.g., loaded from a campaign snapshot).
func (e *Env) MarkDiscovered() { e.discovered = true }

// Discover runs the measurement campaign once.
func (e *Env) Discover() error {
	if e.discovered {
		return nil
	}
	if err := e.Sys.RunDiscovery(); err != nil {
		return err
	}
	e.discovered = true
	return nil
}

// Table1 renders the testbed inventory in the layout of the paper's Table 1.
func (e *Env) Table1() string {
	tab := analysis.NewTable("Table 1: testbed sites", "Site", "Location", "Transit", "#peers")
	for _, s := range e.Sys.TB.Sites {
		tab.AddRow(s.ID, s.City, s.TransitName, len(s.PeerLinks))
	}
	return tab.String()
}

// Fig4aResult is the per-provider-pair catchment flip measurement.
type Fig4aResult struct {
	Pairs []Fig4aPair
}

// Fig4aPair is one provider pair's order-reversal experiment.
type Fig4aPair struct {
	A, B     string
	FlipFrac float64
	Targets  int
}

// FlipFracs lists the per-pair flip fractions.
func (r Fig4aResult) FlipFracs() []float64 {
	out := make([]float64, len(r.Pairs))
	for i, p := range r.Pairs {
		out[i] = p.FlipFrac
	}
	return out
}

// Render formats the figure.
func (r Fig4aResult) Render() string {
	tab := analysis.NewTable("Figure 4a: targets changing catchment when announcement order is reversed (paper: 6-14%)",
		"providers", "flipped %", "targets")
	for _, p := range r.Pairs {
		tab.AddRow(p.A+" vs "+p.B, 100*p.FlipFrac, p.Targets)
	}
	f := r.FlipFracs()
	return tab.String() + fmt.Sprintf("min %.1f%%  mean %.1f%%  max %.1f%%\n",
		100*analysis.Percentile(f, 0), 100*analysis.Mean(f), 100*analysis.Percentile(f, 100))
}

// Fig4a runs the order-reversal experiments across all provider pairs. Both
// orders of every pair are submitted as one batch, so the sweep spreads
// across the discovery executor's workers.
func (e *Env) Fig4a() Fig4aResult {
	d := e.Sys.Disc
	reps := d.Representatives()
	providers := e.Sys.TB.TransitProviders()
	name := providerNames(e.Sys)
	type pp struct{ a, b int }
	var pairs []pp
	var configs [][]int
	for a := 0; a < len(providers); a++ {
		for b := a + 1; b < len(providers); b++ {
			pairs = append(pairs, pp{a, b})
			configs = append(configs,
				[]int{reps[providers[a]], reps[providers[b]]},
				[]int{reps[providers[b]], reps[providers[a]]})
		}
	}
	results := d.RunConfigurations(configs)
	var res Fig4aResult
	for k, pr := range pairs {
		ab, ba := results[2*k], results[2*k+1]
		flip, n := 0, 0
		for c, site := range ab {
			if s2, ok := ba[c]; ok {
				n++
				if s2 != site {
					flip++
				}
			}
		}
		res.Pairs = append(res.Pairs, Fig4aPair{
			A: name[providers[pr.a]], B: name[providers[pr.b]],
			FlipFrac: float64(flip) / float64(n), Targets: n,
		})
	}
	return res
}

// Fig4bResult holds total-order fractions per provider count.
type Fig4bResult struct {
	// Providers[i] is the provider count for row i (3..N).
	Providers []int
	// NoOrderNaive/NoOrderAware are the fractions of clients *without* a
	// total order, as the paper plots them.
	NoOrderNaive []float64
	NoOrderAware []float64
}

// Render formats the figure.
func (r Fig4bResult) Render() string {
	tab := analysis.NewTable("Figure 4b: clients without a total provider-level order (paper at 6: naive 21.7%, order-aware 10.8%)",
		"#providers", "naive %", "order-aware %")
	for i, n := range r.Providers {
		tab.AddRow(n, 100*r.NoOrderNaive[i], 100*r.NoOrderAware[i])
	}
	return tab.String()
}

// Fig4b measures the fraction of clients lacking a total order as the
// number of providers grows, with and without announcement-order awareness.
func (e *Env) Fig4b() (Fig4bResult, error) {
	d := e.Sys.Disc
	reps := d.Representatives()
	ordered, err := d.ProviderPrefs(reps)
	if err != nil {
		return Fig4bResult{}, err
	}
	naive, err := d.ProviderPrefsNaive(reps)
	if err != nil {
		return Fig4bResult{}, err
	}
	items := ordered.Items()
	var res Fig4bResult
	for n := 3; n <= len(items); n++ {
		sub := items[:n]
		res.Providers = append(res.Providers, n)
		res.NoOrderNaive = append(res.NoOrderNaive, 1-naive.FracWithTotalOrder(sub))
		res.NoOrderAware = append(res.NoOrderAware, 1-ordered.FracWithTotalOrder(sub))
	}
	return res, nil
}

// Fig4cResult holds site-level total-order fractions.
type Fig4cResult struct {
	Sites      []int
	FlatNaive  []float64 // fraction WITH a total order, flat simultaneous pairwise
	TwoLevel   []float64 // fraction WITH a total order, two-level order-aware
	FinalSites int
}

// Render formats the figure.
func (r Fig4cResult) Render() string {
	tab := analysis.NewTable("Figure 4c: clients with a total site-level order (paper at 15: naive 15.3%, two-level 88.9%)",
		"#sites", "flat-naive %", "two-level %")
	for i, n := range r.Sites {
		tab.AddRow(n, 100*r.FlatNaive[i], 100*r.TwoLevel[i])
	}
	return tab.String()
}

// Fig4c compares flat order-oblivious site-level discovery against the
// two-level order-aware approach as sites are added.
func (e *Env) Fig4c(siteCounts []int) (Fig4cResult, error) {
	d := e.Sys.Disc
	tb := e.Sys.TB
	if len(siteCounts) == 0 {
		siteCounts = []int{6, 9, 12, 15}
	}
	allSites := make([]int, len(tb.Sites))
	for i, s := range tb.Sites {
		allSites[i] = s.ID
	}

	// Two-level machinery, measured once over all 15 sites.
	reps := d.Representatives()
	ordered, err := d.ProviderPrefs(reps)
	if err != nil {
		return Fig4cResult{}, err
	}
	provOrder, _ := ordered.BestAnnouncementOrder(7)
	intra := map[topology.ASN]*prefs.Store{}
	for _, pASN := range tb.TransitProviders() {
		if len(tb.SitesOfTransit(pASN)) < 2 {
			continue
		}
		st, err := d.SitePrefs(pASN)
		if err != nil {
			return Fig4cResult{}, err
		}
		intra[pASN] = st
	}

	var res Fig4cResult
	res.FinalSites = len(allSites)
	for _, n := range siteCounts {
		if n > len(allSites) {
			n = len(allSites)
		}
		subset := allSites[:n]
		flat, err := d.NaiveSitePrefs(subset)
		if err != nil {
			return Fig4cResult{}, err
		}
		res.Sites = append(res.Sites, n)
		res.FlatNaive = append(res.FlatNaive, flat.FracWithTotalOrder(flat.Items()))
		res.TwoLevel = append(res.TwoLevel, e.twoLevelFrac(ordered, provOrder, intra, subset))
	}
	return res, nil
}

// twoLevelFrac computes the fraction of clients with a complete two-level
// order over the given sites: a provider-level total order plus a site-level
// total order within every enabled multi-site provider.
func (e *Env) twoLevelFrac(ordered *prefs.Store, provOrder []prefs.Item, intra map[topology.ASN]*prefs.Store, sites []int) float64 {
	tb := e.Sys.TB
	// Group enabled sites by provider.
	byProv := map[topology.ASN][]prefs.Item{}
	provSet := map[prefs.Item]bool{}
	for _, id := range sites {
		s := tb.Site(id)
		byProv[s.Transit] = append(byProv[s.Transit], prefs.Item(id))
		provSet[prefs.Item(s.Transit)] = true
	}
	var enabledProv []prefs.Item
	for _, p := range provOrder {
		if provSet[p] {
			enabledProv = append(enabledProv, p)
		}
	}
	clients := ordered.Clients()
	ok := 0
	for _, c := range clients {
		if !ordered.Get(c).HasTotalOrder(enabledProv) {
			continue
		}
		good := true
		for pASN, ss := range byProv {
			if len(ss) < 2 {
				continue
			}
			st := intra[pASN]
			if st == nil {
				good = false
				break
			}
			cp := st.Get(c)
			if cp == nil || !cp.HasTotalOrder(ss) {
				good = false
				break
			}
		}
		if good {
			ok++
		}
	}
	if len(clients) == 0 {
		return 0
	}
	return float64(ok) / float64(len(clients))
}

func providerNames(sys *anyopt.System) map[topology.ASN]string {
	out := map[topology.ASN]string{}
	for _, s := range sys.TB.Sites {
		out[s.Transit] = s.TransitName
	}
	return out
}

// joinInts renders a config compactly.
func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// drawConfig samples a random configuration of the given size for Figure 5.
func drawConfig(sys *anyopt.System, rng *rand.Rand, size int) anyopt.Config {
	cfg, err := sys.RandomConfig(size, rng)
	if err != nil {
		panic(err)
	}
	return cfg
}
