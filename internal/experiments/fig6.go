package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"anyopt"
	"anyopt/internal/analysis"
	"anyopt/internal/core/predict"
	"anyopt/internal/core/prefs"
)

// Fig6Result compares deployed configurations (§5.3): the AnyOpt optimum
// against the greedy-by-unicast, best-random, and all-sites baselines.
type Fig6Result struct {
	Series []Fig6Series
}

// Fig6Series is one deployed configuration's client RTT distribution.
type Fig6Series struct {
	Name   string
	Config anyopt.Config
	RTTsMs []float64
}

// Mean returns the series' mean RTT in ms.
func (s Fig6Series) Mean() float64 { return analysis.Mean(s.RTTsMs) }

// Median returns the series' median RTT in ms.
func (s Fig6Series) Median() float64 { return analysis.Median(s.RTTsMs) }

// Get returns the series with the given name.
func (r Fig6Result) Get(name string) *Fig6Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// Render formats Figure 6.
func (r Fig6Result) Render() string {
	tab := analysis.NewTable("Figure 6: client RTT distributions per configuration (paper: AnyOpt-12 median 43ms vs 12-Greedy 76ms; −33ms mean)",
		"series", "sites", "median ms", "mean ms", "p90 ms")
	for _, s := range r.Series {
		tab.AddRow(s.Name, len(s.Config), s.Median(), s.Mean(), analysis.Percentile(s.RTTsMs, 90))
	}
	out := tab.String() + "\nCDF series (fraction of targets with RTT ≤ x ms):\n"
	grid := []float64{25, 50, 75, 100, 150, 200, 300, 400, 600}
	for _, s := range r.Series {
		out += analysis.FormatCDFSeries(s.Name, s.RTTsMs, grid)
	}
	out += "\nCDF shape (x = grid above):\n"
	for _, s := range r.Series {
		vals := make([]float64, len(grid))
		for i, g := range grid {
			vals[i] = analysis.CDFAt(s.RTTsMs, g)
		}
		out += fmt.Sprintf("  %-12s %s\n", s.Name, analysis.Sparkline(vals))
	}
	return out
}

// Fig6 finds the AnyOpt optimum with k sites, deploys it alongside the
// baselines, and measures every target's RTT under each.
func (e *Env) Fig6(k int) (Fig6Result, error) {
	if err := e.Discover(); err != nil {
		return Fig6Result{}, err
	}
	if k <= 0 {
		k = 12
	}
	sys := e.Sys

	opt, err := sys.Optimize(k, 0)
	if err != nil {
		return Fig6Result{}, err
	}
	greedy, err := sys.GreedyConfig(k)
	if err != nil {
		return Fig6Result{}, err
	}

	// "4-Random": the best of three random configurations built from two
	// providers with two sites each (§5.3). All three trial deployments are
	// independent, so they go out as one batch.
	rng := rand.New(rand.NewSource(e.Seed*17 + 3))
	trials := make([]anyopt.Config, 3)
	for i := range trials {
		trials[i] = e.twoByTwoConfig(rng)
	}
	var bestRandom anyopt.Config
	bestMean := time.Duration(1<<62 - 1)
	for i, r := range sys.MeasureConfigurations(trials) {
		if mean, n := predict.MeasuredMeanRTT(r.RTTs); n > 0 && mean < bestMean {
			bestMean, bestRandom = mean, trials[i]
		}
	}

	series := []struct {
		name string
		cfg  anyopt.Config
	}{
		{fmt.Sprintf("AnyOpt-%d", k), opt.Config},
		{fmt.Sprintf("%d-Greedy", k), greedy},
		{"4-Random", bestRandom},
		{fmt.Sprintf("%d-all", len(sys.TB.Sites)), sys.AllSitesConfig()},
	}
	cfgs := make([]anyopt.Config, len(series))
	for i, s := range series {
		cfgs[i] = s.cfg
	}
	var res Fig6Result
	for i, r := range sys.MeasureConfigurations(cfgs) {
		clients := make([]prefs.Client, 0, len(r.RTTs))
		for c := range r.RTTs {
			clients = append(clients, c)
		}
		sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
		ms := make([]float64, 0, len(clients))
		for _, c := range clients {
			ms = append(ms, float64(r.RTTs[c])/float64(time.Millisecond))
		}
		res.Series = append(res.Series, Fig6Series{Name: series[i].name, Config: series[i].cfg, RTTsMs: ms})
	}
	return res, nil
}

// twoByTwoConfig draws two random providers and two random sites within each
// (or one when the provider hosts a single site, topping up from a third
// provider so the config still has four sites when possible).
func (e *Env) twoByTwoConfig(rng *rand.Rand) anyopt.Config {
	tb := e.Sys.TB
	provs := tb.TransitProviders()
	rng.Shuffle(len(provs), func(i, j int) { provs[i], provs[j] = provs[j], provs[i] })
	var cfg anyopt.Config
	for _, p := range provs {
		if len(cfg) >= 4 {
			break
		}
		sites := tb.SitesOfTransit(p)
		rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })
		for i := 0; i < 2 && i < len(sites) && len(cfg) < 4; i++ {
			cfg = append(cfg, sites[i].ID)
		}
	}
	// Re-order to the global announcement order for deployability.
	if e.Sys.Pred != nil {
		return e.Sys.Pred.SubsetToConfig(predict.ConfigToSubset(cfg), e.annOrder())
	}
	return cfg
}

func (e *Env) annOrder() []prefs.Item { return e.Sys.AnnOrder }
