package experiments

import (
	"strings"
	"testing"

	"anyopt/internal/analysis"
)

// envOnce shares the (expensive) discovered environment across tests.
var testEnv *Env

func getEnv(t *testing.T) *Env {
	t.Helper()
	if testEnv == nil {
		env, err := NewEnv("test", 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Discover(); err != nil {
			t.Fatal(err)
		}
		testEnv = env
	}
	return testEnv
}

func TestNewEnvUnknownScale(t *testing.T) {
	if _, err := NewEnv("galactic", 1); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestTable1Render(t *testing.T) {
	env := getEnv(t)
	out := env.Table1()
	for _, want := range []string{"Atlanta", "Telia", "Sao Paulo", "Sparkle", "15"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestFig4aShape(t *testing.T) {
	env := getEnv(t)
	res := env.Fig4a()
	if len(res.Pairs) != 15 {
		t.Fatalf("pairs = %d, want 15", len(res.Pairs))
	}
	mean := analysis.Mean(res.FlipFracs())
	t.Logf("mean flip fraction %.1f%% (paper: 6-14%%)", 100*mean)
	if mean < 0.02 || mean > 0.40 {
		t.Errorf("mean flip fraction %.2f outside plausible band", mean)
	}
	if !strings.Contains(res.Render(), "Figure 4a") {
		t.Error("render missing title")
	}
}

func TestFig4bShape(t *testing.T) {
	env := getEnv(t)
	res, err := env.Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Providers) - 1
	t.Logf("at %d providers: naive %.1f%% aware %.1f%% without total order (paper: 21.7%% / 10.8%%)",
		res.Providers[last], 100*res.NoOrderNaive[last], 100*res.NoOrderAware[last])
	// The paper's headline contrast: order-awareness reduces the fraction
	// without a total order.
	if res.NoOrderAware[last] >= res.NoOrderNaive[last] {
		t.Errorf("order-awareness did not help: naive %.3f vs aware %.3f",
			res.NoOrderNaive[last], res.NoOrderAware[last])
	}
	// The naive fraction grows (weakly) with provider count.
	if res.NoOrderNaive[last] < res.NoOrderNaive[0] {
		t.Errorf("naive inconsistency shrank with more providers: %v", res.NoOrderNaive)
	}
}

func TestFig4cShape(t *testing.T) {
	env := getEnv(t)
	res, err := env.Fig4c([]int{6, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 2 {
		t.Fatalf("rows = %d", len(res.Sites))
	}
	t.Logf("at 15 sites: flat-naive %.1f%%, two-level %.1f%% with total order (paper: 15.3%% / 88.9%%)",
		100*res.FlatNaive[1], 100*res.TwoLevel[1])
	// Headline: flat-naive collapses as sites grow; two-level stays high.
	if res.FlatNaive[1] >= res.FlatNaive[0] {
		t.Errorf("flat-naive did not degrade with more sites: %v", res.FlatNaive)
	}
	if res.TwoLevel[1] < 0.75 {
		t.Errorf("two-level total-order fraction %.2f too low", res.TwoLevel[1])
	}
	if res.TwoLevel[1] <= res.FlatNaive[1] {
		t.Errorf("two-level (%.2f) should dominate flat-naive (%.2f)", res.TwoLevel[1], res.FlatNaive[1])
	}
}

func TestFig5Shape(t *testing.T) {
	env := getEnv(t)
	res, err := env.Fig5(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 6 {
		t.Fatalf("configs = %d", len(res.Configs))
	}
	acc := analysis.Mean(res.Accuracies())
	rel := analysis.Mean(res.RelErrs())
	t.Logf("mean accuracy %.1f%%, mean rel err %.1f%% (paper: 94.7%% / 4.6%%)", 100*acc, 100*rel)
	if acc < 0.85 {
		t.Errorf("accuracy %.3f too low", acc)
	}
	if rel > 0.12 {
		t.Errorf("relative error %.3f too high", rel)
	}
	if !strings.Contains(res.Render(), "Figure 5b") {
		t.Error("render missing 5b series")
	}
}

func TestFig6Shape(t *testing.T) {
	env := getEnv(t)
	res, err := env.Fig6(12)
	if err != nil {
		t.Fatal(err)
	}
	anyopt := res.Get("AnyOpt-12")
	greedy := res.Get("12-Greedy")
	random := res.Get("4-Random")
	all := res.Get("15-all")
	if anyopt == nil || greedy == nil || random == nil || all == nil {
		t.Fatalf("missing series: %+v", res.Series)
	}
	t.Logf("means: anyopt %.1f greedy %.1f random %.1f all %.1f (paper: 12-site optimum beats all)",
		anyopt.Mean(), greedy.Mean(), random.Mean(), all.Mean())
	if anyopt.Mean() > greedy.Mean() {
		t.Errorf("AnyOpt (%.1f) did not beat greedy (%.1f)", anyopt.Mean(), greedy.Mean())
	}
	if anyopt.Mean() > random.Mean() {
		t.Errorf("AnyOpt (%.1f) did not beat 4-random (%.1f)", anyopt.Mean(), random.Mean())
	}
	if anyopt.Mean() > all.Mean() {
		t.Errorf("AnyOpt-12 (%.1f) did not beat 15-all (%.1f) — the paper's counterintuitive headline", anyopt.Mean(), all.Mean())
	}
	if len(random.Config) != 4 {
		t.Errorf("4-Random config = %v", random.Config)
	}
}

func TestFig7Shape(t *testing.T) {
	env := getEnv(t)
	res, err := env.Fig7(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CatchmentFracs) != 104 {
		t.Fatalf("peer reports = %d, want 104", len(res.CatchmentFracs))
	}
	small := analysis.CDFAt(res.CatchmentFracs, 0.025)
	t.Logf("peers with catchment <2.5%%: %.0f%% (paper: >80%%)", 100*small)
	t.Logf("means: transit-only %.1f, +benefit %.1f, +all %.1f (paper: 68 → 63 → 61)",
		res.MeanTransitOnly, res.MeanBenefit, res.MeanAllPeers)
	if small < 0.6 {
		t.Errorf("peer catchments too large: only %.2f under 2.5%%", small)
	}
	if res.MeanBenefit > res.MeanTransitOnly*1.02 {
		t.Errorf("beneficial peers regressed the mean: %.1f vs %.1f", res.MeanBenefit, res.MeanTransitOnly)
	}
}

func TestMiscExperiments(t *testing.T) {
	env := getEnv(t)
	if out := Sec45Schedule(); !strings.Contains(out, "250 h") || !strings.Contains(out, "190 h") {
		t.Errorf("schedule output wrong:\n%s", out)
	}
	rep, err := env.RepresentativeStability()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("representative stability %.1f%% (paper: 94.2%%)", 100*rep.SamePrefFrac)
	if rep.SamePrefFrac < 0.8 {
		t.Errorf("representative stability %.2f too low", rep.SamePrefFrac)
	}

	ab := env.AblationTwoLevel()
	if len(ab.Rows) != 3 {
		t.Fatalf("two-level ablation rows: %+v", ab.Rows)
	}
	if !strings.Contains(ab.Render(), "reduction") {
		t.Error("ablation render missing reduction row")
	}

	rtt, err := env.AblationRTTHeuristic()
	if err != nil {
		t.Fatal(err)
	}
	if len(rtt.Rows) != 1 {
		t.Fatalf("rtt ablation rows: %+v", rtt.Rows)
	}

	sol, err := env.AblationSolvers(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rows) != 4 {
		t.Fatalf("solver ablation rows: %+v", sol.Rows)
	}
}

func TestStabilityExperiment(t *testing.T) {
	// Private env: churn mutates the topology.
	env, err := NewEnv("test", 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Stability(12, 2, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weeks) != 3 {
		t.Fatalf("weeks = %d", len(res.Weeks))
	}
	for _, w := range res.Weeks[1:] {
		t.Logf("week %d: %.1f%% unchanged, mean %v", w.Week, 100*w.UnchangedFrac, w.MeanRTT)
		if w.UnchangedFrac < 0.75 {
			t.Errorf("week %d: only %.2f unchanged", w.Week, w.UnchangedFrac)
		}
	}
}
