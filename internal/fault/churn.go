package fault

// Persistent routing churn: long-lived topology changes, as opposed to the
// transient per-experiment faults in fault.go. A churn event mutates the live
// topology — a link's cost changes, a link goes down or comes back, an AS
// flips a per-neighbor LOCAL_PREF — and stays that way for every subsequent
// experiment, which is exactly the situation a production anycast operator
// faces: the measured campaign no longer matches the Internet it was measured
// on. internal/reconcile consumes the emitted RoutingDelta to work out which
// client cone needs re-measurement.
//
// Planning is seeded here (this is the one transport-path package allowed to
// own entropy); application is a deterministic function of the event list, so
// the same events replayed onto an identically generated topology reproduce
// the post-churn world bit-for-bit — the property the differential
// churn-convergence test rests on.

import (
	"fmt"
	"math/rand"
	"time"

	"anyopt/internal/topology"
)

// ChurnKind classifies a persistent routing-churn event.
type ChurnKind uint8

const (
	// ChurnLinkCost changes a link's propagation delay (IGP/queueing cost
	// shift): BGP update timing through the link moves, flipping
	// arrival-order tie-breaks, and measured RTTs across the link change.
	ChurnLinkCost ChurnKind = iota
	// ChurnLinkDown takes a link out of service until a ChurnLinkUp.
	ChurnLinkDown
	// ChurnLinkUp restores a previously downed link.
	ChurnLinkUp
	// ChurnPolicyFlip changes one AS's per-neighbor LOCAL_PREF delta on a
	// transit edge — the §4.1 "deviant policy" class, applied live.
	ChurnPolicyFlip
)

func (k ChurnKind) String() string {
	switch k {
	case ChurnLinkCost:
		return "link_cost"
	case ChurnLinkDown:
		return "link_down"
	case ChurnLinkUp:
		return "link_up"
	case ChurnPolicyFlip:
		return "policy_flip"
	default:
		return fmt.Sprintf("churn(%d)", uint8(k))
	}
}

// ChurnKindByName parses a ChurnKind name as used in the HTTP API.
func ChurnKindByName(name string) (ChurnKind, error) {
	for _, k := range []ChurnKind{ChurnLinkCost, ChurnLinkDown, ChurnLinkUp, ChurnPolicyFlip} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown churn kind %q", name)
}

// ChurnEvent is one persistent routing change. The struct is JSON-friendly so
// the reconciler's checkpoint records can persist unfinished repairs and
// replay them after a crash.
type ChurnEvent struct {
	Kind ChurnKind `json:"kind"`
	// Link identifies the affected link for the three link event kinds.
	Link topology.LinkID `json:"link,omitempty"`
	// NewDelay is the link's post-event delay for ChurnLinkCost.
	NewDelay time.Duration `json:"new_delay,omitempty"`
	// AS and Neighbor identify the policy edge for ChurnPolicyFlip: AS's
	// LOCAL_PREF delta toward Neighbor becomes PrefDelta.
	AS        topology.ASN `json:"as,omitempty"`
	Neighbor  topology.ASN `json:"neighbor,omitempty"`
	PrefDelta int          `json:"pref_delta,omitempty"`
}

// AppliedEvent pairs an event with the state it replaced, for the delta log.
type AppliedEvent struct {
	ChurnEvent
	// OldDelay is the pre-event delay for ChurnLinkCost.
	OldDelay time.Duration `json:"old_delay,omitempty"`
	// OldPrefDelta is the pre-event LOCAL_PREF delta for ChurnPolicyFlip.
	OldPrefDelta int `json:"old_pref_delta,omitempty"`
}

// RoutingDelta is the structured summary of one applied churn batch — the
// unit the reconciler schedules repairs against.
type RoutingDelta struct {
	Events []AppliedEvent `json:"events"`
}

// Links returns the distinct links touched by the delta, in event order.
func (d *RoutingDelta) Links() []topology.LinkID {
	var out []topology.LinkID
	seen := make(map[topology.LinkID]bool)
	for _, ev := range d.Events {
		switch ev.Kind {
		case ChurnLinkCost, ChurnLinkDown, ChurnLinkUp:
			if !seen[ev.Link] {
				seen[ev.Link] = true
				out = append(out, ev.Link)
			}
		}
	}
	return out
}

// String renders the delta for traces and logs.
func (d *RoutingDelta) String() string {
	s := "delta["
	for i, ev := range d.Events {
		if i > 0 {
			s += " "
		}
		switch ev.Kind {
		case ChurnLinkCost:
			s += fmt.Sprintf("cost(link=%d %v→%v)", ev.Link, ev.OldDelay, ev.NewDelay)
		case ChurnLinkDown:
			s += fmt.Sprintf("down(link=%d)", ev.Link)
		case ChurnLinkUp:
			s += fmt.Sprintf("up(link=%d)", ev.Link)
		case ChurnPolicyFlip:
			s += fmt.Sprintf("policy(AS%d→AS%d %d→%d)", ev.AS, ev.Neighbor, ev.OldPrefDelta, ev.PrefDelta)
		}
	}
	return s + "]"
}

// PlanChurn draws n persistent churn events from the given kinds (all four
// when kinds is empty), deterministically in seed. Events are planned against
// the topology's current state: down events pick live links, up events pick
// currently-down links (falling back to a cost change when none are down),
// and policy flips land on a transit edge — a customer/provider link with a
// non-stub customer side, or any link of a transit AS.
func PlanChurn(t *topology.Topology, seed int64, n int, kinds []ChurnKind) []ChurnEvent {
	if n <= 0 || len(t.Links) == 0 {
		return nil
	}
	if len(kinds) == 0 {
		kinds = []ChurnKind{ChurnLinkCost, ChurnLinkDown, ChurnLinkUp, ChurnPolicyFlip}
	}
	rng := rand.New(rand.NewSource(mix(seed, 0, 0, saltChurn)))
	// planned tracks down-state as events accumulate, so one plan can down a
	// link and later bring it back.
	down := make(map[topology.LinkID]bool)
	for _, id := range t.DownLinks() {
		down[id] = true
	}
	events := make([]ChurnEvent, 0, n)
	for len(events) < n {
		kind := kinds[rng.Intn(len(kinds))]
		if kind == ChurnLinkUp {
			var cand []topology.LinkID
			for _, l := range t.Links {
				if down[l.ID] {
					cand = append(cand, l.ID)
				}
			}
			if len(cand) == 0 {
				kind = ChurnLinkCost
			} else {
				id := cand[rng.Intn(len(cand))]
				down[id] = false
				events = append(events, ChurnEvent{Kind: ChurnLinkUp, Link: id})
				continue
			}
		}
		switch kind {
		case ChurnLinkCost:
			l := t.Links[rng.Intn(len(t.Links))]
			// Scale by 0.5×–1.8×, floored like topology.Churn.
			nd := time.Duration(float64(l.Delay) * (0.5 + 1.3*rng.Float64()))
			if nd < 100*time.Microsecond {
				nd = 100 * time.Microsecond
			}
			events = append(events, ChurnEvent{Kind: ChurnLinkCost, Link: l.ID, NewDelay: nd})
		case ChurnLinkDown:
			l := t.Links[rng.Intn(len(t.Links))]
			if down[l.ID] {
				continue
			}
			down[l.ID] = true
			events = append(events, ChurnEvent{Kind: ChurnLinkDown, Link: l.ID})
		case ChurnPolicyFlip:
			ev, ok := planPolicyFlip(t, rng)
			if !ok {
				continue
			}
			events = append(events, ev)
		}
	}
	return events
}

// planPolicyFlip picks a transit edge and a new per-neighbor LOCAL_PREF
// delta. Deltas stay within the topology's deviant spread so relationship
// classes (customer > peer > provider) are reordered within, never across.
func planPolicyFlip(t *topology.Topology, rng *rand.Rand) (ChurnEvent, bool) {
	var cand []*topology.Link
	for _, l := range t.Links {
		if t.AS(l.From).Tier != topology.TierStub || t.AS(l.To).Tier != topology.TierStub {
			cand = append(cand, l)
		}
	}
	if len(cand) == 0 {
		cand = t.Links
	}
	l := cand[rng.Intn(len(cand))]
	as := l.From
	if rng.Intn(2) == 1 {
		as = l.To
	}
	spread := t.Params.DeviantPrefSpread
	if spread <= 0 {
		spread = 2
	}
	old := t.AS(as).LocalPrefDelta[l.Other(as)]
	delta := rng.Intn(2*spread+1) - spread
	if delta == old {
		delta++
		if delta > spread {
			delta = -spread
		}
	}
	return ChurnEvent{Kind: ChurnPolicyFlip, AS: as, Neighbor: l.Other(as), PrefDelta: delta}, true
}

// ValidateChurn checks an event list against t without mutating anything, so
// the HTTP handler can reject a bad batch whole instead of applying a prefix
// of it.
func ValidateChurn(t *topology.Topology, events []ChurnEvent) error {
	for i, ev := range events {
		switch ev.Kind {
		case ChurnLinkCost:
			if t.Link(ev.Link) == nil {
				return fmt.Errorf("fault: churn event %d: unknown link %d", i, ev.Link)
			}
			if ev.NewDelay <= 0 {
				return fmt.Errorf("fault: churn event %d: non-positive delay %v", i, ev.NewDelay)
			}
		case ChurnLinkDown, ChurnLinkUp:
			if t.Link(ev.Link) == nil {
				return fmt.Errorf("fault: churn event %d: unknown link %d", i, ev.Link)
			}
		case ChurnPolicyFlip:
			if t.AS(ev.AS) == nil {
				return fmt.Errorf("fault: churn event %d: unknown AS %d", i, ev.AS)
			}
			found := false
			for _, l := range t.LinksOf(ev.AS) {
				if l.Other(ev.AS) == ev.Neighbor {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("fault: churn event %d: policy flip AS%d→AS%d without a link", i, ev.AS, ev.Neighbor)
			}
		default:
			return fmt.Errorf("fault: churn event %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// ApplyChurn mutates the live topology with the given events and returns the
// structured delta (each event annotated with the state it replaced).
// Application is deterministic and idempotent per event list; callers must
// quiesce concurrent simulator sessions first, since topology reads are
// otherwise lock-free.
func ApplyChurn(t *topology.Topology, events []ChurnEvent) (*RoutingDelta, error) {
	delta := &RoutingDelta{Events: make([]AppliedEvent, 0, len(events))}
	for _, ev := range events {
		ae := AppliedEvent{ChurnEvent: ev}
		switch ev.Kind {
		case ChurnLinkCost:
			l := t.Link(ev.Link)
			if l == nil {
				return nil, fmt.Errorf("fault: churn on unknown link %d", ev.Link)
			}
			if ev.NewDelay <= 0 {
				return nil, fmt.Errorf("fault: churn link %d to non-positive delay %v", ev.Link, ev.NewDelay)
			}
			ae.OldDelay = l.Delay
			l.Delay = ev.NewDelay
		case ChurnLinkDown:
			if t.Link(ev.Link) == nil {
				return nil, fmt.Errorf("fault: churn on unknown link %d", ev.Link)
			}
			t.SetLinkDown(ev.Link, true)
		case ChurnLinkUp:
			if t.Link(ev.Link) == nil {
				return nil, fmt.Errorf("fault: churn on unknown link %d", ev.Link)
			}
			t.SetLinkDown(ev.Link, false)
		case ChurnPolicyFlip:
			as := t.AS(ev.AS)
			if as == nil {
				return nil, fmt.Errorf("fault: churn on unknown AS %d", ev.AS)
			}
			found := false
			for _, l := range t.LinksOf(ev.AS) {
				if l.Other(ev.AS) == ev.Neighbor {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("fault: churn policy flip AS%d→AS%d without a link", ev.AS, ev.Neighbor)
			}
			ae.OldPrefDelta = as.LocalPrefDelta[ev.Neighbor]
			if as.LocalPrefDelta == nil {
				as.LocalPrefDelta = make(map[topology.ASN]int)
			}
			as.LocalPrefDelta[ev.Neighbor] = ev.PrefDelta
		default:
			return nil, fmt.Errorf("fault: unknown churn kind %d", ev.Kind)
		}
		delta.Events = append(delta.Events, ae)
	}
	return delta, nil
}
