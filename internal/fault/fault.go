// Package fault is the single configuration point for deterministic fault
// injection across the simulated measurement infrastructure.
//
// AnyOpt's campaign assumes every announcement converges and every probe
// returns; Tangled and Anycast Agility show the production Internet violates
// both routinely. This package lets the simulator violate them on purpose —
// BGP session flaps and dropped or delayed UPDATEs at the bgp/netsim
// boundary, control-session resets in the orchestrator, ICMP probe loss and
// whole-site blackouts in the measurement plane — so the self-healing
// machinery in internal/core/discovery (retries, K-of-N quorum, quarantine)
// can be exercised and regression-tested.
//
// Determinism contract: every fault decision flows from a seeded source
// derived from (Config.Seed, experiment nonce, attempt). Experiments run in
// parallel across internal/exec workers, so an Injector is built per
// experiment attempt and consumed single-threaded inside it; worker count and
// scheduling never reach a fault decision. The same seed replays the same
// failure trace, byte for byte — which is what makes the chaos differential
// test (Makefile `chaos`) a regression test rather than a dice roll.
//
// This package is deliberately free of effectors: it decides *what* fails and
// records it, while each boundary applies the decision (internal/bgp drops
// the update, internal/probe loses the packet, internal/core/discovery fails
// the links). It is also the only package on the simulated transport path
// that anyoptlint permits to own a seeded RNG — see internal/lint/policy.go.
package fault

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"time"

	"anyopt/internal/topology"
)

// SeedEnv names the environment variable that supplies the default fault
// seed for the command-line drivers (cmd/anyopt, cmd/calibrate).
const SeedEnv = "ANYOPT_FAULT_SEED"

// SeedFromEnv returns ANYOPT_FAULT_SEED when set to an integer, else 1.
func SeedFromEnv() int64 {
	if s := os.Getenv(SeedEnv); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

// Config sets per-fault-class rates. The zero value (and a nil *Config)
// injects nothing; campaigns run byte-identical to a fault-free build.
type Config struct {
	// Seed is the root of every fault decision.
	Seed int64

	// FlapProb is the probability that one experiment suffers a burst of
	// BGP session flaps (links going down and coming back mid-convergence).
	FlapProb float64
	// FlapMaxLinks bounds how many links one burst takes down (default 1).
	FlapMaxLinks int
	// FlapWindow is the virtual-time window after the experiment starts in
	// which flaps begin (default 30 minutes, covering the spaced
	// announcement phase).
	FlapWindow time.Duration
	// FlapDownMin/Max bound how long a flapped session stays down
	// (defaults 30s / 5m).
	FlapDownMin, FlapDownMax time.Duration

	// UpdateDropProb is the per-delivery probability that a BGP UPDATE or
	// withdrawal is silently lost between two ASes.
	UpdateDropProb float64
	// UpdateDelayProb is the per-delivery probability of an extra queueing
	// delay of up to UpdateDelayMax (default 200ms) on an UPDATE.
	UpdateDelayProb float64
	UpdateDelayMax  time.Duration

	// ProbeLossProb is the per-traversal probability that a measurement
	// packet is lost, on top of the baseline NoiseModel loss.
	ProbeLossProb float64

	// SessionResetProb is the per-message probability that the
	// orchestrator↔site control session drops and must be re-established
	// before the message can be delivered.
	SessionResetProb float64

	// BlackoutSites lists site IDs that are dead for the whole campaign:
	// their links never carry routes and their tunnels answer nothing. The
	// campaign must quarantine them and continue with the rest.
	BlackoutSites []int
}

// Enabled reports whether any fault class is active. A nil Config is
// disabled, so callers can thread a *Config through without nil checks.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.FlapProb > 0 || c.UpdateDropProb > 0 || c.UpdateDelayProb > 0 ||
		c.ProbeLossProb > 0 || c.SessionResetProb > 0 || len(c.BlackoutSites) > 0
}

// BlackedOut reports whether site id is in BlackoutSites. Nil-safe.
func (c *Config) BlackedOut(id int) bool {
	if c == nil {
		return false
	}
	for _, b := range c.BlackoutSites {
		if b == id {
			return true
		}
	}
	return false
}

// Scenario returns a preset configuration by name. "none" (or "") disables
// injection; "paper" models the degradation rates the measurement studies
// report for production anycast (rare flaps, sub-percent update loss, ~1%
// probe loss); "harsh" runs everything an order of magnitude hotter.
func Scenario(name string, seed int64) (*Config, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "paper":
		return &Config{
			Seed:             seed,
			FlapProb:         0.08,
			FlapMaxLinks:     1,
			FlapWindow:       30 * time.Minute,
			FlapDownMin:      30 * time.Second,
			FlapDownMax:      5 * time.Minute,
			UpdateDropProb:   0.0005,
			UpdateDelayProb:  0.002,
			UpdateDelayMax:   200 * time.Millisecond,
			ProbeLossProb:    0.01,
			SessionResetProb: 0.02,
		}, nil
	case "harsh":
		return &Config{
			Seed:             seed,
			FlapProb:         0.5,
			FlapMaxLinks:     3,
			FlapWindow:       45 * time.Minute,
			FlapDownMin:      10 * time.Second,
			FlapDownMax:      15 * time.Minute,
			UpdateDropProb:   0.005,
			UpdateDelayProb:  0.02,
			UpdateDelayMax:   time.Second,
			ProbeLossProb:    0.08,
			SessionResetProb: 0.2,
		}, nil
	}
	return nil, fmt.Errorf("fault: unknown scenario %q (want none, paper, or harsh)", name)
}

// Trace accumulates a human-readable failure log for one experiment. It is
// written by the Injector from inside the (single-threaded) experiment, so it
// needs no locking; internal/core/discovery folds per-experiment traces into
// the campaign log in submission order, making the full log reproducible.
type Trace struct {
	entries []string
}

// Addf appends one formatted entry.
func (t *Trace) Addf(format string, args ...any) {
	if t == nil {
		return
	}
	t.entries = append(t.entries, fmt.Sprintf(format, args...))
}

// Append adds pre-formatted entries — used when replaying a checkpointed
// trace into a fresh campaign's log.
func (t *Trace) Append(lines ...string) {
	if t == nil || len(lines) == 0 {
		return
	}
	t.entries = append(t.entries, lines...)
}

// Entries returns the recorded log lines.
func (t *Trace) Entries() []string {
	if t == nil {
		return nil
	}
	return t.entries
}

// Flap is one planned session flap: the link goes down at DownAt and comes
// back at UpAt (virtual time from the experiment epoch).
type Flap struct {
	Link         topology.LinkID
	DownAt, UpAt time.Duration
}

// Injector makes fault decisions for one experiment attempt. All methods are
// safe on a nil receiver (no faults), so boundaries can hold an *Injector
// unconditionally.
//
// Each fault class draws from its own seeded stream, so e.g. probe-loss draws
// never shift BGP-drop draws when code between them changes.
type Injector struct {
	cfg     *Config
	nonce   uint64
	attempt int
	trace   *Trace

	update  *rand.Rand
	probe   *rand.Rand
	plan    *rand.Rand
	session *rand.Rand

	blackout map[int]bool
}

// classSalts separate the per-class streams.
const (
	saltUpdate  = 0x75706474 // "updt"
	saltProbe   = 0x70726f62 // "prob"
	saltPlan    = 0x706c616e // "plan"
	saltSession = 0x73657373 // "sess"
	saltChurn   = 0x63687572 // "chur"
)

// mix folds (seed, nonce, attempt, salt) into a 63-bit stream seed with a
// splitmix-style avalanche, so adjacent nonces and attempts land far apart.
func mix(seed int64, nonce uint64, attempt int, salt uint64) int64 {
	z := uint64(seed) ^ nonce*0x9e3779b97f4a7c15 ^ uint64(attempt+1)*0xbf58476d1ce4e5b9 ^ salt
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}

// Injector builds the fault decider for one (experiment nonce, attempt)
// pair. Retried attempts keep the experiment's jitter nonce — the non-fault
// world replays exactly — while every fault stream re-rolls, which is what
// lets quorum voting converge on the fault-free outcome. Returns nil when the
// config is disabled.
func (c *Config) Injector(nonce uint64, attempt int, tr *Trace) *Injector {
	if !c.Enabled() {
		return nil
	}
	inj := &Injector{
		cfg:     c,
		nonce:   nonce,
		attempt: attempt,
		trace:   tr,
		update:  rand.New(rand.NewSource(mix(c.Seed, nonce, attempt, saltUpdate))),
		probe:   rand.New(rand.NewSource(mix(c.Seed, nonce, attempt, saltProbe))),
		plan:    rand.New(rand.NewSource(mix(c.Seed, nonce, attempt, saltPlan))),
		session: rand.New(rand.NewSource(mix(c.Seed, nonce, attempt, saltSession))),
	}
	if len(c.BlackoutSites) > 0 {
		inj.blackout = make(map[int]bool, len(c.BlackoutSites))
		for _, id := range c.BlackoutSites {
			inj.blackout[id] = true
		}
	}
	return inj
}

// UpdateFate decides the fate of one BGP update delivery: dropped, delayed by
// extra, or untouched. It implements the bgp.ChaosModel interface.
func (inj *Injector) UpdateFate(link topology.LinkID, dst topology.ASN, prefix int) (drop bool, extra time.Duration) {
	if inj == nil {
		return false, 0
	}
	if p := inj.cfg.UpdateDropProb; p > 0 && inj.update.Float64() < p {
		inj.trace.Addf("exp %d attempt %d: drop update link=%d dst=AS%d prefix=%d",
			inj.nonce, inj.attempt, link, dst, prefix)
		return true, 0
	}
	if p := inj.cfg.UpdateDelayProb; p > 0 && inj.update.Float64() < p {
		max := inj.cfg.UpdateDelayMax
		if max <= 0 {
			max = 200 * time.Millisecond
		}
		extra = time.Duration(inj.update.Int63n(int64(max)))
		inj.trace.Addf("exp %d attempt %d: delay update link=%d dst=AS%d prefix=%d extra=%v",
			inj.nonce, inj.attempt, link, dst, prefix, extra)
	}
	return false, extra
}

// FlapPlan draws this attempt's session-flap schedule over the candidate
// links (testbed-adjacent sessions; the caller excludes blacked-out sites'
// links so a flap's restore can never resurrect a dead site).
func (inj *Injector) FlapPlan(links []topology.LinkID) []Flap {
	if inj == nil || len(links) == 0 || inj.cfg.FlapProb <= 0 {
		return nil
	}
	if inj.plan.Float64() >= inj.cfg.FlapProb {
		return nil
	}
	maxLinks := inj.cfg.FlapMaxLinks
	if maxLinks <= 0 {
		maxLinks = 1
	}
	window := inj.cfg.FlapWindow
	if window <= 0 {
		window = 30 * time.Minute
	}
	downMin, downMax := inj.cfg.FlapDownMin, inj.cfg.FlapDownMax
	if downMin <= 0 {
		downMin = 30 * time.Second
	}
	if downMax < downMin {
		downMax = downMin
	}
	n := 1 + inj.plan.Intn(maxLinks)
	flaps := make([]Flap, 0, n)
	for i := 0; i < n; i++ {
		link := links[inj.plan.Intn(len(links))]
		down := time.Duration(inj.plan.Int63n(int64(window)))
		hold := downMin
		if span := downMax - downMin; span > 0 {
			hold += time.Duration(inj.plan.Int63n(int64(span)))
		}
		fl := Flap{Link: link, DownAt: down, UpAt: down + hold}
		flaps = append(flaps, fl)
		inj.trace.Addf("exp %d attempt %d: flap link=%d down=%v up=%v",
			inj.nonce, inj.attempt, fl.Link, fl.DownAt, fl.UpAt)
	}
	return flaps
}

// BeginTarget rewinds the probe-loss stream to a position derived only from
// (seed, nonce, attempt, target id), making loss draws for one target
// independent of which other targets an experiment probed before it. It is
// the fault-side half of probe.TargetSeeder; the measurement fabric invokes
// it alongside the noise model's reseed.
func (inj *Injector) BeginTarget(id uint64) {
	if inj == nil {
		return
	}
	inj.probe.Seed(mix(inj.cfg.Seed, inj.nonce, inj.attempt, saltProbe^(id*0x9e3779b97f4a7c15)))
}

// DropProbe decides whether one measurement-packet traversal is lost. It is
// part of the probe.FaultModel interface.
func (inj *Injector) DropProbe() bool {
	if inj == nil || inj.cfg.ProbeLossProb <= 0 {
		return false
	}
	if inj.probe.Float64() < inj.cfg.ProbeLossProb {
		inj.trace.Addf("exp %d attempt %d: probe lost", inj.nonce, inj.attempt)
		return true
	}
	return false
}

// SiteDead reports whether the site is blacked out for this campaign. It is
// part of the probe.FaultModel interface.
func (inj *Injector) SiteDead(siteID int) bool {
	return inj != nil && inj.blackout[siteID]
}

// BlackoutSites returns the blacked-out site IDs in ascending order.
func (inj *Injector) BlackoutSites() []int {
	if inj == nil || len(inj.blackout) == 0 {
		return nil
	}
	out := make([]int, 0, len(inj.blackout))
	for id := range inj.blackout {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ResetSession decides whether the control session to the site drops before
// the next message, forcing the orchestrator to re-establish it.
func (inj *Injector) ResetSession(siteID int) bool {
	if inj == nil || inj.cfg.SessionResetProb <= 0 {
		return false
	}
	if inj.session.Float64() < inj.cfg.SessionResetProb {
		inj.trace.Addf("exp %d attempt %d: session reset site=%d", inj.nonce, inj.attempt, siteID)
		return true
	}
	return false
}
