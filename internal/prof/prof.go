// Package prof wires the stdlib profilers into the repo's CLI binaries
// behind -cpuprofile/-memprofile flags, so campaign hot spots can be
// inspected with `go tool pprof` without ad-hoc instrumentation.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile and arranges for a heap profile to
// be written to memFile when the returned stop function runs; either path
// may be empty to skip that profile. Call stop via defer on the binary's
// normal exit path — log.Fatal and os.Exit bypass defers and lose the
// profiles, so profiled runs should end cleanly.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("prof: closing CPU profile: %w", err)
			}
		}
		if memFile == "" {
			return nil
		}
		f, err := os.Create(memFile)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		// A GC first so the heap profile shows live retention, not the
		// garbage of the last allocation burst.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("prof: writing heap profile: %w", err)
		}
		return f.Close()
	}, nil
}
