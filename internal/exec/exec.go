// Package exec is the parallel experiment executor: a worker pool that fans
// independent jobs across OS threads while keeping results byte-identical to
// a serial run.
//
// AnyOpt's measurement campaign is hundreds of BGP experiments — singleton
// announcements, order-controlled pairwise runs, deployment verifications —
// and every one of them is independent by construction: each runs on its own
// bgp.Sim with its own jitter nonce, exactly as the real campaign isolates
// experiments on separate test prefixes hours apart (§4.5). The executor
// exploits that independence the way the paper exploits parallel prefixes:
// all inputs (nonces, noise seeds) are assigned deterministically at
// submission time, before any work is scheduled, so the outcome of a job
// cannot depend on which worker runs it or in what order jobs finish.
//
// The pool is deliberately minimal: no job queue outliving a call, no shared
// state between jobs, and a strictly serial fallback when one worker (or one
// job) makes goroutines pointless — the serial path runs the exact same code
// with zero scheduling overhead.
package exec

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// WorkersEnv names the environment variable that overrides the default
// worker count for every pool created with workers <= 0.
const WorkersEnv = "ANYOPT_WORKERS"

// DefaultWorkers returns the executor's default parallelism: ANYOPT_WORKERS
// when set to a positive integer, otherwise GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv(WorkersEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Pool fans independent jobs across a fixed number of workers.
type Pool struct {
	workers int
	closed  atomic.Bool
}

// New creates a pool with the given worker count; workers <= 0 selects
// DefaultWorkers.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close marks the pool as retired. It is idempotent and safe to call
// concurrently; any later submission panics. The pool holds no goroutines or
// queues between calls, so Close frees nothing — it exists to turn
// use-after-retirement into a loud failure instead of silent extra work.
func (p *Pool) Close() { p.closed.Store(true) }

// ForEach runs fn(i) for every i in [0, n) and returns when all calls have
// completed. Calls must be mutually independent and may only write to
// index-distinct locations; under those rules the result is identical to the
// serial loop `for i := 0; i < n; i++ { fn(i) }`.
//
// With one worker (or one job) fn runs inline on the caller's goroutine.
// Otherwise min(workers, n) goroutines pull indices from a shared atomic
// counter; a panic in any call is re-raised on the caller after the
// remaining workers drain.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if p.closed.Load() {
		panic("exec: ForEach called on a closed Pool")
	}
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicVal == nil {
							panicVal = r
						}
						panicMu.Unlock()
					}
				}()
				fn(i)
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Map runs fn(i) for every i in [0, n) across the pool and collects the
// results in index order — the gather form of ForEach.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
