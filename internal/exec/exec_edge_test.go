package exec

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNegativeWorkersSelectsDefault(t *testing.T) {
	t.Setenv(WorkersEnv, "")
	os.Unsetenv(WorkersEnv)
	if got := New(-5).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-5).Workers() = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	t.Setenv(WorkersEnv, "3")
	if got := New(-1).Workers(); got != 3 {
		t.Fatalf("New(-1).Workers() with %s=3 = %d, want 3", WorkersEnv, got)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s on a closed pool did not panic", what)
		}
	}()
	fn()
}

func TestSubmitAfterClosePanics(t *testing.T) {
	p := New(4)
	p.ForEach(2, func(int) {})
	p.Close()
	p.Close() // idempotent
	mustPanic(t, "ForEach", func() { p.ForEach(1, func(int) {}) })
	mustPanic(t, "ForEach(0, ...)", func() { p.ForEach(0, func(int) {}) })
	mustPanic(t, "Map", func() { Map(p, 1, func(i int) int { return i }) })
	if p.Workers() != 4 {
		t.Fatal("Close changed the worker count")
	}
}

func TestConcurrentCloseIsSafe(t *testing.T) {
	p := New(2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	mustPanic(t, "ForEach", func() { p.ForEach(1, func(int) {}) })
}

// TestForEachUnderContention drives far more jobs than workers through the
// shared index counter with every job touching both a shared atomic and an
// index-distinct slot. Run with -race (the Makefile's race target does) this
// is the pool's data-race certificate: the only sharing is the counter.
func TestForEachUnderContention(t *testing.T) {
	const n = 20000
	p := New(8)
	var calls atomic.Int64
	out := make([]int64, n)
	p.ForEach(n, func(i int) {
		calls.Add(1)
		out[i] = int64(i) * 3
	})
	if got := calls.Load(); got != n {
		t.Fatalf("fn ran %d times, want %d", got, n)
	}
	for i, v := range out {
		if v != int64(i)*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, int64(i)*3)
		}
	}
}
