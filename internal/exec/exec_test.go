package exec

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		const n = 1000
		hits := make([]int32, n)
		p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	p := New(4)
	called := false
	p.ForEach(0, func(int) { called = true })
	p.ForEach(-3, func(int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestMapOrdersResults(t *testing.T) {
	p := New(8)
	out := Map(p, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	p := New(4)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic not propagated")
		}
	}()
	p.ForEach(64, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestForEachSerialPanic(t *testing.T) {
	p := New(1)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic not propagated on serial path")
		}
	}()
	p.ForEach(4, func(i int) {
		if i == 2 {
			panic("boom")
		}
	})
}

func TestNewDefaults(t *testing.T) {
	t.Setenv(WorkersEnv, "")
	os.Unsetenv(WorkersEnv)
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("New(3).Workers() = %d, want 3", got)
	}
}

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv(WorkersEnv, "7")
	if got := DefaultWorkers(); got != 7 {
		t.Fatalf("DefaultWorkers() = %d, want 7", got)
	}
	t.Setenv(WorkersEnv, "not-a-number")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers() with garbage env = %d, want GOMAXPROCS", got)
	}
	t.Setenv(WorkersEnv, "-2")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers() with negative env = %d, want GOMAXPROCS", got)
	}
}
