package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCtxRunsAll(t *testing.T) {
	p := New(4)
	var count atomic.Int64
	err := p.ForEachCtx(context.Background(), 100, func(ctx context.Context, i int) error {
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("ForEachCtx: %v", err)
	}
	if count.Load() != 100 {
		t.Errorf("ran %d of 100", count.Load())
	}
}

func TestForEachCtxCancelStopsQueue(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int64
	err := p.ForEachCtx(ctx, 10000, func(ctx context.Context, i int) error {
		if count.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := count.Load(); n >= 10000 {
		t.Errorf("cancellation did not stop the queue: %d calls ran", n)
	}
}

func TestForEachCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		p := New(workers)
		var count atomic.Int64
		err := p.ForEachCtx(ctx, 50, func(ctx context.Context, i int) error {
			count.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// A pre-canceled context may let at most a few already-started
		// workers through, never the whole batch.
		if n := count.Load(); n >= 50 {
			t.Errorf("workers=%d: %d calls ran under a canceled context", workers, n)
		}
	}
}

func TestForEachCtxFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Regardless of worker timing, the error from the lowest index wins.
	for trial := 0; trial < 20; trial++ {
		p := New(8)
		err := p.ForEachCtx(context.Background(), 64, func(ctx context.Context, i int) error {
			switch i {
			case 3:
				return errA
			case 40:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: err = %v, want %v (lowest failing index)", trial, err, errA)
		}
	}
}

func TestForEachCtxPanicPropagates(t *testing.T) {
	p := New(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	p.ForEachCtx(context.Background(), 16, func(ctx context.Context, i int) error {
		if i == 7 {
			panic("boom")
		}
		return nil
	})
	t.Fatal("panic did not propagate")
}

func TestForEachCtxSerialStopsOnError(t *testing.T) {
	p := New(1)
	sentinel := errors.New("stop")
	calls := 0
	err := p.ForEachCtx(context.Background(), 100, func(ctx context.Context, i int) error {
		calls++
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("serial path ran %d calls after the error, want 3 total", calls)
	}
}

func TestBackoffDelays(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond}
	wants := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond,
	}
	for i, want := range wants {
		if got := b.Delay(i); got != want {
			t.Errorf("Delay(%d) = %v, want %v", i, got, want)
		}
	}
	// Zero value gets sane defaults rather than a zero (busy) delay.
	if d := (Backoff{}).Delay(0); d < 50*time.Millisecond {
		t.Errorf("zero-value Delay(0) = %v, want a real default", d)
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	b := Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond}
	calls := 0
	err := Retry(context.Background(), 5, b, func(attempt int) error {
		calls++
		if attempt != calls-1 {
			t.Errorf("attempt = %d on call %d", attempt, calls)
		}
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	b := Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond}
	last := errors.New("still broken")
	calls := 0
	err := Retry(context.Background(), 4, b, func(attempt int) error {
		calls++
		return last
	})
	if !errors.Is(err, last) {
		t.Fatalf("err = %v, want last op error", err)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
}

func TestRetryCanceledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Backoff{Base: time.Minute} // would stall the test if not interrupted
	start := time.Now()
	err := Retry(ctx, 3, b, func(attempt int) error {
		cancel()
		return errors.New("fail")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; backoff sleep was not interrupted", elapsed)
	}
}

func TestRunTimeout(t *testing.T) {
	if err := RunTimeout(time.Second, func() error { return nil }); err != nil {
		t.Errorf("fast op: %v", err)
	}
	sentinel := errors.New("op failed")
	if err := RunTimeout(time.Second, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("op error not propagated: %v", err)
	}
	block := make(chan struct{})
	defer close(block)
	err := RunTimeout(5*time.Millisecond, func() error {
		<-block
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("blocked op: err = %v, want ErrTimeout", err)
	}
	// d <= 0 runs inline, no goroutine, no budget.
	inline := false
	if err := RunTimeout(0, func() error { inline = true; return nil }); err != nil || !inline {
		t.Errorf("inline path: err=%v ran=%v", err, inline)
	}
}

func TestRunTimeoutPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Errorf("recovered %v, want kaboom", r)
		}
	}()
	RunTimeout(time.Second, func() error { panic("kaboom") })
	t.Fatal("panic did not propagate")
}
