package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTimeout marks an operation abandoned by RunTimeout.
var ErrTimeout = errors.New("exec: operation timed out")

// ForEachCtx is ForEach with cancellation: it runs fn(ctx, i) for every i in
// [0, n), stops handing out new indices once ctx is canceled or any call
// returns an error, and returns the first error by index order (ties broken
// toward the lowest index so the result does not depend on worker timing for
// a fixed input). In-flight calls are not interrupted — fn must watch ctx
// itself if an individual job can block — but the queue drains immediately,
// which is what lets a failed campaign abort instead of running every
// remaining experiment.
//
// When every call succeeds and ctx was canceled before all indices ran,
// ForEachCtx returns ctx.Err().
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if p.closed.Load() {
		panic("exec: ForEachCtx called on a closed Pool")
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx int = -1
		firstErr error
		panicVal any
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	worker := func() {
		defer wg.Done()
		for {
			if stopped.Load() || ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if panicVal == nil {
							panicVal = r
						}
						mu.Unlock()
						stopped.Store(true)
					}
				}()
				if err := fn(ctx, i); err != nil {
					record(i, err)
				}
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	if firstErr != nil {
		return firstErr
	}
	if int(next.Load()) < n {
		// Workers bailed early without an fn error: the context did it.
		return ctx.Err()
	}
	return ctx.Err()
}

// Backoff computes bounded exponential retry delays.
type Backoff struct {
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Max caps the delay (default 10s).
	Max time.Duration
	// Factor multiplies the delay per retry (default 2).
	Factor float64
}

// Delay returns the wait before retry attempt (attempt 0 = first retry).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 10 * time.Second
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			return max
		}
	}
	if d > float64(max) {
		return max
	}
	return time.Duration(d)
}

// Retry runs op up to attempts times, sleeping b.Delay between tries, and
// returns nil on the first success or the last error. op receives the attempt
// number (0-based). Sleeps are interrupted by ctx cancellation, which Retry
// returns immediately.
//
// The wall-clock sleep lives here on purpose: the simulation packages are
// lint-barred from time.Sleep (anyoptlint's entropy check), so retry pacing
// is the executor's job, like all other real-time concerns.
func Retry(ctx context.Context, attempts int, b Backoff, op func(attempt int) error) error {
	if attempts <= 0 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(i); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		t := time.NewTimer(b.Delay(i))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return err
}

// RunTimeout runs op with a wall-clock budget and returns ErrTimeout if op
// has not finished within d. The op goroutine is not killed — Go cannot — so
// a timed-out op keeps running detached; callers must only use RunTimeout
// around ops whose side effects are confined to state the caller discards on
// timeout (each discovery experiment runs on its own Sim, which satisfies
// this). d <= 0 runs op inline with no budget.
func RunTimeout(d time.Duration, op func() error) error {
	if d <= 0 {
		return op()
	}
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- &panicError{val: r}
			}
		}()
		done <- op()
	}()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-done:
		if pe, ok := err.(*panicError); ok {
			panic(pe.val)
		}
		return err
	case <-t.C:
		return ErrTimeout
	}
}

// panicError carries a recovered panic across the RunTimeout channel so it
// can be re-raised on the caller's goroutine.
type panicError struct{ val any }

func (p *panicError) Error() string { return "exec: panic in timed operation" }
