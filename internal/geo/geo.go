// Package geo models geography-driven network latency.
//
// The AnyOpt paper measures RTTs between anycast sites and ~15k client-network
// routers across the real Internet. In the simulation, every AS and every
// anycast site carries a geographic coordinate, and the base propagation
// delay of a link or end-to-end path is derived from great-circle distance.
// Real Internet paths are longer than geodesics (fiber routes, detours,
// queuing), so the model applies a configurable path-inflation factor plus a
// per-hop processing penalty, matching the well-known observation that
// RTT(ms) ≈ distance/(2/3 c) × inflation.
package geo

import (
	"fmt"
	"math"
	"time"
)

// EarthRadiusKm is the mean Earth radius.
const EarthRadiusKm = 6371.0

// Coord is a point on the Earth's surface.
type Coord struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

func (c Coord) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", c.Lat, c.Lon)
}

// Valid reports whether the coordinate is within range.
func (c Coord) Valid() bool {
	return c.Lat >= -90 && c.Lat <= 90 && c.Lon >= -180 && c.Lon <= 180 &&
		!math.IsNaN(c.Lat) && !math.IsNaN(c.Lon)
}

// DistanceKm returns the great-circle distance between two coordinates using
// the haversine formula.
func DistanceKm(a, b Coord) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp against floating-point drift before the square roots.
	if s > 1 {
		s = 1
	}
	return 2 * EarthRadiusKm * math.Atan2(math.Sqrt(s), math.Sqrt(1-s))
}

// LatencyModel converts distances and hop counts to one-way delays.
type LatencyModel struct {
	// SpeedKmPerMs is signal propagation speed. Light in fiber is roughly
	// 200 km/ms (2/3 of c in vacuum).
	SpeedKmPerMs float64
	// Inflation multiplies geodesic distance to account for non-great-circle
	// fiber paths. Typical measured values are 1.3–2.0.
	Inflation float64
	// PerHop is added per router hop (processing, serialization, queuing).
	PerHop time.Duration
	// Floor is the minimum one-way delay of any link (last-mile, tunneling).
	Floor time.Duration
}

// DefaultLatencyModel returns parameters calibrated so that intercontinental
// RTTs land in the 100–300 ms range the paper reports.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		SpeedKmPerMs: 200,
		Inflation:    1.6,
		PerHop:       250 * time.Microsecond,
		Floor:        300 * time.Microsecond,
	}
}

// OneWay returns the one-way delay over dist kilometers crossing hops routers.
func (m LatencyModel) OneWay(distKm float64, hops int) time.Duration {
	if distKm < 0 {
		distKm = 0
	}
	if hops < 0 {
		hops = 0
	}
	ms := distKm * m.Inflation / m.SpeedKmPerMs
	d := time.Duration(ms*float64(time.Millisecond)) + time.Duration(hops)*m.PerHop
	if d < m.Floor {
		d = m.Floor
	}
	return d
}

// LinkDelay returns the one-way delay of a direct link between two points.
func (m LatencyModel) LinkDelay(a, b Coord) time.Duration {
	return m.OneWay(DistanceKm(a, b), 1)
}

// RTT returns the round-trip time between two points across hops router hops,
// assuming a symmetric path.
func (m LatencyModel) RTT(a, b Coord, hops int) time.Duration {
	return 2 * m.OneWay(DistanceKm(a, b), hops)
}

// City is a named coordinate used by the topology generator to place ASes,
// PoPs, and anycast sites at plausible locations.
type City struct {
	Name string
	Coord
}

// Cities is a catalog of world cities covering every inhabited continent.
// The paper's Table 1 sites (Atlanta, Amsterdam, Los Angeles, Singapore,
// London, Tokyo, Osaka, Miami, Newark, Stockholm, Toronto, São Paulo,
// Chicago) are all present.
var Cities = []City{
	{"Atlanta", Coord{33.75, -84.39}},
	{"Amsterdam", Coord{52.37, 4.90}},
	{"Los Angeles", Coord{34.05, -118.24}},
	{"Singapore", Coord{1.35, 103.82}},
	{"London", Coord{51.51, -0.13}},
	{"Tokyo", Coord{35.68, 139.69}},
	{"Osaka", Coord{34.69, 135.50}},
	{"Miami", Coord{25.76, -80.19}},
	{"Newark", Coord{40.74, -74.17}},
	{"Stockholm", Coord{59.33, 18.07}},
	{"Toronto", Coord{43.65, -79.38}},
	{"Sao Paulo", Coord{-23.55, -46.63}},
	{"Chicago", Coord{41.88, -87.63}},
	{"New York", Coord{40.71, -74.01}},
	{"Frankfurt", Coord{50.11, 8.68}},
	{"Paris", Coord{48.86, 2.35}},
	{"Madrid", Coord{40.42, -3.70}},
	{"Milan", Coord{45.46, 9.19}},
	{"Warsaw", Coord{52.23, 21.01}},
	{"Moscow", Coord{55.76, 37.62}},
	{"Istanbul", Coord{41.01, 28.98}},
	{"Dubai", Coord{25.20, 55.27}},
	{"Mumbai", Coord{19.08, 72.88}},
	{"Delhi", Coord{28.61, 77.21}},
	{"Chennai", Coord{13.08, 80.27}},
	{"Bangkok", Coord{13.76, 100.50}},
	{"Jakarta", Coord{-6.21, 106.85}},
	{"Hong Kong", Coord{22.32, 114.17}},
	{"Taipei", Coord{25.03, 121.57}},
	{"Seoul", Coord{37.57, 126.98}},
	{"Sydney", Coord{-33.87, 151.21}},
	{"Melbourne", Coord{-37.81, 144.96}},
	{"Auckland", Coord{-36.85, 174.76}},
	{"Johannesburg", Coord{-26.20, 28.05}},
	{"Cairo", Coord{30.04, 31.24}},
	{"Lagos", Coord{6.52, 3.38}},
	{"Nairobi", Coord{-1.29, 36.82}},
	{"Buenos Aires", Coord{-34.60, -58.38}},
	{"Santiago", Coord{-33.45, -70.67}},
	{"Bogota", Coord{4.71, -74.07}},
	{"Lima", Coord{-12.05, -77.04}},
	{"Mexico City", Coord{19.43, -99.13}},
	{"Dallas", Coord{32.78, -96.80}},
	{"Denver", Coord{39.74, -104.99}},
	{"Seattle", Coord{47.61, -122.33}},
	{"San Jose", Coord{37.34, -121.89}},
	{"Ashburn", Coord{39.04, -77.49}},
	{"Boston", Coord{42.36, -71.06}},
	{"Vancouver", Coord{49.28, -123.12}},
	{"Montreal", Coord{45.50, -73.57}},
	{"Dublin", Coord{53.35, -6.26}},
	{"Zurich", Coord{47.37, 8.54}},
	{"Vienna", Coord{48.21, 16.37}},
	{"Oslo", Coord{59.91, 10.75}},
	{"Helsinki", Coord{60.17, 24.94}},
	{"Copenhagen", Coord{55.68, 12.57}},
	{"Brussels", Coord{50.85, 4.35}},
	{"Prague", Coord{50.08, 14.44}},
	{"Budapest", Coord{47.50, 19.04}},
	{"Bucharest", Coord{44.43, 26.10}},
	{"Athens", Coord{37.98, 23.73}},
	{"Lisbon", Coord{38.72, -9.14}},
	{"Tel Aviv", Coord{32.09, 34.78}},
	{"Riyadh", Coord{24.71, 46.68}},
	{"Karachi", Coord{24.86, 67.00}},
	{"Dhaka", Coord{23.81, 90.41}},
	{"Manila", Coord{14.60, 120.98}},
	{"Kuala Lumpur", Coord{3.14, 101.69}},
	{"Ho Chi Minh City", Coord{10.82, 106.63}},
	{"Perth", Coord{-31.95, 115.86}},
	{"Brisbane", Coord{-27.47, 153.03}},
	{"Cape Town", Coord{-33.92, 18.42}},
	{"Casablanca", Coord{33.57, -7.59}},
	{"Accra", Coord{5.60, -0.19}},
	{"Rio de Janeiro", Coord{-22.91, -43.17}},
	{"Caracas", Coord{10.48, -66.90}},
	{"Quito", Coord{-0.18, -78.47}},
	{"Panama City", Coord{8.98, -79.52}},
	{"Phoenix", Coord{33.45, -112.07}},
	{"Minneapolis", Coord{44.98, -93.27}},
	{"Kansas City", Coord{39.10, -94.58}},
	{"Salt Lake City", Coord{40.76, -111.89}},
	{"Portland", Coord{45.52, -122.68}},
	{"Houston", Coord{29.76, -95.37}},
	{"Calgary", Coord{51.05, -114.07}},
	{"Honolulu", Coord{21.31, -157.86}},
	{"Anchorage", Coord{61.22, -149.90}},
	{"Reykjavik", Coord{64.15, -21.94}},
	{"Edinburgh", Coord{55.95, -3.19}},
	{"Manchester", Coord{53.48, -2.24}},
	{"Marseille", Coord{43.30, 5.37}},
	{"Barcelona", Coord{41.39, 2.17}},
	{"Rome", Coord{41.90, 12.50}},
	{"Kyiv", Coord{50.45, 30.52}},
	{"Ankara", Coord{39.93, 32.86}},
	{"Doha", Coord{25.29, 51.53}},
	{"Muscat", Coord{23.59, 58.41}},
	{"Colombo", Coord{6.93, 79.85}},
	{"Kathmandu", Coord{27.72, 85.32}},
	{"Hanoi", Coord{21.03, 105.85}},
	{"Phnom Penh", Coord{11.56, 104.92}},
	{"Osorno", Coord{-40.57, -73.14}},
	{"Fortaleza", Coord{-3.73, -38.53}},
	{"Recife", Coord{-8.05, -34.88}},
	{"Montevideo", Coord{-34.90, -56.19}},
	{"La Paz", Coord{-16.49, -68.12}},
	{"Guatemala City", Coord{14.63, -90.51}},
	{"San Juan", Coord{18.47, -66.11}},
	{"Kingston", Coord{17.97, -76.79}},
	{"Havana", Coord{23.11, -82.37}},
	{"Tunis", Coord{36.81, 10.18}},
	{"Algiers", Coord{36.75, 3.06}},
	{"Addis Ababa", Coord{9.01, 38.75}},
	{"Dar es Salaam", Coord{-6.79, 39.21}},
	{"Kampala", Coord{0.35, 32.58}},
	{"Luanda", Coord{-8.84, 13.23}},
	{"Abuja", Coord{9.07, 7.40}},
	{"Dakar", Coord{14.72, -17.47}},
	{"Wellington", Coord{-41.29, 174.78}},
	{"Adelaide", Coord{-34.93, 138.60}},
	{"Christchurch", Coord{-43.53, 172.64}},
	{"Novosibirsk", Coord{55.01, 82.93}},
	{"Yekaterinburg", Coord{56.84, 60.61}},
	{"Almaty", Coord{43.22, 76.85}},
	{"Tashkent", Coord{41.30, 69.24}},
	{"Tbilisi", Coord{41.72, 44.83}},
	{"Baku", Coord{40.41, 49.87}},
	{"Tehran", Coord{35.69, 51.39}},
	{"Baghdad", Coord{33.31, 44.37}},
	{"Amman", Coord{31.96, 35.95}},
	{"Beirut", Coord{33.89, 35.50}},
}

// CityByName returns the catalog entry with the given name.
func CityByName(name string) (City, bool) {
	for _, c := range Cities {
		if c.Name == name {
			return c, true
		}
	}
	return City{}, false
}

// Region names returned by RegionOf.
var Regions = []string{"NorthAm", "SouthAm", "Europe", "Africa", "MidEast", "Asia", "Oceania"}

// RegionOf buckets a coordinate into one of seven coarse world regions, used
// for catchment breakdowns. The bands are deliberately simple — operators
// read these tables for orientation, not geodesy.
func RegionOf(c Coord) string {
	switch {
	case c.Lon >= -170 && c.Lon < -30:
		if c.Lat >= 13 {
			return "NorthAm"
		}
		return "SouthAm"
	case c.Lon >= -30 && c.Lon < 60:
		if c.Lat >= 35 {
			return "Europe"
		}
		if c.Lat >= 12 {
			return "MidEast"
		}
		return "Africa"
	default:
		if c.Lat < -8 {
			return "Oceania"
		}
		return "Asia"
	}
}
