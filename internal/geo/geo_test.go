package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDistanceKnownPairs(t *testing.T) {
	// Reference great-circle distances (±2% tolerance).
	cases := []struct {
		a, b   string
		wantKm float64
	}{
		{"London", "New York", 5570},
		{"Tokyo", "Osaka", 400},
		{"Singapore", "London", 10850},
		{"Los Angeles", "Tokyo", 8815},
		{"Sao Paulo", "Miami", 6570},
		{"Amsterdam", "Stockholm", 1130},
	}
	for _, c := range cases {
		a, ok := CityByName(c.a)
		if !ok {
			t.Fatalf("city %q missing", c.a)
		}
		b, ok := CityByName(c.b)
		if !ok {
			t.Fatalf("city %q missing", c.b)
		}
		got := DistanceKm(a.Coord, b.Coord)
		if math.Abs(got-c.wantKm)/c.wantKm > 0.02 {
			t.Errorf("Distance(%s, %s) = %.0f km, want ≈%.0f km", c.a, c.b, got, c.wantKm)
		}
	}
}

func TestDistanceZero(t *testing.T) {
	p := Coord{33.75, -84.39}
	if d := DistanceKm(p, p); d != 0 {
		t.Errorf("Distance(p, p) = %v, want 0", d)
	}
}

func TestDistanceAntipodal(t *testing.T) {
	a := Coord{0, 0}
	b := Coord{0, 180}
	want := math.Pi * EarthRadiusKm
	if d := DistanceKm(a, b); math.Abs(d-want) > 1 {
		t.Errorf("antipodal distance = %.1f, want %.1f", d, want)
	}
}

func TestPropertyDistanceSymmetricNonnegative(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := Coord{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		if math.IsNaN(a.Lat) || math.IsNaN(a.Lon) || math.IsNaN(b.Lat) || math.IsNaN(b.Lon) {
			return true
		}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-6 && d1 <= math.Pi*EarthRadiusKm+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 int16) bool {
		a := Coord{float64(lat1 % 90), float64(lon1 % 180)}
		b := Coord{float64(lat2 % 90), float64(lon2 % 180)}
		c := Coord{float64(lat3 % 90), float64(lon3 % 180)}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyModelOneWay(t *testing.T) {
	m := DefaultLatencyModel()
	// 200 km at 200 km/ms with 1.6 inflation = 1.6 ms + 1 hop penalty.
	got := m.OneWay(200, 1)
	want := 1600*time.Microsecond + m.PerHop
	if got != want {
		t.Errorf("OneWay(200, 1) = %v, want %v", got, want)
	}
}

func TestLatencyModelFloor(t *testing.T) {
	m := DefaultLatencyModel()
	if got := m.OneWay(0, 0); got != m.Floor {
		t.Errorf("OneWay(0,0) = %v, want floor %v", got, m.Floor)
	}
}

func TestLatencyModelNegativeInputsClamped(t *testing.T) {
	m := DefaultLatencyModel()
	if got := m.OneWay(-10, -5); got != m.Floor {
		t.Errorf("OneWay(-10,-5) = %v, want floor %v", got, m.Floor)
	}
}

func TestRTTSymmetricAndDouble(t *testing.T) {
	m := DefaultLatencyModel()
	ams, _ := CityByName("Amsterdam")
	nyc, _ := CityByName("New York")
	rtt := m.RTT(ams.Coord, nyc.Coord, 10)
	if rtt != m.RTT(nyc.Coord, ams.Coord, 10) {
		t.Error("RTT not symmetric")
	}
	if rtt != 2*m.OneWay(DistanceKm(ams.Coord, nyc.Coord), 10) {
		t.Error("RTT != 2 × OneWay")
	}
	// Transatlantic RTT should be plausible: 40–120 ms.
	if rtt < 40*time.Millisecond || rtt > 120*time.Millisecond {
		t.Errorf("AMS–NYC RTT = %v, outside plausible [40ms, 120ms]", rtt)
	}
}

func TestCityCatalog(t *testing.T) {
	// Table 1 site cities must all exist and be valid.
	table1 := []string{
		"Atlanta", "Amsterdam", "Los Angeles", "Singapore", "London",
		"Tokyo", "Osaka", "Miami", "Newark", "Stockholm", "Toronto",
		"Sao Paulo", "Chicago",
	}
	for _, name := range table1 {
		c, ok := CityByName(name)
		if !ok {
			t.Errorf("Table 1 city %q missing from catalog", name)
			continue
		}
		if !c.Valid() {
			t.Errorf("city %q has invalid coordinate %v", name, c.Coord)
		}
	}
	seen := map[string]bool{}
	for _, c := range Cities {
		if seen[c.Name] {
			t.Errorf("duplicate city %q", c.Name)
		}
		seen[c.Name] = true
		if !c.Valid() {
			t.Errorf("city %q invalid coordinate %v", c.Name, c.Coord)
		}
	}
	if len(Cities) < 100 {
		t.Errorf("catalog has %d cities, want >=100 for topology diversity", len(Cities))
	}
}

func TestCityByNameMissing(t *testing.T) {
	if _, ok := CityByName("Atlantis"); ok {
		t.Error("CityByName returned ok for unknown city")
	}
}

func TestCoordValid(t *testing.T) {
	cases := []struct {
		c    Coord
		want bool
	}{
		{Coord{0, 0}, true},
		{Coord{90, 180}, true},
		{Coord{-90, -180}, true},
		{Coord{91, 0}, false},
		{Coord{0, 181}, false},
		{Coord{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.c.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.c, got, c.want)
		}
	}
}

func BenchmarkDistance(b *testing.B) {
	a := Coord{33.75, -84.39}
	c := Coord{1.35, 103.82}
	for i := 0; i < b.N; i++ {
		DistanceKm(a, c)
	}
}

func TestRegionOf(t *testing.T) {
	cases := map[string]string{
		"Chicago":      "NorthAm",
		"Sao Paulo":    "SouthAm",
		"Amsterdam":    "Europe",
		"Lagos":        "Africa",
		"Dubai":        "MidEast",
		"Tokyo":        "Asia",
		"Sydney":       "Oceania",
		"Johannesburg": "Africa",
		"Reykjavik":    "Europe",
	}
	for city, want := range cases {
		c, ok := CityByName(city)
		if !ok {
			t.Fatalf("city %q missing", city)
		}
		if got := RegionOf(c.Coord); got != want {
			t.Errorf("RegionOf(%s) = %s, want %s", city, got, want)
		}
	}
	// Every catalog city maps to a declared region.
	valid := map[string]bool{}
	for _, r := range Regions {
		valid[r] = true
	}
	for _, c := range Cities {
		if !valid[RegionOf(c.Coord)] {
			t.Errorf("city %s maps to undeclared region %q", c.Name, RegionOf(c.Coord))
		}
	}
}
