package reconcile

import (
	"fmt"

	"anyopt"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/predict"
	"anyopt/internal/core/prefs"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// RepairConfig parameterizes one cone-scoped repair campaign.
type RepairConfig struct {
	// Discovery is the campaign configuration the original campaign ran
	// with; the repair replays its canonical schedule (same simulator
	// config, same noise seed, nonces from zero) with only the TargetFilter
	// replaced. Anything else would break row byte-identity.
	Discovery discovery.Config
	// Workers bounds repair concurrency; <= 0 selects the default. Worker
	// count never affects results.
	Workers int
}

// RepairResult is a completed cone repair, ready for publication through
// anyopt.System.PatchCampaign. All structures are fresh copy-on-write values;
// nothing aliases the snapshot that was repaired.
type RepairResult struct {
	// Pred is the patched two-level predictor: cone rows re-measured, all
	// other rows carried over from the repaired snapshot.
	Pred *predict.Predictor
	// RTT is the patched singleton RTT table.
	RTT *discovery.RTTTable
	// AnnOrder is the announcement order re-chosen over the patched
	// provider preferences.
	AnnOrder []prefs.Item
	// Experiments is the repair campaign's BGP experiment count — equal to
	// a full campaign's, since the repair replays the whole schedule and
	// filters only the probing.
	Experiments int
	// Quarantined is the quarantine set carried through the repair.
	Quarantined map[int]string

	// ProbedTargets / TotalTargets measure repair scope: the fraction
	// actually re-probed is the cone-scoping win over a full re-campaign.
	ProbedTargets int
	TotalTargets  int
	// QuorumRetries counts extra experiment attempts K-of-N re-measurement
	// needed under faults.
	QuorumRetries uint64
	// FaultLog is the repair campaign's failure trace.
	FaultLog []string
}

// Repair runs a cone-scoped re-measurement campaign against the live
// topology and patches the re-measured rows into snap's campaign structures.
//
// The repair constructs a fresh Discovery so nonces replay the canonical
// campaign schedule from zero: every experiment runs the full BGP
// announcement sequence (routing state identical to an unfiltered campaign),
// and per-target stream reseeding makes each probed row a pure function of
// (experiment, target). The produced rows are therefore byte-identical to the
// rows a from-scratch campaign on the post-churn topology would measure — the
// convergence guarantee the differential test checks.
//
// Quarantine is inherited from snap (dead-site detection is meaningless under
// a target filter) and carried into the result. On error the snapshot is
// untouched and the caller decides: quarantine the cone, keep its rows
// stale-flagged, degrade health.
func Repair(tb *testbed.Testbed, snap *anyopt.Snapshot, cone *Cone, cfg RepairConfig) (*RepairResult, error) {
	if len(cone.Clients) == 0 {
		return nil, fmt.Errorf("reconcile: empty cone")
	}
	dcfg := cfg.Discovery
	dcfg.TargetFilter = make(map[prefs.Client]bool, len(cone.Clients))
	for c := range cone.Clients {
		dcfg.TargetFilter[c] = true
	}
	if cfg.Workers > 0 {
		dcfg.Workers = cfg.Workers
	}
	d := discovery.New(tb, dcfg)
	d.RestoreQuarantine(snap.Quarantined)

	pred, rtt, err := predict.NewPredictor(tb, d, snap.Pred.UseRTTHeuristic)
	if err != nil {
		return nil, fmt.Errorf("reconcile: repair campaign: %w", err)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("reconcile: repair campaign: %w", err)
	}

	patchedProviders, err := snap.Pred.Providers.PatchClients(pred.Providers, cone.Contains)
	if err != nil {
		return nil, fmt.Errorf("reconcile: patching provider prefs: %w", err)
	}
	patchedSites := make(map[topology.ASN]*prefs.Store, len(snap.Pred.Sites))
	for p, base := range snap.Pred.Sites {
		repaired := pred.Sites[p]
		if base == nil || repaired == nil {
			patchedSites[p] = base
			continue
		}
		ps, err := base.PatchClients(repaired, cone.Contains)
		if err != nil {
			return nil, fmt.Errorf("reconcile: patching site prefs for provider %d: %w", p, err)
		}
		patchedSites[p] = ps
	}
	patchedRTT := snap.RTT.Patch(rtt, cone.Contains)
	order, _ := patchedProviders.BestAnnouncementOrder(7)

	probed, total := d.FilteredTargets()
	return &RepairResult{
		Pred: &predict.Predictor{
			TB:              tb,
			Providers:       patchedProviders,
			Sites:           patchedSites,
			RTT:             patchedRTT,
			UseRTTHeuristic: snap.Pred.UseRTTHeuristic,
		},
		RTT:           patchedRTT,
		AnnOrder:      order,
		Experiments:   d.Experiments,
		Quarantined:   d.Quarantined(),
		ProbedTargets: probed,
		TotalTargets:  total,
		QuorumRetries: d.QuorumRetries(),
		FaultLog:      d.FaultLog(),
	}, nil
}

// MarkStale returns prev with every cone client marked stale at gen — the
// generation whose campaign data the rows still reflect. prev is not
// modified; the result is fresh, for publication through PatchCampaign.
func MarkStale(prev map[prefs.Client]uint64, cone *Cone, gen uint64) map[prefs.Client]uint64 {
	out := make(map[prefs.Client]uint64, len(prev)+len(cone.Clients))
	for c, g := range prev {
		out[c] = g
	}
	for c := range cone.Clients {
		if _, ok := out[c]; !ok {
			out[c] = gen
		}
	}
	return out
}

// ClearRepaired returns prev with the staleness of repaired cone clients
// cleared, nil when nothing remains. gen is the generation of the snapshot the
// repair measured against: a mark recorded at an earlier generation was
// published before that snapshot existed, so the repair's measurement saw the
// churn behind it and the row is genuinely healed. A cone client whose mark
// carries gen or later was re-marked by churn that raced the repair's
// measurement — its mark survives until its own queued repair commits. prev is
// not modified.
func ClearRepaired(prev map[prefs.Client]uint64, cone *Cone, gen uint64) map[prefs.Client]uint64 {
	var out map[prefs.Client]uint64
	for c, g := range prev {
		if cone.Clients[c] && g < gen {
			continue
		}
		if out == nil {
			out = make(map[prefs.Client]uint64)
		}
		out[c] = g
	}
	return out
}
