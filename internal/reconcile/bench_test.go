package reconcile_test

// BENCH_9 benchmarks: cone inference cost and cone-scoped repair scope. The
// headline number is cone_frac on BenchmarkStructuralConePaper — the share of
// the target population a single access-link flap forces the reconciler to
// re-measure at paper scale. The acceptance bound is 0.10: a cone-scoped
// repair must touch at most 10% of the pairs a full re-campaign would.

import (
	"testing"

	"anyopt"
	"anyopt/internal/fault"
	"anyopt/internal/reconcile"
	"anyopt/internal/topology"
)

// stubLinkFlap finds an access link with a stub endpoint and returns a
// single-link-down routing delta for it.
func stubLinkFlap(tb testing.TB, topo *topology.Topology) *fault.RoutingDelta {
	for _, l := range topo.Links {
		if topo.AS(l.From).Tier == topology.TierStub || topo.AS(l.To).Tier == topology.TierStub {
			return &fault.RoutingDelta{Events: []fault.AppliedEvent{{
				ChurnEvent: fault.ChurnEvent{Kind: fault.ChurnLinkDown, Link: l.ID},
			}}}
		}
	}
	tb.Fatal("no stub link in topology")
	return nil
}

// BenchmarkStructuralConePaper infers the re-measurement cone for a
// single-link flap on the paper-scale topology and reports the cone's share
// of the target population (cone_frac).
func BenchmarkStructuralConePaper(b *testing.B) {
	sys, err := anyopt.New(anyopt.PaperScaleOptions())
	if err != nil {
		b.Fatal(err)
	}
	delta := stubLinkFlap(b, sys.Topo)
	var cone *reconcile.Cone
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cone = reconcile.StructuralCone(sys.Topo, sys.TB.Origin, delta)
	}
	b.StopTimer()
	frac := float64(len(cone.Clients)) / float64(len(sys.Topo.Targets))
	b.ReportMetric(frac, "cone_frac")
	if frac > 0.10 {
		b.Fatalf("paper-scale single-link-flap cone covers %.1f%% of targets, want <= 10%%", 100*frac)
	}
}

// BenchmarkConeRepair runs one full cone-scoped repair campaign (test-scale
// topology, fault-free) and reports the probed-target fraction — the
// end-to-end cost of healing one churn event versus re-running discovery.
func BenchmarkConeRepair(b *testing.B) {
	sys := buildSystem(b, 0, nil)
	if err := sys.RunDiscovery(); err != nil {
		b.Fatal(err)
	}
	snap := sys.CurrentSnapshot()
	events := fault.PlanChurn(sys.Topo, 3, 1, []fault.ChurnKind{fault.ChurnLinkCost})
	delta, err := fault.ApplyChurn(sys.Topo, events)
	if err != nil {
		b.Fatal(err)
	}
	cone := reconcile.StructuralCone(sys.Topo, sys.TB.Origin, delta)
	cfg := reconcile.RepairConfig{Discovery: sys.Options().Discovery}
	b.ResetTimer()
	var res *reconcile.RepairResult
	for i := 0; i < b.N; i++ {
		if res, err = reconcile.Repair(sys.TB, snap, cone, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.ProbedTargets)/float64(res.TotalTargets), "probed_frac")
}
