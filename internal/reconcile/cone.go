// Package reconcile keeps served predictions tracking a churning topology
// without re-running the full N² measurement campaign. Given a structured
// routing delta from internal/fault, it infers the affected client-AS cone
// (the clients whose routes could have traversed the changed state), runs a
// cone-scoped re-measurement campaign that replays the canonical experiment
// schedule while probing only cone targets, and assembles copy-on-write
// patched campaign structures for publication through anyopt.PatchCampaign.
//
// The package is pure derivation: no goroutines (the background loop lives in
// internal/api), no entropy (churn planning entropy lives in internal/fault).
// Everything here is a deterministic function of the topology, the delta, and
// the campaign configuration — which is what makes the differential
// churn-convergence test possible: a churned campaign healed through this
// package is byte-identical to a from-scratch campaign on the post-churn
// topology.
package reconcile

import (
	"sort"

	"anyopt/internal/core/prefs"
	"anyopt/internal/fault"
	"anyopt/internal/topology"
)

// Cone is the set of client ASes whose measured rows a routing delta may have
// invalidated. Structural inference over-approximates (valley-free reachability
// says "could a route through the changed state reach this client", not "did
// one"); the catchment walker refines observability by adding clients whose
// full-deployment catchment demonstrably moved.
type Cone struct {
	// Clients are the affected client ASes — the re-measurement target set.
	Clients map[prefs.Client]bool
	// ASes are all ASes the structural walk visited (superset of Clients;
	// includes transit ASes without measurement targets of their own).
	ASes map[topology.ASN]bool
	// Observed counts clients added by the catchment walker's diff rather
	// than the structural walk — defense in depth against an inference gap.
	Observed int
}

// Contains reports cone membership for a client.
func (c *Cone) Contains(cl prefs.Client) bool { return c.Clients[cl] }

// SortedClients returns the cone's clients in ascending order.
func (c *Cone) SortedClients() []prefs.Client {
	out := make([]prefs.Client, 0, len(c.Clients))
	for cl := range c.Clients {
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge folds other into c (set union), for coalescing repairs when several
// churn batches queue up behind one repair pass. Nil maps in c are allocated
// lazily, so a minimally-constructed cone (e.g. one rebuilt from a checkpoint,
// which has no AS walk to restore) is a valid merge target.
func (c *Cone) Merge(other *Cone) {
	if c.Clients == nil && len(other.Clients) > 0 {
		c.Clients = make(map[prefs.Client]bool, len(other.Clients))
	}
	for cl := range other.Clients {
		c.Clients[cl] = true
	}
	if c.ASes == nil && len(other.ASes) > 0 {
		c.ASes = make(map[topology.ASN]bool, len(other.ASes))
	}
	for a := range other.ASes {
		c.ASes[a] = true
	}
	c.Observed += other.Observed
}

// routeState classifies how an AS holds the anycast route in the valley-free
// propagation model (Gao-Rexford): routes learned from customers may be
// exported to anyone; routes learned from peers or providers only to
// customers. Per-neighbor LOCAL_PREF deviations stay within the topology's
// deviant spread, which reorders choices inside a relationship class but never
// across classes — so this classification is churn-stable and the walk below
// is sound even on policy-deviant topologies.
type routeState uint8

const (
	routeNone routeState = iota
	// routeDown: the AS holds the route learned from a peer or provider.
	routeDown
	// routeUp: the AS originated the route or learned it from a customer —
	// it may export to providers and peers as well as customers.
	routeUp
)

// routeStates computes, for every AS, the strongest way it can hold the
// anycast route under valley-free export. All anycast prefixes originate at
// the testbed origin, so a single rooted walk covers every deployment the
// campaign can announce: announcing from fewer sites only shrinks the set of
// first-hop providers, never grows reachability.
func routeStates(t *topology.Topology, origin topology.ASN) map[topology.ASN]routeState {
	states := make(map[topology.ASN]routeState, t.NumASes())
	states[origin] = routeUp
	queue := []topology.ASN{origin}
	push := func(a topology.ASN, s routeState) {
		if states[a] >= s {
			return
		}
		states[a] = s
		queue = append(queue, a)
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		s := states[x]
		for _, l := range t.LinksOf(x) {
			b := l.Other(x)
			switch l.RoleOf(x) {
			case topology.RoleCustomer:
				// x exports to its customer b regardless of how it learned;
				// b learns from a provider.
				push(b, routeDown)
			default:
				// b is x's peer or provider: only customer-learned routes
				// cross. b learns from a peer/provider — unless b is x's
				// provider, in which case x is b's customer and b may
				// re-export upward.
				if s != routeUp {
					continue
				}
				if l.RoleOf(b) == topology.RoleCustomer {
					push(b, routeUp)
				} else {
					push(b, routeDown)
				}
			}
		}
	}
	return states
}

// downstream walks every AS whose route selection can depend on what start
// exports, given how start holds the route (fromCustomer: start learned it
// from a customer or originated it). An AS that learned from a customer
// exports to all neighbors; otherwise only to customers. Visited ASes are
// added to visited; an AS already visited in an equal-or-stronger state is
// not re-expanded.
func downstream(t *topology.Topology, start topology.ASN, fromCustomer bool, visited map[topology.ASN]routeState) {
	s := routeDown
	if fromCustomer {
		s = routeUp
	}
	if visited[start] >= s {
		return
	}
	visited[start] = s
	queue := []topology.ASN{start}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, l := range t.LinksOf(x) {
			if visited[x] != routeUp && l.RoleOf(x) != topology.RoleCustomer {
				continue
			}
			b := l.Other(x)
			bs := routeDown
			if l.RoleOf(b) == topology.RoleCustomer {
				bs = routeUp
			}
			if visited[b] >= bs {
				continue
			}
			visited[b] = bs
			queue = append(queue, b)
		}
	}
}

// feasibleExport reports whether x can export the anycast route to y over
// link l under valley-free rules: to a customer whenever x holds the route at
// all, to a peer or provider only when x holds a customer-learned route.
func feasibleExport(l *topology.Link, x topology.ASN, states map[topology.ASN]routeState) bool {
	if l.RoleOf(x) == topology.RoleCustomer {
		return states[x] != routeNone
	}
	return states[x] == routeUp
}

// StructuralCone computes the conservative affected-client cone of a routing
// delta by pure graph analysis — no simulator state required, so it is the
// cold-start fallback as well as the soundness floor the walker refines.
//
// For a changed link, every route whose export set the change can perturb
// traverses the link in one of its two directions; for each valley-free
// feasible direction, the clients downstream of the receiving endpoint (in
// the learned-role state the link pins) are affected. A policy flip at an AS
// perturbs that AS's own selection, hence everything downstream of its
// feasible exports. Both link endpoints (and the flipping AS) join the cone
// unconditionally: their own RTT paths cross the changed state even when no
// third party reroutes.
func StructuralCone(t *topology.Topology, origin topology.ASN, delta *fault.RoutingDelta) *Cone {
	states := routeStates(t, origin)
	visited := make(map[topology.ASN]routeState)
	for _, ev := range delta.Events {
		switch ev.Kind {
		case fault.ChurnLinkCost, fault.ChurnLinkDown, fault.ChurnLinkUp:
			l := t.Link(ev.Link)
			if l == nil {
				continue
			}
			for _, x := range []topology.ASN{l.From, l.To} {
				y := l.Other(x)
				visited[x] = max(visited[x], routeDown)
				if feasibleExport(l, x, states) {
					downstream(t, y, l.RoleOf(y) == topology.RoleCustomer, visited)
				}
			}
		case fault.ChurnPolicyFlip:
			visited[ev.AS] = max(visited[ev.AS], routeDown)
			for _, l := range t.LinksOf(ev.AS) {
				if !feasibleExport(l, ev.AS, states) {
					continue
				}
				b := l.Other(ev.AS)
				downstream(t, b, l.RoleOf(b) == topology.RoleCustomer, visited)
			}
		}
	}
	cone := &Cone{
		Clients: make(map[prefs.Client]bool),
		ASes:    make(map[topology.ASN]bool, len(visited)),
	}
	for a := range visited {
		cone.ASes[a] = true
	}
	for _, tg := range t.Targets {
		if cone.ASes[tg.AS] {
			cone.Clients[prefs.Client(tg.AS)] = true
		}
	}
	return cone
}
