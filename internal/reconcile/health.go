package reconcile

import "fmt"

// Health is the reconciler's serving-quality state, exposed per /v1/predict
// response so consumers can weigh answers by how well the campaign tracks the
// live topology.
type Health uint8

const (
	// HealthFresh: every served row reflects the current topology.
	HealthFresh Health = iota
	// HealthReconciling: churn has been detected and marked; repair is
	// pending or in flight. Rows in the cone are served stale-flagged.
	HealthReconciling
	// HealthDegraded: at least one repair failed or left quarantined cones;
	// stale rows persist beyond a single repair cycle.
	HealthDegraded
	// HealthStale: repeated repair failures — stale rows should be treated
	// as historical data, not predictions.
	HealthStale
)

func (h Health) String() string {
	switch h {
	case HealthFresh:
		return "fresh"
	case HealthReconciling:
		return "reconciling"
	case HealthDegraded:
		return "degraded"
	case HealthStale:
		return "stale"
	default:
		return fmt.Sprintf("health(%d)", uint8(h))
	}
}

// Machine is the reconciler health state machine:
//
//	fresh ──churn──▶ reconciling ──clean repair──▶ fresh
//	                     │  ▲
//	     failed/partial  │  │ churn (from degraded too)
//	                     ▼  │
//	                  degraded ──MaxFailures consecutive failures──▶ stale
//	                                                                   │
//	        stale ◀────────────────────────────────────────────────────┘
//	          └──clean repair──▶ fresh
//
// A "clean repair" is one that returned no error and left zero stale rows;
// anything else counts as a failure cycle. The machine is not safe for
// concurrent use — the api layer serializes transitions with its writer lock.
type Machine struct {
	// MaxFailures is the number of consecutive failed repair cycles after
	// which the machine degrades to stale (default 3).
	MaxFailures int

	state    Health
	failures int
}

// State returns the current health state.
func (m *Machine) State() Health { return m.state }

// Failures returns the consecutive failed repair cycles.
func (m *Machine) Failures() int { return m.failures }

// OnChurn records a detected routing change: fresh or degraded serving
// becomes reconciling; stale stays stale (more churn cannot improve matters).
func (m *Machine) OnChurn() {
	if m.state != HealthStale {
		m.state = HealthReconciling
	}
}

// OnRepair records the outcome of one repair cycle: err is the repair's
// error (nil on success) and staleRows the number of rows still stale after
// publication (quarantined cones, merged-in unrepaired churn).
func (m *Machine) OnRepair(staleRows int, err error) {
	if err == nil && staleRows == 0 {
		m.state = HealthFresh
		m.failures = 0
		return
	}
	m.failures++
	limit := m.MaxFailures
	if limit <= 0 {
		limit = 3
	}
	if m.failures >= limit {
		m.state = HealthStale
		return
	}
	m.state = HealthDegraded
}
