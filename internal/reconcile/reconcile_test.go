package reconcile_test

// The keystone differential test: a campaign healed by the cone-scoped
// reconciler must converge byte-identical to a from-scratch full campaign on
// the post-churn topology — at different worker counts on either side, and
// with a harsh fault scenario layered on top of the churn. Byte-identity is
// checked on the canonical campaign serialization (campaign.SaveSnapshot),
// which covers the provider and site preference stores, the RTT table, the
// announcement order, the experiment count, and the quarantine set.

import (
	"bytes"
	"testing"

	"anyopt"
	"anyopt/internal/campaign"
	"anyopt/internal/core/prefs"
	"anyopt/internal/fault"
	"anyopt/internal/reconcile"
	"anyopt/internal/topology"
)

// buildSystem makes a test-scale system with the given campaign concurrency
// and fault configuration (nil = fault-free).
func buildSystem(t testing.TB, workers int, faults *fault.Config) *anyopt.System {
	t.Helper()
	opts := anyopt.DefaultOptions()
	opts.Discovery.Workers = workers
	opts.Discovery.Faults = faults
	sys, err := anyopt.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// churnScenario parameterizes one differential convergence run.
type churnScenario struct {
	name        string
	churnSeed   int64
	events      int
	kinds       []fault.ChurnKind
	liveWorkers int
	refWorkers  int
	faults      func() *fault.Config
}

func harshFaults() *fault.Config {
	cfg, err := fault.Scenario("harsh", 7)
	if err != nil {
		panic(err)
	}
	return cfg
}

func TestChurnConvergesToFullRecampaign(t *testing.T) {
	scenarios := []churnScenario{
		// Worker counts differ between the healed and reference campaigns on
		// purpose: convergence must be schedule-deterministic, not an
		// artifact of matching concurrency.
		{name: "faultfree_w1_vs_w4", churnSeed: 3, events: 2,
			liveWorkers: 1, refWorkers: 4},
		{name: "faultfree_w4_vs_w2", churnSeed: 11, events: 3,
			liveWorkers: 4, refWorkers: 2},
		// Harsh faults on top of the churn: quorum re-measurement must heal
		// the repair to the same rows the (equally faulted) reference
		// campaign converges to. Kinds exclude link-down so the fault layer's
		// dead-site detector sees the same live site set on both paths.
		{name: "harsh", churnSeed: 5, events: 2,
			kinds:       []fault.ChurnKind{fault.ChurnLinkCost, fault.ChurnPolicyFlip},
			liveWorkers: 4, refWorkers: 1, faults: harshFaults},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			testChurnConvergence(t, sc)
		})
	}
}

func testChurnConvergence(t *testing.T, sc churnScenario) {
	var liveFaults, refFaults *fault.Config
	if sc.faults != nil {
		liveFaults, refFaults = sc.faults(), sc.faults()
	}

	// Live system: full campaign on the pre-churn topology, walker warmed on
	// the pre-churn baseline.
	live := buildSystem(t, sc.liveWorkers, liveFaults)
	if err := live.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	snap := live.CurrentSnapshot()
	walker := reconcile.NewCatchmentWalker(live.TB, live.Options().Discovery.SimCfg)
	walker.Refresh()

	// Plan and apply persistent churn to the live topology.
	events := fault.PlanChurn(live.Topo, sc.churnSeed, sc.events, sc.kinds)
	if len(events) == 0 {
		t.Fatal("no churn events planned")
	}
	delta, err := fault.ApplyChurn(live.Topo, events)
	if err != nil {
		t.Fatal(err)
	}
	cone := reconcile.StructuralCone(live.Topo, live.TB.Origin, delta)
	structural := len(cone.Clients)
	walker.ExpandCone(cone)
	// Soundness: every client whose full-deployment catchment demonstrably
	// moved must already be inside the structural over-approximation.
	if cone.Observed != 0 {
		t.Errorf("catchment walker found %d moved clients outside the structural cone (%d structural)",
			cone.Observed, structural)
	}
	if len(cone.Clients) == 0 {
		t.Fatalf("empty cone for %s", delta)
	}

	res, err := reconcile.Repair(live.TB, snap, cone, reconcile.RepairConfig{
		Discovery: live.Options().Discovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbedTargets != len(cone.Clients) {
		t.Errorf("repair probed %d targets, cone has %d clients", res.ProbedTargets, len(cone.Clients))
	}
	if res.ProbedTargets >= res.TotalTargets {
		t.Errorf("cone repair re-probed everything: %d/%d targets", res.ProbedTargets, res.TotalTargets)
	}
	t.Logf("%s: cone %d/%d targets (%.1f%%), %d quorum retries",
		delta, res.ProbedTargets, res.TotalTargets,
		100*float64(res.ProbedTargets)/float64(res.TotalTargets), res.QuorumRetries)
	healed := live.PatchCampaign(res.Pred, res.RTT, res.AnnOrder, res.Experiments, res.Quarantined, nil)

	// Reference: an identically seeded fresh system, the same churn applied
	// to its (identical) topology, then a from-scratch full campaign.
	ref := buildSystem(t, sc.refWorkers, refFaults)
	if _, err := fault.ApplyChurn(ref.Topo, events); err != nil {
		t.Fatal(err)
	}
	if err := ref.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	refSnap := ref.CurrentSnapshot()

	var healedBytes, refBytes bytes.Buffer
	if err := campaign.SaveSnapshot(&healedBytes, healed); err != nil {
		t.Fatal(err)
	}
	if err := campaign.SaveSnapshot(&refBytes, refSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healedBytes.Bytes(), refBytes.Bytes()) {
		t.Errorf("healed campaign diverges from the from-scratch post-churn campaign\nhealed: %d bytes\nref:    %d bytes",
			healedBytes.Len(), refBytes.Len())
	}
}

func TestRepairRejectsEmptyCone(t *testing.T) {
	sys := buildSystem(t, 0, nil)
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	cone := &reconcile.Cone{Clients: nil}
	if _, err := reconcile.Repair(sys.TB, sys.CurrentSnapshot(), cone, reconcile.RepairConfig{
		Discovery: sys.Options().Discovery,
	}); err == nil {
		t.Fatal("empty cone repaired without error")
	}
}

func TestStructuralConeStubAccessLinkIsSmall(t *testing.T) {
	sys := buildSystem(t, 0, nil)
	topo := sys.Topo
	// Find a stub's access link: one endpoint a stub AS with a measurement
	// target, and make sure StructuralCone confines the event to the stub and
	// its provider rather than the whole client population.
	var link *topology.Link
	for _, l := range topo.Links {
		if topo.AS(l.From).Tier == topology.TierStub || topo.AS(l.To).Tier == topology.TierStub {
			link = l
			break
		}
	}
	if link == nil {
		t.Skip("no stub link in topology")
	}
	delta := &fault.RoutingDelta{Events: []fault.AppliedEvent{{
		ChurnEvent: fault.ChurnEvent{Kind: fault.ChurnLinkDown, Link: link.ID},
	}}}
	cone := reconcile.StructuralCone(topo, sys.TB.Origin, delta)
	total := len(topo.Targets)
	if frac := float64(len(cone.Clients)) / float64(total); frac > 0.10 {
		t.Errorf("stub access-link flap cone covers %.1f%% of targets (%d/%d), want <= 10%%",
			100*frac, len(cone.Clients), total)
	}
	stub := link.From
	if topo.AS(link.To).Tier == topology.TierStub {
		stub = link.To
	}
	if !cone.ASes[stub] {
		t.Errorf("cone misses the stub endpoint AS%d", stub)
	}
}

func TestMarkStaleAndClearRepaired(t *testing.T) {
	cone := &reconcile.Cone{Clients: map[prefs.Client]bool{10: true, 20: true}}
	marked := reconcile.MarkStale(nil, cone, 3)
	if len(marked) != 2 || marked[10] != 3 || marked[20] != 3 {
		t.Fatalf("marked = %v", marked)
	}
	// Re-marking at a later generation must not advance the recorded data
	// generation: the row still reflects gen 3's campaign.
	cone2 := &reconcile.Cone{Clients: map[prefs.Client]bool{20: true, 30: true}}
	marked2 := reconcile.MarkStale(marked, cone2, 5)
	if marked2[20] != 3 {
		t.Errorf("re-mark advanced client 20's data generation to %d", marked2[20])
	}
	if marked2[30] != 5 {
		t.Errorf("client 30 marked at %d, want 5", marked2[30])
	}
	if marked[30] != 0 || len(marked) != 2 {
		t.Error("MarkStale mutated its input")
	}
	cleared := reconcile.ClearRepaired(marked2, cone, 6)
	if len(cleared) != 1 || cleared[30] != 5 {
		t.Fatalf("cleared = %v", cleared)
	}
	if rest := reconcile.ClearRepaired(cleared, cone2, 6); rest != nil {
		t.Fatalf("fully repaired staleness = %v, want nil", rest)
	}

	// A cone client whose mark is at (or after) the generation the repair
	// measured against was re-churned while the repair ran: its mark must
	// survive until its own queued repair commits, even though the client is
	// in the repaired cone.
	raced := reconcile.ClearRepaired(map[prefs.Client]uint64{10: 3, 20: 6}, cone, 6)
	if len(raced) != 1 || raced[20] != 6 {
		t.Fatalf("racing churn mark cleared: %v, want map[20:6]", raced)
	}
}

// TestConeMergeLazyAlloc is the nil-map regression: a minimally-constructed
// cone (as rebuilt by crash resume, which journals clients but no AS walk)
// must be a valid Merge target.
func TestConeMergeLazyAlloc(t *testing.T) {
	dst := &reconcile.Cone{Clients: map[prefs.Client]bool{1: true}}
	src := &reconcile.Cone{
		Clients:  map[prefs.Client]bool{2: true},
		ASes:     map[topology.ASN]bool{7: true},
		Observed: 1,
	}
	dst.Merge(src)
	if !dst.Clients[1] || !dst.Clients[2] || !dst.ASes[7] || dst.Observed != 1 {
		t.Fatalf("merged cone = %+v", dst)
	}
	empty := &reconcile.Cone{}
	empty.Merge(src)
	if !empty.Clients[2] || !empty.ASes[7] {
		t.Fatalf("merge into zero-value cone = %+v", empty)
	}
}

func TestHealthMachine(t *testing.T) {
	var m reconcile.Machine
	if m.State() != reconcile.HealthFresh {
		t.Fatalf("initial state %v", m.State())
	}
	m.OnChurn()
	if m.State() != reconcile.HealthReconciling {
		t.Fatalf("after churn: %v", m.State())
	}
	m.OnRepair(0, nil)
	if m.State() != reconcile.HealthFresh || m.Failures() != 0 {
		t.Fatalf("clean repair: %v failures=%d", m.State(), m.Failures())
	}
	m.OnChurn()
	m.OnRepair(3, nil) // partial: stale rows remain
	if m.State() != reconcile.HealthDegraded {
		t.Fatalf("partial repair: %v", m.State())
	}
	m.OnRepair(3, nil)
	m.OnRepair(3, nil) // third consecutive failure cycle
	if m.State() != reconcile.HealthStale {
		t.Fatalf("after 3 failures: %v", m.State())
	}
	m.OnChurn() // stale stays stale
	if m.State() != reconcile.HealthStale {
		t.Fatalf("churn on stale: %v", m.State())
	}
	m.OnRepair(0, nil)
	if m.State() != reconcile.HealthFresh || m.Failures() != 0 {
		t.Fatalf("recovery: %v failures=%d", m.State(), m.Failures())
	}
}
