package reconcile

import (
	"sort"

	"anyopt/internal/bgp"
	"anyopt/internal/core/prefs"
	"anyopt/internal/probe"
	"anyopt/internal/testbed"
)

// walkerNonce is the jitter nonce of every walker simulation. It lives in the
// top half of the nonce space, disjoint from campaign nonces (which count up
// from zero) and from ad-hoc measurement sessions (which stride the lower
// half in 2³² blocks) — the walker's races never alias an experiment's.
const walkerNonce = 1<<63 | 0x77616c6b // "walk"

// CatchmentWalker memoizes the full-deployment catchment map (every site
// announced simultaneously) and diffs it across routing churn. The diff is
// the observability half of cone inference: any client whose catchment
// demonstrably moved joins the cone even if the structural walk somehow
// missed it, so repair correctness never rests on the graph analysis alone.
//
// The walker runs noise-free and fault-free — catchment is a pure function of
// converged routing state — and on its own private jitter nonce, so a walk
// never perturbs or aliases campaign measurements. A cold walker (no memo
// yet) contributes nothing and the cone degrades to the structural
// over-approximation.
type CatchmentWalker struct {
	tb  *testbed.Testbed
	cfg bgp.Config

	// memo is the last observed full-deployment catchment (client → site
	// ID); nil until the first Refresh.
	memo map[prefs.Client]int
}

// NewCatchmentWalker builds a walker over tb using the campaign's simulator
// configuration (chaos and per-experiment nonce are replaced).
func NewCatchmentWalker(tb *testbed.Testbed, simCfg bgp.Config) *CatchmentWalker {
	return &CatchmentWalker{tb: tb, cfg: simCfg}
}

// Warm reports whether the walker holds a memoized catchment map.
func (w *CatchmentWalker) Warm() bool { return w.memo != nil }

// walk measures every target's catchment under a simultaneous all-sites
// deployment on the topology's current state.
func (w *CatchmentWalker) walk() map[prefs.Client]int {
	cfg := w.cfg
	cfg.JitterNonce = walkerNonce
	cfg.Chaos = nil
	sim := bgp.New(w.tb.Topo, cfg)
	for _, id := range w.tb.Topo.DownLinks() {
		sim.FailLink(id)
	}
	ids := make([]int, len(w.tb.Sites))
	for i, s := range w.tb.Sites {
		ids[i] = s.ID
	}
	dep := w.tb.NewDeployment(sim, 0)
	dep.AnnounceSitesSimultaneously(ids...)
	p := probe.New(
		probe.NewSimFabric(w.tb, sim, 0, nil),
		probe.DefaultConfig(w.tb.OrchAddr, w.tb.AnycastAddrs[0]),
		sim.Engine.Now(),
	)
	out := make(map[prefs.Client]int, len(w.tb.Topo.Targets))
	for _, tg := range w.tb.Topo.Targets {
		key, err := p.Catchment(tg.Addr)
		if err != nil {
			continue
		}
		if site := w.tb.SiteByTunnelKey(key); site != nil {
			out[prefs.Client(tg.AS)] = site.ID
		}
	}
	return out
}

// Refresh memoizes the current topology's full-deployment catchment — call it
// after campaign installation (pre-churn baseline) and after each repair (the
// healed state becomes the next baseline).
func (w *CatchmentWalker) Refresh() { w.memo = w.walk() }

// ObservedChanges walks the post-churn topology, returns every client whose
// catchment differs from the memo (moved, appeared, or disappeared), and
// re-memoizes the new state. A cold walker returns nil without memoizing —
// callers fall back to the structural cone and Refresh explicitly once a
// trusted baseline exists.
func (w *CatchmentWalker) ObservedChanges() []prefs.Client {
	if w.memo == nil {
		return nil
	}
	next := w.walk()
	var changed []prefs.Client
	for c, site := range next {
		if old, ok := w.memo[c]; !ok || old != site {
			changed = append(changed, c)
		}
	}
	for c := range w.memo {
		if _, ok := next[c]; !ok {
			changed = append(changed, c)
		}
	}
	w.memo = next
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	return changed
}

// ExpandCone unions the walker's observed changes into cone, counting the
// clients the structural walk had missed.
func (w *CatchmentWalker) ExpandCone(cone *Cone) {
	for _, c := range w.ObservedChanges() {
		if !cone.Clients[c] {
			cone.Clients[c] = true
			cone.Observed++
		}
	}
}
