package topology

// Synthetic SPLPO instance generation at scales the BGP testbed generator
// cannot reach. Generate builds a full routed topology (thousands of ASes)
// and is the right tool at paper scale; the §4.5 Akamai-scale analysis
// (500 sites / 20 transit providers) and the ROADMAP's internet-scale
// ambition (5k sites) need SPLPO instances directly — geo-grounded costs,
// BGP-flavored preference orders that disagree with latency, truncated
// rankings — without paying for per-AS route propagation.
//
// The model: sites are scattered over the geo city atlas and each buys
// transit from one of NumTransits providers. Clients sit near cities too;
// a client's candidate sites are its region's nearest sites by great-circle
// RTT, but its *preference* order sorts by (transit-provider preference,
// perturbed RTT) — the latency-oblivious BGP behavior of §1 — while its
// *cost* is the true RTT. Rankings are truncated to RankWidth, so at
// internet scale a configuration can leave clients unserved, which is
// exactly the regime the anytime solver's lexicographic guidance objective
// (unserved, cap excess, mean cost) is built for.

import (
	"fmt"
	"math/rand"
	"sort"

	"anyopt/internal/core/splpo"
	"anyopt/internal/geo"
)

// SPLPOParams controls synthetic SPLPO instance generation.
type SPLPOParams struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumSites is the number of candidate anycast sites.
	NumSites int
	// NumTransits is the number of transit providers sites attach to.
	NumTransits int
	// NumClients is the number of client aggregates.
	NumClients int
	// RankWidth truncates each client's preference ranking (≤ CandWidth).
	RankWidth int
	// CandWidth is how many nearby sites a client considers before
	// preference ordering truncates to RankWidth.
	CandWidth int
	// Capacitated adds per-site capacity limits.
	Capacitated bool
	// CapSlack is total capacity over total load when Capacitated
	// (e.g. 1.5 = 50% headroom).
	CapSlack float64
	// TransitBiasMs is how strongly transit preference overrides latency in
	// the client's ordering, in milliseconds per preference step.
	TransitBiasMs float64
	// JitterMs perturbs the RTT used for ordering (not the true cost),
	// modeling measurement noise and intra-AS detours.
	JitterMs float64
}

// AkamaiScaleSPLPOParams is the §4.5 scale: 500 sites across 20 transit
// providers, ten thousand client aggregates. Uncapacitated like the paper's
// analysis — the objective is mean latency, and because preference order
// disagrees with latency, all-open is NOT optimal: the solver earns its keep
// by closing sites that attract clients away from lower-latency ones.
// (Capacity limits remain available via Capacitated/CapSlack; with demand
// this geographically clustered, tight uniform caps can make an instance
// infeasible outright — isolated metros overload their only nearby sites no
// matter which subset is open — so capacitated runs should keep generous
// slack or expect the solver to minimize, not eliminate, cap excess.)
func AkamaiScaleSPLPOParams() SPLPOParams {
	return SPLPOParams{
		Seed:          1,
		NumSites:      500,
		NumTransits:   20,
		NumClients:    10000,
		RankWidth:     16,
		CandWidth:     48,
		TransitBiasMs: 25,
		JitterMs:      8,
	}
}

// InternetScaleSPLPOParams is the ROADMAP's internet-scale target: 5k sites.
func InternetScaleSPLPOParams() SPLPOParams {
	return SPLPOParams{
		Seed:          1,
		NumSites:      5000,
		NumTransits:   40,
		NumClients:    40000,
		RankWidth:     24,
		CandWidth:     64,
		TransitBiasMs: 25,
		JitterMs:      8,
	}
}

// Validate checks the parameters.
func (p SPLPOParams) Validate() error {
	switch {
	case p.NumSites < 1:
		return fmt.Errorf("splpogen: NumSites %d < 1", p.NumSites)
	case p.NumTransits < 1:
		return fmt.Errorf("splpogen: NumTransits %d < 1", p.NumTransits)
	case p.NumClients < 1:
		return fmt.Errorf("splpogen: NumClients %d < 1", p.NumClients)
	case p.RankWidth < 1:
		return fmt.Errorf("splpogen: RankWidth %d < 1", p.RankWidth)
	case p.CandWidth < p.RankWidth:
		return fmt.Errorf("splpogen: CandWidth %d < RankWidth %d", p.CandWidth, p.RankWidth)
	case p.Capacitated && p.CapSlack <= 0:
		return fmt.Errorf("splpogen: CapSlack %v must be positive", p.CapSlack)
	}
	return nil
}

// splpoSite is one generated site.
type splpoSite struct {
	coord   geo.Coord
	transit int
}

// GenerateSPLPO builds a synthetic SPLPO instance. Deterministic per
// parameter set; the result passes splpo.Validate.
func GenerateSPLPO(p SPLPOParams) (*splpo.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	model := geo.DefaultLatencyModel()

	sites := make([]splpoSite, p.NumSites)
	for i := range sites {
		city := geo.Cities[rng.Intn(len(geo.Cities))]
		sites[i] = splpoSite{
			coord: geo.Coord{
				Lat: clampLat(city.Coord.Lat + rng.NormFloat64()*1.5),
				Lon: wrapLon(city.Coord.Lon + rng.NormFloat64()*1.5),
			},
			transit: rng.Intn(p.NumTransits),
		}
	}

	// Per-city nearest-site shortlists, shared by every client anchored to
	// that city: O(cities × sites) distance work instead of
	// O(clients × sites).
	cand := p.CandWidth
	if cand > p.NumSites {
		cand = p.NumSites
	}
	type distSite struct {
		site int
		km   float64
	}
	shortlists := make([][]distSite, len(geo.Cities))
	scratch := make([]distSite, p.NumSites)
	for ci, city := range geo.Cities {
		for si := range sites {
			scratch[si] = distSite{site: si, km: geo.DistanceKm(city.Coord, sites[si].coord)}
		}
		sort.Slice(scratch, func(a, b int) bool {
			if scratch[a].km != scratch[b].km {
				return scratch[a].km < scratch[b].km
			}
			return scratch[a].site < scratch[b].site
		})
		shortlists[ci] = append([]distSite(nil), scratch[:cand]...)
	}

	in := &splpo.Instance{
		NumSites: p.NumSites,
		Clients:  make([]splpo.Client, p.NumClients),
	}
	totalLoad := 0.0
	type prefSite struct {
		site  int
		score float64
		rtt   float64
	}
	prefs := make([]prefSite, cand)
	for i := range in.Clients {
		city := rng.Intn(len(geo.Cities))
		coord := geo.Coord{
			Lat: clampLat(geo.Cities[city].Coord.Lat + rng.NormFloat64()*2),
			Lon: wrapLon(geo.Cities[city].Coord.Lon + rng.NormFloat64()*2),
		}
		// A client's transit preference: most clients follow a common
		// relationship-driven order, a BGP-flavored bias uncorrelated with
		// latency; the per-client shuffle of the top slots models deviant
		// LOCAL_PREF policies.
		transitPref := rng.Perm(p.NumTransits)
		prefs = prefs[:0]
		for _, ds := range shortlists[city] {
			s := &sites[ds.site]
			rtt := float64(model.RTT(coord, s.coord, 2)) / 1e6 // ms
			score := float64(transitPref[s.transit])*p.TransitBiasMs +
				rtt + rng.NormFloat64()*p.JitterMs
			prefs = append(prefs, prefSite{site: ds.site, score: score, rtt: rtt})
		}
		sort.Slice(prefs, func(a, b int) bool {
			if prefs[a].score != prefs[b].score {
				return prefs[a].score < prefs[b].score
			}
			return prefs[a].site < prefs[b].site
		})
		width := p.RankWidth
		if width > len(prefs) {
			width = len(prefs)
		}
		ranking := make([]int, width)
		rankCost := make([]float64, width)
		for j := 0; j < width; j++ {
			ranking[j] = prefs[j].site
			rankCost[j] = prefs[j].rtt
		}
		weight := 1 + rng.ExpFloat64()*3 // heavy-tailed client populations
		in.Clients[i] = splpo.Client{
			Ranking:  ranking,
			RankCost: rankCost,
			Weight:   weight,
			Load:     weight,
		}
		totalLoad += weight
	}

	if p.Capacitated {
		in.Cap = make([]float64, p.NumSites)
		per := totalLoad / float64(p.NumSites) * p.CapSlack
		for s := range in.Cap {
			in.Cap[s] = per
		}
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("splpogen: generated invalid instance: %w", err)
	}
	return in, nil
}

// ChurnSPLPO returns a copy of in with a fraction of clients' preference
// orders re-randomized (rankings reshuffled by fresh jitter over the same
// candidate sites), plus the sorted list of changed client rows — the input
// for warm-restart re-optimization. Unchanged client rows share storage
// with the original instance; the original is not mutated.
func ChurnSPLPO(in *splpo.Instance, frac float64, seed int64) (*splpo.Instance, []int) {
	rng := rand.New(rand.NewSource(seed))
	out := &splpo.Instance{NumSites: in.NumSites, Cap: in.Cap}
	out.Clients = append([]splpo.Client(nil), in.Clients...)
	n := int(frac * float64(len(in.Clients)))
	if n < 1 {
		n = 1
	}
	if n > len(in.Clients) {
		n = len(in.Clients)
	}
	changed := rng.Perm(len(in.Clients))[:n]
	sort.Ints(changed)
	for _, c := range changed {
		old := &in.Clients[c]
		k := len(old.Ranking)
		perm := rng.Perm(k)
		ranking := make([]int, k)
		rankCost := make([]float64, k)
		for j, pj := range perm {
			ranking[j] = old.Ranking[pj]
			rankCost[j] = old.RankCost[pj]
		}
		out.Clients[c].Ranking = ranking
		out.Clients[c].RankCost = rankCost
	}
	return out, changed
}
