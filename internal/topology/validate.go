package topology

import (
	"fmt"
)

// Validate checks structural invariants of a generated topology:
//
//   - every tier-1 peers with every other tier-1 (the clique assumption the
//     paper's Theorem 4.1 relies on),
//   - tier-1s have no providers,
//   - every non-tier-1 AS has at least one provider,
//   - every AS can reach the tier-1 clique by walking provider links
//     (valley-free reachability),
//   - link endpoints and PoP indices are in range,
//   - targets reference existing ASes and have unique addresses.
func (t *Topology) Validate() error {
	t1s := t.Tier1s()
	t1set := make(map[ASN]bool, len(t1s))
	for _, a := range t1s {
		t1set[a.ASN] = true
	}

	// Tier-1 clique and no tier-1 providers.
	for _, a := range t1s {
		peers := make(map[ASN]bool)
		for _, l := range t.adj[a.ASN] {
			switch l.RoleOf(a.ASN) {
			case RoleProvider:
				return fmt.Errorf("tier-1 %s(%d) has a provider %d", a.Name, a.ASN, l.Other(a.ASN))
			case RolePeer:
				peers[l.Other(a.ASN)] = true
			}
		}
		for _, b := range t1s {
			if b.ASN != a.ASN && !peers[b.ASN] {
				return fmt.Errorf("tier-1 clique broken: %s(%d) does not peer with %s(%d)",
					a.Name, a.ASN, b.Name, b.ASN)
			}
		}
	}

	// Links are well-formed.
	for _, l := range t.Links {
		fa, ta := t.ASes[l.From], t.ASes[l.To]
		if fa == nil || ta == nil {
			return fmt.Errorf("link %d references unknown AS (%d-%d)", l.ID, l.From, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("link %d is a self-loop at AS %d", l.ID, l.From)
		}
		if l.FromPoP >= fa.PoPCount() || l.ToPoP >= ta.PoPCount() {
			return fmt.Errorf("link %d PoP index out of range", l.ID)
		}
		if l.Delay <= 0 {
			return fmt.Errorf("link %d has non-positive delay %v", l.ID, l.Delay)
		}
	}

	// Every non-tier-1 AS has a provider; provider-reachability of the clique.
	reach := make(map[ASN]bool, len(t.ASes))
	for asn := range t1set {
		reach[asn] = true
	}
	// Iterate to fixpoint: an AS reaches the clique if any of its providers
	// does. The provider DAG is shallow (stub → transit → tier-1), so a few
	// passes suffice, but loop until stable to be safe.
	for changed := true; changed; {
		changed = false
		for _, a := range t.sortedASes() {
			if reach[a.ASN] {
				continue
			}
			for _, l := range t.adj[a.ASN] {
				if l.RoleOf(a.ASN) == RoleProvider && reach[l.Other(a.ASN)] {
					reach[a.ASN] = true
					changed = true
					break
				}
			}
		}
	}
	for _, a := range t.sortedASes() {
		if a.Tier == TierT1 || a.Tier == TierOrigin {
			continue
		}
		hasProvider := false
		for _, l := range t.adj[a.ASN] {
			if l.RoleOf(a.ASN) == RoleProvider {
				hasProvider = true
				break
			}
		}
		if !hasProvider {
			return fmt.Errorf("%s AS %s(%d) has no provider", a.Tier, a.Name, a.ASN)
		}
		if !reach[a.ASN] {
			return fmt.Errorf("AS %s(%d) cannot reach the tier-1 clique via providers", a.Name, a.ASN)
		}
	}

	// Targets are unique and reference existing ASes.
	seen := make(map[string]bool, len(t.Targets))
	for _, tg := range t.Targets {
		if t.ASes[tg.AS] == nil {
			return fmt.Errorf("target %s references unknown AS %d", tg.Addr, tg.AS)
		}
		k := tg.Addr.String()
		if seen[k] {
			return fmt.Errorf("duplicate target address %s", k)
		}
		seen[k] = true
	}
	return nil
}

// Stats summarizes a topology for logging and docs.
type Stats struct {
	Tier1s, Transits, Stubs int
	Links                   int
	CustomerProviderLinks   int
	PeerLinks               int
	Targets                 int
	MultipathASes           int
	DeviantASes             int
}

// ComputeStats tallies summary statistics.
func (t *Topology) ComputeStats() Stats {
	var s Stats
	for _, a := range t.ASes {
		switch a.Tier {
		case TierT1:
			s.Tier1s++
		case TierTransit:
			s.Transits++
		case TierStub:
			s.Stubs++
		}
		if a.Multipath {
			s.MultipathASes++
		}
		if len(a.LocalPrefDelta) > 0 {
			s.DeviantASes++
		}
	}
	s.Links = len(t.Links)
	for _, l := range t.Links {
		if l.Rel == PeerPeer {
			s.PeerLinks++
		} else {
			s.CustomerProviderLinks++
		}
	}
	s.Targets = len(t.Targets)
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("tier1=%d transit=%d stub=%d links=%d (c2p=%d p2p=%d) targets=%d multipath=%d deviant=%d",
		s.Tier1s, s.Transits, s.Stubs, s.Links, s.CustomerProviderLinks, s.PeerLinks,
		s.Targets, s.MultipathASes, s.DeviantASes)
}
