package topology

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"

	"anyopt/internal/geo"
)

// Params controls topology generation. The zero value is not useful; start
// from DefaultParams.
type Params struct {
	// Seed makes generation deterministic.
	Seed int64

	// NumTier1 is the size of the tier-1 clique (the paper's testbed uses 6
	// transit providers: Telia, Zayo, TATA, GTT, NTT, Sparkle).
	NumTier1 int
	// NumTransit is the number of mid-tier transit ASes.
	NumTransit int
	// NumStub is the number of client (stub) networks.
	NumStub int

	// Tier1PoPMin/Max bound the PoP footprint of each tier-1.
	Tier1PoPMin, Tier1PoPMax int
	// TransitPoPMin/Max bound the PoP footprint of each mid-tier transit.
	TransitPoPMin, TransitPoPMax int

	// StubProvidersMax bounds how many transit providers a stub buys from
	// (uniform in [1, StubProvidersMax]).
	StubProvidersMax int
	// TransitProvidersMax bounds how many tier-1s a mid-tier buys from.
	TransitProvidersMax int
	// TransitPeerProb is the probability that a pair of nearby mid-tier
	// transits peer with each other.
	TransitPeerProb float64
	// TransitViaTransitProb is the probability that a mid-tier transit buys
	// a given transit slot from another (earlier) mid-tier transit instead
	// of a tier-1, deepening the hierarchy and diversifying AS-path lengths
	// as on the real Internet.
	TransitViaTransitProb float64
	// StubDirectT1Prob is the probability a stub buys transit directly from
	// a tier-1 in addition to its mid-tier providers.
	StubDirectT1Prob float64
	// RemoteAttachProb is the probability that a customer link attaches at a
	// random PoP of the provider instead of the nearest one — remote
	// interconnection, which makes BGP's choices latency-oblivious and
	// anycast latency "unexpectedly inflated" (§1). This drives the gap
	// AnyOpt closes over the greedy baseline.
	RemoteAttachProb float64

	// AttachCandidates, when > 0, switches stub→transit attachment from
	// exhaustive inverse-distance weighting (O(NumTransit) per stub) to
	// sampled preferential attachment: each stub draws this many candidates
	// from a pool in which every transit appears once per customer link it
	// has already won, then picks nearest-weighted among just those
	// candidates. Early winners keep winning, so provider degrees converge
	// to the power-law (heavy-tailed) distribution measured on the real
	// Internet, and per-stub cost drops to O(AttachCandidates) — the only
	// way a ~100k-AS topology generates in seconds. Zero keeps the
	// exhaustive path (test/paper scales, byte-identical to older releases).
	AttachCandidates int

	// FracMultipath is the fraction of transit ASes that load-share across
	// equal-cost BGP routes (per-flow), one of the paper's sources of
	// inconsistent preference orders (§4.2).
	FracMultipath float64
	// FracDeviant is the fraction of ASes whose LOCAL_PREF assignments are
	// not purely relationship-based, violating the §4.1 sufficient
	// conditions.
	FracDeviant float64
	// DeviantPrefSpread is the +/- range of per-neighbor LOCAL_PREF deltas
	// assigned to deviant ASes.
	DeviantPrefSpread int

	// Model converts geography to delay.
	Model geo.LatencyModel
}

// DefaultParams returns a testbed-scale topology: 6 tier-1s and a few
// thousand client networks, matching the paper's target population (15,300
// targets in 5,317 ASes) in structure at a tractable size.
func DefaultParams() Params {
	return Params{
		Seed:                  1,
		NumTier1:              6,
		NumTransit:            180,
		NumStub:               2600,
		Tier1PoPMin:           8,
		Tier1PoPMax:           16,
		TransitPoPMin:         1,
		TransitPoPMax:         4,
		StubProvidersMax:      3,
		TransitProvidersMax:   3,
		TransitPeerProb:       0.035,
		TransitViaTransitProb: 0.4,
		StubDirectT1Prob:      0.04,
		RemoteAttachProb:      0.08,
		FracMultipath:         0.15,
		FracDeviant:           0.06,
		DeviantPrefSpread:     2,
		Model:                 geo.DefaultLatencyModel(),
	}
}

// TestParams returns a small topology for fast unit tests.
func TestParams() Params {
	p := DefaultParams()
	p.NumTransit = 40
	p.NumStub = 300
	return p
}

// InternetParams returns the ~100k-AS tier: tier-1/transit/stub ratios
// follow the real Internet's shape (a dozen tier-1s, a few thousand transit
// networks, everything else stub), stub attachment uses sampled preferential
// attachment so provider degrees come out power-law (heavy-tailed, as
// anycast CDN client-volume studies measure), and lateral transit peering is
// thinned to keep the link count linear in the AS count.
func InternetParams() Params {
	p := DefaultParams()
	p.NumTier1 = 12
	p.NumTransit = 2400
	p.NumStub = 97500
	p.AttachCandidates = 24
	// At 2400 transits the O(NumTransit²) peering sweep stays cheap, but the
	// default acceptance probability would mint ~150k lateral peerings;
	// thin it so the peer-link count stays proportional to the AS count.
	p.TransitPeerProb = 0.008
	return p
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.NumTier1 < 2:
		return fmt.Errorf("topology: NumTier1 = %d, need >= 2", p.NumTier1)
	case p.NumTransit < 1:
		return fmt.Errorf("topology: NumTransit = %d, need >= 1", p.NumTransit)
	case p.NumStub < 1:
		return fmt.Errorf("topology: NumStub = %d, need >= 1", p.NumStub)
	case p.Tier1PoPMin < 1 || p.Tier1PoPMax < p.Tier1PoPMin:
		return fmt.Errorf("topology: bad tier-1 PoP bounds [%d, %d]", p.Tier1PoPMin, p.Tier1PoPMax)
	case p.TransitPoPMin < 1 || p.TransitPoPMax < p.TransitPoPMin:
		return fmt.Errorf("topology: bad transit PoP bounds [%d, %d]", p.TransitPoPMin, p.TransitPoPMax)
	case p.StubProvidersMax < 1:
		return fmt.Errorf("topology: StubProvidersMax = %d, need >= 1", p.StubProvidersMax)
	case p.TransitProvidersMax < 1:
		return fmt.Errorf("topology: TransitProvidersMax = %d, need >= 1", p.TransitProvidersMax)
	case p.AttachCandidates < 0:
		return fmt.Errorf("topology: AttachCandidates = %d, need >= 0", p.AttachCandidates)
	case p.FracMultipath < 0 || p.FracMultipath > 1:
		return fmt.Errorf("topology: FracMultipath = %v out of [0,1]", p.FracMultipath)
	case p.FracDeviant < 0 || p.FracDeviant > 1:
		return fmt.Errorf("topology: FracDeviant = %v out of [0,1]", p.FracDeviant)
	}
	return nil
}

// tier1Names are real tier-1 brands for the first few ASes (the testbed's six
// transit providers come first), then synthetic names.
var tier1Names = []string{"Telia", "Zayo", "TATA", "GTT", "NTT", "Sparkle",
	"Lumen", "Cogent", "Arelion2", "PCCW", "Orange", "Telxius",
	"DTAG", "Liberty", "Vocus", "Singtel", "HGC", "Telstra", "Verizon", "ATT"}

// Generate builds a topology from params. Generation is fully deterministic
// in params.Seed.
func Generate(p Params) (*Topology, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Topology{
		ASes:   make(map[ASN]*AS),
		adj:    make(map[ASN][]*Link),
		Model:  p.Model,
		Params: p,
		// Leave room below for well-known test ASNs; start at 100.
		nextASN: 100,
	}

	genTier1s(t, p, rng)
	transits := genTransits(t, p, rng)
	genStubs(t, p, rng, transits)
	markDeviants(t, p, rng)
	genTargets(t, rng)
	return t, nil
}

// attachPoP picks the provider-side attachment PoP for a customer link:
// usually the PoP nearest the customer, but with RemoteAttachProb the
// interconnection happens at an arbitrary PoP of the provider (remote
// peering/backhaul).
func attachPoP(t *Topology, rng *rand.Rand, prov *AS, near geo.Coord, remoteProb float64) int {
	if len(prov.PoPs) == 0 {
		return -1
	}
	if rng.Float64() < remoteProb {
		return rng.Intn(len(prov.PoPs))
	}
	return t.NearestPoP(prov.ASN, near)
}

// genTier1s creates the tier-1 clique with global PoP footprints.
func genTier1s(t *Topology, p Params, rng *rand.Rand) {
	var t1s []*AS
	for i := 0; i < p.NumTier1; i++ {
		name := fmt.Sprintf("T1-%d", i)
		if i < len(tier1Names) {
			name = tier1Names[i]
		}
		nPoPs := p.Tier1PoPMin + rng.Intn(p.Tier1PoPMax-p.Tier1PoPMin+1)
		pops := samplePoPs(rng, nPoPs)
		a := t.AddAS(name, TierT1, pops[0].Coord)
		a.PoPs = pops
		a.RouterID = rng.Uint32()
		t1s = append(t1s, a)
	}
	// Full settlement-free clique among tier-1s, attached at mutually
	// nearest PoPs.
	for i := 0; i < len(t1s); i++ {
		for j := i + 1; j < len(t1s); j++ {
			a, b := t1s[i], t1s[j]
			// Attach at the closest PoP pair so peering delay is realistic.
			pa, pb := closestPoPPair(a, b)
			t.AddLink(a.ASN, b.ASN, PeerPeer, pa, pb)
		}
	}
}

// genTransits creates the mid-tier: regional transit ASes, each a customer of
// 1..TransitProvidersMax tier-1s, with lateral peering among nearby transits.
func genTransits(t *Topology, p Params, rng *rand.Rand) []*AS {
	t1s := t.byTier(TierT1)
	var transits []*AS
	for i := 0; i < p.NumTransit; i++ {
		nPoPs := p.TransitPoPMin + rng.Intn(p.TransitPoPMax-p.TransitPoPMin+1)
		pops := samplePoPs(rng, nPoPs)
		a := t.AddAS(fmt.Sprintf("Transit-%d", i), TierTransit, pops[0].Coord)
		a.PoPs = pops
		a.RouterID = rng.Uint32()
		a.Multipath = rng.Float64() < p.FracMultipath
		transits = append(transits, a)

		nProv := 1 + rng.Intn(p.TransitProvidersMax)
		// Some transit slots are bought from earlier mid-tier transits
		// (never later ones, keeping the provider graph acyclic); the rest
		// from tier-1s. Every transit keeps at least one path toward the
		// clique because transit 0 can only buy from tier-1s.
		nViaTransit := 0
		if len(transits) > 1 {
			for k := 1; k < nProv; k++ {
				if rng.Float64() < p.TransitViaTransitProb {
					nViaTransit++
				}
			}
		}
		for _, prov := range pickNearestWeighted(rng, t1s, a.Coord, nProv-nViaTransit) {
			pp := attachPoP(t, rng, prov, a.Coord, p.RemoteAttachProb)
			cp := t.NearestPoP(a.ASN, prov.PoPCoord(pp))
			t.AddLink(a.ASN, prov.ASN, CustomerProvider, cp, pp)
		}
		if nViaTransit > 0 {
			// Candidates exclude the transit itself (it is not yet in the
			// slice at this point).
			for _, prov := range pickNearestWeighted(rng, transits[:len(transits)-1], a.Coord, nViaTransit) {
				pp := attachPoP(t, rng, prov, a.Coord, p.RemoteAttachProb)
				cp := t.NearestPoP(a.ASN, prov.PoPCoord(pp))
				t.AddLink(a.ASN, prov.ASN, CustomerProvider, cp, pp)
			}
		}
	}
	// Lateral peering: nearby transit pairs peer with probability
	// TransitPeerProb scaled up for close pairs.
	for i := 0; i < len(transits); i++ {
		for j := i + 1; j < len(transits); j++ {
			a, b := transits[i], transits[j]
			d := geo.DistanceKm(a.Coord, b.Coord)
			prob := p.TransitPeerProb
			if d < 2000 {
				prob *= 4
			} else if d < 6000 {
				prob *= 1.5
			}
			if rng.Float64() < prob {
				pa, pb := closestPoPPair(a, b)
				t.AddLink(a.ASN, b.ASN, PeerPeer, pa, pb)
			}
		}
	}
	return transits
}

// genStubs creates client networks, each multihomed to nearby transits and
// occasionally directly to a tier-1.
func genStubs(t *Topology, p Params, rng *rand.Rand, transits []*AS) {
	t1s := t.byTier(TierT1)
	var sampler *prefAttach
	if p.AttachCandidates > 0 {
		sampler = newPrefAttach(transits)
	}
	for i := 0; i < p.NumStub; i++ {
		city := geo.Cities[rng.Intn(len(geo.Cities))]
		// Jitter the location so stubs in the same metro differ slightly.
		c := geo.Coord{
			Lat: clampLat(city.Lat + rng.NormFloat64()*1.5),
			Lon: wrapLon(city.Lon + rng.NormFloat64()*1.5),
		}
		a := t.AddAS(fmt.Sprintf("Stub-%d", i), TierStub, c)
		a.RouterID = rng.Uint32()
		a.Multipath = rng.Float64() < p.FracMultipath

		nProv := 1 + rng.Intn(p.StubProvidersMax)
		var provs []*AS
		if sampler != nil {
			provs = sampler.pick(rng, c, nProv, p.AttachCandidates)
		} else {
			provs = pickNearestWeighted(rng, transits, c, nProv)
		}
		for _, prov := range provs {
			pp := attachPoP(t, rng, prov, c, p.RemoteAttachProb)
			t.AddLink(a.ASN, prov.ASN, CustomerProvider, -1, pp)
		}
		if rng.Float64() < p.StubDirectT1Prob {
			prov := t1s[rng.Intn(len(t1s))]
			pp := attachPoP(t, rng, prov, c, p.RemoteAttachProb)
			t.AddLink(a.ASN, prov.ASN, CustomerProvider, -1, pp)
		}
	}
}

// prefAttach samples stub providers by preferential attachment: the pool
// holds one entry per transit plus one per customer link it has won, so a
// draw lands on a transit with probability proportional to 1 + its customer
// degree. Repeatedly feeding winners back into the pool is the classic
// rich-get-richer process whose stationary degree distribution is a power
// law — the heavy tail anycast client-volume studies measure — and each
// draw is O(1), independent of the transit count.
type prefAttach struct {
	pool []*AS
}

func newPrefAttach(transits []*AS) *prefAttach {
	return &prefAttach{pool: append([]*AS(nil), transits...)}
}

// pick draws k distinct degree-weighted candidates, then chooses n of them
// by the same inverse-distance weighting the exhaustive path uses, and
// feeds the winners back into the pool.
func (pa *prefAttach) pick(rng *rand.Rand, c geo.Coord, n, k int) []*AS {
	if k < n {
		k = n
	}
	seen := make(map[ASN]bool, k)
	cands := make([]*AS, 0, k)
	// Bounded rejection: pool entries repeat, so distinct candidates can
	// run out before k draws; 4k draws finds what is findable.
	for tries := 0; len(cands) < k && tries < 4*k; tries++ {
		a := pa.pool[rng.Intn(len(pa.pool))]
		if !seen[a.ASN] {
			seen[a.ASN] = true
			cands = append(cands, a)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ASN < cands[j].ASN })
	out := pickNearestWeighted(rng, cands, c, n)
	pa.pool = append(pa.pool, out...)
	return out
}

// markDeviants flags a fraction of non-tier-1 ASes as policy-deviant: they
// apply random per-neighbor LOCAL_PREF deltas (e.g., traffic engineering),
// which violates the §4.1 sufficient conditions for total orders.
func markDeviants(t *Topology, p Params, rng *rand.Rand) {
	if p.FracDeviant <= 0 || p.DeviantPrefSpread <= 0 {
		return
	}
	for _, a := range t.sortedASes() {
		if a.Tier == TierT1 {
			continue // tier-1s receive anycast routes as peers uniformly
		}
		if rng.Float64() >= p.FracDeviant {
			continue
		}
		a.LocalPrefDelta = make(map[ASN]int)
		for _, l := range t.adj[a.ASN] {
			// Deltas are small so they reorder equally-related neighbors
			// without inverting customer/peer/provider classes.
			a.LocalPrefDelta[l.Other(a.ASN)] = rng.Intn(2*p.DeviantPrefSpread+1) - p.DeviantPrefSpread
		}
	}
}

// genTargets picks one ping target per stub AS plus one per transit AS,
// mirroring the paper's "one representative router per client network".
func genTargets(t *Topology, rng *rand.Rand) {
	var targets []Target
	for _, a := range t.sortedASes() {
		if a.Tier != TierStub && a.Tier != TierTransit {
			continue
		}
		targets = append(targets, Target{
			Addr:     targetAddr(a.ASN),
			AS:       a.ASN,
			FlowSalt: rng.Uint64(),
		})
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Addr.Less(targets[j].Addr) })
	t.Targets = targets
}

// targetAddr synthesizes a unique IPv4 address for the representative router
// of an AS, inside 10.0.0.0/8.
func targetAddr(a ASN) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(a >> 16), byte(a >> 8), byte(a)})
}

// byTier returns ASes of the given tier in ASN order.
func (t *Topology) byTier(tier Tier) []*AS {
	var out []*AS
	for _, a := range t.sortedASes() {
		if a.Tier == tier {
			out = append(out, a)
		}
	}
	return out
}

// Tier1s returns the tier-1 ASes in ASN order.
func (t *Topology) Tier1s() []*AS { return t.byTier(TierT1) }

// Transits returns the mid-tier transit ASes in ASN order.
func (t *Topology) Transits() []*AS { return t.byTier(TierTransit) }

// Stubs returns the stub ASes in ASN order.
func (t *Topology) Stubs() []*AS { return t.byTier(TierStub) }

// sortedASes returns all ASes in ASN order (map iteration is randomized, and
// generation must be deterministic).
func (t *Topology) sortedASes() []*AS {
	out := make([]*AS, 0, len(t.ASes))
	for _, a := range t.ASes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// samplePoPs picks n distinct cities for a transit footprint.
func samplePoPs(rng *rand.Rand, n int) []PoP {
	if n > len(geo.Cities) {
		n = len(geo.Cities)
	}
	idx := rng.Perm(len(geo.Cities))[:n]
	sort.Ints(idx)
	pops := make([]PoP, n)
	for i, j := range idx {
		pops[i] = PoP{City: geo.Cities[j].Name, Coord: geo.Cities[j].Coord}
	}
	return pops
}

// closestPoPPair returns the PoP index pair minimizing distance between two
// transit ASes.
func closestPoPPair(a, b *AS) (int, int) {
	ba, bb := -1, -1
	best := math.Inf(1)
	for i := 0; i < a.PoPCount(); i++ {
		for j := 0; j < b.PoPCount(); j++ {
			if d := geo.DistanceKm(a.PoPCoord(i), b.PoPCoord(j)); d < best {
				best, ba, bb = d, i, j
			}
		}
	}
	if len(a.PoPs) == 0 {
		ba = -1
	}
	if len(b.PoPs) == 0 {
		bb = -1
	}
	return ba, bb
}

// pickNearestWeighted samples n distinct ASes from candidates with
// probability weighted by inverse distance to c, so networks mostly buy
// transit locally but sometimes from far away — as on the real Internet.
func pickNearestWeighted(rng *rand.Rand, candidates []*AS, c geo.Coord, n int) []*AS {
	if n >= len(candidates) {
		out := make([]*AS, len(candidates))
		copy(out, candidates)
		return out
	}
	type weighted struct {
		as *AS
		w  float64
	}
	ws := make([]weighted, len(candidates))
	total := 0.0
	for i, a := range candidates {
		d := geo.DistanceKm(a.Coord, c)
		w := 1.0 / (500 + d) // flatten very-near dominance
		ws[i] = weighted{a, w}
		total += w
	}
	picked := make(map[ASN]bool, n)
	var out []*AS
	for len(out) < n {
		r := rng.Float64() * total
		for i := range ws {
			if ws[i].w == 0 {
				continue
			}
			r -= ws[i].w
			if r <= 0 {
				if !picked[ws[i].as.ASN] {
					picked[ws[i].as.ASN] = true
					out = append(out, ws[i].as)
				}
				total -= ws[i].w
				ws[i].w = 0
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

func clampLat(lat float64) float64 {
	if lat > 89 {
		return 89
	}
	if lat < -89 {
		return -89
	}
	return lat
}

func wrapLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}
