package topology

import (
	"testing"
	"time"

	"anyopt/internal/geo"
)

func mustGen(t *testing.T, p Params) *Topology {
	t.Helper()
	topo, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func TestGenerateValidates(t *testing.T) {
	topo := mustGen(t, TestParams())
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGen(t, TestParams())
	b := mustGen(t, TestParams())
	if a.NumASes() != b.NumASes() || len(a.Links) != len(b.Links) {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)", a.NumASes(), len(a.Links), b.NumASes(), len(b.Links))
	}
	for i, la := range a.Links {
		lb := b.Links[i]
		if la.From != lb.From || la.To != lb.To || la.Rel != lb.Rel || la.Delay != lb.Delay {
			t.Fatalf("link %d differs: %+v vs %+v", i, la, lb)
		}
	}
	for asn, as := range a.ASes {
		bs := b.ASes[asn]
		if bs == nil || as.Name != bs.Name || as.RouterID != bs.RouterID || as.Multipath != bs.Multipath {
			t.Fatalf("AS %d differs", asn)
		}
	}
	if len(a.Targets) != len(b.Targets) {
		t.Fatalf("target counts differ")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("target %d differs: %+v vs %+v", i, a.Targets[i], b.Targets[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := TestParams()
	a := mustGen(t, p)
	p.Seed = 2
	b := mustGen(t, p)
	if len(a.Links) == len(b.Links) {
		same := true
		for i := range a.Links {
			if a.Links[i].From != b.Links[i].From || a.Links[i].To != b.Links[i].To {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical link sets")
		}
	}
}

func TestCounts(t *testing.T) {
	p := TestParams()
	topo := mustGen(t, p)
	s := topo.ComputeStats()
	if s.Tier1s != p.NumTier1 {
		t.Errorf("tier1s = %d, want %d", s.Tier1s, p.NumTier1)
	}
	if s.Transits != p.NumTransit {
		t.Errorf("transits = %d, want %d", s.Transits, p.NumTransit)
	}
	if s.Stubs != p.NumStub {
		t.Errorf("stubs = %d, want %d", s.Stubs, p.NumStub)
	}
	if s.Targets != p.NumTransit+p.NumStub {
		t.Errorf("targets = %d, want %d", s.Targets, p.NumTransit+p.NumStub)
	}
	// Tier-1 clique contributes C(n,2) peer links at minimum.
	wantClique := p.NumTier1 * (p.NumTier1 - 1) / 2
	if s.PeerLinks < wantClique {
		t.Errorf("peer links = %d, want >= %d (clique)", s.PeerLinks, wantClique)
	}
	if s.MultipathASes == 0 {
		t.Error("no multipath ASes generated; Fig 4 shapes need some")
	}
	if s.DeviantASes == 0 {
		t.Error("no deviant ASes generated; Fig 4 shapes need some")
	}
}

func TestTier1Names(t *testing.T) {
	topo := mustGen(t, TestParams())
	want := map[string]bool{"Telia": true, "Zayo": true, "TATA": true, "GTT": true, "NTT": true, "Sparkle": true}
	for _, a := range topo.Tier1s() {
		delete(want, a.Name)
	}
	if len(want) != 0 {
		t.Errorf("missing testbed transit providers: %v", want)
	}
}

func TestLinkRoles(t *testing.T) {
	topo := mustGen(t, TestParams())
	for _, l := range topo.Links {
		if l.Rel == CustomerProvider {
			if l.RoleOf(l.From) != RoleProvider {
				t.Fatalf("customer side should see provider role")
			}
			if l.RoleOf(l.To) != RoleCustomer {
				t.Fatalf("provider side should see customer role")
			}
		} else {
			if l.RoleOf(l.From) != RolePeer || l.RoleOf(l.To) != RolePeer {
				t.Fatalf("peer link roles wrong")
			}
		}
		if l.Other(l.From) != l.To || l.Other(l.To) != l.From {
			t.Fatalf("Other() inconsistent")
		}
	}
}

func TestNearestPoP(t *testing.T) {
	topo := mustGen(t, TestParams())
	for _, a := range topo.Tier1s() {
		for i, pop := range a.PoPs {
			if got := topo.NearestPoP(a.ASN, pop.Coord); got != i {
				// Two PoPs could share coordinates only if cities repeat,
				// which samplePoPs prevents.
				t.Errorf("NearestPoP(%s, %s) = %d, want %d", a.Name, pop.City, got, i)
			}
		}
	}
	// Stubs have no PoPs.
	stub := topo.Stubs()[0]
	if got := topo.NearestPoP(stub.ASN, geo.Coord{}); got != -1 {
		t.Errorf("NearestPoP(stub) = %d, want -1", got)
	}
}

func TestIGPCostAndDelay(t *testing.T) {
	topo := mustGen(t, TestParams())
	t1 := topo.Tier1s()[0]
	if len(t1.PoPs) < 2 {
		t.Skip("tier-1 with one PoP")
	}
	if c := topo.IGPCost(t1.ASN, 0, 0); c != 0 {
		t.Errorf("IGP cost to self = %v, want 0", c)
	}
	if d := topo.IGPDelay(t1.ASN, 0, 0); d != 0 {
		t.Errorf("IGP delay to self = %v, want 0", d)
	}
	c01 := topo.IGPCost(t1.ASN, 0, 1)
	if c01 <= 0 {
		t.Errorf("IGP cost between distinct PoPs = %v, want > 0", c01)
	}
	if c01 != topo.IGPCost(t1.ASN, 1, 0) {
		t.Error("IGP cost not symmetric")
	}
	if topo.IGPDelay(t1.ASN, 0, 1) <= 0 {
		t.Error("IGP delay between distinct PoPs should be positive")
	}
}

func TestAddASAddLink(t *testing.T) {
	topo := mustGen(t, TestParams())
	before := topo.NumASes()
	origin := topo.AddAS("anycast-net", TierOrigin, geo.Coord{Lat: 42.36, Lon: -71.06})
	if topo.NumASes() != before+1 {
		t.Fatal("AddAS did not insert")
	}
	t1 := topo.Tier1s()[0]
	l := topo.AddLink(origin.ASN, t1.ASN, CustomerProvider, -1, 0)
	if l.Delay <= 0 {
		t.Error("AddLink produced non-positive delay")
	}
	found := false
	for _, ll := range topo.LinksOf(origin.ASN) {
		if ll == l {
			found = true
		}
	}
	if !found {
		t.Error("adjacency not updated for new link")
	}
	if l.RoleOf(origin.ASN) != RoleProvider {
		t.Error("origin should see tier-1 as provider")
	}
}

func TestAddLinkUnknownASPanics(t *testing.T) {
	topo := mustGen(t, TestParams())
	defer func() {
		if recover() == nil {
			t.Fatal("AddLink with unknown AS did not panic")
		}
	}()
	topo.AddLink(9999999, 100, PeerPeer, -1, -1)
}

func TestParamsValidate(t *testing.T) {
	good := TestParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.NumTier1 = 1 },
		func(p *Params) { p.NumTransit = 0 },
		func(p *Params) { p.NumStub = 0 },
		func(p *Params) { p.Tier1PoPMin = 0 },
		func(p *Params) { p.Tier1PoPMax = p.Tier1PoPMin - 1 },
		func(p *Params) { p.TransitPoPMin = 0 },
		func(p *Params) { p.StubProvidersMax = 0 },
		func(p *Params) { p.TransitProvidersMax = 0 },
		func(p *Params) { p.FracMultipath = 1.5 },
		func(p *Params) { p.FracDeviant = -0.1 },
	}
	for i, mod := range bad {
		p := TestParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params case %d validated", i)
		}
		if _, err := Generate(p); err == nil {
			t.Errorf("Generate accepted bad params case %d", i)
		}
	}
}

func TestLinkDelaysPlausible(t *testing.T) {
	topo := mustGen(t, TestParams())
	for _, l := range topo.Links {
		if l.Delay < 100*time.Microsecond || l.Delay > 200*time.Millisecond {
			fa, ta := topo.AS(l.From), topo.AS(l.To)
			t.Errorf("link %s-%s delay %v outside plausible one-way range", fa.Name, ta.Name, l.Delay)
		}
	}
}

func TestTargetsSortedUniqueAddrs(t *testing.T) {
	topo := mustGen(t, TestParams())
	for i := 1; i < len(topo.Targets); i++ {
		if !topo.Targets[i-1].Addr.Less(topo.Targets[i].Addr) {
			t.Fatalf("targets not strictly sorted at %d: %v vs %v",
				i, topo.Targets[i-1].Addr, topo.Targets[i].Addr)
		}
	}
}

func TestStubsMostlyBuyLocalTransit(t *testing.T) {
	topo := mustGen(t, TestParams())
	local, total := 0, 0
	for _, s := range topo.Stubs() {
		for _, l := range topo.LinksOf(s.ASN) {
			if l.RoleOf(s.ASN) != RoleProvider {
				continue
			}
			prov := topo.AS(l.Other(s.ASN))
			pop := l.PoPAt(prov.ASN)
			if geo.DistanceKm(s.Coord, prov.PoPCoord(pop)) < 5000 {
				local++
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no stub provider links")
	}
	if frac := float64(local) / float64(total); frac < 0.5 {
		t.Errorf("only %.0f%% of stub transit attachments are within 5000 km; geography-weighted attachment is broken", frac*100)
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		topo, err := Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		_ = topo
	}
}
