package topology

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"anyopt/internal/geo"
)

// jsonTopology is the serialized form of a Topology. The format is
// versioned; it captures everything generation produced, so an imported
// topology behaves identically to the original under simulation.
type jsonTopology struct {
	Version int        `json:"version"`
	Params  Params     `json:"params"`
	ASes    []jsonAS   `json:"ases"`
	Links   []jsonLink `json:"links"`
	Targets []jsonTgt  `json:"targets"`
}

type jsonAS struct {
	ASN       ASN         `json:"asn"`
	Name      string      `json:"name"`
	Tier      uint8       `json:"tier"`
	Lat       float64     `json:"lat"`
	Lon       float64     `json:"lon"`
	PoPs      []jsonPoP   `json:"pops,omitempty"`
	RouterID  uint32      `json:"router_id"`
	Multipath bool        `json:"multipath,omitempty"`
	Deltas    []jsonDelta `json:"deltas,omitempty"`
}

type jsonPoP struct {
	City string  `json:"city"`
	Lat  float64 `json:"lat"`
	Lon  float64 `json:"lon"`
}

type jsonDelta struct {
	Neighbor ASN `json:"n"`
	Delta    int `json:"d"`
}

type jsonLink struct {
	From    ASN   `json:"from"`
	To      ASN   `json:"to"`
	Rel     uint8 `json:"rel"`
	FromPoP int   `json:"from_pop"`
	ToPoP   int   `json:"to_pop"`
	DelayNs int64 `json:"delay_ns"`
}

type jsonTgt struct {
	Addr     string `json:"addr"`
	AS       ASN    `json:"as"`
	FlowSalt uint64 `json:"salt"`
}

// topologyFormatVersion guards the serialization format.
const topologyFormatVersion = 1

// ExportJSON serializes the topology, including any testbed additions made
// after generation (origin AS, site and peering links).
func (t *Topology) ExportJSON() ([]byte, error) {
	dump := jsonTopology{Version: topologyFormatVersion, Params: t.Params}
	for _, a := range t.sortedASes() {
		ja := jsonAS{
			ASN: a.ASN, Name: a.Name, Tier: uint8(a.Tier),
			Lat: a.Coord.Lat, Lon: a.Coord.Lon,
			RouterID: a.RouterID, Multipath: a.Multipath,
		}
		for _, p := range a.PoPs {
			ja.PoPs = append(ja.PoPs, jsonPoP{City: p.City, Lat: p.Coord.Lat, Lon: p.Coord.Lon})
		}
		if len(a.LocalPrefDelta) > 0 {
			neighbors := make([]ASN, 0, len(a.LocalPrefDelta))
			for n := range a.LocalPrefDelta {
				neighbors = append(neighbors, n)
			}
			sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
			for _, n := range neighbors {
				ja.Deltas = append(ja.Deltas, jsonDelta{Neighbor: n, Delta: a.LocalPrefDelta[n]})
			}
		}
		dump.ASes = append(dump.ASes, ja)
	}
	for _, l := range t.Links {
		dump.Links = append(dump.Links, jsonLink{
			From: l.From, To: l.To, Rel: uint8(l.Rel),
			FromPoP: l.FromPoP, ToPoP: l.ToPoP, DelayNs: int64(l.Delay),
		})
	}
	for _, tg := range t.Targets {
		dump.Targets = append(dump.Targets, jsonTgt{
			Addr: tg.Addr.String(), AS: tg.AS, FlowSalt: tg.FlowSalt,
		})
	}
	return json.MarshalIndent(&dump, "", " ")
}

// ImportJSON rebuilds a topology from ExportJSON's output.
func ImportJSON(data []byte) (*Topology, error) {
	var dump jsonTopology
	if err := json.Unmarshal(data, &dump); err != nil {
		return nil, fmt.Errorf("topology: decoding JSON: %w", err)
	}
	if dump.Version != topologyFormatVersion {
		return nil, fmt.Errorf("topology: format version %d, want %d", dump.Version, topologyFormatVersion)
	}
	t := &Topology{
		ASes:   make(map[ASN]*AS, len(dump.ASes)),
		adj:    make(map[ASN][]*Link),
		Model:  dump.Params.Model,
		Params: dump.Params,
	}
	var maxASN ASN
	for _, ja := range dump.ASes {
		if _, dup := t.ASes[ja.ASN]; dup {
			return nil, fmt.Errorf("topology: duplicate AS %d", ja.ASN)
		}
		a := &AS{
			ASN: ja.ASN, Name: ja.Name, Tier: Tier(ja.Tier),
			Coord:    geo.Coord{Lat: ja.Lat, Lon: ja.Lon},
			RouterID: ja.RouterID, Multipath: ja.Multipath,
		}
		for _, p := range ja.PoPs {
			a.PoPs = append(a.PoPs, PoP{City: p.City, Coord: geo.Coord{Lat: p.Lat, Lon: p.Lon}})
		}
		if len(ja.Deltas) > 0 {
			a.LocalPrefDelta = make(map[ASN]int, len(ja.Deltas))
			for _, d := range ja.Deltas {
				a.LocalPrefDelta[d.Neighbor] = d.Delta
			}
		}
		t.ASes[a.ASN] = a
		if a.ASN > maxASN {
			maxASN = a.ASN
		}
	}
	t.nextASN = maxASN + 1
	for i, jl := range dump.Links {
		fa, ta := t.ASes[jl.From], t.ASes[jl.To]
		if fa == nil || ta == nil {
			return nil, fmt.Errorf("topology: link %d references unknown AS", i)
		}
		if jl.DelayNs <= 0 {
			return nil, fmt.Errorf("topology: link %d has non-positive delay", i)
		}
		l := &Link{
			ID: LinkID(i), From: jl.From, To: jl.To, Rel: Relationship(jl.Rel),
			FromPoP: jl.FromPoP, ToPoP: jl.ToPoP, Delay: time.Duration(jl.DelayNs),
		}
		t.Links = append(t.Links, l)
		t.adj[l.From] = append(t.adj[l.From], l)
		t.adj[l.To] = append(t.adj[l.To], l)
	}
	t.nextLinkID = LinkID(len(t.Links))
	for _, jt := range dump.Targets {
		addr, err := netip.ParseAddr(jt.Addr)
		if err != nil {
			return nil, fmt.Errorf("topology: target address %q: %w", jt.Addr, err)
		}
		if t.ASes[jt.AS] == nil {
			return nil, fmt.Errorf("topology: target references unknown AS %d", jt.AS)
		}
		t.Targets = append(t.Targets, Target{Addr: addr, AS: jt.AS, FlowSalt: jt.FlowSalt})
	}
	return t, nil
}
