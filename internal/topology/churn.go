package topology

import (
	"math/rand"
	"time"
)

// ChurnStats reports what a Churn pass touched.
type ChurnStats struct {
	// PolicyChanges counts ASes whose LOCAL_PREF deltas were re-rolled
	// (route-map edits, traffic-engineering changes).
	PolicyChanges int
	// RouterSwaps counts ASes whose router ID changed (hardware refresh),
	// shifting final-tiebreak outcomes.
	RouterSwaps int
	// DelayShifts counts links whose propagation delay drifted (path
	// changes inside carriers).
	DelayShifts int
}

// Churn perturbs the topology in place to model the Internet's routing drift
// over time (§6, "Stability Analysis"): each call represents roughly one
// re-measurement interval. frac controls the fraction of ASes/links touched.
// The perturbations change tie-break outcomes and some policy preferences
// without altering the graph structure, so catchments mostly — but not
// entirely — persist, matching the paper's observation that >90% of
// catchments were unchanged over three weeks.
func Churn(t *Topology, frac float64, seed int64) ChurnStats {
	rng := rand.New(rand.NewSource(seed ^ 0xc4012))
	var st ChurnStats
	for _, a := range t.sortedASes() {
		if a.Tier == TierOrigin {
			continue
		}
		if a.Tier != TierT1 && rng.Float64() < frac {
			// A policy change: the AS re-rolls its per-neighbor preference
			// deltas (half the time adopting traffic engineering afresh,
			// half the time dropping back to plain relationship-based
			// preferences).
			spread := t.Params.DeviantPrefSpread
			if spread <= 0 {
				spread = 2
			}
			if rng.Float64() < 0.5 {
				a.LocalPrefDelta = make(map[ASN]int)
				for _, l := range t.adj[a.ASN] {
					a.LocalPrefDelta[l.Other(a.ASN)] = rng.Intn(2*spread+1) - spread
				}
			} else {
				a.LocalPrefDelta = nil
			}
			st.PolicyChanges++
		}
		if rng.Float64() < frac/4 {
			a.RouterID = rng.Uint32()
			st.RouterSwaps++
		}
	}
	for _, l := range t.Links {
		if rng.Float64() < frac/4 {
			// Drift the delay by up to ±10%.
			d := float64(l.Delay) * (1 + (rng.Float64()-0.5)/5)
			if d < float64(100*time.Microsecond) {
				d = float64(100 * time.Microsecond)
			}
			l.Delay = time.Duration(d)
			st.DelayShifts++
		}
	}
	return st
}
