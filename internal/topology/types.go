// Package topology generates and represents synthetic AS-level Internet
// topologies for anycast experiments.
//
// The real AnyOpt testbed announces prefixes into the production Internet; we
// substitute a generated topology with the structural features the paper's
// analysis depends on: a clique of tier-1 transit providers, a middle tier of
// regional transit ASes, thousands of stub (client) networks, settlement-free
// peering edges, and — inside transit providers — PoP-level structure with
// IGP costs so that intra-AS (hot-potato) catchment selection is meaningful.
//
// Everything is placed geographically (see package geo) so link delays,
// BGP-advertisement arrival order, and client RTTs all derive from the same
// coherent model.
package topology

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"anyopt/internal/geo"
)

// ASN is an autonomous-system number.
type ASN uint32

// Tier classifies an AS's role in the hierarchy.
type Tier uint8

const (
	// TierT1 is a tier-1 transit provider: no providers of its own, peers
	// with every other tier-1 (settlement-free clique).
	TierT1 Tier = iota
	// TierTransit is a regional/national transit provider: customer of one
	// or more tier-1s, provider to stubs, peers laterally.
	TierTransit
	// TierStub is a client network (enterprise, campus, eyeball ISP).
	TierStub
	// TierOrigin is the anycast network itself (added by the testbed).
	TierOrigin
)

func (t Tier) String() string {
	switch t {
	case TierT1:
		return "tier1"
	case TierTransit:
		return "transit"
	case TierStub:
		return "stub"
	case TierOrigin:
		return "origin"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// Relationship is the business relationship of a link, following the
// Gao-Rexford model.
type Relationship uint8

const (
	// CustomerProvider marks a link whose From side is the customer and
	// whose To side is the provider.
	CustomerProvider Relationship = iota
	// PeerPeer marks a settlement-free peering link.
	PeerPeer
)

func (r Relationship) String() string {
	switch r {
	case CustomerProvider:
		return "customer-provider"
	case PeerPeer:
		return "peer-peer"
	default:
		return fmt.Sprintf("rel(%d)", uint8(r))
	}
}

// PoP is a point of presence of a transit AS.
type PoP struct {
	City  string
	Coord geo.Coord
}

// AS is one autonomous system.
type AS struct {
	ASN  ASN
	Name string
	Tier Tier
	// Coord is the AS's primary location (for stubs, the network itself;
	// for transit ASes, the headquarters — PoPs carry the real footprint).
	Coord geo.Coord
	// PoPs is non-empty for transit ASes. Links attach to a specific PoP.
	PoPs []PoP
	// RouterID breaks final BGP ties, as in the last step of the decision
	// process.
	RouterID uint32
	// Multipath marks ASes that load-share across equally preferred routes
	// per flow hash instead of picking a single best path. The paper (§4.2)
	// identifies these as one source of inconsistent preference orders.
	Multipath bool
	// LocalPrefDelta holds per-neighbor LOCAL_PREF adjustments for
	// "policy-deviant" ASes whose preferences are not purely
	// relationship-based (traffic engineering). These violate the paper's
	// sufficient conditions (§4.1) and produce clients without total orders.
	LocalPrefDelta map[ASN]int
}

// PoPCount returns the number of PoPs, treating PoP-less ASes as one.
func (a *AS) PoPCount() int {
	if len(a.PoPs) == 0 {
		return 1
	}
	return len(a.PoPs)
}

// PoPCoord returns the coordinate of PoP i, falling back to the AS coordinate
// for single-location ASes (i < 0 or no PoPs).
func (a *AS) PoPCoord(i int) geo.Coord {
	if i < 0 || i >= len(a.PoPs) {
		return a.Coord
	}
	return a.PoPs[i].Coord
}

// LinkID identifies a link within a Topology.
type LinkID int32

// Link is an inter-AS adjacency. For CustomerProvider links, From is the
// customer and To the provider. Each endpoint attaches at a PoP index of the
// respective AS (-1 when the AS has no PoP structure).
type Link struct {
	ID      LinkID
	From    ASN
	To      ASN
	Rel     Relationship
	FromPoP int
	ToPoP   int
	// Delay is the one-way propagation delay of the link.
	Delay time.Duration
}

// Other returns the far endpoint as seen from a.
func (l *Link) Other(a ASN) ASN {
	if l.From == a {
		return l.To
	}
	return l.From
}

// PoPAt returns the attachment PoP index on the a side of the link.
func (l *Link) PoPAt(a ASN) int {
	if l.From == a {
		return l.FromPoP
	}
	return l.ToPoP
}

// RelFrom classifies the far endpoint from a's point of view:
// the returned value is the role of the *other* end.
type NeighborRole uint8

const (
	// RoleCustomer: the other end is a's customer.
	RoleCustomer NeighborRole = iota
	// RolePeer: the other end is a's settlement-free peer.
	RolePeer
	// RoleProvider: the other end is a's provider.
	RoleProvider
)

func (r NeighborRole) String() string {
	switch r {
	case RoleCustomer:
		return "customer"
	case RolePeer:
		return "peer"
	case RoleProvider:
		return "provider"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// RoleOf returns the role of the neighbor on link l from a's perspective.
func (l *Link) RoleOf(a ASN) NeighborRole {
	if l.Rel == PeerPeer {
		return RolePeer
	}
	if l.From == a {
		// a is the customer, so the other end is a's provider.
		return RoleProvider
	}
	return RoleCustomer
}

// Target is a ping target: a router inside (or near) a client network, one
// representative per client network, mirroring §3.2 of the paper.
type Target struct {
	// Addr is the target's synthetic IPv4 address.
	Addr netip.Addr
	// AS is the client network the target represents.
	AS ASN
	// FlowSalt seeds per-flow hashing at multipath ASes.
	FlowSalt uint64
}

// Topology is an immutable-after-generation AS graph.
type Topology struct {
	ASes  map[ASN]*AS
	Links []*Link
	// adj maps each AS to its incident links.
	adj map[ASN][]*Link
	// Targets are the measurement targets, sorted by address.
	Targets []Target
	// Model converts distance to delay; shared by all consumers.
	Model geo.LatencyModel
	// Params echoes the generation parameters.
	Params Params

	nextASN    ASN
	nextLinkID LinkID

	// down marks links taken out of service by persistent routing churn
	// (fault.ApplyChurn). Unlike an injected mid-experiment flap, a down link
	// stays down across experiments until a ChurnLinkUp restores it; every
	// fresh or reset simulator session re-fails these links before running.
	down map[LinkID]bool
}

// NewEmpty returns an empty topology ready for manual construction via AddAS
// and AddLink — used for hand-crafted scenarios in tests and examples.
func NewEmpty(model geo.LatencyModel) *Topology {
	return &Topology{
		ASes:    make(map[ASN]*AS),
		adj:     make(map[ASN][]*Link),
		Model:   model,
		nextASN: 100,
	}
}

// AS returns the AS with the given number, or nil.
func (t *Topology) AS(a ASN) *AS { return t.ASes[a] }

// LinksOf returns the links incident to a. The returned slice must not be
// modified.
func (t *Topology) LinksOf(a ASN) []*Link { return t.adj[a] }

// Link returns the link with the given ID, or nil.
func (t *Topology) Link(id LinkID) *Link {
	if id < 0 || int(id) >= len(t.Links) {
		return nil
	}
	return t.Links[id]
}

// NumASes returns the number of ASes.
func (t *Topology) NumASes() int { return len(t.ASes) }

// AddAS inserts a new AS with the next free ASN and returns it.
func (t *Topology) AddAS(name string, tier Tier, c geo.Coord) *AS {
	asn := t.nextASN
	t.nextASN++
	a := &AS{ASN: asn, Name: name, Tier: tier, Coord: c, RouterID: uint32(asn)}
	t.ASes[asn] = a
	return a
}

// AddLink inserts a link between two existing ASes, computing its delay from
// the attachment-PoP coordinates, and returns it.
func (t *Topology) AddLink(from, to ASN, rel Relationship, fromPoP, toPoP int) *Link {
	fa, ta := t.ASes[from], t.ASes[to]
	if fa == nil || ta == nil {
		panic(fmt.Sprintf("topology: AddLink with unknown AS %d or %d", from, to))
	}
	delay := t.Model.LinkDelay(fa.PoPCoord(fromPoP), ta.PoPCoord(toPoP))
	l := &Link{
		ID: t.nextLinkID, From: from, To: to, Rel: rel,
		FromPoP: fromPoP, ToPoP: toPoP, Delay: delay,
	}
	t.nextLinkID++
	t.Links = append(t.Links, l)
	t.adj[from] = append(t.adj[from], l)
	t.adj[to] = append(t.adj[to], l)
	return l
}

// SetLinkDown marks a link persistently down (or restores it). Down links
// survive simulator resets: discovery re-fails them in every session, so the
// state models a long-lived outage rather than a transient flap.
func (t *Topology) SetLinkDown(id LinkID, down bool) {
	if t.Link(id) == nil {
		panic(fmt.Sprintf("topology: SetLinkDown on unknown link %d", id))
	}
	if down {
		if t.down == nil {
			t.down = make(map[LinkID]bool)
		}
		t.down[id] = true
		return
	}
	delete(t.down, id)
}

// LinkIsDown reports whether the link is persistently down.
func (t *Topology) LinkIsDown(id LinkID) bool { return t.down[id] }

// DownLinks returns the persistently-down link IDs in ascending order.
func (t *Topology) DownLinks() []LinkID {
	if len(t.down) == 0 {
		return nil
	}
	out := make([]LinkID, 0, len(t.down))
	for id := range t.down {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NearestPoP returns the index of the PoP of a closest to c, or -1 when the
// AS has no PoP structure.
func (t *Topology) NearestPoP(a ASN, c geo.Coord) int {
	as := t.ASes[a]
	if as == nil || len(as.PoPs) == 0 {
		return -1
	}
	best, bestD := 0, geo.DistanceKm(as.PoPs[0].Coord, c)
	for i := 1; i < len(as.PoPs); i++ {
		if d := geo.DistanceKm(as.PoPs[i].Coord, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// IGPCost returns the intra-AS routing cost between two PoPs of a transit AS,
// modeled as the great-circle distance in kilometers. Indices outside the PoP
// list (including -1) denote the AS's primary location.
func (t *Topology) IGPCost(a ASN, popA, popB int) float64 {
	as := t.ASes[a]
	if as == nil {
		return 0
	}
	return geo.DistanceKm(as.PoPCoord(popA), as.PoPCoord(popB))
}

// IGPDelay converts an intra-AS PoP-to-PoP traversal into a delay.
func (t *Topology) IGPDelay(a ASN, popA, popB int) time.Duration {
	as := t.ASes[a]
	if as == nil || popA == popB {
		return 0
	}
	return t.Model.OneWay(geo.DistanceKm(as.PoPCoord(popA), as.PoPCoord(popB)), 1)
}
