package topology

import (
	"testing"
)

func TestChurnPerturbsDeterministically(t *testing.T) {
	a := mustGen(t, TestParams())
	b := mustGen(t, TestParams())

	sa := Churn(a, 0.3, 7)
	sb := Churn(b, 0.3, 7)
	if sa != sb {
		t.Fatalf("same seed produced different churn: %+v vs %+v", sa, sb)
	}
	if sa.PolicyChanges == 0 && sa.RouterSwaps == 0 && sa.DelayShifts == 0 {
		t.Fatal("churn touched nothing")
	}
	// Same perturbations applied to identical topologies keep them equal.
	for asn, asA := range a.ASes {
		asB := b.ASes[asn]
		if asA.RouterID != asB.RouterID {
			t.Fatalf("AS %d router IDs diverged", asn)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("churned topology invalid: %v", err)
	}
}

func TestChurnZeroFrac(t *testing.T) {
	topo := mustGen(t, TestParams())
	before := make(map[ASN]uint32)
	for asn, a := range topo.ASes {
		before[asn] = a.RouterID
	}
	st := Churn(topo, 0, 1)
	if st.PolicyChanges != 0 || st.RouterSwaps != 0 || st.DelayShifts != 0 {
		t.Fatalf("zero-frac churn changed things: %+v", st)
	}
	for asn, a := range topo.ASes {
		if a.RouterID != before[asn] {
			t.Fatal("router ID changed with zero churn")
		}
	}
}

func TestChurnSkipsOrigin(t *testing.T) {
	topo := mustGen(t, TestParams())
	origin := topo.AddAS("origin", TierOrigin, topo.Tier1s()[0].Coord)
	id := origin.RouterID
	Churn(topo, 1.0, 3)
	if origin.RouterID != id {
		t.Error("churn touched the origin AS")
	}
}

func TestChurnScalesWithFrac(t *testing.T) {
	lo := mustGen(t, TestParams())
	hi := mustGen(t, TestParams())
	stLo := Churn(lo, 0.05, 9)
	stHi := Churn(hi, 0.8, 9)
	if stHi.PolicyChanges <= stLo.PolicyChanges {
		t.Errorf("policy churn did not scale: %d vs %d", stLo.PolicyChanges, stHi.PolicyChanges)
	}
	if stHi.DelayShifts <= stLo.DelayShifts {
		t.Errorf("delay churn did not scale: %d vs %d", stLo.DelayShifts, stHi.DelayShifts)
	}
}
