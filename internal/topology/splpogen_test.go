package topology

import (
	"testing"

	"anyopt/internal/core/splpo"
)

func TestGenerateSPLPOValid(t *testing.T) {
	p := AkamaiScaleSPLPOParams()
	p.NumClients = 2000 // keep the unit test quick; the bench runs full scale
	in, err := GenerateSPLPO(p)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumSites != 500 || len(in.Clients) != 2000 {
		t.Fatalf("shape: %d sites / %d clients", in.NumSites, len(in.Clients))
	}
	if in.Cap != nil {
		t.Fatal("uncapacitated params produced capacitated instance")
	}
	p.Capacitated, p.CapSlack = true, 2
	capd, err := GenerateSPLPO(p)
	if err != nil {
		t.Fatal(err)
	}
	if capd.Cap == nil {
		t.Fatal("capacitated params produced uncapacitated instance")
	}
	for i := range in.Clients {
		c := &in.Clients[i]
		if len(c.Ranking) == 0 || len(c.RankCost) != len(c.Ranking) {
			t.Fatalf("client %d: ranking %d / rankcost %d", i, len(c.Ranking), len(c.RankCost))
		}
		if c.Weight <= 0 || c.Load <= 0 {
			t.Fatalf("client %d: weight %v load %v", i, c.Weight, c.Load)
		}
	}
}

func TestGenerateSPLPODeterministic(t *testing.T) {
	p := AkamaiScaleSPLPOParams()
	p.NumClients = 300
	a, err := GenerateSPLPO(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSPLPO(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Clients {
		ca, cb := &a.Clients[i], &b.Clients[i]
		if len(ca.Ranking) != len(cb.Ranking) {
			t.Fatalf("client %d ranking lengths differ", i)
		}
		for j := range ca.Ranking {
			if ca.Ranking[j] != cb.Ranking[j] || ca.RankCost[j] != cb.RankCost[j] {
				t.Fatalf("client %d not deterministic at pos %d", i, j)
			}
		}
	}
}

// TestAkamaiScaleSolvable is the end-to-end smoke: on a 500-site instance
// the anytime solver finds a feasible (all-served) configuration within a
// modest work budget and beats the all-open baseline — because preference
// order disagrees with latency, closing the right sites lowers the mean.
func TestAkamaiScaleSolvable(t *testing.T) {
	p := AkamaiScaleSPLPOParams()
	p.NumClients = 4000
	in, err := GenerateSPLPO(p)
	if err != nil {
		t.Fatal(err)
	}
	all := splpo.NewSiteSet(in.NumSites)
	for s := 0; s < in.NumSites; s++ {
		all.Add(s)
	}
	allOpen := in.EvaluateSet(all, nil)
	res, err := splpo.Search(in, splpo.SearchOptions{
		RequireFeasible: true,
		MaxWork:         4_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("result not feasible: %+v", res.Stats)
	}
	if res.MeanCost <= 0 || res.MeanCost > 500 {
		t.Fatalf("implausible mean cost %v ms", res.MeanCost)
	}
	if res.MeanCost >= allOpen.MeanCost() {
		t.Fatalf("solver mean %.3f did not beat all-open baseline %.3f",
			res.MeanCost, allOpen.MeanCost())
	}
	t.Logf("500-site: mean=%.2fms (all-open %.2fms) open=%d work=%d evals=%d moves=%d perturbs=%d",
		res.MeanCost, allOpen.MeanCost(), res.Stats.Open, res.Work, res.Evals, res.Moves, res.Perturbations)
}

func TestChurnSPLPO(t *testing.T) {
	p := AkamaiScaleSPLPOParams()
	p.NumClients = 500
	in, err := GenerateSPLPO(p)
	if err != nil {
		t.Fatal(err)
	}
	churned, changed := ChurnSPLPO(in, 0.1, 7)
	if len(changed) != 50 {
		t.Fatalf("changed %d clients, want 50", len(changed))
	}
	if err := churned.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range changed {
		if seen[c] {
			t.Fatalf("duplicate changed client %d", c)
		}
		seen[c] = true
	}
	// Unchanged rows must be shared, changed rows fresh.
	for i := range in.Clients {
		same := &in.Clients[i].Ranking[0] == &churned.Clients[i].Ranking[0]
		if seen[i] && same {
			t.Fatalf("changed client %d shares ranking storage", i)
		}
		if !seen[i] && !same {
			t.Fatalf("unchanged client %d was copied", i)
		}
	}
}
