package topology

import (
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	orig := mustGen(t, TestParams())
	data, err := orig.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumASes() != orig.NumASes() {
		t.Fatalf("AS count %d vs %d", got.NumASes(), orig.NumASes())
	}
	for asn, a := range orig.ASes {
		b := got.ASes[asn]
		if b == nil {
			t.Fatalf("AS %d missing after import", asn)
		}
		if a.Name != b.Name || a.Tier != b.Tier || a.RouterID != b.RouterID ||
			a.Multipath != b.Multipath || a.Coord != b.Coord {
			t.Fatalf("AS %d differs: %+v vs %+v", asn, a, b)
		}
		if len(a.PoPs) != len(b.PoPs) {
			t.Fatalf("AS %d PoP count differs", asn)
		}
		for i := range a.PoPs {
			if a.PoPs[i] != b.PoPs[i] {
				t.Fatalf("AS %d PoP %d differs", asn, i)
			}
		}
		if len(a.LocalPrefDelta) != len(b.LocalPrefDelta) {
			t.Fatalf("AS %d deltas differ", asn)
		}
		for n, d := range a.LocalPrefDelta {
			if b.LocalPrefDelta[n] != d {
				t.Fatalf("AS %d delta for %d differs", asn, n)
			}
		}
	}
	if len(got.Links) != len(orig.Links) {
		t.Fatalf("link count %d vs %d", len(got.Links), len(orig.Links))
	}
	for i, la := range orig.Links {
		lb := got.Links[i]
		if la.From != lb.From || la.To != lb.To || la.Rel != lb.Rel ||
			la.FromPoP != lb.FromPoP || la.ToPoP != lb.ToPoP || la.Delay != lb.Delay {
			t.Fatalf("link %d differs: %+v vs %+v", i, la, lb)
		}
	}
	if len(got.Targets) != len(orig.Targets) {
		t.Fatalf("target counts differ")
	}
	for i := range orig.Targets {
		if got.Targets[i] != orig.Targets[i] {
			t.Fatalf("target %d differs", i)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("imported topology invalid: %v", err)
	}
	// The imported topology must accept further construction.
	a := got.AddAS("extra", TierOrigin, orig.Tier1s()[0].Coord)
	l := got.AddLink(a.ASN, got.Tier1s()[0].ASN, CustomerProvider, -1, 0)
	if got.Link(l.ID) != l {
		t.Error("links added after import are not addressable")
	}
	if orig.ASes[a.ASN] != nil {
		t.Error("import aliases the original topology")
	}
}

func TestImportJSONSecondExportIdentical(t *testing.T) {
	orig := mustGen(t, TestParams())
	d1, err := orig.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	imported, err := ImportJSON(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := imported.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Error("export → import → export is not a fixed point")
	}
}

func TestImportJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "][",
		"wrong version": `{"version": 9}`,
		"dup AS":        `{"version": 1, "ases": [{"asn": 1}, {"asn": 1}]}`,
		"unknown link AS": `{"version": 1, "ases": [{"asn": 1}],
			"links": [{"from": 1, "to": 2, "delay_ns": 5}]}`,
		"bad delay": `{"version": 1, "ases": [{"asn": 1}, {"asn": 2}],
			"links": [{"from": 1, "to": 2, "delay_ns": 0}]}`,
		"bad target addr": `{"version": 1, "ases": [{"asn": 1}],
			"targets": [{"addr": "nope", "as": 1}]}`,
		"unknown target AS": `{"version": 1, "ases": [{"asn": 1}],
			"targets": [{"addr": "10.0.0.1", "as": 7}]}`,
	}
	for name, data := range cases {
		if _, err := ImportJSON([]byte(data)); err == nil {
			t.Errorf("%s: imported successfully", name)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("%s: %v", name, err)
		}
	}
}
