package testbed

import (
	"testing"
	"time"

	"anyopt/internal/bgp"
	"anyopt/internal/topology"
)

func build(t testing.TB) (*Testbed, *topology.Topology) {
	t.Helper()
	topo, err := topology.Generate(topology.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(topo, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tb, topo
}

func TestTable1Layout(t *testing.T) {
	tb, topo := build(t)

	if len(tb.Sites) != 15 {
		t.Fatalf("sites = %d, want 15", len(tb.Sites))
	}
	if got := tb.PeerLinkCount(); got != 104 {
		t.Errorf("total peering links = %d, want 104 (Table 1)", got)
	}
	if got := len(tb.TransitProviders()); got != 6 {
		t.Errorf("transit providers = %d, want 6", got)
	}
	// Peer counts per site match Table 1.
	wantPeers := []int{4, 1, 6, 15, 14, 3, 4, 4, 7, 2, 7, 14, 9, 9, 5}
	for i, s := range tb.Sites {
		if len(s.PeerLinks) != wantPeers[i] {
			t.Errorf("site %d peers = %d, want %d", s.ID, len(s.PeerLinks), wantPeers[i])
		}
		if s.TunnelRTT <= 0 {
			t.Errorf("site %d tunnel RTT = %v", s.ID, s.TunnelRTT)
		}
		if s.ID != i+1 {
			t.Errorf("site at index %d has ID %d", i, s.ID)
		}
	}
	// Site 6 is Tokyo on NTT.
	if s := tb.Site(6); s.City != "Tokyo" || s.TransitName != "NTT" {
		t.Errorf("site 6 = %s/%s, want Tokyo/NTT", s.City, s.TransitName)
	}
	// The origin AS must exist with one PoP per site.
	origin := topo.AS(tb.Origin)
	if origin == nil || origin.Tier != topology.TierOrigin {
		t.Fatal("origin AS missing")
	}
	if len(origin.PoPs) != 15 {
		t.Errorf("origin PoPs = %d, want 15", len(origin.PoPs))
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("topology invalid after testbed deployment: %v", err)
	}
}

func TestLookups(t *testing.T) {
	tb, _ := build(t)
	for _, s := range tb.Sites {
		if got := tb.SiteByLink(s.TransitLink); got != s {
			t.Errorf("SiteByLink(transit %d) = %v", s.TransitLink, got)
		}
		for _, pl := range s.PeerLinks {
			if got := tb.SiteByLink(pl); got != s {
				t.Errorf("SiteByLink(peer %d) = %v", pl, got)
			}
		}
		if got := tb.SiteByTunnelKey(s.TunnelKey); got != s {
			t.Errorf("SiteByTunnelKey(%d) = %v", s.TunnelKey, got)
		}
	}
	if tb.Site(0) != nil || tb.Site(16) != nil {
		t.Error("out-of-range Site() lookups should return nil")
	}
	if tb.SiteByTunnelKey(999) != nil {
		t.Error("unknown tunnel key resolved")
	}
	if tb.SiteByLink(topology.LinkID(0)) != nil {
		t.Error("non-testbed link resolved to a site")
	}
}

func TestSitesOfTransit(t *testing.T) {
	tb, topo := build(t)
	total := 0
	for _, prov := range tb.TransitProviders() {
		sites := tb.SitesOfTransit(prov)
		total += len(sites)
		for _, s := range sites {
			if s.Transit != prov {
				t.Errorf("site %d returned for wrong provider", s.ID)
			}
		}
	}
	if total != 15 {
		t.Errorf("sites across providers = %d, want 15", total)
	}
	// NTT hosts sites 6, 7, 9, 11 per Table 1.
	var ntt topology.ASN
	for _, a := range topo.Tier1s() {
		if a.Name == "NTT" {
			ntt = a.ASN
		}
	}
	ids := []int{}
	for _, s := range tb.SitesOfTransit(ntt) {
		ids = append(ids, s.ID)
	}
	want := []int{6, 7, 9, 11}
	if len(ids) != len(want) {
		t.Fatalf("NTT sites = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("NTT sites = %v, want %v", ids, want)
		}
	}
}

func TestPeersAreDistinctASes(t *testing.T) {
	tb, topo := build(t)
	seen := map[topology.ASN]bool{}
	for _, s := range tb.Sites {
		for _, pl := range s.PeerLinks {
			l := topo.Link(pl)
			if l.Rel != topology.PeerPeer {
				t.Errorf("peer link %d has relationship %v", pl, l.Rel)
			}
			peer := l.Other(tb.Origin)
			if seen[peer] {
				t.Errorf("AS %d peers with the testbed twice", peer)
			}
			seen[peer] = true
		}
	}
}

func TestDeploymentAnnounceWithdraw(t *testing.T) {
	tb, topo := build(t)
	sim := bgp.New(topo, bgp.DefaultConfig())
	d := tb.NewDeployment(sim, 0)

	d.AnnounceSites(1, 4, 6)
	if got := len(sim.AnnouncedLinks(0)); got != 3 {
		t.Fatalf("announced links = %d, want 3", got)
	}
	reach := 0
	for _, tg := range topo.Targets {
		if _, ok := sim.Forward(0, tg); ok {
			reach++
		}
	}
	if reach != len(topo.Targets) {
		t.Errorf("%d/%d targets reachable", reach, len(topo.Targets))
	}

	// Catchments must map to exactly the enabled sites.
	cm := sim.CatchmentMap(0, topo.Targets)
	enabled := map[int]bool{1: true, 4: true, 6: true}
	for asn, link := range cm {
		s := tb.SiteByLink(link)
		if s == nil || !enabled[s.ID] {
			t.Fatalf("AS%d caught by unexpected link %d", asn, link)
		}
	}

	d.WithdrawAll()
	if got := len(sim.AnnouncedLinks(0)); got != 0 {
		t.Errorf("links still announced after WithdrawAll: %d", got)
	}
	if n := sim.ReachableCount(0); n != 0 {
		t.Errorf("%d ASes still route the prefix after withdrawal", n)
	}
}

func TestDeploymentSpacingControlsOrder(t *testing.T) {
	// Announcing (a, b) spaced must produce a different overall catchment
	// split than (b, a) for at least one target (arrival-order ties exist).
	run := func(order []int) map[topology.ASN]topology.LinkID {
		tb, topo := build(t)
		sim := bgp.New(topo, bgp.DefaultConfig())
		d := tb.NewDeployment(sim, 0)
		d.AnnounceSites(order...)
		return sim.CatchmentMap(0, topo.Targets)
	}
	a := run([]int{1, 5}) // Telia Atlanta vs GTT London
	b := run([]int{5, 1})
	diff := 0
	for asn, link := range a {
		if b[asn] != link {
			diff++
		}
	}
	if diff == 0 {
		t.Error("reversing announcement order changed no catchments; ties are not being broken by arrival order")
	}
}

func TestEnableDisablePeer(t *testing.T) {
	tb, topo := build(t)
	sim := bgp.New(topo, bgp.DefaultConfig())
	d := tb.NewDeployment(sim, 0)
	d.AnnounceSites(1, 3, 5)

	before := sim.CatchmentMap(0, topo.Targets)
	peerLink := tb.Site(4).PeerLinks[0]
	d.EnablePeer(peerLink)
	after := sim.CatchmentMap(0, topo.Targets)

	// The peer AS itself must now reach the prefix over its peering link.
	peerAS := topo.Link(peerLink).Other(tb.Origin)
	if ri := sim.BestRoute(0, peerAS); ri == nil || ri.Link != peerLink {
		t.Errorf("peer AS %d does not use its peering link (route %+v)", peerAS, ri)
	}

	d.DisablePeer(peerLink)
	restored := sim.CatchmentMap(0, topo.Targets)
	if len(restored) != len(before) {
		t.Fatalf("catchment size changed after peer disable: %d vs %d", len(restored), len(before))
	}
	for asn, link := range before {
		if restored[asn] != link {
			t.Fatalf("catchment for AS%d not restored after peer disable", asn)
		}
	}
	_ = after
}

func TestNewErrors(t *testing.T) {
	topo, err := topology.Generate(topology.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(topo, Options{Sites: []SiteSpec{{City: "Nowhere", Transit: "Telia"}}}); err == nil {
		t.Error("unknown city accepted")
	}
	if _, err := New(topo, Options{Sites: []SiteSpec{{City: "Atlanta", Transit: "NoSuchT1"}}}); err == nil {
		t.Error("unknown transit accepted")
	}
	if _, err := New(topo, Options{OrchCity: "Nowhere"}); err == nil {
		t.Error("unknown orchestrator city accepted")
	}
}

func TestDefaultPrefixes(t *testing.T) {
	tb, _ := build(t)
	if len(tb.AnycastAddrs) != 4 {
		t.Errorf("anycast prefixes = %d, want 4 (as in the paper)", len(tb.AnycastAddrs))
	}
	seen := map[string]bool{}
	for _, a := range tb.AnycastAddrs {
		if seen[a.String()] {
			t.Errorf("duplicate anycast address %v", a)
		}
		seen[a.String()] = true
	}
}

func TestTunnelRTTPlausible(t *testing.T) {
	tb, _ := build(t)
	// Boston → Tokyo tunnel should be far longer than Boston → Newark.
	tokyo := tb.Site(6).TunnelRTT
	newark := tb.Site(11).TunnelRTT
	if tokyo <= newark {
		t.Errorf("tunnel RTTs implausible: Tokyo %v <= Newark %v", tokyo, newark)
	}
	if newark < time.Millisecond || tokyo > time.Second {
		t.Errorf("tunnel RTTs out of range: %v, %v", newark, tokyo)
	}
}
