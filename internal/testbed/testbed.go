// Package testbed models the paper's anycast testbed (§3.1): an anycast
// network of sites colocated with tier-1 transit PoPs, an orchestrator
// connected to every site by a GRE tunnel, and the announce/withdraw control
// plane that deploys anycast configurations onto the (simulated) Internet.
//
// The default layout is Table 1 of the paper: 15 sites across six tier-1
// transit providers (Telia, Zayo, TATA, GTT, NTT, Sparkle) with 104
// settlement-free peering links in total.
package testbed

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"anyopt/internal/bgp"
	"anyopt/internal/geo"
	"anyopt/internal/topology"
)

// SiteSpec declares one site of the anycast network.
type SiteSpec struct {
	// City places the site; it must exist in the geo catalog.
	City string
	// Transit is the name of the tier-1 AS the site buys transit from.
	Transit string
	// Peers is the number of settlement-free peering links at the site.
	Peers int
}

// Table1 is the paper's testbed: site locations, transit providers, and peer
// counts exactly as reported.
var Table1 = []SiteSpec{
	{"Atlanta", "Telia", 4},
	{"Amsterdam", "Telia", 1},
	{"Los Angeles", "Zayo", 6},
	{"Singapore", "TATA", 15},
	{"London", "GTT", 14},
	{"Tokyo", "NTT", 3},
	{"Osaka", "NTT", 4},
	{"Los Angeles", "Zayo", 4},
	{"Miami", "NTT", 7},
	{"London", "Sparkle", 2},
	{"Newark", "NTT", 7},
	{"Stockholm", "Telia", 14},
	{"Toronto", "TATA", 9},
	{"Sao Paulo", "Sparkle", 9},
	{"Chicago", "GTT", 5},
}

// Site is a deployed anycast site.
type Site struct {
	// ID is 1-based, matching Table 1 numbering.
	ID int
	// Name combines city and transit for display.
	Name string
	// City and Coord locate the site.
	City  string
	Coord geo.Coord
	// Transit is the tier-1 provider AS.
	Transit topology.ASN
	// TransitName is the provider's name.
	TransitName string
	// TransitLink is the site's attachment to its transit provider.
	TransitLink topology.LinkID
	// PeerLinks are the site's settlement-free peering attachments.
	PeerLinks []topology.LinkID
	// TunnelKey identifies the orchestrator↔site GRE tunnel.
	TunnelKey uint32
	// TunnelAddr is the site router's tunnel endpoint address.
	TunnelAddr netip.Addr
	// TunnelRTT is the orchestrator↔site tunnel round-trip time, which the
	// orchestrator measures periodically and subtracts from probe RTTs
	// (§3.1, "Measuring RTTs").
	TunnelRTT time.Duration
}

// Testbed is the anycast network deployed on a topology.
type Testbed struct {
	Topo   *topology.Topology
	Origin topology.ASN
	Sites  []*Site
	// OrchCoord locates the orchestrator (the GoBGP server of §3.1).
	OrchCoord geo.Coord
	// OrchAddr is the orchestrator's unicast address.
	OrchAddr netip.Addr
	// AnycastAddrs are the test anycast addresses, one per prefix the
	// testbed can announce in parallel (the paper uses four).
	AnycastAddrs []netip.Addr

	// linkSite maps origin-side links (transit and peering) back to sites.
	linkSite map[topology.LinkID]*Site
	// targetByAddr indexes measurement targets by address; built once here
	// and shared by every measurement fabric over this testbed instead of
	// being rebuilt per experiment.
	targetByAddr map[netip.Addr]topology.Target
}

// Options configures testbed construction.
type Options struct {
	// Sites defaults to Table1.
	Sites []SiteSpec
	// Prefixes is the number of parallel test prefixes (default 4, as in
	// the paper).
	Prefixes int
	// Seed drives peer selection.
	Seed int64
	// OrchCity places the orchestrator (default Boston).
	OrchCity string
}

// New deploys the anycast network onto topo: it creates the origin AS, one
// PoP and transit link per site, and the requested number of peering links
// per site, attached to ASes near the site's city.
func New(topo *topology.Topology, opts Options) (*Testbed, error) {
	if opts.Sites == nil {
		opts.Sites = Table1
	}
	if opts.Prefixes <= 0 {
		opts.Prefixes = 4
	}
	if opts.OrchCity == "" {
		opts.OrchCity = "Boston"
	}
	orch, ok := geo.CityByName(opts.OrchCity)
	if !ok {
		return nil, fmt.Errorf("testbed: unknown orchestrator city %q", opts.OrchCity)
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x7e57bed))

	// Index tier-1s by name.
	t1ByName := map[string]*topology.AS{}
	for _, a := range topo.Tier1s() {
		t1ByName[a.Name] = a
	}

	origin := topo.AddAS("anycast-net", topology.TierOrigin, orch.Coord)
	tb := &Testbed{
		Topo:      topo,
		Origin:    origin.ASN,
		OrchCoord: orch.Coord,
		OrchAddr:  netip.AddrFrom4([4]byte{192, 0, 2, 1}),
		linkSite:  make(map[topology.LinkID]*Site),
	}
	// Each test prefix is its own /24, as the paper's four test anycast
	// prefixes are independently routable.
	for i := 0; i < opts.Prefixes; i++ {
		tb.AnycastAddrs = append(tb.AnycastAddrs, netip.AddrFrom4([4]byte{203, 0, byte(113 + i), 10}))
	}

	// Candidate peer ASes: mostly stub/edge networks plus the occasional
	// regional transit — the mix found at the IXes near each site. Keeping
	// transit peers rare matters for the Figure 7a shape: a transit peer
	// pulls its whole customer cone, while a stub peer catches only itself.
	stubPool := topo.Stubs()
	transitPool := topo.Transits()

	usedPeer := map[topology.ASN]bool{}
	for i, spec := range opts.Sites {
		city, ok := geo.CityByName(spec.City)
		if !ok {
			return nil, fmt.Errorf("testbed: site %d: unknown city %q", i+1, spec.City)
		}
		t1 := t1ByName[spec.Transit]
		if t1 == nil {
			return nil, fmt.Errorf("testbed: site %d: unknown transit provider %q", i+1, spec.Transit)
		}
		// The site is a PoP of the origin AS, colocated with the provider's
		// nearest PoP.
		origin.PoPs = append(origin.PoPs, topology.PoP{City: city.Name, Coord: city.Coord})
		sitePoP := len(origin.PoPs) - 1
		provPoP := topo.NearestPoP(t1.ASN, city.Coord)

		site := &Site{
			ID:          i + 1,
			Name:        fmt.Sprintf("%s/%s", spec.City, spec.Transit),
			City:        spec.City,
			Coord:       city.Coord,
			Transit:     t1.ASN,
			TransitName: t1.Name,
			TunnelKey:   uint32(i + 1),
			TunnelAddr:  netip.AddrFrom4([4]byte{192, 0, 2, byte(10 + i)}),
		}
		link := topo.AddLink(origin.ASN, t1.ASN, topology.CustomerProvider, sitePoP, provPoP)
		site.TransitLink = link.ID
		tb.linkSite[link.ID] = site

		// Tunnel RTT: orchestrator to site over the Internet (GRE), plus a
		// little encapsulation overhead.
		site.TunnelRTT = topo.Model.RTT(orch.Coord, city.Coord, 6) + 400*time.Microsecond

		// Peering links: pick distinct nearby ASes, preferring ones within
		// peering range of the site's metro; roughly one in eight is a
		// regional transit, the rest are edge networks.
		nTransitPeers := spec.Peers / 8
		peers := pickPeers(rng, transitPool, city.Coord, nTransitPeers, usedPeer)
		peers = append(peers, pickPeers(rng, stubPool, city.Coord, spec.Peers-len(peers), usedPeer)...)
		if len(peers) < spec.Peers {
			return nil, fmt.Errorf("testbed: site %d: only %d of %d peers available", i+1, len(peers), spec.Peers)
		}
		for _, p := range peers {
			popIdx := topo.NearestPoP(p.ASN, city.Coord)
			pl := topo.AddLink(origin.ASN, p.ASN, topology.PeerPeer, sitePoP, popIdx)
			site.PeerLinks = append(site.PeerLinks, pl.ID)
			tb.linkSite[pl.ID] = site
		}
		tb.Sites = append(tb.Sites, site)
	}
	tb.targetByAddr = make(map[netip.Addr]topology.Target, len(topo.Targets))
	for _, t := range topo.Targets {
		tb.targetByAddr[t.Addr] = t
	}
	return tb, nil
}

// pickPeers samples n distinct ASes weighted toward those close to c. Each AS
// peers with the anycast network at most once across all sites (as in
// practice: one BGP peering per organization pair per location set).
func pickPeers(rng *rand.Rand, candidates []*topology.AS, c geo.Coord, n int, used map[topology.ASN]bool) []*topology.AS {
	type scored struct {
		as *topology.AS
		d  float64
	}
	var near []scored
	for _, a := range candidates {
		if used[a.ASN] {
			continue
		}
		near = append(near, scored{a, geo.DistanceKm(a.Coord, c)})
	}
	sort.Slice(near, func(i, j int) bool {
		if near[i].d != near[j].d {
			return near[i].d < near[j].d
		}
		return near[i].as.ASN < near[j].as.ASN
	})
	// Take from the nearest 3n with some randomness.
	pool := near
	if len(pool) > 3*n {
		pool = pool[:3*n]
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	var out []*topology.AS
	for _, s := range pool {
		if len(out) == n {
			break
		}
		used[s.as.ASN] = true
		out = append(out, s.as)
	}
	return out
}

// EncodeTunnelKey composes the GRE key a site router stamps on traffic it
// tunnels to the orchestrator: the low 16 bits identify the site's tunnel,
// the high 16 bits the ingress interface (0 = the transit link, i+1 = the
// i-th peering link). Per-interface GRE keys are how the one-pass peering
// experiments (§4.4) attribute a reply to a specific peering link.
func EncodeTunnelKey(siteKey uint32, linkOrdinal int) uint32 {
	return siteKey&0xffff | uint32(linkOrdinal)<<16
}

// DecodeTunnelKey splits a GRE key into site tunnel key and link ordinal.
func DecodeTunnelKey(key uint32) (siteKey uint32, linkOrdinal int) {
	return key & 0xffff, int(key >> 16)
}

// LinkOrdinal returns the interface ordinal of a site-owned link (0 for the
// transit link, i+1 for the i-th peering link), or -1 if the link is not at
// this site.
func (s *Site) LinkOrdinal(id topology.LinkID) int {
	if id == s.TransitLink {
		return 0
	}
	for i, pl := range s.PeerLinks {
		if pl == id {
			return i + 1
		}
	}
	return -1
}

// LinkByOrdinal is the inverse of LinkOrdinal; ok is false for unknown
// ordinals.
func (s *Site) LinkByOrdinal(ord int) (topology.LinkID, bool) {
	if ord == 0 {
		return s.TransitLink, true
	}
	if ord >= 1 && ord <= len(s.PeerLinks) {
		return s.PeerLinks[ord-1], true
	}
	return 0, false
}

// Site returns the site with 1-based ID, or nil.
func (tb *Testbed) Site(id int) *Site {
	if id < 1 || id > len(tb.Sites) {
		return nil
	}
	return tb.Sites[id-1]
}

// SiteByLink maps an origin-side link to the site owning it, or nil.
func (tb *Testbed) SiteByLink(id topology.LinkID) *Site { return tb.linkSite[id] }

// TargetByAddr resolves a measurement target by its unicast address.
func (tb *Testbed) TargetByAddr(a netip.Addr) (topology.Target, bool) {
	t, ok := tb.targetByAddr[a]
	return t, ok
}

// SiteByTunnelKey resolves a GRE tunnel key to its site, ignoring the
// ingress-interface bits, or nil.
func (tb *Testbed) SiteByTunnelKey(key uint32) *Site {
	siteKey, _ := DecodeTunnelKey(key)
	for _, s := range tb.Sites {
		if s.TunnelKey == siteKey {
			return s
		}
	}
	return nil
}

// LinkByTunnelKey resolves a GRE tunnel key to the exact origin-side link the
// reply entered over, or 0, false for unknown keys.
func (tb *Testbed) LinkByTunnelKey(key uint32) (topology.LinkID, bool) {
	site := tb.SiteByTunnelKey(key)
	if site == nil {
		return 0, false
	}
	_, ord := DecodeTunnelKey(key)
	return site.LinkByOrdinal(ord)
}

// SitesOfTransit lists the sites homed to the given transit provider, in ID
// order.
func (tb *Testbed) SitesOfTransit(t topology.ASN) []*Site {
	var out []*Site
	for _, s := range tb.Sites {
		if s.Transit == t {
			out = append(out, s)
		}
	}
	return out
}

// TransitProviders returns the distinct transit ASes used by sites, in ASN
// order.
func (tb *Testbed) TransitProviders() []topology.ASN {
	seen := map[topology.ASN]bool{}
	var out []topology.ASN
	for _, s := range tb.Sites {
		if !seen[s.Transit] {
			seen[s.Transit] = true
			out = append(out, s.Transit)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeerLinkCount returns the total number of peering links across sites.
func (tb *Testbed) PeerLinkCount() int {
	n := 0
	for _, s := range tb.Sites {
		n += len(s.PeerLinks)
	}
	return n
}

// Deployment drives announcements for one prefix on a bgp.Sim.
type Deployment struct {
	TB     *Testbed
	Sim    *bgp.Sim
	Prefix bgp.PrefixID
	// Spacing separates consecutive announcements so the earlier one
	// arrives everywhere first (§4.2 uses six minutes).
	Spacing time.Duration
}

// NewDeployment creates a deployment controller for prefix on sim.
func (tb *Testbed) NewDeployment(sim *bgp.Sim, prefix bgp.PrefixID) *Deployment {
	return &Deployment{TB: tb, Sim: sim, Prefix: prefix, Spacing: 6 * time.Minute}
}

// AnnounceSites announces the prefix from the given sites' transit links in
// the given order, spaced by Spacing, and converges.
func (d *Deployment) AnnounceSites(siteIDs ...int) {
	for rank, id := range siteIDs {
		site := d.TB.Site(id)
		if site == nil {
			panic(fmt.Sprintf("testbed: unknown site %d", id))
		}
		link := site.TransitLink
		d.Sim.Engine.After(time.Duration(rank)*d.Spacing, func() {
			d.Sim.Announce(d.Prefix, d.TB.Origin, link, 0)
		})
	}
	d.Sim.Converge()
}

// AnnounceSitesSimultaneously announces from all given sites at the same
// instant, leaving arrival order to propagation and processing jitter — the
// "naive" mode of §5.1.
func (d *Deployment) AnnounceSitesSimultaneously(siteIDs ...int) {
	for _, id := range siteIDs {
		site := d.TB.Site(id)
		if site == nil {
			panic(fmt.Sprintf("testbed: unknown site %d", id))
		}
		d.Sim.Announce(d.Prefix, d.TB.Origin, site.TransitLink, 0)
	}
	d.Sim.Converge()
}

// EnablePeer announces the prefix over one peering link and converges.
func (d *Deployment) EnablePeer(link topology.LinkID) {
	d.Sim.Announce(d.Prefix, d.TB.Origin, link, 0)
	d.Sim.Converge()
}

// DisablePeer withdraws the prefix from one peering link and converges.
func (d *Deployment) DisablePeer(link topology.LinkID) {
	d.Sim.Withdraw(d.Prefix, link)
	d.Sim.Converge()
}

// WithdrawAll withdraws the prefix everywhere and converges; the testbed does
// this between experiments, as the paper does.
func (d *Deployment) WithdrawAll() {
	d.Sim.WithdrawAll(d.Prefix)
	d.Sim.Converge()
}
