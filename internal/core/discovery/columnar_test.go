package discovery

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"anyopt/internal/core/prefs"
)

// refRTT is the nested-map reference model: the exact semantics of the
// pre-columnar RTTTable. The columnar table must be observationally
// identical under every build / patch / export sequence.
type refRTT struct {
	bySite map[int]map[prefs.Client]time.Duration
}

func (t *refRTT) rtt(site int, c prefs.Client) (time.Duration, bool) {
	d, ok := t.bySite[site][c]
	return d, ok
}

func (t *refRTT) sites() []int {
	var out []int
	for s := range t.bySite {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func (t *refRTT) mean(site int) time.Duration {
	m := t.bySite[site]
	if len(m) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range m {
		sum += d
	}
	return sum / time.Duration(len(m))
}

func (t *refRTT) patch(patch *refRTT, cone func(prefs.Client) bool) *refRTT {
	out := &refRTT{bySite: map[int]map[prefs.Client]time.Duration{}}
	for site, m := range t.bySite {
		row := make(map[prefs.Client]time.Duration, len(m))
		for c, d := range m {
			if !cone(c) {
				row[c] = d
			}
		}
		for c, d := range patch.bySite[site] {
			if cone(c) {
				row[c] = d
			}
		}
		out.bySite[site] = row
	}
	return out
}

func (t *refRTT) export() map[int]map[prefs.Client]int64 {
	out := make(map[int]map[prefs.Client]int64, len(t.bySite))
	for site, m := range t.bySite {
		row := make(map[prefs.Client]int64, len(m))
		for c, d := range m {
			row[c] = int64(d)
		}
		out[site] = row
	}
	return out
}

func randRTTData(rng *rand.Rand, sites []int, clientPool []prefs.Client) map[int]map[prefs.Client]int64 {
	data := make(map[int]map[prefs.Client]int64, len(sites))
	for _, s := range sites {
		row := make(map[prefs.Client]int64)
		for _, c := range clientPool {
			if rng.Intn(3) > 0 { // sparse: some cells missing per site
				row[c] = int64(rng.Intn(200)+1) * int64(time.Millisecond)
			}
		}
		data[s] = row
	}
	return data
}

func checkRTTEquiv(t *testing.T, step int, tbl *RTTTable, ref *refRTT, probeSites []int, probeClients []prefs.Client) {
	t.Helper()
	if got, want := tbl.Sites(), ref.sites(); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
		t.Fatalf("step %d: sites %v, want %v", step, got, want)
	}
	for _, s := range probeSites {
		if got, want := tbl.Clients(s), len(ref.bySite[s]); got != want {
			t.Fatalf("step %d: Clients(%d) = %d, want %d", step, s, got, want)
		}
		if got, want := tbl.MeanUnicast(s), ref.mean(s); got != want {
			t.Fatalf("step %d: MeanUnicast(%d) = %v, want %v", step, s, got, want)
		}
		for _, c := range probeClients {
			gd, gok := tbl.RTT(s, c)
			wd, wok := ref.rtt(s, c)
			if gd != wd || gok != wok {
				t.Fatalf("step %d: RTT(%d, %d) = (%v, %v), want (%v, %v)", step, s, c, gd, gok, wd, wok)
			}
		}
	}
	if got, want := tbl.Export(), ref.export(); !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: export mismatch:\n got %v\nwant %v", step, got, want)
	}
}

// TestRTTColumnarDifferential drives random import / patch / export
// sequences through the columnar RTT table and the nested-map reference
// model in lockstep.
func TestRTTColumnarDifferential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sites := []int{3, 0, 11, 7}
		probeSites := append([]int{99}, sites...) // 99 is never present
		clientPool := make([]prefs.Client, 30)
		for i := range clientPool {
			clientPool[i] = prefs.Client(rng.Intn(900))
		}
		data := randRTTData(rng, sites, clientPool)
		tbl := ImportRTTTable(data)
		ref := &refRTT{bySite: map[int]map[prefs.Client]time.Duration{}}
		for s, row := range data {
			m := make(map[prefs.Client]time.Duration, len(row))
			for c, ns := range row {
				m[c] = time.Duration(ns)
			}
			ref.bySite[s] = m
		}
		checkRTTEquiv(t, 0, tbl, ref, probeSites, clientPool)

		for step := 1; step <= 20; step++ {
			switch rng.Intn(3) {
			case 0: // cone patch with freshly measured rows
				cut := prefs.Client(rng.Intn(900))
				cone := func(c prefs.Client) bool { return c >= cut }
				pd := randRTTData(rng, sites[:rng.Intn(len(sites))+1], clientPool)
				ptbl := ImportRTTTable(pd)
				pref := &refRTT{bySite: map[int]map[prefs.Client]time.Duration{}}
				for s, row := range pd {
					m := make(map[prefs.Client]time.Duration, len(row))
					for c, ns := range row {
						m[c] = time.Duration(ns)
					}
					pref.bySite[s] = m
				}
				tbl = tbl.Patch(ptbl, cone)
				ref = ref.patch(pref, cone)
			case 1: // export → import round trip
				tbl = ImportRTTTable(tbl.Export())
			case 2: // empty-cone patch must hand the receiver back
				empty := ImportRTTTable(nil)
				got := tbl.Patch(empty, func(prefs.Client) bool { return false })
				if got != tbl {
					t.Fatalf("step %d: empty-cone patch did not return the receiver", step)
				}
			}
			checkRTTEquiv(t, step, tbl, ref, probeSites, clientPool)
		}
	}
}
