package discovery

// This file is the self-healing half of the campaign runner: every batch
// experiment flows through runBatch → runExperiment → runQuorum →
// runAttempt, which together add checkpoint replay, K-of-N quorum
// re-measurement under injected faults, per-attempt timeouts, and a
// deterministic campaign fault log on top of the plain worker-pool fan-out.
// With Cfg.Faults disabled and no journal installed, the path reduces
// exactly to the old single-attempt batch — byte-identical results.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"time"

	"anyopt/internal/exec"
	"anyopt/internal/fault"
)

// JournalEntry is one checkpointed experiment result. Result holds the
// experiment's JSON-encoded return value; Probes and Trace restore the
// campaign's accounting and fault log on replay so a resumed campaign is
// byte-identical to an uninterrupted one.
type JournalEntry struct {
	Kind   string          `json:"kind"`
	Result json.RawMessage `json:"result"`
	Probes uint64          `json:"probes"`
	Trace  []string        `json:"trace,omitempty"`
}

// Journal checkpoints completed experiments, keyed by campaign nonce — the
// experiment's position in the deterministic submission schedule. Lookup and
// Record are called concurrently from worker goroutines; implementations
// must be safe for that. internal/campaign.Checkpoint is the file-backed
// implementation.
type Journal interface {
	Lookup(nonce uint64) (JournalEntry, bool)
	Record(nonce uint64, ent JournalEntry) error
}

// SetJournal installs (or, with nil, removes) the campaign checkpoint
// journal. Install it before the first experiment: replay matches entries by
// nonce, so the call sequence must reproduce the schedule that wrote them.
func (d *Discovery) SetJournal(j Journal) { d.journal = j }

// Err returns the first experiment-infrastructure error — checkpoint I/O
// failure, checkpoint/schedule mismatch, or an experiment whose every
// attempt failed — encountered by batch APIs that do not return errors
// themselves. Campaign drivers should check it after a run.
func (d *Discovery) Err() error { return d.runErr }

// FaultLog returns the campaign's failure trace: injected-fault events in
// experiment submission order plus quarantine and degradation notes. For a
// fixed fault seed and call sequence the log is reproduced verbatim.
func (d *Discovery) FaultLog() []string { return d.faultLog }

// QuarantineSite removes a site from the rest of the campaign: it loses
// representative eligibility and its pairwise experiments are skipped (slots
// still consumed, keeping the schedule aligned). The reason is recorded in
// the fault log — degradation is never silent.
func (d *Discovery) QuarantineSite(id int, reason string) {
	if d.quarantined == nil {
		d.quarantined = make(map[int]string)
	}
	if _, ok := d.quarantined[id]; ok {
		return
	}
	d.quarantined[id] = reason
	d.faultLog = append(d.faultLog, fmt.Sprintf("quarantine site %d: %s", id, reason))
}

// IsQuarantined reports whether the site has been quarantined.
func (d *Discovery) IsQuarantined(id int) bool {
	_, ok := d.quarantined[id]
	return ok
}

// Quarantined returns a copy of the quarantine map (site ID → reason).
func (d *Discovery) Quarantined() map[int]string {
	if len(d.quarantined) == 0 {
		return nil
	}
	out := make(map[int]string, len(d.quarantined))
	for id, why := range d.quarantined {
		out[id] = why
	}
	return out
}

// QuarantinedSites returns the quarantined site IDs in ascending order.
func (d *Discovery) QuarantinedSites() []int {
	out := make([]int, 0, len(d.quarantined))
	for id := range d.quarantined {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// RestoreQuarantine replaces the quarantine set, e.g. when reloading a saved
// campaign whose snapshot recorded dead sites.
func (d *Discovery) RestoreQuarantine(q map[int]string) {
	d.quarantined = nil
	for _, id := range sortedIntKeys(q) {
		d.QuarantineSite(id, q[id])
	}
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// runBatch runs n experiments through the worker pool and gathers their
// results in submission order. Nonces are drawn from the campaign counter in
// submission order before any experiment starts; probe counts and fault
// traces fold back into the campaign totals after all finish, also in
// submission order, so accounting and the fault log never depend on worker
// scheduling. An infrastructure error (checkpoint I/O, schedule mismatch)
// cancels the batch — in-flight experiments finish, queued ones never start
// — and is surfaced through Err.
func runBatch[T any](d *Discovery, kind string, n int, run func(e *Exp, i int) T) []T {
	if d.sharded() && d.Cfg.Faults.Enabled() {
		if d.runErr == nil {
			d.runErr = fmt.Errorf(
				"discovery: sharded campaigns cannot run with fault injection (quarantine is cross-shard state)")
		}
		return make([]T, n)
	}
	exps := make([]*Exp, n)
	for i := range exps {
		d.nonce++
		exps[i] = &Exp{d: d, nonce: d.nonce}
	}
	out := make([]T, n)
	parent := d.ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	err := d.pool.ForEachCtx(ctx, n, func(ctx context.Context, i int) error {
		v, err := runExperiment(d, exps[i], kind, i, run)
		if err != nil {
			return err
		}
		out[i] = v
		d.completed.Add(1)
		return nil
	})
	if err != nil && d.runErr == nil {
		d.runErr = err
	}
	for _, e := range exps {
		d.ProbesSent += e.probes
		d.faultLog = append(d.faultLog, e.trace.Entries()...)
	}
	return out
}

// runExperiment runs one experiment with checkpoint replay: a journaled
// result short-circuits the run (restoring its probe count and fault trace),
// a fresh result is journaled after the quorum accepts it.
func runExperiment[T any](d *Discovery, e *Exp, kind string, i int, run func(*Exp, int) T) (T, error) {
	var zero T
	if d.journal != nil {
		if ent, ok := d.journal.Lookup(e.nonce); ok {
			if ent.Kind != kind {
				return zero, fmt.Errorf(
					"discovery: checkpoint entry for experiment %d is %q, want %q (campaign schedule changed?)",
					e.nonce, ent.Kind, kind)
			}
			var v T
			if err := json.Unmarshal(ent.Result, &v); err != nil {
				return zero, fmt.Errorf("discovery: checkpoint entry for experiment %d: %w", e.nonce, err)
			}
			e.probes = ent.Probes
			if len(ent.Trace) > 0 {
				e.trace = &fault.Trace{}
				e.trace.Append(ent.Trace...)
			}
			return v, nil
		}
	}
	// A sharded campaign runs only its own nonce range fresh; everything
	// else is another shard's work. The nonce is already consumed (schedule
	// stays aligned), the zero result feeds the shard's throwaway snapshot,
	// and nothing is journaled — the merge replays the owning shard's entry.
	if d.sharded() && !d.inShard(e.nonce) {
		return zero, nil
	}
	v, err := runQuorum(d, e, i, run)
	if err != nil {
		return zero, err
	}
	if d.journal != nil {
		raw, merr := json.Marshal(v)
		if merr != nil {
			return zero, fmt.Errorf("discovery: encoding experiment %d for checkpoint: %w", e.nonce, merr)
		}
		ent := JournalEntry{Kind: kind, Result: raw, Probes: e.probes, Trace: e.trace.Entries()}
		if jerr := d.journal.Record(e.nonce, ent); jerr != nil {
			return zero, fmt.Errorf("discovery: checkpointing experiment %d: %w", e.nonce, jerr)
		}
	}
	return v, nil
}

// errQuorumPending signals exec.Retry that more attempts are needed — the
// current result has not yet gathered K matching votes.
var errQuorumPending = errors.New("discovery: quorum pending")

// runQuorum runs one experiment to an accepted result. Fault-free it is a
// single attempt, exactly the pre-chaos behavior. With faults enabled it
// re-runs the experiment — each attempt drawing fresh faults but reusing the
// experiment's jitter nonce and noise seed — until K attempts agree exactly.
// Because only the faults vary between attempts, two attempts agreeing almost
// surely means the faults did not affect either, so the quorum converges on
// the fault-free result.
//
// Results that decompose into per-target rows (maps keyed by client, or
// slices of such maps) vote row by row: each row locks to the first value
// that gathers K agreeing attempts, independent of every other row. Per-row
// voting matters twice over. It converges far faster under hot fault rates —
// a whole-result vote needs one attempt with zero faults across all targets,
// a row vote only needs two clean samples per row. And it makes the accepted
// row a pure function of (experiment nonce, target): a cone-scoped repair
// probing 10% of the targets accepts byte-identical rows to the full
// campaign, which is what the reconcile differential test checks. Rows that
// never reach quorum within N attempts degrade to their plurality value and
// the degradation is logged. Non-decomposable results keep whole-value
// voting.
func runQuorum[T any](d *Discovery, e *Exp, i int, run func(*Exp, int) T) (T, error) {
	if !d.Cfg.Faults.Enabled() {
		return runAttempt(d, e, i, 0, run)
	}
	e.trace = &fault.Trace{}
	k, n := d.Cfg.QuorumK, d.Cfg.QuorumN
	if k <= 0 {
		k = 2
	}
	if n < k {
		n = k + 3
	}
	backoff := exec.Backoff{Base: d.Cfg.RetryBase, Max: 500 * time.Millisecond}
	if backoff.Base <= 0 {
		backoff.Base = time.Millisecond
	}
	if rt := reflect.TypeOf((*T)(nil)).Elem(); rt.Kind() == reflect.Map ||
		(rt.Kind() == reflect.Slice && rt.Elem().Kind() == reflect.Map) {
		return runRowQuorum(d, e, i, k, n, backoff, run)
	}
	type ballot struct {
		val   T
		count int
	}
	var votes []ballot
	accepted := -1
	err := exec.Retry(context.Background(), n, backoff, func(attempt int) error {
		if attempt > 0 {
			d.quorumRetries.Add(1)
		}
		v, err := runAttempt(d, e, i, attempt, run)
		if err != nil {
			e.trace.Addf("exp %d attempt %d: %v", e.nonce, attempt, err)
			return err
		}
		for idx := range votes {
			if reflect.DeepEqual(votes[idx].val, v) {
				votes[idx].count++
				if votes[idx].count >= k {
					accepted = idx
					return nil
				}
				return errQuorumPending
			}
		}
		votes = append(votes, ballot{val: v, count: 1})
		if k == 1 {
			accepted = len(votes) - 1
			return nil
		}
		return errQuorumPending
	})
	if accepted >= 0 {
		return votes[accepted].val, nil
	}
	if len(votes) > 0 {
		// Quorum never formed: degrade to the plurality result rather than
		// failing the campaign, and say so in the log.
		best := 0
		for idx := range votes {
			if votes[idx].count > votes[best].count {
				best = idx
			}
		}
		e.trace.Addf("exp %d: no %d-of-%d quorum; accepting plurality result with %d votes",
			e.nonce, k, n, votes[best].count)
		return votes[best].val, nil
	}
	var zero T
	return zero, fmt.Errorf("discovery: experiment %d failed all %d attempts: %w", e.nonce, n, err)
}

// rowKey identifies one row of a decomposable experiment result: the slice
// slot (0 for plain maps) and the map key.
type rowKey struct {
	slot int
	key  any
}

// rowBallot is one candidate value for a row with its vote count; present is
// false for the "row absent in this attempt" vote.
type rowBallot struct {
	val     any
	present bool
	count   int
}

// rowVote tracks one row's ballots until a value gathers K votes and locks.
// Every decision depends only on the row's own per-attempt value sequence —
// never on other rows — which keeps accepted rows identical between filtered
// and unfiltered campaigns.
type rowVote struct {
	ballots []rowBallot
	locked  bool
	final   rowBallot
}

// backfillAbsent seeds a fresh rowVote with the implicit absent votes of the
// first `attempts` attempts, for a row first observed only later. The ballot
// locks immediately when those attempts already form an absent quorum —
// exactly as add would have locked it had the votes been cast one at a time —
// so a row absent for the first K+ attempts resolves absent even if a value
// appears afterwards (first-value-to-K-votes semantics).
func (rv *rowVote) backfillAbsent(attempts, k int) {
	if attempts <= 0 {
		return
	}
	b := rowBallot{count: attempts}
	rv.ballots = append(rv.ballots, b)
	if attempts >= k {
		rv.locked, rv.final = true, b
	}
}

func (rv *rowVote) add(val any, present bool, k int) {
	if rv.locked {
		return
	}
	for i := range rv.ballots {
		b := &rv.ballots[i]
		if b.present == present && (!present || reflect.DeepEqual(b.val, val)) {
			b.count++
			if b.count >= k {
				rv.locked, rv.final = true, *b
			}
			return
		}
	}
	rv.ballots = append(rv.ballots, rowBallot{val: val, present: present, count: 1})
	if k <= 1 {
		rv.locked, rv.final = true, rv.ballots[len(rv.ballots)-1]
	}
}

// resolve returns the locked value, or the plurality ballot (earliest wins
// ties) for a row that never reached quorum.
func (rv *rowVote) resolve() rowBallot {
	if rv.locked {
		return rv.final
	}
	best := 0
	for i := range rv.ballots {
		if rv.ballots[i].count > rv.ballots[best].count {
			best = i
		}
	}
	return rv.ballots[best]
}

// eachRow visits every (slot, key, value) row of a map or slice-of-maps
// result.
func eachRow(v reflect.Value, sliced bool, visit func(rk rowKey, val any)) {
	if sliced {
		for s := 0; s < v.Len(); s++ {
			m := v.Index(s)
			for it := m.MapRange(); it.Next(); {
				visit(rowKey{slot: s, key: it.Key().Interface()}, it.Value().Interface())
			}
		}
		return
	}
	for it := v.MapRange(); it.Next(); {
		visit(rowKey{key: it.Key().Interface()}, it.Value().Interface())
	}
}

// runRowQuorum is runQuorum's per-row voting path for map-shaped results.
func runRowQuorum[T any](d *Discovery, e *Exp, i, k, n int, backoff exec.Backoff, run func(*Exp, int) T) (T, error) {
	rt := reflect.TypeOf((*T)(nil)).Elem()
	sliced := rt.Kind() == reflect.Slice
	rows := make(map[rowKey]*rowVote)
	slots := 0 // observed slice length; schedule-fixed across attempts
	attempts := 0
	err := exec.Retry(context.Background(), n, backoff, func(attempt int) error {
		if attempt > 0 {
			d.quorumRetries.Add(1)
		}
		v, err := runAttempt(d, e, i, attempt, run)
		if err != nil {
			e.trace.Addf("exp %d attempt %d: %v", e.nonce, attempt, err)
			return err
		}
		attempts = attempt + 1
		rv := reflect.ValueOf(v)
		if sliced && rv.Len() > slots {
			slots = rv.Len()
		}
		seen := make(map[rowKey]bool)
		eachRow(rv, sliced, func(rk rowKey, val any) {
			vote := rows[rk]
			if vote == nil {
				vote = &rowVote{}
				// The row was absent from every earlier attempt: those are
				// implicit absent votes, backfilled so the ballot history
				// matches what an unfiltered run records.
				vote.backfillAbsent(attempt, k)
				rows[rk] = vote
			}
			seen[rk] = true
			vote.add(val, true, k)
		})
		for rk, vote := range rows {
			if !seen[rk] {
				vote.add(nil, false, k)
			}
		}
		// Done once every known row is locked and enough attempts ran that a
		// row absent throughout would itself be quorate as absent.
		if attempt+1 >= k {
			for _, vote := range rows {
				if !vote.locked {
					return errQuorumPending
				}
			}
			return nil
		}
		return errQuorumPending
	})
	var zero T
	if attempts == 0 {
		return zero, fmt.Errorf("discovery: experiment %d failed all %d attempts: %w", e.nonce, n, err)
	}
	unresolved := 0
	for _, vote := range rows {
		if !vote.locked {
			unresolved++
		}
	}
	if unresolved > 0 {
		e.trace.Addf("exp %d: %d of %d rows lacked %d-of-%d quorum; accepted per-row plurality",
			e.nonce, unresolved, len(rows), k, n)
	}
	if sliced {
		out := reflect.MakeSlice(rt, slots, slots)
		for rk, vote := range rows {
			b := vote.resolve()
			if !b.present {
				continue
			}
			m := out.Index(rk.slot)
			if m.IsNil() {
				m.Set(reflect.MakeMap(rt.Elem()))
			}
			m.SetMapIndex(reflect.ValueOf(rk.key), reflect.ValueOf(b.val))
		}
		return out.Interface().(T), nil
	}
	out := reflect.MakeMapWithSize(rt, len(rows))
	for rk, vote := range rows {
		b := vote.resolve()
		if !b.present {
			continue
		}
		out.SetMapIndex(reflect.ValueOf(rk.key), reflect.ValueOf(b.val))
	}
	return out.Interface().(T), nil
}

// runAttempt runs a single experiment attempt on a private Exp carrying this
// attempt's fault injector and trace. Its probe count and trace fold into
// the parent only on completion: a timed-out attempt's goroutine keeps
// running detached (see exec.RunTimeout) and must not share state with later
// attempts.
func runAttempt[T any](d *Discovery, e *Exp, i, attempt int, run func(*Exp, int) T) (T, error) {
	a := &Exp{d: d, nonce: e.nonce, attempt: attempt, trace: &fault.Trace{}}
	if d.Cfg.Faults.Enabled() {
		a.inj = d.Cfg.Faults.Injector(e.nonce, attempt, a.trace)
	}
	var v T
	op := func() error {
		v = run(a, i)
		a.release()
		return nil
	}
	var err error
	if t := d.Cfg.ExperimentTimeout; t > 0 {
		err = exec.RunTimeout(t, op)
	} else {
		err = op()
	}
	if err != nil {
		var zero T
		return zero, err
	}
	e.probes += a.probes
	e.trace.Append(a.trace.Entries()...)
	return v, nil
}
