package discovery

// This file is the self-healing half of the campaign runner: every batch
// experiment flows through runBatch → runExperiment → runQuorum →
// runAttempt, which together add checkpoint replay, K-of-N quorum
// re-measurement under injected faults, per-attempt timeouts, and a
// deterministic campaign fault log on top of the plain worker-pool fan-out.
// With Cfg.Faults disabled and no journal installed, the path reduces
// exactly to the old single-attempt batch — byte-identical results.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"time"

	"anyopt/internal/exec"
	"anyopt/internal/fault"
)

// JournalEntry is one checkpointed experiment result. Result holds the
// experiment's JSON-encoded return value; Probes and Trace restore the
// campaign's accounting and fault log on replay so a resumed campaign is
// byte-identical to an uninterrupted one.
type JournalEntry struct {
	Kind   string          `json:"kind"`
	Result json.RawMessage `json:"result"`
	Probes uint64          `json:"probes"`
	Trace  []string        `json:"trace,omitempty"`
}

// Journal checkpoints completed experiments, keyed by campaign nonce — the
// experiment's position in the deterministic submission schedule. Lookup and
// Record are called concurrently from worker goroutines; implementations
// must be safe for that. internal/campaign.Checkpoint is the file-backed
// implementation.
type Journal interface {
	Lookup(nonce uint64) (JournalEntry, bool)
	Record(nonce uint64, ent JournalEntry) error
}

// SetJournal installs (or, with nil, removes) the campaign checkpoint
// journal. Install it before the first experiment: replay matches entries by
// nonce, so the call sequence must reproduce the schedule that wrote them.
func (d *Discovery) SetJournal(j Journal) { d.journal = j }

// Err returns the first experiment-infrastructure error — checkpoint I/O
// failure, checkpoint/schedule mismatch, or an experiment whose every
// attempt failed — encountered by batch APIs that do not return errors
// themselves. Campaign drivers should check it after a run.
func (d *Discovery) Err() error { return d.runErr }

// FaultLog returns the campaign's failure trace: injected-fault events in
// experiment submission order plus quarantine and degradation notes. For a
// fixed fault seed and call sequence the log is reproduced verbatim.
func (d *Discovery) FaultLog() []string { return d.faultLog }

// QuarantineSite removes a site from the rest of the campaign: it loses
// representative eligibility and its pairwise experiments are skipped (slots
// still consumed, keeping the schedule aligned). The reason is recorded in
// the fault log — degradation is never silent.
func (d *Discovery) QuarantineSite(id int, reason string) {
	if d.quarantined == nil {
		d.quarantined = make(map[int]string)
	}
	if _, ok := d.quarantined[id]; ok {
		return
	}
	d.quarantined[id] = reason
	d.faultLog = append(d.faultLog, fmt.Sprintf("quarantine site %d: %s", id, reason))
}

// IsQuarantined reports whether the site has been quarantined.
func (d *Discovery) IsQuarantined(id int) bool {
	_, ok := d.quarantined[id]
	return ok
}

// Quarantined returns a copy of the quarantine map (site ID → reason).
func (d *Discovery) Quarantined() map[int]string {
	if len(d.quarantined) == 0 {
		return nil
	}
	out := make(map[int]string, len(d.quarantined))
	for id, why := range d.quarantined {
		out[id] = why
	}
	return out
}

// QuarantinedSites returns the quarantined site IDs in ascending order.
func (d *Discovery) QuarantinedSites() []int {
	out := make([]int, 0, len(d.quarantined))
	for id := range d.quarantined {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// RestoreQuarantine replaces the quarantine set, e.g. when reloading a saved
// campaign whose snapshot recorded dead sites.
func (d *Discovery) RestoreQuarantine(q map[int]string) {
	d.quarantined = nil
	for _, id := range sortedIntKeys(q) {
		d.QuarantineSite(id, q[id])
	}
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// runBatch runs n experiments through the worker pool and gathers their
// results in submission order. Nonces are drawn from the campaign counter in
// submission order before any experiment starts; probe counts and fault
// traces fold back into the campaign totals after all finish, also in
// submission order, so accounting and the fault log never depend on worker
// scheduling. An infrastructure error (checkpoint I/O, schedule mismatch)
// cancels the batch — in-flight experiments finish, queued ones never start
// — and is surfaced through Err.
func runBatch[T any](d *Discovery, kind string, n int, run func(e *Exp, i int) T) []T {
	exps := make([]*Exp, n)
	for i := range exps {
		d.nonce++
		exps[i] = &Exp{d: d, nonce: d.nonce}
	}
	out := make([]T, n)
	parent := d.ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	err := d.pool.ForEachCtx(ctx, n, func(ctx context.Context, i int) error {
		v, err := runExperiment(d, exps[i], kind, i, run)
		if err != nil {
			return err
		}
		out[i] = v
		d.completed.Add(1)
		return nil
	})
	if err != nil && d.runErr == nil {
		d.runErr = err
	}
	for _, e := range exps {
		d.ProbesSent += e.probes
		d.faultLog = append(d.faultLog, e.trace.Entries()...)
	}
	return out
}

// runExperiment runs one experiment with checkpoint replay: a journaled
// result short-circuits the run (restoring its probe count and fault trace),
// a fresh result is journaled after the quorum accepts it.
func runExperiment[T any](d *Discovery, e *Exp, kind string, i int, run func(*Exp, int) T) (T, error) {
	var zero T
	if d.journal != nil {
		if ent, ok := d.journal.Lookup(e.nonce); ok {
			if ent.Kind != kind {
				return zero, fmt.Errorf(
					"discovery: checkpoint entry for experiment %d is %q, want %q (campaign schedule changed?)",
					e.nonce, ent.Kind, kind)
			}
			var v T
			if err := json.Unmarshal(ent.Result, &v); err != nil {
				return zero, fmt.Errorf("discovery: checkpoint entry for experiment %d: %w", e.nonce, err)
			}
			e.probes = ent.Probes
			if len(ent.Trace) > 0 {
				e.trace = &fault.Trace{}
				e.trace.Append(ent.Trace...)
			}
			return v, nil
		}
	}
	v, err := runQuorum(d, e, i, run)
	if err != nil {
		return zero, err
	}
	if d.journal != nil {
		raw, merr := json.Marshal(v)
		if merr != nil {
			return zero, fmt.Errorf("discovery: encoding experiment %d for checkpoint: %w", e.nonce, merr)
		}
		ent := JournalEntry{Kind: kind, Result: raw, Probes: e.probes, Trace: e.trace.Entries()}
		if jerr := d.journal.Record(e.nonce, ent); jerr != nil {
			return zero, fmt.Errorf("discovery: checkpointing experiment %d: %w", e.nonce, jerr)
		}
	}
	return v, nil
}

// errQuorumPending signals exec.Retry that more attempts are needed — the
// current result has not yet gathered K matching votes.
var errQuorumPending = errors.New("discovery: quorum pending")

// runQuorum runs one experiment to an accepted result. Fault-free it is a
// single attempt, exactly the pre-chaos behavior. With faults enabled it
// re-runs the experiment — each attempt drawing fresh faults but reusing the
// experiment's jitter nonce and noise seed — until K attempts agree exactly
// (reflect.DeepEqual on the result). Because only the faults vary between
// attempts, two attempts agreeing almost surely means the faults did not
// affect either, so the quorum converges on the fault-free result. If no
// quorum forms within N attempts the plurality result is accepted and the
// degradation logged.
func runQuorum[T any](d *Discovery, e *Exp, i int, run func(*Exp, int) T) (T, error) {
	if !d.Cfg.Faults.Enabled() {
		return runAttempt(d, e, i, 0, run)
	}
	e.trace = &fault.Trace{}
	k, n := d.Cfg.QuorumK, d.Cfg.QuorumN
	if k <= 0 {
		k = 2
	}
	if n < k {
		n = k + 3
	}
	backoff := exec.Backoff{Base: d.Cfg.RetryBase, Max: 500 * time.Millisecond}
	if backoff.Base <= 0 {
		backoff.Base = time.Millisecond
	}
	type ballot struct {
		val   T
		count int
	}
	var votes []ballot
	accepted := -1
	err := exec.Retry(context.Background(), n, backoff, func(attempt int) error {
		v, err := runAttempt(d, e, i, attempt, run)
		if err != nil {
			e.trace.Addf("exp %d attempt %d: %v", e.nonce, attempt, err)
			return err
		}
		for idx := range votes {
			if reflect.DeepEqual(votes[idx].val, v) {
				votes[idx].count++
				if votes[idx].count >= k {
					accepted = idx
					return nil
				}
				return errQuorumPending
			}
		}
		votes = append(votes, ballot{val: v, count: 1})
		if k == 1 {
			accepted = len(votes) - 1
			return nil
		}
		return errQuorumPending
	})
	if accepted >= 0 {
		return votes[accepted].val, nil
	}
	if len(votes) > 0 {
		// Quorum never formed: degrade to the plurality result rather than
		// failing the campaign, and say so in the log.
		best := 0
		for idx := range votes {
			if votes[idx].count > votes[best].count {
				best = idx
			}
		}
		e.trace.Addf("exp %d: no %d-of-%d quorum; accepting plurality result with %d votes",
			e.nonce, k, n, votes[best].count)
		return votes[best].val, nil
	}
	var zero T
	return zero, fmt.Errorf("discovery: experiment %d failed all %d attempts: %w", e.nonce, n, err)
}

// runAttempt runs a single experiment attempt on a private Exp carrying this
// attempt's fault injector and trace. Its probe count and trace fold into
// the parent only on completion: a timed-out attempt's goroutine keeps
// running detached (see exec.RunTimeout) and must not share state with later
// attempts.
func runAttempt[T any](d *Discovery, e *Exp, i, attempt int, run func(*Exp, int) T) (T, error) {
	a := &Exp{d: d, nonce: e.nonce, attempt: attempt, trace: &fault.Trace{}}
	if d.Cfg.Faults.Enabled() {
		a.inj = d.Cfg.Faults.Injector(e.nonce, attempt, a.trace)
	}
	var v T
	op := func() error {
		v = run(a, i)
		a.release()
		return nil
	}
	var err error
	if t := d.Cfg.ExperimentTimeout; t > 0 {
		err = exec.RunTimeout(t, op)
	} else {
		err = op()
	}
	if err != nil {
		var zero T
		return zero, err
	}
	e.probes += a.probes
	e.trace.Append(a.trace.Entries()...)
	return v, nil
}
