package discovery

import (
	"reflect"
	"runtime"
	"strconv"
	"testing"

	"anyopt/internal/core/prefs"
	"anyopt/internal/fault"
	"anyopt/internal/topology"
)

// pooledCampaign captures everything simulator-session reuse could corrupt:
// measurement outputs, schedule accounting, and the campaign fault trace.
type pooledCampaign struct {
	RTTs        map[int]map[prefs.Client]int64
	Provider    []prefs.DumpedRelation
	Sites       map[topology.ASN][]prefs.DumpedRelation
	Quarantined map[int]string
	FaultLog    []string
	Experiments int
	Slots       int
	Probes      uint64
}

// runPooledCampaign executes the mini-campaign — singleton RTTs for every
// representative-bearing site, the provider preference matrix, and site
// preferences for every multi-site provider — with the given worker count,
// fault configuration (nil = fault-free), and simulator-reuse mode.
func runPooledCampaign(t *testing.T, workers int, fresh bool, faults *fault.Config) pooledCampaign {
	t.Helper()
	tb := newTB(t)
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.Noisy = false
	cfg.Faults = faults
	cfg.FreshSims = fresh
	d := New(tb, cfg)

	tbl, err := d.MeasureRTTs(chaosSites)
	if err != nil {
		t.Fatal(err)
	}
	provider, err := d.ProviderPrefs(d.Representatives())
	if err != nil {
		t.Fatal(err)
	}
	sites := make(map[topology.ASN][]prefs.DumpedRelation)
	for _, p := range tb.TransitProviders() {
		if len(tb.SitesOfTransit(p)) < 2 {
			continue
		}
		st, err := d.SitePrefs(p)
		if err != nil {
			t.Fatal(err)
		}
		sites[p] = st.Dump()
	}
	if err := d.Err(); err != nil {
		t.Fatalf("campaign infrastructure error: %v", err)
	}
	return pooledCampaign{
		RTTs:        tbl.Export(),
		Provider:    provider.Dump(),
		Sites:       sites,
		Quarantined: d.Quarantined(),
		FaultLog:    d.FaultLog(),
		Experiments: d.Experiments,
		Slots:       d.Slots,
		Probes:      d.ProbesSent,
	}
}

// paperFaults builds the paper fault scenario used by the differential reuse
// tests — the same mix `-faults paper` selects on the CLI.
func paperFaults(t *testing.T, seed int64) *fault.Config {
	t.Helper()
	cfg, err := fault.Scenario("paper", seed)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// diffPooledCampaign reports field-level differences so a reuse bug names the
// output it corrupted instead of a bare DeepEqual failure.
func diffPooledCampaign(t *testing.T, label string, fresh, pooled pooledCampaign) {
	t.Helper()
	if reflect.DeepEqual(fresh, pooled) {
		return
	}
	if !reflect.DeepEqual(fresh.RTTs, pooled.RTTs) {
		t.Errorf("%s: RTT tables diverged", label)
	}
	if !reflect.DeepEqual(fresh.Provider, pooled.Provider) {
		t.Errorf("%s: provider preference matrices diverged", label)
	}
	if !reflect.DeepEqual(fresh.Sites, pooled.Sites) {
		t.Errorf("%s: site preference stores diverged", label)
	}
	if !reflect.DeepEqual(fresh.Quarantined, pooled.Quarantined) {
		t.Errorf("%s: quarantine sets diverged: %v vs %v", label, fresh.Quarantined, pooled.Quarantined)
	}
	if !reflect.DeepEqual(fresh.FaultLog, pooled.FaultLog) {
		t.Errorf("%s: fault traces diverged (%d vs %d lines)", label, len(fresh.FaultLog), len(pooled.FaultLog))
	}
	if fresh.Experiments != pooled.Experiments || fresh.Slots != pooled.Slots || fresh.Probes != pooled.Probes {
		t.Errorf("%s: counters diverged: fresh exps=%d slots=%d probes=%d, pooled exps=%d slots=%d probes=%d",
			label, fresh.Experiments, fresh.Slots, fresh.Probes,
			pooled.Experiments, pooled.Slots, pooled.Probes)
	}
	t.Fatalf("%s: pooled campaign diverged from fresh-Sim campaign", label)
}

// TestPooledCampaignMatchesFreshSims is the differential acceptance test for
// simulator session reuse: a campaign whose experiments recycle converged
// sims through Sim.Reset must produce byte-identical preference matrices,
// RTT tables, counters, and fault traces to one that constructs a fresh
// bgp.Sim per experiment — fault-free and under the paper fault scenario, at
// one worker and at GOMAXPROCS. Runs under -race via `make race`.
func TestPooledCampaignMatchesFreshSims(t *testing.T) {
	for _, tc := range []struct {
		name   string
		faults func() *fault.Config
	}{
		{"fault-free", func() *fault.Config { return nil }},
		{"faults-paper", func() *fault.Config { return paperFaults(t, 7) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
				fresh := runPooledCampaign(t, workers, true, tc.faults())
				if fresh.Experiments == 0 || fresh.Probes == 0 {
					t.Fatalf("campaign ran no experiments (exps=%d probes=%d)", fresh.Experiments, fresh.Probes)
				}
				pooled := runPooledCampaign(t, workers, false, tc.faults())
				diffPooledCampaign(t, tc.name+"/workers="+strconv.Itoa(workers), fresh, pooled)
			}
		})
	}
}
