// Package discovery plans and runs AnyOpt's measurement experiments (§3,
// §4.3, §4.5): singleton announcements for RTT measurement, order-controlled
// pairwise announcements for provider-level preference discovery, intra-AS
// pairwise experiments for site-level preferences, and the naive
// (simultaneous-announcement) variants the paper compares against.
//
// Every experiment runs on a fresh BGP simulation with a fresh jitter nonce,
// reflecting that real experiments happen hours apart on an Internet whose
// races never replay identically. The prefix is withdrawn between
// experiments, as the paper does.
//
// Experiments are mutually independent, so campaign drivers submit them in
// batches to a worker pool (internal/exec). Nonces are assigned at
// submission time, in submission order, before any experiment starts —
// making every experiment's outcome a pure function of its inputs and the
// campaign's results byte-identical whether the batch runs on one worker or
// many.
//
// The campaign self-heals under injected faults (see resilience.go): each
// experiment is re-run until K attempts agree (quorum), dead sites are
// quarantined and their experiment slots skipped (keeping the nonce schedule
// aligned with a fault-free run), and an optional Journal checkpoints
// completed experiments so a killed campaign resumes byte-identically.
package discovery

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anyopt/internal/bgp"
	"anyopt/internal/core/prefs"
	"anyopt/internal/exec"
	"anyopt/internal/fault"
	"anyopt/internal/probe"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// Config parameterizes a discovery campaign.
type Config struct {
	// SimCfg is the base simulator configuration; JitterNonce is replaced
	// per experiment.
	SimCfg bgp.Config
	// Spacing separates ordered announcements within one experiment (§5.1
	// uses six minutes).
	Spacing time.Duration
	// NoiseSeed seeds per-experiment measurement noise; Noisy toggles it.
	NoiseSeed int64
	Noisy     bool
	// ProbeAttempts overrides the per-measurement attempt count (default 7).
	ProbeAttempts int
	// Workers bounds how many experiments run concurrently; <= 0 selects
	// exec.DefaultWorkers (ANYOPT_WORKERS or GOMAXPROCS).
	Workers int

	// Faults enables deterministic fault injection (nil or all-zero rates =
	// fault-free, byte-identical to a build without the chaos layer).
	Faults *fault.Config
	// QuorumK/QuorumN govern self-healing re-measurement when faults are
	// enabled: an experiment's result is accepted once K of up to N attempts
	// agree exactly (defaults 2 of 5). Attempts reuse the experiment's
	// jitter nonce and noise seed, so a fault-free attempt reproduces the
	// fault-free result exactly — which is why agreement converges to it.
	QuorumK, QuorumN int
	// ExperimentTimeout bounds one experiment attempt in wall-clock time;
	// 0 (the default) disables it. A timeout abandons the attempt's
	// goroutine and retries with fresh faults; because it depends on
	// wall-clock speed it makes campaign results machine-dependent, so
	// leave it off when byte-reproducibility matters.
	ExperimentTimeout time.Duration
	// RetryBase is the base wall-clock backoff between quorum attempts
	// (exponential, bounded; default 1ms — attempts are simulated, so the
	// backoff models pacing, not load shedding).
	RetryBase time.Duration

	// FreshSims disables simulator session reuse: every experiment then
	// constructs a brand-new bgp.Sim instead of recycling a warm one through
	// Sim.Reset. Reuse is proven byte-identical by the differential tests;
	// this switch exists for those tests and for bisecting suspected reuse
	// bugs.
	FreshSims bool

	// ShardLo/ShardHi, when ShardHi > 0, restrict fresh experiment execution
	// to campaign nonces in the half-open range [ShardLo, ShardHi): an
	// out-of-range experiment still consumes its nonce — keeping the
	// deterministic schedule aligned with an unsharded campaign — but is
	// skipped (zero result) instead of run, unless the journal already holds
	// it, in which case it replays as usual. Shards of one campaign run as
	// independent OS processes, each journaling its own nonce range to its
	// own checkpoint file; merging the journals and replaying the schedule
	// reproduces the single-process campaign byte for byte (see
	// internal/campaign.MergeShardCheckpoints). Sharded campaigns must run
	// fault-free: quarantine is cross-shard state no single shard can
	// observe, so runBatch rejects the combination.
	ShardLo, ShardHi uint64

	// TargetFilter, when non-nil, restricts probing to targets whose client
	// AS is in the set. Experiments still run the full BGP schedule (every
	// announcement, every nonce), so routing state matches an unfiltered
	// campaign exactly; only the measurement loop skips out-of-set targets.
	// Combined with per-target noise reseeding (probe.Prober.BeginTarget),
	// a filtered campaign reproduces the unfiltered campaign's rows for the
	// selected clients byte-for-byte — the contract the churn reconciler's
	// cone-scoped repair is built on. Dead-site detection is disabled under
	// a filter (an empty filtered row is expected, not an outage); callers
	// restore quarantine from the snapshot being repaired instead.
	TargetFilter map[prefs.Client]bool
}

// DefaultConfig returns the paper-faithful campaign settings.
func DefaultConfig() Config {
	return Config{
		SimCfg:  bgp.DefaultConfig(),
		Spacing: 6 * time.Minute,
		Noisy:   true,
	}
}

// Discovery runs experiments against one testbed.
type Discovery struct {
	TB  *testbed.Testbed
	Cfg Config

	// Experiments counts BGP experiments run, for §4.5 schedule accounting.
	Experiments int
	// Slots counts sequential experiment slots consumed; parallel prefixes
	// pack several experiments into one slot (§4.5).
	Slots int
	// ProbesSent counts measurement packets.
	ProbesSent uint64

	nonce uint64
	pool  *exec.Pool

	// ctx, when set, parents every batch: cancelling it stops queued
	// experiments at the next batch boundary (in-flight ones finish). Nil
	// means context.Background — the campaign runs to completion.
	ctx context.Context

	// completed counts experiments finished so far, including checkpoint
	// replays. Unlike Experiments (bumped once per batch on the caller's
	// goroutine), completed advances from worker goroutines as results land,
	// so progress reporters may read it concurrently via
	// CompletedExperiments.
	completed atomic.Uint64

	// poolHits / poolMisses count warm-session reuse in acquireSim: a hit
	// recycles a converged simulator through Sim.Reset, a miss constructs a
	// fresh one. Exposed through SimPoolStats for the /metrics endpoint.
	poolHits, poolMisses atomic.Uint64

	// quorumRetries counts experiment attempts beyond each experiment's
	// first — the price of K-of-N re-measurement under faults. Advances from
	// worker goroutines; read via QuorumRetries.
	quorumRetries atomic.Uint64

	// simPool recycles converged simulators across experiments: Sim.Reset
	// clears a session in place, so workers reuse warm topology-sized state
	// (maps, slabs, arenas, the event pool) instead of reallocating it for
	// each of the campaign's N² experiments. sync.Pool's per-P caching means
	// each worker mostly gets its own sims back, without contention.
	simPool sync.Pool

	// quarantined maps dead site IDs to the reason they were pulled from
	// the campaign; see QuarantineSite.
	quarantined map[int]string
	// faultLog accumulates the campaign's failure trace: per-experiment
	// injector traces folded in submission order plus quarantine and
	// degradation notes. Deterministic for a given fault seed.
	faultLog []string
	// journal, when set, checkpoints completed experiments by nonce.
	journal Journal
	// runErr records the first experiment-infrastructure error (checkpoint
	// I/O, schedule mismatch) from batch APIs that return no error.
	runErr error
}

// New creates a discovery campaign over tb.
func New(tb *testbed.Testbed, cfg Config) *Discovery {
	if cfg.Spacing <= 0 {
		cfg.Spacing = 6 * time.Minute
	}
	return &Discovery{TB: tb, Cfg: cfg, pool: exec.New(cfg.Workers)}
}

// SetWorkers re-targets the executor; n <= 0 selects exec.DefaultWorkers.
// Worker count never affects results, only wall-clock.
func (d *Discovery) SetWorkers(n int) { d.pool = exec.New(n) }

// Workers returns the executor's worker count.
func (d *Discovery) Workers() int { return d.pool.Workers() }

// SetContext parents every subsequent batch on ctx: cancelling it drains the
// queue (in-flight experiments finish, queued ones never start) and surfaces
// ctx's error through Err. Install it before the campaign starts; nil
// restores the default context.Background. This is how async discovery jobs
// make a running campaign cancellable without polluting every batch API with
// a context parameter.
func (d *Discovery) SetContext(ctx context.Context) { d.ctx = ctx }

// SeedNonces moves the campaign nonce counter to base. Distinct Discovery
// sessions serving concurrent ad-hoc measurements seed disjoint ranges so
// their experiments draw distinct jitter nonces; a campaign that must replay
// a checkpoint byte-identically keeps the default schedule (fresh Discovery,
// nonces from zero) instead.
func (d *Discovery) SeedNonces(base uint64) { d.nonce = base }

// CompletedExperiments returns the number of experiments finished so far,
// advancing while a batch is in flight. Safe to call from any goroutine.
func (d *Discovery) CompletedExperiments() uint64 { return d.completed.Load() }

// SimPoolStats returns how many experiments recycled a warm simulator (hits)
// versus constructing a fresh one (misses). Safe to call from any goroutine.
func (d *Discovery) SimPoolStats() (hits, misses uint64) {
	return d.poolHits.Load(), d.poolMisses.Load()
}

// QuorumRetries returns how many experiment attempts ran beyond each
// experiment's first — K-of-N re-measurement cost. Safe from any goroutine.
func (d *Discovery) QuorumRetries() uint64 { return d.quorumRetries.Load() }

// Exp is the context of one experiment attempt inside a batch: the jitter
// nonce fixed at submission time, a private probe counter, and — when fault
// injection is enabled — the attempt's fault injector and trace. Everything
// an experiment reads through it — topology, testbed, campaign config — is
// immutable while the batch runs, so experiments are safe to run on any
// worker in any order.
type Exp struct {
	d       *Discovery
	nonce   uint64
	attempt int
	probes  uint64
	inj     *fault.Injector
	trace   *fault.Trace
	// sims tracks the simulators this attempt acquired, for release back to
	// the campaign pool when the attempt completes.
	sims []*bgp.Sim
}

// sim builds this experiment's simulation with its own jitter nonce,
// modeling an independent experiment run. With fault injection enabled it
// also arms the chaos layer: the update drop/delay hook, permanent link
// failures for blacked-out sites, and this attempt's scheduled session
// flaps.
func (e *Exp) sim() *bgp.Sim {
	cfg := e.d.Cfg.SimCfg
	cfg.JitterNonce = e.nonce
	if e.inj != nil {
		cfg.Chaos = e.inj
	}
	sim := e.d.acquireSim(cfg)
	e.sims = append(e.sims, sim)
	// Persistent churn outages survive across experiments (unlike injected
	// flaps): Sim.Reset clears failed-link state, so every session re-fails
	// the topology's down links before running.
	for _, id := range e.d.TB.Topo.DownLinks() {
		sim.FailLink(id)
	}
	if e.inj != nil {
		for _, id := range e.inj.BlackoutSites() {
			site := e.d.TB.Site(id)
			if site == nil {
				continue
			}
			sim.FailLink(site.TransitLink)
			for _, pl := range site.PeerLinks {
				sim.FailLink(pl)
			}
		}
		for _, fl := range e.inj.FlapPlan(e.d.flapCandidates()) {
			fl := fl
			sim.Engine.Schedule(fl.DownAt, func() { sim.FailLink(fl.Link) })
			sim.Engine.Schedule(fl.UpAt, func() { sim.RestoreLink(fl.Link) })
		}
	}
	return sim
}

// acquireSim hands out a simulator configured with cfg: a recycled warm
// session (reset in place) when the pool has one, a new construction
// otherwise or when FreshSims disables reuse.
func (d *Discovery) acquireSim(cfg bgp.Config) *bgp.Sim {
	if !d.Cfg.FreshSims {
		if v := d.simPool.Get(); v != nil {
			sim := v.(*bgp.Sim)
			sim.Reset(cfg)
			d.poolHits.Add(1)
			return sim
		}
	}
	d.poolMisses.Add(1)
	return bgp.New(d.TB.Topo, cfg)
}

// release returns the attempt's simulators to the campaign pool. It must run
// on the attempt's own goroutine, after its last use of them: an attempt
// abandoned by exec.RunTimeout keeps exclusive ownership of its sims until
// its detached goroutine finishes, so a timed-out attempt can never hand a
// still-running session to another experiment.
func (e *Exp) release() {
	if !e.d.Cfg.FreshSims {
		for _, s := range e.sims {
			e.d.simPool.Put(s)
		}
	}
	e.sims = nil
}

// flapCandidates lists the links eligible for injected session flaps: every
// live site's transit link. Blacked-out sites are excluded so a flap's
// restore can never resurrect a link the blackout permanently failed, and
// churn-downed links are excluded for the same reason — a flap's restore
// must not resurrect a persistent outage.
func (d *Discovery) flapCandidates() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(d.TB.Sites))
	for _, s := range d.TB.Sites {
		if d.Cfg.Faults.BlackedOut(s.ID) || d.TB.Topo.LinkIsDown(s.TransitLink) {
			continue
		}
		out = append(out, s.TransitLink)
	}
	return out
}

// targetIncluded reports whether the target's client AS passes the campaign's
// TargetFilter (every target passes a nil filter).
func (d *Discovery) targetIncluded(as topology.ASN) bool {
	return d.Cfg.TargetFilter == nil || d.Cfg.TargetFilter[prefs.Client(as)]
}

// FilteredTargets returns how many of the testbed's targets the campaign will
// probe versus the total, for repair-fraction accounting.
func (d *Discovery) FilteredTargets() (probed, total int) {
	total = len(d.TB.Topo.Targets)
	if d.Cfg.TargetFilter == nil {
		return total, total
	}
	for _, tg := range d.TB.Topo.Targets {
		if d.targetIncluded(tg.AS) {
			probed++
		}
	}
	return probed, total
}

// proberAt builds a measurement prober over sim for the given test prefix,
// with per-experiment noise offset by seedExtra (parallel-prefix slots give
// each prefix its own noise stream).
func (e *Exp) proberAt(sim *bgp.Sim, prefix bgp.PrefixID, seedExtra int64) *probe.Prober {
	var noise *probe.NoiseModel
	if e.d.Cfg.Noisy {
		noise = probe.DefaultNoise(e.d.Cfg.NoiseSeed + int64(e.nonce)*7919 + seedExtra)
	}
	fab := probe.NewSimFabric(e.d.TB, sim, prefix, noise)
	if e.inj != nil {
		fab.Fault = e.inj
	}
	cfg := probe.DefaultConfig(e.d.TB.OrchAddr, e.d.TB.AnycastAddrs[prefix])
	if e.d.Cfg.ProbeAttempts > 0 {
		cfg.Attempts = e.d.Cfg.ProbeAttempts
	}
	return probe.New(fab, cfg, sim.Engine.Now())
}

// prober builds the default prober (prefix 0) over sim.
func (e *Exp) prober(sim *bgp.Sim) *probe.Prober { return e.proberAt(sim, 0, 0) }

// deploy announces siteIDs in order (spaced) plus any peering links on a
// fresh simulation and returns it.
func (e *Exp) deploy(siteIDs []int, peers []topology.LinkID) *bgp.Sim {
	sim := e.sim()
	dep := e.d.TB.NewDeployment(sim, 0)
	dep.Spacing = e.d.Cfg.Spacing
	dep.AnnounceSites(siteIDs...)
	for _, pl := range peers {
		dep.EnablePeer(pl)
	}
	return sim
}

// deploySimultaneous announces both sites at the same instant on a fresh
// simulation, leaving arrival order to jitter.
func (e *Exp) deploySimultaneous(a, b int) *bgp.Sim {
	sim := e.sim()
	dep := e.d.TB.NewDeployment(sim, 0)
	dep.AnnounceSitesSimultaneously(a, b)
	return sim
}

// Observation is one client's measured state under a deployed configuration.
type Observation struct {
	// Site is the catchment site ID.
	Site int
	// Link is the exact origin-side link the reply entered over (transit or
	// peering), decoded from the per-interface GRE key.
	Link topology.LinkID
	// RTT is the measured client↔site RTT; valid only when HasRTT.
	RTT    time.Duration
	HasRTT bool
}

// observe measures every target's catchment (and optionally RTT) under the
// current routing state. Targets whose probes are lost or unroutable are
// absent from the result.
func (e *Exp) observe(p *probe.Prober, withRTT bool) map[prefs.Client]Observation {
	tb := e.d.TB
	out := make(map[prefs.Client]Observation, len(tb.Topo.Targets))
	for _, tg := range tb.Topo.Targets {
		if !e.d.targetIncluded(tg.AS) {
			continue
		}
		// Rewind the noise/fault streams to this target's position: each
		// target's measurement is then a pure function of (experiment,
		// target), independent of which other targets were probed — what
		// keeps a filtered campaign byte-identical to a full one.
		p.BeginTarget(uint64(tg.AS))
		key, err := p.CatchmentRetry(tg.Addr, 3)
		if err != nil {
			continue
		}
		site := tb.SiteByTunnelKey(key)
		link, okLink := tb.LinkByTunnelKey(key)
		if site == nil || !okLink {
			continue
		}
		obs := Observation{Site: site.ID, Link: link}
		if withRTT {
			if rtt, err := p.RTT(site.TunnelKey, site.TunnelAddr, site.TunnelRTT, tg.Addr); err == nil {
				obs.RTT, obs.HasRTT = rtt, true
			}
		}
		out[prefs.Client(tg.AS)] = obs
	}
	e.probes += p.Sent
	return out
}

// catchments reduces observe to site IDs, for preference discovery.
func (e *Exp) catchments(p *probe.Prober) map[prefs.Client]int {
	out := make(map[prefs.Client]int)
	for c, obs := range e.observe(p, false) {
		out[c] = obs.Site
	}
	return out
}

// singletonRTTs announces site id alone and measures every target's RTT to
// it through the site's tunnel.
func (e *Exp) singletonRTTs(id int) map[prefs.Client]time.Duration {
	site := e.d.TB.Site(id)
	sim := e.sim()
	dep := e.d.TB.NewDeployment(sim, 0)
	dep.AnnounceSites(id)
	p := e.prober(sim)

	m := make(map[prefs.Client]time.Duration, len(e.d.TB.Topo.Targets))
	for _, tg := range e.d.TB.Topo.Targets {
		if !e.d.targetIncluded(tg.AS) {
			continue
		}
		p.BeginTarget(uint64(tg.AS))
		rtt, err := p.RTT(site.TunnelKey, site.TunnelAddr, site.TunnelRTT, tg.Addr)
		if err != nil {
			continue
		}
		m[prefs.Client(tg.AS)] = rtt
	}
	e.probes += p.Sent
	return m
}

// PeerDeployment describes one experiment for RunConfigurationsWithPeers:
// sites announced in order, then peering links enabled.
type PeerDeployment struct {
	Sites []int
	Peers []topology.LinkID
}

// RunConfigurationsWithPeers runs one deployment experiment per entry across
// the worker pool and returns full per-client observations (including RTTs)
// in entry order — the workhorse of the one-pass peering experiments (§4.4).
func (d *Discovery) RunConfigurationsWithPeers(deps []PeerDeployment) []map[prefs.Client]Observation {
	out := runBatch(d, "peers", len(deps), func(e *Exp, i int) map[prefs.Client]Observation {
		sim := e.deploy(deps[i].Sites, deps[i].Peers)
		return e.observe(e.prober(sim), true)
	})
	d.Experiments += len(deps)
	return out
}

// RunConfigurationWithPeers deploys site IDs in announcement order, then
// additionally announces the given peering links (after the sites), and
// returns full per-client observations including RTTs.
func (d *Discovery) RunConfigurationWithPeers(siteIDs []int, peers []topology.LinkID) map[prefs.Client]Observation {
	return d.RunConfigurationsWithPeers([]PeerDeployment{{Sites: siteIDs, Peers: peers}})[0]
}

// RunConfigurations runs one ordered deployment per configuration across the
// worker pool and returns measured catchments in configuration order,
// byte-identical to calling RunConfiguration once per entry.
func (d *Discovery) RunConfigurations(configs [][]int) []map[prefs.Client]int {
	out := runBatch(d, "config", len(configs), func(e *Exp, i int) map[prefs.Client]int {
		sim := e.deploy(configs[i], nil)
		return e.catchments(e.prober(sim))
	})
	d.Experiments += len(configs)
	return out
}

// RunConfiguration deploys the given site IDs in announcement order (spaced)
// and measures every target's catchment — the "deploy and measure" step of
// §5.2. It returns the measured catchments (site IDs per client).
func (d *Discovery) RunConfiguration(siteIDs []int) map[prefs.Client]int {
	return d.RunConfigurations([][]int{siteIDs})[0]
}

// ConfigResult is one deployment's measured catchments and RTTs.
type ConfigResult struct {
	Catchments map[prefs.Client]int
	RTTs       map[prefs.Client]time.Duration
}

// RunConfigurationsRTTs runs one deployment per configuration across the
// worker pool, measuring each target's catchment and the RTT to it, and
// returns results in configuration order.
func (d *Discovery) RunConfigurationsRTTs(configs [][]int) []ConfigResult {
	out := runBatch(d, "configrtt", len(configs), func(e *Exp, i int) ConfigResult {
		sim := e.deploy(configs[i], nil)
		catch := make(map[prefs.Client]int, len(d.TB.Topo.Targets))
		rtts := make(map[prefs.Client]time.Duration, len(d.TB.Topo.Targets))
		for c, obs := range e.observe(e.prober(sim), true) {
			catch[c] = obs.Site
			if obs.HasRTT {
				rtts[c] = obs.RTT
			}
		}
		return ConfigResult{Catchments: catch, RTTs: rtts}
	})
	d.Experiments += len(configs)
	return out
}

// RunConfigurationRTTs deploys a configuration and measures, for every
// target, the RTT to its measured catchment site (catchment probe, then a
// tunneled RTT probe through that site), mirroring the enhanced Verfploeter
// methodology. It returns per-client catchment sites and RTTs.
func (d *Discovery) RunConfigurationRTTs(siteIDs []int) (map[prefs.Client]int, map[prefs.Client]time.Duration) {
	r := d.RunConfigurationsRTTs([][]int{siteIDs})[0]
	return r.Catchments, r.RTTs
}

// RTTTable holds site↔client RTTs from singleton experiments, columnar:
// one sorted client-ID column shared by every site, plus one parallel value
// column per site (RTT nanoseconds, rttMissing for unmeasured cells). Point
// lookups binary-search both sorted columns; the whole table is a handful of
// contiguous slabs, which is what lets an internet-scale campaign (100k
// clients) fit under a fixed memory ceiling where the former
// map[int]map[prefs.Client]time.Duration representation spent an order of
// magnitude more on hash buckets and per-row map headers.
type RTTTable struct {
	// sites is the sorted site-ID column.
	sites []int
	// clients is the sorted client-ID column, the union across sites.
	clients []prefs.Client
	// cols[si][ci] is the RTT in nanoseconds from sites[si] to clients[ci],
	// or rttMissing when that cell was never measured.
	cols [][]int64
	// counts[si] is the number of measured cells in cols[si].
	counts []int
}

// rttMissing marks an unmeasured (site, client) cell. Real RTTs are
// non-negative, so the sentinel can never collide with a measurement.
const rttMissing int64 = -1

// siteIdx binary-searches the site column; returns -1 when absent.
func (t *RTTTable) siteIdx(site int) int {
	i := sort.SearchInts(t.sites, site)
	if i < len(t.sites) && t.sites[i] == site {
		return i
	}
	return -1
}

// clientIdx binary-searches the client column; returns -1 when absent.
func (t *RTTTable) clientIdx(c prefs.Client) int {
	i := sort.Search(len(t.clients), func(k int) bool { return t.clients[k] >= c })
	if i < len(t.clients) && t.clients[i] == c {
		return i
	}
	return -1
}

// RTT returns the measured RTT between site and client.
func (t *RTTTable) RTT(site int, c prefs.Client) (time.Duration, bool) {
	si := t.siteIdx(site)
	if si < 0 {
		return 0, false
	}
	ci := t.clientIdx(c)
	if ci < 0 {
		return 0, false
	}
	ns := t.cols[si][ci]
	if ns == rttMissing {
		return 0, false
	}
	return time.Duration(ns), true
}

// Sites returns the site IDs present in the table, ascending.
func (t *RTTTable) Sites() []int { return append([]int(nil), t.sites...) }

// Clients returns the number of clients measured for the given site.
func (t *RTTTable) Clients(site int) int {
	si := t.siteIdx(site)
	if si < 0 {
		return 0
	}
	return t.counts[si]
}

// MeanUnicast returns the mean RTT from site to all measured clients — the
// metric the paper's greedy baseline ranks sites by.
func (t *RTTTable) MeanUnicast(site int) time.Duration {
	si := t.siteIdx(site)
	if si < 0 || t.counts[si] == 0 {
		return 0
	}
	var sum time.Duration
	for _, ns := range t.cols[si] {
		if ns != rttMissing {
			sum += time.Duration(ns)
		}
	}
	return sum / time.Duration(t.counts[si])
}

// SiteRTTs calls fn for every measured cell of the given site in ascending
// client order — the streaming accessor campaign persistence serializes
// through, one cell at a time.
func (t *RTTTable) SiteRTTs(site int, fn func(c prefs.Client, ns int64)) {
	si := t.siteIdx(site)
	if si < 0 {
		return
	}
	for ci, ns := range t.cols[si] {
		if ns != rttMissing {
			fn(t.clients[ci], ns)
		}
	}
}

// newRTTTableFromRows builds the columnar table from per-site measurement
// rows (rows[i] belongs to siteIDs[i]). The client column is the sorted
// union of every row's keys; sites keep every ID handed in, including sites
// whose row came back empty (quarantined sites still occupy their column).
func newRTTTableFromRows(siteIDs []int, rows []map[prefs.Client]time.Duration) *RTTTable {
	order := make([]int, len(siteIDs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return siteIDs[order[a]] < siteIDs[order[b]] })

	seen := make(map[prefs.Client]bool)
	for _, row := range rows {
		for c := range row {
			seen[c] = true
		}
	}
	clients := make([]prefs.Client, 0, len(seen))
	for c := range seen {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(a, b int) bool { return clients[a] < clients[b] })

	t := &RTTTable{
		sites:   make([]int, len(siteIDs)),
		clients: clients,
		cols:    make([][]int64, len(siteIDs)),
		counts:  make([]int, len(siteIDs)),
	}
	// All value columns share one backing slab: a single large allocation is
	// page-rounded by the allocator, where per-column slabs each eat the gap
	// to their size class — measurable bytes-per-client at campaign scale.
	backing := make([]int64, len(siteIDs)*len(clients))
	for i := range backing {
		backing[i] = rttMissing
	}
	for si, oi := range order {
		t.sites[si] = siteIDs[oi]
		col := backing[si*len(clients) : (si+1)*len(clients) : (si+1)*len(clients)]
		//lint:orderinvariant each key writes its own column cell; cells are disjoint, so visit order cannot matter
		for c, d := range rows[oi] {
			col[t.clientIdx(c)] = int64(d)
		}
		t.cols[si] = col
		t.counts[si] = len(rows[oi])
	}
	return t
}

// MeasureRTTs runs one singleton experiment per site (§4.5 step 1): announce
// the prefix from that site alone, then measure the RTT from every target.
func (d *Discovery) MeasureRTTs(siteIDs []int) (*RTTTable, error) {
	for _, id := range siteIDs {
		if d.TB.Site(id) == nil {
			return nil, fmt.Errorf("discovery: unknown site %d", id)
		}
	}
	rows := runBatch(d, "rtt", len(siteIDs), func(e *Exp, i int) map[prefs.Client]time.Duration {
		return e.singletonRTTs(siteIDs[i])
	})
	d.Experiments += len(siteIDs)
	d.detectDeadSites(siteIDs, rows)
	return newRTTTableFromRows(siteIDs, rows), nil
}

// detectDeadSites quarantines sites whose singleton experiment produced no
// responses at all — with fault injection enabled, the signature of a
// blacked-out site. Fault-free campaigns never quarantine: an empty row
// there is a measurement bug worth surfacing downstream, not an outage.
func (d *Discovery) detectDeadSites(siteIDs []int, rows []map[prefs.Client]time.Duration) {
	if !d.Cfg.Faults.Enabled() || d.Cfg.TargetFilter != nil {
		// Under a target filter an empty (or tiny) row says nothing about
		// the site; cone repairs inherit quarantine from the snapshot they
		// patch via RestoreQuarantine.
		return
	}
	for i, id := range siteIDs {
		if len(rows[i]) == 0 {
			d.QuarantineSite(id, "no RTT responses in singleton experiment")
		}
	}
}

// MeasureRTTsParallel is MeasureRTTs with the §4.5 parallelization: up to
// one singleton experiment per test anycast prefix runs in the same
// experiment slot, dividing campaign wall-clock by the prefix count (the
// paper runs four prefixes to turn 1000 hours into 250). The per-site
// results match serial measurement up to race and noise effects. Slots, each
// a whole simulation, additionally fan out across the worker pool.
func (d *Discovery) MeasureRTTsParallel(siteIDs []int) (*RTTTable, error) {
	nPrefixes := len(d.TB.AnycastAddrs)
	if nPrefixes == 0 {
		return nil, fmt.Errorf("discovery: testbed has no anycast prefixes")
	}
	for _, id := range siteIDs {
		if d.TB.Site(id) == nil {
			return nil, fmt.Errorf("discovery: unknown site %d", id)
		}
	}
	nSlots := (len(siteIDs) + nPrefixes - 1) / nPrefixes
	slotRows := runBatch(d, "rttpar", nSlots, func(e *Exp, slot int) []map[prefs.Client]time.Duration {
		start := slot * nPrefixes
		group := siteIDs[start:min(start+nPrefixes, len(siteIDs))]
		sim := e.sim()
		// One prefix per site, announced simultaneously: distinct prefixes
		// never interact, so a slot carries len(group) experiments.
		for i, id := range group {
			sim.Announce(bgp.PrefixID(i), d.TB.Origin, d.TB.Site(id).TransitLink, 0)
		}
		sim.Converge()
		out := make([]map[prefs.Client]time.Duration, len(group))
		for i, id := range group {
			site := d.TB.Site(id)
			p := e.proberAt(sim, bgp.PrefixID(i), int64(i))
			m := make(map[prefs.Client]time.Duration, len(d.TB.Topo.Targets))
			for _, tg := range d.TB.Topo.Targets {
				if !d.targetIncluded(tg.AS) {
					continue
				}
				p.BeginTarget(uint64(tg.AS))
				rtt, err := p.RTT(site.TunnelKey, site.TunnelAddr, site.TunnelRTT, tg.Addr)
				if err != nil {
					continue
				}
				m[prefs.Client(tg.AS)] = rtt
			}
			e.probes += p.Sent
			out[i] = m
		}
		return out
	})
	d.Experiments += len(siteIDs)
	d.Slots += nSlots

	rows := make([]map[prefs.Client]time.Duration, len(siteIDs))
	for slot, group := range slotRows {
		copy(rows[slot*nPrefixes:], group)
	}
	d.detectDeadSites(siteIDs, rows)
	return newRTTTableFromRows(siteIDs, rows), nil
}

// Representatives picks the default representative site (lowest ID) for each
// transit provider, skipping quarantined sites — a provider whose every site
// is quarantined gets no representative, and ProviderPrefs degrades
// accordingly.
func (d *Discovery) Representatives() map[topology.ASN]int {
	reps := make(map[topology.ASN]int)
	for _, s := range d.TB.Sites {
		if d.IsQuarantined(s.ID) {
			continue
		}
		if cur, ok := reps[s.Transit]; !ok || s.ID < cur {
			reps[s.Transit] = s.ID
		}
	}
	return reps
}

// sortedClients returns m's keys in ascending order, so preference recording
// — and with it the store's client enumeration order — never depends on map
// iteration.
func sortedClients[V any](m map[prefs.Client]V) []prefs.Client {
	out := make([]prefs.Client, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runSimultaneousPairs announces each pair of sites simultaneously, one
// experiment per pair, across the worker pool, returning catchments in pair
// order. Pairs touching a quarantined site are skipped — their slot (and
// nonce) is still consumed, so the remaining experiments stay aligned with
// the fault-free campaign schedule and produce identical results.
func (d *Discovery) runSimultaneousPairs(pairs [][2]int) []map[prefs.Client]int {
	for _, pr := range pairs {
		if d.IsQuarantined(pr[0]) || d.IsQuarantined(pr[1]) {
			d.faultLog = append(d.faultLog,
				fmt.Sprintf("skip simultaneous pair %d-%d: quarantined site", pr[0], pr[1]))
		}
	}
	out := runBatch(d, "simpair", len(pairs), func(e *Exp, i int) map[prefs.Client]int {
		if d.IsQuarantined(pairs[i][0]) || d.IsQuarantined(pairs[i][1]) {
			return nil
		}
		sim := e.deploySimultaneous(pairs[i][0], pairs[i][1])
		return e.catchments(e.prober(sim))
	})
	d.Experiments += len(pairs)
	return out
}

// ProviderPrefs discovers each client's pairwise preferences between transit
// providers using order-controlled experiments (§4.3 "Provider-Level
// Preference Discovery"): for every provider pair, one representative site
// per provider is announced in both orders, six minutes apart.
func (d *Discovery) ProviderPrefs(reps map[topology.ASN]int) (*prefs.Store, error) {
	providers := d.TB.TransitProviders()
	items := make([]prefs.Item, len(providers))
	for i, p := range providers {
		items[i] = prefs.Item(p)
	}
	store, err := prefs.NewStore(items)
	if err != nil {
		return nil, err
	}
	type pair struct{ a, b topology.ASN }
	var pairs []pair
	var configs [][]int
	for a := 0; a < len(providers); a++ {
		for b := a + 1; b < len(providers); b++ {
			pa, pb := providers[a], providers[b]
			sa, okA := reps[pa]
			sb, okB := reps[pb]
			if !okA || !okB {
				// With faults enabled a provider can lose its last live site
				// mid-campaign; degrade by skipping its pairs (recorded, not
				// silent). Fault-free, a missing representative is caller
				// error.
				if d.Cfg.Faults.Enabled() {
					missing := pa
					if okA {
						missing = pb
					}
					d.faultLog = append(d.faultLog, fmt.Sprintf(
						"skip provider pair %d-%d: no live representative for provider %d", pa, pb, missing))
					continue
				}
				if !okA {
					return nil, fmt.Errorf("discovery: no representative for provider %d", pa)
				}
				return nil, fmt.Errorf("discovery: no representative for provider %d", pb)
			}
			pairs = append(pairs, pair{pa, pb})
			configs = append(configs, []int{sa, sb}, []int{sb, sa})
		}
	}
	results := d.RunConfigurations(configs)
	for k, pr := range pairs {
		winAB, winBA := results[2*k], results[2*k+1]
		for _, c := range sortedClients(winAB) {
			siteAB := winAB[c]
			siteBA, ok := winBA[c]
			if !ok {
				continue // lost probes in one experiment: skip client
			}
			provOf := func(siteID int) prefs.Item {
				return prefs.Item(d.TB.Site(siteID).Transit)
			}
			if err := store.RecordOrdered(c, prefs.Item(pr.a), prefs.Item(pr.b),
				provOf(siteAB), provOf(siteBA)); err != nil {
				return nil, err
			}
		}
	}
	store.Compact()
	return store, nil
}

// ProviderPrefsNaive is the order-oblivious baseline: both representatives
// announced simultaneously, one experiment per pair, winner recorded as a
// strict preference (§5.1 "without considering the order of BGP
// announcements").
func (d *Discovery) ProviderPrefsNaive(reps map[topology.ASN]int) (*prefs.Store, error) {
	providers := d.TB.TransitProviders()
	items := make([]prefs.Item, len(providers))
	for i, p := range providers {
		items[i] = prefs.Item(p)
	}
	store, err := prefs.NewStore(items)
	if err != nil {
		return nil, err
	}
	type pair struct{ a, b topology.ASN }
	var pairs []pair
	var sitePairs [][2]int
	for a := 0; a < len(providers); a++ {
		for b := a + 1; b < len(providers); b++ {
			pa, pb := providers[a], providers[b]
			pairs = append(pairs, pair{pa, pb})
			sitePairs = append(sitePairs, [2]int{reps[pa], reps[pb]})
		}
	}
	results := d.runSimultaneousPairs(sitePairs)
	for k, pr := range pairs {
		for _, c := range sortedClients(results[k]) {
			winner := prefs.Item(d.TB.Site(results[k][c]).Transit)
			if err := store.RecordSimultaneous(c, prefs.Item(pr.a), prefs.Item(pr.b), winner); err != nil {
				return nil, err
			}
		}
	}
	store.Compact()
	return store, nil
}

// SitePrefs discovers each client's site-level preferences among the sites of
// one transit provider (§4.3 "Site-Level Preference Discovery"). Announcement
// order does not matter inside an AS (interior routing decides), so a single
// simultaneous experiment per pair suffices; the result is recorded as
// strict.
func (d *Discovery) SitePrefs(provider topology.ASN) (*prefs.Store, error) {
	sites := d.TB.SitesOfTransit(provider)
	if len(sites) == 0 {
		return nil, fmt.Errorf("discovery: provider %d hosts no sites", provider)
	}
	items := make([]prefs.Item, len(sites))
	for i, s := range sites {
		items[i] = prefs.Item(s.ID)
	}
	store, err := prefs.NewStore(items)
	if err != nil {
		return nil, err
	}
	var sitePairs [][2]int
	for a := 0; a < len(sites); a++ {
		for b := a + 1; b < len(sites); b++ {
			sitePairs = append(sitePairs, [2]int{sites[a].ID, sites[b].ID})
		}
	}
	results := d.runSimultaneousPairs(sitePairs)
	for k, sp := range sitePairs {
		for _, c := range sortedClients(results[k]) {
			if err := store.RecordSimultaneous(c,
				prefs.Item(sp[0]), prefs.Item(sp[1]), prefs.Item(results[k][c])); err != nil {
				return nil, err
			}
		}
	}
	store.Compact()
	return store, nil
}

// NaiveSitePrefs runs the flat order-oblivious baseline over arbitrary sites
// across providers: every pair announced simultaneously once — the approach
// whose total-order fraction collapses as sites are added (Figure 4c).
func (d *Discovery) NaiveSitePrefs(siteIDs []int) (*prefs.Store, error) {
	items := make([]prefs.Item, len(siteIDs))
	for i, id := range siteIDs {
		items[i] = prefs.Item(id)
	}
	store, err := prefs.NewStore(items)
	if err != nil {
		return nil, err
	}
	var sitePairs [][2]int
	for a := 0; a < len(siteIDs); a++ {
		for b := a + 1; b < len(siteIDs); b++ {
			sitePairs = append(sitePairs, [2]int{siteIDs[a], siteIDs[b]})
		}
	}
	results := d.runSimultaneousPairs(sitePairs)
	for k, sp := range sitePairs {
		for _, c := range sortedClients(results[k]) {
			if err := store.RecordSimultaneous(c,
				prefs.Item(sp[0]), prefs.Item(sp[1]), prefs.Item(results[k][c])); err != nil {
				return nil, err
			}
		}
	}
	store.Compact()
	return store, nil
}

// Schedule estimates the wall-clock cost of a measurement campaign (§4.5
// "Analysis"): experiments spaced two hours apart, parallelized across test
// prefixes.
type Schedule struct {
	// SingletonExperiments is one per site (RTT measurement).
	SingletonExperiments int
	// PairwiseExperiments counts BGP pairwise runs (two per provider pair
	// when order-controlled).
	PairwiseExperiments int
	// ParallelPrefixes is the number of test prefixes usable concurrently.
	ParallelPrefixes int
	// SpacingHours separates successive experiments on one prefix.
	SpacingHours float64
}

// PlanTransitOnly builds the §4.5 schedule for a network with the given
// numbers of sites and transit providers, using order-controlled pairwise
// discovery at the provider level and the RTT heuristic at the site level.
func PlanTransitOnly(sites, providers, parallelPrefixes int, orderControlled bool) Schedule {
	pairs := providers * (providers - 1) / 2
	if orderControlled {
		pairs *= 2
	}
	if parallelPrefixes <= 0 {
		parallelPrefixes = 1
	}
	return Schedule{
		SingletonExperiments: sites,
		PairwiseExperiments:  pairs,
		ParallelPrefixes:     parallelPrefixes,
		SpacingHours:         2,
	}
}

// SingletonHours returns the wall-clock hours for the singleton phase.
func (s Schedule) SingletonHours() float64 {
	return float64(s.SingletonExperiments) * s.SpacingHours / float64(s.ParallelPrefixes)
}

// PairwiseHours returns the wall-clock hours for the pairwise phase.
func (s Schedule) PairwiseHours() float64 {
	return float64(s.PairwiseExperiments) * s.SpacingHours / float64(s.ParallelPrefixes)
}

// TotalDays returns the total campaign length in days.
func (s Schedule) TotalDays() float64 {
	return (s.SingletonHours() + s.PairwiseHours()) / 24
}

// Patch builds a new table in which every client selected by cone is
// replaced by (or, when absent there, dropped in favor of) its entry in
// patch, per site. Clients outside the cone keep their RTTs from t. Neither
// input is modified — the result is a fresh copy-on-write table for
// publication through PatchCampaign.
//
// When the cone selects no client of either table — the empty churn repair —
// the receiver itself is returned instead of a deep copy; tables are
// immutable once published, so sharing the receiver is as safe as sharing
// the snapshot it came from.
func (t *RTTTable) Patch(patch *RTTTable, cone func(prefs.Client) bool) *RTTTable {
	hit := false
	for _, c := range t.clients {
		if cone(c) {
			hit = true
			break
		}
	}
	if !hit {
		for _, c := range patch.clients {
			if cone(c) {
				hit = true
				break
			}
		}
	}
	if !hit {
		return t
	}

	// The merged client column: t's clients (cone clients survive only when
	// patch re-measured them for some of t's sites) plus patch-only cone
	// clients. Keeping a cone client of t that patch dropped would be
	// harmless — its cells all become missing — but dropping it keeps the
	// column equal to what a from-scratch campaign on the patched state
	// would build, which the byte-identity tests rely on.
	keep := make([]prefs.Client, 0, len(t.clients)+len(patch.clients))
	ti, pi := 0, 0
	for ti < len(t.clients) || pi < len(patch.clients) {
		var c prefs.Client
		switch {
		case pi >= len(patch.clients):
			c = t.clients[ti]
			ti++
		case ti >= len(t.clients):
			c = patch.clients[pi]
			pi++
		case t.clients[ti] < patch.clients[pi]:
			c = t.clients[ti]
			ti++
		case patch.clients[pi] < t.clients[ti]:
			c = patch.clients[pi]
			pi++
		default:
			c = t.clients[ti]
			ti++
			pi++
		}
		if !cone(c) {
			// Non-cone clients come only from t; a patch-only non-cone
			// client has no cell in any of t's sites.
			if i := t.clientIdx(c); i >= 0 {
				keep = append(keep, c)
			}
			continue
		}
		// Cone client: survives only through patch cells on t's sites.
		pci := patch.clientIdx(c)
		if pci < 0 {
			continue
		}
		present := false
		for _, site := range t.sites {
			if psi := patch.siteIdx(site); psi >= 0 && patch.cols[psi][pci] != rttMissing {
				present = true
				break
			}
		}
		if present {
			keep = append(keep, c)
		}
	}

	// keep was sized for the worst-case union; re-copy exact so the published
	// snapshot carries no merge headroom.
	keep = append(make([]prefs.Client, 0, len(keep)), keep...)
	out := &RTTTable{
		sites:   append([]int(nil), t.sites...),
		clients: keep,
		cols:    make([][]int64, len(t.sites)),
		counts:  make([]int, len(t.sites)),
	}
	backing := make([]int64, len(t.sites)*len(keep))
	for si, site := range out.sites {
		col := backing[si*len(keep) : (si+1)*len(keep) : (si+1)*len(keep)]
		psi := patch.siteIdx(site)
		n := 0
		for ci, c := range keep {
			ns := rttMissing
			if cone(c) {
				if psi >= 0 {
					if pci := patch.clientIdx(c); pci >= 0 {
						ns = patch.cols[psi][pci]
					}
				}
			} else if tci := t.clientIdx(c); tci >= 0 {
				ns = t.cols[si][tci]
			}
			col[ci] = ns
			if ns != rttMissing {
				n++
			}
		}
		out.cols[si] = col
		out.counts[si] = n
	}
	return out
}

// Export serializes the table as site → client → RTT nanoseconds.
func (t *RTTTable) Export() map[int]map[prefs.Client]int64 {
	out := make(map[int]map[prefs.Client]int64, len(t.sites))
	for si, site := range t.sites {
		row := make(map[prefs.Client]int64, t.counts[si])
		for ci, ns := range t.cols[si] {
			if ns != rttMissing {
				row[t.clients[ci]] = ns
			}
		}
		out[site] = row
	}
	return out
}

// ImportRTTTable rebuilds a table from Export's format.
func ImportRTTTable(data map[int]map[prefs.Client]int64) *RTTTable {
	siteIDs := make([]int, 0, len(data))
	for site := range data {
		siteIDs = append(siteIDs, site)
	}
	sort.Ints(siteIDs)
	rows := make([]map[prefs.Client]time.Duration, len(siteIDs))
	for i, site := range siteIDs {
		m := make(map[prefs.Client]time.Duration, len(data[site]))
		for c, ns := range data[site] {
			m[c] = time.Duration(ns)
		}
		rows[i] = m
	}
	return newRTTTableFromRows(siteIDs, rows)
}
