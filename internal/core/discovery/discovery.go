// Package discovery plans and runs AnyOpt's measurement experiments (§3,
// §4.3, §4.5): singleton announcements for RTT measurement, order-controlled
// pairwise announcements for provider-level preference discovery, intra-AS
// pairwise experiments for site-level preferences, and the naive
// (simultaneous-announcement) variants the paper compares against.
//
// Every experiment runs on a fresh BGP simulation with a fresh jitter nonce,
// reflecting that real experiments happen hours apart on an Internet whose
// races never replay identically. The prefix is withdrawn between
// experiments, as the paper does.
package discovery

import (
	"fmt"
	"time"

	"anyopt/internal/bgp"
	"anyopt/internal/core/prefs"
	"anyopt/internal/probe"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// Config parameterizes a discovery campaign.
type Config struct {
	// SimCfg is the base simulator configuration; JitterNonce is replaced
	// per experiment.
	SimCfg bgp.Config
	// Spacing separates ordered announcements within one experiment (§5.1
	// uses six minutes).
	Spacing time.Duration
	// NoiseSeed seeds per-experiment measurement noise; Noisy toggles it.
	NoiseSeed int64
	Noisy     bool
	// ProbeAttempts overrides the per-measurement attempt count (default 7).
	ProbeAttempts int
}

// DefaultConfig returns the paper-faithful campaign settings.
func DefaultConfig() Config {
	return Config{
		SimCfg:  bgp.DefaultConfig(),
		Spacing: 6 * time.Minute,
		Noisy:   true,
	}
}

// Discovery runs experiments against one testbed.
type Discovery struct {
	TB  *testbed.Testbed
	Cfg Config

	// Experiments counts BGP experiments run, for §4.5 schedule accounting.
	Experiments int
	// Slots counts sequential experiment slots consumed; parallel prefixes
	// pack several experiments into one slot (§4.5).
	Slots int
	// ProbesSent counts measurement packets.
	ProbesSent uint64

	nonce uint64
}

// New creates a discovery campaign over tb.
func New(tb *testbed.Testbed, cfg Config) *Discovery {
	if cfg.Spacing <= 0 {
		cfg.Spacing = 6 * time.Minute
	}
	return &Discovery{TB: tb, Cfg: cfg}
}

// freshSim builds a new simulation with a fresh jitter nonce, modeling an
// independent experiment run.
func (d *Discovery) freshSim() *bgp.Sim {
	d.nonce++
	cfg := d.Cfg.SimCfg
	cfg.JitterNonce = d.nonce
	return bgp.New(d.TB.Topo, cfg)
}

// prober builds a measurement prober over sim with per-experiment noise.
func (d *Discovery) prober(sim *bgp.Sim) *probe.Prober {
	var noise *probe.NoiseModel
	if d.Cfg.Noisy {
		noise = probe.DefaultNoise(d.Cfg.NoiseSeed + int64(d.nonce)*7919)
	}
	fab := probe.NewSimFabric(d.TB, sim, 0, noise)
	cfg := probe.DefaultConfig(d.TB.OrchAddr, d.TB.AnycastAddrs[0])
	if d.Cfg.ProbeAttempts > 0 {
		cfg.Attempts = d.Cfg.ProbeAttempts
	}
	return probe.New(fab, cfg, sim.Engine.Now())
}

// Observation is one client's measured state under a deployed configuration.
type Observation struct {
	// Site is the catchment site ID.
	Site int
	// Link is the exact origin-side link the reply entered over (transit or
	// peering), decoded from the per-interface GRE key.
	Link topology.LinkID
	// RTT is the measured client↔site RTT; valid only when HasRTT.
	RTT    time.Duration
	HasRTT bool
}

// observe measures every target's catchment (and optionally RTT) under the
// current routing state. Targets whose probes are lost or unroutable are
// absent from the result.
func (d *Discovery) observe(sim *bgp.Sim, p *probe.Prober, withRTT bool) map[prefs.Client]Observation {
	out := make(map[prefs.Client]Observation, len(d.TB.Topo.Targets))
	for _, tg := range d.TB.Topo.Targets {
		key, err := p.CatchmentRetry(tg.Addr, 3)
		if err != nil {
			continue
		}
		site := d.TB.SiteByTunnelKey(key)
		link, okLink := d.TB.LinkByTunnelKey(key)
		if site == nil || !okLink {
			continue
		}
		obs := Observation{Site: site.ID, Link: link}
		if withRTT {
			if rtt, err := p.RTT(site.TunnelKey, site.TunnelAddr, site.TunnelRTT, tg.Addr); err == nil {
				obs.RTT, obs.HasRTT = rtt, true
			}
		}
		out[prefs.Client(tg.AS)] = obs
	}
	d.ProbesSent += p.Sent
	return out
}

// catchments reduces observe to site IDs, for preference discovery.
func (d *Discovery) catchments(sim *bgp.Sim, p *probe.Prober) map[prefs.Client]int {
	out := make(map[prefs.Client]int)
	for c, obs := range d.observe(sim, p, false) {
		out[c] = obs.Site
	}
	return out
}

// RunConfigurationWithPeers deploys site IDs in announcement order, then
// additionally announces the given peering links (after the sites), and
// returns full per-client observations including RTTs — the workhorse of the
// one-pass peering experiments (§4.4).
func (d *Discovery) RunConfigurationWithPeers(siteIDs []int, peers []topology.LinkID) map[prefs.Client]Observation {
	d.Experiments++
	sim := d.freshSim()
	dep := d.TB.NewDeployment(sim, 0)
	dep.Spacing = d.Cfg.Spacing
	dep.AnnounceSites(siteIDs...)
	for _, pl := range peers {
		dep.EnablePeer(pl)
	}
	return d.observe(sim, d.prober(sim), true)
}

// RunConfiguration deploys the given site IDs in announcement order (spaced)
// and measures every target's catchment — the "deploy and measure" step of
// §5.2. It returns the measured catchments (site IDs per client).
func (d *Discovery) RunConfiguration(siteIDs []int) map[prefs.Client]int {
	d.Experiments++
	sim := d.freshSim()
	dep := d.TB.NewDeployment(sim, 0)
	dep.Spacing = d.Cfg.Spacing
	dep.AnnounceSites(siteIDs...)
	return d.catchments(sim, d.prober(sim))
}

// RunConfigurationRTTs deploys a configuration and measures, for every
// target, the RTT to its measured catchment site (catchment probe, then a
// tunneled RTT probe through that site), mirroring the enhanced Verfploeter
// methodology. It returns per-client catchment sites and RTTs.
func (d *Discovery) RunConfigurationRTTs(siteIDs []int) (map[prefs.Client]int, map[prefs.Client]time.Duration) {
	d.Experiments++
	sim := d.freshSim()
	dep := d.TB.NewDeployment(sim, 0)
	dep.Spacing = d.Cfg.Spacing
	dep.AnnounceSites(siteIDs...)

	catch := make(map[prefs.Client]int, len(d.TB.Topo.Targets))
	rtts := make(map[prefs.Client]time.Duration, len(d.TB.Topo.Targets))
	for c, obs := range d.observe(sim, d.prober(sim), true) {
		catch[c] = obs.Site
		if obs.HasRTT {
			rtts[c] = obs.RTT
		}
	}
	return catch, rtts
}

// RTTTable holds site↔client RTTs from singleton experiments.
type RTTTable struct {
	bySite map[int]map[prefs.Client]time.Duration
}

// RTT returns the measured RTT between site and client.
func (t *RTTTable) RTT(site int, c prefs.Client) (time.Duration, bool) {
	m := t.bySite[site]
	if m == nil {
		return 0, false
	}
	d, ok := m[c]
	return d, ok
}

// Sites returns the site IDs present in the table.
func (t *RTTTable) Sites() []int {
	var out []int
	for s := range t.bySite {
		out = append(out, s)
	}
	return out
}

// Clients returns the number of clients measured for the given site.
func (t *RTTTable) Clients(site int) int { return len(t.bySite[site]) }

// MeanUnicast returns the mean RTT from site to all measured clients — the
// metric the paper's greedy baseline ranks sites by.
func (t *RTTTable) MeanUnicast(site int) time.Duration {
	m := t.bySite[site]
	if len(m) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range m {
		sum += d
	}
	return sum / time.Duration(len(m))
}

// MeasureRTTs runs one singleton experiment per site (§4.5 step 1): announce
// the prefix from that site alone, then measure the RTT from every target.
func (d *Discovery) MeasureRTTs(siteIDs []int) (*RTTTable, error) {
	tbl := &RTTTable{bySite: make(map[int]map[prefs.Client]time.Duration, len(siteIDs))}
	for _, id := range siteIDs {
		site := d.TB.Site(id)
		if site == nil {
			return nil, fmt.Errorf("discovery: unknown site %d", id)
		}
		d.Experiments++
		sim := d.freshSim()
		dep := d.TB.NewDeployment(sim, 0)
		dep.AnnounceSites(id)
		p := d.prober(sim)

		m := make(map[prefs.Client]time.Duration, len(d.TB.Topo.Targets))
		for _, tg := range d.TB.Topo.Targets {
			rtt, err := p.RTT(site.TunnelKey, site.TunnelAddr, site.TunnelRTT, tg.Addr)
			if err != nil {
				continue
			}
			m[prefs.Client(tg.AS)] = rtt
		}
		d.ProbesSent += p.Sent
		tbl.bySite[id] = m
	}
	return tbl, nil
}

// MeasureRTTsParallel is MeasureRTTs with the §4.5 parallelization: up to
// one singleton experiment per test anycast prefix runs in the same
// experiment slot, dividing campaign wall-clock by the prefix count (the
// paper runs four prefixes to turn 1000 hours into 250). The per-site
// results match serial measurement up to race and noise effects.
func (d *Discovery) MeasureRTTsParallel(siteIDs []int) (*RTTTable, error) {
	nPrefixes := len(d.TB.AnycastAddrs)
	if nPrefixes == 0 {
		return nil, fmt.Errorf("discovery: testbed has no anycast prefixes")
	}
	tbl := &RTTTable{bySite: make(map[int]map[prefs.Client]time.Duration, len(siteIDs))}
	for start := 0; start < len(siteIDs); start += nPrefixes {
		batch := siteIDs[start:min(start+nPrefixes, len(siteIDs))]
		sim := d.freshSim()
		// One prefix per site, announced simultaneously: distinct prefixes
		// never interact, so a slot carries len(batch) experiments.
		for i, id := range batch {
			site := d.TB.Site(id)
			if site == nil {
				return nil, fmt.Errorf("discovery: unknown site %d", id)
			}
			d.Experiments++
			sim.Announce(bgp.PrefixID(i), d.TB.Origin, site.TransitLink, 0)
		}
		sim.Converge()
		d.Slots++
		for i, id := range batch {
			site := d.TB.Site(id)
			var noise *probe.NoiseModel
			if d.Cfg.Noisy {
				noise = probe.DefaultNoise(d.Cfg.NoiseSeed + int64(d.nonce)*7919 + int64(i))
			}
			fab := probe.NewSimFabric(d.TB, sim, bgp.PrefixID(i), noise)
			cfg := probe.DefaultConfig(d.TB.OrchAddr, d.TB.AnycastAddrs[i])
			if d.Cfg.ProbeAttempts > 0 {
				cfg.Attempts = d.Cfg.ProbeAttempts
			}
			p := probe.New(fab, cfg, sim.Engine.Now())

			m := make(map[prefs.Client]time.Duration, len(d.TB.Topo.Targets))
			for _, tg := range d.TB.Topo.Targets {
				rtt, err := p.RTT(site.TunnelKey, site.TunnelAddr, site.TunnelRTT, tg.Addr)
				if err != nil {
					continue
				}
				m[prefs.Client(tg.AS)] = rtt
			}
			d.ProbesSent += p.Sent
			tbl.bySite[id] = m
		}
	}
	return tbl, nil
}

// Representatives picks the default representative site (lowest ID) for each
// transit provider.
func (d *Discovery) Representatives() map[topology.ASN]int {
	reps := make(map[topology.ASN]int)
	for _, s := range d.TB.Sites {
		if cur, ok := reps[s.Transit]; !ok || s.ID < cur {
			reps[s.Transit] = s.ID
		}
	}
	return reps
}

// ProviderPrefs discovers each client's pairwise preferences between transit
// providers using order-controlled experiments (§4.3 "Provider-Level
// Preference Discovery"): for every provider pair, one representative site
// per provider is announced in both orders, six minutes apart.
func (d *Discovery) ProviderPrefs(reps map[topology.ASN]int) (*prefs.Store, error) {
	providers := d.TB.TransitProviders()
	items := make([]prefs.Item, len(providers))
	for i, p := range providers {
		items[i] = prefs.Item(p)
	}
	store, err := prefs.NewStore(items)
	if err != nil {
		return nil, err
	}
	for a := 0; a < len(providers); a++ {
		for b := a + 1; b < len(providers); b++ {
			pa, pb := providers[a], providers[b]
			sa, ok := reps[pa]
			if !ok {
				return nil, fmt.Errorf("discovery: no representative for provider %d", pa)
			}
			sb, ok := reps[pb]
			if !ok {
				return nil, fmt.Errorf("discovery: no representative for provider %d", pb)
			}
			winAB := d.RunConfiguration([]int{sa, sb}) // a's rep announced first
			winBA := d.RunConfiguration([]int{sb, sa}) // reversed
			for c, siteAB := range winAB {
				siteBA, ok := winBA[c]
				if !ok {
					continue // lost probes in one experiment: skip client
				}
				provOf := func(siteID int) prefs.Item {
					return prefs.Item(d.TB.Site(siteID).Transit)
				}
				if err := store.RecordOrdered(c, prefs.Item(pa), prefs.Item(pb),
					provOf(siteAB), provOf(siteBA)); err != nil {
					return nil, err
				}
			}
		}
	}
	return store, nil
}

// ProviderPrefsNaive is the order-oblivious baseline: both representatives
// announced simultaneously, one experiment per pair, winner recorded as a
// strict preference (§5.1 "without considering the order of BGP
// announcements").
func (d *Discovery) ProviderPrefsNaive(reps map[topology.ASN]int) (*prefs.Store, error) {
	providers := d.TB.TransitProviders()
	items := make([]prefs.Item, len(providers))
	for i, p := range providers {
		items[i] = prefs.Item(p)
	}
	store, err := prefs.NewStore(items)
	if err != nil {
		return nil, err
	}
	for a := 0; a < len(providers); a++ {
		for b := a + 1; b < len(providers); b++ {
			pa, pb := providers[a], providers[b]
			d.Experiments++
			sim := d.freshSim()
			dep := d.TB.NewDeployment(sim, 0)
			dep.AnnounceSitesSimultaneously(reps[pa], reps[pb])
			for c, siteID := range d.catchments(sim, d.prober(sim)) {
				winner := prefs.Item(d.TB.Site(siteID).Transit)
				if err := store.RecordSimultaneous(c, prefs.Item(pa), prefs.Item(pb), winner); err != nil {
					return nil, err
				}
			}
		}
	}
	return store, nil
}

// SitePrefs discovers each client's site-level preferences among the sites of
// one transit provider (§4.3 "Site-Level Preference Discovery"). Announcement
// order does not matter inside an AS (interior routing decides), so a single
// simultaneous experiment per pair suffices; the result is recorded as
// strict.
func (d *Discovery) SitePrefs(provider topology.ASN) (*prefs.Store, error) {
	sites := d.TB.SitesOfTransit(provider)
	if len(sites) == 0 {
		return nil, fmt.Errorf("discovery: provider %d hosts no sites", provider)
	}
	items := make([]prefs.Item, len(sites))
	for i, s := range sites {
		items[i] = prefs.Item(s.ID)
	}
	store, err := prefs.NewStore(items)
	if err != nil {
		return nil, err
	}
	for a := 0; a < len(sites); a++ {
		for b := a + 1; b < len(sites); b++ {
			d.Experiments++
			sim := d.freshSim()
			dep := d.TB.NewDeployment(sim, 0)
			dep.AnnounceSitesSimultaneously(sites[a].ID, sites[b].ID)
			for c, siteID := range d.catchments(sim, d.prober(sim)) {
				if err := store.RecordSimultaneous(c,
					prefs.Item(sites[a].ID), prefs.Item(sites[b].ID), prefs.Item(siteID)); err != nil {
					return nil, err
				}
			}
		}
	}
	return store, nil
}

// NaiveSitePrefs runs the flat order-oblivious baseline over arbitrary sites
// across providers: every pair announced simultaneously once — the approach
// whose total-order fraction collapses as sites are added (Figure 4c).
func (d *Discovery) NaiveSitePrefs(siteIDs []int) (*prefs.Store, error) {
	items := make([]prefs.Item, len(siteIDs))
	for i, id := range siteIDs {
		items[i] = prefs.Item(id)
	}
	store, err := prefs.NewStore(items)
	if err != nil {
		return nil, err
	}
	for a := 0; a < len(siteIDs); a++ {
		for b := a + 1; b < len(siteIDs); b++ {
			d.Experiments++
			sim := d.freshSim()
			dep := d.TB.NewDeployment(sim, 0)
			dep.AnnounceSitesSimultaneously(siteIDs[a], siteIDs[b])
			for c, siteID := range d.catchments(sim, d.prober(sim)) {
				if err := store.RecordSimultaneous(c,
					prefs.Item(siteIDs[a]), prefs.Item(siteIDs[b]), prefs.Item(siteID)); err != nil {
					return nil, err
				}
			}
		}
	}
	return store, nil
}

// Schedule estimates the wall-clock cost of a measurement campaign (§4.5
// "Analysis"): experiments spaced two hours apart, parallelized across test
// prefixes.
type Schedule struct {
	// SingletonExperiments is one per site (RTT measurement).
	SingletonExperiments int
	// PairwiseExperiments counts BGP pairwise runs (two per provider pair
	// when order-controlled).
	PairwiseExperiments int
	// ParallelPrefixes is the number of test prefixes usable concurrently.
	ParallelPrefixes int
	// SpacingHours separates successive experiments on one prefix.
	SpacingHours float64
}

// PlanTransitOnly builds the §4.5 schedule for a network with the given
// numbers of sites and transit providers, using order-controlled pairwise
// discovery at the provider level and the RTT heuristic at the site level.
func PlanTransitOnly(sites, providers, parallelPrefixes int, orderControlled bool) Schedule {
	pairs := providers * (providers - 1) / 2
	if orderControlled {
		pairs *= 2
	}
	if parallelPrefixes <= 0 {
		parallelPrefixes = 1
	}
	return Schedule{
		SingletonExperiments: sites,
		PairwiseExperiments:  pairs,
		ParallelPrefixes:     parallelPrefixes,
		SpacingHours:         2,
	}
}

// SingletonHours returns the wall-clock hours for the singleton phase.
func (s Schedule) SingletonHours() float64 {
	return float64(s.SingletonExperiments) * s.SpacingHours / float64(s.ParallelPrefixes)
}

// PairwiseHours returns the wall-clock hours for the pairwise phase.
func (s Schedule) PairwiseHours() float64 {
	return float64(s.PairwiseExperiments) * s.SpacingHours / float64(s.ParallelPrefixes)
}

// TotalDays returns the total campaign length in days.
func (s Schedule) TotalDays() float64 {
	return (s.SingletonHours() + s.PairwiseHours()) / 24
}

// Export serializes the table as site → client → RTT nanoseconds.
func (t *RTTTable) Export() map[int]map[prefs.Client]int64 {
	out := make(map[int]map[prefs.Client]int64, len(t.bySite))
	for site, m := range t.bySite {
		row := make(map[prefs.Client]int64, len(m))
		for c, d := range m {
			row[c] = int64(d)
		}
		out[site] = row
	}
	return out
}

// ImportRTTTable rebuilds a table from Export's format.
func ImportRTTTable(data map[int]map[prefs.Client]int64) *RTTTable {
	t := &RTTTable{bySite: make(map[int]map[prefs.Client]time.Duration, len(data))}
	for site, row := range data {
		m := make(map[prefs.Client]time.Duration, len(row))
		for c, ns := range row {
			m[c] = time.Duration(ns)
		}
		t.bySite[site] = m
	}
	return t
}
