package discovery

import (
	"fmt"
	"time"

	"anyopt/internal/testbed"
)

// ExperimentKind classifies a planned experiment.
type ExperimentKind uint8

const (
	// KindSingleton: one site announced alone, for RTT measurement.
	KindSingleton ExperimentKind = iota
	// KindProviderPair: two provider representatives, order-controlled.
	KindProviderPair
	// KindSitePair: two sites of the same provider, simultaneous.
	KindSitePair
)

func (k ExperimentKind) String() string {
	switch k {
	case KindSingleton:
		return "singleton"
	case KindProviderPair:
		return "provider-pair"
	case KindSitePair:
		return "site-pair"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// PlannedExperiment is one slot of a campaign timeline.
type PlannedExperiment struct {
	Name   string
	Kind   ExperimentKind
	Sites  []int
	Prefix int
	Start  time.Duration
}

// Timeline is the wall-clock plan of a full measurement campaign: every
// experiment assigned to a test prefix and a start time, experiments on the
// same prefix spaced apart (the paper uses two hours to let BGP settle and
// avoid route-flap damping).
type Timeline struct {
	Experiments []PlannedExperiment
	Prefixes    int
	Spacing     time.Duration
}

// Duration returns the campaign's end-to-end wall-clock length.
func (tl Timeline) Duration() time.Duration {
	var max time.Duration
	for _, e := range tl.Experiments {
		if end := e.Start + tl.Spacing; end > max {
			max = end
		}
	}
	return max
}

// CountKind tallies experiments of one kind.
func (tl Timeline) CountKind(k ExperimentKind) int {
	n := 0
	for _, e := range tl.Experiments {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// PlanCampaign lays out the full §4.5 campaign for a testbed: one singleton
// experiment per site, two order-controlled experiments per provider pair,
// and (unless useRTTHeuristic) one experiment per same-provider site pair —
// round-robined across the available test prefixes.
func PlanCampaign(tb *testbed.Testbed, useRTTHeuristic bool, prefixes int, spacing time.Duration) Timeline {
	if prefixes <= 0 {
		prefixes = 1
	}
	if spacing <= 0 {
		spacing = 2 * time.Hour
	}
	var exps []PlannedExperiment
	for _, s := range tb.Sites {
		exps = append(exps, PlannedExperiment{
			Name: fmt.Sprintf("rtt site %d (%s)", s.ID, s.Name),
			Kind: KindSingleton, Sites: []int{s.ID},
		})
	}
	providers := tb.TransitProviders()
	reps := map[int]int{} // provider index → representative site
	for i, p := range providers {
		for _, s := range tb.SitesOfTransit(p) {
			if cur, ok := reps[i]; !ok || s.ID < cur {
				reps[i] = s.ID
			}
		}
	}
	for a := 0; a < len(providers); a++ {
		for b := a + 1; b < len(providers); b++ {
			exps = append(exps,
				PlannedExperiment{
					Name: fmt.Sprintf("providers %d<%d", a, b),
					Kind: KindProviderPair, Sites: []int{reps[a], reps[b]},
				},
				PlannedExperiment{
					Name: fmt.Sprintf("providers %d>%d (reversed)", a, b),
					Kind: KindProviderPair, Sites: []int{reps[b], reps[a]},
				})
		}
	}
	if !useRTTHeuristic {
		for _, p := range providers {
			sites := tb.SitesOfTransit(p)
			for a := 0; a < len(sites); a++ {
				for b := a + 1; b < len(sites); b++ {
					exps = append(exps, PlannedExperiment{
						Name: fmt.Sprintf("sites %d/%d", sites[a].ID, sites[b].ID),
						Kind: KindSitePair, Sites: []int{sites[a].ID, sites[b].ID},
					})
				}
			}
		}
	}
	// Round-robin assignment: prefix i runs its j-th experiment at j*spacing.
	slot := make([]int, prefixes)
	for i := range exps {
		p := i % prefixes
		exps[i].Prefix = p
		exps[i].Start = time.Duration(slot[p]) * spacing
		slot[p]++
	}
	return Timeline{Experiments: exps, Prefixes: prefixes, Spacing: spacing}
}
