package discovery

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"anyopt/internal/core/prefs"
	"anyopt/internal/fault"
	"anyopt/internal/topology"
)

// chaosCampaign is one full mini-campaign's output: everything the predictor
// would consume, plus the self-healing bookkeeping.
type chaosCampaign struct {
	rtt         map[int]map[prefs.Client]int64
	providers   []prefs.DumpedRelation
	siteRels    []prefs.DumpedRelation
	quarantined map[int]string
	faultLog    []string
	experiments int
}

// chaosSites is the campaign's singleton-measurement set: every provider's
// representative, the full NTT footprint, and the blackout victim.
var chaosSites = []int{1, 3, 4, 5, 6, 7, 9, 10, 11}

// chaosBlackout is the site the chaos tests kill for the whole campaign:
// Newark (NTT). It is not a representative (NTT's is site 6) and NTT keeps
// three live sites, so the campaign can quarantine it and still discover
// every provider pair and the surviving NTT site pairs.
const chaosBlackout = 11

// chaosFaults builds the differential test's fault mix: flaps, a trickle of
// dropped and delayed UPDATEs, per-traversal probe loss, and one blacked-out
// site. Rates are paper-modest so each quorum attempt has a good chance of
// running clean; the quorum absorbs the attempts that do not.
func chaosFaults(seed int64) *fault.Config {
	return &fault.Config{
		Seed:            seed,
		FlapProb:        0.05,
		FlapMaxLinks:    1,
		FlapWindow:      20 * time.Minute,
		FlapDownMin:     30 * time.Second,
		FlapDownMax:     2 * time.Minute,
		UpdateDropProb:  5e-6,
		UpdateDelayProb: 1e-5,
		UpdateDelayMax:  100 * time.Millisecond,
		ProbeLossProb:   0.005,
		BlackoutSites:   []int{chaosBlackout},
	}
}

// runChaosCampaign executes the mini-campaign — singleton RTTs, provider
// preference discovery, NTT site preference discovery — under the given fault
// configuration (nil = fault-free).
func runChaosCampaign(t *testing.T, faults *fault.Config) chaosCampaign {
	t.Helper()
	tb := newTB(t)
	cfg := DefaultConfig()
	cfg.Noisy = false
	cfg.Faults = faults
	d := New(tb, cfg)

	tbl, err := d.MeasureRTTs(chaosSites)
	if err != nil {
		t.Fatal(err)
	}
	provStore, err := d.ProviderPrefs(d.Representatives())
	if err != nil {
		t.Fatal(err)
	}
	var ntt topology.ASN
	for _, a := range tb.Topo.Tier1s() {
		if a.Name == "NTT" {
			ntt = a.ASN
		}
	}
	siteStore, err := d.SitePrefs(ntt)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("campaign infrastructure error: %v", err)
	}
	return chaosCampaign{
		rtt:         tbl.Export(),
		providers:   provStore.Dump(),
		siteRels:    siteStore.Dump(),
		quarantined: d.Quarantined(),
		faultLog:    d.FaultLog(),
		experiments: d.Experiments,
	}
}

// relSet indexes dumped relations, dropping those touching the excluded item
// (pass a negative item to keep everything). Set comparison, not slice
// comparison: skipping quarantined pairs changes the client-first-seen order
// that Dump follows, without changing the relations themselves.
func relSet(rels []prefs.DumpedRelation, exclude prefs.Item) map[prefs.DumpedRelation]bool {
	out := make(map[prefs.DumpedRelation]bool, len(rels))
	for _, r := range rels {
		if exclude >= 0 && (r.I == exclude || r.J == exclude) {
			continue
		}
		out[r] = true
	}
	return out
}

// TestChaosCampaignConvergesToFaultFree is the differential acceptance test
// for the chaos layer: with faults injected at modest rates plus a permanent
// site blackout, the self-healing campaign (K-of-N quorum re-measurement +
// quarantine) must reproduce the fault-free campaign's outputs exactly for
// everything that does not involve the quarantined site.
func TestChaosCampaignConvergesToFaultFree(t *testing.T) {
	clean := runChaosCampaign(t, nil)
	faulted := runChaosCampaign(t, chaosFaults(7))

	if clean.quarantined != nil {
		t.Fatalf("fault-free campaign quarantined %v", clean.quarantined)
	}
	if len(clean.faultLog) != 0 {
		t.Fatalf("fault-free campaign has a fault log: %v", clean.faultLog)
	}
	if len(faulted.quarantined) != 1 || faulted.quarantined[chaosBlackout] == "" {
		t.Fatalf("quarantined = %v, want exactly site %d", faulted.quarantined, chaosBlackout)
	}
	if len(faulted.faultLog) == 0 {
		t.Fatal("faulted campaign produced no fault log; chaos layer not exercised")
	}
	if faulted.experiments != clean.experiments {
		t.Errorf("experiment counts diverged: faulted %d vs clean %d (schedule misaligned)",
			faulted.experiments, clean.experiments)
	}

	// Singleton RTTs: identical for every live site; empty for the blackout.
	for site, row := range clean.rtt {
		if site == chaosBlackout {
			continue
		}
		if !reflect.DeepEqual(row, faulted.rtt[site]) {
			t.Errorf("site %d: RTT row diverged under faults (%d vs %d clients)",
				site, len(row), len(faulted.rtt[site]))
		}
	}
	if n := len(faulted.rtt[chaosBlackout]); n != 0 {
		t.Errorf("blacked-out site %d answered %d RTT probes", chaosBlackout, n)
	}

	// Provider preference matrix: no representative is blacked out, so the
	// dumps must match relation for relation, in order.
	if !reflect.DeepEqual(clean.providers, faulted.providers) {
		t.Errorf("provider preference matrices diverged: %d vs %d relations",
			len(clean.providers), len(faulted.providers))
	}

	// NTT site-level preferences: the faulted run skips pairs touching the
	// quarantined site but must agree on every surviving pair.
	cleanLive := relSet(clean.siteRels, prefs.Item(chaosBlackout))
	faultedLive := relSet(faulted.siteRels, prefs.Item(chaosBlackout))
	if !reflect.DeepEqual(cleanLive, faultedLive) {
		t.Errorf("site preference relations diverged: %d vs %d live relations",
			len(cleanLive), len(faultedLive))
	}
	for r := range relSet(faulted.siteRels, -1) {
		if r.I == prefs.Item(chaosBlackout) || r.J == prefs.Item(chaosBlackout) {
			t.Errorf("faulted campaign recorded a relation for the quarantined site: %+v", r)
		}
	}
	// The log must show actual injected transport faults, not just the
	// quarantine bookkeeping — otherwise this test would pass vacuously with
	// the chaos layer unplugged.
	for _, want := range []string{
		"quarantine site 11", "skip simultaneous pair", "flap link=", "probe lost",
	} {
		found := false
		for _, line := range faulted.faultLog {
			if strings.Contains(line, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fault log is missing %q; degradation must not be silent", want)
		}
	}
}

// TestChaosSameSeedSameFailureTrace pins injection determinism: the same
// fault seed must reproduce both the campaign outputs and the failure trace
// byte for byte.
func TestChaosSameSeedSameFailureTrace(t *testing.T) {
	a := runChaosCampaign(t, chaosFaults(7))
	b := runChaosCampaign(t, chaosFaults(7))
	if !reflect.DeepEqual(a.rtt, b.rtt) || !reflect.DeepEqual(a.providers, b.providers) ||
		!reflect.DeepEqual(a.siteRels, b.siteRels) {
		t.Error("same fault seed produced different campaign outputs")
	}
	if !reflect.DeepEqual(a.quarantined, b.quarantined) {
		t.Errorf("quarantine sets differ: %v vs %v", a.quarantined, b.quarantined)
	}
	if !reflect.DeepEqual(a.faultLog, b.faultLog) {
		t.Errorf("failure traces differ across identical runs (%d vs %d lines)",
			len(a.faultLog), len(b.faultLog))
	}
}

// TestFaultsDisabledIsByteIdentical pins the zero-cost-when-off contract: a
// non-nil fault config with all rates zero must leave the campaign
// byte-identical to a nil one — same results, same probe accounting, no
// quorum, no log.
func TestFaultsDisabledIsByteIdentical(t *testing.T) {
	tb := newTB(t)
	cfg := DefaultConfig()
	d1 := New(tb, cfg)
	cfg2 := cfg
	cfg2.Faults = &fault.Config{Seed: 99} // all rates zero: disabled
	d2 := New(tb, cfg2)

	t1, err := d1.MeasureRTTs([]int{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d2.MeasureRTTs([]int{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1.Export(), t2.Export()) {
		t.Error("zero-rate fault config changed measurement results")
	}
	if d1.ProbesSent != d2.ProbesSent {
		t.Errorf("probe accounting diverged: %d vs %d", d1.ProbesSent, d2.ProbesSent)
	}
	if len(d2.FaultLog()) != 0 || d2.Quarantined() != nil {
		t.Error("disabled faults still produced fault-log or quarantine state")
	}
}
