package discovery

// Campaign sharding: the discovery schedule assigns nonces deterministically
// in submission order, so a campaign of E experiments can be split into n
// contiguous nonce ranges and each range run by an independent process. A
// shard executes the full (cheap) planning path — every batch is submitted,
// every nonce consumed — but only experiments inside its range actually run;
// the rest short-circuit to zero results. Each shard journals its results to
// its own checkpoint file; merging the files and replaying the schedule
// through the journal reconstructs the single-process campaign byte for byte,
// because every experiment is a pure function of its nonce and inputs.

import (
	"fmt"

	"anyopt/internal/testbed"
)

// CampaignExperiments returns the number of experiments RunDiscovery submits
// over tb — the length of the deterministic nonce schedule. The count is what
// shard workers split into contiguous ranges, so it must mirror the schedule
// exactly: one singleton RTT experiment per site, two order-controlled
// experiments per transit-provider pair, and (unless the RTT heuristic
// replaces them) one simultaneous experiment per site pair within each
// multi-site provider. Valid only for fault-free campaigns: quarantine under
// faults prunes representatives mid-schedule.
func CampaignExperiments(tb *testbed.Testbed, useRTTHeuristic bool) int {
	total := len(tb.Sites)
	providers := tb.TransitProviders()
	p := len(providers)
	total += p * (p - 1) // both orders of every provider pair
	if !useRTTHeuristic {
		for _, pASN := range providers {
			if s := len(tb.SitesOfTransit(pASN)); s >= 2 {
				total += s * (s - 1) / 2
			}
		}
	}
	return total
}

// ShardRange splits a campaign of total experiments into n contiguous nonce
// ranges and returns the half-open range [lo, hi) owned by 0-based shard i.
// Nonces are 1-based (runBatch pre-increments), ranges cover 1..total exactly
// once, and sizes differ by at most one.
func ShardRange(total, i, n int) (lo, hi uint64) {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("discovery: shard %d of %d", i, n))
	}
	return uint64(1 + i*total/n), uint64(1 + (i+1)*total/n)
}

// sharded reports whether the campaign is restricted to a shard range.
func (d *Discovery) sharded() bool { return d.Cfg.ShardHi > 0 }

// inShard reports whether the nonce falls in this process's shard range.
func (d *Discovery) inShard(nonce uint64) bool {
	return nonce >= d.Cfg.ShardLo && nonce < d.Cfg.ShardHi
}
