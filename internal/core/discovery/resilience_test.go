package discovery

import "testing"

// TestRowVoteBackfillAbsentQuorum pins the first-value-to-K-votes semantics
// for rows first observed after attempt 0: the backfilled implicit absent
// votes count toward quorum exactly as if they had been cast one at a time.
func TestRowVoteBackfillAbsentQuorum(t *testing.T) {
	const k = 3

	// Absent for the first k attempts: the absent side reached quorum before
	// the value ever appeared, so the ballot locks absent immediately — a
	// value showing up later must not gather k present votes and win.
	rv := &rowVote{}
	rv.backfillAbsent(k, k)
	if !rv.locked {
		t.Fatal("k backfilled absent votes did not lock the ballot")
	}
	for i := 0; i < k; i++ {
		rv.add(42, true, k)
	}
	if got := rv.resolve(); got.present {
		t.Fatalf("row resolved %+v, want locked absent", got)
	}

	// Below quorum the backfill is plain ballot history: a value present on
	// every subsequent attempt reaches k votes first and wins.
	rv = &rowVote{}
	rv.backfillAbsent(k-1, k)
	if rv.locked {
		t.Fatal("k-1 backfilled absent votes locked early")
	}
	for i := 0; i < k; i++ {
		rv.add(42, true, k)
	}
	got := rv.resolve()
	if !rv.locked || !got.present || got.val != 42 {
		t.Fatalf("row resolved %+v, want locked present 42", got)
	}
}
