package discovery

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"anyopt/internal/core/prefs"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

func newTB(t testing.TB) *testbed.Testbed {
	t.Helper()
	topo, err := topology.Generate(topology.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := testbed.New(topo, testbed.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestMeasureRTTs(t *testing.T) {
	tb := newTB(t)
	d := New(tb, DefaultConfig())
	tbl, err := d.MeasureRTTs([]int{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	if d.Experiments != 2 {
		t.Errorf("experiments = %d, want 2", d.Experiments)
	}
	total := len(tb.Topo.Targets)
	for _, site := range []int{1, 6} {
		n := tbl.Clients(site)
		if n < total*9/10 {
			t.Errorf("site %d: only %d/%d clients measured", site, n, total)
		}
		if m := tbl.MeanUnicast(site); m <= 0 || m > time.Second {
			t.Errorf("site %d: mean unicast %v implausible", site, m)
		}
	}
	if _, err := d.MeasureRTTs([]int{99}); err == nil {
		t.Error("unknown site accepted")
	}
	if _, ok := tbl.RTT(3, prefs.Client(tb.Topo.Targets[0].AS)); ok {
		t.Error("RTT for unmeasured site returned")
	}
}

func TestRTTsGeographicallySane(t *testing.T) {
	tb := newTB(t)
	cfg := DefaultConfig()
	cfg.Noisy = false
	d := New(tb, cfg)
	// Tokyo site (6) vs Amsterdam site (2): European clients should be much
	// closer to Amsterdam on average.
	tbl, err := d.MeasureRTTs([]int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	euCloserToAMS, euTotal := 0, 0
	for _, tg := range tb.Topo.Targets {
		as := tb.Topo.AS(tg.AS)
		if as.Coord.Lat < 35 || as.Coord.Lat > 70 || as.Coord.Lon < -10 || as.Coord.Lon > 30 {
			continue // not Europe-ish
		}
		c := prefs.Client(tg.AS)
		rttAMS, ok1 := tbl.RTT(2, c)
		rttTYO, ok2 := tbl.RTT(6, c)
		if !ok1 || !ok2 {
			continue
		}
		euTotal++
		if rttAMS < rttTYO {
			euCloserToAMS++
		}
	}
	if euTotal < 10 {
		t.Skip("too few European targets")
	}
	if frac := float64(euCloserToAMS) / float64(euTotal); frac < 0.9 {
		t.Errorf("only %.0f%% of European clients closer to Amsterdam than Tokyo", frac*100)
	}
}

func TestProviderPrefsOrderedVsNaive(t *testing.T) {
	tb := newTB(t)
	d := New(tb, DefaultConfig())
	reps := d.Representatives()
	if len(reps) != 6 {
		t.Fatalf("representatives = %d, want 6", len(reps))
	}

	ordered, err := d.ProviderPrefs(reps)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := d.ProviderPrefsNaive(reps)
	if err != nil {
		t.Fatal(err)
	}

	items := ordered.Items()
	bestOrder, fracOrdered := ordered.BestAnnouncementOrder(6)
	fracNaive := naive.FracWithTotalOrder(naive.Items())
	t.Logf("total-order fraction: ordered=%.3f naive=%.3f (best order %v)", fracOrdered, fracNaive, bestOrder)

	if fracOrdered < 0.75 {
		t.Errorf("ordered discovery: only %.1f%% of clients have a total order", fracOrdered*100)
	}
	if fracNaive >= fracOrdered {
		t.Errorf("naive (%.3f) should have fewer total orders than ordered (%.3f) — Figure 4b's contrast", fracNaive, fracOrdered)
	}
	if len(items) != 6 {
		t.Errorf("provider items = %d", len(items))
	}
	// 15 provider pairs, two ordered experiments each, plus 15 naive.
	if d.Experiments != 30+15 {
		t.Errorf("experiments = %d, want 45", d.Experiments)
	}
}

func TestSitePrefs(t *testing.T) {
	tb := newTB(t)
	d := New(tb, DefaultConfig())
	// NTT hosts 4 sites (6, 7, 9, 11) → 6 pairwise experiments.
	var ntt topology.ASN
	for _, a := range tb.Topo.Tier1s() {
		if a.Name == "NTT" {
			ntt = a.ASN
		}
	}
	store, err := d.SitePrefs(ntt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Experiments != 6 {
		t.Errorf("experiments = %d, want 6", d.Experiments)
	}
	items := store.Items()
	if len(items) != 4 {
		t.Fatalf("NTT site items = %v", items)
	}
	// Intra-AS prefs are IGP-driven and strict: nearly all clients should
	// have a total order.
	if frac := store.FracWithTotalOrder(items); frac < 0.9 {
		t.Errorf("intra-AS total-order fraction %.2f, want ≥0.9 (hot potato is deterministic)", frac)
	}
	if _, err := d.SitePrefs(topology.ASN(999999)); err == nil {
		t.Error("unknown provider accepted")
	}
}

func TestSitePrefsOrderInvariant(t *testing.T) {
	// §5.1: announcement order has no effect on intra-AS catchments. Two
	// independent simultaneous experiments (different jitter nonces) must
	// agree.
	tb := newTB(t)
	d := New(tb, DefaultConfig())
	var telia topology.ASN
	for _, a := range tb.Topo.Tier1s() {
		if a.Name == "Telia" {
			telia = a.ASN
		}
	}
	s1, err := d.SitePrefs(telia)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d.SitePrefs(telia)
	if err != nil {
		t.Fatal(err)
	}
	items := s1.Items()
	agree, total := 0, 0
	for _, c := range s1.Clients() {
		cp2 := s2.Get(c)
		if cp2 == nil {
			continue
		}
		for a := 0; a < len(items); a++ {
			for b := a + 1; b < len(items); b++ {
				r1, w1 := s1.Get(c).Relation(items[a], items[b])
				r2, w2 := cp2.Relation(items[a], items[b])
				if r1 == prefs.RelUnknown || r2 == prefs.RelUnknown {
					continue
				}
				total++
				if r1 == r2 && w1 == w2 {
					agree++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no comparable pairs")
	}
	if frac := float64(agree) / float64(total); frac < 0.94 {
		t.Errorf("intra-AS preferences unstable across runs: %.1f%% agreement", frac*100)
	}
}

func TestRepresentativeStability(t *testing.T) {
	// §5.1: varying the representative site changes few clients' provider
	// preferences (94.2% stable in the paper).
	tb := newTB(t)
	d := New(tb, DefaultConfig())
	repsA := d.Representatives()
	// Alternative representatives: highest site ID per provider.
	repsB := map[topology.ASN]int{}
	for _, s := range tb.Sites {
		if cur, ok := repsB[s.Transit]; !ok || s.ID > cur {
			repsB[s.Transit] = s.ID
		}
	}
	storeA, err := d.ProviderPrefs(repsA)
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := d.ProviderPrefs(repsB)
	if err != nil {
		t.Fatal(err)
	}
	items := storeA.Items()
	same, total := 0, 0
	for _, c := range storeA.Clients() {
		cpB := storeB.Get(c)
		if cpB == nil {
			continue
		}
		for a := 0; a < len(items); a++ {
			for b := a + 1; b < len(items); b++ {
				rA, wA := storeA.Get(c).Relation(items[a], items[b])
				rB, wB := cpB.Relation(items[a], items[b])
				if rA == prefs.RelUnknown || rB == prefs.RelUnknown {
					continue
				}
				total++
				if rA == rB && wA == wB {
					same++
				}
			}
		}
	}
	frac := float64(same) / float64(total)
	t.Logf("representative stability: %.1f%% of pairwise preferences unchanged (paper: 94.2%%)", frac*100)
	if frac < 0.80 {
		t.Errorf("representative stability %.1f%% too low", frac*100)
	}
}

func TestRunConfigurationWithPeers(t *testing.T) {
	tb := newTB(t)
	d := New(tb, DefaultConfig())
	base := []int{1, 3, 5}
	peer := tb.Site(4).PeerLinks[0]
	obs := d.RunConfigurationWithPeers(base, []topology.LinkID{peer})
	if len(obs) < len(tb.Topo.Targets)*8/10 {
		t.Fatalf("only %d observations", len(obs))
	}
	viaPeer := 0
	for _, o := range obs {
		if o.Link == peer {
			viaPeer++
			if o.Site != 4 {
				t.Errorf("peer link attributed to site %d, want 4", o.Site)
			}
		}
	}
	t.Logf("peer catchment: %d clients", viaPeer)
	// The peer AS itself is a target (transit or stub): it must use its own
	// peering.
	peerAS := tb.Topo.Link(peer).Other(tb.Origin)
	if o, ok := obs[prefs.Client(peerAS)]; ok && o.Link != peer {
		t.Errorf("peer AS entered via link %d, want its own peering %d", o.Link, peer)
	}
}

func TestScheduleAccountingMatchesPaper(t *testing.T) {
	// §4.5: 500 sites, 20 transits, 4 prefixes, 2 h spacing →
	// 250 h singleton (~10 days) + 190 h pairwise (~8 days).
	s := PlanTransitOnly(500, 20, 4, true)
	if s.SingletonExperiments != 500 {
		t.Errorf("singleton experiments = %d", s.SingletonExperiments)
	}
	if s.PairwiseExperiments != 380 {
		t.Errorf("pairwise experiments = %d, want 380", s.PairwiseExperiments)
	}
	if got := s.SingletonHours(); got != 250 {
		t.Errorf("singleton hours = %v, want 250", got)
	}
	if got := s.PairwiseHours(); got != 190 {
		t.Errorf("pairwise hours = %v, want 190", got)
	}
	if d := s.TotalDays(); math.Abs(d-440.0/24) > 1e-9 {
		t.Errorf("total days = %v", d)
	}
	// Naive flat pairwise for the same network would need O(sites²)
	// experiments — the reduction §4.3 buys.
	naivePairs := 500 * 499 / 2
	if naivePairs <= s.PairwiseExperiments*100 {
		t.Errorf("two-level reduction factor unexpectedly small")
	}
	// Order-oblivious discovery halves pairwise runs.
	if got := PlanTransitOnly(500, 20, 4, false).PairwiseExperiments; got != 190 {
		t.Errorf("order-oblivious pairwise = %d, want 190", got)
	}
	// Zero parallel prefixes clamps to 1.
	if got := PlanTransitOnly(10, 2, 0, false); got.SingletonHours() != 20 {
		t.Errorf("parallel clamp broken: %v", got.SingletonHours())
	}
}

func TestRunConfigurationDeterministicPerNonce(t *testing.T) {
	tb := newTB(t)
	cfg := DefaultConfig()
	cfg.Noisy = false
	d1 := New(tb, cfg)
	d2 := New(tb, cfg)
	a := d1.RunConfiguration([]int{1, 4})
	b := d2.RunConfiguration([]int{1, 4})
	if len(a) != len(b) {
		t.Fatalf("catchment sizes differ: %d vs %d", len(a), len(b))
	}
	for c, s := range a {
		if b[c] != s {
			t.Fatalf("client %d: %d vs %d", c, s, b[c])
		}
	}
}

func TestNaiveSitePrefsAcrossProviders(t *testing.T) {
	tb := newTB(t)
	d := New(tb, DefaultConfig())
	sites := []int{1, 3, 4, 5}
	store, err := d.NaiveSitePrefs(sites)
	if err != nil {
		t.Fatal(err)
	}
	if d.Experiments != 6 {
		t.Errorf("experiments = %d, want 6 pairs", d.Experiments)
	}
	if got := len(store.Items()); got != 4 {
		t.Errorf("items = %d", got)
	}
	_ = rand.Int
}

func TestMeasureRTTsParallelMatchesSerial(t *testing.T) {
	tb := newTB(t)
	cfg := DefaultConfig()
	cfg.Noisy = false
	sites := []int{1, 3, 4, 5, 6, 10}

	serial, err := New(tb, cfg).MeasureRTTs(sites)
	if err != nil {
		t.Fatal(err)
	}
	dPar := New(tb, cfg)
	parallel, err := dPar.MeasureRTTsParallel(sites)
	if err != nil {
		t.Fatal(err)
	}
	// Six sites over four prefixes = two slots instead of six.
	if dPar.Slots != 2 {
		t.Errorf("slots = %d, want 2", dPar.Slots)
	}
	if dPar.Experiments != len(sites) {
		t.Errorf("experiments = %d, want %d", dPar.Experiments, len(sites))
	}
	for _, site := range sites {
		if parallel.Clients(site) < serial.Clients(site)*95/100 {
			t.Errorf("site %d: parallel measured %d clients vs serial %d",
				site, parallel.Clients(site), serial.Clients(site))
		}
		close, total := 0, 0
		for _, tg := range tb.Topo.Targets {
			c := prefs.Client(tg.AS)
			a, ok1 := serial.RTT(site, c)
			b, ok2 := parallel.RTT(site, c)
			if !ok1 || !ok2 {
				continue
			}
			total++
			diff := float64(a-b) / float64(a)
			if diff < 0 {
				diff = -diff
			}
			if diff < 0.10 {
				close++
			}
		}
		if total == 0 {
			t.Fatalf("site %d: no comparable clients", site)
		}
		// Serial and parallel runs race independently (different jitter
		// nonces), so a minority of clients legitimately take different
		// paths to the site.
		if frac := float64(close) / float64(total); frac < 0.80 {
			t.Errorf("site %d: only %.0f%% of RTTs within 10%% of serial", site, frac*100)
		}
		sm := serial.MeanUnicast(site)
		pm := parallel.MeanUnicast(site)
		rel := float64(sm-pm) / float64(sm)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.12 {
			t.Errorf("site %d: mean unicast differs %.1f%% between serial and parallel", site, rel*100)
		}
	}
}

func TestMeasureRTTsParallelErrors(t *testing.T) {
	tb := newTB(t)
	d := New(tb, DefaultConfig())
	if _, err := d.MeasureRTTsParallel([]int{99}); err == nil {
		t.Error("unknown site accepted")
	}
}
