package discovery

import (
	"testing"
	"time"
)

func TestPlanCampaignTable1(t *testing.T) {
	tb := newTB(t)
	tl := PlanCampaign(tb, false, 4, 2*time.Hour)

	// Table 1: 15 singletons, C(6,2)×2 = 30 provider pairs, 13 site pairs
	// (Telia 3, Zayo 1, TATA 1, GTT 1, NTT 6, Sparkle 1).
	if got := tl.CountKind(KindSingleton); got != 15 {
		t.Errorf("singletons = %d, want 15", got)
	}
	if got := tl.CountKind(KindProviderPair); got != 30 {
		t.Errorf("provider pairs = %d, want 30", got)
	}
	if got := tl.CountKind(KindSitePair); got != 13 {
		t.Errorf("site pairs = %d, want 13", got)
	}
	total := len(tl.Experiments)
	if total != 58 {
		t.Fatalf("total experiments = %d, want 58", total)
	}
	// 58 experiments over 4 prefixes at 2 h spacing: the busiest prefix runs
	// ceil(58/4) = 15 slots → 30 h campaign.
	if got := tl.Duration(); got != 30*time.Hour {
		t.Errorf("duration = %v, want 30h", got)
	}

	// Prefix assignment must be balanced and starts non-overlapping per
	// prefix.
	perPrefix := map[int][]time.Duration{}
	for _, e := range tl.Experiments {
		if e.Prefix < 0 || e.Prefix >= 4 {
			t.Fatalf("experiment on prefix %d", e.Prefix)
		}
		perPrefix[e.Prefix] = append(perPrefix[e.Prefix], e.Start)
	}
	for p, starts := range perPrefix {
		if len(starts) < 14 || len(starts) > 15 {
			t.Errorf("prefix %d runs %d experiments; unbalanced", p, len(starts))
		}
		seen := map[time.Duration]bool{}
		for _, s := range starts {
			if seen[s] {
				t.Errorf("prefix %d has two experiments at %v", p, s)
			}
			seen[s] = true
			if s%(2*time.Hour) != 0 {
				t.Errorf("start %v not aligned to spacing", s)
			}
		}
	}
}

func TestPlanCampaignHeuristicSkipsSitePairs(t *testing.T) {
	tb := newTB(t)
	tl := PlanCampaign(tb, true, 4, 2*time.Hour)
	if got := tl.CountKind(KindSitePair); got != 0 {
		t.Errorf("site pairs = %d with RTT heuristic, want 0", got)
	}
	if total := len(tl.Experiments); total != 45 {
		t.Errorf("total = %d, want 45", total)
	}
}

func TestPlanCampaignDefaults(t *testing.T) {
	tb := newTB(t)
	tl := PlanCampaign(tb, true, 0, 0)
	if tl.Prefixes != 1 {
		t.Errorf("prefixes defaulted to %d", tl.Prefixes)
	}
	if tl.Spacing != 2*time.Hour {
		t.Errorf("spacing defaulted to %v", tl.Spacing)
	}
	// Serial: duration = n × spacing.
	if got, want := tl.Duration(), time.Duration(len(tl.Experiments))*2*time.Hour; got != want {
		t.Errorf("serial duration %v, want %v", got, want)
	}
}

func TestTimelineMatchesPlanArithmetic(t *testing.T) {
	// The concrete Table 1 plan must agree with the §4.5 closed-form
	// arithmetic for the same shape.
	tb := newTB(t)
	tl := PlanCampaign(tb, true, 4, 2*time.Hour)
	plan := PlanTransitOnly(15, 6, 4, true)
	if tl.CountKind(KindSingleton) != plan.SingletonExperiments {
		t.Errorf("singletons: timeline %d vs plan %d", tl.CountKind(KindSingleton), plan.SingletonExperiments)
	}
	if tl.CountKind(KindProviderPair) != plan.PairwiseExperiments {
		t.Errorf("pairwise: timeline %d vs plan %d", tl.CountKind(KindProviderPair), plan.PairwiseExperiments)
	}
}
