package discovery

import (
	"reflect"
	"testing"

	"anyopt/internal/core/prefs"
	"anyopt/internal/topology"
)

// campaignResult captures everything a full discovery campaign produces, in
// comparable form.
type campaignResult struct {
	RTTs        map[int]map[prefs.Client]int64
	Provider    []prefs.DumpedRelation
	Sites       map[topology.ASN][]prefs.DumpedRelation
	Naive       []prefs.DumpedRelation
	Experiments int
	Slots       int
	Probes      uint64
}

// runCampaign executes the full measurement campaign — singleton RTTs
// (serial and parallel-prefix), order-controlled provider preferences,
// site-level preferences for every multi-site provider, and the naive
// baseline — with the given worker count.
func runCampaign(t *testing.T, workers int) campaignResult {
	t.Helper()
	tb := newTB(t)
	cfg := DefaultConfig()
	cfg.Workers = workers
	d := New(tb, cfg)

	allSites := make([]int, len(tb.Sites))
	for i, s := range tb.Sites {
		allSites[i] = s.ID
	}
	tbl, err := d.MeasureRTTsParallel(allSites)
	if err != nil {
		t.Fatal(err)
	}
	reps := d.Representatives()
	provider, err := d.ProviderPrefs(reps)
	if err != nil {
		t.Fatal(err)
	}
	sites := make(map[topology.ASN][]prefs.DumpedRelation)
	for _, p := range tb.TransitProviders() {
		if len(tb.SitesOfTransit(p)) < 2 {
			continue
		}
		st, err := d.SitePrefs(p)
		if err != nil {
			t.Fatal(err)
		}
		sites[p] = st.Dump()
	}
	naive, err := d.ProviderPrefsNaive(reps)
	if err != nil {
		t.Fatal(err)
	}
	return campaignResult{
		RTTs:        tbl.Export(),
		Provider:    provider.Dump(),
		Sites:       sites,
		Naive:       naive.Dump(),
		Experiments: d.Experiments,
		Slots:       d.Slots,
		Probes:      d.ProbesSent,
	}
}

// TestParallelCampaignDeterminism is the executor's core guarantee: a full
// discovery campaign must produce byte-identical preference stores, RTT
// tables, and counters no matter how many workers run it. Nonces are
// assigned at submission time, so scheduling cannot leak into results.
func TestParallelCampaignDeterminism(t *testing.T) {
	serial := runCampaign(t, 1)
	if serial.Experiments == 0 || serial.Probes == 0 {
		t.Fatalf("campaign ran no experiments (exps=%d probes=%d)", serial.Experiments, serial.Probes)
	}
	for _, workers := range []int{2, 4} {
		parallel := runCampaign(t, workers)
		if !reflect.DeepEqual(serial, parallel) {
			if !reflect.DeepEqual(serial.RTTs, parallel.RTTs) {
				t.Errorf("workers=%d: RTT tables differ", workers)
			}
			if !reflect.DeepEqual(serial.Provider, parallel.Provider) {
				t.Errorf("workers=%d: provider preference stores differ", workers)
			}
			if !reflect.DeepEqual(serial.Sites, parallel.Sites) {
				t.Errorf("workers=%d: site preference stores differ", workers)
			}
			if !reflect.DeepEqual(serial.Naive, parallel.Naive) {
				t.Errorf("workers=%d: naive preference stores differ", workers)
			}
			if serial.Experiments != parallel.Experiments || serial.Slots != parallel.Slots || serial.Probes != parallel.Probes {
				t.Errorf("workers=%d: counters differ: serial exps=%d slots=%d probes=%d, parallel exps=%d slots=%d probes=%d",
					workers, serial.Experiments, serial.Slots, serial.Probes,
					parallel.Experiments, parallel.Slots, parallel.Probes)
			}
			t.Fatalf("workers=%d: parallel campaign diverged from serial", workers)
		}
	}
}

// TestBatchedDriversMatchSingleCalls pins the batch APIs to their serial
// single-call equivalents: two fresh campaigns with the same seeds, one
// using RunConfiguration twice, one using RunConfigurations once, must agree
// on results and nonce consumption.
func TestBatchedDriversMatchSingleCalls(t *testing.T) {
	cfgA := []int{1, 6}
	cfgB := []int{6, 1}

	one := New(newTB(t), DefaultConfig())
	r1 := one.RunConfiguration(cfgA)
	r2 := one.RunConfiguration(cfgB)

	two := New(newTB(t), DefaultConfig())
	batch := two.RunConfigurations([][]int{cfgA, cfgB})

	if !reflect.DeepEqual(r1, batch[0]) || !reflect.DeepEqual(r2, batch[1]) {
		t.Fatal("RunConfigurations diverged from sequential RunConfiguration calls")
	}
	if one.Experiments != two.Experiments || one.ProbesSent != two.ProbesSent {
		t.Fatalf("counters diverged: single exps=%d probes=%d, batch exps=%d probes=%d",
			one.Experiments, one.ProbesSent, two.Experiments, two.ProbesSent)
	}
}
