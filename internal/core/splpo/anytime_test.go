package splpo

import (
	"math"
	"math/rand"
	"testing"

	"anyopt/internal/exec"
)

// --- SiteSet units ---

func TestSiteSetBasics(t *testing.T) {
	s := NewSiteSet(130)
	for _, site := range []int{0, 63, 64, 100, 129} {
		s.Add(site)
	}
	if s.Count() != 5 {
		t.Fatalf("count %d, want 5", s.Count())
	}
	for _, site := range []int{0, 63, 64, 100, 129} {
		if !s.Has(site) {
			t.Errorf("missing site %d", site)
		}
	}
	if s.Has(1) || s.Has(130) || s.Has(-1) {
		t.Error("phantom membership")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 4 {
		t.Error("remove failed")
	}
	c := s.Clone()
	c.Add(5)
	if s.Has(5) {
		t.Error("clone shares storage")
	}
	if got := s.Sites(); len(got) != 4 || got[0] != 0 || got[3] != 129 {
		t.Errorf("sites %v", got)
	}
	if s.String() != "{0 63 100 129}" {
		t.Errorf("string %q", s.String())
	}
}

func TestSiteSetMaskRoundTrip(t *testing.T) {
	mask := uint64(0b1011001)
	s := SiteSetFromMask(7, mask)
	if s.Mask() != mask {
		t.Fatalf("mask %b, want %b", s.Mask(), mask)
	}
	if s.Count() != 4 {
		t.Fatalf("count %d", s.Count())
	}
	// Out-of-capacity bits are dropped.
	if SiteSetFromMask(3, 0b11111).Mask() != 0b111 {
		t.Error("capacity clamp failed")
	}
}

func TestSiteSetLess(t *testing.T) {
	a := SiteSetOf(130, 0, 100)
	b := SiteSetOf(130, 1, 100)
	if !a.Less(b) || b.Less(a) {
		t.Error("site 0 should order before site 1")
	}
	c := SiteSetOf(130, 0, 100)
	if a.Less(c) || c.Less(a) {
		t.Error("equal sets must not be Less")
	}
	// Difference in a higher word.
	d := SiteSetOf(130, 0, 100, 128)
	if !d.Less(a) {
		// d opens 128 where a is closed: d has the lower differing bit.
		t.Error("extra high site should order first (it holds the differing bit)")
	}
}

// --- >63-site guards ---

func TestBitmaskSolversRejectLargeInstances(t *testing.T) {
	in := &Instance{NumSites: 64}
	for c := 0; c < 4; c++ {
		in.Clients = append(in.Clients, Client{
			Ranking:  []int{c, 63 - c},
			RankCost: []float64{1, 2},
		})
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("64-site instance must validate: %v", err)
	}
	if _, _, err := Exhaustive(in, Options{}); err == nil {
		t.Error("Exhaustive accepted a 64-site instance")
	}
	if _, err := LocalSearch(in, 1, Options{}, 0); err == nil {
		t.Error("LocalSearch accepted a 64-site instance")
	}
	if _, err := GreedyByCost(in, 2); err == nil {
		t.Error("GreedyByCost accepted a 64-site instance")
	}
	if _, err := Search(in, SearchOptions{MaxWork: 10_000}); err != nil {
		t.Errorf("anytime Search must accept a 64-site instance: %v", err)
	}
}

// --- incremental evaluator differentials ---

// randomSparseInstance is randomInstance with truncated sparse rankings —
// the internet-scale shape (unserved clients possible).
func randomSparseInstance(rng *rand.Rand, nSites, nClients, width int, capped bool) *Instance {
	in := &Instance{NumSites: nSites}
	totalLoad := 0.0
	for c := 0; c < nClients; c++ {
		perm := rng.Perm(nSites)[:width]
		rankCost := make([]float64, width)
		for i := range rankCost {
			rankCost[i] = 10 + rng.Float64()*190
		}
		w := 1 + rng.Float64()*4
		in.Clients = append(in.Clients, Client{
			Ranking: perm, RankCost: rankCost, Weight: w, Load: w,
		})
		totalLoad += w
	}
	if capped {
		in.Cap = make([]float64, nSites)
		for s := range in.Cap {
			in.Cap[s] = totalLoad / float64(nSites) * (1 + rng.Float64()*2)
		}
	}
	return in
}

func statsClose(t *testing.T, got, want Stats, context string) {
	t.Helper()
	if got.Served != want.Served || got.Unserved != want.Unserved || got.Open != want.Open {
		t.Fatalf("%s: counts diverged: got %+v want %+v", context, got, want)
	}
	tol := 1e-6
	if math.Abs(got.FiniteCost-want.FiniteCost) > tol*(1+math.Abs(want.FiniteCost)) {
		t.Fatalf("%s: finite cost %v vs %v", context, got.FiniteCost, want.FiniteCost)
	}
	if math.Abs(got.Weight-want.Weight) > tol*(1+math.Abs(want.Weight)) {
		t.Fatalf("%s: weight %v vs %v", context, got.Weight, want.Weight)
	}
	if math.Abs(got.CapExcess-want.CapExcess) > tol*(1+math.Abs(want.CapExcess)) {
		t.Fatalf("%s: cap excess %v vs %v", context, got.CapExcess, want.CapExcess)
	}
}

// TestDeltaEvalDifferential drives random open/close sequences — including
// marked speculative bursts that roll back — and checks the running
// aggregates against a from-scratch EvaluateSet after every step.
func TestDeltaEvalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		capped := trial%2 == 1
		nSites := 8 + rng.Intn(60)
		width := 3 + rng.Intn(nSites/2)
		in := randomSparseInstance(rng, nSites, 30+rng.Intn(50), width, capped)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		init := NewSiteSet(nSites)
		for s := 0; s < nSites; s++ {
			if rng.Intn(2) == 0 {
				init.Add(s)
			}
		}
		d := NewDeltaEval(in, init)
		check := func(context string) {
			t.Helper()
			statsClose(t, d.Stats(), in.EvaluateSet(d.OpenSet(), nil), context)
		}
		check("initial")
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0:
				d.Open(rng.Intn(nSites))
			case 1:
				d.Close(rng.Intn(nSites))
			case 2:
				// Speculative burst, rolled back.
				before := d.Stats()
				mark := d.Mark()
				for i := 0; i < 1+rng.Intn(4); i++ {
					if rng.Intn(2) == 0 {
						d.Open(rng.Intn(nSites))
					} else {
						d.Close(rng.Intn(nSites))
					}
				}
				d.RollbackTo(mark)
				statsClose(t, d.Stats(), before, "rollback restore")
			case 3:
				d.Commit()
			}
			check("after step")
		}
		// Reset resynchronizes exactly.
		d.Reset(d.OpenSet().Clone())
		check("after reset")
	}
}

// TestDeltaEvalPatchDifferential checks that patching churned clients into
// a live evaluator is indistinguishable from rebuilding on the new instance.
func TestDeltaEvalPatchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		nSites := 10 + rng.Intn(40)
		width := 3 + rng.Intn(5)
		in := randomSparseInstance(rng, nSites, 40, width, trial%2 == 0)
		init := NewSiteSet(nSites)
		for s := 0; s < nSites; s++ {
			if rng.Intn(3) != 0 {
				init.Add(s)
			}
		}
		d := NewDeltaEval(in, init)
		// Drift the evaluator off its initial state first.
		for i := 0; i < 10; i++ {
			d.Open(rng.Intn(nSites))
			d.Close(rng.Intn(nSites))
		}

		// Churn a third of the clients.
		next := &Instance{NumSites: nSites, Cap: in.Cap}
		next.Clients = append([]Client(nil), in.Clients...)
		var changed []int
		for c := range next.Clients {
			if rng.Intn(3) != 0 {
				continue
			}
			perm := rng.Perm(nSites)[:width]
			rankCost := make([]float64, width)
			for i := range rankCost {
				rankCost[i] = 10 + rng.Float64()*190
			}
			next.Clients[c] = Client{
				Ranking: perm, RankCost: rankCost,
				Weight: next.Clients[c].Weight, Load: next.Clients[c].Load,
			}
			changed = append(changed, c)
		}
		open := d.OpenSet().Clone()
		if !d.Patch(next, changed) {
			t.Fatal("compatible patch rejected")
		}
		fresh := NewDeltaEval(next, open)
		statsClose(t, d.Stats(), fresh.Stats(), "patched vs rebuilt")
		for c := range next.Clients {
			if d.AssignedPos(c) != fresh.AssignedPos(c) {
				t.Fatalf("client %d assignment diverged: %d vs %d", c, d.AssignedPos(c), fresh.AssignedPos(c))
			}
		}
		// The patched evaluator keeps working correctly.
		d.Open(rng.Intn(nSites))
		d.Close(rng.Intn(nSites))
		statsClose(t, d.Stats(), next.EvaluateSet(d.OpenSet(), nil), "post-patch moves")
	}
}

func TestDeltaEvalPatchRejectsShapeChange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomSparseInstance(rng, 10, 20, 3, false)
	d := NewDeltaEval(in, SiteSetOf(10, 0, 1))
	if d.Patch(&Instance{NumSites: 11, Clients: in.Clients}, nil) {
		t.Error("site-count change accepted")
	}
	short := &Instance{NumSites: 10, Clients: in.Clients[:19]}
	if d.Patch(short, nil) {
		t.Error("client-count change accepted")
	}
	if d.Patch(&Instance{NumSites: 10, Clients: in.Clients}, []int{99}) {
		t.Error("out-of-range changed client accepted")
	}
}

// --- anytime search vs Exhaustive ---

// TestSearchMatchesExhaustive pins the anytime solver to the proven optimum
// on paper-scale instances, across the constraint surface: free size,
// ExactSize, ForbiddenMask, and RequireFeasible with caps.
func TestSearchMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pool := exec.New(4)
	defer pool.Close()
	for trial := 0; trial < 12; trial++ {
		nSites := 6 + rng.Intn(10) // 6..15
		in := randomInstance(rng, nSites, 20+rng.Intn(30))
		mode := trial % 4
		opts := Options{}
		sopts := SearchOptions{Seed: int64(trial + 1)}
		switch mode {
		case 1:
			opts.ExactSize = 1 + rng.Intn(nSites-2)
			sopts.ExactSize = opts.ExactSize
		case 2:
			forbidden := rng.Intn(nSites)
			opts.ForbiddenMask = 1 << uint(forbidden)
			sopts.Forbidden = SiteSetOf(nSites, forbidden)
		case 3:
			// Capacitate: per-site cap at half the client count, feasible
			// with enough sites open.
			in.Cap = make([]float64, nSites)
			for s := range in.Cap {
				in.Cap[s] = float64(len(in.Clients)) / 2
			}
			opts.RequireFeasible = true
			sopts.RequireFeasible = true
		}
		want, _, err := Exhaustive(in, opts)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		got, err := SearchParallel(in, sopts, 4, pool)
		if err != nil {
			t.Fatalf("trial %d (mode %d): search: %v", trial, mode, err)
		}
		if math.Abs(got.MeanCost-want.MeanCost) > 1e-9*(1+want.MeanCost) {
			t.Errorf("trial %d (mode %d): search mean %v, exhaustive optimum %v (open %v vs subset %b)",
				trial, mode, got.MeanCost, want.MeanCost, got.Open, want.Subset)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomSparseInstance(rng, 80, 200, 8, false)
	a, err := Search(in, SearchOptions{Seed: 3, MaxWork: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(in, SearchOptions{Seed: 3, MaxWork: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Open.Equal(b.Open) || a.Evals != b.Evals || a.Moves != b.Moves {
		t.Fatalf("same seed diverged: %v/%d/%d vs %v/%d/%d",
			a.Open, a.Evals, a.Moves, b.Open, b.Evals, b.Moves)
	}
}

// TestSearchParallelDeterministicAcrossWorkers: the multi-start merge must
// be independent of pool width.
func TestSearchParallelDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randomSparseInstance(rng, 100, 300, 8, false)
	opts := SearchOptions{Seed: 2, MaxWork: 400_000}
	pool1 := exec.New(1)
	defer pool1.Close()
	pool8 := exec.New(8)
	defer pool8.Close()
	a, err := SearchParallel(in, opts, 6, pool1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchParallel(in, opts, 6, pool8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := SearchParallel(in, opts, 6, nil) // serial fallback
	if err != nil {
		t.Fatal(err)
	}
	if !a.Open.Equal(b.Open) || !a.Open.Equal(c.Open) {
		t.Fatalf("merge depends on worker count: %v / %v / %v", a.Open, b.Open, c.Open)
	}
	if a.MeanCost != b.MeanCost || a.MeanCost != c.MeanCost {
		t.Fatalf("mean depends on worker count")
	}
}

func TestSearchStopHook(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randomSparseInstance(rng, 80, 200, 8, false)
	calls := 0
	res, err := Search(in, SearchOptions{
		Seed: 1,
		Stop: func() bool { calls++; return calls > 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls < 4 {
		t.Fatalf("stop hook polled %d times", calls)
	}
	if res.Open.Empty() {
		t.Fatal("stopped run returned no configuration")
	}
}

func TestSearchRejectsBadOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := randomSparseInstance(rng, 10, 20, 3, false)
	if _, err := Search(in, SearchOptions{ExactSize: 11}); err == nil {
		t.Error("ExactSize > usable sites accepted")
	}
	all := NewSiteSet(10)
	for s := 0; s < 10; s++ {
		all.Add(s)
	}
	if _, err := Search(in, SearchOptions{Forbidden: all}); err == nil {
		t.Error("all-forbidden accepted")
	}
}

// --- warm restart ---

func TestWarmReoptimize(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nSites := 12
	in := randomInstance(rng, nSites, 40)
	w, err := NewWarm(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	sopts := SearchOptions{Seed: 1}
	first, err := w.Solve(sopts)
	if err != nil {
		t.Fatal(err)
	}
	wantFirst, _, err := Exhaustive(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(first.MeanCost-wantFirst.MeanCost) > 1e-9*(1+wantFirst.MeanCost) {
		t.Fatalf("cold solve mean %v, optimum %v", first.MeanCost, wantFirst.MeanCost)
	}

	// Churn a handful of clients and re-optimize warm.
	next := &Instance{NumSites: nSites}
	next.Clients = append([]Client(nil), in.Clients...)
	changed := []int{3, 9, 27, 3} // duplicate on purpose: Warm dedups
	for _, c := range []int{3, 9, 27} {
		cost := make([]float64, nSites)
		for s := range cost {
			cost[s] = 10 + rng.Float64()*190
		}
		next.Clients[c] = Client{Ranking: rng.Perm(nSites), Cost: cost}
	}
	res, err := w.Reoptimize(next, 2, changed, sopts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patched != 3 {
		t.Errorf("patched %d clients, want 3", res.Patched)
	}
	want, _, err := Exhaustive(next, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanCost-want.MeanCost) > 1e-9*(1+want.MeanCost) {
		t.Errorf("warm mean %v, new optimum %v", res.MeanCost, want.MeanCost)
	}
	if w.Gen() != 2 {
		t.Errorf("gen %d, want 2", w.Gen())
	}
	// Exact agreement of the reported stats with a full evaluation.
	statsClose(t, res.Stats, next.EvaluateSet(res.Open, nil), "warm result stats")
}

// TestWarmCheaperThanCold: after small churn, the warm path should reach
// its answer with less search work than a cold run at the same options —
// the whole point of the inverted-index patch + warm initial set.
func TestWarmCheaperThanCold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := randomSparseInstance(rng, 120, 400, 8, false)
	w, err := NewWarm(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := SearchOptions{Seed: 1, MaxWork: 2_000_000}
	if _, err := w.Solve(opts); err != nil {
		t.Fatal(err)
	}

	next := &Instance{NumSites: in.NumSites}
	next.Clients = append([]Client(nil), in.Clients...)
	var changed []int
	for c := 0; c < len(next.Clients); c += 40 { // 2.5% churn
		perm := rng.Perm(in.NumSites)[:8]
		rankCost := make([]float64, 8)
		for i := range rankCost {
			rankCost[i] = 10 + rng.Float64()*190
		}
		next.Clients[c] = Client{Ranking: perm, RankCost: rankCost,
			Weight: next.Clients[c].Weight, Load: next.Clients[c].Load}
		changed = append(changed, c)
	}

	// The warm run gets 15% of the cold budget: starting from the previous
	// optimum with a patched index, that must be enough to match a
	// full-budget cold solve (and clearly beat a cold solve at the same
	// small budget, which is nowhere near converged on 120 sites).
	smallOpts := opts
	smallOpts.MaxWork = opts.MaxWork * 15 / 100
	warmRes, err := w.Reoptimize(next, 2, changed, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Patched != len(changed) {
		t.Errorf("patched %d, want %d", warmRes.Patched, len(changed))
	}
	coldFull, err := Search(next, opts)
	if err != nil {
		t.Fatal(err)
	}
	coldSmall, err := Search(next, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.MeanCost > coldFull.MeanCost*1.01 {
		t.Errorf("warm at 15%% budget (mean %v) fell behind full-budget cold (mean %v)",
			warmRes.MeanCost, coldFull.MeanCost)
	}
	if warmRes.MeanCost > coldSmall.MeanCost*(1+1e-9) {
		t.Errorf("warm at small budget (mean %v) did not beat equal-budget cold (mean %v)",
			warmRes.MeanCost, coldSmall.MeanCost)
	}
}
