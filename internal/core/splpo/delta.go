package splpo

// Incremental delta evaluation for the anytime local-search solver.
//
// A DeltaEval maintains, for one Instance and one evolving open-site set,
// every client's current assignment (as a position in its own ranking) plus
// the aggregate statistics an evaluation reports. An inverted index — for
// each site, the (client, rank position) pairs that rank it — lets a site
// open/close move touch only the clients whose assignment can actually
// change: opening s reassigns exactly the clients that rank s above their
// current site, closing s reassigns exactly the clients currently served by
// s. Every mutation is journaled, so a candidate move can be applied, its
// effect read off the running aggregates, and rolled back — all without
// allocating in steady state.
//
// Aggregates are maintained by compensated addition and subtraction of the
// affected clients' contributions, so after long move sequences they can
// drift from a from-scratch evaluation by floating-point rounding. The
// solver treats DeltaEval as search guidance and reports final results from
// a full EvaluateSet; the differential tests bound the drift at ~1e-9
// relative over thousands of moves.

// clientRef is one inverted-index entry: client ranks the indexed site at
// position pos of its ranking.
type clientRef struct {
	client int32
	pos    int32
}

// deltaOp is one journaled mutation.
type deltaOp struct {
	kind   uint8 // opOpenSite, opCloseSite, opAssign
	site   int32
	client int32
	oldPos int32
}

const (
	opOpenSite = iota
	opCloseSite
	opAssign
)

// DeltaEval is the incremental evaluator. Create one with NewDeltaEval,
// mutate it with Open/Close, checkpoint with Mark and undo with RollbackTo.
type DeltaEval struct {
	in *Instance

	// siteRefs[s] is the inverted index: the clients ranking site s, in
	// ascending client order (Patch preserves the order on churn).
	siteRefs [][]clientRef

	// assignedPos[c] is the position in client c's ranking of its current
	// site, or -1 when no acceptable site is open.
	assignedPos []int32

	open      SiteSet
	openCount int

	finiteCost float64
	weight     float64
	served     int
	capExcess  float64
	siteLoad   []float64

	journal []deltaOp

	// work counts client touches (index entries scanned plus ranking steps
	// walked) — the solver's evaluation-budget unit.
	work int64
}

// NewDeltaEval builds the evaluator for in, assigning every client against
// the given initial open set. The instance must already be validated; the
// initial set is copied.
func NewDeltaEval(in *Instance, open SiteSet) *DeltaEval {
	d := &DeltaEval{
		in:          in,
		siteRefs:    make([][]clientRef, in.NumSites),
		assignedPos: make([]int32, len(in.Clients)),
		open:        NewSiteSet(in.NumSites),
		siteLoad:    make([]float64, in.NumSites),
	}
	counts := make([]int32, in.NumSites)
	for i := range in.Clients {
		for _, s := range in.Clients[i].Ranking {
			counts[s]++
		}
	}
	// One backing array for the whole index; per-site slices carved from it
	// at exact capacity. Patch appends per site, which copies a site's slice
	// out of the shared block on first growth — exactly the sites that
	// churned, leaving the rest of the index in one contiguous block.
	total := 0
	for _, c := range counts {
		total += int(c)
	}
	backing := make([]clientRef, total)
	off := 0
	for s := 0; s < in.NumSites; s++ {
		n := int(counts[s])
		d.siteRefs[s] = backing[off : off : off+n]
		off += n
	}
	for i := range in.Clients {
		for p, s := range in.Clients[i].Ranking {
			d.siteRefs[s] = append(d.siteRefs[s], clientRef{client: int32(i), pos: int32(p)})
		}
	}
	d.Reset(open)
	return d
}

// Reset reassigns every client from scratch against the given open set and
// clears the journal — an exact resynchronization point.
func (d *DeltaEval) Reset(open SiteSet) {
	d.open.Clear()
	open.ForEach(func(s int) { d.open.Add(s) })
	d.openCount = d.open.Count()
	d.finiteCost, d.weight, d.capExcess = 0, 0, 0
	d.served = 0
	for i := range d.siteLoad {
		d.siteLoad[i] = 0
	}
	d.journal = d.journal[:0]
	for i := range d.in.Clients {
		c := &d.in.Clients[i]
		d.assignedPos[i] = -1
		for p, s := range c.Ranking {
			if d.open.Has(s) {
				d.assignedPos[i] = int32(p)
				w := c.weight()
				d.finiteCost += w * c.costAt(p)
				d.weight += w
				d.served++
				d.siteLoad[s] += c.Load
				break
			}
		}
	}
	if d.in.Cap != nil {
		d.open.ForEach(func(s int) {
			if d.siteLoad[s] > d.in.Cap[s] {
				d.capExcess += d.siteLoad[s] - d.in.Cap[s]
			}
		})
	}
}

// Stats returns the current aggregates in O(1).
func (d *DeltaEval) Stats() Stats {
	return Stats{
		FiniteCost: d.finiteCost,
		Weight:     d.weight,
		Served:     d.served,
		Unserved:   len(d.in.Clients) - d.served,
		CapExcess:  d.capExcess,
		Open:       d.openCount,
	}
}

// OpenSet returns a read-only view of the current open set. The returned
// set shares storage with the evaluator: callers must Clone before mutating.
func (d *DeltaEval) OpenSet() SiteSet { return d.open }

// OpenCount returns the number of open sites.
func (d *DeltaEval) OpenCount() int { return d.openCount }

// Work returns the cumulative client-touch count — the evaluation budget
// unit: one unit per inverted-index entry scanned or ranking step walked.
func (d *DeltaEval) Work() int64 { return d.work }

// SiteLoad returns site s's current load.
func (d *DeltaEval) SiteLoad(s int) float64 { return d.siteLoad[s] }

// AssignedPos returns client c's assignment as a position in its ranking,
// or -1 when unserved.
func (d *DeltaEval) AssignedPos(c int) int { return int(d.assignedPos[c]) }

// Mark returns a journal checkpoint for RollbackTo.
func (d *DeltaEval) Mark() int { return len(d.journal) }

// Commit discards rollback history; prior marks become invalid.
func (d *DeltaEval) Commit() { d.journal = d.journal[:0] }

// excessDelta adjusts capExcess for site s's load moving from oldLoad to
// the current siteLoad[s]; only open, capped sites contribute.
func (d *DeltaEval) excessDelta(s int, oldLoad float64) {
	if d.in.Cap == nil || !d.open.Has(s) {
		return
	}
	cap := d.in.Cap[s]
	if oldLoad > cap {
		d.capExcess -= oldLoad - cap
	}
	if l := d.siteLoad[s]; l > cap {
		d.capExcess += l - cap
	}
}

// assign moves client c to ranking position newPos (-1 = unserved),
// journaling the old position and updating every aggregate.
func (d *DeltaEval) assign(c int32, newPos int32) {
	oldPos := d.assignedPos[c]
	if oldPos == newPos {
		return
	}
	d.journal = append(d.journal, deltaOp{kind: opAssign, client: c, oldPos: oldPos})
	d.applyAssign(c, oldPos, newPos)
}

// applyAssign is assign without journaling — shared by rollback.
func (d *DeltaEval) applyAssign(c int32, oldPos, newPos int32) {
	cl := &d.in.Clients[c]
	w := cl.weight()
	if oldPos >= 0 {
		s := cl.Ranking[oldPos]
		d.finiteCost -= w * cl.costAt(int(oldPos))
		d.weight -= w
		d.served--
		old := d.siteLoad[s]
		d.siteLoad[s] -= cl.Load
		d.excessDelta(s, old)
	}
	if newPos >= 0 {
		s := cl.Ranking[newPos]
		d.finiteCost += w * cl.costAt(int(newPos))
		d.weight += w
		d.served++
		old := d.siteLoad[s]
		d.siteLoad[s] += cl.Load
		d.excessDelta(s, old)
	}
	d.assignedPos[c] = newPos
}

// Open opens site s, reassigning exactly the clients that rank s above
// their current site (or are unserved). Reports whether the set changed.
func (d *DeltaEval) Open(s int) bool {
	if s < 0 || s >= d.in.NumSites || d.open.Has(s) {
		return false
	}
	d.journal = append(d.journal, deltaOp{kind: opOpenSite, site: int32(s)})
	d.open.Add(s)
	d.openCount++
	for _, ref := range d.siteRefs[s] {
		d.work++
		cur := d.assignedPos[ref.client]
		if cur < 0 || ref.pos < cur {
			d.assign(ref.client, ref.pos)
		}
	}
	return true
}

// Close closes site s, reassigning each client it served to the next open
// site in that client's ranking (or to unserved). Reports whether the set
// changed.
func (d *DeltaEval) Close(s int) bool {
	if s < 0 || s >= d.in.NumSites || !d.open.Has(s) {
		return false
	}
	d.journal = append(d.journal, deltaOp{kind: opCloseSite, site: int32(s)})
	// Remove the site's entire cap excess up front; the per-client load
	// changes below see a closed site and skip excess tracking, leaving the
	// invariant intact once the load drains to zero.
	if d.in.Cap != nil && d.siteLoad[s] > d.in.Cap[s] {
		d.capExcess -= d.siteLoad[s] - d.in.Cap[s]
	}
	d.open.Remove(s)
	d.openCount--
	for _, ref := range d.siteRefs[s] {
		d.work++
		if d.assignedPos[ref.client] != ref.pos {
			continue
		}
		cl := &d.in.Clients[ref.client]
		newPos := int32(-1)
		for p := int(ref.pos) + 1; p < len(cl.Ranking); p++ {
			d.work++
			if d.open.Has(cl.Ranking[p]) {
				newPos = int32(p)
				break
			}
		}
		d.assign(ref.client, newPos)
	}
	return true
}

// RollbackTo undoes every mutation journaled after mark (from Mark).
func (d *DeltaEval) RollbackTo(mark int) {
	for len(d.journal) > mark {
		op := d.journal[len(d.journal)-1]
		d.journal = d.journal[:len(d.journal)-1]
		switch op.kind {
		case opAssign:
			d.applyAssign(op.client, d.assignedPos[op.client], op.oldPos)
		case opOpenSite:
			// All assignments made by the Open have already been undone, so
			// the site's load is back to (numerically) zero; drop whatever
			// residual excess it carries and close it.
			s := int(op.site)
			if d.in.Cap != nil && d.siteLoad[s] > d.in.Cap[s] {
				d.capExcess -= d.siteLoad[s] - d.in.Cap[s]
			}
			d.open.Remove(s)
			d.openCount--
		case opCloseSite:
			// All reassignments away from the site have been undone, so its
			// load is restored; reopen it and re-add its excess.
			s := int(op.site)
			d.open.Add(s)
			d.openCount++
			if d.in.Cap != nil && d.siteLoad[s] > d.in.Cap[s] {
				d.capExcess += d.siteLoad[s] - d.in.Cap[s]
			}
		}
	}
}

// GainOfOpen estimates the effect of opening closed site s without mutating
// state: newlyServed counts currently-unserved clients s would capture, and
// costDelta is the (weighted) change in finite cost from clients that would
// switch to s. O(|clients ranking s|).
func (d *DeltaEval) GainOfOpen(s int) (newlyServed int, costDelta float64) {
	if d.open.Has(s) {
		return 0, 0
	}
	for _, ref := range d.siteRefs[s] {
		d.work++
		cur := d.assignedPos[ref.client]
		cl := &d.in.Clients[ref.client]
		if cur < 0 {
			newlyServed++
			costDelta += cl.weight() * cl.costAt(int(ref.pos))
		} else if ref.pos < cur {
			costDelta += cl.weight() * (cl.costAt(int(ref.pos)) - cl.costAt(int(cur)))
		}
	}
	return newlyServed, costDelta
}

// Patch rewires the evaluator to a churned instance in place: newIn must
// have the same shape (site count, client count, Cap identity) with only the
// clients listed in changed differing from the instance the evaluator was
// built on. The inverted index and the changed clients' assignments are
// updated in O(affected index entries); everything else is untouched. The
// journal is committed — prior marks become invalid. Patch reports false
// (leaving the evaluator unchanged) when the shapes differ, in which case
// the caller must rebuild with NewDeltaEval.
func (d *DeltaEval) Patch(newIn *Instance, changed []int) bool {
	if newIn.NumSites != d.in.NumSites || len(newIn.Clients) != len(d.in.Clients) {
		return false
	}
	if (newIn.Cap == nil) != (d.in.Cap == nil) {
		return false
	}
	for _, c := range changed {
		if c < 0 || c >= len(newIn.Clients) {
			return false
		}
	}
	d.Commit()
	// Phase 1 — against the old instance: retire each changed client's cost,
	// load, and index entries.
	for _, c := range changed {
		d.applyAssign(int32(c), d.assignedPos[c], -1)
		old := &d.in.Clients[c]
		for _, s := range old.Ranking {
			d.work++
			refs := d.siteRefs[s]
			for i := range refs {
				if refs[i].client == int32(c) {
					d.siteRefs[s] = append(refs[:i], refs[i+1:]...)
					break
				}
			}
		}
	}
	// Phase 2 — against the new instance: index the new rankings and
	// reassign each changed client to its best open site.
	d.in = newIn
	for _, c := range changed {
		cl := &newIn.Clients[c]
		newPos := int32(-1)
		for p, s := range cl.Ranking {
			d.work++
			refs := d.siteRefs[s]
			// Insert keeping ascending client order so move iteration stays
			// deterministic across patch histories.
			i := len(refs)
			for i > 0 && refs[i-1].client > int32(c) {
				i--
			}
			refs = append(refs, clientRef{})
			copy(refs[i+1:], refs[i:])
			refs[i] = clientRef{client: int32(c), pos: int32(p)}
			d.siteRefs[s] = refs
			if newPos < 0 && d.open.Has(s) {
				newPos = int32(p)
			}
		}
		d.applyAssign(int32(c), -1, newPos)
	}
	return true
}

// CostOfClose reports closed-site guidance without mutating state: the
// weighted cost currently served by s and the load it carries.
// O(|clients ranking s|).
func (d *DeltaEval) CostOfClose(s int) (servedWeightedCost float64, load float64) {
	if !d.open.Has(s) {
		return 0, 0
	}
	for _, ref := range d.siteRefs[s] {
		d.work++
		if d.assignedPos[ref.client] == ref.pos {
			cl := &d.in.Clients[ref.client]
			servedWeightedCost += cl.weight() * cl.costAt(int(ref.pos))
		}
	}
	return servedWeightedCost, d.siteLoad[s]
}
