package splpo

// Head-to-head solver benchmarks at the three scales the repo targets:
// the paper's 15-site testbed, the §4.5 Akamai-scale 500 sites, and the
// ROADMAP's internet-scale 5k sites. The baseline at scale is the shape of
// the pre-existing LocalSearch generalized past 64 sites: first-improvement
// swap search where every candidate pays a full EvaluateSet over all
// clients. The anytime solver replaces that full re-evaluation with
// journaled delta moves; these benches record both wall-clock and
// client-touch counts so BENCH_8.json captures the ≥10× claim in units
// that survive hardware changes.

import (
	"math/rand"
	"testing"
)

func bench15Instance() *Instance {
	return randomInstance(rand.New(rand.NewSource(8)), 15, 300)
}

func bench500Instance() *Instance {
	return randomSparseInstance(rand.New(rand.NewSource(8)), 500, 4000, 16, false)
}

func bench5kInstance() *Instance {
	return randomSparseInstance(rand.New(rand.NewSource(8)), 5000, 20000, 24, false)
}

func BenchmarkSolver15Exhaustive(b *testing.B) {
	in := bench15Instance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Exhaustive(in, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolver15OldLocalSearch(b *testing.B) {
	in := bench15Instance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LocalSearch(in, 0x7FFF, Options{}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver15Anytime runs the multi-start configuration the facade
// uses; 8 restarts pin this instance to the exhaustive optimum (the
// mean-gap-ms metric records the distance — expected 0).
func BenchmarkSolver15Anytime(b *testing.B) {
	in := bench15Instance()
	want, _, err := Exhaustive(in, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res Result
	for i := 0; i < b.N; i++ {
		res, err = SearchParallel(in, SearchOptions{Seed: 1}, 8, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanCost-want.MeanCost, "mean-gap-ms")
	b.ReportMetric(float64(res.Work), "clienttouches/op")
}

// swapFullReevalToFeasible is the generalized old-LocalSearch baseline:
// first-improvement add/drop/swap search over a SiteSet where every
// candidate is priced by a full EvaluateSet pass over all clients. It runs
// until it finds a feasible (all-served) configuration of exactly k sites,
// returning the number of full evaluations spent.
func swapFullReevalToFeasible(b *testing.B, in *Instance, k int) int {
	rng := rand.New(rand.NewSource(1))
	open := NewSiteSet(in.NumSites)
	for _, s := range rng.Perm(in.NumSites)[:k] {
		open.Add(s)
	}
	siteLoad := make([]float64, in.NumSites)
	evals := 0
	cur := in.EvaluateSet(open, siteLoad)
	evals++
	for cur.Unserved > 0 {
		improved := false
		for drop := 0; drop < in.NumSites && cur.Unserved > 0; drop++ {
			if !open.Has(drop) {
				continue
			}
			for add := 0; add < in.NumSites; add++ {
				if open.Has(add) {
					continue
				}
				open.Remove(drop)
				open.Add(add)
				st := in.EvaluateSet(open, siteLoad)
				evals++
				if st.Unserved < cur.Unserved {
					cur = st
					improved = true
					break
				}
				open.Remove(add)
				open.Add(drop)
			}
		}
		if !improved {
			b.Fatal("baseline stuck before feasibility")
		}
	}
	return evals
}

// BenchmarkFeasible500Baseline and BenchmarkFeasible500Anytime measure
// time-to-first-feasible for k=100 of 500 sites — the §4.5 scale. The
// baseline's cost unit is full evaluations × clients (client touches);
// the anytime solver reports its exact touch counter.
func BenchmarkFeasible500Baseline(b *testing.B) {
	in := bench500Instance()
	b.ResetTimer()
	evals := 0
	for i := 0; i < b.N; i++ {
		evals = swapFullReevalToFeasible(b, in, 100)
	}
	b.ReportMetric(float64(evals), "evals/op")
	b.ReportMetric(float64(evals)*float64(len(in.Clients)), "clienttouches/op")
}

func BenchmarkFeasible500Anytime(b *testing.B) {
	in := bench500Instance()
	b.ResetTimer()
	var res Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Search(in, SearchOptions{
			Seed:                  1,
			ExactSize:             100,
			RequireFeasible:       true,
			StopAtFirstAcceptable: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("not feasible")
		}
	}
	b.ReportMetric(float64(res.Evals), "evals/op")
	b.ReportMetric(float64(res.Work), "clienttouches/op")
}

// BenchmarkAnytime500Converged: full refinement at 500 sites under a fixed
// work budget (free size), reporting solution quality.
func BenchmarkAnytime500Converged(b *testing.B) {
	in := bench500Instance()
	b.ResetTimer()
	var res Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Search(in, SearchOptions{Seed: 1, MaxWork: 4_000_000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanCost, "mean-ms")
	b.ReportMetric(float64(res.Moves), "moves/op")
}

// BenchmarkAnytime5k: internet scale under a fixed work budget.
func BenchmarkAnytime5k(b *testing.B) {
	in := bench5kInstance()
	b.ResetTimer()
	var res Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Search(in, SearchOptions{Seed: 1, MaxWork: 20_000_000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanCost, "mean-ms")
	b.ReportMetric(float64(res.Stats.Unserved), "unserved")
}

// BenchmarkFullEval500 vs BenchmarkDeltaMove500: the per-move cost gap that
// makes the anytime solver fast — a full evaluation pass against one
// journaled swap (apply + rollback).
func BenchmarkFullEval500(b *testing.B) {
	in := bench500Instance()
	open := NewSiteSet(in.NumSites)
	for s := 0; s < in.NumSites; s += 2 {
		open.Add(s)
	}
	siteLoad := make([]float64, in.NumSites)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.EvaluateSet(open, siteLoad)
	}
}

func BenchmarkDeltaMove500(b *testing.B) {
	in := bench500Instance()
	open := NewSiteSet(in.NumSites)
	for s := 0; s < in.NumSites; s += 2 {
		open.Add(s)
	}
	d := NewDeltaEval(in, open)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := d.Mark()
		d.Close((i * 2) % in.NumSites)
		d.Open((i*2 + 1) % in.NumSites)
		_ = d.Stats()
		d.RollbackTo(mark)
	}
}

// BenchmarkWarmVsCold500: re-optimization after 2% churn, warm (patched
// index + warm start, small budget) against cold at the budget it needs for
// the same quality.
func BenchmarkWarmVsCold500(b *testing.B) {
	in := bench500Instance()
	rng := rand.New(rand.NewSource(2))
	next := &Instance{NumSites: in.NumSites}
	next.Clients = append([]Client(nil), in.Clients...)
	var changed []int
	for c := 0; c < len(next.Clients); c += 50 {
		perm := rng.Perm(in.NumSites)[:16]
		rankCost := make([]float64, 16)
		for i := range rankCost {
			rankCost[i] = 10 + rng.Float64()*190
		}
		next.Clients[c] = Client{Ranking: perm, RankCost: rankCost,
			Weight: next.Clients[c].Weight, Load: next.Clients[c].Load}
		changed = append(changed, c)
	}
	b.Run("Warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w, err := NewWarm(in, 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.Solve(SearchOptions{Seed: 1, MaxWork: 4_000_000}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res, err := w.Reoptimize(next, 2, changed, SearchOptions{Seed: 1, MaxWork: 600_000})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.MeanCost, "mean-ms")
			}
		}
	})
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := Search(next, SearchOptions{Seed: 1, MaxWork: 4_000_000})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.MeanCost, "mean-ms")
			}
		}
	})
}
