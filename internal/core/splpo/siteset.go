package splpo

// SiteSet is a bitset over site indices, replacing the uint64 subset mask
// for instances past the 63-site bitmask-solver limit. The zero value is an
// empty set over zero sites; use NewSiteSet to size one for an instance.
//
// A SiteSet is a plain value wrapper around a word slice: Clone/CopyFrom
// duplicate storage explicitly, everything else mutates in place. None of
// the methods allocate except NewSiteSet, Clone, and Sites.

import (
	"math/bits"
	"strings"
)

// SiteSet is a fixed-capacity bitset of open sites.
type SiteSet struct {
	words []uint64
	n     int // capacity in sites
}

// NewSiteSet returns an empty set with capacity for n sites.
func NewSiteSet(n int) SiteSet {
	return SiteSet{words: make([]uint64, (n+63)/64), n: n}
}

// SiteSetOf returns a set with capacity n and the given sites open.
func SiteSetOf(n int, sites ...int) SiteSet {
	s := NewSiteSet(n)
	for _, site := range sites {
		s.Add(site)
	}
	return s
}

// SiteSetFromMask converts a uint64 subset bitmask (the ≤64-site solvers'
// representation) into a SiteSet with capacity n.
func SiteSetFromMask(n int, mask uint64) SiteSet {
	s := NewSiteSet(n)
	if len(s.words) > 0 {
		s.words[0] = mask
		if n < 64 {
			s.words[0] &= (uint64(1) << uint(n)) - 1
		}
	}
	return s
}

// Cap returns the set's site capacity.
func (s SiteSet) Cap() int { return s.n }

// Mask returns the set as a uint64 bitmask. It is only meaningful when the
// capacity is ≤ 64; higher bits are silently dropped otherwise.
func (s SiteSet) Mask() uint64 {
	if len(s.words) == 0 {
		return 0
	}
	return s.words[0]
}

// Has reports whether site is open.
func (s SiteSet) Has(site int) bool {
	if site < 0 || site >= s.n {
		return false
	}
	return s.words[site>>6]&(1<<uint(site&63)) != 0
}

// Add opens site.
func (s SiteSet) Add(site int) { s.words[site>>6] |= 1 << uint(site&63) }

// Remove closes site.
func (s SiteSet) Remove(site int) { s.words[site>>6] &^= 1 << uint(site&63) }

// Count returns the number of open sites.
func (s SiteSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no site is open.
func (s SiteSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear closes every site.
func (s SiteSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy.
func (s SiteSet) Clone() SiteSet {
	out := SiteSet{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}

// CopyFrom overwrites s with src. The capacities must match.
func (s SiteSet) CopyFrom(src SiteSet) {
	copy(s.words, src.words)
}

// Equal reports whether two sets open exactly the same sites.
func (s SiteSet) Equal(o SiteSet) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the sets share any open site.
func (s SiteSet) Intersects(o SiteSet) bool {
	m := len(s.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	for i := 0; i < m; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// RemoveAll closes every site open in o.
func (s SiteSet) RemoveAll(o SiteSet) {
	m := len(s.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	for i := 0; i < m; i++ {
		s.words[i] &^= o.words[i]
	}
}

// ForEach calls fn for every open site in ascending order.
func (s SiteSet) ForEach(fn func(site int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Sites expands the set into a sorted site list.
func (s SiteSet) Sites() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(site int) { out = append(out, site) })
	return out
}

// AppendSites appends the open sites in ascending order to dst.
func (s SiteSet) AppendSites(dst []int) []int {
	s.ForEach(func(site int) { dst = append(dst, site) })
	return dst
}

// Less orders sets lexicographically by ascending site index: the set whose
// first differing word opens a lower site wins. Used for deterministic
// tie-breaks when merging parallel restarts.
func (s SiteSet) Less(o SiteSet) bool {
	m := len(s.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	for i := 0; i < m; i++ {
		if s.words[i] != o.words[i] {
			// The lower differing bit belongs to exactly one set; the set
			// holding it opens the smaller site.
			diff := s.words[i] ^ o.words[i]
			low := diff & -diff
			return s.words[i]&low != 0
		}
	}
	return len(s.words) < len(o.words)
}

// String renders the open sites for debugging.
func (s SiteSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(site int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString(itoa(site))
	})
	b.WriteByte('}')
	return b.String()
}

// itoa is a tiny strconv.Itoa clone so String stays allocation-honest in
// escape analysis (strconv would be fine too; this keeps the import set lean).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
