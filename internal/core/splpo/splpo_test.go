package splpo

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// tinyInstance: 3 sites, 3 clients with distinct preferences.
func tinyInstance() *Instance {
	return &Instance{
		NumSites: 3,
		Clients: []Client{
			{Ranking: []int{0, 1, 2}, Cost: []float64{10, 20, 30}},
			{Ranking: []int{1, 2, 0}, Cost: []float64{30, 10, 20}},
			{Ranking: []int{2, 0, 1}, Cost: []float64{20, 30, 10}},
		},
	}
}

func TestEvaluatePicksMostPreferredOpen(t *testing.T) {
	in := tinyInstance()
	a := in.Evaluate(0b011) // sites 0 and 1 open
	if !a.Feasible || a.Served != 3 {
		t.Fatalf("assignment: %+v", a)
	}
	// Client 0 → site 0 (10); client 1 → site 1 (10); client 2 → site 0
	// (20, preferred over 1).
	if a.TotalCost != 40 {
		t.Errorf("total = %v, want 40", a.TotalCost)
	}
}

func TestEvaluatePreferenceNotCost(t *testing.T) {
	// A client may prefer an expensive site — BGP doesn't optimize latency.
	in := &Instance{
		NumSites: 2,
		Clients:  []Client{{Ranking: []int{1, 0}, Cost: []float64{1, 100}}},
	}
	a := in.Evaluate(0b11)
	if a.TotalCost != 100 {
		t.Errorf("client should follow preference to the costly site; total = %v", a.TotalCost)
	}
}

func TestEvaluateUnservedClient(t *testing.T) {
	in := &Instance{
		NumSites: 2,
		Clients:  []Client{{Ranking: []int{0}, Cost: []float64{1, 1}}},
	}
	a := in.Evaluate(0b10) // only site 1 open; client accepts only 0
	if a.Feasible {
		t.Error("unserved client should make assignment infeasible")
	}
	if a.TotalCost < Infinity {
		t.Error("unserved client should cost Infinity")
	}
}

func TestEvaluateEmptySubset(t *testing.T) {
	in := tinyInstance()
	a := in.Evaluate(0)
	if a.Feasible || a.TotalCost < Infinity {
		t.Error("empty subset must be infeasible")
	}
}

func TestEvaluateLoadCap(t *testing.T) {
	in := tinyInstance()
	for i := range in.Clients {
		in.Clients[i].Load = 1
	}
	in.Cap = []float64{1, 3, 3}
	// Only site 0 open: all 3 clients land on it, cap 1 → infeasible.
	if a := in.Evaluate(0b001); a.Feasible {
		t.Error("overloaded site not flagged")
	}
	// All open: loads 1,1,1 → feasible.
	if a := in.Evaluate(0b111); !a.Feasible {
		t.Error("balanced assignment flagged infeasible")
	}
}

func TestEvaluateWeights(t *testing.T) {
	in := &Instance{
		NumSites: 1,
		Clients: []Client{
			{Ranking: []int{0}, Cost: []float64{10}, Weight: 3},
			{Ranking: []int{0}, Cost: []float64{20}},
		},
	}
	a := in.Evaluate(0b1)
	if a.TotalCost != 50 {
		t.Errorf("weighted total = %v, want 50", a.TotalCost)
	}
	if a.MeanCost != 12.5 {
		t.Errorf("weighted mean = %v, want 12.5", a.MeanCost)
	}
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	in := tinyInstance()
	best, evaluated, err := Exhaustive(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if evaluated != 7 {
		t.Errorf("evaluated %d subsets, want 7", evaluated)
	}
	// All sites open: every client at its favorite (cost 10 each) = 30.
	if best.Subset != 0b111 || best.TotalCost != 30 {
		t.Errorf("best = %+v, want subset 0b111 total 30", best)
	}
}

func TestExhaustiveExactSize(t *testing.T) {
	in := tinyInstance()
	best, evaluated, err := Exhaustive(in, Options{ExactSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if evaluated != 3 {
		t.Errorf("evaluated %d, want 3 two-site subsets", evaluated)
	}
	if bits.OnesCount64(best.Subset) != 2 {
		t.Errorf("best subset %b is not size 2", best.Subset)
	}
	if best.TotalCost != 40 {
		t.Errorf("best 2-site total = %v, want 40", best.TotalCost)
	}
}

func TestExhaustiveBudget(t *testing.T) {
	in := tinyInstance()
	_, evaluated, err := Exhaustive(in, Options{MaxSubsets: 3})
	if err != nil {
		t.Fatal(err)
	}
	if evaluated != 3 {
		t.Errorf("budget ignored: evaluated %d", evaluated)
	}
}

func TestExhaustiveInfeasibleInstance(t *testing.T) {
	in := &Instance{NumSites: 1, Clients: []Client{{Ranking: nil, Cost: []float64{1}}}}
	_, _, err := Exhaustive(in, Options{RequireFeasible: true})
	if err == nil {
		t.Error("instance with unservable client solved")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Instance{
		{NumSites: 0},
		{NumSites: 2, Cap: []float64{1}},
		{NumSites: 2, Clients: []Client{{Ranking: []int{0}, Cost: []float64{1}}}},
		{NumSites: 2, Clients: []Client{{Ranking: []int{5}, Cost: []float64{1, 1}}}},
		{NumSites: 2, Clients: []Client{{Ranking: []int{0, 0}, Cost: []float64{1, 1}}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d validated", i)
		}
	}
}

func TestGreedyByCost(t *testing.T) {
	// Site 0 has the lowest mean cost but clients prefer site 2.
	in := &Instance{
		NumSites: 3,
		Clients: []Client{
			{Ranking: []int{2, 0, 1}, Cost: []float64{5, 50, 40}},
			{Ranking: []int{2, 0, 1}, Cost: []float64{5, 50, 40}},
		},
	}
	g, err := GreedyByCost(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Subset != 0b001 {
		t.Errorf("greedy picked %b, want site 0 (lowest mean unicast)", g.Subset)
	}
	// The optimum is site 0 too here (since only site 0 open → clients use
	// it at cost 5). Greedy's failure mode is preference blindness with
	// more sites open:
	g2, err := GreedyByCost(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy opens {0, 2} (means 5 and 40); clients prefer 2 → cost 80.
	if g2.TotalCost != 80 {
		t.Errorf("greedy 2-site total = %v, want 80 (preference-blind)", g2.TotalCost)
	}
	best, _, _ := Exhaustive(in, Options{ExactSize: 2})
	if best.TotalCost >= g2.TotalCost {
		t.Errorf("exhaustive (%v) should beat greedy (%v)", best.TotalCost, g2.TotalCost)
	}
	if _, err := GreedyByCost(in, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRandomAndBestRandom(t *testing.T) {
	in := tinyInstance()
	rng := rand.New(rand.NewSource(1))
	a, err := RandomSubset(in, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bits.OnesCount64(a.Subset) != 2 {
		t.Errorf("random subset size %d", bits.OnesCount64(a.Subset))
	}
	best, err := BestRandom(in, 2, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if best.TotalCost > 40 {
		t.Errorf("best of 20 random 2-site subsets = %v, want 40 (the 2-site optimum)", best.TotalCost)
	}
}

func TestLocalSearchReachesOptimumOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 8, 40)
		opt, _, err := Exhaustive(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ls, err := LocalSearch(in, 1, Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Local search is a heuristic; it must be within 20% of optimal on
		// these easy instances and never better than optimal.
		if ls.MeanCost < opt.MeanCost-1e-9 {
			t.Fatalf("local search beat the exhaustive optimum: %v < %v", ls.MeanCost, opt.MeanCost)
		}
		if ls.MeanCost > opt.MeanCost*1.2+1e-9 {
			t.Errorf("trial %d: local search %.2f vs optimum %.2f (>20%% gap)", trial, ls.MeanCost, opt.MeanCost)
		}
	}
}

func TestLocalSearchExactSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(rng, 10, 60)
	a, err := LocalSearch(in, 0b11, Options{ExactSize: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bits.OnesCount64(a.Subset) != 2 {
		t.Errorf("exact-size local search returned %d sites", bits.OnesCount64(a.Subset))
	}
}

func randomInstance(rng *rand.Rand, nSites, nClients int) *Instance {
	in := &Instance{NumSites: nSites}
	for c := 0; c < nClients; c++ {
		cost := make([]float64, nSites)
		for s := range cost {
			cost[s] = 10 + rng.Float64()*190
		}
		ranking := rng.Perm(nSites)
		in.Clients = append(in.Clients, Client{Ranking: ranking, Cost: cost})
	}
	return in
}

// Property: opening more sites never increases any individual client's
// position in its own ranking (the monotonicity Lemma 1 gives at the routing
// level, restated for the optimizer's assignment rule) — and the chosen site
// for each client under subset S∪{x} is either the old site or x... the
// simple checkable form: each client's assigned rank index is nonincreasing
// as sites are added.
func TestPropertyMonotoneRankUnderGrowth(t *testing.T) {
	f := func(seed int64, addSite uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 6, 10)
		subset := uint64(rng.Intn(63) + 1)
		add := uint64(1) << (addSite % 6)
		grown := subset | add
		rankOf := func(c *Client, sub uint64) int {
			for i, s := range c.Ranking {
				if sub&(1<<uint(s)) != 0 {
					return i
				}
			}
			return 1 << 20
		}
		for i := range in.Clients {
			c := &in.Clients[i]
			if rankOf(c, grown) > rankOf(c, subset) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDominatingSetReduction exercises the Appendix B.1 hardness gadget.
func TestDominatingSetReduction(t *testing.T) {
	// A star K1,4: center 0 dominates everything → dominating set size 1.
	star := Graph{N: 5, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}}
	in := ReduceDominatingSet(star)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if !HasZeroCostSolution(in, 2) { // K+1 = 2 sites: {center, s*}
		t.Error("star graph with dominating set {0} has no zero-cost 2-site solution")
	}

	// A path 0-1-2-3-4: minimum dominating set is {1, 3} (size 2), not 1.
	path := Graph{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}}
	in2 := ReduceDominatingSet(path)
	if HasZeroCostSolution(in2, 2) {
		t.Error("path graph cannot be dominated by one vertex")
	}
	if !HasZeroCostSolution(in2, 3) {
		t.Error("path graph dominated by {1,3} should give zero-cost 3-site solution")
	}

	// Edgeless graph on 3 vertices: dominating set must be all vertices.
	empty := Graph{N: 3}
	in3 := ReduceDominatingSet(empty)
	if HasZeroCostSolution(in3, 3) {
		t.Error("edgeless K3 dominated by 2 vertices?")
	}
	if !HasZeroCostSolution(in3, 4) {
		t.Error("all vertices + s* must be zero cost")
	}
}

func BenchmarkExhaustive15Sites(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(rng, 15, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Exhaustive(in, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForbiddenMask(t *testing.T) {
	in := tinyInstance()
	// Forbid site 0: the optimum must avoid it.
	best, evaluated, err := Exhaustive(in, Options{ForbiddenMask: 0b001})
	if err != nil {
		t.Fatal(err)
	}
	if best.Subset&0b001 != 0 {
		t.Fatalf("optimum %b uses a forbidden site", best.Subset)
	}
	if evaluated != 3 { // subsets over sites {1,2}: 010, 100, 110
		t.Errorf("evaluated %d subsets, want 3", evaluated)
	}
	// Local search must also respect the mask, even with a seed inside it.
	ls, err := LocalSearch(in, 0b001, Options{ForbiddenMask: 0b001}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Subset&0b001 != 0 {
		t.Fatalf("local search %b uses a forbidden site", ls.Subset)
	}
	// Everything forbidden is an error.
	if _, err := LocalSearch(in, 1, Options{ForbiddenMask: 0b111}, 0); err == nil {
		t.Error("all-forbidden local search succeeded")
	}
	if _, _, err := Exhaustive(in, Options{ForbiddenMask: 0b111}); err == nil {
		t.Error("all-forbidden exhaustive succeeded")
	}
}
