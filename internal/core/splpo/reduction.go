package splpo

// This file implements the Appendix B.1 reduction from Dominating Set to
// SPLPO, both as executable documentation of the hardness proof and as a
// test fixture: if a graph has a dominating set of size K, the reduced SPLPO
// instance has a zero-cost solution opening K+1 sites; otherwise every
// (K+1)-site solution has infinite cost.

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// ReduceDominatingSet builds the Appendix B.1 SPLPO instance for g:
//
//   - every vertex v becomes a client c_v and a site s_v with cost 0;
//   - one extra site s* (index N) with its own client c* at cost 0;
//   - c_v ranks s_v first, then its neighbors' sites, then s*; every other
//     site is unacceptable. Serving c_v from s* costs Infinity-like (we use
//     a huge finite marker so Evaluate stays finite-arithmetic);
//   - c* accepts only s*.
func ReduceDominatingSet(g Graph) *Instance {
	const huge = 1e12
	n := g.N
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	in := &Instance{NumSites: n + 1}
	for v := 0; v < n; v++ {
		cost := make([]float64, n+1)
		for i := range cost {
			cost[i] = huge
		}
		cost[v] = 0
		ranking := []int{v}
		for _, w := range adj[v] {
			cost[w] = 0
			ranking = append(ranking, w)
		}
		cost[n] = huge
		ranking = append(ranking, n) // s* is acceptable but hugely costly
		in.Clients = append(in.Clients, Client{Ranking: ranking, Cost: cost})
	}
	// c*: accepts only s*, at zero cost.
	cost := make([]float64, n+1)
	for i := range cost {
		cost[i] = huge
	}
	cost[n] = 0
	in.Clients = append(in.Clients, Client{Ranking: []int{n}, Cost: cost})
	return in
}

// HasZeroCostSolution reports whether the reduced instance admits a zero-cost
// assignment opening exactly k+1 sites (i.e., g has a dominating set of size
// ≤ k). It enumerates exhaustively, so use small graphs.
func HasZeroCostSolution(in *Instance, kPlusOne int) bool {
	a, _, err := Exhaustive(in, Options{ExactSize: kPlusOne})
	if err != nil {
		return false
	}
	return a.TotalCost == 0
}
