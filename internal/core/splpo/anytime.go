package splpo

// The anytime link-guided local-search solver (SRTE-LS style): SiteSet
// configurations, DeltaEval move evaluation, cost-guided candidate
// selection, plateau escape by seeded perturbation, and warm-restart
// re-optimization. This is the solver for instances past the 63-site
// bitmask limit — §4.5's Akamai-scale analysis (500 sites / 20 transits)
// and beyond — and it is anytime: it returns the best configuration found
// when its evaluation budget (or an external Stop signal) runs out.
//
// Move selection is guided rather than exhaustive at scale: candidate sites
// to open are ranked by aggregate client regret (how much the clients that
// prefer a closed site would gain if it opened, read from the inverted
// index without mutating state), candidate sites to close by the weighted
// cost they currently serve. At or below 64 sites the candidate pools cover
// every site, so each round is a full best-improvement add/drop/swap
// neighborhood — the differential tests pin this regime to Exhaustive's
// optimum on paper-scale instances.

import (
	"fmt"
	"math/rand"
	"sort"

	"anyopt/internal/exec"
)

// DefaultSearchWork is the client-touch budget when SearchOptions leaves
// every budget unset: enough for paper-scale instances to converge to the
// optimum many times over, small enough to stay interactive at 5k sites.
const DefaultSearchWork = 20_000_000

// SearchOptions bounds one anytime local-search run. The zero value is
// usable: free subset size, no constraints, seed 1, DefaultSearchWork.
type SearchOptions struct {
	// ExactSize restricts to configurations with exactly this many open
	// sites (0 = any size).
	ExactSize int
	// RequireFeasible makes only feasible configurations (every client
	// served, no cap exceeded) acceptable as results.
	RequireFeasible bool
	// Forbidden excludes sites from every configuration. The zero SiteSet
	// forbids nothing.
	Forbidden SiteSet
	// Initial seeds the search with a starting configuration (forbidden
	// sites are stripped). Empty = greedy construction.
	Initial SiteSet
	// Seed makes the run deterministic; 0 means 1.
	Seed int64
	// MaxWork bounds the client-touch budget (DeltaEval.Work units); 0
	// selects DefaultSearchWork. The run is deterministic per (instance,
	// options) — wall-clock never changes the result, only Stop can.
	MaxWork int64
	// MaxMoves bounds accepted moves (0 = unlimited).
	MaxMoves int
	// Stop, when non-nil, is polled between move rounds; returning true
	// ends the run with the best-so-far. This is the wall-clock deadline
	// hook for callers outside the simulator's entropy contract.
	Stop func() bool
	// StopAtFirstAcceptable returns as soon as any acceptable configuration
	// is found instead of refining until the budget runs out — the
	// "time-to-feasible" mode for playbook precomputation and benches.
	StopAtFirstAcceptable bool
	// CandidateWidth is how many add/drop candidates are exact-evaluated
	// per round at guided scale (default 12).
	CandidateWidth int
	// Patience is how many non-improving rounds to tolerate before a
	// perturbation jump (default 8).
	Patience int
	// PerturbFrac is the fraction of open sites churned per perturbation
	// (default 0.25).
	PerturbFrac float64

	// restart tags parallel multi-start runs so each builds a different
	// initial configuration; set by SearchParallel.
	restart int
}

// Result is the outcome of an anytime search.
type Result struct {
	// Open is the best configuration found.
	Open SiteSet
	// Stats is the exact (full-evaluation) outcome of Open.
	Stats Stats
	// MeanCost is Stats.MeanCost(), for convenience.
	MeanCost float64
	// Feasible is Stats.Feasible().
	Feasible bool
	// Work is the client-touch count consumed (the evaluation budget unit).
	Work int64
	// Evals counts candidate moves evaluated via apply+rollback.
	Evals int
	// Moves counts accepted moves.
	Moves int
	// Perturbations counts plateau-escape jumps.
	Perturbations int
	// Patched counts clients repatched by a warm restart (0 on cold runs).
	Patched int
}

// guideObj is the search-guidance objective, ordered lexicographically:
// serve more clients first, then shed capacity excess, then lower the mean.
// Descending through infeasible regions this way is what lets the solver
// start from arbitrary configurations.
type guideObj struct {
	unserved  int
	capExcess float64
	mean      float64
}

func objOf(st Stats) guideObj {
	m := Infinity
	if st.Weight > 0 {
		m = st.FiniteCost / st.Weight
	}
	return guideObj{unserved: st.Unserved, capExcess: st.CapExcess, mean: m}
}

func (a guideObj) better(b guideObj) bool {
	if a.unserved != b.unserved {
		return a.unserved < b.unserved
	}
	if a.capExcess != b.capExcess {
		return a.capExcess < b.capExcess
	}
	return a.mean < b.mean-1e-12
}

// acceptable reports whether a configuration with these stats may be
// returned as a result under opts.
func acceptable(st Stats, opts *SearchOptions) bool {
	if opts.RequireFeasible {
		return st.Feasible()
	}
	return true
}

// betterResult orders acceptable results: unserved, cap excess (only under
// RequireFeasible both are zero), then mean cost.
func betterResult(a, b Stats) bool {
	return objOf(a).better(objOf(b))
}

// searcher is one search run's state.
type searcher struct {
	in   *Instance
	d    *DeltaEval
	opts SearchOptions
	rng  *rand.Rand

	best     SiteSet
	bestStat Stats
	haveBest bool

	// guideBest tracks the best configuration by guidance objective
	// regardless of acceptability — the perturbation restart point while no
	// acceptable configuration has been seen yet.
	guideBest     SiteSet
	guideBestObj  guideObj
	haveGuideBest bool

	// full is true when the candidate pools cover every site each round —
	// the exhaustive-neighborhood regime for ≤64-site instances.
	full bool

	// regret scoring scratch.
	score   []float64
	touched []int

	candAdd, candDrop []int

	// dropScratch holds the load-sorted open-site list reused by coverage
	// repair.
	dropScratch []int

	budget int64
	evals  int
	moves  int
	shakes int
}

// Search runs the anytime link-guided local search. The instance may have
// any number of sites. Deterministic for fixed options when Stop is nil.
func Search(in *Instance, opts SearchOptions) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	d := NewDeltaEval(in, NewSiteSet(in.NumSites))
	return searchWith(d, opts, 0)
}

// searchWith runs the search on a pre-built evaluator (the warm-restart
// entry point). patched is carried into the Result.
func searchWith(d *DeltaEval, opts SearchOptions, patched int) (Result, error) {
	in := d.in
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MaxWork <= 0 {
		opts.MaxWork = DefaultSearchWork
	}
	if opts.CandidateWidth <= 0 {
		opts.CandidateWidth = 12
	}
	if opts.Patience <= 0 {
		opts.Patience = 8
	}
	if opts.PerturbFrac <= 0 {
		opts.PerturbFrac = 0.25
	}
	usable := in.NumSites
	if opts.Forbidden.Cap() > 0 {
		forbiddenCount := 0
		opts.Forbidden.ForEach(func(s int) {
			if s < in.NumSites {
				forbiddenCount++
			}
		})
		usable -= forbiddenCount
	}
	if usable <= 0 {
		return Result{}, fmt.Errorf("splpo: every site is forbidden")
	}
	if opts.ExactSize < 0 || opts.ExactSize > usable {
		return Result{}, fmt.Errorf("splpo: exact size %d out of range (usable sites: %d)", opts.ExactSize, usable)
	}

	s := &searcher{
		in:        in,
		d:         d,
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		best:      NewSiteSet(in.NumSites),
		guideBest: NewSiteSet(in.NumSites),
		full:      in.NumSites <= 64,
		score:     make([]float64, in.NumSites),
		touched:   make([]int, 0, in.NumSites),
		budget:    d.Work() + opts.MaxWork,
	}

	initial := s.buildInitial()
	d.Reset(initial)
	d.Commit()
	s.noteBest()

	patience := 0
	for !s.exhausted() {
		if s.opts.StopAtFirstAcceptable && s.haveBest {
			break
		}
		if s.round() {
			patience = 0
			s.noteBest()
			continue
		}
		patience++
		if patience >= s.opts.Patience {
			s.perturb()
			s.noteBest()
			patience = 0
		}
	}

	if !s.haveBest {
		return Result{}, fmt.Errorf("splpo: no acceptable configuration found within budget%s", feasHint(opts))
	}
	exact := in.EvaluateSet(s.best, nil)
	return Result{
		Open:          s.best,
		Stats:         exact,
		MeanCost:      exact.MeanCost(),
		Feasible:      exact.Feasible(),
		Work:          d.Work(),
		Evals:         s.evals,
		Moves:         s.moves,
		Perturbations: s.shakes,
		Patched:       patched,
	}, nil
}

func feasHint(opts SearchOptions) string {
	if opts.RequireFeasible {
		return " (RequireFeasible: no feasible configuration seen)"
	}
	return ""
}

// exhausted reports whether any budget has run out.
func (s *searcher) exhausted() bool {
	if s.d.Work() >= s.budget {
		return true
	}
	if s.opts.MaxMoves > 0 && s.moves >= s.opts.MaxMoves {
		return true
	}
	return s.opts.Stop != nil && s.opts.Stop()
}

// allowed reports whether site may be opened.
func (s *searcher) allowed(site int) bool {
	return !(s.opts.Forbidden.Cap() > 0 && s.opts.Forbidden.Has(site))
}

// buildInitial constructs the starting configuration: the caller's Initial
// when given, otherwise a greedy static-cost seed (ExactSize) or everything
// allowed (free size). Parallel restarts 1+ randomize instead.
func (s *searcher) buildInitial() SiteSet {
	init := NewSiteSet(s.in.NumSites)
	if s.opts.Initial.Cap() > 0 && !s.opts.Initial.Empty() {
		s.opts.Initial.ForEach(func(site int) {
			if site < s.in.NumSites && s.allowed(site) {
				init.Add(site)
			}
		})
		if !init.Empty() && (s.opts.ExactSize == 0 || init.Count() == s.opts.ExactSize) {
			return init
		}
		init.Clear()
	}
	k := s.opts.ExactSize
	if k == 0 {
		if s.opts.restart%2 == 0 {
			// Open everything allowed: maximal coverage, drops refine.
			for site := 0; site < s.in.NumSites; site++ {
				if s.allowed(site) {
					init.Add(site)
				}
			}
			return init
		}
		// Odd restarts start from a random half for diversity.
		for site := 0; site < s.in.NumSites; site++ {
			if s.allowed(site) && s.rng.Intn(2) == 0 {
				init.Add(site)
			}
		}
		if init.Empty() {
			for site := 0; site < s.in.NumSites; site++ {
				if s.allowed(site) {
					init.Add(site)
					break
				}
			}
		}
		return init
	}
	// ExactSize: greedy by static mean rank cost (restart 0), random
	// k-subsets afterwards.
	type siteScore struct {
		site int
		mean float64
	}
	var scores []siteScore
	if s.opts.restart == 0 {
		sums := make([]float64, s.in.NumSites)
		counts := make([]int, s.in.NumSites)
		for i := range s.in.Clients {
			c := &s.in.Clients[i]
			for p, site := range c.Ranking {
				sums[site] += c.costAt(p)
				counts[site]++
			}
		}
		for site := 0; site < s.in.NumSites; site++ {
			if !s.allowed(site) {
				continue
			}
			m := Infinity
			if counts[site] > 0 {
				m = sums[site] / float64(counts[site])
			}
			scores = append(scores, siteScore{site, m})
		}
		sort.Slice(scores, func(i, j int) bool {
			if scores[i].mean != scores[j].mean {
				return scores[i].mean < scores[j].mean
			}
			return scores[i].site < scores[j].site
		})
		for _, sc := range scores[:k] {
			init.Add(sc.site)
		}
		return init
	}
	allowedSites := make([]int, 0, s.in.NumSites)
	for site := 0; site < s.in.NumSites; site++ {
		if s.allowed(site) {
			allowedSites = append(allowedSites, site)
		}
	}
	s.rng.Shuffle(len(allowedSites), func(i, j int) {
		allowedSites[i], allowedSites[j] = allowedSites[j], allowedSites[i]
	})
	for _, site := range allowedSites[:k] {
		init.Add(site)
	}
	return init
}

// noteBest records the current configuration if it beats the best so far —
// both the acceptable best (the result) and the guidance best (the
// perturbation restart point while nothing acceptable has been seen).
func (s *searcher) noteBest() {
	st := s.d.Stats()
	if st.Open == 0 {
		return
	}
	if s.opts.ExactSize > 0 && st.Open != s.opts.ExactSize {
		return
	}
	o := objOf(st)
	if !s.haveGuideBest || o.better(s.guideBestObj) {
		s.guideBest.CopyFrom(s.d.OpenSet())
		s.guideBestObj = o
		s.haveGuideBest = true
	}
	if !acceptable(st, &s.opts) {
		return
	}
	if !s.haveBest || betterResult(st, s.bestStat) {
		s.best.CopyFrom(s.d.OpenSet())
		s.bestStat = st
		s.haveBest = true
	}
}

// gatherCandidates fills candAdd/candDrop for this round. In the full
// regime every allowed closed site is an add candidate and every open site
// a drop candidate. At guided scale, add candidates are the top closed
// sites by aggregate client regret (sampled from the highest-cost served
// clients plus the unserved), and drop candidates are a deterministic
// sample of open sites.
func (s *searcher) gatherCandidates() {
	s.candAdd = s.candAdd[:0]
	s.candDrop = s.candDrop[:0]
	open := s.d.OpenSet()
	if s.full {
		for site := 0; site < s.in.NumSites; site++ {
			if open.Has(site) {
				s.candDrop = append(s.candDrop, site)
			} else if s.allowed(site) {
				s.candAdd = append(s.candAdd, site)
			}
		}
		return
	}

	st := s.d.Stats()

	// Regret pass: sample clients, credit every allowed closed site ranked
	// above the client's current assignment with the (weighted) gain it
	// would hand that client.
	for i := range s.score {
		s.score[i] = 0
	}
	s.touched = s.touched[:0]
	samples := s.opts.CandidateWidth * 24
	n := len(s.in.Clients)
	if samples > n {
		samples = n
	}
	for i := 0; i < samples; i++ {
		c := s.rng.Intn(n)
		cl := &s.in.Clients[c]
		cur := s.d.AssignedPos(c)
		limit := cur
		var curCost float64
		if cur < 0 {
			limit = len(cl.Ranking)
			curCost = 10 * unservedBonus
		} else {
			curCost = cl.costAt(cur)
		}
		w := cl.weight()
		for p := 0; p < limit; p++ {
			site := cl.Ranking[p]
			if !s.allowed(site) {
				continue
			}
			if s.score[site] == 0 {
				s.touched = append(s.touched, site)
			}
			gain := w * (curCost - cl.costAt(p))
			if cur < 0 {
				gain = w * unservedBonus
			}
			s.score[site] += gain
		}
	}
	// Coverage pass: while any client is unserved, walk them all and credit
	// their allowed ranked sites directly. Random sampling alone misses the
	// last few unserved clients with high probability, which stalls the
	// march to feasibility.
	if st.Unserved > 0 {
		for c := range s.in.Clients {
			if s.d.AssignedPos(c) >= 0 {
				continue
			}
			cl := &s.in.Clients[c]
			w := cl.weight()
			for _, site := range cl.Ranking {
				if !s.allowed(site) {
					continue
				}
				if s.score[site] == 0 {
					s.touched = append(s.touched, site)
				}
				s.score[site] += w * unservedBonus
			}
		}
	}

	// Top-W touched sites by score, ties by site index.
	sort.Slice(s.touched, func(i, j int) bool {
		si, sj := s.touched[i], s.touched[j]
		if s.score[si] != s.score[sj] {
			return s.score[si] > s.score[sj]
		}
		return si < sj
	})
	for _, site := range s.touched {
		if len(s.candAdd) >= s.opts.CandidateWidth {
			break
		}
		s.candAdd = append(s.candAdd, site)
	}

	// Drop candidates: while capacity is violated, the most overloaded open
	// sites — closing them is the only lever that sheds excess. Otherwise a
	// seeded sample of open sites.
	openSites := s.touched[:0] // reuse storage; touched is dead until next round
	open.ForEach(func(site int) { openSites = append(openSites, site) })
	w := s.opts.CandidateWidth
	if w > len(openSites) {
		w = len(openSites)
	}
	if s.in.Cap != nil && st.CapExcess > 0 {
		sort.Slice(openSites, func(i, j int) bool {
			ei := s.d.SiteLoad(openSites[i]) - s.in.Cap[openSites[i]]
			ej := s.d.SiteLoad(openSites[j]) - s.in.Cap[openSites[j]]
			if ei != ej {
				return ei > ej
			}
			return openSites[i] < openSites[j]
		})
	} else if st.Unserved > 0 {
		// Coverage incomplete: lightest-loaded open sites first — dropping a
		// site that serves little load rarely strands anyone, so swaps that
		// open a coverage site succeed on the first pairings.
		sort.Slice(openSites, func(i, j int) bool {
			li, lj := s.d.SiteLoad(openSites[i]), s.d.SiteLoad(openSites[j])
			if li != lj {
				return li < lj
			}
			return openSites[i] < openSites[j]
		})
	} else {
		s.rng.Shuffle(len(openSites), func(i, j int) {
			openSites[i], openSites[j] = openSites[j], openSites[i]
		})
	}
	s.candDrop = append(s.candDrop, openSites[:w]...)
	sort.Ints(s.candDrop)
	s.touched = s.touched[:0]
}

// unservedBonus is the per-weight guidance credit for newly serving an
// unserved client — far above any real cost so coverage dominates.
const unservedBonus = Infinity / (1 << 32)

// round evaluates the candidate neighborhood and applies improving moves.
// In the full (≤64-site) regime it is classic best-improvement over the
// complete add/drop/swap neighborhood; at guided scale it is
// first-improvement — every improving candidate is kept as the scan goes,
// so one round can accept many moves and excess-shedding converges in few
// rounds. Reports whether any move was accepted.
func (s *searcher) round() bool {
	s.gatherCandidates()
	if s.full {
		return s.roundBest()
	}
	return s.roundFirst()
}

// tryEval applies (drop, add) against the current state and reports the
// resulting guidance objective; ok is false when the move was a no-op or
// produced an empty set. The move is left applied; the caller rolls back to
// mark to discard it.
func (s *searcher) tryEval(mark, drop, add int) (o guideObj, ok bool) {
	if drop >= 0 && !s.d.Close(drop) {
		return o, false
	}
	if add >= 0 && !s.d.Open(add) {
		s.d.RollbackTo(mark)
		return o, false
	}
	s.evals++
	st := s.d.Stats()
	if st.Open == 0 {
		return o, false
	}
	return objOf(st), true
}

// roundBest: best-improvement over the full neighborhood (small instances).
func (s *searcher) roundBest() bool {
	bestObj := objOf(s.d.Stats())
	bestDrop, bestAdd := -1, -1
	found := false
	try := func(drop, add int) {
		if s.exhausted() {
			return
		}
		mark := s.d.Mark()
		if o, ok := s.tryEval(mark, drop, add); ok && o.better(bestObj) {
			bestObj, bestDrop, bestAdd, found = o, drop, add, true
		}
		s.d.RollbackTo(mark)
	}
	if s.opts.ExactSize == 0 {
		for _, add := range s.candAdd {
			try(-1, add)
		}
		for _, drop := range s.candDrop {
			try(drop, -1)
		}
	}
	for _, drop := range s.candDrop {
		for _, add := range s.candAdd {
			try(drop, add)
		}
	}
	if !found {
		return false
	}
	if bestDrop >= 0 {
		s.d.Close(bestDrop)
	}
	if bestAdd >= 0 {
		s.d.Open(bestAdd)
	}
	s.d.Commit()
	s.moves++
	return true
}

// repairCoverage targets unserved clients directly: open one of their
// ranked sites and, under ExactSize, pair it with the lightest-loaded
// droppable open site. Generic candidate sampling finds well-scoring sites
// but pairs them with too few drops to guarantee the march to full
// coverage; this pass mirrors the exhaustive scan a naive solver would do,
// ordered so the cheap pairings come first, and bails per-add after a
// bounded number of failed drops.
func (s *searcher) repairCoverage(cur *guideObj) bool {
	accepted := false
	maxDrops := s.opts.CandidateWidth * 2
	for c := 0; c < len(s.in.Clients) && !s.exhausted(); c++ {
		if s.d.AssignedPos(c) >= 0 {
			continue
		}
		cl := &s.in.Clients[c]
		repaired := false
		for _, add := range cl.Ranking {
			if repaired || s.exhausted() {
				break
			}
			if !s.allowed(add) || s.d.OpenSet().Has(add) {
				continue
			}
			if s.opts.ExactSize == 0 {
				mark := s.d.Mark()
				if o, ok := s.tryEval(mark, -1, add); ok && o.better(*cur) {
					s.d.Commit()
					s.moves++
					*cur = o
					accepted, repaired = true, true
				} else {
					s.d.RollbackTo(mark)
				}
				continue
			}
			// ExactSize: scan drops lightest-load-first until one frees a
			// slot without stranding anyone this swap can't win back.
			drops := s.d.OpenSet().AppendSites(s.dropScratch[:0])
			s.dropScratch = drops
			sort.Slice(drops, func(i, j int) bool {
				li, lj := s.d.SiteLoad(drops[i]), s.d.SiteLoad(drops[j])
				if li != lj {
					return li < lj
				}
				return drops[i] < drops[j]
			})
			if len(drops) > maxDrops {
				drops = drops[:maxDrops]
			}
			for _, drop := range drops {
				if s.exhausted() {
					break
				}
				mark := s.d.Mark()
				if o, ok := s.tryEval(mark, drop, add); ok && o.better(*cur) {
					s.d.Commit()
					s.moves++
					*cur = o
					accepted, repaired = true, true
					break
				}
				s.d.RollbackTo(mark)
			}
		}
	}
	return accepted
}

// roundFirst: first-improvement at guided scale — keep every improving
// candidate move immediately, re-evaluating later candidates against the
// updated state.
func (s *searcher) roundFirst() bool {
	cur := objOf(s.d.Stats())
	accepted := false
	if cur.unserved > 0 {
		accepted = s.repairCoverage(&cur)
	}
	try := func(drop, add int) {
		if s.exhausted() {
			return
		}
		mark := s.d.Mark()
		o, ok := s.tryEval(mark, drop, add)
		if ok && o.better(cur) {
			s.d.Commit()
			s.moves++
			cur = o
			accepted = true
			return
		}
		s.d.RollbackTo(mark)
	}
	if s.opts.ExactSize == 0 {
		for _, add := range s.candAdd {
			try(-1, add)
		}
		for _, drop := range s.candDrop {
			try(drop, -1)
		}
	}
	// Swaps: capped pairings of the top candidates.
	maxPairs := s.opts.CandidateWidth * 4
	pairs := 0
	for _, drop := range s.candDrop {
		for _, add := range s.candAdd {
			if pairs >= maxPairs {
				return accepted
			}
			pairs++
			try(drop, add)
		}
	}
	return accepted
}

// perturb jumps out of a plateau: restart from the best configuration, then
// churn a seeded fraction of it (swaps under ExactSize, mixed add/drop
// otherwise). The jump itself is committed — rollback history ends here.
func (s *searcher) perturb() {
	s.shakes++
	if s.haveBest {
		s.d.Reset(s.best)
	} else if s.haveGuideBest {
		s.d.Reset(s.guideBest)
	}
	openCount := s.d.OpenCount()
	strength := int(s.opts.PerturbFrac * float64(openCount))
	if strength < 1 {
		strength = 1
	}
	for i := 0; i < strength; i++ {
		openSites := s.d.OpenSet().Sites()
		if len(openSites) == 0 {
			break
		}
		drop := openSites[s.rng.Intn(len(openSites))]
		// Pick a random allowed closed site.
		add := -1
		for attempt := 0; attempt < 8; attempt++ {
			site := s.rng.Intn(s.in.NumSites)
			if s.allowed(site) && !s.d.OpenSet().Has(site) {
				add = site
				break
			}
		}
		if s.opts.ExactSize > 0 {
			if add < 0 {
				continue
			}
			s.d.Close(drop)
			s.d.Open(add)
		} else {
			switch s.rng.Intn(3) {
			case 0:
				if s.d.OpenCount() > 1 {
					s.d.Close(drop)
				}
			case 1:
				if add >= 0 {
					s.d.Open(add)
				}
			default:
				if add >= 0 && s.d.OpenCount() > 0 {
					s.d.Close(drop)
					s.d.Open(add)
				}
			}
		}
	}
	s.d.Commit()
}

// SearchParallel runs `restarts` independent searches with diversified
// seeds and initial configurations, fanned across the executor pool, and
// merges them deterministically: the best result wins by (unserved, cap
// excess, mean cost), ties broken by the lexicographically smallest site
// set — so the outcome is identical at any worker count. A nil pool runs
// serially. MaxWork is split evenly across restarts.
func SearchParallel(in *Instance, opts SearchOptions, restarts int, pool *exec.Pool) (Result, error) {
	if restarts <= 0 {
		restarts = 1
	}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if opts.MaxWork <= 0 {
		opts.MaxWork = DefaultSearchWork
	}
	perRun := opts.MaxWork / int64(restarts)
	if perRun < 1 {
		perRun = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	results := make([]Result, restarts)
	errs := make([]error, restarts)
	run := func(i int) {
		o := opts
		o.restart = i
		o.Seed = opts.Seed + int64(i)*0x9E3779B9
		o.MaxWork = perRun
		if i > 0 {
			o.Initial = SiteSet{}
		}
		d := NewDeltaEval(in, NewSiteSet(in.NumSites))
		results[i], errs[i] = searchWith(d, o, 0)
	}
	if pool != nil {
		pool.ForEach(restarts, run)
	} else {
		for i := 0; i < restarts; i++ {
			run(i)
		}
	}
	bestIdx := -1
	var firstErr error
	for i := range results {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		if bestIdx < 0 {
			bestIdx = i
			continue
		}
		a, b := results[i], results[bestIdx]
		if betterResult(a.Stats, b.Stats) ||
			(!betterResult(b.Stats, a.Stats) && a.Open.Less(b.Open)) {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Result{}, firstErr
	}
	merged := results[bestIdx]
	for i := range results {
		if i == bestIdx || errs[i] != nil {
			continue
		}
		merged.Work += results[i].Work
		merged.Evals += results[i].Evals
		merged.Moves += results[i].Moves
		merged.Perturbations += results[i].Perturbations
	}
	return merged, nil
}

// Warm is the warm-restart re-optimization handle: it retains the
// incremental evaluator and the best-known configuration across campaign
// snapshots, keyed by the owner's snapshot generation counter. When the
// preference matrix churns (a new snapshot generation with a known set of
// changed clients), Reoptimize patches the inverted index for exactly those
// clients and resumes the search from the previous optimum instead of
// re-solving from scratch.
//
// A Warm is not safe for concurrent use; callers serialize (the API's
// writer path does).
type Warm struct {
	in       *Instance
	gen      uint64
	d        *DeltaEval
	best     SiteSet
	haveBest bool
}

// NewWarm validates the instance and builds a cold handle at generation gen.
func NewWarm(in *Instance, gen uint64) (*Warm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &Warm{in: in, gen: gen}, nil
}

// Gen returns the generation the handle is synchronized to.
func (w *Warm) Gen() uint64 { return w.gen }

// Best returns the best configuration from the last solve, if any.
func (w *Warm) Best() (SiteSet, bool) { return w.best, w.haveBest }

// Solve runs the anytime search on the current instance, warm-starting from
// the previous best when one exists, and caches the winner.
func (w *Warm) Solve(opts SearchOptions) (Result, error) {
	if w.d == nil {
		w.d = NewDeltaEval(w.in, NewSiteSet(w.in.NumSites))
	}
	if w.haveBest && (opts.Initial.Cap() == 0 || opts.Initial.Empty()) {
		opts.Initial = w.best
	}
	res, err := searchWith(w.d, opts, 0)
	if err == nil {
		w.best = res.Open.Clone()
		w.haveBest = true
	}
	return res, err
}

// Reoptimize re-optimizes after churn. newIn is the instance rebuilt from
// the new snapshot generation; changed lists the client rows whose ranking,
// costs, load, or weight differ from the previous generation (duplicates
// tolerated). When gen equals the handle's generation the call degenerates
// to Solve (continue refining). When the shape changed (site or client
// count, capacitation), the handle falls back to a cold rebuild — the
// result is the same, only the work is not incremental.
func (w *Warm) Reoptimize(newIn *Instance, gen uint64, changed []int, opts SearchOptions) (Result, error) {
	if gen == w.gen {
		return w.Solve(opts)
	}
	if err := newIn.Validate(); err != nil {
		return Result{}, err
	}
	patched := 0
	if w.d != nil {
		uniq := dedupClients(changed)
		if w.d.Patch(newIn, uniq) {
			patched = len(uniq)
		} else {
			w.d = nil
		}
	}
	w.in, w.gen = newIn, gen
	if w.d == nil {
		w.d = NewDeltaEval(newIn, NewSiteSet(newIn.NumSites))
	}
	if w.haveBest && (opts.Initial.Cap() == 0 || opts.Initial.Empty()) {
		opts.Initial = w.best
	}
	res, err := searchWith(w.d, opts, patched)
	if err == nil {
		w.best = res.Open.Clone()
		w.haveBest = true
	}
	return res, err
}

// dedupClients returns changed with duplicates removed, sorted ascending.
func dedupClients(changed []int) []int {
	out := append([]int(nil), changed...)
	sort.Ints(out)
	n := 0
	for i, c := range out {
		if i == 0 || c != out[i-1] {
			out[n] = c
			n++
		}
	}
	return out[:n]
}
