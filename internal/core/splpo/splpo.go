// Package splpo implements the Simple Plant Location Problem with Preference
// Orderings (Appendix B): clients choose their most preferred *open* site,
// and the operator picks the set of open sites minimizing total (or mean)
// cost subject to optional per-site load caps.
//
// The general problem is NP-hard (even to approximate — Appendix B.1 reduces
// Dominating Set to it), so the package offers an exhaustive solver for
// testbed-sized instances, a budgeted enumerator matching the paper's
// "as many configurations as we can compute within a time bound" approach
// (§5.3), and a local-search solver for large networks, plus the baselines
// the paper compares against (greedy-by-unicast-RTT, random).
//
// Two solver families coexist:
//
//   - The bitmask solvers (Exhaustive, LocalSearch, GreedyByCost,
//     RandomSubset) represent a configuration as a uint64 subset and are
//     limited to 63 sites — the paper's 15-site testbed scale.
//   - The anytime solver (Search, SearchParallel, Warm.Reoptimize in
//     anytime.go) represents a configuration as a SiteSet bitset and
//     evaluates moves incrementally through DeltaEval (delta.go), scaling to
//     the §4.5 Akamai analysis (500 sites / 20 transits) and beyond.
package splpo

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
)

// Infinity is the cost of an unserved client (no open site acceptable).
const Infinity = math.MaxFloat64 / 4

// Client is one demand point: a ranked list of acceptable sites (best first)
// and the cost of being served by each.
type Client struct {
	// Ranking lists site indices most-preferred first. A client assigned to
	// an open site always picks the first open entry (constraint (6) in
	// Appendix B).
	Ranking []int
	// Cost[s] is the cost of serving this client from site s. Sites absent
	// from Ranking are never used regardless of cost. Cost may be nil when
	// RankCost is set.
	Cost []float64
	// RankCost is the sparse alternative to Cost: RankCost[i] is the cost of
	// serving this client from Ranking[i]. For internet-scale instances a
	// dense per-site cost row is O(sites) per client; rankings are short
	// (only acceptable sites appear), so RankCost keeps instances linear in
	// the total ranking length. When both are set, RankCost wins.
	RankCost []float64
	// Load is the demand this client adds to its chosen site.
	Load float64
	// Weight scales the client's cost contribution (e.g., query volume).
	Weight float64
}

// Instance is an SPLPO instance.
type Instance struct {
	NumSites int
	Clients  []Client
	// Cap[s] is the load capacity of site s; nil means uncapacitated.
	Cap []float64
}

// Validate checks structural sanity. Instances of any site count validate;
// the 63-site limit applies only to the bitmask solvers, which enforce it
// themselves (see requireBitmaskScale).
func (in *Instance) Validate() error {
	if in.NumSites <= 0 {
		return fmt.Errorf("splpo: NumSites = %d", in.NumSites)
	}
	if in.Cap != nil && len(in.Cap) != in.NumSites {
		return fmt.Errorf("splpo: Cap has %d entries for %d sites", len(in.Cap), in.NumSites)
	}
	for i, c := range in.Clients {
		switch {
		case c.RankCost != nil:
			if len(c.RankCost) != len(c.Ranking) {
				return fmt.Errorf("splpo: client %d has %d rank costs for %d ranked sites", i, len(c.RankCost), len(c.Ranking))
			}
		case len(c.Cost) != in.NumSites:
			return fmt.Errorf("splpo: client %d has %d costs for %d sites", i, len(c.Cost), in.NumSites)
		}
		seen := map[int]bool{}
		for _, s := range c.Ranking {
			if s < 0 || s >= in.NumSites {
				return fmt.Errorf("splpo: client %d ranks unknown site %d", i, s)
			}
			if seen[s] {
				return fmt.Errorf("splpo: client %d ranks site %d twice", i, s)
			}
			seen[s] = true
		}
	}
	return nil
}

// costAt returns the cost of serving c from its pos-th ranked site.
func (c *Client) costAt(pos int) float64 {
	if c.RankCost != nil {
		return c.RankCost[pos]
	}
	return c.Cost[c.Ranking[pos]]
}

// weight returns the client's cost weight (default 1).
func (c *Client) weight() float64 {
	if c.Weight == 0 {
		return 1
	}
	return c.Weight
}

// requireBitmaskScale guards the uint64-subset solvers: past 63 sites the
// subset mask (and `uint64(1) << NumSites`) silently overflows, so they
// refuse loudly and point at the scalable solver.
func (in *Instance) requireBitmaskScale(solver string) error {
	if in.NumSites > 63 {
		return fmt.Errorf("splpo: %s is a uint64-bitmask solver limited to 63 sites, got %d; use Search or SearchParallel (anytime local search over SiteSet)", solver, in.NumSites)
	}
	return nil
}

// Assignment is the outcome of evaluating a subset.
type Assignment struct {
	// Subset is the bitmask of open sites.
	Subset uint64
	// TotalCost is the weighted sum of client costs (Infinity-free only if
	// Feasible).
	TotalCost float64
	// MeanCost is TotalCost divided by total weight of served clients.
	MeanCost float64
	// Served counts clients with an acceptable open site.
	Served int
	// Feasible is false when a load cap is exceeded or a client is
	// unservable.
	Feasible bool
	// SiteLoad is the load each site absorbed.
	SiteLoad []float64
}

// Sites expands the subset bitmask into a sorted site list.
func (a Assignment) Sites() []int {
	var out []int
	for s := 0; s < 64; s++ {
		if a.Subset&(1<<s) != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Evaluate assigns every client to its most preferred open site and tallies
// cost and load.
func (in *Instance) Evaluate(subset uint64) Assignment {
	var a Assignment
	in.EvaluateInto(subset, &a)
	return a
}

// EvaluateInto is Evaluate writing into a caller-owned Assignment, reusing
// a.SiteLoad when its capacity suffices — the allocation-lean form for move
// loops that evaluate thousands of subsets (LocalSearch, the enumerators).
func (in *Instance) EvaluateInto(subset uint64, a *Assignment) {
	if cap(a.SiteLoad) >= in.NumSites {
		a.SiteLoad = a.SiteLoad[:in.NumSites]
		for i := range a.SiteLoad {
			a.SiteLoad[i] = 0
		}
	} else {
		a.SiteLoad = make([]float64, in.NumSites)
	}
	a.Subset = subset
	a.TotalCost, a.MeanCost = 0, 0
	a.Served = 0
	a.Feasible = true
	if subset == 0 {
		a.Feasible = false
		a.TotalCost = Infinity
		a.MeanCost = Infinity
		return
	}
	var totalWeight float64
	for i := range in.Clients {
		c := &in.Clients[i]
		pos := -1
		for p, s := range c.Ranking {
			if subset&(1<<uint(s)) != 0 {
				pos = p
				break
			}
		}
		if pos < 0 {
			a.Feasible = false
			a.TotalCost = Infinity
			continue
		}
		w := c.weight()
		a.TotalCost += w * c.costAt(pos)
		totalWeight += w
		a.Served++
		a.SiteLoad[c.Ranking[pos]] += c.Load
	}
	if in.Cap != nil {
		for s, load := range a.SiteLoad {
			if subset&(1<<uint(s)) != 0 && load > in.Cap[s] {
				a.Feasible = false
			}
		}
	}
	if totalWeight > 0 && a.TotalCost < Infinity {
		a.MeanCost = a.TotalCost / totalWeight
	} else {
		a.MeanCost = Infinity
	}
}

// Stats is the scale-free evaluation outcome used by the SiteSet solvers:
// the same quantities Assignment carries, without the uint64 subset and with
// infeasibility decomposed into its two causes (unserved clients, capacity
// excess) so local search can descend through infeasible regions.
type Stats struct {
	// FiniteCost is the weighted cost sum over served clients only.
	FiniteCost float64
	// Weight is the total weight of served clients.
	Weight float64
	// Served and Unserved partition the clients.
	Served, Unserved int
	// CapExcess is the total load above capacity, summed over open sites.
	CapExcess float64
	// Open is the number of open sites.
	Open int
}

// Feasible reports whether every client is served and no cap is exceeded.
func (st Stats) Feasible() bool { return st.Unserved == 0 && st.CapExcess == 0 }

// MeanCost matches Assignment.MeanCost: Infinity when any client is
// unserved (or none are served), the weighted mean otherwise.
func (st Stats) MeanCost() float64 {
	if st.Unserved > 0 || st.Weight == 0 {
		return Infinity
	}
	return st.FiniteCost / st.Weight
}

// EvaluateSet is the full (non-incremental) evaluation of a SiteSet, valid
// at any site count. siteLoad is optional scratch of length NumSites; pass
// nil to allocate. The per-site loads are left in siteLoad when provided.
func (in *Instance) EvaluateSet(open SiteSet, siteLoad []float64) Stats {
	if siteLoad == nil {
		siteLoad = make([]float64, in.NumSites)
	} else {
		siteLoad = siteLoad[:in.NumSites]
		for i := range siteLoad {
			siteLoad[i] = 0
		}
	}
	var st Stats
	st.Open = open.Count()
	for i := range in.Clients {
		c := &in.Clients[i]
		pos := -1
		for p, s := range c.Ranking {
			if open.Has(s) {
				pos = p
				break
			}
		}
		if pos < 0 {
			st.Unserved++
			continue
		}
		w := c.weight()
		st.FiniteCost += w * c.costAt(pos)
		st.Weight += w
		st.Served++
		siteLoad[c.Ranking[pos]] += c.Load
	}
	if in.Cap != nil {
		open.ForEach(func(s int) {
			if siteLoad[s] > in.Cap[s] {
				st.CapExcess += siteLoad[s] - in.Cap[s]
			}
		})
	}
	return st
}

// Options bounds a solver run.
type Options struct {
	// ExactSize restricts to subsets with exactly this many open sites
	// (0 = any size).
	ExactSize int
	// MaxSubsets bounds how many subsets the enumerator evaluates — the
	// paper's offline time budget (0 = unlimited).
	MaxSubsets int
	// RequireFeasible rejects infeasible assignments.
	RequireFeasible bool
	// ForbiddenMask excludes sites (bitmask) from every considered subset —
	// e.g., a site that is down for maintenance.
	ForbiddenMask uint64
}

// Exhaustive enumerates subsets (optionally size-restricted, optionally
// budgeted) and returns the minimum-mean-cost assignment plus the number of
// subsets evaluated.
func Exhaustive(in *Instance, opts Options) (Assignment, int, error) {
	if err := in.Validate(); err != nil {
		return Assignment{}, 0, err
	}
	if err := in.requireBitmaskScale("Exhaustive"); err != nil {
		return Assignment{}, 0, err
	}
	best := Assignment{MeanCost: Infinity, TotalCost: Infinity}
	var scratch Assignment
	evaluated := 0
	limit := uint64(1) << uint(in.NumSites)
	for subset := uint64(1); subset < limit; subset++ {
		if subset&opts.ForbiddenMask != 0 {
			continue
		}
		if opts.ExactSize > 0 && bits.OnesCount64(subset) != opts.ExactSize {
			continue
		}
		if opts.MaxSubsets > 0 && evaluated >= opts.MaxSubsets {
			break
		}
		evaluated++
		in.EvaluateInto(subset, &scratch)
		if opts.RequireFeasible && !scratch.Feasible {
			continue
		}
		if scratch.MeanCost < best.MeanCost {
			best, scratch = scratch, best
		}
	}
	if best.TotalCost >= Infinity && best.Subset == 0 {
		return best, evaluated, fmt.Errorf("splpo: no acceptable subset found")
	}
	return best, evaluated, nil
}

// LocalSearch starts from a seed subset and iteratively applies the best
// single-site add, drop, or swap until no move improves mean cost. Suitable
// for networks too large to enumerate (§4.5's Akamai-scale analysis).
func LocalSearch(in *Instance, seed uint64, opts Options, maxIters int) (Assignment, error) {
	if err := in.Validate(); err != nil {
		return Assignment{}, err
	}
	if err := in.requireBitmaskScale("LocalSearch"); err != nil {
		return Assignment{}, err
	}
	seed &^= opts.ForbiddenMask
	if seed == 0 {
		seed = 1 &^ opts.ForbiddenMask
		for s := 0; s < in.NumSites && seed == 0; s++ {
			if opts.ForbiddenMask&(1<<uint(s)) == 0 {
				seed = 1 << uint(s)
			}
		}
		if seed == 0 {
			return Assignment{}, fmt.Errorf("splpo: every site is forbidden")
		}
	}
	cur := in.Evaluate(seed)
	if maxIters <= 0 {
		maxIters = 1000
	}
	var scratch Assignment
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		best := cur
		tryMove := func(subset uint64) {
			if subset == 0 || subset&opts.ForbiddenMask != 0 {
				return
			}
			if opts.ExactSize > 0 && bits.OnesCount64(subset) != opts.ExactSize {
				return
			}
			in.EvaluateInto(subset, &scratch)
			if opts.RequireFeasible && !scratch.Feasible {
				return
			}
			if scratch.MeanCost < best.MeanCost {
				best, scratch = scratch, best
				improved = true
			}
		}
		for s := 0; s < in.NumSites; s++ {
			bit := uint64(1) << uint(s)
			if cur.Subset&bit == 0 {
				tryMove(cur.Subset | bit) // add
			} else {
				tryMove(cur.Subset &^ bit) // drop
			}
		}
		for s := 0; s < in.NumSites; s++ {
			sb := uint64(1) << uint(s)
			if cur.Subset&sb == 0 {
				continue
			}
			for t := 0; t < in.NumSites; t++ {
				tb := uint64(1) << uint(t)
				if cur.Subset&tb != 0 {
					continue
				}
				tryMove(cur.Subset&^sb | tb) // swap
			}
		}
		if !improved {
			break
		}
		cur = best
	}
	return cur, nil
}

// GreedyByCost returns the k sites with the lowest mean cost over all
// clients — the paper's "greedy approach that enables sites with the lowest
// average unicast latency" (§5.3).
func GreedyByCost(in *Instance, k int) (Assignment, error) {
	if err := in.Validate(); err != nil {
		return Assignment{}, err
	}
	if err := in.requireBitmaskScale("GreedyByCost"); err != nil {
		return Assignment{}, err
	}
	if k <= 0 || k > in.NumSites {
		return Assignment{}, fmt.Errorf("splpo: greedy size %d out of range", k)
	}
	type siteMean struct {
		site int
		mean float64
	}
	sums := make([]float64, in.NumSites)
	counts := make([]int, in.NumSites)
	for i := range in.Clients {
		c := &in.Clients[i]
		// Only clients that can use the site contribute.
		for p, s := range c.Ranking {
			sums[s] += c.costAt(p)
			counts[s]++
		}
	}
	means := make([]siteMean, in.NumSites)
	for s := 0; s < in.NumSites; s++ {
		m := Infinity
		if counts[s] > 0 {
			m = sums[s] / float64(counts[s])
		}
		means[s] = siteMean{s, m}
	}
	sort.Slice(means, func(i, j int) bool {
		if means[i].mean != means[j].mean {
			return means[i].mean < means[j].mean
		}
		return means[i].site < means[j].site
	})
	var subset uint64
	for _, sm := range means[:k] {
		subset |= 1 << uint(sm.site)
	}
	return in.Evaluate(subset), nil
}

// RandomSubset evaluates a uniformly random subset of exactly k sites.
func RandomSubset(in *Instance, k int, rng *rand.Rand) (Assignment, error) {
	if err := in.Validate(); err != nil {
		return Assignment{}, err
	}
	if err := in.requireBitmaskScale("RandomSubset"); err != nil {
		return Assignment{}, err
	}
	if k <= 0 || k > in.NumSites {
		return Assignment{}, fmt.Errorf("splpo: random size %d out of range", k)
	}
	perm := rng.Perm(in.NumSites)
	var subset uint64
	for _, s := range perm[:k] {
		subset |= 1 << uint(s)
	}
	return in.Evaluate(subset), nil
}

// BestRandom evaluates n random subsets of size k and returns the best — the
// "best random configuration" baseline of §5.3.
func BestRandom(in *Instance, k, n int, rng *rand.Rand) (Assignment, error) {
	best := Assignment{MeanCost: Infinity}
	for i := 0; i < n; i++ {
		a, err := RandomSubset(in, k, rng)
		if err != nil {
			return Assignment{}, err
		}
		if a.MeanCost < best.MeanCost {
			best = a
		}
	}
	return best, nil
}
