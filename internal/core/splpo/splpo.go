// Package splpo implements the Simple Plant Location Problem with Preference
// Orderings (Appendix B): clients choose their most preferred *open* site,
// and the operator picks the set of open sites minimizing total (or mean)
// cost subject to optional per-site load caps.
//
// The general problem is NP-hard (even to approximate — Appendix B.1 reduces
// Dominating Set to it), so the package offers an exhaustive solver for
// testbed-sized instances, a budgeted enumerator matching the paper's
// "as many configurations as we can compute within a time bound" approach
// (§5.3), and a local-search solver for large networks, plus the baselines
// the paper compares against (greedy-by-unicast-RTT, random).
package splpo

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
)

// Infinity is the cost of an unserved client (no open site acceptable).
const Infinity = math.MaxFloat64 / 4

// Client is one demand point: a ranked list of acceptable sites (best first)
// and the cost of being served by each.
type Client struct {
	// Ranking lists site indices most-preferred first. A client assigned to
	// an open site always picks the first open entry (constraint (6) in
	// Appendix B).
	Ranking []int
	// Cost[s] is the cost of serving this client from site s. Sites absent
	// from Ranking are never used regardless of cost.
	Cost []float64
	// Load is the demand this client adds to its chosen site.
	Load float64
	// Weight scales the client's cost contribution (e.g., query volume).
	Weight float64
}

// Instance is an SPLPO instance.
type Instance struct {
	NumSites int
	Clients  []Client
	// Cap[s] is the load capacity of site s; nil means uncapacitated.
	Cap []float64
}

// Validate checks structural sanity.
func (in *Instance) Validate() error {
	if in.NumSites <= 0 {
		return fmt.Errorf("splpo: NumSites = %d", in.NumSites)
	}
	if in.NumSites > 63 {
		return fmt.Errorf("splpo: NumSites = %d exceeds bitmask solver limit 63", in.NumSites)
	}
	if in.Cap != nil && len(in.Cap) != in.NumSites {
		return fmt.Errorf("splpo: Cap has %d entries for %d sites", len(in.Cap), in.NumSites)
	}
	for i, c := range in.Clients {
		if len(c.Cost) != in.NumSites {
			return fmt.Errorf("splpo: client %d has %d costs for %d sites", i, len(c.Cost), in.NumSites)
		}
		seen := map[int]bool{}
		for _, s := range c.Ranking {
			if s < 0 || s >= in.NumSites {
				return fmt.Errorf("splpo: client %d ranks unknown site %d", i, s)
			}
			if seen[s] {
				return fmt.Errorf("splpo: client %d ranks site %d twice", i, s)
			}
			seen[s] = true
		}
	}
	return nil
}

// Assignment is the outcome of evaluating a subset.
type Assignment struct {
	// Subset is the bitmask of open sites.
	Subset uint64
	// TotalCost is the weighted sum of client costs (Infinity-free only if
	// Feasible).
	TotalCost float64
	// MeanCost is TotalCost divided by total weight of served clients.
	MeanCost float64
	// Served counts clients with an acceptable open site.
	Served int
	// Feasible is false when a load cap is exceeded or a client is
	// unservable.
	Feasible bool
	// SiteLoad is the load each site absorbed.
	SiteLoad []float64
}

// Sites expands the subset bitmask into a sorted site list.
func (a Assignment) Sites() []int {
	var out []int
	for s := 0; s < 64; s++ {
		if a.Subset&(1<<s) != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Evaluate assigns every client to its most preferred open site and tallies
// cost and load.
func (in *Instance) Evaluate(subset uint64) Assignment {
	a := Assignment{Subset: subset, Feasible: true, SiteLoad: make([]float64, in.NumSites)}
	if subset == 0 {
		a.Feasible = false
		a.TotalCost = Infinity
		return a
	}
	var totalWeight float64
	for i := range in.Clients {
		c := &in.Clients[i]
		site := -1
		for _, s := range c.Ranking {
			if subset&(1<<uint(s)) != 0 {
				site = s
				break
			}
		}
		if site < 0 {
			a.Feasible = false
			a.TotalCost = Infinity
			continue
		}
		w := c.Weight
		if w == 0 {
			w = 1
		}
		a.TotalCost += w * c.Cost[site]
		totalWeight += w
		a.Served++
		a.SiteLoad[site] += c.Load
	}
	if in.Cap != nil {
		for s, load := range a.SiteLoad {
			if subset&(1<<uint(s)) != 0 && load > in.Cap[s] {
				a.Feasible = false
			}
		}
	}
	if totalWeight > 0 && a.TotalCost < Infinity {
		a.MeanCost = a.TotalCost / totalWeight
	} else {
		a.MeanCost = Infinity
	}
	return a
}

// Options bounds a solver run.
type Options struct {
	// ExactSize restricts to subsets with exactly this many open sites
	// (0 = any size).
	ExactSize int
	// MaxSubsets bounds how many subsets the enumerator evaluates — the
	// paper's offline time budget (0 = unlimited).
	MaxSubsets int
	// RequireFeasible rejects infeasible assignments.
	RequireFeasible bool
	// ForbiddenMask excludes sites (bitmask) from every considered subset —
	// e.g., a site that is down for maintenance.
	ForbiddenMask uint64
}

// Exhaustive enumerates subsets (optionally size-restricted, optionally
// budgeted) and returns the minimum-mean-cost assignment plus the number of
// subsets evaluated.
func Exhaustive(in *Instance, opts Options) (Assignment, int, error) {
	if err := in.Validate(); err != nil {
		return Assignment{}, 0, err
	}
	best := Assignment{MeanCost: Infinity, TotalCost: Infinity}
	evaluated := 0
	limit := uint64(1) << uint(in.NumSites)
	for subset := uint64(1); subset < limit; subset++ {
		if subset&opts.ForbiddenMask != 0 {
			continue
		}
		if opts.ExactSize > 0 && bits.OnesCount64(subset) != opts.ExactSize {
			continue
		}
		if opts.MaxSubsets > 0 && evaluated >= opts.MaxSubsets {
			break
		}
		evaluated++
		a := in.Evaluate(subset)
		if opts.RequireFeasible && !a.Feasible {
			continue
		}
		if a.MeanCost < best.MeanCost {
			best = a
		}
	}
	if best.TotalCost >= Infinity && best.Subset == 0 {
		return best, evaluated, fmt.Errorf("splpo: no acceptable subset found")
	}
	return best, evaluated, nil
}

// LocalSearch starts from a seed subset and iteratively applies the best
// single-site add, drop, or swap until no move improves mean cost. Suitable
// for networks too large to enumerate (§4.5's Akamai-scale analysis).
func LocalSearch(in *Instance, seed uint64, opts Options, maxIters int) (Assignment, error) {
	if err := in.Validate(); err != nil {
		return Assignment{}, err
	}
	seed &^= opts.ForbiddenMask
	if seed == 0 {
		seed = 1 &^ opts.ForbiddenMask
		for s := 0; s < in.NumSites && seed == 0; s++ {
			if opts.ForbiddenMask&(1<<uint(s)) == 0 {
				seed = 1 << uint(s)
			}
		}
		if seed == 0 {
			return Assignment{}, fmt.Errorf("splpo: every site is forbidden")
		}
	}
	cur := in.Evaluate(seed)
	if maxIters <= 0 {
		maxIters = 1000
	}
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		best := cur
		tryMove := func(subset uint64) {
			if subset == 0 || subset&opts.ForbiddenMask != 0 {
				return
			}
			if opts.ExactSize > 0 && bits.OnesCount64(subset) != opts.ExactSize {
				return
			}
			a := in.Evaluate(subset)
			if opts.RequireFeasible && !a.Feasible {
				return
			}
			if a.MeanCost < best.MeanCost {
				best = a
				improved = true
			}
		}
		for s := 0; s < in.NumSites; s++ {
			bit := uint64(1) << uint(s)
			if cur.Subset&bit == 0 {
				tryMove(cur.Subset | bit) // add
			} else {
				tryMove(cur.Subset &^ bit) // drop
			}
		}
		for s := 0; s < in.NumSites; s++ {
			sb := uint64(1) << uint(s)
			if cur.Subset&sb == 0 {
				continue
			}
			for t := 0; t < in.NumSites; t++ {
				tb := uint64(1) << uint(t)
				if cur.Subset&tb != 0 {
					continue
				}
				tryMove(cur.Subset&^sb | tb) // swap
			}
		}
		if !improved {
			break
		}
		cur = best
	}
	return cur, nil
}

// GreedyByCost returns the k sites with the lowest mean cost over all
// clients — the paper's "greedy approach that enables sites with the lowest
// average unicast latency" (§5.3).
func GreedyByCost(in *Instance, k int) (Assignment, error) {
	if err := in.Validate(); err != nil {
		return Assignment{}, err
	}
	if k <= 0 || k > in.NumSites {
		return Assignment{}, fmt.Errorf("splpo: greedy size %d out of range", k)
	}
	type siteMean struct {
		site int
		mean float64
	}
	means := make([]siteMean, in.NumSites)
	for s := 0; s < in.NumSites; s++ {
		sum, n := 0.0, 0
		for i := range in.Clients {
			c := &in.Clients[i]
			// Only clients that can use the site contribute.
			for _, r := range c.Ranking {
				if r == s {
					sum += c.Cost[s]
					n++
					break
				}
			}
		}
		m := Infinity
		if n > 0 {
			m = sum / float64(n)
		}
		means[s] = siteMean{s, m}
	}
	sort.Slice(means, func(i, j int) bool {
		if means[i].mean != means[j].mean {
			return means[i].mean < means[j].mean
		}
		return means[i].site < means[j].site
	})
	var subset uint64
	for _, sm := range means[:k] {
		subset |= 1 << uint(sm.site)
	}
	return in.Evaluate(subset), nil
}

// RandomSubset evaluates a uniformly random subset of exactly k sites.
func RandomSubset(in *Instance, k int, rng *rand.Rand) (Assignment, error) {
	if err := in.Validate(); err != nil {
		return Assignment{}, err
	}
	if k <= 0 || k > in.NumSites {
		return Assignment{}, fmt.Errorf("splpo: random size %d out of range", k)
	}
	perm := rng.Perm(in.NumSites)
	var subset uint64
	for _, s := range perm[:k] {
		subset |= 1 << uint(s)
	}
	return in.Evaluate(subset), nil
}

// BestRandom evaluates n random subsets of size k and returns the best — the
// "best random configuration" baseline of §5.3.
func BestRandom(in *Instance, k, n int, rng *rand.Rand) (Assignment, error) {
	best := Assignment{MeanCost: Infinity}
	for i := 0; i < n; i++ {
		a, err := RandomSubset(in, k, rng)
		if err != nil {
			return Assignment{}, err
		}
		if a.MeanCost < best.MeanCost {
			best = a
		}
	}
	return best, nil
}
