package peering

import (
	"testing"
	"time"

	"anyopt/internal/core/discovery"
	"anyopt/internal/core/prefs"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

func setup(t *testing.T) (*testbed.Testbed, *discovery.Discovery) {
	t.Helper()
	topo, err := topology.Generate(topology.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := testbed.New(topo, testbed.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tb, discovery.New(tb, discovery.DefaultConfig())
}

// subsetPeers returns the first n peer links across sites, in site order.
func subsetPeers(tb *testbed.Testbed, n int) []topology.LinkID {
	var out []topology.LinkID
	for _, s := range tb.Sites {
		for _, pl := range s.PeerLinks {
			if len(out) == n {
				return out
			}
			out = append(out, pl)
		}
	}
	return out
}

func TestOnePassCampaign(t *testing.T) {
	tb, d := setup(t)
	base := []int{1, 3, 4, 5, 6, 10} // one site per provider
	peers := subsetPeers(tb, 20)

	res := OnePass(d, base, peers)
	if res.BaselineMean <= 0 {
		t.Fatal("no baseline mean")
	}
	if len(res.Reports) != len(peers) {
		t.Fatalf("reports = %d, want %d", len(res.Reports), len(peers))
	}
	// One experiment per peer plus the baseline.
	if d.Experiments != len(peers)+1 {
		t.Errorf("experiments = %d, want %d", d.Experiments, len(peers)+1)
	}

	reach, benef := res.ReachableCount(), res.BeneficialCount()
	t.Logf("baseline mean %v; %d/%d peers reachable, %d beneficial, %d included (estimated mean %v)",
		res.BaselineMean, reach, len(peers), benef, len(res.Included), res.EstimatedMean)

	for _, rep := range res.Reports {
		if rep.SiteID < 1 || rep.SiteID > 15 {
			t.Errorf("peer %d at site %d", rep.Link, rep.SiteID)
		}
		if rep.Beneficial && rep.Delta >= 0 {
			t.Errorf("peer %d beneficial with delta %v", rep.Link, rep.Delta)
		}
		if !rep.Beneficial && rep.Delta < 0 {
			t.Errorf("peer %d not beneficial with delta %v", rep.Link, rep.Delta)
		}
		// Peer catchments should be small — Figure 7a's headline shape.
		if frac := float64(len(rep.Catchment)) / float64(len(tb.Topo.Targets)); frac > 0.5 {
			t.Errorf("peer %d catches %.0f%% of targets; implausibly large", rep.Link, frac*100)
		}
	}
	// Included peers must all be beneficial and estimated mean must not
	// exceed the baseline.
	benefSet := map[topology.LinkID]bool{}
	for _, rep := range res.Reports {
		if rep.Beneficial {
			benefSet[rep.Link] = true
		}
	}
	for _, l := range res.Included {
		if !benefSet[l] {
			t.Errorf("included peer %d is not beneficial", l)
		}
	}
	if res.EstimatedMean > res.BaselineMean {
		t.Errorf("estimated mean %v above baseline %v", res.EstimatedMean, res.BaselineMean)
	}
}

func TestOnePassDeployedImprovement(t *testing.T) {
	// Deploy base + included peers and verify the measured mean does not
	// regress (the §5.4 result: small but real improvement).
	tb, d := setup(t)
	base := []int{1, 3, 4, 5, 6, 10}
	peers := subsetPeers(tb, 30)
	res := OnePass(d, base, peers)
	if len(res.Included) == 0 {
		t.Skip("no beneficial peers in this draw")
	}
	obs := d.RunConfigurationWithPeers(base, res.Included)
	var sum time.Duration
	n := 0
	for _, o := range obs {
		if o.HasRTT {
			sum += o.RTT
			n++
		}
	}
	if n == 0 {
		t.Fatal("no measurements")
	}
	got := sum / time.Duration(n)
	t.Logf("baseline %v → with %d beneficial peers %v", res.BaselineMean, len(res.Included), got)
	// Tolerate noise: the deployed config must not be more than 5% worse
	// than baseline, and typically improves.
	if float64(got) > float64(res.BaselineMean)*1.05 {
		t.Errorf("deployed peering config regressed: %v vs baseline %v", got, res.BaselineMean)
	}
}

func TestGreedyIncludeConservative(t *testing.T) {
	// Synthetic reports: a big beneficial peer that helps and a small one
	// that (conservatively) would hurt once the big one is in.
	res := &Result{
		BaselineMean: 100 * time.Millisecond,
		BaselineRTTs: map[prefs.Client]time.Duration{
			1: 100 * time.Millisecond,
			2: 100 * time.Millisecond,
			3: 100 * time.Millisecond,
			4: 100 * time.Millisecond,
		},
		Reports: []PeerReport{
			{
				Link: 10, Beneficial: true, Reachable: true,
				Catchment: map[prefs.Client]time.Duration{1: 10 * time.Millisecond, 2: 20 * time.Millisecond},
				Delta:     -5 * time.Millisecond,
			},
			{
				Link: 11, Beneficial: true, Reachable: true,
				// Would raise client 3 to 400ms: conservative estimate says no.
				Catchment: map[prefs.Client]time.Duration{3: 400 * time.Millisecond},
				Delta:     -time.Millisecond,
			},
		},
	}
	res.greedyInclude()
	if len(res.Included) != 1 || res.Included[0] != 10 {
		t.Fatalf("included = %v, want [10]", res.Included)
	}
	want := (10 + 20 + 100 + 100) * time.Millisecond / 4
	if res.EstimatedMean != want {
		t.Errorf("estimated mean %v, want %v", res.EstimatedMean, want)
	}
}

func TestGreedyIncludeNoBeneficial(t *testing.T) {
	res := &Result{
		BaselineMean: 50 * time.Millisecond,
		BaselineRTTs: map[prefs.Client]time.Duration{1: 50 * time.Millisecond},
		Reports: []PeerReport{
			{Link: 9, Beneficial: false, Delta: 3 * time.Millisecond},
		},
	}
	res.greedyInclude()
	if len(res.Included) != 0 {
		t.Fatalf("included = %v, want none", res.Included)
	}
	if res.EstimatedMean != res.BaselineMean {
		t.Errorf("estimated mean %v, want baseline", res.EstimatedMean)
	}
}
