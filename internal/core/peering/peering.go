// Package peering implements the "one-pass" heuristic for incorporating
// settlement-free peers into a transit-only anycast configuration (§4.4,
// §5.4).
//
// The heuristic enables one peering link at a time on top of the optimized
// transit-only configuration, measures the peer's catchment and the change
// in mean client RTT, and marks peers that reduce it as beneficial. It then
// greedily adds beneficial peers in decreasing catchment-size order,
// conservatively assuming every client in a peer's one-pass catchment
// switches to it, and keeps a peer only if the estimated mean still drops.
package peering

import (
	"sort"
	"time"

	"anyopt/internal/core/discovery"
	"anyopt/internal/core/prefs"
	"anyopt/internal/topology"
)

// PeerReport is the one-pass measurement of a single peering link.
type PeerReport struct {
	// Link is the peering link.
	Link topology.LinkID
	// SiteID is the site hosting the link.
	SiteID int
	// PeerAS is the neighbor AS.
	PeerAS topology.ASN
	// Catchment holds the clients whose replies entered via this peer, with
	// their measured RTTs.
	Catchment map[prefs.Client]time.Duration
	// MeanRTT is the configuration's mean client RTT with this peer
	// enabled.
	MeanRTT time.Duration
	// Delta is MeanRTT minus the baseline mean (negative = improvement).
	Delta time.Duration
	// Beneficial marks peers that reduced the mean RTT.
	Beneficial bool
	// Reachable is false when the peer attracted no measurable clients.
	Reachable bool
}

// Result is the outcome of a one-pass campaign.
type Result struct {
	// BaselineMean is the mean client RTT of the transit-only
	// configuration.
	BaselineMean time.Duration
	// BaselineRTTs are the measured per-client RTTs of the baseline.
	BaselineRTTs map[prefs.Client]time.Duration
	// Reports holds one entry per probed peering link, in link order.
	Reports []PeerReport
	// Included lists the peering links the greedy pass kept.
	Included []topology.LinkID
	// EstimatedMean is the conservative estimate of the final mean after
	// including the chosen peers.
	EstimatedMean time.Duration
}

// BeneficialCount returns the number of beneficial peers found.
func (r *Result) BeneficialCount() int {
	n := 0
	for _, rep := range r.Reports {
		if rep.Beneficial {
			n++
		}
	}
	return n
}

// ReachableCount returns the number of peers that attracted any client.
func (r *Result) ReachableCount() int {
	n := 0
	for _, rep := range r.Reports {
		if rep.Reachable {
			n++
		}
	}
	return n
}

// meanRTT averages the values of a per-client RTT map.
func meanRTT(m map[prefs.Client]time.Duration) time.Duration {
	if len(m) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range m {
		sum += d
	}
	return sum / time.Duration(len(m))
}

// OnePass runs the full §4.4 campaign: baseline measurement, one experiment
// per peering link (peers is the probe order; pass every testbed peer link
// for the paper's setup), and the conservative greedy inclusion.
func OnePass(d *discovery.Discovery, baseConfig []int, peers []topology.LinkID) *Result {
	baseCatch, baseRTTs := d.RunConfigurationRTTs(baseConfig)
	_ = baseCatch
	res := &Result{
		BaselineMean: meanRTT(baseRTTs),
		BaselineRTTs: baseRTTs,
	}

	// One experiment per peering link, all independent: filter out links with
	// no hosting site, then submit the whole sweep as a single batch so it
	// spreads across the discovery executor.
	var valid []topology.LinkID
	for _, pl := range peers {
		if d.TB.SiteByLink(pl) != nil {
			valid = append(valid, pl)
		}
	}
	deps := make([]discovery.PeerDeployment, len(valid))
	for i, pl := range valid {
		deps[i] = discovery.PeerDeployment{Sites: baseConfig, Peers: []topology.LinkID{pl}}
	}
	allObs := d.RunConfigurationsWithPeers(deps)

	for i, pl := range valid {
		site := d.TB.SiteByLink(pl)
		obs := allObs[i]
		rep := PeerReport{
			Link:      pl,
			SiteID:    site.ID,
			PeerAS:    d.TB.Topo.Link(pl).Other(d.TB.Origin),
			Catchment: make(map[prefs.Client]time.Duration),
		}
		rtts := make(map[prefs.Client]time.Duration, len(obs))
		for c, o := range obs {
			if o.HasRTT {
				rtts[c] = o.RTT
			}
			if o.Link == pl && o.HasRTT {
				rep.Catchment[c] = o.RTT
			}
		}
		rep.MeanRTT = meanRTT(rtts)
		rep.Delta = rep.MeanRTT - res.BaselineMean
		rep.Beneficial = rep.Delta < 0
		rep.Reachable = len(rep.Catchment) > 0
		res.Reports = append(res.Reports, rep)
	}

	res.greedyInclude()
	return res
}

// greedyInclude performs the offline conservative pass: beneficial peers in
// decreasing catchment-size order; include a peer iff assuming its entire
// one-pass catchment switches to it still lowers the estimated mean.
func (r *Result) greedyInclude() {
	var beneficial []*PeerReport
	for i := range r.Reports {
		if r.Reports[i].Beneficial {
			beneficial = append(beneficial, &r.Reports[i])
		}
	}
	sort.SliceStable(beneficial, func(i, j int) bool {
		if len(beneficial[i].Catchment) != len(beneficial[j].Catchment) {
			return len(beneficial[i].Catchment) > len(beneficial[j].Catchment)
		}
		return beneficial[i].Link < beneficial[j].Link
	})

	est := make(map[prefs.Client]time.Duration, len(r.BaselineRTTs))
	for c, d := range r.BaselineRTTs {
		est[c] = d
	}
	estMean := meanRTT(est)

	for _, rep := range beneficial {
		trial := make(map[prefs.Client]time.Duration, len(est))
		for c, d := range est {
			trial[c] = d
		}
		for c, d := range rep.Catchment {
			trial[c] = d
		}
		if m := meanRTT(trial); m < estMean {
			est, estMean = trial, m
			r.Included = append(r.Included, rep.Link)
		}
	}
	r.EstimatedMean = estMean
	if len(r.Included) == 0 {
		r.EstimatedMean = r.BaselineMean
	}
}
