// Package predict turns discovered preferences and RTT measurements into
// catchment and latency predictions for arbitrary anycast configurations
// (§3.4, §4.3, §5.2).
//
// Prediction is two-level, mirroring Internet routing structure: a client's
// inter-AS preference order (over transit providers) selects the ingress
// provider, and within that provider either measured site-level preferences
// or the RTT heuristic (§4.3) selects the site. Clients without a consistent
// total order are excluded from prediction, exactly as the paper excludes
// them.
package predict

import (
	"fmt"
	"time"

	"anyopt/internal/core/discovery"
	"anyopt/internal/core/prefs"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// Predictor predicts catchments for one testbed from discovery results.
type Predictor struct {
	TB *testbed.Testbed
	// Providers holds inter-AS (provider-level) preferences.
	Providers *prefs.Store
	// Sites holds intra-AS site-level preferences per provider; entries may
	// be nil when the RTT heuristic is used instead.
	Sites map[topology.ASN]*prefs.Store
	// RTT is the singleton-experiment RTT table.
	RTT *discovery.RTTTable
	// UseRTTHeuristic selects intra-AS sites by lowest measured RTT instead
	// of measured site preferences — the scaling fallback of §4.3.
	UseRTTHeuristic bool
}

// Config is an anycast configuration: enabled site IDs in announcement order.
type Config []int

// providerOrder derives the provider-level announcement order from the site
// announcement order (a provider is "announced" when its first site is).
func (p *Predictor) providerOrder(cfg Config) ([]prefs.Item, map[topology.ASN][]prefs.Item, error) {
	var provOrder []prefs.Item
	seen := map[topology.ASN]bool{}
	sitesByProv := map[topology.ASN][]prefs.Item{}
	for _, id := range cfg {
		site := p.TB.Site(id)
		if site == nil {
			return nil, nil, fmt.Errorf("predict: unknown site %d", id)
		}
		if !seen[site.Transit] {
			seen[site.Transit] = true
			provOrder = append(provOrder, prefs.Item(site.Transit))
		}
		sitesByProv[site.Transit] = append(sitesByProv[site.Transit], prefs.Item(id))
	}
	if len(provOrder) == 0 {
		return nil, nil, fmt.Errorf("predict: empty configuration")
	}
	return provOrder, sitesByProv, nil
}

// Catchment predicts the catchment site of client c under cfg. ok is false
// when the client lacks a total order over the enabled providers or sites, or
// lacks the required RTT measurements.
func (p *Predictor) Catchment(c prefs.Client, cfg Config) (int, bool) {
	provOrder, sitesByProv, err := p.providerOrder(cfg)
	if err != nil {
		return 0, false
	}
	cp := p.Providers.Get(c)
	if cp == nil {
		return 0, false
	}
	bestProv, ok := cp.Best(provOrder, provOrder)
	if !ok {
		return 0, false
	}
	prov := topology.ASN(bestProv)
	enabledSites := sitesByProv[prov]
	if len(enabledSites) == 1 {
		return int(enabledSites[0]), true
	}
	if p.UseRTTHeuristic || p.Sites[prov] == nil {
		return p.bestByRTT(c, enabledSites)
	}
	scp := p.Sites[prov].Get(c)
	if scp == nil {
		return p.bestByRTT(c, enabledSites)
	}
	site, ok := scp.Best(enabledSites, enabledSites)
	if !ok {
		// Fall back to the heuristic rather than dropping the client: the
		// provider choice is already made and RTT ranks the rest.
		return p.bestByRTT(c, enabledSites)
	}
	return int(site), true
}

// bestByRTT picks the enabled site with the lowest measured RTT for c — the
// §4.3 heuristic ("the shorter the RTT, the more preferable the site").
func (p *Predictor) bestByRTT(c prefs.Client, enabled []prefs.Item) (int, bool) {
	if p.RTT == nil {
		return 0, false
	}
	best, bestRTT := 0, time.Duration(0)
	found := false
	for _, it := range enabled {
		rtt, ok := p.RTT.RTT(int(it), c)
		if !ok {
			continue
		}
		if !found || rtt < bestRTT || (rtt == bestRTT && int(it) < best) {
			best, bestRTT, found = int(it), rtt, true
		}
	}
	return best, found
}

// All predicts catchments for every client known to the provider store.
// Unpredictable clients are absent from the result.
func (p *Predictor) All(cfg Config) map[prefs.Client]int {
	out := make(map[prefs.Client]int)
	for _, c := range p.Providers.Clients() {
		if site, ok := p.Catchment(c, cfg); ok {
			out[c] = site
		}
	}
	return out
}

// MeanRTT predicts the average client RTT of a configuration: each
// predictable client contributes its measured RTT to its predicted site.
func (p *Predictor) MeanRTT(cfg Config) (time.Duration, int) {
	if p.RTT == nil {
		return 0, 0
	}
	var sum time.Duration
	n := 0
	for c, site := range p.All(cfg) {
		rtt, ok := p.RTT.RTT(site, c)
		if !ok {
			continue
		}
		sum += rtt
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / time.Duration(n), n
}

// FracPredictable returns the fraction of known clients with a predictable
// catchment under cfg.
func (p *Predictor) FracPredictable(cfg Config) float64 {
	total := len(p.Providers.Clients())
	if total == 0 {
		return 0
	}
	return float64(len(p.All(cfg))) / float64(total)
}

// Accuracy compares predicted and measured catchments over the clients
// present in both maps, returning the match fraction and the overlap count —
// the metric of Figure 5a.
func Accuracy(predicted, measured map[prefs.Client]int) (float64, int) {
	match, n := 0, 0
	for c, p := range predicted {
		m, ok := measured[c]
		if !ok {
			continue
		}
		n++
		if p == m {
			match++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(match) / float64(n), n
}

// MeasuredMeanRTT averages a measured per-client RTT map (§5.2's "measured
// average RTT").
func MeasuredMeanRTT(rtts map[prefs.Client]time.Duration) (time.Duration, int) {
	if len(rtts) == 0 {
		return 0, 0
	}
	var sum time.Duration
	for _, d := range rtts {
		sum += d
	}
	return sum / time.Duration(len(rtts)), len(rtts)
}

// NewPredictor assembles a predictor from the standard two-level discovery
// campaign: ordered provider prefs, per-provider site prefs (or the RTT
// heuristic when useRTTHeuristic is set), and the singleton RTT table.
func NewPredictor(tb *testbed.Testbed, d *discovery.Discovery, useRTTHeuristic bool) (*Predictor, *discovery.RTTTable, error) {
	allSites := make([]int, len(tb.Sites))
	for i, s := range tb.Sites {
		allSites[i] = s.ID
	}
	rtt, err := d.MeasureRTTs(allSites)
	if err != nil {
		return nil, nil, err
	}
	prov, err := d.ProviderPrefs(d.Representatives())
	if err != nil {
		return nil, nil, err
	}
	sites := make(map[topology.ASN]*prefs.Store)
	if !useRTTHeuristic {
		for _, pASN := range tb.TransitProviders() {
			if len(tb.SitesOfTransit(pASN)) < 2 {
				continue
			}
			st, err := d.SitePrefs(pASN)
			if err != nil {
				return nil, nil, err
			}
			sites[pASN] = st
		}
	}
	return &Predictor{
		TB:              tb,
		Providers:       prov,
		Sites:           sites,
		RTT:             rtt,
		UseRTTHeuristic: useRTTHeuristic,
	}, rtt, nil
}
