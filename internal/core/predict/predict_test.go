package predict

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"anyopt/internal/analysis"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/prefs"
	"anyopt/internal/core/splpo"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// pipeline runs the full two-level discovery campaign once per test binary —
// it is the expensive fixture every prediction test shares.
type pipeline struct {
	tb   *testbed.Testbed
	disc *discovery.Discovery
	pred *Predictor
	rtt  *discovery.RTTTable
}

var sharedPipeline *pipeline

func getPipeline(t *testing.T) *pipeline {
	t.Helper()
	if sharedPipeline != nil {
		return sharedPipeline
	}
	topo, err := topology.Generate(topology.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := testbed.New(topo, testbed.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := discovery.New(tb, discovery.DefaultConfig())
	pred, rtt, err := NewPredictor(tb, d, false)
	if err != nil {
		t.Fatal(err)
	}
	sharedPipeline = &pipeline{tb: tb, disc: d, pred: pred, rtt: rtt}
	return sharedPipeline
}

// randomConfig picks a random subset of sites (size between 2 and 14) in a
// provider-grouped announcement order.
func randomConfig(p *Predictor, rng *rand.Rand, size int) Config {
	ids := rng.Perm(len(p.TB.Sites))[:size]
	subset := uint64(0)
	for _, i := range ids {
		subset |= 1 << uint(i)
	}
	annProv := make([]prefs.Item, 0)
	for _, prov := range p.TB.TransitProviders() {
		annProv = append(annProv, prefs.Item(prov))
	}
	return p.SubsetToConfig(subset, annProv)
}

func TestCatchmentPredictionAccuracy(t *testing.T) {
	// §5.2 / Figure 5a: predict catchments for random configurations, deploy
	// them, compare. The paper reports >93% accuracy per configuration.
	pl := getPipeline(t)
	rng := rand.New(rand.NewSource(42))
	var accs []float64
	for trial := 0; trial < 8; trial++ {
		size := 2 + rng.Intn(13)
		cfg := randomConfig(pl.pred, rng, size)
		predicted := pl.pred.All(cfg)
		measured := pl.disc.RunConfiguration(cfg)
		acc, n := Accuracy(predicted, measured)
		if n < 100 {
			t.Fatalf("config %v: only %d comparable clients", cfg, n)
		}
		accs = append(accs, acc)
		t.Logf("config %v: accuracy %.3f over %d clients (predictable %.2f)",
			cfg, acc, n, pl.pred.FracPredictable(cfg))
	}
	mean := analysis.Mean(accs)
	t.Logf("mean accuracy %.3f (paper: 0.947)", mean)
	if mean < 0.85 {
		t.Errorf("mean catchment accuracy %.3f below 0.85", mean)
	}
	for i, a := range accs {
		if a < 0.75 {
			t.Errorf("trial %d accuracy %.3f below 0.75", i, a)
		}
	}
}

func TestMeanRTTPredictionError(t *testing.T) {
	// §5.2 / Figures 5b–5c: predicted vs measured mean RTT. Paper: mean
	// relative error ≤4.6%, 80% of configs within 6 ms absolute.
	pl := getPipeline(t)
	rng := rand.New(rand.NewSource(7))
	var relErrs, absErrsMs []float64
	for trial := 0; trial < 8; trial++ {
		size := 2 + rng.Intn(13)
		cfg := randomConfig(pl.pred, rng, size)
		predMean, n := pl.pred.MeanRTT(cfg)
		if n == 0 {
			t.Fatalf("config %v: no predictable clients with RTT", cfg)
		}
		_, rtts := pl.disc.RunConfigurationRTTs(cfg)
		measMean, m := MeasuredMeanRTT(rtts)
		if m == 0 {
			t.Fatalf("config %v: no measured RTTs", cfg)
		}
		rel := analysis.RelErr(float64(predMean), float64(measMean))
		absMs := math.Abs(float64(predMean-measMean)) / float64(time.Millisecond)
		relErrs = append(relErrs, rel)
		absErrsMs = append(absErrsMs, absMs)
		t.Logf("config %v: predicted %v measured %v (rel %.3f)", cfg, predMean, measMean, rel)
	}
	meanRel := analysis.Mean(relErrs)
	t.Logf("mean relative error %.3f (paper: 0.046)", meanRel)
	if meanRel > 0.12 {
		t.Errorf("mean relative RTT error %.3f too high", meanRel)
	}
	if analysis.CDFAt(absErrsMs, 10) < 0.5 {
		t.Errorf("fewer than half of configs within 10 ms absolute error: %v", absErrsMs)
	}
}

func TestPredictorRTTHeuristicClose(t *testing.T) {
	// §4.3: replacing measured intra-AS prefs with the RTT heuristic should
	// barely change predictions (IGP distance correlates with RTT).
	pl := getPipeline(t)
	heur := &Predictor{
		TB:              pl.pred.TB,
		Providers:       pl.pred.Providers,
		Sites:           nil,
		RTT:             pl.rtt,
		UseRTTHeuristic: true,
	}
	cfg := Config{1, 2, 12, 6, 7, 9, 11, 4, 13} // Telia + NTT + TATA sites
	a := pl.pred.All(cfg)
	b := heur.All(cfg)
	same, n := 0, 0
	for c, s := range a {
		s2, ok := b[c]
		if !ok {
			continue
		}
		n++
		if s == s2 {
			same++
		}
	}
	if n == 0 {
		t.Fatal("no overlap")
	}
	frac := float64(same) / float64(n)
	t.Logf("RTT heuristic agreement: %.3f over %d clients", frac, n)
	if frac < 0.85 {
		t.Errorf("heuristic agreement %.3f below 0.85", frac)
	}
}

func TestSingleSiteConfigTrivial(t *testing.T) {
	pl := getPipeline(t)
	cfg := Config{5}
	for _, c := range pl.pred.Providers.Clients()[:50] {
		site, ok := pl.pred.Catchment(c, cfg)
		if !ok {
			continue
		}
		if site != 5 {
			t.Fatalf("client %d predicted site %d under single-site config", c, site)
		}
	}
	if pl.pred.FracPredictable(cfg) < 0.95 {
		t.Errorf("single-site config should be predictable for nearly everyone")
	}
}

func TestPredictorErrors(t *testing.T) {
	pl := getPipeline(t)
	if _, ok := pl.pred.Catchment(prefs.Client(1), Config{99}); ok {
		t.Error("unknown site accepted")
	}
	if _, ok := pl.pred.Catchment(prefs.Client(1), nil); ok {
		t.Error("empty config accepted")
	}
	if _, ok := pl.pred.Catchment(prefs.Client(999999999), Config{1}); ok {
		t.Error("unknown client predicted")
	}
}

func TestBuildInstanceAndOptimize(t *testing.T) {
	// End-to-end §5.3: build the SPLPO instance, find the best 4-site
	// configuration exhaustively, and verify it beats greedy-by-unicast and
	// random baselines on predicted mean RTT.
	pl := getPipeline(t)
	annProv, frac := pl.pred.Providers.BestAnnouncementOrder(6)
	if frac < 0.8 {
		t.Fatalf("best announcement order only covers %.2f of clients", frac)
	}
	in, clients := pl.pred.BuildInstance(annProv)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(clients) != len(in.Clients) {
		t.Fatal("client mapping length mismatch")
	}
	if len(in.Clients) < 200 {
		t.Fatalf("only %d orderable clients in instance", len(in.Clients))
	}

	const k = 4
	best, _, err := splpo.Exhaustive(in, splpo.Options{ExactSize: k})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := splpo.GreedyByCost(in, k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	random, err := splpo.RandomSubset(in, k, rng)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mean cost (ms): anyopt=%.1f greedy=%.1f random=%.1f",
		best.MeanCost, greedy.MeanCost, random.MeanCost)
	if best.MeanCost > greedy.MeanCost+1e-9 {
		t.Errorf("exhaustive (%v) worse than greedy (%v)", best.MeanCost, greedy.MeanCost)
	}
	if best.MeanCost > random.MeanCost+1e-9 {
		t.Errorf("exhaustive (%v) worse than random (%v)", best.MeanCost, random.MeanCost)
	}

	// The optimized config must also deploy well: measured mean RTT within
	// 25% of the predicted optimum.
	cfg := pl.pred.SubsetToConfig(best.Subset, annProv)
	if len(cfg) != k {
		t.Fatalf("SubsetToConfig returned %v", cfg)
	}
	if got := ConfigToSubset(cfg); got != best.Subset {
		t.Fatalf("ConfigToSubset mismatch: %b vs %b", got, best.Subset)
	}
	_, rtts := pl.disc.RunConfigurationRTTs(cfg)
	meas, _ := MeasuredMeanRTT(rtts)
	pred := time.Duration(best.MeanCost * float64(time.Millisecond))
	if rel := analysis.RelErr(float64(meas), float64(pred)); rel > 0.25 {
		t.Errorf("deployed optimum mean %v deviates %.0f%% from predicted %v", meas, rel*100, pred)
	}
}

func TestRankingConsistentWithCatchment(t *testing.T) {
	pl := getPipeline(t)
	annProv := make([]prefs.Item, 0)
	for _, prov := range pl.tb.TransitProviders() {
		annProv = append(annProv, prefs.Item(prov))
	}
	cfg := Config{1, 3, 4, 5, 6, 10}
	enabled := map[int]bool{}
	for _, id := range cfg {
		enabled[id] = true
	}
	checked := 0
	for _, c := range pl.pred.Providers.Clients() {
		ranking, ok := pl.pred.Ranking(c, annProv)
		if !ok {
			continue
		}
		if len(ranking) != len(pl.tb.Sites) {
			t.Fatalf("ranking has %d sites", len(ranking))
		}
		want := -1
		for _, s := range ranking {
			if enabled[s] {
				want = s
				break
			}
		}
		got, ok := pl.pred.Catchment(c, cfg)
		if !ok {
			continue
		}
		checked++
		if got != want {
			// Rankings use the global provider announcement order; the
			// config order is a sub-order of it, so they must agree.
			t.Fatalf("client %d: ranking says %d, Catchment says %d", c, want, got)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d clients checked", checked)
	}
}
