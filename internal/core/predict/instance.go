package predict

import (
	"sort"
	"time"

	"anyopt/internal/core/prefs"
	"anyopt/internal/core/splpo"
	"anyopt/internal/topology"
)

// unmeasuredCost is the SPLPO cost for a (client, site) pair with no RTT
// measurement: large enough that the optimizer avoids relying on it, finite
// so arithmetic stays clean.
const unmeasuredCost = 1e9 // milliseconds

// intraRanking orders the given sites of one provider by the client's
// intra-AS preferences, falling back to the RTT heuristic (§4.3).
func (p *Predictor) intraRanking(c prefs.Client, prov topology.ASN) []int {
	sites := p.TB.SitesOfTransit(prov)
	items := make([]prefs.Item, len(sites))
	for i, s := range sites {
		items[i] = prefs.Item(s.ID)
	}
	if len(items) == 1 {
		return []int{int(items[0])}
	}
	if !p.UseRTTHeuristic && p.Sites[prov] != nil {
		if scp := p.Sites[prov].Get(c); scp != nil {
			if order, ok := scp.TotalOrder(items); ok {
				out := make([]int, len(order))
				for i, it := range order {
					out[i] = int(it)
				}
				return out
			}
		}
	}
	// RTT heuristic: lowest measured RTT first; unmeasured sites last.
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = int(it)
	}
	sort.SliceStable(out, func(a, b int) bool {
		ra, oka := p.rttOrHuge(out[a], c)
		rb, okb := p.rttOrHuge(out[b], c)
		if oka != okb {
			return oka
		}
		if ra != rb {
			return ra < rb
		}
		return out[a] < out[b]
	})
	return out
}

func (p *Predictor) rttOrHuge(site int, c prefs.Client) (time.Duration, bool) {
	if p.RTT == nil {
		return 0, false
	}
	return p.RTT.RTT(site, c)
}

// Ranking composes a client's full preference order over every testbed site
// under the given provider announcement order: providers in the client's
// total order, sites within each provider in intra-AS order. ok is false
// when the client has no provider-level total order.
func (p *Predictor) Ranking(c prefs.Client, annProv []prefs.Item) ([]int, bool) {
	cp := p.Providers.Get(c)
	if cp == nil {
		return nil, false
	}
	provOrder, ok := cp.TotalOrder(annProv)
	if !ok {
		return nil, false
	}
	var out []int
	for _, prov := range provOrder {
		out = append(out, p.intraRanking(c, topology.ASN(prov))...)
	}
	return out, true
}

// BuildInstance converts the discovery results into an SPLPO instance
// (Appendix B): site index i corresponds to testbed site ID i+1, each
// orderable client contributes its full ranking, and costs are measured RTTs
// in milliseconds. It returns the instance and the client behind each
// instance row. Clients without a total order are excluded from
// optimization, as §4.5 prescribes.
func (p *Predictor) BuildInstance(annProv []prefs.Item) (*splpo.Instance, []prefs.Client) {
	return p.BuildInstanceWeighted(annProv, nil, nil)
}

// BuildInstanceWeighted is BuildInstance with the Appendix B extensions:
// loads assigns each client a demand l(h) (defaulting to 1) that both
// weights its RTT contribution ("weigh each host's RTT with its workload")
// and counts against site capacities; caps (site ID → maximum load L_i)
// adds the per-site load constraint Σ l(h)·x_{h,i} ≤ L_i.
func (p *Predictor) BuildInstanceWeighted(annProv []prefs.Item, loads map[prefs.Client]float64, caps map[int]float64) (*splpo.Instance, []prefs.Client) {
	n := len(p.TB.Sites)
	in := &splpo.Instance{NumSites: n}
	if caps != nil {
		in.Cap = make([]float64, n)
		for i := range in.Cap {
			in.Cap[i] = splpo.Infinity
		}
		for siteID, cap := range caps {
			if siteID >= 1 && siteID <= n {
				in.Cap[siteID-1] = cap
			}
		}
	}
	var clients []prefs.Client
	for _, c := range p.Providers.Clients() {
		ranking, ok := p.Ranking(c, annProv)
		if !ok {
			continue
		}
		idxRank := make([]int, len(ranking))
		rankCost := make([]float64, len(ranking))
		for i, siteID := range ranking {
			idxRank[i] = siteID - 1
			rankCost[i] = unmeasuredCost
			if rtt, ok := p.rttOrHuge(siteID, c); ok {
				rankCost[i] = float64(rtt) / float64(time.Millisecond)
			}
		}
		load := 1.0
		if loads != nil {
			if l, ok := loads[c]; ok {
				load = l
			}
		}
		in.Clients = append(in.Clients, splpo.Client{
			Ranking: idxRank, RankCost: rankCost, Load: load, Weight: load,
		})
		clients = append(clients, c)
	}
	return in, clients
}

// SubsetToConfig converts an SPLPO subset bitmask into a deployable
// configuration: site IDs ordered by the provider announcement order (each
// provider's sites announced consecutively), so that deployed arrival order
// matches the preferences used to predict it.
func (p *Predictor) SubsetToConfig(subset uint64, annProv []prefs.Item) Config {
	var cfg Config
	for _, prov := range annProv {
		for _, s := range p.TB.SitesOfTransit(topology.ASN(prov)) {
			if subset&(1<<uint(s.ID-1)) != 0 {
				cfg = append(cfg, s.ID)
			}
		}
	}
	return cfg
}

// ConfigToSubset is the inverse of SubsetToConfig.
func ConfigToSubset(cfg Config) uint64 {
	var subset uint64
	for _, id := range cfg {
		subset |= 1 << uint(id-1)
	}
	return subset
}

// SiteSetToConfig is SubsetToConfig for bitset configurations — the
// representation the anytime solver uses past the 63-site bitmask limit.
func (p *Predictor) SiteSetToConfig(open splpo.SiteSet, annProv []prefs.Item) Config {
	var cfg Config
	for _, prov := range annProv {
		for _, s := range p.TB.SitesOfTransit(topology.ASN(prov)) {
			if open.Has(s.ID - 1) {
				cfg = append(cfg, s.ID)
			}
		}
	}
	return cfg
}

// ConfigToSiteSet is the inverse of SiteSetToConfig over an n-site testbed.
func ConfigToSiteSet(n int, cfg Config) splpo.SiteSet {
	s := splpo.NewSiteSet(n)
	for _, id := range cfg {
		if id >= 1 && id <= n {
			s.Add(id - 1)
		}
	}
	return s
}
