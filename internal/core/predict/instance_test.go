package predict

import (
	"testing"

	"anyopt/internal/core/prefs"
	"anyopt/internal/core/splpo"
)

func TestBuildInstanceStructure(t *testing.T) {
	pl := getPipeline(t)
	annProv, _ := pl.pred.Providers.BestAnnouncementOrder(6)
	in, clients := pl.pred.BuildInstance(annProv)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumSites != 15 {
		t.Errorf("NumSites = %d", in.NumSites)
	}
	if in.Cap != nil {
		t.Error("uncapacitated instance has caps")
	}
	for i, c := range in.Clients {
		if len(c.Ranking) != 15 {
			t.Fatalf("client %d ranking has %d sites", i, len(c.Ranking))
		}
		if c.Load != 1 || c.Weight != 1 {
			t.Fatalf("client %d load/weight = %v/%v, want 1/1", i, c.Load, c.Weight)
		}
		seen := map[int]bool{}
		for _, s := range c.Ranking {
			if s < 0 || s >= 15 || seen[s] {
				t.Fatalf("client %d ranking invalid: %v", i, c.Ranking)
			}
			seen[s] = true
		}
	}
	if len(clients) != len(in.Clients) {
		t.Error("client mapping length mismatch")
	}
}

func TestBuildInstanceWeighted(t *testing.T) {
	pl := getPipeline(t)
	annProv, _ := pl.pred.Providers.BestAnnouncementOrder(6)

	loads := map[prefs.Client]float64{}
	for i, c := range pl.pred.Providers.Clients() {
		if i%2 == 0 {
			loads[c] = 5
		}
	}
	caps := map[int]float64{1: 100, 6: 50}
	in, clients := pl.pred.BuildInstanceWeighted(annProv, loads, caps)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.Cap == nil {
		t.Fatal("caps not installed")
	}
	if in.Cap[0] != 100 || in.Cap[5] != 50 {
		t.Errorf("caps = %v, %v", in.Cap[0], in.Cap[5])
	}
	if in.Cap[2] < splpo.Infinity {
		t.Error("uncapped site has a finite cap")
	}
	fives, ones := 0, 0
	for i, c := range in.Clients {
		want := 1.0
		if l, ok := loads[clients[i]]; ok {
			want = l
		}
		if c.Load != want || c.Weight != want {
			t.Fatalf("client %d load %v, want %v", i, c.Load, want)
		}
		if want == 5 {
			fives++
		} else {
			ones++
		}
	}
	if fives == 0 || ones == 0 {
		t.Errorf("load mix missing: fives=%d ones=%d", fives, ones)
	}
}

func TestSubsetToConfigRoundTrip(t *testing.T) {
	pl := getPipeline(t)
	annProv, _ := pl.pred.Providers.BestAnnouncementOrder(6)
	for _, subset := range []uint64{0b1, 0b101010101, 0b111111111111111} {
		cfg := pl.pred.SubsetToConfig(subset, annProv)
		if got := ConfigToSubset(cfg); got != subset {
			t.Errorf("subset %b → config %v → %b", subset, cfg, got)
		}
		// Sites of the same provider must be adjacent in the config.
		lastProv := map[int64]int{}
		for i, id := range cfg {
			prov := int64(pl.tb.Site(id).Transit)
			if at, seen := lastProv[prov]; seen && at != i-1 {
				t.Errorf("subset %b: provider %d's sites not adjacent in %v", subset, prov, cfg)
			}
			lastProv[prov] = i
		}
	}
}

func TestRankingPrefixStability(t *testing.T) {
	// For any client with a full ranking, the top item must equal the
	// Catchment prediction under the all-sites config — Ranking and
	// Catchment must never disagree.
	pl := getPipeline(t)
	annProv, _ := pl.pred.Providers.BestAnnouncementOrder(6)
	all := pl.pred.SubsetToConfig(1<<15-1, annProv)
	checked := 0
	for _, c := range pl.pred.Providers.Clients() {
		ranking, ok := pl.pred.Ranking(c, annProv)
		if !ok {
			continue
		}
		got, ok := pl.pred.Catchment(c, all)
		if !ok {
			continue
		}
		checked++
		if got != ranking[0] {
			t.Fatalf("client %d: top of ranking %d != catchment %d", c, ranking[0], got)
		}
	}
	if checked < 200 {
		t.Fatalf("only %d clients checked", checked)
	}
}
