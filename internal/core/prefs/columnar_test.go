package prefs

import (
	"math/rand"
	"reflect"
	"testing"
)

// refStore is the nested-map reference model: the exact semantics of the
// pre-columnar Store (map[Client]*row backing, first-record insertion,
// sorted dump). The columnar store must be observationally identical to it
// under every operation sequence — the differential property this file
// drives.
type refStore struct {
	items []Item
	index map[Item]int
	order []Client
	rows  map[Client][]refRel
}

type refRel struct {
	rel    Relation
	winner Item
}

func newRef(items []Item) *refStore {
	r := &refStore{items: append([]Item(nil), items...), index: map[Item]int{}, rows: map[Client][]refRel{}}
	for i, it := range r.items {
		r.index[it] = i
	}
	return r
}

func (r *refStore) nPairs() int { return len(r.items) * (len(r.items) - 1) / 2 }

func (r *refStore) pairIdx(a, b int) int {
	if a > b {
		a, b = b, a
	}
	n := len(r.items)
	return a*(2*n-a-1)/2 + (b - a - 1)
}

func (r *refStore) row(c Client) []refRel {
	if r.rows[c] == nil {
		r.rows[c] = make([]refRel, r.nPairs())
		r.order = append(r.order, c)
	}
	return r.rows[c]
}

func (r *refStore) recordOrdered(c Client, i, j, wI, wJ Item) {
	idx := r.pairIdx(r.index[i], r.index[j])
	if wI == wJ {
		r.row(c)[idx] = refRel{RelStrict, wI}
	} else {
		r.row(c)[idx] = refRel{RelEqual, 0}
	}
}

func (r *refStore) recordSimultaneous(c Client, i, j, w Item) {
	r.row(c)[r.pairIdx(r.index[i], r.index[j])] = refRel{RelStrict, w}
}

func (r *refStore) relation(c Client, i, j Item) (Relation, Item) {
	row := r.rows[c]
	if row == nil {
		return RelUnknown, 0
	}
	pr := row[r.pairIdx(r.index[i], r.index[j])]
	if pr.rel != RelStrict {
		return pr.rel, 0
	}
	return pr.rel, pr.winner
}

func (r *refStore) dump() []DumpedRelation {
	clients := append([]Client(nil), r.order...)
	for x := 1; x < len(clients); x++ { // insertion sort: small n
		for y := x; y > 0 && clients[y-1] > clients[y]; y-- {
			clients[y-1], clients[y] = clients[y], clients[y-1]
		}
	}
	var out []DumpedRelation
	for _, c := range clients {
		row := r.rows[c]
		for a := 0; a < len(r.items); a++ {
			for b := a + 1; b < len(r.items); b++ {
				pr := row[r.pairIdx(a, b)]
				if pr.rel == RelUnknown {
					continue
				}
				out = append(out, DumpedRelation{Client: c, I: r.items[a], J: r.items[b], Rel: pr.rel, Winner: pr.winner})
			}
		}
	}
	return out
}

// patchClients mirrors the pre-columnar PatchClients semantics.
func (r *refStore) patchClients(patch *refStore, cone func(Client) bool) *refStore {
	out := newRef(r.items)
	for _, c := range r.order {
		if cone(c) {
			if row := patch.rows[c]; row != nil {
				copy(out.row(c), row)
			}
			continue
		}
		copy(out.row(c), r.rows[c])
	}
	for _, c := range patch.order {
		if out.rows[c] == nil {
			copy(out.row(c), patch.rows[c])
		}
	}
	return out
}

// checkEquiv compares every observable of the columnar store against the
// reference: client enumeration, point lookups (including never-recorded
// clients and pairs), and the canonical dump.
func checkEquiv(t *testing.T, step int, s *Store, r *refStore, probeClients []Client) {
	t.Helper()
	gotClients := s.Clients()
	wantClients := append([]Client(nil), r.order...)
	for x := 1; x < len(wantClients); x++ {
		for y := x; y > 0 && wantClients[y-1] > wantClients[y]; y-- {
			wantClients[y-1], wantClients[y] = wantClients[y], wantClients[y-1]
		}
	}
	if !reflect.DeepEqual(gotClients, wantClients) && !(len(gotClients) == 0 && len(wantClients) == 0) {
		t.Fatalf("step %d: clients %v, want %v", step, gotClients, wantClients)
	}
	for _, c := range probeClients {
		cp := s.Get(c)
		if (cp == nil) != (r.rows[c] == nil) {
			t.Fatalf("step %d: Get(%d) nil-ness mismatch", step, c)
		}
		if cp == nil {
			continue
		}
		for a := 0; a < len(r.items); a++ {
			for b := a + 1; b < len(r.items); b++ {
				gr, gw := cp.Relation(r.items[a], r.items[b])
				wr, ww := r.relation(c, r.items[a], r.items[b])
				if gr != wr || gw != ww {
					t.Fatalf("step %d: relation(%d, %d, %d) = (%v, %d), want (%v, %d)",
						step, c, r.items[a], r.items[b], gr, gw, wr, ww)
				}
			}
		}
	}
	if got, want := s.Dump(), r.dump(); !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: dump mismatch:\n got %v\nwant %v", step, got, want)
	}
}

// TestColumnarDifferential drives random append / out-of-order insert /
// patch / dump / restore sequences through the columnar store and the
// nested-map reference model in lockstep. Ten seeds, several hundred ops
// each; any divergence in point lookups or canonical export fails.
func TestColumnarDifferential(t *testing.T) {
	items := []Item{40, 2, 17, 9}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := mustStore(t, items...)
		ref := newRef(items)
		clientPool := make([]Client, 40)
		for i := range clientPool {
			clientPool[i] = Client(rng.Intn(5000)) // dups force mid-inserts and overwrites
		}
		for step := 0; step < 400; step++ {
			c := clientPool[rng.Intn(len(clientPool))]
			a := rng.Intn(len(items))
			b := rng.Intn(len(items) - 1)
			if b >= a {
				b++
			}
			i, j := items[a], items[b]
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // ordered experiment
				wI, wJ := i, i
				if rng.Intn(2) == 0 {
					wI = j
				}
				if rng.Intn(2) == 0 {
					wJ = j
				}
				if err := s.RecordOrdered(c, i, j, wI, wJ); err != nil {
					t.Fatal(err)
				}
				ref.recordOrdered(c, i, j, wI, wJ)
			case 4, 5, 6: // naive experiment
				w := i
				if rng.Intn(2) == 0 {
					w = j
				}
				if err := s.RecordSimultaneous(c, i, j, w); err != nil {
					t.Fatal(err)
				}
				ref.recordSimultaneous(c, i, j, w)
			case 7: // export → import round trip replaces the store
				fresh := mustStore(t, items...)
				if err := fresh.Restore(s.Dump()); err != nil {
					t.Fatal(err)
				}
				s = fresh
			case 8: // patch a random cone with a random sub-campaign
				cut := Client(rng.Intn(5000))
				cone := func(cl Client) bool { return cl >= cut }
				p := mustStore(t, items...)
				refP := newRef(items)
				for k := 0; k < rng.Intn(8); k++ {
					pc := clientPool[rng.Intn(len(clientPool))]
					if !cone(pc) {
						continue
					}
					w := i
					if rng.Intn(2) == 0 {
						w = j
					}
					if err := p.RecordSimultaneous(pc, i, j, w); err != nil {
						t.Fatal(err)
					}
					refP.recordSimultaneous(pc, i, j, w)
				}
				patched, err := s.PatchClients(p, cone)
				if err != nil {
					t.Fatal(err)
				}
				s = patched
				ref = ref.patchClients(refP, cone)
			case 9: // empty-cone patch must hand the receiver back
				empty := mustStore(t, items...)
				patched, err := s.PatchClients(empty, func(Client) bool { return false })
				if err != nil {
					t.Fatal(err)
				}
				if patched != s {
					t.Fatalf("step %d: empty-cone patch did not return the receiver", step)
				}
			}
			if step%37 == 0 || step == 399 {
				checkEquiv(t, step, s, ref, clientPool)
			}
		}
		checkEquiv(t, -1, s, ref, clientPool)
	}
}

// TestColumnarOutOfOrderInsert pins the mid-insert path directly: recording
// clients in descending order must shift rows without corrupting earlier
// ones.
func TestColumnarOutOfOrderInsert(t *testing.T) {
	s := mustStore(t, 1, 2)
	for c := Client(50); c > 0; c -= 7 {
		w := Item(1)
		if c%2 == 0 {
			w = 2
		}
		if err := s.RecordSimultaneous(c, 1, 2, w); err != nil {
			t.Fatal(err)
		}
	}
	for c := Client(50); c > 0; c -= 7 {
		w := Item(1)
		if c%2 == 0 {
			w = 2
		}
		rel, got := s.Get(c).Relation(1, 2)
		if rel != RelStrict || got != w {
			t.Fatalf("client %d: got (%v, %d), want (strict, %d)", c, rel, got, w)
		}
	}
	cs := s.Clients()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("client column not strictly ascending: %v", cs)
		}
	}
}
