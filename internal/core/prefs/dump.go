package prefs

import (
	"fmt"
	"sort"
)

// DumpedRelation is one (client, pair) relation in exportable form.
type DumpedRelation struct {
	Client Client   `json:"c"`
	I      Item     `json:"i"`
	J      Item     `json:"j"`
	Rel    Relation `json:"r"`
	// Winner is meaningful for RelStrict.
	Winner Item `json:"w,omitempty"`
}

// Dump exports every recorded relation, in canonical (client, pair) order,
// for persistence. The order is sorted by client — not first-record order —
// so two stores holding the same relations dump byte-identically even when
// their clients were recorded in different sequences (a full campaign vs. a
// cone-scoped repair that re-recorded only part of the client set).
func (s *Store) Dump() []DumpedRelation {
	clients := append([]Client(nil), s.clientOrder...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	var out []DumpedRelation
	for _, c := range clients {
		cp := s.clients[c]
		for a := 0; a < len(s.items); a++ {
			for b := a + 1; b < len(s.items); b++ {
				pr := cp.rel[s.pairIdx(a, b)]
				if pr.rel == RelUnknown {
					continue
				}
				out = append(out, DumpedRelation{
					Client: c, I: s.items[a], J: s.items[b],
					Rel: pr.rel, Winner: pr.winner,
				})
			}
		}
	}
	return out
}

// Restore installs previously dumped relations. The store's item universe
// must contain every referenced item.
func (s *Store) Restore(rels []DumpedRelation) error {
	for _, r := range rels {
		ii, ok := s.index[r.I]
		if !ok {
			return fmt.Errorf("prefs: restore references unknown item %d", r.I)
		}
		jj, ok := s.index[r.J]
		if !ok {
			return fmt.Errorf("prefs: restore references unknown item %d", r.J)
		}
		if ii == jj {
			return fmt.Errorf("prefs: restore with degenerate pair (%d, %d)", r.I, r.J)
		}
		switch r.Rel {
		case RelStrict:
			if r.Winner != r.I && r.Winner != r.J {
				return fmt.Errorf("prefs: restore winner %d not in pair (%d, %d)", r.Winner, r.I, r.J)
			}
		case RelEqual:
			// no winner
		default:
			return fmt.Errorf("prefs: restore with relation %v", r.Rel)
		}
		cp := s.client(r.Client)
		cp.rel[s.pairIdx(ii, jj)] = pairRel{rel: r.Rel, winner: r.Winner}
	}
	return nil
}
