package prefs

import "fmt"

// DumpedRelation is one (client, pair) relation in exportable form.
type DumpedRelation struct {
	Client Client   `json:"c"`
	I      Item     `json:"i"`
	J      Item     `json:"j"`
	Rel    Relation `json:"r"`
	// Winner is meaningful for RelStrict.
	Winner Item `json:"w,omitempty"`
}

// ForEachRelation calls fn for every recorded relation in canonical
// (client, pair) order — clients ascending (the order of the sorted client
// column), pairs in item order. It is the streaming backbone of Dump and of
// campaign persistence: one relation is materialized at a time, so a caller
// serializing an internet-scale store never holds the full relation list in
// memory.
func (s *Store) ForEachRelation(fn func(DumpedRelation)) {
	for row, c := range s.keys {
		base := row * s.nPairs
		for a := 0; a < len(s.items); a++ {
			for b := a + 1; b < len(s.items); b++ {
				p := s.pairIdx(a, b)
				rel := s.rels[base+p]
				if rel == RelUnknown {
					continue
				}
				var winner Item
				if rel == RelStrict {
					winner = s.items[s.winIdx[base+p]]
				}
				fn(DumpedRelation{
					Client: c, I: s.items[a], J: s.items[b],
					Rel: rel, Winner: winner,
				})
			}
		}
	}
}

// NumRelations returns the number of recorded relations — the length of the
// slice Dump would build — without materializing it.
func (s *Store) NumRelations() int {
	n := 0
	for _, rel := range s.rels {
		if rel != RelUnknown {
			n++
		}
	}
	return n
}

// Dump exports every recorded relation, in canonical (client, pair) order,
// for persistence. Clients are emitted ascending — the natural order of the
// sorted client column — so two stores holding the same relations dump
// byte-identically even when their clients were recorded in different
// sequences (a full campaign vs. a cone-scoped repair that re-recorded only
// part of the client set).
func (s *Store) Dump() []DumpedRelation {
	var out []DumpedRelation
	s.ForEachRelation(func(r DumpedRelation) { out = append(out, r) })
	return out
}

// Restore installs previously dumped relations. The store's item universe
// must contain every referenced item.
func (s *Store) Restore(rels []DumpedRelation) error {
	for _, r := range rels {
		ii, ok := s.index[r.I]
		if !ok {
			return fmt.Errorf("prefs: restore references unknown item %d", r.I)
		}
		jj, ok := s.index[r.J]
		if !ok {
			return fmt.Errorf("prefs: restore references unknown item %d", r.J)
		}
		if ii == jj {
			return fmt.Errorf("prefs: restore with degenerate pair (%d, %d)", r.I, r.J)
		}
		winnerIdx := -1
		switch r.Rel {
		case RelStrict:
			if r.Winner != r.I && r.Winner != r.J {
				return fmt.Errorf("prefs: restore winner %d not in pair (%d, %d)", r.Winner, r.I, r.J)
			}
			winnerIdx = s.index[r.Winner]
		case RelEqual:
			// no winner
		default:
			return fmt.Errorf("prefs: restore with relation %v", r.Rel)
		}
		row := s.ensureClient(r.Client)
		s.set(row, s.pairIdx(ii, jj), r.Rel, winnerIdx)
	}
	return nil
}
