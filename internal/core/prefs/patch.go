package prefs

import "fmt"

// PatchClients builds a new store over the same item universe in which every
// client selected by cone is replaced wholesale by its row in patch — or
// dropped, when patch holds no row for it (the client stopped responding
// after the routing change). Clients outside the cone keep their rows from
// s; clients that appear only in patch are added. Neither input store is
// modified: the result is a fresh copy-on-write table, which is what lets
// the reconciler publish it through PatchCampaign without ever exposing a
// half-repaired row.
//
// When the cone selects no client of either store — the empty-repair case a
// churn reconciler hits when a routing delta's cone misses the measured
// client set entirely — the receiver itself is returned instead of a deep
// copy. Stores are immutable once published, so sharing the receiver is
// exactly as safe as sharing the snapshot it came from.
//
// patch must share s's exact item universe, since relation rows are indexed
// by item position.
func (s *Store) PatchClients(patch *Store, cone func(Client) bool) (*Store, error) {
	if len(patch.items) != len(s.items) {
		return nil, fmt.Errorf("prefs: patch item universe has %d items, base has %d", len(patch.items), len(s.items))
	}
	for i, it := range s.items {
		if patch.items[i] != it {
			return nil, fmt.Errorf("prefs: patch item %d is %d, base has %d", i, patch.items[i], it)
		}
	}
	for _, c := range patch.keys {
		if !cone(c) {
			return nil, fmt.Errorf("prefs: patch holds client %d outside the cone", c)
		}
	}
	if len(patch.keys) == 0 {
		hit := false
		for _, c := range s.keys {
			if cone(c) {
				hit = true
				break
			}
		}
		if !hit {
			return s, nil
		}
	}
	out := &Store{
		items:  append([]Item(nil), s.items...),
		index:  make(map[Item]int, len(s.items)),
		nPairs: s.nPairs,
	}
	for i, it := range out.items {
		out.index[it] = i
	}
	// Merge the two sorted client columns: outside the cone rows come from
	// s; inside it they come from patch (or are dropped when patch lacks
	// them). Appends stay in ascending order, so every row lands via the
	// O(1) tail path.
	appendRow := func(c Client, src *Store, row int) {
		dst := out.ensureClient(c)
		copy(out.rels[dst*out.nPairs:(dst+1)*out.nPairs], src.rels[row*src.nPairs:(row+1)*src.nPairs])
		copy(out.winIdx[dst*out.nPairs:(dst+1)*out.nPairs], src.winIdx[row*src.nPairs:(row+1)*src.nPairs])
	}
	si, pi := 0, 0
	for si < len(s.keys) || pi < len(patch.keys) {
		switch {
		case pi >= len(patch.keys) || (si < len(s.keys) && s.keys[si] < patch.keys[pi]):
			c := s.keys[si]
			if !cone(c) {
				appendRow(c, s, si)
			}
			si++
		case si >= len(s.keys) || patch.keys[pi] < s.keys[si]:
			appendRow(patch.keys[pi], patch, pi)
			pi++
		default: // same client in both: cone already vetted patch's clients
			appendRow(patch.keys[pi], patch, pi)
			si++
			pi++
		}
	}
	out.Compact()
	return out, nil
}
