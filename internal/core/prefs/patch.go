package prefs

import "fmt"

// PatchClients builds a new store over the same item universe in which every
// client selected by cone is replaced wholesale by its row in patch — or
// dropped, when patch holds no row for it (the client stopped responding
// after the routing change). Clients outside the cone keep their rows from
// s; clients that appear only in patch are added. Neither input store is
// modified: the result is a fresh copy-on-write table, which is what lets
// the reconciler publish it through PatchCampaign without ever exposing a
// half-repaired row.
//
// patch must share s's exact item universe, since relation rows are indexed
// by item position.
func (s *Store) PatchClients(patch *Store, cone func(Client) bool) (*Store, error) {
	if len(patch.items) != len(s.items) {
		return nil, fmt.Errorf("prefs: patch item universe has %d items, base has %d", len(patch.items), len(s.items))
	}
	for i, it := range s.items {
		if patch.items[i] != it {
			return nil, fmt.Errorf("prefs: patch item %d is %d, base has %d", i, patch.items[i], it)
		}
	}
	out := &Store{
		items:   append([]Item(nil), s.items...),
		index:   make(map[Item]int, len(s.items)),
		clients: make(map[Client]*ClientPrefs),
	}
	for i, it := range out.items {
		out.index[it] = i
	}
	copyRow := func(c Client, from *ClientPrefs) {
		cp := out.client(c)
		copy(cp.rel, from.rel)
	}
	// Base clients first (preserving base insertion order), then patch-only
	// clients. Dump() sorts by client, so this order never reaches the
	// serialized form; it only keeps iteration deterministic.
	for _, c := range s.clientOrder {
		if cone(c) {
			if row := patch.clients[c]; row != nil {
				copyRow(c, row)
			}
			continue
		}
		copyRow(c, s.clients[c])
	}
	for _, c := range patch.clientOrder {
		if !cone(c) {
			return nil, fmt.Errorf("prefs: patch holds client %d outside the cone", c)
		}
		if out.clients[c] == nil {
			copyRow(c, patch.clients[c])
		}
	}
	return out, nil
}
