package prefs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustStore(t testing.TB, items ...Item) *Store {
	t.Helper()
	s, err := NewStore(items)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreErrors(t *testing.T) {
	if _, err := NewStore(nil); err == nil {
		t.Error("empty store accepted")
	}
	if _, err := NewStore([]Item{1, 2, 1}); err == nil {
		t.Error("duplicate items accepted")
	}
}

func TestRecordOrderedStrict(t *testing.T) {
	s := mustStore(t, 1, 2, 3)
	// Client 100 strictly prefers 2 over 1 (same winner both orders).
	if err := s.RecordOrdered(100, 1, 2, 2, 2); err != nil {
		t.Fatal(err)
	}
	rel, w := s.Get(100).Relation(1, 2)
	if rel != RelStrict || w != 2 {
		t.Errorf("relation = %v/%d, want strict/2", rel, w)
	}
	// Symmetric lookup.
	rel, w = s.Get(100).Relation(2, 1)
	if rel != RelStrict || w != 2 {
		t.Errorf("reverse relation = %v/%d, want strict/2", rel, w)
	}
}

func TestRecordOrderedEqual(t *testing.T) {
	s := mustStore(t, 1, 2)
	// Winner follows announcement order → equal preference.
	if err := s.RecordOrdered(100, 1, 2, 1, 2); err != nil {
		t.Fatal(err)
	}
	if rel, _ := s.Get(100).Relation(1, 2); rel != RelEqual {
		t.Errorf("relation = %v, want equal", rel)
	}
	// Inverted flip (later announced wins both times) is also "equal".
	if err := s.RecordOrdered(101, 1, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	if rel, _ := s.Get(101).Relation(1, 2); rel != RelEqual {
		t.Errorf("inverted flip relation = %v, want equal", rel)
	}
}

func TestRecordValidation(t *testing.T) {
	s := mustStore(t, 1, 2)
	if err := s.RecordOrdered(1, 1, 9, 1, 1); err == nil {
		t.Error("unknown item accepted")
	}
	if err := s.RecordOrdered(1, 1, 2, 9, 1); err == nil {
		t.Error("foreign winner accepted")
	}
	if err := s.RecordOrdered(1, 1, 1, 1, 1); err == nil {
		t.Error("degenerate pair accepted")
	}
	if err := s.RecordSimultaneous(1, 1, 2, 9); err == nil {
		t.Error("foreign winner accepted (simultaneous)")
	}
	if err := s.RecordSimultaneous(1, 1, 9, 1); err == nil {
		t.Error("unknown item accepted (simultaneous)")
	}
}

// fillStrict records a full strict order for client c: items earlier in
// ranking beat later ones.
func fillStrict(t *testing.T, s *Store, c Client, ranking []Item) {
	t.Helper()
	for i := 0; i < len(ranking); i++ {
		for j := i + 1; j < len(ranking); j++ {
			if err := s.RecordOrdered(c, ranking[i], ranking[j], ranking[i], ranking[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestTotalOrderStrict(t *testing.T) {
	s := mustStore(t, 1, 2, 3, 4)
	fillStrict(t, s, 100, []Item{3, 1, 4, 2})
	order, ok := s.Get(100).TotalOrder([]Item{1, 2, 3, 4})
	if !ok {
		t.Fatal("no total order for fully strict client")
	}
	want := []Item{3, 1, 4, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTotalOrderWithEqualsUsesAnnouncementOrder(t *testing.T) {
	s := mustStore(t, 1, 2, 3)
	// All pairs equal: order should follow announcement order exactly.
	for _, c := range []Client{7} {
		s.RecordOrdered(c, 1, 2, 1, 2)
		s.RecordOrdered(c, 1, 3, 1, 3)
		s.RecordOrdered(c, 2, 3, 2, 3)
	}
	order, ok := s.Get(7).TotalOrder([]Item{2, 3, 1})
	if !ok {
		t.Fatal("all-equal client should have a total order under any announcement order")
	}
	want := []Item{2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Different announcement order → different total order.
	order2, ok := s.Get(7).TotalOrder([]Item{1, 2, 3})
	if !ok || order2[0] != 1 {
		t.Fatalf("order under (1,2,3) = %v, ok=%v", order2, ok)
	}
}

func TestCyclicPrefsHaveNoTotalOrder(t *testing.T) {
	s := mustStore(t, 1, 2, 3)
	// 1 > 2, 2 > 3, 3 > 1 — the Figure 3 cycle.
	s.RecordSimultaneous(9, 1, 2, 1)
	s.RecordSimultaneous(9, 2, 3, 2)
	s.RecordSimultaneous(9, 1, 3, 3)
	if s.Get(9).HasTotalOrder([]Item{1, 2, 3}) {
		t.Fatal("cyclic preferences reported as total order")
	}
	// Any pair alone is still fine.
	if _, ok := s.Get(9).TotalOrder([]Item{1, 2}); !ok {
		t.Error("two-item subset should be orderable")
	}
}

func TestIncompletePrefsNoTotalOrder(t *testing.T) {
	s := mustStore(t, 1, 2, 3)
	s.RecordSimultaneous(9, 1, 2, 1)
	if s.Get(9).HasTotalOrder([]Item{1, 2, 3}) {
		t.Fatal("incomplete relations reported as total order")
	}
	if !s.Get(9).Complete([]Item{1, 2}) {
		t.Error("pair (1,2) should be complete")
	}
	if s.Get(9).Complete([]Item{1, 2, 3}) {
		t.Error("triple should be incomplete")
	}
}

func TestBest(t *testing.T) {
	s := mustStore(t, 1, 2, 3, 4)
	fillStrict(t, s, 100, []Item{3, 1, 4, 2})
	ann := []Item{1, 2, 3, 4}
	best, ok := s.Get(100).Best([]Item{2, 4}, ann)
	if !ok || best != 4 {
		t.Errorf("Best({2,4}) = %d/%v, want 4 (ranked above 2)", best, ok)
	}
	best, ok = s.Get(100).Best([]Item{1, 2, 3, 4}, ann)
	if !ok || best != 3 {
		t.Errorf("Best(all) = %d/%v, want 3", best, ok)
	}
	if _, ok := s.Get(100).Best(nil, ann); ok {
		t.Error("Best of empty enabled set should fail")
	}
}

func TestFracWithTotalOrder(t *testing.T) {
	s := mustStore(t, 1, 2, 3)
	fillStrict(t, s, 1, []Item{1, 2, 3})
	fillStrict(t, s, 2, []Item{3, 2, 1})
	// Client 3 cyclic.
	s.RecordSimultaneous(3, 1, 2, 1)
	s.RecordSimultaneous(3, 2, 3, 2)
	s.RecordSimultaneous(3, 1, 3, 3)
	got := s.FracWithTotalOrder([]Item{1, 2, 3})
	if got < 0.66 || got > 0.67 {
		t.Errorf("frac = %v, want 2/3", got)
	}
}

func TestBestAnnouncementOrderExhaustive(t *testing.T) {
	s := mustStore(t, 1, 2, 3)
	// Ten clients: all-equal pairs → any order gives a total order.
	for c := Client(0); c < 10; c++ {
		s.RecordOrdered(c, 1, 2, 1, 2)
		s.RecordOrdered(c, 1, 3, 1, 3)
		s.RecordOrdered(c, 2, 3, 2, 3)
	}
	// One adversarial client: strict 2>1, strict 3>2, equal (1,3).
	// Under announcement order ...1 before 3..., the equal pair resolves
	// 1>3, closing the cycle 2>1>3>2 — so some orders are worse.
	s.RecordOrdered(99, 1, 2, 2, 2)
	s.RecordOrdered(99, 2, 3, 3, 3)
	s.RecordOrdered(99, 1, 3, 1, 3)
	order, frac := s.BestAnnouncementOrder(6)
	if frac != 1.0 {
		t.Fatalf("best order %v achieves %v, want 1.0 (announce 3 before 1)", order, frac)
	}
	// Verify the chosen order really resolves client 99.
	if !s.Get(99).HasTotalOrder(order) {
		t.Error("reported best order does not give client 99 a total order")
	}
}

func TestBestAnnouncementOrderGreedy(t *testing.T) {
	items := []Item{1, 2, 3, 4, 5, 6, 7, 8}
	s := mustStore(t, items...)
	rng := rand.New(rand.NewSource(1))
	for c := Client(0); c < 50; c++ {
		perm := rng.Perm(len(items))
		ranking := make([]Item, len(items))
		for i, p := range perm {
			ranking[i] = items[p]
		}
		for i := 0; i < len(ranking); i++ {
			for j := i + 1; j < len(ranking); j++ {
				s.RecordOrdered(c, ranking[i], ranking[j], ranking[i], ranking[i])
			}
		}
	}
	// Greedy path (maxExhaustive below item count).
	order, frac := s.BestAnnouncementOrder(4)
	if len(order) != len(items) {
		t.Fatalf("greedy order has %d items", len(order))
	}
	if frac != 1.0 {
		t.Errorf("fully strict clients should all be consistent; frac = %v", frac)
	}
	seen := map[Item]bool{}
	for _, it := range order {
		seen[it] = true
	}
	if len(seen) != len(items) {
		t.Error("greedy order lost items")
	}
}

// Property: a client with a randomly generated strict ranking always has a
// total order equal to that ranking, and Best always returns the top enabled
// item — the executable form of Theorem A.1's prediction claim.
func TestPropertyStrictRankingRoundTrips(t *testing.T) {
	f := func(seed int64, nItems uint8, subsetMask uint16) bool {
		n := int(nItems%6) + 2
		items := make([]Item, n)
		for i := range items {
			items[i] = Item(i + 1)
		}
		s, err := NewStore(items)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		ranking := make([]Item, n)
		for i, p := range rng.Perm(n) {
			ranking[i] = items[p]
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if err := s.RecordOrdered(42, ranking[i], ranking[j], ranking[i], ranking[i]); err != nil {
					return false
				}
			}
		}
		order, ok := s.Get(42).TotalOrder(items)
		if !ok {
			return false
		}
		for i := range ranking {
			if order[i] != ranking[i] {
				return false
			}
		}
		// Any nonempty subset: Best = first ranked item in subset.
		var enabled []Item
		for i := 0; i < n; i++ {
			if subsetMask&(1<<i) != 0 {
				enabled = append(enabled, items[i])
			}
		}
		if len(enabled) == 0 {
			return true
		}
		best, ok := s.Get(42).Best(enabled, items)
		if !ok {
			return false
		}
		for _, r := range ranking {
			for _, e := range enabled {
				if r == e {
					return best == r
				}
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with all pairs equal, the total order equals the announcement
// order for any permutation.
func TestPropertyEqualPairsFollowAnnouncement(t *testing.T) {
	f := func(seed int64) bool {
		items := []Item{1, 2, 3, 4, 5}
		s, err := NewStore(items)
		if err != nil {
			return false
		}
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				s.RecordOrdered(7, items[i], items[j], items[i], items[j])
			}
		}
		rng := rand.New(rand.NewSource(seed))
		ann := make([]Item, len(items))
		for i, p := range rng.Perm(len(items)) {
			ann[i] = items[p]
		}
		order, ok := s.Get(7).TotalOrder(ann)
		if !ok {
			return false
		}
		for i := range ann {
			if order[i] != ann[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPairIdxCoversAllPairs(t *testing.T) {
	s := mustStore(t, 10, 20, 30, 40, 50)
	seen := map[int]bool{}
	n := 5
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			idx := s.pairIdx(a, b)
			if idx < 0 || idx >= s.NumPairs() {
				t.Fatalf("pairIdx(%d,%d) = %d out of range", a, b, idx)
			}
			if seen[idx] {
				t.Fatalf("pairIdx collision at (%d,%d)", a, b)
			}
			seen[idx] = true
			if idx != s.pairIdx(b, a) {
				t.Fatalf("pairIdx not symmetric for (%d,%d)", a, b)
			}
		}
	}
	if len(seen) != s.NumPairs() {
		t.Fatalf("covered %d pairs, want %d", len(seen), s.NumPairs())
	}
}

func TestTotalOrderEdgeCases(t *testing.T) {
	s := mustStore(t, 1, 2)
	s.RecordOrdered(5, 1, 2, 1, 1)
	if _, ok := s.Get(5).TotalOrder(nil); ok {
		t.Error("empty announcement order accepted")
	}
	if _, ok := s.Get(5).TotalOrder([]Item{1, 1}); ok {
		t.Error("duplicate announcement items accepted")
	}
	order, ok := s.Get(5).TotalOrder([]Item{1})
	if !ok || order[0] != 1 {
		t.Error("singleton order failed")
	}
}

func BenchmarkTotalOrder15Sites(b *testing.B) {
	items := make([]Item, 15)
	for i := range items {
		items[i] = Item(i + 1)
	}
	s, _ := NewStore(items)
	rng := rand.New(rand.NewSource(1))
	ranking := make([]Item, len(items))
	for i, p := range rng.Perm(len(items)) {
		ranking[i] = items[p]
	}
	for i := 0; i < len(ranking); i++ {
		for j := i + 1; j < len(ranking); j++ {
			s.RecordOrdered(1, ranking[i], ranking[j], ranking[i], ranking[i])
		}
	}
	cp := s.Get(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cp.TotalOrder(items); !ok {
			b.Fatal("no order")
		}
	}
}
