// Package prefs stores the outcomes of pairwise preference-discovery
// experiments and constructs per-client total orders from them — the heart
// of AnyOpt's prediction model (§3.3–3.4, §4.2).
//
// For every client network and every unordered pair of items (items are
// anycast sites at the intra-AS level, or transit providers at the inter-AS
// level), two controlled experiments are run: one announcing i before j and
// one announcing j before i. A client that picks the same winner both times
// holds a strict preference; a client whose pick follows the announcement
// order holds equivalent preferences that real routers break by route age
// (the arrival-order tie-breaker of §4.2). "Naive" experiments that announce
// simultaneously collapse this distinction and record whatever won, which is
// why they manufacture cyclic preferences (Figure 4).
package prefs

import (
	"fmt"
	"sort"
)

// Item identifies a comparable alternative: a site ID at the intra-AS level
// or a provider's ASN at the inter-AS level.
type Item int64

// Client identifies a client network (we use its ASN).
type Client int64

// Relation classifies a client's attitude toward an unordered item pair.
type Relation int8

const (
	// RelUnknown means the pair was never compared for this client.
	RelUnknown Relation = iota
	// RelStrict means one item wins regardless of announcement order.
	RelStrict
	// RelEqual means the winner followed the announcement order: the items
	// are equally preferred and route age decides.
	RelEqual
)

func (r Relation) String() string {
	switch r {
	case RelUnknown:
		return "unknown"
	case RelStrict:
		return "strict"
	case RelEqual:
		return "equal"
	default:
		return fmt.Sprintf("relation(%d)", int8(r))
	}
}

// pairRel stores one client's relation for one pair.
type pairRel struct {
	rel Relation
	// winner is meaningful for RelStrict only.
	winner Item
}

// ClientPrefs holds one client's pairwise relations over the store's items.
type ClientPrefs struct {
	store *Store
	// rel is indexed by flattened (min,max) pair index.
	rel []pairRel
}

// Store collects pairwise preferences for a fixed item universe.
type Store struct {
	items []Item
	index map[Item]int
	// clients in insertion order for deterministic iteration.
	clientOrder []Client
	clients     map[Client]*ClientPrefs
}

// NewStore creates a store over the given items. Items must be distinct.
func NewStore(items []Item) (*Store, error) {
	if len(items) < 1 {
		return nil, fmt.Errorf("prefs: store needs at least one item")
	}
	s := &Store{
		items:   append([]Item(nil), items...),
		index:   make(map[Item]int, len(items)),
		clients: make(map[Client]*ClientPrefs),
	}
	for i, it := range s.items {
		if _, dup := s.index[it]; dup {
			return nil, fmt.Errorf("prefs: duplicate item %d", it)
		}
		s.index[it] = i
	}
	return s, nil
}

// Items returns the item universe.
func (s *Store) Items() []Item { return append([]Item(nil), s.items...) }

// Clients returns all clients with any recorded preference, in first-record
// order.
func (s *Store) Clients() []Client { return append([]Client(nil), s.clientOrder...) }

// NumPairs returns the number of unordered item pairs.
func (s *Store) NumPairs() int { return len(s.items) * (len(s.items) - 1) / 2 }

// pairIdx flattens an unordered index pair (a < b).
func (s *Store) pairIdx(a, b int) int {
	if a > b {
		a, b = b, a
	}
	n := len(s.items)
	return a*(2*n-a-1)/2 + (b - a - 1)
}

// client returns (creating) the per-client table.
func (s *Store) client(c Client) *ClientPrefs {
	cp := s.clients[c]
	if cp == nil {
		cp = &ClientPrefs{store: s, rel: make([]pairRel, s.NumPairs())}
		s.clients[c] = cp
		s.clientOrder = append(s.clientOrder, c)
	}
	return cp
}

// Get returns the per-client table, or nil if the client was never recorded.
func (s *Store) Get(c Client) *ClientPrefs { return s.clients[c] }

// RecordOrdered stores the outcome of the two order-controlled experiments
// for pair (i, j): winnerIFirst is the client's catchment when i was
// announced first, winnerJFirst when j was announced first. Winners must be
// i or j.
func (s *Store) RecordOrdered(c Client, i, j Item, winnerIFirst, winnerJFirst Item) error {
	ii, ok := s.index[i]
	if !ok {
		return fmt.Errorf("prefs: unknown item %d", i)
	}
	jj, ok := s.index[j]
	if !ok {
		return fmt.Errorf("prefs: unknown item %d", j)
	}
	if ii == jj {
		return fmt.Errorf("prefs: pair (%d, %d) is degenerate", i, j)
	}
	for _, w := range []Item{winnerIFirst, winnerJFirst} {
		if w != i && w != j {
			return fmt.Errorf("prefs: winner %d not in pair (%d, %d)", w, i, j)
		}
	}
	cp := s.client(c)
	idx := s.pairIdx(ii, jj)
	switch {
	case winnerIFirst == winnerJFirst:
		cp.rel[idx] = pairRel{rel: RelStrict, winner: winnerIFirst}
	default:
		// The winner flipped with the announcement order (whichever
		// direction): the client is indifferent and route age decides
		// (§4.2: "otherwise ... it has equivalent preferences").
		cp.rel[idx] = pairRel{rel: RelEqual}
	}
	return nil
}

// RecordSimultaneous stores the outcome of a single "naive" experiment that
// announced both items at once: the observed winner is taken as a strict
// preference, because without order control the experimenter cannot tell a
// tie from a genuine preference. This is the baseline mode Figure 4 shows to
// be inconsistent.
func (s *Store) RecordSimultaneous(c Client, i, j, winner Item) error {
	ii, ok := s.index[i]
	if !ok {
		return fmt.Errorf("prefs: unknown item %d", i)
	}
	jj, ok := s.index[j]
	if !ok {
		return fmt.Errorf("prefs: unknown item %d", j)
	}
	if winner != i && winner != j {
		return fmt.Errorf("prefs: winner %d not in pair (%d, %d)", winner, i, j)
	}
	cp := s.client(c)
	cp.rel[s.pairIdx(ii, jj)] = pairRel{rel: RelStrict, winner: winner}
	return nil
}

// Relation returns the recorded relation for pair (i, j) and, for RelStrict,
// the winning item.
func (cp *ClientPrefs) Relation(i, j Item) (Relation, Item) {
	ii, ok1 := cp.store.index[i]
	jj, ok2 := cp.store.index[j]
	if !ok1 || !ok2 || ii == jj {
		return RelUnknown, 0
	}
	pr := cp.rel[cp.store.pairIdx(ii, jj)]
	return pr.rel, pr.winner
}

// Complete reports whether every pair over the given items has a recorded
// relation.
func (cp *ClientPrefs) Complete(items []Item) bool {
	for a := 0; a < len(items); a++ {
		for b := a + 1; b < len(items); b++ {
			if r, _ := cp.Relation(items[a], items[b]); r == RelUnknown {
				return false
			}
		}
	}
	return true
}

// prefersUnder reports whether x beats y under announcement order annRank
// (lower rank = announced earlier): strict winners win; equal pairs go to
// the earlier-announced item.
func (cp *ClientPrefs) prefersUnder(x, y Item, annRank map[Item]int) (bool, bool) {
	rel, winner := cp.Relation(x, y)
	switch rel {
	case RelStrict:
		return winner == x, true
	case RelEqual:
		rx, okx := annRank[x]
		ry, oky := annRank[y]
		if !okx || !oky {
			return false, false
		}
		return rx < ry, true
	default:
		return false, false
	}
}

// TotalOrder attempts to build the client's total preference order over the
// given items under the given announcement order (earliest first). It
// returns the items most-preferred-first and ok=false when the pairwise
// relations are incomplete or cyclic — the clients the paper excludes from
// prediction (§4.2).
func (cp *ClientPrefs) TotalOrder(announce []Item) ([]Item, bool) {
	n := len(announce)
	if n == 0 {
		return nil, false
	}
	annRank := make(map[Item]int, n)
	for r, it := range announce {
		if _, dup := annRank[it]; dup {
			return nil, false
		}
		annRank[it] = r
	}
	// wins[a][b] = a beats b.
	wins := make([][]bool, n)
	for a := range wins {
		wins[a] = make([]bool, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ab, ok := cp.prefersUnder(announce[a], announce[b], annRank)
			if !ok {
				return nil, false
			}
			wins[a][b] = ab
			wins[b][a] = !ab
		}
	}
	// A tournament is a total order iff win counts are a permutation of
	// 0..n-1 (no 3-cycles). Sorting by descending win count yields the
	// order; verifying adjacent dominance confirms acyclicity.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	count := make([]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && wins[a][b] {
				count[a]++
			}
		}
	}
	sort.SliceStable(idx, func(x, y int) bool { return count[idx[x]] > count[idx[y]] })
	for pos := 0; pos < n; pos++ {
		if count[idx[pos]] != n-1-pos {
			return nil, false // tie in win counts ⇒ cycle exists
		}
		for later := pos + 1; later < n; later++ {
			if !wins[idx[pos]][idx[later]] {
				return nil, false
			}
		}
	}
	out := make([]Item, n)
	for pos, i := range idx {
		out[pos] = announce[i]
	}
	return out, true
}

// Best predicts the client's catchment among the enabled items under the
// given announcement order: its most preferred enabled item. ok is false when
// the client lacks a total order over the enabled items.
func (cp *ClientPrefs) Best(enabled []Item, annRank []Item) (Item, bool) {
	order, ok := cp.TotalOrder(annRank)
	if !ok {
		return 0, false
	}
	en := make(map[Item]bool, len(enabled))
	for _, e := range enabled {
		en[e] = true
	}
	for _, it := range order {
		if en[it] {
			return it, true
		}
	}
	return 0, false
}

// HasTotalOrder reports whether the client's relations over items are
// complete and acyclic under the given announcement order.
func (cp *ClientPrefs) HasTotalOrder(announce []Item) bool {
	_, ok := cp.TotalOrder(announce)
	return ok
}

// FracWithTotalOrder returns the fraction of recorded clients having a total
// order over the given announcement order.
func (s *Store) FracWithTotalOrder(announce []Item) float64 {
	if len(s.clientOrder) == 0 {
		return 0
	}
	n := 0
	for _, c := range s.clientOrder {
		if s.clients[c].HasTotalOrder(announce) {
			n++
		}
	}
	return float64(n) / float64(len(s.clientOrder))
}

// BestAnnouncementOrder searches announcement orders of the items and returns
// the one maximizing the fraction of clients with a total order (§4.5 step 3:
// "the announcement order that maximizes the number of client networks with a
// consistent total order"). For ≤ maxExhaustive items every permutation is
// tried; beyond that a greedy insertion heuristic is used.
func (s *Store) BestAnnouncementOrder(maxExhaustive int) ([]Item, float64) {
	items := s.Items()
	if len(items) <= 1 {
		return items, s.FracWithTotalOrder(items)
	}
	if len(items) <= maxExhaustive {
		bestFrac := -1.0
		var best []Item
		permute(items, func(p []Item) {
			if f := s.FracWithTotalOrder(p); f > bestFrac {
				bestFrac = f
				best = append([]Item(nil), p...)
			}
		})
		return best, bestFrac
	}
	// Greedy insertion: grow the order one item at a time, placing each new
	// item at the position that keeps the most clients consistent.
	order := []Item{items[0]}
	for _, it := range items[1:] {
		bestFrac := -1.0
		bestPos := 0
		for pos := 0; pos <= len(order); pos++ {
			trial := make([]Item, 0, len(order)+1)
			trial = append(trial, order[:pos]...)
			trial = append(trial, it)
			trial = append(trial, order[pos:]...)
			if f := s.FracWithTotalOrder(trial); f > bestFrac {
				bestFrac = f
				bestPos = pos
			}
		}
		next := make([]Item, 0, len(order)+1)
		next = append(next, order[:bestPos]...)
		next = append(next, it)
		next = append(next, order[bestPos:]...)
		order = next
	}
	return order, s.FracWithTotalOrder(order)
}

// permute calls fn for every permutation of items (Heap's algorithm).
func permute(items []Item, fn func([]Item)) {
	p := append([]Item(nil), items...)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				p[i], p[k-1] = p[k-1], p[i]
			} else {
				p[0], p[k-1] = p[k-1], p[0]
			}
		}
	}
	rec(len(p))
}
