// Package prefs stores the outcomes of pairwise preference-discovery
// experiments and constructs per-client total orders from them — the heart
// of AnyOpt's prediction model (§3.3–3.4, §4.2).
//
// For every client network and every unordered pair of items (items are
// anycast sites at the intra-AS level, or transit providers at the inter-AS
// level), two controlled experiments are run: one announcing i before j and
// one announcing j before i. A client that picks the same winner both times
// holds a strict preference; a client whose pick follows the announcement
// order holds equivalent preferences that real routers break by route age
// (the arrival-order tie-breaker of §4.2). "Naive" experiments that announce
// simultaneously collapse this distinction and record whatever won, which is
// why they manufacture cyclic preferences (Figure 4).
//
// The store is columnar (struct-of-arrays): one sorted client-ID column and
// two flat relation columns shared by every client, indexed row-major as
// rels[clientRow*NumPairs+pairIdx]. Point lookups binary-search the client
// column; recording appends in O(1) because campaigns enumerate clients in
// ascending order per experiment (discovery's sortedClients discipline), so
// the sorted column grows at the tail. Compared to the former
// map[Client]*ClientPrefs backing, a client row costs 3 bytes per pair
// (1-byte relation + 2-byte winner index) in two contiguous slabs instead of
// a map entry, a heap-allocated struct, and a 16-byte-per-pair slice — the
// layout internet-scale campaigns (100k clients) need to stay in cache and
// under memory ceilings. Campaign builders call Compact once recording ends,
// trimming append-growth slack before the store is published.
package prefs

import (
	"fmt"
	"sort"
)

// Item identifies a comparable alternative: a site ID at the intra-AS level
// or a provider's ASN at the inter-AS level.
type Item int64

// Client identifies a client network (we use its ASN).
type Client int64

// Relation classifies a client's attitude toward an unordered item pair.
type Relation int8

const (
	// RelUnknown means the pair was never compared for this client.
	RelUnknown Relation = iota
	// RelStrict means one item wins regardless of announcement order.
	RelStrict
	// RelEqual means the winner followed the announcement order: the items
	// are equally preferred and route age decides.
	RelEqual
)

func (r Relation) String() string {
	switch r {
	case RelUnknown:
		return "unknown"
	case RelStrict:
		return "strict"
	case RelEqual:
		return "equal"
	default:
		return fmt.Sprintf("relation(%d)", int8(r))
	}
}

// ClientPrefs is a view of one client's row in the store's relation columns.
// Views are positional: a view stays valid across appends of later clients,
// but recording an out-of-order client (which shifts rows) invalidates
// previously obtained views — callers record first, then read.
type ClientPrefs struct {
	store *Store
	idx   int
}

// Store collects pairwise preferences for a fixed item universe, columnar:
// keys is the sorted client-ID column; rels and winIdx are parallel flat
// relation columns of len(keys)*NumPairs() cells each.
type Store struct {
	items  []Item
	index  map[Item]int
	nPairs int
	// keys holds every recorded client, ascending.
	keys []Client
	// rels[row*nPairs+p] is client keys[row]'s relation for pair p.
	rels []Relation
	// winIdx[row*nPairs+p] is the item index of the strict winner; read
	// only when the relation is RelStrict. uint16 bounds the item universe
	// at 65536 — enforced by NewStore, and far beyond any testbed.
	winIdx []uint16
	// views[i] is the ClientPrefs view for row i; views[i].idx == i always,
	// so Get can return a stable pointer without allocating per call.
	views []ClientPrefs
}

// NewStore creates a store over the given items. Items must be distinct.
func NewStore(items []Item) (*Store, error) {
	if len(items) < 1 {
		return nil, fmt.Errorf("prefs: store needs at least one item")
	}
	if len(items) > 1<<16 {
		return nil, fmt.Errorf("prefs: item universe of %d exceeds the %d limit", len(items), 1<<16)
	}
	s := &Store{
		items: append([]Item(nil), items...),
		index: make(map[Item]int, len(items)),
	}
	s.nPairs = len(s.items) * (len(s.items) - 1) / 2
	for i, it := range s.items {
		if _, dup := s.index[it]; dup {
			return nil, fmt.Errorf("prefs: duplicate item %d", it)
		}
		s.index[it] = i
	}
	return s, nil
}

// Items returns the item universe.
func (s *Store) Items() []Item { return append([]Item(nil), s.items...) }

// Clients returns all clients with any recorded preference, ascending.
func (s *Store) Clients() []Client { return append([]Client(nil), s.keys...) }

// NumClients returns the number of recorded clients without copying the
// client column.
func (s *Store) NumClients() int { return len(s.keys) }

// NumPairs returns the number of unordered item pairs.
func (s *Store) NumPairs() int { return s.nPairs }

// pairIdx flattens an unordered index pair (a < b).
func (s *Store) pairIdx(a, b int) int {
	if a > b {
		a, b = b, a
	}
	n := len(s.items)
	return a*(2*n-a-1)/2 + (b - a - 1)
}

// findClient binary-searches the client column; returns (row, true) when c
// is recorded.
func (s *Store) findClient(c Client) (int, bool) {
	i := sort.Search(len(s.keys), func(k int) bool { return s.keys[k] >= c })
	if i < len(s.keys) && s.keys[i] == c {
		return i, true
	}
	return i, false
}

// ensureClient returns c's row, creating it when absent. Appending past the
// current maximum client is O(1) amortized — the campaign's common case;
// an out-of-order insert shifts the columns.
func (s *Store) ensureClient(c Client) int {
	n := len(s.keys)
	if n > 0 && s.keys[n-1] == c {
		return n - 1
	}
	if n == 0 || s.keys[n-1] < c {
		s.keys = append(s.keys, c)
		s.grow()
		return n
	}
	i, ok := s.findClient(c)
	if ok {
		return i
	}
	s.keys = append(s.keys, 0)
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = c
	s.grow()
	base := i * s.nPairs
	copy(s.rels[base+s.nPairs:], s.rels[base:])
	copy(s.winIdx[base+s.nPairs:], s.winIdx[base:])
	for p := 0; p < s.nPairs; p++ {
		s.rels[base+p] = RelUnknown
	}
	return i
}

// grow extends the relation columns and the view table by one row.
func (s *Store) grow() {
	if cap(s.rels) < len(s.rels)+s.nPairs {
		// Grow all columns together so one client append reallocates at
		// most once per column.
		nr := make([]Relation, len(s.rels), (cap(s.rels)+s.nPairs)*2)
		copy(nr, s.rels)
		s.rels = nr
		nw := make([]uint16, len(s.winIdx), (cap(s.winIdx)+s.nPairs)*2)
		copy(nw, s.winIdx)
		s.winIdx = nw
	}
	s.rels = s.rels[:len(s.rels)+s.nPairs]
	s.winIdx = s.winIdx[:len(s.winIdx)+s.nPairs]
	for p := len(s.rels) - s.nPairs; p < len(s.rels); p++ {
		s.rels[p] = RelUnknown
		s.winIdx[p] = 0
	}
	s.views = append(s.views, ClientPrefs{store: s, idx: len(s.views)})
}

// Compact trims the append-growth slack off every column, shrinking the
// store to exactly its recorded rows. Campaign builders call it once after
// bulk recording, before the store is published into an immutable snapshot;
// at internet scale the doubling slack is a third of the store, so trimming
// it is what keeps the measured bytes/client at the columnar floor.
// Recording remains legal afterwards — the next append just reallocates.
func (s *Store) Compact() {
	if cap(s.keys) == len(s.keys) && cap(s.rels) == len(s.rels) &&
		cap(s.winIdx) == len(s.winIdx) && cap(s.views) == len(s.views) {
		return
	}
	s.keys = append(make([]Client, 0, len(s.keys)), s.keys...)
	s.rels = append(make([]Relation, 0, len(s.rels)), s.rels...)
	s.winIdx = append(make([]uint16, 0, len(s.winIdx)), s.winIdx...)
	views := make([]ClientPrefs, len(s.views))
	for i := range views {
		views[i] = ClientPrefs{store: s, idx: i}
	}
	s.views = views
}

// Get returns the per-client view, or nil if the client was never recorded.
func (s *Store) Get(c Client) *ClientPrefs {
	i, ok := s.findClient(c)
	if !ok {
		return nil
	}
	return &s.views[i]
}

// at returns the (relation, winner) cell for the given row and pair index.
func (s *Store) at(row, pair int) (Relation, Item) {
	off := row*s.nPairs + pair
	r := s.rels[off]
	if r != RelStrict {
		return r, 0
	}
	return r, s.items[s.winIdx[off]]
}

// set writes one cell. winner must already be validated as an item index
// holder; pass winnerIdx < 0 for non-strict relations.
func (s *Store) set(row, pair int, rel Relation, winnerIdx int) {
	off := row*s.nPairs + pair
	s.rels[off] = rel
	if winnerIdx >= 0 {
		s.winIdx[off] = uint16(winnerIdx)
	}
}

// RecordOrdered stores the outcome of the two order-controlled experiments
// for pair (i, j): winnerIFirst is the client's catchment when i was
// announced first, winnerJFirst when j was announced first. Winners must be
// i or j.
func (s *Store) RecordOrdered(c Client, i, j Item, winnerIFirst, winnerJFirst Item) error {
	ii, ok := s.index[i]
	if !ok {
		return fmt.Errorf("prefs: unknown item %d", i)
	}
	jj, ok := s.index[j]
	if !ok {
		return fmt.Errorf("prefs: unknown item %d", j)
	}
	if ii == jj {
		return fmt.Errorf("prefs: pair (%d, %d) is degenerate", i, j)
	}
	for _, w := range []Item{winnerIFirst, winnerJFirst} {
		if w != i && w != j {
			return fmt.Errorf("prefs: winner %d not in pair (%d, %d)", w, i, j)
		}
	}
	row := s.ensureClient(c)
	idx := s.pairIdx(ii, jj)
	switch {
	case winnerIFirst == winnerJFirst:
		s.set(row, idx, RelStrict, s.index[winnerIFirst])
	default:
		// The winner flipped with the announcement order (whichever
		// direction): the client is indifferent and route age decides
		// (§4.2: "otherwise ... it has equivalent preferences").
		s.set(row, idx, RelEqual, -1)
	}
	return nil
}

// RecordSimultaneous stores the outcome of a single "naive" experiment that
// announced both items at once: the observed winner is taken as a strict
// preference, because without order control the experimenter cannot tell a
// tie from a genuine preference. This is the baseline mode Figure 4 shows to
// be inconsistent.
func (s *Store) RecordSimultaneous(c Client, i, j, winner Item) error {
	ii, ok := s.index[i]
	if !ok {
		return fmt.Errorf("prefs: unknown item %d", i)
	}
	jj, ok := s.index[j]
	if !ok {
		return fmt.Errorf("prefs: unknown item %d", j)
	}
	if winner != i && winner != j {
		return fmt.Errorf("prefs: winner %d not in pair (%d, %d)", winner, i, j)
	}
	row := s.ensureClient(c)
	s.set(row, s.pairIdx(ii, jj), RelStrict, s.index[winner])
	return nil
}

// Relation returns the recorded relation for pair (i, j) and, for RelStrict,
// the winning item.
func (cp *ClientPrefs) Relation(i, j Item) (Relation, Item) {
	s := cp.store
	ii, ok1 := s.index[i]
	jj, ok2 := s.index[j]
	if !ok1 || !ok2 || ii == jj {
		return RelUnknown, 0
	}
	return s.at(cp.idx, s.pairIdx(ii, jj))
}

// Complete reports whether every pair over the given items has a recorded
// relation.
func (cp *ClientPrefs) Complete(items []Item) bool {
	for a := 0; a < len(items); a++ {
		for b := a + 1; b < len(items); b++ {
			if r, _ := cp.Relation(items[a], items[b]); r == RelUnknown {
				return false
			}
		}
	}
	return true
}

// prefersUnder reports whether x beats y under announcement order annRank
// (lower rank = announced earlier): strict winners win; equal pairs go to
// the earlier-announced item.
func (cp *ClientPrefs) prefersUnder(x, y Item, annRank map[Item]int) (bool, bool) {
	rel, winner := cp.Relation(x, y)
	switch rel {
	case RelStrict:
		return winner == x, true
	case RelEqual:
		rx, okx := annRank[x]
		ry, oky := annRank[y]
		if !okx || !oky {
			return false, false
		}
		return rx < ry, true
	default:
		return false, false
	}
}

// TotalOrder attempts to build the client's total preference order over the
// given items under the given announcement order (earliest first). It
// returns the items most-preferred-first and ok=false when the pairwise
// relations are incomplete or cyclic — the clients the paper excludes from
// prediction (§4.2).
func (cp *ClientPrefs) TotalOrder(announce []Item) ([]Item, bool) {
	n := len(announce)
	if n == 0 {
		return nil, false
	}
	annRank := make(map[Item]int, n)
	for r, it := range announce {
		if _, dup := annRank[it]; dup {
			return nil, false
		}
		annRank[it] = r
	}
	// wins[a][b] = a beats b.
	wins := make([][]bool, n)
	for a := range wins {
		wins[a] = make([]bool, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ab, ok := cp.prefersUnder(announce[a], announce[b], annRank)
			if !ok {
				return nil, false
			}
			wins[a][b] = ab
			wins[b][a] = !ab
		}
	}
	// A tournament is a total order iff win counts are a permutation of
	// 0..n-1 (no 3-cycles). Sorting by descending win count yields the
	// order; verifying adjacent dominance confirms acyclicity.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	count := make([]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && wins[a][b] {
				count[a]++
			}
		}
	}
	sort.SliceStable(idx, func(x, y int) bool { return count[idx[x]] > count[idx[y]] })
	for pos := 0; pos < n; pos++ {
		if count[idx[pos]] != n-1-pos {
			return nil, false // tie in win counts ⇒ cycle exists
		}
		for later := pos + 1; later < n; later++ {
			if !wins[idx[pos]][idx[later]] {
				return nil, false
			}
		}
	}
	out := make([]Item, n)
	for pos, i := range idx {
		out[pos] = announce[i]
	}
	return out, true
}

// Best predicts the client's catchment among the enabled items under the
// given announcement order: its most preferred enabled item. ok is false when
// the client lacks a total order over the enabled items.
func (cp *ClientPrefs) Best(enabled []Item, annRank []Item) (Item, bool) {
	order, ok := cp.TotalOrder(annRank)
	if !ok {
		return 0, false
	}
	en := make(map[Item]bool, len(enabled))
	for _, e := range enabled {
		en[e] = true
	}
	for _, it := range order {
		if en[it] {
			return it, true
		}
	}
	return 0, false
}

// HasTotalOrder reports whether the client's relations over items are
// complete and acyclic under the given announcement order.
func (cp *ClientPrefs) HasTotalOrder(announce []Item) bool {
	_, ok := cp.TotalOrder(announce)
	return ok
}

// FracWithTotalOrder returns the fraction of recorded clients having a total
// order over the given announcement order.
func (s *Store) FracWithTotalOrder(announce []Item) float64 {
	if len(s.keys) == 0 {
		return 0
	}
	n := 0
	for i := range s.keys {
		if s.views[i].HasTotalOrder(announce) {
			n++
		}
	}
	return float64(n) / float64(len(s.keys))
}

// BestAnnouncementOrder searches announcement orders of the items and returns
// the one maximizing the fraction of clients with a total order (§4.5 step 3:
// "the announcement order that maximizes the number of client networks with a
// consistent total order"). For ≤ maxExhaustive items every permutation is
// tried; beyond that a greedy insertion heuristic is used.
func (s *Store) BestAnnouncementOrder(maxExhaustive int) ([]Item, float64) {
	items := s.Items()
	if len(items) <= 1 {
		return items, s.FracWithTotalOrder(items)
	}
	if len(items) <= maxExhaustive {
		bestFrac := -1.0
		var best []Item
		permute(items, func(p []Item) {
			if f := s.FracWithTotalOrder(p); f > bestFrac {
				bestFrac = f
				best = append([]Item(nil), p...)
			}
		})
		return best, bestFrac
	}
	// Greedy insertion: grow the order one item at a time, placing each new
	// item at the position that keeps the most clients consistent.
	order := []Item{items[0]}
	for _, it := range items[1:] {
		bestFrac := -1.0
		bestPos := 0
		for pos := 0; pos <= len(order); pos++ {
			trial := make([]Item, 0, len(order)+1)
			trial = append(trial, order[:pos]...)
			trial = append(trial, it)
			trial = append(trial, order[pos:]...)
			if f := s.FracWithTotalOrder(trial); f > bestFrac {
				bestFrac = f
				bestPos = pos
			}
		}
		next := make([]Item, 0, len(order)+1)
		next = append(next, order[:bestPos]...)
		next = append(next, it)
		next = append(next, order[bestPos:]...)
		order = next
	}
	return order, s.FracWithTotalOrder(order)
}

// permute calls fn for every permutation of items (Heap's algorithm).
func permute(items []Item, fn func([]Item)) {
	p := append([]Item(nil), items...)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				p[i], p[k-1] = p[k-1], p[i]
			} else {
				p[0], p[k-1] = p[k-1], p[0]
			}
		}
	}
	rec(len(p))
}
