package bgp

import (
	"testing"
	"time"

	"anyopt/internal/geo"
	"anyopt/internal/topology"
)

// buildAnycast attaches an origin AS with one site per given tier-1 to a
// generated topology and returns the sim plus the site links.
func buildAnycast(t testing.TB, p topology.Params, cfg Config, sitesPerT1 int) (*Sim, *topology.Topology, topology.ASN, []*topology.Link) {
	t.Helper()
	topo, err := topology.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	origin := topo.AddAS("anycast-net", topology.TierOrigin, geo.Coord{Lat: 42.36, Lon: -71.06})
	var links []*topology.Link
	for _, t1 := range topo.Tier1s() {
		for i := 0; i < sitesPerT1 && i < len(t1.PoPs); i++ {
			// Each site is colocated with the provider PoP it attaches to.
			origin.PoPs = append(origin.PoPs, t1.PoPs[i])
			links = append(links, topo.AddLink(origin.ASN, t1.ASN, topology.CustomerProvider, len(origin.PoPs)-1, i))
		}
	}
	return New(topo, cfg), topo, origin.ASN, links
}

func TestGlobalReachabilityAllSites(t *testing.T) {
	s, topo, origin, links := buildAnycast(t, topology.TestParams(), DefaultConfig(), 1)
	for _, l := range links {
		s.Announce(0, origin, l.ID, 0)
	}
	s.Converge()

	unreachable := 0
	for _, tg := range topo.Targets {
		if _, ok := s.Forward(0, tg); !ok {
			unreachable++
		}
	}
	if unreachable > 0 {
		t.Errorf("%d/%d targets cannot reach the anycast prefix announced at all tier-1s", unreachable, len(topo.Targets))
	}
}

func TestGlobalReachabilitySingleSite(t *testing.T) {
	// Announcing to a single tier-1 transit must still reach everyone —
	// that's what "transit provider for global reachability" means (§3.1).
	s, topo, origin, links := buildAnycast(t, topology.TestParams(), DefaultConfig(), 1)
	s.Announce(0, origin, links[0].ID, 0)
	s.Converge()
	for _, tg := range topo.Targets {
		if _, ok := s.Forward(0, tg); !ok {
			t.Fatalf("target %s (AS%d) unreachable with single-transit announcement", tg.Addr, tg.AS)
		}
	}
}

func TestConvergenceDeterministic(t *testing.T) {
	run := func() map[topology.ASN]topology.LinkID {
		s, topo, origin, links := buildAnycast(t, topology.TestParams(), DefaultConfig(), 1)
		for i, l := range links {
			final := l
			s.Engine.Schedule(time.Duration(i)*6*time.Minute, func() {
				s.Announce(0, origin, final.ID, 0)
			})
		}
		s.Converge()
		return s.CatchmentMap(0, topo.Targets)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("catchment sizes differ: %d vs %d", len(a), len(b))
	}
	for asn, link := range a {
		if b[asn] != link {
			t.Fatalf("catchment differs for AS%d: %d vs %d", asn, link, b[asn])
		}
	}
}

func TestJitterNonceChangesRaceOutcomes(t *testing.T) {
	// Announcing all sites simultaneously leaves ties to processing-delay
	// races; different nonces must flip some catchments (this is what makes
	// "naive" pairwise experiments inconsistent in §5.1).
	run := func(nonce uint64) map[topology.ASN]topology.LinkID {
		cfg := DefaultConfig()
		cfg.JitterNonce = nonce
		s, topo, origin, links := buildAnycast(t, topology.TestParams(), cfg, 1)
		for _, l := range links {
			s.Announce(0, origin, l.ID, 0)
		}
		s.Converge()
		return s.CatchmentMap(0, topo.Targets)
	}
	a, b := run(1), run(2)
	diff := 0
	for asn, link := range a {
		if b[asn] != link {
			diff++
		}
	}
	if diff == 0 {
		t.Error("no catchment differences across jitter nonces; simultaneous announcements should race")
	}
	// But races must stay the minority: most clients have genuine preferences.
	if frac := float64(diff) / float64(len(a)); frac > 0.5 {
		t.Errorf("%.0f%% of catchments flipped across nonces; topology is all ties", frac*100)
	}
}

func TestSpacedAnnouncementsDrownJitter(t *testing.T) {
	// With announcements spaced 6 minutes apart (§5.1), jitter nonces must
	// not change outcomes: arrival order is globally controlled.
	run := func(nonce uint64) map[topology.ASN]topology.LinkID {
		cfg := DefaultConfig()
		cfg.JitterNonce = nonce
		s, topo, origin, links := buildAnycast(t, topology.TestParams(), cfg, 1)
		for i, l := range links {
			final := l
			s.Engine.Schedule(time.Duration(i)*6*time.Minute, func() {
				s.Announce(0, origin, final.ID, 0)
			})
		}
		s.Converge()
		return s.CatchmentMap(0, topo.Targets)
	}
	a, b := run(1), run(2)
	diff := 0
	for asn, link := range a {
		if b[asn] != link {
			diff++
		}
	}
	if diff != 0 {
		t.Errorf("%d catchments changed across nonces despite 6-minute spacing", diff)
	}
}

// TestTheoremA1LocalPreferenceModel encodes Appendix A, Theorem A.1: in a
// policy-compliant network with no multipath, no deviant LOCAL_PREF, and a
// fixed announcement order, pairwise winners predict the winner for every
// subset. We verify winner-prediction directly: for random subsets, the
// pairwise-best site among the subset must equal the measured catchment.
func TestTheoremA1PairwisePredictsSubsets(t *testing.T) {
	p := topology.TestParams()
	p.FracMultipath = 0
	p.FracDeviant = 0

	// Pairwise experiments with controlled order: i announced first.
	catchment := func(enabled []int) map[topology.ASN]topology.LinkID {
		s, topo, origin, links := buildAnycast(t, p, DefaultConfig(), 1)
		for rank, idx := range enabled {
			l := links[idx]
			s.Engine.Schedule(time.Duration(rank)*6*time.Minute, func() {
				s.Announce(0, origin, l.ID, 0)
			})
		}
		s.Converge()
		return s.CatchmentMap(0, topo.Targets)
	}

	n := p.NumTier1
	// prefer[a][i][j] = true if client a prefers site i over j (i announced
	// before j, matching the subset announcement order below).
	type pair struct{ i, j int }
	wins := map[pair]map[topology.ASN]int{}
	s0, topo0, _, links0 := buildAnycast(t, p, DefaultConfig(), 1)
	_ = s0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cm := catchment([]int{i, j})
			m := map[topology.ASN]int{}
			for asn, link := range cm {
				if link == links0[i].ID {
					m[asn] = i
				} else {
					m[asn] = j
				}
			}
			wins[pair{i, j}] = m
		}
	}

	// Subsets announced in index order (i < j ⇒ i first), matching the
	// pairwise experiments' order.
	subsets := [][]int{{0, 1, 2}, {1, 3, 4}, {0, 2, 4, 5}, {0, 1, 2, 3, 4, 5}}
	for _, sub := range subsets {
		cm := catchment(sub)
		mismatches, total := 0, 0
		for _, tg := range topo0.Targets {
			link, ok := cm[tg.AS]
			if !ok {
				continue
			}
			// Predicted winner: the subset element that beats all others in
			// pairwise comparisons.
			pred := -1
			for _, i := range sub {
				beatsAll := true
				for _, j := range sub {
					if i == j {
						continue
					}
					a, b := i, j
					if a > b {
						a, b = b, a
					}
					w := wins[pair{a, b}][tg.AS]
					if w != i {
						beatsAll = false
						break
					}
				}
				if beatsAll {
					pred = i
					break
				}
			}
			if pred < 0 {
				continue // cyclic (should be rare here); skip like the paper
			}
			total++
			if links0[pred].ID != link {
				mismatches++
			}
		}
		if total == 0 {
			t.Fatalf("subset %v: no predictable targets", sub)
		}
		if frac := float64(mismatches) / float64(total); frac > 0.02 {
			t.Errorf("subset %v: %.1f%% of predictable targets mispredicted (want ≤2%% under Theorem A.1 conditions)",
				sub, frac*100)
		}
	}
}

func TestUpdateCountReasonable(t *testing.T) {
	s, _, origin, links := buildAnycast(t, topology.TestParams(), DefaultConfig(), 1)
	for _, l := range links {
		s.Announce(0, origin, l.ID, 0)
	}
	s.Converge()
	if s.Updates == 0 {
		t.Fatal("no updates processed")
	}
	// Path-vector convergence should not blow up combinatorially.
	limit := uint64(200 * s.Topo.NumASes())
	if s.Updates > limit {
		t.Errorf("processed %d updates for %d ASes; possible convergence pathology", s.Updates, s.Topo.NumASes())
	}
}

func BenchmarkConvergeSixSites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _, origin, links := buildAnycast(b, topology.TestParams(), DefaultConfig(), 1)
		for _, l := range links {
			s.Announce(0, origin, l.ID, 0)
		}
		s.Converge()
	}
}

// TestWithdrawReannounceReproducible validates the testbed's experiment
// protocol: withdrawing everything and re-announcing in the same order on
// the same simulation yields identical catchments, because the stable
// processing delays (not wall-clock accidents) decide every race within a
// run.
func TestWithdrawReannounceReproducible(t *testing.T) {
	s, topo, origin, links := buildAnycast(t, topology.TestParams(), DefaultConfig(), 1)
	announce := func() map[topology.ASN]topology.LinkID {
		for i, l := range links {
			l := l
			s.Engine.After(time.Duration(i)*6*time.Minute, func() {
				s.Announce(0, origin, l.ID, 0)
			})
		}
		s.Converge()
		return s.CatchmentMap(0, topo.Targets)
	}
	first := announce()
	s.WithdrawAll(0)
	s.Converge()
	if n := s.ReachableCount(0); n != 0 {
		t.Fatalf("%d ASes still route after withdrawal", n)
	}
	second := announce()
	if len(first) != len(second) {
		t.Fatalf("catchment sizes differ: %d vs %d", len(first), len(second))
	}
	for asn, link := range first {
		if second[asn] != link {
			t.Fatalf("AS%d moved from link %d to %d across re-announcement", asn, link, second[asn])
		}
	}
}
