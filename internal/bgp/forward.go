package bgp

import (
	"fmt"
	"time"

	"anyopt/internal/topology"
)

// maxForwardHops bounds the AS-level forwarding walk; real anycast paths are
// a handful of AS hops, so hitting the cap indicates a model bug.
const maxForwardHops = 64

// ForwardResult describes where a packet from a client network ends up.
type ForwardResult struct {
	// EntryLink is the origin-side link the packet arrives over — for an
	// anycast deployment this identifies the catchment site.
	EntryLink topology.LinkID
	// ASPath lists the ASes traversed, client first, excluding the origin.
	ASPath []topology.ASN
	// Delay is the accumulated one-way forwarding delay, including intra-AS
	// PoP-to-PoP segments inside transit providers.
	Delay time.Duration
}

// Forward traces the AS-level forwarding path of a packet sent by target
// toward prefix p and reports the origin link (catchment site attachment) it
// reaches. ok is false when the target's AS has no route.
//
// The walk realizes the paper's two-level catchment structure: inter-AS hops
// follow each AS's BGP best route, an AS holding several equally preferred
// direct links to the origin picks one by hot-potato (least IGP cost from
// the packet's ingress PoP), and ASes flagged Multipath choose among
// equal-cost candidates by per-target flow hash.
//
// After convergence, strictly following best routes walks the selected AS
// path and must terminate at the origin. The multipath override can in
// principle bounce a flow between two load-sharing ASes (each hashing the
// flow onto the other); on detecting a revisit the walk falls back to
// strict best-path forwarding, which models the packet escaping the
// transient ECMP disagreement.
func (s *Sim) Forward(p PrefixID, target topology.Target) (ForwardResult, bool) {
	ps := s.prefixes[p]
	if ps == nil {
		return ForwardResult{}, false
	}
	cur := target.AS
	ingressPoP := -1 // targets sit at the client network itself
	var res ForwardResult
	strictBest := false

	for hop := 0; ; hop++ {
		if hop > maxForwardHops {
			panic(fmt.Sprintf("bgp: forwarding walk exceeded %d hops for target %s toward prefix %d",
				maxForwardHops, target.Addr, p))
		}
		res.ASPath = append(res.ASPath, cur)

		rib := ps.ribs[cur]
		if rib == nil || rib.best == nil {
			return ForwardResult{}, false
		}
		r := s.chooseForwardingRoute(ps, cur, ingressPoP, rib, target, strictBest)
		next := r.link.Other(cur)
		// res.ASPath doubles as the visited set: walks are at most
		// maxForwardHops long, so a linear scan beats a per-call map.
		if next != ps.origin && asPathContains(res.ASPath, next) && !strictBest {
			// ECMP ping-pong: re-resolve under strict best-path forwarding.
			strictBest = true
			r = s.chooseForwardingRoute(ps, cur, ingressPoP, rib, target, true)
			next = r.link.Other(cur)
		}

		// Intra-AS segment from ingress PoP to the egress attachment PoP.
		egressPoP := r.link.PoPAt(cur)
		res.Delay += s.Topo.IGPDelay(cur, ingressPoP, egressPoP)
		// Inter-AS link.
		res.Delay += r.link.Delay

		if next == ps.origin {
			res.EntryLink = r.link.ID
			return res, true
		}
		ingressPoP = r.link.PoPAt(next)
		cur = next
	}
}

// chooseForwardingRoute picks the route a packet entering AS cur at
// ingressPoP actually follows. In strict mode only the hot-potato direct-site
// override applies (it terminates the walk immediately).
func (s *Sim) chooseForwardingRoute(ps *prefixState, cur topology.ASN, ingressPoP int, rib *ribState, target topology.Target, strict bool) *route {
	if len(rib.candidates) <= 1 {
		return rib.best
	}

	// Hot-potato among direct links to the origin: when several anycast
	// sites attach to this AS, interior routing delivers each ingress to its
	// nearest site (§4.3 — "the interior routing inside an AS determines the
	// intra-AS catchments").
	var direct []*route
	for _, c := range rib.candidates {
		if c.link.Other(cur) == ps.origin {
			direct = append(direct, c)
		}
	}
	if len(direct) > 1 {
		// MED precedes interior cost in the decision process: among routes
		// from the same neighbor (the origin), the lowest MED wins before
		// hot potato compares IGP distances.
		minMED := direct[0].med
		for _, c := range direct[1:] {
			if c.med < minMED {
				minMED = c.med
			}
		}
		best := (*route)(nil)
		bestCost := 0.0
		for _, c := range direct {
			if c.med != minMED {
				continue
			}
			cost := s.Topo.IGPCost(cur, ingressPoP, c.link.PoPAt(cur))
			if best == nil || cost < bestCost {
				best, bestCost = c, cost
			}
		}
		return best
	}

	// Multipath ASes hash the flow across all equally preferred routes. The
	// hash covers the candidate next hops themselves, as real ECMP does: when
	// the set of equal-cost routes changes (a different experiment enables
	// different sites), the flow re-hashes, so a multipath AS's apparent
	// preferences are stable per pair but not transitive across pairs —
	// one of the paper's sources of clients without total orders (§4.2).
	if !strict && s.Topo.AS(cur).Multipath {
		return rib.candidates[flowIndex(target, cur, rib.candidates)]
	}
	return rib.best
}

// flowIndex deterministically maps a target's flow onto one of the candidate
// routes, keyed by flow salt, the AS doing the hashing, and the identities of
// all candidate links.
func flowIndex(target topology.Target, at topology.ASN, candidates []*route) int {
	h := fnvU64(fnvU64(fnvOffset64, target.FlowSalt), uint64(at))
	for _, c := range candidates {
		h = fnvU64(h, uint64(c.link.ID))
	}
	return int(h % uint64(len(candidates)))
}

func asPathContains(path []topology.ASN, a topology.ASN) bool {
	for _, hop := range path {
		if hop == a {
			return true
		}
	}
	return false
}

// CatchmentMap computes, for every target, the origin link (site attachment)
// its traffic reaches under the current routing state. Targets with no route
// are absent from the map.
func (s *Sim) CatchmentMap(p PrefixID, targets []topology.Target) map[topology.ASN]topology.LinkID {
	out := make(map[topology.ASN]topology.LinkID, len(targets))
	for _, t := range targets {
		if res, ok := s.Forward(p, t); ok {
			out[t.AS] = res.EntryLink
		}
	}
	return out
}
