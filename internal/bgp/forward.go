package bgp

import (
	"fmt"
	"time"

	"anyopt/internal/topology"
)

// maxForwardHops bounds the AS-level forwarding walk; real anycast paths are
// a handful of AS hops, so hitting the cap indicates a model bug.
const maxForwardHops = 64

// ForwardResult describes where a packet from a client network ends up.
type ForwardResult struct {
	// EntryLink is the origin-side link the packet arrives over — for an
	// anycast deployment this identifies the catchment site.
	EntryLink topology.LinkID
	// ASPath lists the ASes traversed, client first, excluding the origin.
	ASPath []topology.ASN
	// Delay is the accumulated one-way forwarding delay, including intra-AS
	// PoP-to-PoP segments inside transit providers.
	Delay time.Duration
}

// Forwarding memoization
//
// After convergence the walk below re-derives the same per-AS choice for
// every target routed through that AS. The choice's inputs split cleanly:
//
//   - simple ASes (one candidate, or several but neither multiple direct
//     origin links nor multipath): the choice is the best route, independent
//     of ingress PoP and flow — cacheable per AS.
//   - hot-potato ASes (>1 direct link to the origin): the choice depends on
//     the ingress PoP only — cacheable per (AS, ingress PoP). It is terminal:
//     the chosen link lands at the origin.
//   - multipath ASes: the choice hashes the flow over the candidate set —
//     inherently per-target, never cached.
//
// All of it is valid only while no decision process runs anywhere: Sim.fwdGen
// advances on every runDecision and the caches clear lazily when their
// generation falls behind.

// fwdKind classifies how an AS picks among its forwarding candidates.
type fwdKind uint8

const (
	fwdSimple fwdKind = iota
	fwdHot
	fwdMulti
)

// fwdHotKey identifies an AS plus the PoP a packet entered it at (-1 when
// the packet originates inside that AS).
type fwdHotKey struct {
	as      topology.ASN
	ingress int32
}

// fwdTerm is a path-compressed walk suffix: a packet entering key.as at
// key.ingress deterministically reaches the origin over link after delay more
// one-way latency, for every target. ok=false records states that must not be
// compressed because a multipath AS, a routeless AS, or an over-long chain
// lies downstream — those walks stay per-hop.
type fwdTerm struct {
	link  topology.LinkID
	delay time.Duration
	ok    bool
}

// fwdCache memoizes forwarding resolution for one prefix within one routing
// generation.
type fwdCache struct {
	gen     uint64
	classes map[topology.ASN]fwdKind
	hot     map[fwdHotKey]*route
	term    map[fwdHotKey]fwdTerm
}

// fwdCacheOf returns ps's cache, cleared if a decision ran since it was last
// used.
func (s *Sim) fwdCacheOf(ps *prefixState) *fwdCache {
	c := &ps.fwd
	if c.gen != s.fwdGen {
		if c.classes == nil {
			c.classes = make(map[topology.ASN]fwdKind, s.Topo.NumASes())
			c.hot = make(map[fwdHotKey]*route)
			c.term = make(map[fwdHotKey]fwdTerm, s.Topo.NumASes())
		} else {
			clear(c.classes)
			clear(c.hot)
			clear(c.term)
		}
		c.gen = s.fwdGen
	}
	return c
}

// fwdClassOf resolves (once per AS per generation) how cur chooses among its
// candidates.
func (s *Sim) fwdClassOf(c *fwdCache, ps *prefixState, cur topology.ASN, rib *ribState) fwdKind {
	if k, ok := c.classes[cur]; ok {
		return k
	}
	k := fwdSimple
	if len(rib.candidates) > 1 {
		nDirect := 0
		for _, cand := range rib.candidates {
			if cand.link.Other(cur) == ps.origin {
				nDirect++
			}
		}
		switch {
		case nDirect > 1:
			k = fwdHot
		case s.Topo.AS(cur).Multipath:
			k = fwdMulti
		}
	}
	c.classes[cur] = k
	return k
}

// resolveHot picks (once per (AS, ingress PoP) per generation) the direct
// origin link hot potato delivers a packet to. MED precedes interior cost in
// the decision process: among routes from the same neighbor (the origin), the
// lowest MED wins before hot potato compares IGP distances (§4.3 — "the
// interior routing inside an AS determines the intra-AS catchments").
func (s *Sim) resolveHot(c *fwdCache, ps *prefixState, cur topology.ASN, ingressPoP int, rib *ribState) *route {
	k := fwdHotKey{cur, int32(ingressPoP)}
	if r, ok := c.hot[k]; ok {
		return r
	}
	minMED, seen := 0, false
	for _, cand := range rib.candidates {
		if cand.link.Other(cur) != ps.origin {
			continue
		}
		if !seen || cand.med < minMED {
			minMED, seen = cand.med, true
		}
	}
	var best *route
	bestCost := 0.0
	for _, cand := range rib.candidates {
		if cand.link.Other(cur) != ps.origin || cand.med != minMED {
			continue
		}
		cost := s.Topo.IGPCost(cur, ingressPoP, cand.link.PoPAt(cur))
		if best == nil || cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	c.hot[k] = best
	return best
}

// Forward traces the AS-level forwarding path of a packet sent by target
// toward prefix p and reports the origin link (catchment site attachment) it
// reaches. ok is false when the target's AS has no route.
//
// The walk realizes the paper's two-level catchment structure: inter-AS hops
// follow each AS's BGP best route, an AS holding several equally preferred
// direct links to the origin picks one by hot-potato (least IGP cost from
// the packet's ingress PoP), and ASes flagged Multipath choose among
// equal-cost candidates by per-target flow hash.
//
// After convergence, strictly following best routes walks the selected AS
// path and must terminate at the origin. The multipath override can in
// principle bounce a flow between two load-sharing ASes (each hashing the
// flow onto the other); on detecting a revisit the walk falls back to
// strict best-path forwarding, which models the packet escaping the
// transient ECMP disagreement.
func (s *Sim) Forward(p PrefixID, target topology.Target) (ForwardResult, bool) {
	ps := s.prefixes[p]
	if ps == nil {
		return ForwardResult{}, false
	}
	c := s.fwdCacheOf(ps)
	cur := target.AS
	ingressPoP := -1 // targets sit at the client network itself
	var res ForwardResult
	strictBest := false
	visited := s.fwdScratch[:0]

	for hop := 0; ; hop++ {
		if hop > maxForwardHops {
			panic(fmt.Sprintf("bgp: forwarding walk exceeded %d hops for target %s toward prefix %d",
				maxForwardHops, target.Addr, p))
		}
		visited = append(visited, cur)

		rib := ps.ribs[cur]
		if rib == nil || rib.best == nil {
			s.fwdScratch = visited
			return ForwardResult{}, false
		}
		r := s.chooseVia(c, ps, cur, ingressPoP, rib, target, strictBest)
		next := r.link.Other(cur)
		// visited doubles as the revisit set: walks are at most
		// maxForwardHops long, so a linear scan beats a per-call map.
		if next != ps.origin && asPathContains(visited, next) && !strictBest {
			// ECMP ping-pong: re-resolve under strict best-path forwarding.
			strictBest = true
			r = s.chooseVia(c, ps, cur, ingressPoP, rib, target, true)
			next = r.link.Other(cur)
		}

		// Intra-AS segment from ingress PoP to the egress attachment PoP.
		egressPoP := r.link.PoPAt(cur)
		res.Delay += s.Topo.IGPDelay(cur, ingressPoP, egressPoP)
		// Inter-AS link.
		res.Delay += r.link.Delay

		if next == ps.origin {
			res.EntryLink = r.link.ID
			res.ASPath = append([]topology.ASN(nil), visited...)
			s.fwdScratch = visited
			return res, true
		}
		ingressPoP = r.link.PoPAt(next)
		cur = next
	}
}

// CatchmentEntry resolves where target's traffic enters the anycast
// deployment — the origin-side link and the one-way delay — without
// materializing the AS path. It is the hot-path form of Forward: besides
// skipping the path copy, it path-compresses multipath-free walk suffixes.
// Entering a given AS at a given PoP leads every flow to the same site over
// the same remaining delay as long as no multipath AS lies downstream, so
// after the first walk the whole suffix costs one map lookup.
func (s *Sim) CatchmentEntry(p PrefixID, target topology.Target) (topology.LinkID, time.Duration, bool) {
	ps := s.prefixes[p]
	if ps == nil {
		return 0, 0, false
	}
	c := s.fwdCacheOf(ps)
	cur := target.AS
	ingressPoP := -1
	var delay time.Duration
	strictBest := false
	visited := s.fwdScratch[:0]

	for hop := 0; ; hop++ {
		if hop > maxForwardHops {
			panic(fmt.Sprintf("bgp: forwarding walk exceeded %d hops for target %s toward prefix %d",
				maxForwardHops, target.Addr, p))
		}
		// Path compression: a memoized multipath-free suffix ends the walk.
		// This is byte-equivalent to walking hop by hop — strict-mode flips
		// only change choices at multipath ASes, and a suffix containing one
		// is never compressed (resolveTerm poisons it).
		if t, ok := s.resolveTerm(c, ps, cur, ingressPoP); ok {
			s.fwdScratch = visited
			return t.link, delay + t.delay, true
		}
		visited = append(visited, cur)

		rib := ps.ribs[cur]
		if rib == nil || rib.best == nil {
			s.fwdScratch = visited
			return 0, 0, false
		}
		r := s.chooseVia(c, ps, cur, ingressPoP, rib, target, strictBest)
		next := r.link.Other(cur)
		if next != ps.origin && asPathContains(visited, next) && !strictBest {
			strictBest = true
			r = s.chooseVia(c, ps, cur, ingressPoP, rib, target, true)
			next = r.link.Other(cur)
		}

		delay += s.Topo.IGPDelay(cur, ingressPoP, r.link.PoPAt(cur)) + r.link.Delay

		if next == ps.origin {
			s.fwdScratch = visited
			return r.link.ID, delay, true
		}
		ingressPoP = r.link.PoPAt(next)
		cur = next
	}
}

// resolveTerm returns the path-compressed suffix from (cur, ingressPoP),
// computing and recording it — for every state along the chain — on first
// use. Compression covers only flow-independent stretches: simple ASes chase
// their best route, and a hot-potato AS terminates at the origin. The first
// multipath AS, routeless AS, or over-long chain poisons every state on the
// stretch so those walks stay per-hop (where revisit detection and the
// original panic semantics apply).
func (s *Sim) resolveTerm(c *fwdCache, ps *prefixState, cur topology.ASN, ingressPoP int) (fwdTerm, bool) {
	if t, ok := c.term[fwdHotKey{cur, int32(ingressPoP)}]; ok {
		return t, t.ok
	}
	// chain records every state traversed plus the delay accumulated before
	// entering it, so each gets its own term entry (path compression).
	var chain [maxForwardHops + 1]struct {
		key   fwdHotKey
		delay time.Duration
	}
	n := 0
	var delay time.Duration
	var link topology.LinkID
	good := false

	as, ing := cur, ingressPoP
walk:
	for {
		k := fwdHotKey{as, int32(ing)}
		if n > 0 { // state 0's absence was just checked
			if t, ok := c.term[k]; ok {
				// Splice onto an already-resolved suffix.
				if t.ok {
					link = t.link
					delay += t.delay
					good = true
				}
				break walk
			}
		}
		if n == len(chain) {
			break walk // over-long chain: leave good=false, poison the stretch
		}
		chain[n].key = k
		chain[n].delay = delay
		n++

		rib := ps.ribs[as]
		if rib == nil || rib.best == nil {
			break walk // unreachable downstream: per-hop walk reports it
		}
		switch s.fwdClassOf(c, ps, as, rib) {
		case fwdMulti:
			break walk // flow-dependent: never compress through here
		case fwdHot:
			r := s.resolveHot(c, ps, as, ing, rib)
			delay += s.Topo.IGPDelay(as, ing, r.link.PoPAt(as)) + r.link.Delay
			link = r.link.ID
			good = true // hot-potato routes are direct: terminal at the origin
			break walk
		default: // fwdSimple: follow the best route
			r := rib.best
			next := r.link.Other(as)
			delay += s.Topo.IGPDelay(as, ing, r.link.PoPAt(as)) + r.link.Delay
			if next == ps.origin {
				link = r.link.ID
				good = true
				break walk
			}
			ing = r.link.PoPAt(next)
			as = next
		}
	}
	for i := 0; i < n; i++ {
		if good {
			c.term[chain[i].key] = fwdTerm{link: link, delay: delay - chain[i].delay, ok: true}
		} else {
			c.term[chain[i].key] = fwdTerm{}
		}
	}
	t := c.term[fwdHotKey{cur, int32(ingressPoP)}]
	return t, t.ok
}

// chooseForwardingRoute picks the route a packet entering AS cur at
// ingressPoP actually follows. In strict mode only the hot-potato direct-site
// override applies (it terminates the walk immediately).
func (s *Sim) chooseForwardingRoute(ps *prefixState, cur topology.ASN, ingressPoP int, rib *ribState, target topology.Target, strict bool) *route {
	return s.chooseVia(s.fwdCacheOf(ps), ps, cur, ingressPoP, rib, target, strict)
}

// chooseVia is chooseForwardingRoute against an already-validated cache.
func (s *Sim) chooseVia(c *fwdCache, ps *prefixState, cur topology.ASN, ingressPoP int, rib *ribState, target topology.Target, strict bool) *route {
	switch s.fwdClassOf(c, ps, cur, rib) {
	case fwdHot:
		return s.resolveHot(c, ps, cur, ingressPoP, rib)
	case fwdMulti:
		// Multipath ASes hash the flow across all equally preferred routes.
		// The hash covers the candidate next hops themselves, as real ECMP
		// does: when the set of equal-cost routes changes (a different
		// experiment enables different sites), the flow re-hashes, so a
		// multipath AS's apparent preferences are stable per pair but not
		// transitive across pairs — one of the paper's sources of clients
		// without total orders (§4.2).
		if !strict {
			return rib.candidates[flowIndex(target, cur, rib.candidates)]
		}
	}
	return rib.best
}

// flowIndex deterministically maps a target's flow onto one of the candidate
// routes, keyed by flow salt, the AS doing the hashing, and the identities of
// all candidate links.
func flowIndex(target topology.Target, at topology.ASN, candidates []*route) int {
	h := fnvU64(fnvU64(fnvOffset64, target.FlowSalt), uint64(at))
	for _, c := range candidates {
		h = fnvU64(h, uint64(c.link.ID))
	}
	return int(h % uint64(len(candidates)))
}

func asPathContains(path []topology.ASN, a topology.ASN) bool {
	for _, hop := range path {
		if hop == a {
			return true
		}
	}
	return false
}

// CatchmentMap computes, for every target, the origin link (site attachment)
// its traffic reaches under the current routing state. Targets with no route
// are absent from the map.
func (s *Sim) CatchmentMap(p PrefixID, targets []topology.Target) map[topology.ASN]topology.LinkID {
	out := make(map[topology.ASN]topology.LinkID, len(targets))
	for _, t := range targets {
		if link, _, ok := s.CatchmentEntry(p, t); ok {
			out[t.AS] = link
		}
	}
	return out
}
