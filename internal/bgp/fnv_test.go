package bgp

import (
	"hash/fnv"
	"testing"
)

// TestInlineFNVMatchesStdlib locks the inlined hash to hash/fnv: procDelay
// and flowIndex results — and therefore every recorded experiment outcome —
// must not shift when the hashing implementation changes.
func TestInlineFNVMatchesStdlib(t *testing.T) {
	cases := [][]uint64{
		{0},
		{1, 2, 3},
		{0x57ab1e},
		{42, 7, 0x57ab1e},
		{42, 7, 123456789},
		{^uint64(0), 1 << 63, 0xdeadbeef},
	}
	for _, words := range cases {
		want := func() uint64 {
			h := fnv.New64a()
			var buf [8]byte
			for _, v := range words {
				for i := 0; i < 8; i++ {
					buf[i] = byte(v >> (8 * i))
				}
				h.Write(buf[:])
			}
			return h.Sum64()
		}()
		got := fnvOffset64
		for _, v := range words {
			got = fnvU64(got, v)
		}
		if got != want {
			t.Fatalf("fnvU64 over %v = %#x, stdlib fnv = %#x", words, got, want)
		}
	}
}
