package bgp

import (
	"math/rand"
	"testing"
	"time"

	"anyopt/internal/topology"
)

// lemmaSim builds a simulator over a generated topology restricted to the
// Appendix A model assumptions: no multipath, no deviant LOCAL_PREF.
// Announcements are order-controlled so ties resolve identically across
// subsets (the "source-oblivious" tie-breaking the local preference model
// requires).
func lemmaSim(t testing.TB, seed int64) (*Sim, *topology.Topology, topology.ASN, []*topology.Link) {
	t.Helper()
	p := topology.TestParams()
	p.Seed = seed
	p.FracMultipath = 0
	p.FracDeviant = 0
	return buildAnycast(t, p, DefaultConfig(), 1)
}

// announceOrdered announces the given site links in slice order, spaced so
// the earlier announcement arrives everywhere first.
func announceOrdered(s *Sim, origin topology.ASN, links []*topology.Link) {
	for i, l := range links {
		l := l
		s.Engine.Schedule(time.Duration(i)*6*time.Minute, func() {
			s.Announce(0, origin, l.ID, 0)
		})
	}
	s.Converge()
}

// TestLemma1Reachability encodes statement 1 of Lemma 1 at the system level:
// announcing from more sites can never make a client lose reachability
// ("if a router receives route announcements from more incoming links, it
// cannot shrink the set of outgoing links it exports to").
func TestLemma1Reachability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		seed := int64(trial + 1)

		// Reachability under a random small subset.
		s1, topo, origin, links := lemmaSim(t, seed)
		k := 1 + rng.Intn(3)
		idx := rng.Perm(len(links))[:k]
		var subset []*topology.Link
		for _, i := range idx {
			subset = append(subset, links[i])
		}
		announceOrdered(s1, origin, subset)
		var reachable []topology.ASN
		for _, tg := range topo.Targets {
			if _, ok := s1.Forward(0, tg); ok {
				reachable = append(reachable, tg.AS)
			}
		}
		if len(reachable) == 0 {
			t.Fatalf("trial %d: nothing reachable under subset", trial)
		}

		// Grow the subset (same relative order, extras appended).
		s2, topo2, origin2, links2 := lemmaSim(t, seed)
		var grown []*topology.Link
		for _, i := range idx {
			grown = append(grown, links2[i])
		}
		for i := range links2 {
			used := false
			for _, j := range idx {
				if i == j {
					used = true
				}
			}
			if !used {
				grown = append(grown, links2[i])
			}
		}
		announceOrdered(s2, origin2, grown)
		for _, asn := range reachable {
			var tg topology.Target
			for _, cand := range topo2.Targets {
				if cand.AS == asn {
					tg = cand
				}
			}
			if _, ok := s2.Forward(0, tg); !ok {
				t.Fatalf("trial %d: AS%d reachable under subset but not superset — Lemma 1 violated", trial, asn)
			}
		}
	}
}

// TestLemma2LoserStaysLoser encodes Lemma 2: when A beats B in the pairwise
// comparison, enabling additional sites never hands the client to B — under
// the local preference model's assumptions and a fixed relative announcement
// order.
func TestLemma2LoserStaysLoser(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		seed := int64(trial + 1)

		// Pairwise comparison of sites 0 and 1 (0 announced first).
		s1, topo, origin, links := lemmaSim(t, seed)
		announceOrdered(s1, origin, []*topology.Link{links[0], links[1]})
		type outcome struct {
			winner topology.LinkID
			loser  topology.LinkID
		}
		results := map[topology.ASN]outcome{}
		for _, tg := range topo.Targets {
			res, ok := s1.Forward(0, tg)
			if !ok {
				continue
			}
			o := outcome{winner: res.EntryLink}
			if res.EntryLink == links[0].ID {
				o.loser = links[1].ID
			} else {
				o.loser = links[0].ID
			}
			results[tg.AS] = o
		}

		// Enable more sites, preserving 0-before-1 and appending the rest.
		extra := rng.Intn(len(links)-2) + 1
		s2, topo2, origin2, links2 := lemmaSim(t, seed)
		grown := []*topology.Link{links2[0], links2[1]}
		for i := 2; i < 2+extra; i++ {
			grown = append(grown, links2[i])
		}
		announceOrdered(s2, origin2, grown)

		violations := 0
		for _, tg := range topo2.Targets {
			prev, ok := results[tg.AS]
			if !ok {
				continue
			}
			res, ok := s2.Forward(0, tg)
			if !ok {
				continue
			}
			if res.EntryLink == prev.loser {
				violations++
			}
		}
		// The lemma's conditions (pure local-preference tie-breaking) are
		// only approximated — interior-cost and age ties resolve identically
		// across runs here, so violations should be essentially absent.
		if violations > len(results)/100 {
			t.Errorf("trial %d: %d/%d clients switched to the pairwise loser — Lemma 2 violated",
				trial, violations, len(results))
		}
	}
}

// TestLemma2ViolatedByMultipath shows the lemma's conditions are necessary:
// with multipath ASes present (candidate-set-dependent hashing), some
// clients do fall back to the pairwise loser when more sites are enabled —
// which is exactly why the paper excludes such clients from prediction.
func TestLemma2ViolatedByMultipath(t *testing.T) {
	p := topology.TestParams()
	p.FracMultipath = 0.5 // exaggerate to make the counterexample certain
	p.FracDeviant = 0

	s1, topo, origin, links := buildAnycast(t, p, DefaultConfig(), 1)
	announceOrdered(s1, origin, []*topology.Link{links[0], links[1]})
	losers := map[topology.ASN]topology.LinkID{}
	for _, tg := range topo.Targets {
		res, ok := s1.Forward(0, tg)
		if !ok {
			continue
		}
		if res.EntryLink == links[0].ID {
			losers[tg.AS] = links[1].ID
		} else {
			losers[tg.AS] = links[0].ID
		}
	}

	s2, topo2, origin2, links2 := buildAnycast(t, p, DefaultConfig(), 1)
	announceOrdered(s2, origin2, []*topology.Link{links2[0], links2[1], links2[2], links2[3]})
	switched := 0
	for _, tg := range topo2.Targets {
		loser, ok := losers[tg.AS]
		if !ok {
			continue
		}
		if res, ok := s2.Forward(0, tg); ok && res.EntryLink == loser {
			switched++
		}
	}
	if switched == 0 {
		t.Skip("no multipath counterexample materialized at this seed; the lemma held vacuously")
	}
	t.Logf("%d clients switched to their pairwise loser under multipath — Lemma 2's assumptions are necessary", switched)
}
