//go:build !invariants

package bgp

import "anyopt/internal/topology"

// This file is the default half of the runtime invariant hooks: every hook
// is an empty method the compiler inlines away, so the ordinary build pays
// nothing. Build with -tags=invariants to swap in the real checks (see
// invariants_on.go and internal/bgp/invariant).

func (s *Sim) invCheckExport(a topology.ASN, learnedFrom, to topology.NeighborRole) {}

func (s *Sim) invCheckBest(a topology.ASN, rib *ribState) {}

func (s *Sim) invRecordTie(winner, loser *route) {}
