package bgp

import (
	"strings"
	"testing"
	"time"

	"anyopt/internal/topology"
)

func TestStatsConvergedState(t *testing.T) {
	s, topo, origin, links := buildAnycast(t, topology.TestParams(), DefaultConfig(), 1)
	for i, l := range links {
		l := l
		s.Engine.Schedule(time.Duration(i)*6*time.Minute, func() {
			s.Announce(0, origin, l.ID, 0)
		})
	}
	s.Converge()

	st := s.Stats(0)
	if st.ReachableASes < topo.NumASes()*9/10 {
		t.Errorf("reachable = %d of %d ASes", st.ReachableASes, topo.NumASes())
	}
	if st.Routes < st.ReachableASes {
		t.Errorf("routes (%d) < reachable (%d); multihomed ASes should hold alternates", st.Routes, st.ReachableASes)
	}
	if st.TiedBest == 0 {
		t.Error("no tied best paths; the Fig 4a population is missing")
	}
	mean := st.MeanPathLength()
	if mean < 1.5 || mean > 8 {
		t.Errorf("mean path length %.2f implausible", mean)
	}
	if st.LastUpdate <= 0 {
		t.Error("no settle time recorded")
	}
	out := st.String()
	for _, want := range []string{"reachable=", "tied=", "lens="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered stats missing %q: %s", want, out)
		}
	}

	// Catchment sizes must cover every routable target and use only
	// announced links.
	sizes := s.CatchmentSizes(0, topo.Targets)
	total := 0
	announced := map[topology.LinkID]bool{}
	for _, l := range links {
		announced[l.ID] = true
	}
	for link, n := range sizes {
		if !announced[link] {
			t.Errorf("catchment at unannounced link %d", link)
		}
		total += n
	}
	if total != len(topo.Targets) {
		t.Errorf("catchment total %d of %d targets", total, len(topo.Targets))
	}
}

func TestStatsUnknownPrefix(t *testing.T) {
	s, _, _, _ := buildAnycast(t, topology.TestParams(), DefaultConfig(), 1)
	st := s.Stats(9)
	if st.ReachableASes != 0 || st.Routes != 0 {
		t.Errorf("stats for unknown prefix: %+v", st)
	}
	if st.MeanPathLength() != 0 {
		t.Error("mean path length of empty state")
	}
}
