// Package bgp is an event-driven simulator of inter-domain routing.
//
// It propagates anycast prefix announcements over a topology.Topology under
// the Gao-Rexford policy model and reproduces the full BGP decision process
// the paper analyzes, including the non-standard tie-breaker AnyOpt
// discovered to matter in practice: real routers (Cisco, Juniper) prefer the
// route that arrived first when all standard attributes tie. Announcement
// and withdrawal events ride the netsim engine, and per-link propagation
// delays plus per-AS processing delays determine arrival order at every AS —
// so announcing two sites six minutes apart produces globally controlled
// arrival order, while announcing them "simultaneously" leaves arrival order
// to uncontrolled jitter, exactly the contrast §4.2 and Figure 4 explore.
//
// Abstraction level: one BGP speaker per AS for route selection and export
// (the level at which the paper's Theorems A.1/A.2 operate), with intra-AS
// hot-potato (ingress-PoP-based) selection when an AS has several direct
// links to the anycast origin — the paper's two-level inter-AS/intra-AS
// catchment structure (§4.3). ASes flagged Multipath split traffic across
// equally preferred routes by flow hash (§4.2). Deliberately unmodeled:
// MRAI timers, route flap damping, iBGP topologies; the testbed layer spaces
// experiments far apart, as the paper does, precisely so these do not matter.
package bgp

import (
	"fmt"
	"slices"
	"time"

	"anyopt/internal/netsim"
	"anyopt/internal/topology"
)

// PrefixID identifies one of the simulated anycast test prefixes.
type PrefixID int

// Config tunes simulator behavior.
type Config struct {
	// ArrivalOrderTieBreak enables the implementation tie-breaker (oldest
	// route wins) after the standard attributes. Real deployed routers have
	// it; turning it off falls back to router-ID comparison immediately,
	// which is what the BGP specification prescribes. The ablation benches
	// flip this.
	ArrivalOrderTieBreak bool
	// ProcDelayMin/Max bound each AS's *stable* per-update processing delay,
	// drawn deterministically from (AS, prefix): a router's update-handling
	// speed is a property of the box and its configuration, so the same race
	// mostly resolves the same way across experiments.
	ProcDelayMin, ProcDelayMax time.Duration
	// RaceJitter bounds the per-experiment component of the processing
	// delay, drawn from (AS, prefix, JitterNonce). Only races whose stable
	// delay gap is within this window re-roll between experiments — the
	// run-to-run variability that makes naive simultaneous announcements
	// inconsistent (§5.1) without destabilizing everything.
	RaceJitter time.Duration
	// JitterNonce identifies the experiment run.
	JitterNonce uint64
	// InteriorCostBucketKm enables the "lowest interior cost" decision step
	// (hot potato): routes are compared by the distance from the AS to the
	// route's exit point, quantized into buckets of this many kilometers.
	// Exits in the same bucket still tie and fall through to the
	// arrival-order step. 0 disables the step entirely (all exits tie),
	// maximizing arrival-order sensitivity.
	InteriorCostBucketKm float64
	// Chaos, when non-nil, is consulted on every update/withdrawal delivery
	// and may drop it or add queueing delay — the fault-injection hook for
	// internal/fault. The model must be deterministic for the simulation to
	// stay reproducible; nil injects nothing.
	Chaos ChaosModel
}

// ChaosModel decides the fate of individual update deliveries. The prefix is
// passed as a plain int so fault deciders need not import this package.
type ChaosModel interface {
	// UpdateFate is called once per scheduled delivery; drop loses the
	// message entirely, otherwise extra is added to its in-flight delay.
	UpdateFate(link topology.LinkID, dst topology.ASN, prefix int) (drop bool, extra time.Duration)
}

// DefaultConfig matches deployed-router behavior.
func DefaultConfig() Config {
	return Config{
		ArrivalOrderTieBreak: true,
		ProcDelayMin:         5 * time.Millisecond,
		ProcDelayMax:         150 * time.Millisecond,
		RaceJitter:           220 * time.Millisecond,
		JitterNonce:          0,
		InteriorCostBucketKm: 300,
	}
}

// route is one Adj-RIB-In entry: a path to the anycast prefix learned from a
// neighbor over a specific link.
type route struct {
	link *topology.Link
	// path lists ASNs from the advertising neighbor to the origin,
	// inclusive; prepending repeats the origin ASN.
	path []topology.ASN
	// localPref is assigned at import by the receiving AS.
	localPref int
	// med is the Multi-Exit Discriminator carried on the announcement.
	med int
	// arrival is the virtual time this route (with this content) was
	// installed; the "oldest route" tie-breaker compares it.
	arrival time.Duration
	// interiorCost is the quantized hot-potato cost of this route's exit
	// point from the receiving AS (see Config.InteriorCostBucketKm).
	interiorCost int
	// neighborRouterID and linkID break the final ties.
	neighborRouterID uint32
}

func (r *route) pathLen() int { return len(r.path) }

// ribState is the per-AS, per-prefix routing state.
type ribState struct {
	// in is the Adj-RIB-In keyed by incoming link.
	in map[topology.LinkID]*route
	// best is the route selected by the full decision process; nil if the
	// prefix is unreachable from this AS.
	best *route
	// candidates are the routes tied with best through LOCAL_PREF and
	// AS-path length (the attributes propagated beyond one hop); forwarding
	// features — hot-potato site choice and multipath splitting — choose
	// among them.
	candidates []*route
}

// Sim is the simulator for a set of anycast prefixes over one topology.
// It is not safe for concurrent use.
type Sim struct {
	Topo   *topology.Topology
	Engine *netsim.Engine
	Cfg    Config

	// prefixes holds per-prefix state.
	prefixes map[PrefixID]*prefixState

	// Updates counts BGP update messages delivered, for reporting.
	Updates uint64

	// failed marks links that are administratively or physically down.
	failed map[topology.LinkID]bool

	// paths hands out announced-path storage without a make per update.
	paths pathArena
	// routes and ribs slab-allocate the two per-update object kinds. routes
	// is rewound by Reset; ribs never is, because ribStates stay reachable
	// from prefixState.ribs across sessions.
	routes slab[route]
	ribs   slab[ribState]
	// cands backs the candidate sets stored in RIBs, rewound by Reset.
	cands candArena
	// routeScratch backs selectBest's working slice across decisions.
	routeScratch []*route
	// linkScratch backs WithdrawAll's snapshot of announced links.
	linkScratch []topology.LinkID
	// fwdScratch backs the forwarding walk's visited list (forward.go).
	fwdScratch []topology.ASN

	// fwdGen numbers routing generations. It advances whenever any RIB's
	// selection state may have changed; forwarding memoization (forward.go)
	// is valid only within one generation.
	fwdGen uint64
}

// slab hands out zeroed T's carved from chunked backing arrays — one
// allocation per chunk instead of one per object. reset rewinds the slab so
// its chunks are carved again; the caller owns proving that no references to
// previously handed-out objects survive the rewind.
type slab[T any] struct {
	chunks [][]T
	cur    int // chunk currently being carved
	used   int // elements handed out from chunks[cur]
}

const slabChunk = 512

func (s *slab[T]) alloc() *T {
	if s.cur == len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, slabChunk))
	}
	c := s.chunks[s.cur]
	p := &c[s.used]
	var zero T
	*p = zero
	s.used++
	if s.used == len(c) {
		s.cur++
		s.used = 0
	}
	return p
}

func (s *slab[T]) reset() { s.cur, s.used = 0, 0 }

// pathArena carves immutable AS-path slices out of chunked slabs. Every
// exported update used to allocate its own path slice; paths are never
// mutated after construction and live as long as the routes holding them, so
// storage is handed out once per session and rewound wholesale by Reset.
type pathArena struct {
	chunks [][]topology.ASN
	cur    int
	used   int
}

const pathArenaChunk = 4096

// alloc returns an n-element path with capacity capped at n, so later appends
// by callers can never clobber a neighboring path in the slab. The contents
// are unspecified (chunks are reused across Reset): every caller fills all n
// elements.
func (pa *pathArena) alloc(n int) []topology.ASN {
	for {
		if pa.cur == len(pa.chunks) {
			size := pathArenaChunk
			if n > size {
				size = n
			}
			pa.chunks = append(pa.chunks, make([]topology.ASN, size))
		}
		if c := pa.chunks[pa.cur]; pa.used+n <= len(c) {
			p := c[pa.used : pa.used+n : pa.used+n]
			pa.used += n
			return p
		}
		pa.cur++
		pa.used = 0
	}
}

func (pa *pathArena) reset() { pa.cur, pa.used = 0, 0 }

// candArena carves the candidate-set slices stored in RIBs. A decision run
// abandons the AS's previous candidate slice, so within one session the arena
// only grows — but the growth is the same order as the update count, and
// Reset reclaims all of it at once.
type candArena struct {
	chunks [][]*route
	cur    int
	used   int
}

const candArenaChunk = 1024

// alloc returns a zero-length slice with capacity exactly n for appending
// candidates into arena storage.
func (ca *candArena) alloc(n int) []*route {
	for {
		if ca.cur == len(ca.chunks) {
			size := candArenaChunk
			if n > size {
				size = n
			}
			ca.chunks = append(ca.chunks, make([]*route, size))
		}
		if c := ca.chunks[ca.cur]; ca.used+n <= len(c) {
			p := c[ca.used : ca.used : ca.used+n]
			ca.used += n
			return p
		}
		ca.cur++
		ca.used = 0
	}
}

func (ca *candArena) reset() { ca.cur, ca.used = 0, 0 }

// newPath builds the path [first, rest...] in arena storage.
func (pa *pathArena) newPath(first topology.ASN, rest []topology.ASN) []topology.ASN {
	p := pa.alloc(1 + len(rest))
	p[0] = first
	copy(p[1:], rest)
	return p
}

type prefixState struct {
	origin topology.ASN
	// announced tracks which origin links currently carry the announcement
	// and with how much prepending; meds holds each link's MED.
	announced map[topology.LinkID]int
	meds      map[topology.LinkID]int
	ribs      map[topology.ASN]*ribState
	// fwd memoizes forwarding resolution for the current routing generation
	// (see forward.go).
	fwd fwdCache
}

// New creates a simulator over topo.
func New(topo *topology.Topology, cfg Config) *Sim {
	if cfg.ProcDelayMax < cfg.ProcDelayMin {
		panic(fmt.Sprintf("bgp: ProcDelayMax %v < ProcDelayMin %v", cfg.ProcDelayMax, cfg.ProcDelayMin))
	}
	return &Sim{
		Topo:     topo,
		Engine:   &netsim.Engine{},
		Cfg:      cfg,
		prefixes: make(map[PrefixID]*prefixState),
		failed:   make(map[topology.LinkID]bool),
		fwdGen:   1, // so a zero-valued fwdCache (gen 0) is never current
	}
}

// Reset returns a used simulator to the state New(s.Topo, cfg) would produce
// while retaining every topology-sized allocation: prefix and RIB maps are
// cleared in place, the route slab, path arena, and candidate arena are
// rewound, and the event engine keeps its queue storage and event pool. A
// warm session therefore runs a whole new experiment with near-zero
// steady-state allocation. Callers must not hold references into the old
// session (BestRouteView paths, candidate slices); copies such as BestRoute
// results are fine.
func (s *Sim) Reset(cfg Config) {
	if cfg.ProcDelayMax < cfg.ProcDelayMin {
		panic(fmt.Sprintf("bgp: ProcDelayMax %v < ProcDelayMin %v", cfg.ProcDelayMax, cfg.ProcDelayMin))
	}
	s.Cfg = cfg
	s.Engine.Reset()
	s.Updates = 0
	clear(s.failed)
	// Clearing per-prefix state writes only keyed entries and per-state
	// fields, so map iteration order cannot leak into anything observable.
	for _, ps := range s.prefixes {
		ps.origin = 0
		clear(ps.announced)
		clear(ps.meds)
		for _, rib := range ps.ribs {
			clear(rib.in)
			rib.best = nil
			rib.candidates = nil
		}
	}
	s.routes.reset()
	s.paths.reset()
	s.cands.reset()
	s.routeScratch = s.routeScratch[:0]
	// A new generation invalidates all forwarding memoization; the per-prefix
	// caches clear themselves lazily on first use.
	s.fwdGen++
}

// state returns (creating if needed) the per-prefix state. The RIB map is
// pre-sized for the topology: a converged announcement reaches essentially
// every AS, so growing the map incrementally just reallocates on the way
// there.
func (s *Sim) state(p PrefixID) *prefixState {
	ps := s.prefixes[p]
	if ps == nil {
		ps = &prefixState{
			announced: make(map[topology.LinkID]int),
			meds:      make(map[topology.LinkID]int),
			ribs:      make(map[topology.ASN]*ribState, s.Topo.NumASes()),
		}
		s.prefixes[p] = ps
	}
	return ps
}

// rib returns (creating if needed) AS a's per-prefix RIB, with the Adj-RIB-In
// pre-sized to the AS's degree — its maximum possible population.
func (s *Sim) rib(ps *prefixState, a topology.ASN) *ribState {
	r := ps.ribs[a]
	if r == nil {
		r = s.ribs.alloc()
		r.in = make(map[topology.LinkID]*route, len(s.Topo.LinksOf(a)))
		ps.ribs[a] = r
	}
	return r
}

// Announce starts advertising prefix from origin over the given origin-side
// link at the current virtual time, with the origin ASN prepended prepend
// extra times. Announcing an already-announced link updates its prepending.
func (s *Sim) Announce(p PrefixID, origin topology.ASN, link topology.LinkID, prepend int) {
	s.AnnounceMED(p, origin, link, prepend, 0)
}

// AnnounceMED is Announce with an explicit Multi-Exit Discriminator. MED is
// one of the paper's control knobs (§2.3): it is compared only between
// routes from the same neighboring AS, so it steers which of several links
// *into the same provider* that provider prefers — lower wins. MED is
// non-transitive: it is not propagated beyond the receiving AS.
func (s *Sim) AnnounceMED(p PrefixID, origin topology.ASN, link topology.LinkID, prepend, med int) {
	l := s.Topo.Link(link)
	if l == nil {
		panic(fmt.Sprintf("bgp: Announce over unknown link %d", link))
	}
	if l.From != origin && l.To != origin {
		panic(fmt.Sprintf("bgp: link %d does not touch origin AS %d", link, origin))
	}
	if prepend < 0 {
		panic("bgp: negative prepend")
	}
	ps := s.state(p)
	if ps.origin != 0 && ps.origin != origin {
		panic(fmt.Sprintf("bgp: prefix %d already originated by AS %d", p, ps.origin))
	}
	ps.origin = origin
	ps.announced[link] = prepend
	ps.meds[link] = med

	// Build the announced path: origin ASN once plus prepends.
	path := s.paths.alloc(1 + prepend)
	for i := range path {
		path[i] = origin
	}
	s.deliver(p, l, l.Other(origin), path, med)
}

// Withdraw stops advertising prefix over the given origin-side link.
// Withdrawing a link that is not announced is a no-op.
func (s *Sim) Withdraw(p PrefixID, link topology.LinkID) {
	ps := s.prefixes[p]
	if ps == nil {
		return
	}
	if _, ok := ps.announced[link]; !ok {
		return
	}
	delete(ps.announced, link)
	delete(ps.meds, link)
	l := s.Topo.Link(link)
	s.deliver(p, l, l.Other(ps.origin), nil, 0)
}

// WithdrawAll withdraws the prefix from every currently announced link, in
// ascending link-ID order so the resulting event schedule is reproducible —
// map-iteration order here used to leak into withdrawal-event sequence
// numbers and, through same-timestamp ties, into routing outcomes. The link
// snapshot lives in Sim-owned scratch, so repeated deploy/withdraw cycles
// allocate nothing here.
func (s *Sim) WithdrawAll(p PrefixID) {
	s.linkScratch = s.AppendAnnouncedLinks(p, s.linkScratch[:0])
	for _, link := range s.linkScratch {
		s.Withdraw(p, link)
	}
}

// AnnouncedLinks returns the origin links currently carrying prefix p, in
// ascending link-ID order.
func (s *Sim) AnnouncedLinks(p PrefixID) []topology.LinkID {
	ps := s.prefixes[p]
	if ps == nil {
		return nil
	}
	return s.AppendAnnouncedLinks(p, make([]topology.LinkID, 0, len(ps.announced)))
}

// AppendAnnouncedLinks appends the origin links currently carrying prefix p
// to buf in ascending link-ID order and returns the extended slice, letting
// callers reuse a buffer across calls.
func (s *Sim) AppendAnnouncedLinks(p PrefixID, buf []topology.LinkID) []topology.LinkID {
	ps := s.prefixes[p]
	if ps == nil {
		return buf
	}
	start := len(buf)
	//lint:orderinvariant the appended region is sorted immediately below
	for l := range ps.announced {
		buf = append(buf, l)
	}
	slices.Sort(buf[start:])
	return buf
}

// deliver schedules the arrival of an update (path != nil) or withdrawal
// (path == nil) at AS dst over link l, after the link's propagation delay
// plus the sender-side serialization and receiver processing delay.
func (s *Sim) deliver(p PrefixID, l *topology.Link, dst topology.ASN, path []topology.ASN, med int) {
	if s.failed[l.ID] {
		return
	}
	delay := l.Delay + s.procDelay(dst, p)
	if s.Cfg.Chaos != nil {
		drop, extra := s.Cfg.Chaos.UpdateFate(l.ID, dst, int(p))
		if drop {
			return
		}
		delay += extra
	}
	// A pooled typed event instead of a closure: the hot path schedules one
	// update without allocating the *Event or the capture.
	s.Engine.AfterEvent(delay, s, netsim.Payload{
		Link:   l,
		Path:   path,
		Dst:    dst,
		Prefix: int32(p),
		MED:    int32(med),
	})
}

// HandleEvent implements netsim.Handler: one scheduled update (Path != nil)
// or withdrawal (Path == nil) arriving at its destination AS. The *Payload
// points into pooled event storage; only its fields — which alias Sim-owned
// arena memory — are kept.
func (s *Sim) HandleEvent(ev *netsim.Payload) {
	if s.failed[ev.Link.ID] {
		return // the link went down while the update was in flight
	}
	s.receive(PrefixID(ev.Prefix), ev.Link, ev.Dst, ev.Path, int(ev.MED))
}

// procDelay derives the per-AS processing delay for a prefix: a stable
// component from (AS, prefix) plus a small race component re-rolled per
// experiment nonce.
func (s *Sim) procDelay(a topology.ASN, p PrefixID) time.Duration {
	base := fnvU64(fnvU64(fnvOffset64, uint64(a)), uint64(p))
	d := s.Cfg.ProcDelayMin
	if span := s.Cfg.ProcDelayMax - s.Cfg.ProcDelayMin; span > 0 {
		d += time.Duration(fnvU64(base, 0x57ab1e) % uint64(span))
	}
	if s.Cfg.RaceJitter > 0 {
		d += time.Duration(fnvU64(base, s.Cfg.JitterNonce) % uint64(s.Cfg.RaceJitter))
	}
	return d
}

// receive processes an update or withdrawal at AS a.
func (s *Sim) receive(p PrefixID, l *topology.Link, a topology.ASN, path []topology.ASN, med int) {
	s.Updates++
	ps := s.state(p)
	rib := s.rib(ps, a)
	as := s.Topo.AS(a)
	neighbor := l.Other(a)

	if path == nil {
		// Withdrawal.
		if _, ok := rib.in[l.ID]; !ok {
			return
		}
		delete(rib.in, l.ID)
	} else {
		// Loop prevention: drop paths containing our own ASN.
		for _, hop := range path {
			if hop == a {
				return
			}
		}
		nb := s.Topo.AS(neighbor)
		r := s.routes.alloc()
		*r = route{
			link:             l,
			path:             path,
			localPref:        s.importPref(as, l),
			med:              med,
			arrival:          s.Engine.Now(),
			neighborRouterID: nb.RouterID,
			interiorCost:     s.interiorCost(as, l),
		}
		if old := rib.in[l.ID]; old != nil {
			if samePath(old.path, path) && old.med == med {
				return // duplicate re-advertisement; keep original arrival time
			}
		}
		rib.in[l.ID] = r
	}
	s.runDecision(p, ps, a, rib)
}

// importPref assigns LOCAL_PREF at import, relationship-based with optional
// deviant per-neighbor deltas.
func (s *Sim) importPref(as *topology.AS, l *topology.Link) int {
	var pref int
	switch l.RoleOf(as.ASN) {
	case topology.RoleCustomer:
		pref = 300
	case topology.RolePeer:
		pref = 200
	case topology.RoleProvider:
		pref = 100
	}
	if as.LocalPrefDelta != nil {
		pref += as.LocalPrefDelta[l.Other(as.ASN)]
	}
	return pref
}

// runDecision re-runs best-path selection at AS a and propagates any change.
func (s *Sim) runDecision(p PrefixID, ps *prefixState, a topology.ASN, rib *ribState) {
	// Any decision run invalidates forwarding memoization, even one that is
	// export-equivalent: the candidate set feeds multipath flow hashing and
	// hot-potato choice, so export equivalence is not forwarding equivalence.
	s.fwdGen++
	oldBest := rib.best
	rib.best, rib.candidates = s.selectBest(a, rib)
	s.invCheckBest(a, rib)

	if routesEquivalentForExport(oldBest, rib.best) {
		return
	}
	s.export(p, ps, a, rib, oldBest)
}

// routesEquivalentForExport reports whether swapping oldBest for newBest is
// invisible to neighbors (same AS path and same learned-role class).
func routesEquivalentForExport(a, b *route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.link == b.link && samePath(a.path, b.path)
}

// export advertises AS a's new best route (or a withdrawal) to the neighbors
// eligible under Gao-Rexford export policy.
func (s *Sim) export(p PrefixID, ps *prefixState, a topology.ASN, rib *ribState, oldBest *route) {
	newBest := rib.best

	var newPath []topology.ASN
	if newBest != nil {
		newPath = s.paths.newPath(a, newBest.path)
	}

	for _, nl := range s.Topo.LinksOf(a) {
		neighbor := nl.Other(a)
		if neighbor == ps.origin {
			continue // never advertise the origin's own prefix back at it
		}
		exportedOld := oldBest != nil && exportAllowed(oldBest.link.RoleOf(a), nl.RoleOf(a))
		exportNew := newBest != nil && exportAllowed(newBest.link.RoleOf(a), nl.RoleOf(a))
		if newBest != nil && nl == newBest.link {
			// Split horizon: don't advertise a route back over the link it
			// was learned from.
			exportNew = false
		}
		switch {
		case exportNew:
			s.invCheckExport(a, newBest.link.RoleOf(a), nl.RoleOf(a))
			s.deliver(p, nl, neighbor, newPath, 0)
		case exportedOld:
			// The neighbor previously heard a route from us but the new
			// best is not exportable to it (or we lost the route): withdraw.
			s.deliver(p, nl, neighbor, nil, 0)
		}
	}
}

// exportAllowed implements Gao-Rexford export policy: routes learned from
// customers go to everyone; routes learned from peers or providers go only to
// customers.
func exportAllowed(learnedFrom, to topology.NeighborRole) bool {
	if learnedFrom == topology.RoleCustomer {
		return true
	}
	return to == topology.RoleCustomer
}

// Converge runs the event engine until no BGP events remain and returns the
// number of events processed.
func (s *Sim) Converge() uint64 { return s.Engine.Run() }

func samePath(a, b []topology.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RouteInfo is a read-only view of an AS's best route for tests and tools.
type RouteInfo struct {
	Neighbor  topology.ASN
	Link      topology.LinkID
	Path      []topology.ASN
	LocalPref int
	Arrival   time.Duration
}

// BestRoute returns the selected route at AS a for prefix p, or nil when the
// prefix is unreachable from a. The Path is an independent copy, safe to hold
// across further simulation.
func (s *Sim) BestRoute(p PrefixID, a topology.ASN) *RouteInfo {
	v, ok := s.BestRouteView(p, a)
	if !ok {
		return nil
	}
	v.Path = append([]topology.ASN(nil), v.Path...)
	return &v
}

// BestRouteView is BestRoute without the defensive path copy: the returned
// Path aliases simulator-owned arena storage and is valid only until the next
// delivered update, link event, or Reset. Read-heavy internal callers use it
// to inspect routes without per-call garbage; anything that stores the result
// must use BestRoute.
func (s *Sim) BestRouteView(p PrefixID, a topology.ASN) (RouteInfo, bool) {
	ps := s.prefixes[p]
	if ps == nil {
		return RouteInfo{}, false
	}
	rib := ps.ribs[a]
	if rib == nil || rib.best == nil {
		return RouteInfo{}, false
	}
	b := rib.best
	return RouteInfo{
		Neighbor:  b.link.Other(a),
		Link:      b.link.ID,
		Path:      b.path,
		LocalPref: b.localPref,
		Arrival:   b.arrival,
	}, true
}

// ReachableCount returns how many ASes currently have a route to prefix p.
func (s *Sim) ReachableCount(p PrefixID) int {
	ps := s.prefixes[p]
	if ps == nil {
		return 0
	}
	n := 0
	for _, rib := range ps.ribs {
		if rib.best != nil {
			n++
		}
	}
	return n
}
