package bgp

import (
	"strings"
	"testing"
	"time"

	"anyopt/internal/topology"
)

func TestExplainSingleRoute(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	stub := l.addStub("client", "Boston", t1a)
	siteA := l.site(t1a, "New York")
	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Converge()

	exp, ok := s.Explain(0, target(stub))
	if !ok {
		t.Fatal("no explanation")
	}
	if exp.EntryLink != siteA.ID {
		t.Errorf("entry link %d", exp.EntryLink)
	}
	if len(exp.Hops) != 2 {
		t.Fatalf("hops = %d, want 2 (stub, T1A)", len(exp.Hops))
	}
	for _, h := range exp.Hops {
		if h.Decisive != StepOnlyRoute {
			t.Errorf("AS%d decisive = %v, want only-route", h.AS, h.Decisive)
		}
		if len(h.Candidates) != 1 || !h.Candidates[0].Selected {
			t.Errorf("AS%d candidates = %+v", h.AS, h.Candidates)
		}
	}
	out := exp.String()
	for _, want := range []string{"client AS", "only route", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainArrivalOrderDecisive(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Madrid", t1a, t1b)
	siteA := l.site(t1a, "New York")
	siteB := l.site(t1b, "London")

	s := New(l.topo, tieCfg())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Engine.RunFor(6 * time.Minute)
	s.Announce(0, l.origin.ASN, siteB.ID, 0)
	s.Converge()

	exp, ok := s.Explain(0, target(stub))
	if !ok {
		t.Fatal("no explanation")
	}
	first := exp.Hops[0]
	if len(first.Candidates) != 2 {
		t.Fatalf("stub candidates = %d, want 2", len(first.Candidates))
	}
	if first.Decisive != StepArrivalOrder {
		t.Errorf("decisive = %v, want arrival order", first.Decisive)
	}
}

func TestExplainLocalPrefDecisive(t *testing.T) {
	// T1A has its own site (customer) and hears B's site from a peer:
	// LOCAL_PREF decides.
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Boston", t1a)
	siteA := l.site(t1a, "New York")
	siteB := l.site(t1b, "London")

	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteB.ID, 0)
	s.Engine.RunFor(6 * time.Minute)
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Converge()

	exp, _ := s.Explain(0, target(stub))
	// Hop 2 is T1A, which holds both a customer route (its site) and a peer
	// route (via T1B).
	var t1aHop *HopExplanation
	for i := range exp.Hops {
		if exp.Hops[i].AS == t1a.ASN {
			t1aHop = &exp.Hops[i]
		}
	}
	if t1aHop == nil {
		t.Fatal("T1A not on path")
	}
	if len(t1aHop.Candidates) != 2 {
		t.Fatalf("T1A candidates = %d", len(t1aHop.Candidates))
	}
	if t1aHop.Decisive != StepLocalPref {
		t.Errorf("decisive = %v, want LOCAL_PREF", t1aHop.Decisive)
	}
}

func TestExplainHotPotatoNote(t *testing.T) {
	l := newLab()
	t1 := l.addT1("T1", "New York", "Tokyo")
	east := l.addStub("us-client", "Boston", t1)
	siteNY := l.site(t1, "New York")
	siteTK := l.site(t1, "Tokyo")
	// Disable the AS-level interior-cost step so the (older) Tokyo route is
	// the best path; the Boston client is still delivered to NY by
	// hot-potato forwarding, which Explain must note.
	s := New(l.topo, tieCfg())
	s.Announce(0, l.origin.ASN, siteTK.ID, 0)
	s.Engine.RunFor(6 * time.Minute)
	s.Announce(0, l.origin.ASN, siteNY.ID, 0)
	s.Converge()

	exp, ok := s.Explain(0, target(east))
	if !ok {
		t.Fatal("no explanation")
	}
	if exp.EntryLink != siteNY.ID {
		t.Fatalf("entry = %d, want NY", exp.EntryLink)
	}
	t1Hop := exp.Hops[len(exp.Hops)-1]
	if t1Hop.AS != t1.ASN {
		t.Fatalf("last hop AS%d, want T1", t1Hop.AS)
	}
	// Whether NY is best or not depends on arrival; the note appears only
	// when forwarding overrode the best path. With Tokyo announced first,
	// Tokyo is best, so the override note must be present.
	if t1Hop.ForwardingNote == "" {
		t.Error("hot-potato override not noted")
	}
}

func TestExplainUnroutable(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	stub := l.addStub("client", "Boston", t1a)
	s := New(l.topo, DefaultConfig())
	if _, ok := s.Explain(0, target(stub)); ok {
		t.Error("explanation for unannounced prefix")
	}
}

func TestDecisiveBreakdown(t *testing.T) {
	// On a generated topology with two sites announced, the breakdown
	// should be dominated by real attributes and include some arrival-order
	// decisions (the Fig 4a population).
	s, topo, origin, links := buildAnycast(t, topology.TestParams(), DefaultConfig(), 1)
	s.Announce(0, origin, links[0].ID, 0)
	s.Engine.RunFor(6 * time.Minute)
	s.Announce(0, origin, links[1].ID, 0)
	s.Converge()

	bd := s.DecisiveBreakdown(0, topo.Targets)
	total := 0
	for _, n := range bd {
		total += n
	}
	if total < len(topo.Targets)*9/10 {
		t.Fatalf("breakdown covers %d of %d targets", total, len(topo.Targets))
	}
	t.Logf("decisive steps: %v", bd)
	if bd[StepArrivalOrder] == 0 {
		t.Error("no arrival-order-decided clients; Fig 4a population missing")
	}
	if bd[StepASPath] == 0 {
		t.Error("no AS-path-decided clients; implausible")
	}
}
