package bgp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"anyopt/internal/topology"
)

// DecisionStep identifies the attribute that decided a route comparison.
type DecisionStep int

const (
	// StepOnlyRoute means there was no competition.
	StepOnlyRoute DecisionStep = iota
	// StepLocalPref: LOCAL_PREF differed (relationship or deviant policy).
	StepLocalPref
	// StepASPath: AS-path length differed.
	StepASPath
	// StepMED: MED differed between routes from the same neighbor.
	StepMED
	// StepInteriorCost: hot-potato exit distance differed.
	StepInteriorCost
	// StepArrivalOrder: the oldest route won — the implementation
	// tie-breaker the paper studies (§4.2).
	StepArrivalOrder
	// StepRouterID: the neighbor router ID broke the tie.
	StepRouterID
	// StepLinkID: the neighbor address (link) broke the tie.
	StepLinkID
)

func (s DecisionStep) String() string {
	switch s {
	case StepOnlyRoute:
		return "only route"
	case StepLocalPref:
		return "LOCAL_PREF"
	case StepASPath:
		return "AS-path length"
	case StepMED:
		return "MED"
	case StepInteriorCost:
		return "interior cost (hot potato)"
	case StepArrivalOrder:
		return "arrival order (oldest route)"
	case StepRouterID:
		return "neighbor router ID"
	case StepLinkID:
		return "neighbor address"
	default:
		return fmt.Sprintf("step(%d)", int(s))
	}
}

// CandidateInfo is a read-only view of one Adj-RIB-In route for explanation.
type CandidateInfo struct {
	Neighbor  topology.ASN
	Link      topology.LinkID
	Path      []topology.ASN
	LocalPref int
	MED       int
	Interior  int
	Arrival   time.Duration
	Selected  bool
}

// HopExplanation explains one AS's routing decision along a client's path.
type HopExplanation struct {
	AS   topology.ASN
	Name string
	// Candidates are all routes in the Adj-RIB-In, the selected one marked.
	Candidates []CandidateInfo
	// Decisive is the first decision-process step that separated the
	// selected route from its strongest rival.
	Decisive DecisionStep
	// ForwardingNote is set when forwarding diverged from the best path
	// (hot-potato site choice or multipath hashing).
	ForwardingNote string
}

// Explanation traces a client's packet toward the prefix, one AS at a time.
type Explanation struct {
	Client    topology.ASN
	EntryLink topology.LinkID
	Delay     time.Duration
	Hops      []HopExplanation
}

// String renders the trace for operators.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "client AS%d → entry link %d (%.1fms one-way)\n",
		e.Client, e.EntryLink, float64(e.Delay)/1e6)
	for _, h := range e.Hops {
		fmt.Fprintf(&b, "  AS%d %s: decisive attribute %s\n", h.AS, h.Name, h.Decisive)
		for _, c := range h.Candidates {
			mark := " "
			if c.Selected {
				mark = "*"
			}
			fmt.Fprintf(&b, "   %s via AS%-6d path %v pref=%d med=%d cost=%d age=%.0fms\n",
				mark, c.Neighbor, c.Path, c.LocalPref, c.MED, c.Interior,
				float64(c.Arrival)/1e6)
		}
		if h.ForwardingNote != "" {
			fmt.Fprintf(&b, "    note: %s\n", h.ForwardingNote)
		}
	}
	return b.String()
}

// Explain traces the forwarding path of target toward prefix p and explains
// every AS's route selection along it. ok is false when the target has no
// route.
func (s *Sim) Explain(p PrefixID, target topology.Target) (*Explanation, bool) {
	ps := s.prefixes[p]
	if ps == nil {
		return nil, false
	}
	res, ok := s.Forward(p, target)
	if !ok {
		return nil, false
	}
	exp := &Explanation{Client: target.AS, EntryLink: res.EntryLink, Delay: res.Delay}

	ingressPoP := -1
	for i, asn := range res.ASPath {
		rib := ps.ribs[asn]
		if rib == nil || rib.best == nil {
			break
		}
		as := s.Topo.AS(asn)
		hop := HopExplanation{AS: asn, Name: as.Name}

		// The route the packet actually followed at this hop.
		var nextLink topology.LinkID
		if i+1 < len(res.ASPath) {
			followed := s.chooseForwardingRoute(ps, asn, ingressPoP, rib, target, false)
			nextLink = followed.link.ID
		} else {
			nextLink = res.EntryLink
		}

		// Candidates, sorted by link for stable output.
		routes := make([]*route, 0, len(rib.in))
		for _, r := range rib.in {
			routes = append(routes, r)
		}
		sort.Slice(routes, func(a, b int) bool { return routes[a].link.ID < routes[b].link.ID })
		var selected, rival *route
		for _, r := range routes {
			ci := CandidateInfo{
				Neighbor:  r.link.Other(asn),
				Link:      r.link.ID,
				Path:      append([]topology.ASN(nil), r.path...),
				LocalPref: r.localPref,
				MED:       r.med,
				Interior:  r.interiorCost,
				Arrival:   r.arrival,
				Selected:  r.link.ID == nextLink,
			}
			hop.Candidates = append(hop.Candidates, ci)
			if ci.Selected {
				selected = r
			}
		}
		// Strongest rival: the best among the rest.
		for _, r := range routes {
			if r == selected {
				continue
			}
			if rival == nil || s.better(r, rival) {
				rival = r
			}
		}
		switch {
		case selected == nil:
			hop.Decisive = StepOnlyRoute // forwarding override chose a candidate not in RIB? defensive
		case rival == nil:
			hop.Decisive = StepOnlyRoute
		default:
			hop.Decisive = s.decisiveStep(selected, rival)
		}
		if selected != nil && selected != rib.best {
			if as.Multipath {
				hop.ForwardingNote = "multipath: flow hashed onto a non-best equal route"
			} else {
				hop.ForwardingNote = "hot potato: ingress-nearest site link overrode the best path"
			}
		}
		exp.Hops = append(exp.Hops, hop)

		if i+1 < len(res.ASPath) {
			l := s.Topo.Link(nextLink)
			ingressPoP = l.PoPAt(res.ASPath[i+1])
		}
	}
	return exp, true
}

// decisiveStep returns the first decision-process attribute on which x and y
// differ (x is the winner).
func (s *Sim) decisiveStep(x, y *route) DecisionStep {
	switch {
	case x.localPref != y.localPref:
		return StepLocalPref
	case x.pathLen() != y.pathLen():
		return StepASPath
	case len(x.path) > 0 && len(y.path) > 0 && x.path[0] == y.path[0] && x.med != y.med:
		return StepMED
	case x.interiorCost != y.interiorCost:
		return StepInteriorCost
	case s.Cfg.ArrivalOrderTieBreak && x.arrival != y.arrival:
		return StepArrivalOrder
	case x.neighborRouterID != y.neighborRouterID:
		return StepRouterID
	default:
		return StepLinkID
	}
}

// DecisiveBreakdown counts, over all targets, which decision step determined
// each client's first-hop route — quantifying how often the arrival-order
// tie-breaker actually decides catchments.
func (s *Sim) DecisiveBreakdown(p PrefixID, targets []topology.Target) map[DecisionStep]int {
	out := map[DecisionStep]int{}
	for _, tg := range targets {
		exp, ok := s.Explain(p, tg)
		if !ok || len(exp.Hops) == 0 {
			continue
		}
		// The client's own decision is the first hop with >1 candidate;
		// walk until one is found (single-homed stubs inherit upstream
		// decisions).
		step := StepOnlyRoute
		for _, h := range exp.Hops {
			if len(h.Candidates) > 1 {
				step = h.Decisive
				break
			}
		}
		out[step]++
	}
	return out
}
