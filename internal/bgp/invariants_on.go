//go:build invariants

package bgp

import (
	"sort"

	"anyopt/internal/bgp/invariant"
	"anyopt/internal/topology"
)

// This file is the -tags=invariants half of the runtime invariant hooks:
// each hook snapshots unexported simulator state into invariant.Route values
// and reports to invariant.Default. See invariants_off.go for the no-op
// default build.

// invRoute snapshots r for the checker.
func invRoute(r *route) invariant.Route {
	var first topology.ASN
	if len(r.path) > 0 {
		first = r.path[0]
	}
	return invariant.Route{
		LinkID:           r.link.ID,
		FirstHop:         first,
		LocalPref:        r.localPref,
		PathLen:          r.pathLen(),
		MED:              r.med,
		InteriorCost:     r.interiorCost,
		Arrival:          r.arrival,
		NeighborRouterID: r.neighborRouterID,
	}
}

func (s *Sim) invCheckExport(a topology.ASN, learnedFrom, to topology.NeighborRole) {
	invariant.Default.CheckExport(a, learnedFrom, to)
}

func (s *Sim) invCheckBest(a topology.ASN, rib *ribState) {
	routes := make([]invariant.Route, 0, len(rib.in))
	for _, r := range rib.in {
		routes = append(routes, invRoute(r))
	}
	sort.Slice(routes, func(i, j int) bool { return routes[i].LinkID < routes[j].LinkID })
	var best *invariant.Route
	if rib.best != nil {
		b := invRoute(rib.best)
		best = &b
	}
	invariant.Default.CheckBest(a, best, routes, s.Cfg.ArrivalOrderTieBreak)
}

func (s *Sim) invRecordTie(winner, loser *route) {
	invariant.Default.RecordTie(invRoute(winner), invRoute(loser))
}
