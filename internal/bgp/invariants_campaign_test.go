//go:build invariants

package bgp_test

import (
	"testing"

	"anyopt/internal/bgp/invariant"
	"anyopt/internal/core/discovery"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// TestCampaignUnderInvariants runs the full discovery campaign — parallel
// RTT measurement, order-controlled provider preferences, site-level
// preferences, and the naive baseline — with the runtime invariant hooks
// live, and requires that every BGP decision and every exported route along
// the way satisfied the audited properties.
func TestCampaignUnderInvariants(t *testing.T) {
	invariant.Default.Reset()

	topo, err := topology.Generate(topology.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := testbed.New(topo, testbed.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := discovery.DefaultConfig()
	cfg.Workers = 4
	d := discovery.New(tb, cfg)

	allSites := make([]int, len(tb.Sites))
	for i, s := range tb.Sites {
		allSites[i] = s.ID
	}
	if _, err := d.MeasureRTTsParallel(allSites); err != nil {
		t.Fatal(err)
	}
	reps := d.Representatives()
	if _, err := d.ProviderPrefs(reps); err != nil {
		t.Fatal(err)
	}
	for _, p := range tb.TransitProviders() {
		if len(tb.SitesOfTransit(p)) < 2 {
			continue
		}
		if _, err := d.SitePrefs(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.ProviderPrefsNaive(reps); err != nil {
		t.Fatal(err)
	}
	if d.Experiments == 0 || d.ProbesSent == 0 {
		t.Fatalf("campaign ran no experiments (exps=%d probes=%d)", d.Experiments, d.ProbesSent)
	}

	for _, v := range invariant.Default.Violations() {
		t.Errorf("invariant violated: %s", v)
	}
	// The arrival-order tie-breaker is on by default; the campaign should
	// exercise it, and every resolved tie must have been logged with both
	// candidates.
	ties := invariant.Default.Ties()
	t.Logf("campaign: %d experiments, %d probes, %d arrival-order ties logged (%d retained)",
		d.Experiments, d.ProbesSent, invariant.Default.TieCount(), len(ties))
	for _, tie := range ties {
		if tie.Winner.Arrival >= tie.Loser.Arrival {
			t.Fatalf("logged tie has winner arriving at %v, not before loser at %v", tie.Winner.Arrival, tie.Loser.Arrival)
		}
	}
}
