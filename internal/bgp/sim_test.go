package bgp

import (
	"testing"
	"time"

	"anyopt/internal/geo"
	"anyopt/internal/topology"
)

// lab is a hand-built scenario: an origin AS with sites, a small provider
// hierarchy, and client stubs, giving full control over structure.
type lab struct {
	topo   *topology.Topology
	origin *topology.AS
}

func newLab() *lab {
	topo := topology.NewEmpty(geo.DefaultLatencyModel())
	origin := topo.AddAS("origin", topology.TierOrigin, geo.Coord{Lat: 42, Lon: -71})
	return &lab{topo: topo, origin: origin}
}

// addT1 adds a tier-1 with PoPs at the named cities.
func (l *lab) addT1(name string, cities ...string) *topology.AS {
	first, ok := geo.CityByName(cities[0])
	if !ok {
		panic("unknown city " + cities[0])
	}
	a := l.topo.AddAS(name, topology.TierT1, first.Coord)
	for _, cn := range cities {
		c, ok := geo.CityByName(cn)
		if !ok {
			panic("unknown city " + cn)
		}
		a.PoPs = append(a.PoPs, topology.PoP{City: c.Name, Coord: c.Coord})
	}
	return a
}

func (l *lab) addStub(name, city string, providers ...*topology.AS) *topology.AS {
	c, ok := geo.CityByName(city)
	if !ok {
		panic("unknown city " + city)
	}
	a := l.topo.AddAS(name, topology.TierStub, c.Coord)
	for _, p := range providers {
		pop := l.topo.NearestPoP(p.ASN, c.Coord)
		l.topo.AddLink(a.ASN, p.ASN, topology.CustomerProvider, -1, pop)
	}
	return a
}

// site attaches the origin to provider at the PoP nearest city and returns
// the attachment link. The site is physically colocated with the provider's
// PoP, so it becomes a PoP of the origin AS at the same city.
func (l *lab) site(provider *topology.AS, city string) *topology.Link {
	c, ok := geo.CityByName(city)
	if !ok {
		panic("unknown city " + city)
	}
	l.origin.PoPs = append(l.origin.PoPs, topology.PoP{City: c.Name, Coord: c.Coord})
	siteIdx := len(l.origin.PoPs) - 1
	pop := l.topo.NearestPoP(provider.ASN, c.Coord)
	return l.topo.AddLink(l.origin.ASN, provider.ASN, topology.CustomerProvider, siteIdx, pop)
}

func (l *lab) peerT1s(a, b *topology.AS) {
	l.topo.AddLink(a.ASN, b.ASN, topology.PeerPeer, 0, 0)
}

func target(a *topology.AS) topology.Target {
	return topology.Target{AS: a.ASN, FlowSalt: uint64(a.ASN) * 2654435761}
}

// tieCfg disables the interior-cost step so tests can exercise the
// arrival-order tie-break in isolation.
func tieCfg() Config {
	cfg := DefaultConfig()
	cfg.InteriorCostBucketKm = 0
	return cfg
}

func TestSingleSiteReachability(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York", "London")
	t1b := l.addT1("T1B", "Frankfurt", "Tokyo")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Frankfurt", t1b)
	siteLink := l.site(t1a, "New York")

	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteLink.ID, 0)
	s.Converge()

	// The stub should learn the route via T1B <- (peer) T1A <- origin.
	ri := s.BestRoute(0, stub.ASN)
	if ri == nil {
		t.Fatal("stub has no route")
	}
	if ri.Neighbor != t1b.ASN {
		t.Errorf("stub next hop = AS%d, want T1B (AS%d)", ri.Neighbor, t1b.ASN)
	}
	wantPath := []topology.ASN{t1b.ASN, t1a.ASN, l.origin.ASN}
	if len(ri.Path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", ri.Path, wantPath)
	}
	for i := range wantPath {
		if ri.Path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", ri.Path, wantPath)
		}
	}

	res, ok := s.Forward(0, target(stub))
	if !ok {
		t.Fatal("forward failed")
	}
	if res.EntryLink != siteLink.ID {
		t.Errorf("entry link = %d, want %d", res.EntryLink, siteLink.ID)
	}
	if res.Delay <= 0 {
		t.Error("forwarding delay should be positive")
	}
}

func TestValleyFreeExport(t *testing.T) {
	// origin -> T1A; T1B peers with T1A; T1C peers only with T1B. T1B learns
	// the route (customer route at T1A exports to peers), but must not
	// re-export its peer-learned route to its peer T1C.
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	t1c := l.addT1("T1C", "Tokyo")
	l.peerT1s(t1a, t1b)
	l.peerT1s(t1b, t1c)
	siteLink := l.site(t1a, "New York")

	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteLink.ID, 0)
	s.Converge()

	if ri := s.BestRoute(0, t1c.ASN); ri != nil {
		t.Errorf("T1C learned route %v through peer chain; valley-free export violated", ri.Path)
	}
	if ri := s.BestRoute(0, t1b.ASN); ri == nil {
		t.Error("T1B should learn the route from its peer T1A (customer route at T1A)")
	}
}

func TestCustomerRoutePreferredOverPeer(t *testing.T) {
	// T1A hosts a site (customer route). T1A also peers with T1B which hosts
	// another site. T1A must prefer its own customer route even though both
	// paths have length 1 vs 2.
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	siteA := l.site(t1a, "New York")
	siteB := l.site(t1b, "London")

	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteB.ID, 0) // B first: arrival order would favor B
	s.Engine.RunFor(10 * time.Minute)
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Converge()

	ri := s.BestRoute(0, t1a.ASN)
	if ri == nil {
		t.Fatal("T1A has no route")
	}
	if ri.Link != siteA.ID {
		t.Errorf("T1A best via link %d, want its customer link %d (LOCAL_PREF must dominate arrival order)", ri.Link, siteA.ID)
	}
	if ri.LocalPref != 300 {
		t.Errorf("customer route LOCAL_PREF = %d, want 300", ri.LocalPref)
	}
}

func TestShorterPathPreferred(t *testing.T) {
	// Client has two providers: T1A (direct site) and T1B reached via a
	// transit AS in between (longer path). Shorter AS path must win even if
	// the longer-path announcement arrives first.
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Paris", t1a, t1b)
	siteA := l.site(t1a, "New York")

	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Converge()

	// Paths: via T1A = [T1A, origin] (len 2); via T1B = [T1B, T1A, origin]
	// (len 3).
	ri := s.BestRoute(0, stub.ASN)
	if ri == nil {
		t.Fatal("no route at stub")
	}
	if ri.Neighbor != t1a.ASN {
		t.Errorf("stub chose AS%d, want T1A (shorter path)", ri.Neighbor)
	}
}

func TestArrivalOrderBreaksTies(t *testing.T) {
	// Client multihomed to two tier-1s, each hosting one site: equal
	// LOCAL_PREF (both providers), equal path length. The site announced
	// first must win; reversing the order must flip the catchment.
	runOrder := func(firstA bool) topology.LinkID {
		l := newLab()
		t1a := l.addT1("T1A", "New York")
		t1b := l.addT1("T1B", "London")
		l.peerT1s(t1a, t1b)
		stub := l.addStub("client", "Madrid", t1a, t1b)
		siteA := l.site(t1a, "New York")
		siteB := l.site(t1b, "London")

		s := New(l.topo, tieCfg())
		first, second := siteA, siteB
		if !firstA {
			first, second = siteB, siteA
		}
		s.Announce(0, l.origin.ASN, first.ID, 0)
		s.Engine.RunFor(6 * time.Minute)
		s.Announce(0, l.origin.ASN, second.ID, 0)
		s.Converge()

		res, ok := s.Forward(0, target(stub))
		if !ok {
			panic("no route")
		}
		_ = siteB
		return res.EntryLink
	}

	// Identify which link is which by rebuilding identically: link IDs are
	// deterministic, so compare across the two runs.
	gotAFirst := runOrder(true)
	gotBFirst := runOrder(false)
	if gotAFirst == gotBFirst {
		t.Errorf("announcement order did not flip the tie-broken catchment: both runs landed on link %d", gotAFirst)
	}
}

func TestArrivalOrderDisabledUsesRouterID(t *testing.T) {
	build := func(firstA bool) (topology.LinkID, topology.LinkID, topology.LinkID) {
		l := newLab()
		t1a := l.addT1("T1A", "New York")
		t1b := l.addT1("T1B", "London")
		t1a.RouterID, t1b.RouterID = 1, 2
		l.peerT1s(t1a, t1b)
		stub := l.addStub("client", "Madrid", t1a, t1b)
		siteA := l.site(t1a, "New York")
		siteB := l.site(t1b, "London")

		cfg := tieCfg()
		cfg.ArrivalOrderTieBreak = false
		s := New(l.topo, cfg)
		first, second := siteA, siteB
		if !firstA {
			first, second = siteB, siteA
		}
		s.Announce(0, l.origin.ASN, first.ID, 0)
		s.Engine.RunFor(6 * time.Minute)
		s.Announce(0, l.origin.ASN, second.ID, 0)
		s.Converge()
		res, ok := s.Forward(0, target(stub))
		if !ok {
			panic("no route")
		}
		return res.EntryLink, siteA.ID, siteB.ID
	}
	got1, siteA, _ := build(true)
	got2, _, _ := build(false)
	if got1 != got2 {
		t.Error("with arrival-order tie-break disabled, announcement order still changed the outcome")
	}
	if got1 != siteA {
		t.Errorf("lowest router ID (T1A) should win; got link %d, want %d", got1, siteA)
	}
}

func TestPrependingLengthensPath(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Madrid", t1a, t1b)
	siteA := l.site(t1a, "New York")
	siteB := l.site(t1b, "London")

	s := New(l.topo, DefaultConfig())
	// Announce A first (would win the tie) but with 2 prepends: B's shorter
	// path must beat A's head start.
	s.Announce(0, l.origin.ASN, siteA.ID, 2)
	s.Engine.RunFor(6 * time.Minute)
	s.Announce(0, l.origin.ASN, siteB.ID, 0)
	s.Converge()

	res, ok := s.Forward(0, target(stub))
	if !ok {
		t.Fatal("no route")
	}
	if res.EntryLink != siteB.ID {
		t.Errorf("prepending ignored: catchment link %d, want %d", res.EntryLink, siteB.ID)
	}
}

func TestWithdrawalFailsOver(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Madrid", t1a, t1b)
	siteA := l.site(t1a, "New York")
	siteB := l.site(t1b, "London")

	s := New(l.topo, tieCfg())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Engine.RunFor(6 * time.Minute)
	s.Announce(0, l.origin.ASN, siteB.ID, 0)
	s.Converge()

	res, _ := s.Forward(0, target(stub))
	if res.EntryLink != siteA.ID {
		t.Fatalf("precondition: first-announced site A should hold the catchment")
	}

	s.Withdraw(0, siteA.ID)
	s.Converge()
	res, ok := s.Forward(0, target(stub))
	if !ok {
		t.Fatal("no route after withdrawal of one of two sites")
	}
	if res.EntryLink != siteB.ID {
		t.Errorf("after withdrawing A, catchment link = %d, want %d", res.EntryLink, siteB.ID)
	}

	s.Withdraw(0, siteB.ID)
	s.Converge()
	if _, ok := s.Forward(0, target(stub)); ok {
		t.Error("route survived withdrawal of all sites")
	}
	if n := s.ReachableCount(0); n != 0 {
		t.Errorf("%d ASes still have routes after full withdrawal", n)
	}
}

func TestHotPotatoIntraAS(t *testing.T) {
	// One tier-1 with PoPs in New York and Tokyo hosts two sites (one at
	// each PoP). A client entering at the New York side must reach the NY
	// site; a client entering at the Tokyo side must reach the Tokyo site.
	l := newLab()
	t1 := l.addT1("T1", "New York", "Tokyo")
	east := l.addStub("us-client", "Boston", t1)
	west := l.addStub("jp-client", "Osaka", t1)
	siteNY := l.site(t1, "New York")
	siteTK := l.site(t1, "Tokyo")

	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteNY.ID, 0)
	s.Engine.RunFor(6 * time.Minute)
	s.Announce(0, l.origin.ASN, siteTK.ID, 0)
	s.Converge()

	resE, ok := s.Forward(0, target(east))
	if !ok {
		t.Fatal("east client unroutable")
	}
	if resE.EntryLink != siteNY.ID {
		t.Errorf("east client entered via link %d, want NY site %d (hot potato)", resE.EntryLink, siteNY.ID)
	}
	resW, ok := s.Forward(0, target(west))
	if !ok {
		t.Fatal("west client unroutable")
	}
	if resW.EntryLink != siteTK.ID {
		t.Errorf("west client entered via link %d, want Tokyo site %d (hot potato)", resW.EntryLink, siteTK.ID)
	}
	// The Tokyo client's path should also be far quicker than a trans-
	// pacific detour.
	if resW.Delay > 30*time.Millisecond {
		t.Errorf("jp-client delay %v implausibly high for an in-region site", resW.Delay)
	}
}

func TestAnnouncementOrderDoesNotAffectIntraAS(t *testing.T) {
	// §4.2/§5.1: BGP announcement order must not affect site-level
	// catchments within one AS, because interior routing decides there.
	run := func(nyFirst bool) topology.LinkID {
		l := newLab()
		t1 := l.addT1("T1", "New York", "Tokyo")
		east := l.addStub("us-client", "Boston", t1)
		siteNY := l.site(t1, "New York")
		siteTK := l.site(t1, "Tokyo")
		s := New(l.topo, DefaultConfig())
		first, second := siteNY, siteTK
		if !nyFirst {
			first, second = siteTK, siteNY
		}
		s.Announce(0, l.origin.ASN, first.ID, 0)
		s.Engine.RunFor(6 * time.Minute)
		s.Announce(0, l.origin.ASN, second.ID, 0)
		s.Converge()
		res, ok := s.Forward(0, target(east))
		if !ok {
			panic("unroutable")
		}
		return res.EntryLink
	}
	if run(true) != run(false) {
		t.Error("intra-AS catchment depended on announcement order; hot potato should decide")
	}
}

func TestDuplicateAnnouncementKeepsArrivalTime(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Madrid", t1a, t1b)
	siteA := l.site(t1a, "New York")
	siteB := l.site(t1b, "London")

	s := New(l.topo, tieCfg())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Engine.RunFor(6 * time.Minute)
	s.Announce(0, l.origin.ASN, siteB.ID, 0)
	s.Converge()
	// Re-announce A: a duplicate must not reset A's arrival time (A stays
	// oldest and keeps winning).
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Converge()

	res, _ := s.Forward(0, target(stub))
	if res.EntryLink != siteA.ID {
		t.Errorf("duplicate re-announcement changed catchment to link %d", res.EntryLink)
	}
}

func TestWithdrawUnknownIsNoop(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	siteA := l.site(t1a, "New York")
	s := New(l.topo, DefaultConfig())
	s.Withdraw(0, siteA.ID) // nothing announced yet
	s.Withdraw(7, siteA.ID) // unknown prefix
	s.Converge()
	if n := s.ReachableCount(0); n != 0 {
		t.Errorf("ReachableCount = %d after no-op withdrawals", n)
	}
}

func TestMultiplePrefixesIndependent(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Madrid", t1a, t1b)
	siteA := l.site(t1a, "New York")
	siteB := l.site(t1b, "London")

	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Announce(1, l.origin.ASN, siteB.ID, 0)
	s.Converge()

	r0, ok0 := s.Forward(0, target(stub))
	r1, ok1 := s.Forward(1, target(stub))
	if !ok0 || !ok1 {
		t.Fatal("prefix unroutable")
	}
	if r0.EntryLink != siteA.ID || r1.EntryLink != siteB.ID {
		t.Errorf("prefix catchments crossed: p0→%d p1→%d", r0.EntryLink, r1.EntryLink)
	}
}

func TestAnnouncePanics(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	siteA := l.site(t1a, "New York")
	s := New(l.topo, DefaultConfig())

	for name, fn := range map[string]func(){
		"unknown link":    func() { s.Announce(0, l.origin.ASN, 9999, 0) },
		"foreign link":    func() { s.Announce(0, t1a.ASN+1000, siteA.ID, 0) },
		"negative prepnd": func() { s.Announce(0, l.origin.ASN, siteA.ID, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
