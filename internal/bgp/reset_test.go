package bgp

import (
	"reflect"
	"testing"
	"time"

	"anyopt/internal/topology"
)

// simSnapshot captures every externally observable routing output for prefix
// 0 — per-AS best routes, per-target forwarding results, convergence stats —
// plus the event-level counters that prove a replay ran the same simulation,
// not merely one with the same outcome.
type simSnapshot struct {
	best    map[topology.ASN]RouteInfo
	fwd     map[topology.ASN]ForwardResult
	routed  map[topology.ASN]bool
	stats   ConvergenceStats
	updates uint64
	steps   uint64
}

func snapshotSim(s *Sim, topo *topology.Topology) simSnapshot {
	snap := simSnapshot{
		best:    make(map[topology.ASN]RouteInfo, len(topo.ASes)),
		fwd:     make(map[topology.ASN]ForwardResult, len(topo.Targets)),
		routed:  make(map[topology.ASN]bool, len(topo.Targets)),
		stats:   s.Stats(0),
		updates: s.Updates,
		steps:   s.Engine.Steps(),
	}
	for asn := range topo.ASes {
		if r := s.BestRoute(0, asn); r != nil {
			snap.best[asn] = *r
		}
	}
	for _, tg := range topo.Targets {
		res, ok := s.Forward(0, tg)
		snap.routed[tg.AS] = ok
		if ok {
			snap.fwd[tg.AS] = res
		}
	}
	return snap
}

// announceSpaced runs the standard spaced-announcement experiment: each site
// link announced six minutes after the previous one, then full convergence.
func announceSpaced(s *Sim, origin topology.ASN, links []*topology.Link) {
	for i, l := range links {
		final := l
		s.Engine.Schedule(time.Duration(i)*6*time.Minute, func() {
			s.Announce(0, origin, final.ID, 0)
		})
	}
	s.Converge()
}

// dirtySession drives a session through a messy history — simultaneous
// announcements under a different jitter nonce, a link failure and
// restoration, a withdrawal — so any state Reset fails to clear has every
// chance to leak into the next experiment.
func dirtySession(s *Sim, origin topology.ASN, links []*topology.Link) {
	for _, l := range links {
		s.Announce(0, origin, l.ID, 1)
	}
	s.Converge()
	s.FailLink(links[0].ID)
	s.Converge()
	s.RestoreLink(links[0].ID)
	s.Converge()
	s.Withdraw(0, links[len(links)-1].ID)
	s.Converge()
}

// TestResetReproducesFreshSim is the session-reuse acceptance test at the
// simulator level: a Sim dirtied by a full prior experiment and then Reset
// must replay a reference experiment with byte-identical routes, forwarding
// results, stats, and event counts — including a second reuse generation.
func TestResetReproducesFreshSim(t *testing.T) {
	cfgA := DefaultConfig()
	cfgA.JitterNonce = 42

	fresh, topo, origin, links := buildAnycast(t, topology.TestParams(), cfgA, 1)
	announceSpaced(fresh, origin, links)
	want := snapshotSim(fresh, topo)
	if want.stats.ReachableASes == 0 || want.steps == 0 {
		t.Fatalf("reference experiment is degenerate: %+v", want.stats)
	}

	// The reused session starts from a different configuration and a messy
	// history on the same topology.
	cfgB := DefaultConfig()
	cfgB.JitterNonce = 7
	cfgB.ProcDelayMin = 0
	reused := New(topo, cfgB)
	dirtySession(reused, origin, links)

	for gen := 1; gen <= 2; gen++ {
		reused.Reset(cfgA)
		if reused.Engine.Pending() != 0 || reused.Engine.Now() != 0 || reused.Updates != 0 {
			t.Fatalf("gen %d: Reset left residue: pending=%d now=%v updates=%d",
				gen, reused.Engine.Pending(), reused.Engine.Now(), reused.Updates)
		}
		announceSpaced(reused, origin, links)
		got := snapshotSim(reused, topo)
		if !reflect.DeepEqual(want, got) {
			if !reflect.DeepEqual(want.best, got.best) {
				t.Errorf("gen %d: best routes diverged", gen)
			}
			if !reflect.DeepEqual(want.fwd, got.fwd) || !reflect.DeepEqual(want.routed, got.routed) {
				t.Errorf("gen %d: forwarding results diverged", gen)
			}
			if !reflect.DeepEqual(want.stats, got.stats) {
				t.Errorf("gen %d: stats diverged: %v vs %v", gen, want.stats, got.stats)
			}
			if want.updates != got.updates || want.steps != got.steps {
				t.Errorf("gen %d: event counts diverged: updates %d vs %d, steps %d vs %d",
					gen, want.updates, got.updates, want.steps, got.steps)
			}
			t.Fatalf("gen %d: Reset session diverged from fresh Sim", gen)
		}
		// Dirty it again so generation 2 starts from fresh residue.
		dirtySession(reused, origin, links)
	}
}

// TestResetReplacesConfig pins that Reset installs the new configuration
// rather than leaking the old one: a session Reset to a different jitter
// nonce must reproduce that nonce's fresh-Sim outcome, not its own previous
// one.
func TestResetReplacesConfig(t *testing.T) {
	run := func(nonce uint64) map[topology.ASN]topology.LinkID {
		cfg := DefaultConfig()
		cfg.JitterNonce = nonce
		s, topo, origin, links := buildAnycast(t, topology.TestParams(), cfg, 1)
		for _, l := range links {
			s.Announce(0, origin, l.ID, 0)
		}
		s.Converge()
		return s.CatchmentMap(0, topo.Targets)
	}
	want1, want2 := run(1), run(2)
	if reflect.DeepEqual(want1, want2) {
		t.Fatal("nonces 1 and 2 agree everywhere; config-leak test has no signal")
	}

	cfg := DefaultConfig()
	cfg.JitterNonce = 1
	s, topo, origin, links := buildAnycast(t, topology.TestParams(), cfg, 1)
	for _, nonce := range []uint64{1, 2, 1} {
		cfg.JitterNonce = nonce
		s.Reset(cfg)
		for _, l := range links {
			s.Announce(0, origin, l.ID, 0)
		}
		s.Converge()
		got := s.CatchmentMap(0, topo.Targets)
		want := want1
		if nonce == 2 {
			want = want2
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("nonce %d after Reset diverged from fresh Sim with that nonce", nonce)
		}
	}
}

// TestCatchmentEntryMatchesForward pins the memoized fast path to the
// reference walk: for every target, under spaced and simultaneous
// announcements and across a failure/restore cycle, CatchmentEntry must
// agree with Forward on (entry link, delay, reachability) — and repeated
// queries must agree with themselves once the caches are warm.
func TestCatchmentEntryMatchesForward(t *testing.T) {
	s, topo, origin, links := buildAnycast(t, topology.TestParams(), DefaultConfig(), 2)

	check := func(stage string) {
		t.Helper()
		for round := 0; round < 2; round++ { // cold then warm cache
			for _, tg := range topo.Targets {
				res, ok := s.Forward(0, tg)
				link, delay, ok2 := s.CatchmentEntry(0, tg)
				if ok != ok2 {
					t.Fatalf("%s round %d AS%d: Forward ok=%v, CatchmentEntry ok=%v", stage, round, tg.AS, ok, ok2)
				}
				if !ok {
					continue
				}
				if link != res.EntryLink || delay != res.Delay {
					t.Fatalf("%s round %d AS%d: CatchmentEntry (link=%d delay=%v) != Forward (link=%d delay=%v)",
						stage, round, tg.AS, link, delay, res.EntryLink, res.Delay)
				}
			}
		}
	}

	for i, l := range links {
		final := l
		s.Engine.Schedule(time.Duration(i)*6*time.Minute, func() {
			s.Announce(0, origin, final.ID, 0)
		})
	}
	s.Converge()
	check("spaced")

	s.FailLink(links[0].ID)
	s.Converge()
	check("failed")

	s.RestoreLink(links[0].ID)
	s.Converge()
	check("restored")

	// Simultaneous announcements maximize ties, and with them multipath ASes
	// — the memoization's hardest (uncompressible) case.
	s.WithdrawAll(0)
	s.Converge()
	cfg := DefaultConfig()
	cfg.JitterNonce = 3
	s.Reset(cfg)
	for _, l := range links {
		s.Announce(0, origin, l.ID, 0)
	}
	s.Converge()
	check("simultaneous")
}
