package bgp

import (
	"testing"
	"time"

	"anyopt/internal/topology"
)

func TestFailLinkShiftsCatchment(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Madrid", t1a, t1b)
	siteA := l.site(t1a, "New York")
	siteB := l.site(t1b, "London")

	s := New(l.topo, tieCfg())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Engine.RunFor(6 * time.Minute)
	s.Announce(0, l.origin.ASN, siteB.ID, 0)
	s.Converge()

	res, _ := s.Forward(0, target(stub))
	if res.EntryLink != siteA.ID {
		t.Fatalf("precondition: client should use site A")
	}

	// Site A's transit link dies: the client must fail over to B.
	s.FailLink(siteA.ID)
	s.Converge()
	if !s.LinkFailed(siteA.ID) {
		t.Fatal("link not marked failed")
	}
	res, ok := s.Forward(0, target(stub))
	if !ok {
		t.Fatal("client unroutable after failover")
	}
	if res.EntryLink != siteB.ID {
		t.Fatalf("catchment = link %d, want site B %d", res.EntryLink, siteB.ID)
	}

	// Restoration brings A back as a valid (if no longer oldest) route.
	s.RestoreLink(siteA.ID)
	s.Converge()
	res, ok = s.Forward(0, target(stub))
	if !ok {
		t.Fatal("client unroutable after restore")
	}
	if ri := s.BestRoute(0, t1a.ASN); ri == nil {
		t.Fatal("T1A has no route after restore")
	}
}

func TestFailAllLinksLosesReachability(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	stub := l.addStub("client", "Boston", t1a)
	siteA := l.site(t1a, "New York")

	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Converge()
	if _, ok := s.Forward(0, target(stub)); !ok {
		t.Fatal("precondition: reachable")
	}
	s.FailLink(siteA.ID)
	s.Converge()
	if _, ok := s.Forward(0, target(stub)); ok {
		t.Fatal("still routable with the only origin link down")
	}
	if n := s.ReachableCount(0); n != 0 {
		t.Fatalf("%d ASes still route the prefix", n)
	}
	s.RestoreLink(siteA.ID)
	s.Converge()
	if _, ok := s.Forward(0, target(stub)); !ok {
		t.Fatal("unroutable after restore")
	}
}

func TestFailTransitLinkMidPath(t *testing.T) {
	// Failing a transit link between client and provider forces the client
	// onto its second provider chain.
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	t1b := l.addT1("T1B", "London")
	l.peerT1s(t1a, t1b)
	stub := l.addStub("client", "Madrid", t1a, t1b)
	siteA := l.site(t1a, "New York")

	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Converge()

	ri := s.BestRoute(0, stub.ASN)
	if ri == nil || ri.Neighbor != t1a.ASN {
		t.Fatalf("precondition: client should use T1A directly, got %+v", ri)
	}
	// Fail the client's access link to T1A.
	var accessLink topology.LinkID
	for _, ln := range l.topo.LinksOf(stub.ASN) {
		if ln.Other(stub.ASN) == t1a.ASN {
			accessLink = ln.ID
		}
	}
	s.FailLink(accessLink)
	s.Converge()
	ri = s.BestRoute(0, stub.ASN)
	if ri == nil {
		t.Fatal("no fallback route")
	}
	if ri.Neighbor != t1b.ASN {
		t.Fatalf("fallback via AS%d, want T1B", ri.Neighbor)
	}
}

func TestFailIdempotentAndErrors(t *testing.T) {
	l := newLab()
	t1a := l.addT1("T1A", "New York")
	siteA := l.site(t1a, "New York")
	s := New(l.topo, DefaultConfig())
	s.Announce(0, l.origin.ASN, siteA.ID, 0)
	s.Converge()

	s.FailLink(siteA.ID)
	s.FailLink(siteA.ID) // idempotent
	s.Converge()
	s.RestoreLink(siteA.ID)
	s.RestoreLink(siteA.ID) // idempotent
	s.Converge()
	if n := s.ReachableCount(0); n == 0 {
		t.Fatal("unreachable after double restore")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("FailLink on unknown link did not panic")
		}
	}()
	s.FailLink(9999)
}

func TestMEDSteersIntraProviderCatchment(t *testing.T) {
	// One provider, two sites (NY and London). A Boston client would
	// normally hot-potato to NY; a lower MED on the London link must win
	// because MED precedes interior cost.
	run := func(medNY, medLondon int) topology.LinkID {
		l := newLab()
		t1 := l.addT1("T1", "New York", "London")
		stub := l.addStub("client", "Boston", t1)
		siteNY := l.site(t1, "New York")
		siteLN := l.site(t1, "London")
		s := New(l.topo, DefaultConfig())
		s.AnnounceMED(0, l.origin.ASN, siteNY.ID, 0, medNY)
		s.AnnounceMED(0, l.origin.ASN, siteLN.ID, 0, medLondon)
		s.Converge()
		res, ok := s.Forward(0, target(stub))
		if !ok {
			panic("unroutable")
		}
		if res.EntryLink == siteNY.ID {
			return 0
		}
		return 1
	}
	if got := run(0, 0); got != 0 {
		t.Errorf("equal MED: Boston client should hot-potato to NY, got site %d", got)
	}
	if got := run(10, 0); got != 1 {
		t.Errorf("London MED 0 vs NY 10: client should be steered to London, got site %d", got)
	}
	if got := run(0, 10); got != 0 {
		t.Errorf("NY MED 0 vs London 10: client should stay at NY, got site %d", got)
	}
}

func TestMEDSurvivesWithdrawReannounce(t *testing.T) {
	l := newLab()
	t1 := l.addT1("T1", "New York", "London")
	stub := l.addStub("client", "Boston", t1)
	siteNY := l.site(t1, "New York")
	siteLN := l.site(t1, "London")
	s := New(l.topo, DefaultConfig())
	s.AnnounceMED(0, l.origin.ASN, siteNY.ID, 0, 10)
	s.AnnounceMED(0, l.origin.ASN, siteLN.ID, 0, 0)
	s.Converge()
	// Withdraw and re-announce NY without MED: it should now win on hot
	// potato again.
	s.Withdraw(0, siteNY.ID)
	s.Converge()
	s.Announce(0, l.origin.ASN, siteNY.ID, 0)
	s.Converge()
	res, _ := s.Forward(0, target(stub))
	if res.EntryLink != siteNY.ID {
		t.Errorf("after MED-free re-announce, Boston client at link %d, want NY", res.EntryLink)
	}
}
