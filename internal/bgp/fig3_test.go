package bgp

import (
	"testing"
	"time"

	"anyopt/internal/core/prefs"
	"anyopt/internal/geo"
	"anyopt/internal/topology"
)

// TestFigure3PolicyCycle reconstructs the paper's Figure 3: a client network
// whose pairwise preferences over three anycast sites are cyclic (A > B,
// C > A, B > C) because an intermediate AS assigns a higher LOCAL_PREF to a
// customer-learned route. This violates the §4.1 sufficient condition
// (announce only to tier-1 transits), and the simulator must reproduce the
// cycle — it is the reason AnyOpt restricts its testbed to tier-1-only
// announcements.
//
// Construction (provider→customer arrows as in the figure):
//
//	site A: origin → ASa → (customer of) T1; T1 peers with AS1
//	site B: origin → ASb → M1 → M2 → T2; dst's second provider AS5 buys from T2
//	site C: origin → ASc → Z → Y → X → AS1 (a deep customer chain of AS1)
//	dst buys from AS4 (customer of AS1) and from AS5
//
// Path lengths at dst: A = 5 hops, B = 6, C = 7; but AS1 prefers C
// (customer route) over A (peer route), suppressing A whenever C is
// announced.
func TestFigure3PolicyCycle(t *testing.T) {
	topo := topology.NewEmpty(geo.DefaultLatencyModel())
	coord := func(name string) geo.Coord {
		c, ok := geo.CityByName(name)
		if !ok {
			t.Fatalf("unknown city %s", name)
		}
		return c.Coord
	}
	origin := topo.AddAS("origin", topology.TierOrigin, coord("Boston"))
	add := func(name, city string) *topology.AS {
		return topo.AddAS(name, topology.TierTransit, coord(city))
	}
	asa := add("ASa", "New York")
	t1 := add("T1", "Chicago")
	as1 := add("AS1", "Ashburn")
	x := add("X", "Dallas")
	y := add("Y", "Denver")
	z := add("Z", "Phoenix")
	asc := add("ASc", "Seattle")
	asb := add("ASb", "London")
	m1 := add("M1", "Paris")
	m2 := add("M2", "Madrid")
	t2 := add("T2", "Frankfurt")
	as4 := add("AS4", "Miami")
	as5 := add("AS5", "Atlanta")
	dst := topo.AddAS("dst", topology.TierStub, coord("Houston"))

	c2p := func(cust, prov *topology.AS) {
		topo.AddLink(cust.ASN, prov.ASN, topology.CustomerProvider, -1, -1)
	}
	// Site A's chain: ASa is T1's customer; T1 peers with AS1 (so AS1 hears
	// A as a *peer* route).
	c2p(asa, t1)
	topo.AddLink(t1.ASN, as1.ASN, topology.PeerPeer, -1, -1)
	// Site C's chain: deep customer cone under AS1 (AS1 hears C as a
	// *customer* route).
	c2p(x, as1)
	c2p(y, x)
	c2p(z, y)
	c2p(asc, z)
	// Site B's chain toward dst's second provider.
	c2p(m1, t2)
	c2p(m2, m1)
	c2p(asb, m2)
	// dst's providers.
	c2p(as4, as1)
	c2p(as5, t2)
	c2p(dst, as4)
	c2p(dst, as5)

	siteA := topo.AddLink(origin.ASN, asa.ASN, topology.CustomerProvider, -1, -1)
	siteB := topo.AddLink(origin.ASN, asb.ASN, topology.CustomerProvider, -1, -1)
	siteC := topo.AddLink(origin.ASN, asc.ASN, topology.CustomerProvider, -1, -1)

	links := map[prefs.Item]topology.LinkID{
		'A': siteA.ID, 'B': siteB.ID, 'C': siteC.ID,
	}
	// pairwise runs the order-controlled pair experiment and returns dst's
	// winner under both announcement orders.
	pairwise := func(i, j prefs.Item) (prefs.Item, prefs.Item) {
		winner := func(first, second prefs.Item) prefs.Item {
			s := New(topo, DefaultConfig())
			s.Announce(0, origin.ASN, links[first], 0)
			s.Engine.RunFor(6 * time.Minute)
			s.Announce(0, origin.ASN, links[second], 0)
			s.Converge()
			res, ok := s.Forward(0, topology.Target{AS: dst.ASN, FlowSalt: 42})
			if !ok {
				t.Fatalf("dst unroutable with %c+%c announced", first, second)
			}
			for item, link := range links {
				if link == res.EntryLink {
					return item
				}
			}
			t.Fatalf("unknown entry link %d", res.EntryLink)
			return 0
		}
		return winner(i, j), winner(j, i)
	}

	store, err := prefs.NewStore([]prefs.Item{'A', 'B', 'C'})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]prefs.Item{{'A', 'B'}, {'A', 'C'}, {'B', 'C'}} {
		wIJ, wJI := pairwise(pair[0], pair[1])
		if wIJ != wJI {
			t.Fatalf("pair %c/%c order-dependent (%c vs %c); Figure 3's cycle is policy-induced, not a tie",
				pair[0], pair[1], wIJ, wJI)
		}
		if err := store.RecordOrdered(prefs.Client(dst.ASN), pair[0], pair[1], wIJ, wJI); err != nil {
			t.Fatal(err)
		}
	}

	cp := store.Get(prefs.Client(dst.ASN))
	check := func(i, j, want prefs.Item) {
		rel, w := cp.Relation(i, j)
		if rel != prefs.RelStrict || w != want {
			t.Errorf("pair %c/%c: relation %v winner %c, want strict %c", i, j, rel, w, want)
		}
	}
	check('A', 'B', 'A') // shorter provider path wins
	check('A', 'C', 'C') // AS1's customer preference suppresses A
	check('B', 'C', 'B') // same LOC_PREF at dst, B is shorter

	if cp.HasTotalOrder([]prefs.Item{'A', 'B', 'C'}) {
		t.Error("Figure 3 client has a total order; the policy cycle was not reproduced")
	}

	// With all three sites announced, the client still lands somewhere —
	// the cycle breaks prediction, not reachability.
	s := New(topo, DefaultConfig())
	for _, id := range []topology.LinkID{siteA.ID, siteB.ID, siteC.ID} {
		s.Announce(0, origin.ASN, id, 0)
	}
	s.Converge()
	if _, ok := s.Forward(0, topology.Target{AS: dst.ASN, FlowSalt: 42}); !ok {
		t.Error("dst unroutable with all three sites announced")
	}
}
