package bgp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"anyopt/internal/topology"
)

// ConvergenceStats summarizes one converged routing state for a prefix.
type ConvergenceStats struct {
	// ReachableASes counts ASes holding a route.
	ReachableASes int
	// Routes counts Adj-RIB-In entries across all ASes (alternate paths
	// included).
	Routes int
	// PathLengths histograms best-path AS-path lengths.
	PathLengths map[int]int
	// TiedBest counts ASes whose candidate set (equal LOCAL_PREF and path
	// length) holds more than one route — the population whose selection
	// rests on the lower tie-break steps.
	TiedBest int
	// LastUpdate is the virtual time of the most recent best-route arrival,
	// a lower bound on when the network settled.
	LastUpdate time.Duration
}

// Stats computes convergence statistics for prefix p.
func (s *Sim) Stats(p PrefixID) ConvergenceStats {
	st := ConvergenceStats{PathLengths: map[int]int{}}
	ps := s.prefixes[p]
	if ps == nil {
		return st
	}
	for _, rib := range ps.ribs {
		st.Routes += len(rib.in)
		if rib.best == nil {
			continue
		}
		st.ReachableASes++
		st.PathLengths[rib.best.pathLen()]++
		if len(rib.candidates) > 1 {
			st.TiedBest++
		}
		if rib.best.arrival > st.LastUpdate {
			st.LastUpdate = rib.best.arrival
		}
	}
	return st
}

// String renders the stats compactly.
func (st ConvergenceStats) String() string {
	var lens []int
	for l := range st.PathLengths {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	var b strings.Builder
	fmt.Fprintf(&b, "reachable=%d routes=%d tied=%d settled=%v lens=",
		st.ReachableASes, st.Routes, st.TiedBest, st.LastUpdate.Round(time.Millisecond))
	for i, l := range lens {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", l, st.PathLengths[l])
	}
	return b.String()
}

// MeanPathLength returns the average best-path length over reachable ASes.
func (st ConvergenceStats) MeanPathLength() float64 {
	if st.ReachableASes == 0 {
		return 0
	}
	sum := 0
	for l, n := range st.PathLengths {
		sum += l * n
	}
	return float64(sum) / float64(st.ReachableASes)
}

// CatchmentSizes tallies targets per origin link under the current state.
func (s *Sim) CatchmentSizes(p PrefixID, targets []topology.Target) map[topology.LinkID]int {
	out := map[topology.LinkID]int{}
	for _, tg := range targets {
		if link, _, ok := s.CatchmentEntry(p, tg); ok {
			out[link]++
		}
	}
	return out
}
