package bgp

import (
	"fmt"
	"sort"

	"anyopt/internal/topology"
)

// FailLink takes a link down: routes learned over it are removed at both
// endpoints (triggering withdrawals and reconvergence downstream) and
// in-flight or future updates over the link are dropped. Failing an already
// failed link is a no-op.
func (s *Sim) FailLink(id topology.LinkID) {
	l := s.Topo.Link(id)
	if l == nil {
		panic(fmt.Sprintf("bgp: FailLink on unknown link %d", id))
	}
	if s.failed[id] {
		return
	}
	s.failed[id] = true
	for _, ps := range s.orderedPrefixStates() {
		for _, end := range []topology.ASN{l.From, l.To} {
			rib := ps.ribs[end]
			if rib == nil {
				continue
			}
			if _, ok := rib.in[id]; !ok {
				continue
			}
			delete(rib.in, id)
			s.runDecision(psID(s, ps), ps, end, rib)
		}
	}
}

// RestoreLink brings a failed link back. Both endpoints re-advertise their
// current best route over it (as a BGP session re-establishment would), and
// the origin re-announces the prefix if the link carried an announcement.
// Note that restored routes are new — their arrival times reset, so
// age-based ties may resolve differently than before the failure, exactly
// as with real routers.
func (s *Sim) RestoreLink(id topology.LinkID) {
	l := s.Topo.Link(id)
	if l == nil {
		panic(fmt.Sprintf("bgp: RestoreLink on unknown link %d", id))
	}
	if !s.failed[id] {
		return
	}
	delete(s.failed, id)
	for _, ps := range s.orderedPrefixStates() {
		p := psID(s, ps)
		// Origin-side announcements resume.
		if prepend, ok := ps.announced[id]; ok {
			path := s.paths.alloc(1 + prepend)
			for i := range path {
				path[i] = ps.origin
			}
			s.deliver(p, l, l.Other(ps.origin), path, ps.meds[id])
		}
		// Each endpoint re-exports its best to the other, per policy.
		for _, end := range []topology.ASN{l.From, l.To} {
			other := l.Other(end)
			if end == ps.origin || other == ps.origin {
				continue
			}
			rib := ps.ribs[end]
			if rib == nil || rib.best == nil || rib.best.link.ID == id {
				continue
			}
			if !exportAllowed(rib.best.link.RoleOf(end), l.RoleOf(end)) {
				continue
			}
			path := s.paths.newPath(end, rib.best.path)
			s.deliver(p, l, other, path, 0)
		}
	}
}

// LinkFailed reports whether the link is currently down.
func (s *Sim) LinkFailed(id topology.LinkID) bool { return s.failed[id] }

// orderedPrefixStates returns prefix states in PrefixID order for
// deterministic iteration.
func (s *Sim) orderedPrefixStates() []*prefixState {
	ids := make([]int, 0, len(s.prefixes))
	for p := range s.prefixes {
		ids = append(ids, int(p))
	}
	sort.Ints(ids)
	out := make([]*prefixState, len(ids))
	for i, p := range ids {
		out[i] = s.prefixes[PrefixID(p)]
	}
	return out
}

// psID recovers a prefix state's ID (states are few; linear scan is fine).
func psID(s *Sim, target *prefixState) PrefixID {
	for p, ps := range s.prefixes {
		if ps == target {
			return p
		}
	}
	panic("bgp: unknown prefix state")
}
