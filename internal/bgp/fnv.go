package bgp

// Inline FNV-64a over little-endian uint64 words, byte-identical to feeding
// hash/fnv the same eight bytes per word. The simulator hashes on every
// delivered update (procDelay) and every multipath forwarding decision
// (flowIndex); going through hash/fnv allocates a hasher per call, which
// dominated the per-experiment allocation profile.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvU64 folds the eight little-endian bytes of v into h.
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}
