package wire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Path attribute type codes (RFC 4271 §5.1).
const (
	AttrOrigin    = 1
	AttrASPath    = 2
	AttrNextHop   = 3
	AttrMED       = 4
	AttrLocalPref = 5
	AttrCommunity = 8 // RFC 1997
)

// Attribute flags.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// ORIGIN codes.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	ASSet      = 1
	ASSequence = 2
)

// ASPathSegment is one segment of an AS_PATH attribute. ASNs are 4 octets
// (RFC 6793 new-style speakers).
type ASPathSegment struct {
	Type uint8 // ASSet or ASSequence
	ASNs []uint32
}

// PathAttrs is the decoded attribute set AnyOpt cares about.
type PathAttrs struct {
	Origin      uint8
	ASPath      []ASPathSegment
	NextHop     netip.Addr
	MED         uint32
	HasMED      bool
	LocalPref   uint32
	HasLocal    bool
	Communities []uint32
}

// ASPathLen returns the path length as the decision process counts it: each
// ASN in a sequence counts 1, an entire set counts 1 (RFC 4271 §9.1.2.2).
func (a *PathAttrs) ASPathLen() int {
	n := 0
	for _, seg := range a.ASPath {
		if seg.Type == ASSet {
			n++
		} else {
			n += len(seg.ASNs)
		}
	}
	return n
}

// FlatASPath returns the concatenated ASNs of all sequence segments.
func (a *PathAttrs) FlatASPath() []uint32 {
	var out []uint32
	for _, seg := range a.ASPath {
		out = append(out, seg.ASNs...)
	}
	return out
}

// Update is a BGP UPDATE message (§4.3).
type Update struct {
	Withdrawn []netip.Prefix
	Attrs     *PathAttrs // nil when the update only withdraws
	NLRI      []netip.Prefix
}

// Type implements Message.
func (*Update) Type() uint8 { return TypeUpdate }

func (u *Update) body() ([]byte, error) {
	withdrawn, err := marshalPrefixes(u.Withdrawn)
	if err != nil {
		return nil, err
	}
	var attrs []byte
	if u.Attrs != nil {
		attrs, err = marshalAttrs(u.Attrs)
		if err != nil {
			return nil, err
		}
	} else if len(u.NLRI) > 0 {
		return nil, fmt.Errorf("wire: UPDATE with NLRI requires path attributes")
	}
	nlri, err := marshalPrefixes(u.NLRI)
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, 4+len(withdrawn)+len(attrs)+len(nlri))
	b = binary.BigEndian.AppendUint16(b, uint16(len(withdrawn)))
	b = append(b, withdrawn...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(attrs)))
	b = append(b, attrs...)
	b = append(b, nlri...)
	return b, nil
}

func parseUpdate(b []byte) (*Update, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: UPDATE truncated")
	}
	wl := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+wl+2 {
		return nil, fmt.Errorf("wire: UPDATE withdrawn routes truncated")
	}
	withdrawn, err := parsePrefixes(b[2 : 2+wl])
	if err != nil {
		return nil, fmt.Errorf("wire: withdrawn routes: %w", err)
	}
	rest := b[2+wl:]
	al := int(binary.BigEndian.Uint16(rest))
	if len(rest) < 2+al {
		return nil, fmt.Errorf("wire: UPDATE attributes truncated")
	}
	var attrs *PathAttrs
	if al > 0 {
		attrs, err = parseAttrs(rest[2 : 2+al])
		if err != nil {
			return nil, err
		}
	}
	nlri, err := parsePrefixes(rest[2+al:])
	if err != nil {
		return nil, fmt.Errorf("wire: NLRI: %w", err)
	}
	if len(nlri) > 0 && attrs == nil {
		return nil, fmt.Errorf("wire: UPDATE advertises NLRI without attributes")
	}
	return &Update{Withdrawn: withdrawn, Attrs: attrs, NLRI: nlri}, nil
}

func appendAttr(b []byte, flags, code uint8, val []byte) []byte {
	if len(val) > 255 {
		flags |= flagExtLen
	}
	b = append(b, flags, code)
	if flags&flagExtLen != 0 {
		b = binary.BigEndian.AppendUint16(b, uint16(len(val)))
	} else {
		b = append(b, uint8(len(val)))
	}
	return append(b, val...)
}

func marshalAttrs(a *PathAttrs) ([]byte, error) {
	var b []byte
	// ORIGIN (well-known mandatory).
	b = appendAttr(b, flagTransitive, AttrOrigin, []byte{a.Origin})
	// AS_PATH (well-known mandatory).
	var path []byte
	for _, seg := range a.ASPath {
		if len(seg.ASNs) > 255 {
			return nil, fmt.Errorf("wire: AS_PATH segment with %d ASNs", len(seg.ASNs))
		}
		if seg.Type != ASSet && seg.Type != ASSequence {
			return nil, fmt.Errorf("wire: bad AS_PATH segment type %d", seg.Type)
		}
		path = append(path, seg.Type, uint8(len(seg.ASNs)))
		for _, asn := range seg.ASNs {
			path = binary.BigEndian.AppendUint32(path, asn)
		}
	}
	b = appendAttr(b, flagTransitive, AttrASPath, path)
	// NEXT_HOP (well-known mandatory).
	if !a.NextHop.Is4() {
		return nil, fmt.Errorf("wire: NEXT_HOP %v is not IPv4", a.NextHop)
	}
	nh := a.NextHop.As4()
	b = appendAttr(b, flagTransitive, AttrNextHop, nh[:])
	if a.HasMED {
		b = appendAttr(b, flagOptional, AttrMED, binary.BigEndian.AppendUint32(nil, a.MED))
	}
	if a.HasLocal {
		b = appendAttr(b, flagTransitive, AttrLocalPref, binary.BigEndian.AppendUint32(nil, a.LocalPref))
	}
	if len(a.Communities) > 0 {
		var cs []byte
		for _, c := range a.Communities {
			cs = binary.BigEndian.AppendUint32(cs, c)
		}
		b = appendAttr(b, flagOptional|flagTransitive, AttrCommunity, cs)
	}
	return b, nil
}

func parseAttrs(b []byte) (*PathAttrs, error) {
	a := &PathAttrs{}
	seenOrigin, seenPath, seenNH := false, false, false
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, fmt.Errorf("wire: attribute header truncated")
		}
		flags, code := b[0], b[1]
		var alen, off int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return nil, fmt.Errorf("wire: extended attribute header truncated")
			}
			alen, off = int(binary.BigEndian.Uint16(b[2:])), 4
		} else {
			alen, off = int(b[2]), 3
		}
		if len(b) < off+alen {
			return nil, fmt.Errorf("wire: attribute %d truncated", code)
		}
		val := b[off : off+alen]
		switch code {
		case AttrOrigin:
			if alen != 1 {
				return nil, fmt.Errorf("wire: ORIGIN length %d", alen)
			}
			if val[0] > OriginIncomplete {
				return nil, fmt.Errorf("wire: ORIGIN code %d", val[0])
			}
			a.Origin, seenOrigin = val[0], true
		case AttrASPath:
			segs, err := parseASPath(val)
			if err != nil {
				return nil, err
			}
			a.ASPath, seenPath = segs, true
		case AttrNextHop:
			if alen != 4 {
				return nil, fmt.Errorf("wire: NEXT_HOP length %d", alen)
			}
			a.NextHop, seenNH = netip.AddrFrom4([4]byte(val)), true
		case AttrMED:
			if alen != 4 {
				return nil, fmt.Errorf("wire: MED length %d", alen)
			}
			a.MED, a.HasMED = binary.BigEndian.Uint32(val), true
		case AttrLocalPref:
			if alen != 4 {
				return nil, fmt.Errorf("wire: LOCAL_PREF length %d", alen)
			}
			a.LocalPref, a.HasLocal = binary.BigEndian.Uint32(val), true
		case AttrCommunity:
			if alen%4 != 0 {
				return nil, fmt.Errorf("wire: COMMUNITY length %d", alen)
			}
			for i := 0; i < alen; i += 4 {
				a.Communities = append(a.Communities, binary.BigEndian.Uint32(val[i:]))
			}
		default:
			// Unknown optional attributes are tolerated; unknown well-known
			// attributes are an error (RFC 4271 §6.3).
			if flags&flagOptional == 0 {
				return nil, fmt.Errorf("wire: unrecognized well-known attribute %d", code)
			}
		}
		b = b[off+alen:]
	}
	if !seenOrigin || !seenPath || !seenNH {
		return nil, fmt.Errorf("wire: missing mandatory attribute (origin=%v path=%v nexthop=%v)",
			seenOrigin, seenPath, seenNH)
	}
	return a, nil
}

func parseASPath(b []byte) ([]ASPathSegment, error) {
	var segs []ASPathSegment
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("wire: AS_PATH segment header truncated")
		}
		segType, n := b[0], int(b[1])
		if segType != ASSet && segType != ASSequence {
			return nil, fmt.Errorf("wire: AS_PATH segment type %d", segType)
		}
		if len(b) < 2+4*n {
			return nil, fmt.Errorf("wire: AS_PATH segment truncated")
		}
		seg := ASPathSegment{Type: segType}
		for i := 0; i < n; i++ {
			seg.ASNs = append(seg.ASNs, binary.BigEndian.Uint32(b[2+4*i:]))
		}
		segs = append(segs, seg)
		b = b[2+4*n:]
	}
	return segs, nil
}
