package wire

import (
	"bytes"
	"net/netip"
	"testing"
)

// fuzzSeeds marshals one valid message of every type so the fuzzer starts
// from well-formed wire images rather than discovering the 16-byte marker by
// chance.
func fuzzSeeds(f *testing.F) {
	seeds := []Message{
		&Keepalive{},
		&Open{Version: 4, AS: 65001, HoldTime: 90, RouterID: 0x0a000001},
		&Open{Version: 4, AS: 23456, HoldTime: 0, RouterID: 1, OptParams: []byte{2, 0}},
		&Notification{Code: 6, Subcode: 2, Data: []byte("shutdown")},
		&Update{
			Attrs: &PathAttrs{
				Origin: OriginIGP,
				ASPath: []ASPathSegment{
					{Type: ASSequence, ASNs: []uint32{65001, 65002}},
					{Type: ASSet, ASNs: []uint32{64512, 64513}},
				},
				NextHop:     netip.MustParseAddr("10.0.0.1"),
				MED:         7,
				HasMED:      true,
				LocalPref:   200,
				HasLocal:    true,
				Communities: []uint32{0xFFFF0001},
			},
			NLRI: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
		},
		&Update{Withdrawn: []netip.Prefix{
			netip.MustParsePrefix("198.51.100.0/25"),
			netip.MustParsePrefix("0.0.0.0/0"),
		}},
	}
	for _, m := range seeds {
		b, err := Marshal(m)
		if err != nil {
			f.Fatalf("marshaling seed %T: %v", m, err)
		}
		f.Add(b)
	}
	// A truncated header and a bad marker exercise the error paths.
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add(make([]byte, HeaderLen))
}

// FuzzUpdateDecode is the round-trip property for the wire codec: any input
// Parse accepts must re-marshal, and the re-marshaled form must be a fixed
// point — Parse(Marshal(m)) marshals to the identical bytes. This pins the
// encoder to a canonical form and catches any parser state that cannot be
// re-encoded.
func FuzzUpdateDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return // rejected inputs are out of scope; we only require no panic
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("Parse accepted %x but Marshal rejected the result: %v", data, err)
		}
		m2, err := Parse(out)
		if err != nil {
			t.Fatalf("Marshal produced bytes Parse rejects: %v\ninput:  %x\noutput: %x", err, data, out)
		}
		out2, err := Marshal(m2)
		if err != nil {
			t.Fatalf("second Marshal failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round-trip is not a fixed point:\nfirst:  %x\nsecond: %x", out, out2)
		}
	})
}
