// Package wire implements BGP-4 message encoding and decoding (RFC 4271,
// with 4-octet AS numbers per RFC 6793 carried in AS_PATH).
//
// The paper's orchestrator runs GoBGP and injects anycast announcements over
// GRE-tunneled sessions to the testbed's routers. This package plus package
// speaker play that role here: announcements enter the simulation through a
// genuine, byte-exact BGP session, so the integration tests cover the same
// control-plane path a production deployment would use.
package wire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Message types (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// HeaderLen is the fixed BGP message header size.
const HeaderLen = 19

// MaxMessageLen is the maximum BGP message size.
const MaxMessageLen = 4096

// Marker is the all-ones marker field required by RFC 4271.
var marker = [16]byte{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// Message is any BGP message body.
type Message interface {
	// Type returns the message type code.
	Type() uint8
	// body serializes the message after the common header.
	body() ([]byte, error)
}

// Marshal frames a message with the BGP header.
func Marshal(m Message) ([]byte, error) {
	body, err := m.body()
	if err != nil {
		return nil, err
	}
	total := HeaderLen + len(body)
	if total > MaxMessageLen {
		return nil, fmt.Errorf("wire: message length %d exceeds %d", total, MaxMessageLen)
	}
	b := make([]byte, total)
	copy(b, marker[:])
	binary.BigEndian.PutUint16(b[16:], uint16(total))
	b[18] = m.Type()
	copy(b[HeaderLen:], body)
	return b, nil
}

// ParseHeader validates a message header and returns the type and total
// message length.
func ParseHeader(b []byte) (msgType uint8, length int, err error) {
	if len(b) < HeaderLen {
		return 0, 0, fmt.Errorf("wire: header truncated: %d bytes", len(b))
	}
	for i := 0; i < 16; i++ {
		if b[i] != 0xff {
			return 0, 0, fmt.Errorf("wire: bad marker byte %#x at %d", b[i], i)
		}
	}
	length = int(binary.BigEndian.Uint16(b[16:]))
	msgType = b[18]
	if length < HeaderLen || length > MaxMessageLen {
		return 0, 0, fmt.Errorf("wire: bad message length %d", length)
	}
	switch msgType {
	case TypeOpen, TypeUpdate, TypeNotification, TypeKeepalive:
	default:
		return 0, 0, fmt.Errorf("wire: unknown message type %d", msgType)
	}
	return msgType, length, nil
}

// Parse decodes a complete framed message.
func Parse(b []byte) (Message, error) {
	msgType, length, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	if len(b) < length {
		return nil, fmt.Errorf("wire: message truncated: have %d of %d bytes", len(b), length)
	}
	body := b[HeaderLen:length]
	switch msgType {
	case TypeOpen:
		return parseOpen(body)
	case TypeUpdate:
		return parseUpdate(body)
	case TypeNotification:
		return parseNotification(body)
	case TypeKeepalive:
		if len(body) != 0 {
			return nil, fmt.Errorf("wire: KEEPALIVE with %d body bytes", len(body))
		}
		return &Keepalive{}, nil
	}
	panic("unreachable")
}

// Open is a BGP OPEN message (§4.2).
type Open struct {
	Version  uint8
	AS       uint16 // AS_TRANS (23456) when the real ASN needs 4 octets
	HoldTime uint16
	RouterID uint32
	// OptParams carries raw optional parameters (e.g., capabilities).
	OptParams []byte
}

// Type implements Message.
func (*Open) Type() uint8 { return TypeOpen }

func (o *Open) body() ([]byte, error) {
	if len(o.OptParams) > 255 {
		return nil, fmt.Errorf("wire: optional parameters too long: %d", len(o.OptParams))
	}
	b := make([]byte, 10+len(o.OptParams))
	b[0] = o.Version
	binary.BigEndian.PutUint16(b[1:], o.AS)
	binary.BigEndian.PutUint16(b[3:], o.HoldTime)
	binary.BigEndian.PutUint32(b[5:], o.RouterID)
	b[9] = uint8(len(o.OptParams))
	copy(b[10:], o.OptParams)
	return b, nil
}

func parseOpen(b []byte) (*Open, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("wire: OPEN truncated: %d bytes", len(b))
	}
	o := &Open{
		Version:  b[0],
		AS:       binary.BigEndian.Uint16(b[1:]),
		HoldTime: binary.BigEndian.Uint16(b[3:]),
		RouterID: binary.BigEndian.Uint32(b[5:]),
	}
	optLen := int(b[9])
	if len(b) != 10+optLen {
		return nil, fmt.Errorf("wire: OPEN optional parameter length %d does not match body", optLen)
	}
	o.OptParams = append([]byte(nil), b[10:]...)
	return o, nil
}

// Keepalive is a BGP KEEPALIVE message (§4.4).
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() uint8 { return TypeKeepalive }

func (*Keepalive) body() ([]byte, error) { return nil, nil }

// Notification is a BGP NOTIFICATION message (§4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() uint8 { return TypeNotification }

func (n *Notification) body() ([]byte, error) {
	b := make([]byte, 2+len(n.Data))
	b[0] = n.Code
	b[1] = n.Subcode
	copy(b[2:], n.Data)
	return b, nil
}

func parseNotification(b []byte) (*Notification, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("wire: NOTIFICATION truncated")
	}
	return &Notification{Code: b[0], Subcode: b[1], Data: append([]byte(nil), b[2:]...)}, nil
}

func (n *Notification) Error() string {
	return fmt.Sprintf("bgp notification: code %d subcode %d", n.Code, n.Subcode)
}

// IPv4Prefix is an NLRI entry.
type IPv4Prefix struct {
	Prefix netip.Prefix
}

func marshalPrefixes(ps []netip.Prefix) ([]byte, error) {
	var out []byte
	for _, p := range ps {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("wire: non-IPv4 prefix %v", p)
		}
		bits := p.Bits()
		out = append(out, byte(bits))
		a := p.Addr().As4()
		out = append(out, a[:(bits+7)/8]...)
	}
	return out, nil
}

func parsePrefixes(b []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, fmt.Errorf("wire: prefix length %d > 32", bits)
		}
		n := (bits + 7) / 8
		if len(b) < 1+n {
			return nil, fmt.Errorf("wire: prefix truncated")
		}
		var a [4]byte
		copy(a[:], b[1:1+n])
		p := netip.PrefixFrom(netip.AddrFrom4(a), bits)
		if p.Masked() != p {
			return nil, fmt.Errorf("wire: prefix %v has bits set beyond its length", p)
		}
		out = append(out, p)
		b = b[1+n:]
	}
	return out, nil
}
