package wire

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustMarshal(t *testing.T, m Message) []byte {
	t.Helper()
	b, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return b
}

func TestKeepaliveRoundTrip(t *testing.T) {
	b := mustMarshal(t, &Keepalive{})
	if len(b) != HeaderLen {
		t.Errorf("KEEPALIVE length = %d, want %d", len(b), HeaderLen)
	}
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*Keepalive); !ok {
		t.Errorf("parsed %T, want *Keepalive", m)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{Version: 4, AS: 64512, HoldTime: 90, RouterID: 0x0a000001, OptParams: []byte{2, 0}}
	m, err := Parse(mustMarshal(t, o))
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Open)
	if !reflect.DeepEqual(got, o) {
		t.Errorf("round trip: %+v, want %+v", got, o)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: 6, Subcode: 2, Data: []byte("shutdown")}
	m, err := Parse(mustMarshal(t, n))
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Notification)
	if got.Code != 6 || got.Subcode != 2 || !bytes.Equal(got.Data, n.Data) {
		t.Errorf("round trip: %+v", got)
	}
	if got.Error() == "" {
		t.Error("empty error string")
	}
}

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func testAttrs() *PathAttrs {
	return &PathAttrs{
		Origin: OriginIGP,
		ASPath: []ASPathSegment{
			{Type: ASSequence, ASNs: []uint32{64512, 3356, 174}},
		},
		NextHop:     netip.MustParseAddr("192.0.2.1"),
		MED:         50,
		HasMED:      true,
		LocalPref:   200,
		HasLocal:    true,
		Communities: []uint32{0xfde80001, 0xfde80002},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := &Update{
		Withdrawn: []netip.Prefix{pfx("203.0.113.0/24")},
		Attrs:     testAttrs(),
		NLRI:      []netip.Prefix{pfx("198.51.100.0/24"), pfx("192.0.2.0/25")},
	}
	m, err := Parse(mustMarshal(t, u))
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Update)
	if !reflect.DeepEqual(got.Withdrawn, u.Withdrawn) {
		t.Errorf("withdrawn = %v, want %v", got.Withdrawn, u.Withdrawn)
	}
	if !reflect.DeepEqual(got.NLRI, u.NLRI) {
		t.Errorf("nlri = %v, want %v", got.NLRI, u.NLRI)
	}
	if !reflect.DeepEqual(got.Attrs, u.Attrs) {
		t.Errorf("attrs = %+v, want %+v", got.Attrs, u.Attrs)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := &Update{Withdrawn: []netip.Prefix{pfx("10.0.0.0/8")}}
	m, err := Parse(mustMarshal(t, u))
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Update)
	if got.Attrs != nil || len(got.NLRI) != 0 {
		t.Errorf("withdraw-only update grew attrs/nlri: %+v", got)
	}
}

func TestUpdateNLRIRequiresAttrs(t *testing.T) {
	u := &Update{NLRI: []netip.Prefix{pfx("10.0.0.0/8")}}
	if _, err := Marshal(u); err == nil {
		t.Error("NLRI without attributes marshaled")
	}
}

func TestASPathLenCountsSetsAsOne(t *testing.T) {
	a := &PathAttrs{ASPath: []ASPathSegment{
		{Type: ASSequence, ASNs: []uint32{1, 2, 3}},
		{Type: ASSet, ASNs: []uint32{4, 5}},
	}}
	if got := a.ASPathLen(); got != 4 {
		t.Errorf("ASPathLen = %d, want 4 (3 + set counted once)", got)
	}
	flat := a.FlatASPath()
	if len(flat) != 5 {
		t.Errorf("FlatASPath = %v", flat)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	good := mustMarshal(t, &Keepalive{})

	short := good[:10]
	if _, _, err := ParseHeader(short); err == nil {
		t.Error("short header accepted")
	}

	badMarker := append([]byte(nil), good...)
	badMarker[3] = 0
	if _, _, err := ParseHeader(badMarker); err == nil {
		t.Error("bad marker accepted")
	}

	badType := append([]byte(nil), good...)
	badType[18] = 9
	if _, _, err := ParseHeader(badType); err == nil {
		t.Error("unknown type accepted")
	}

	badLen := append([]byte(nil), good...)
	badLen[16], badLen[17] = 0xff, 0xff
	if _, _, err := ParseHeader(badLen); err == nil {
		t.Error("oversize length accepted")
	}
}

func TestParseTruncatedUpdateBodies(t *testing.T) {
	u := &Update{Attrs: testAttrs(), NLRI: []netip.Prefix{pfx("198.51.100.0/24")}}
	full := mustMarshal(t, u)
	// Every truncation point inside the body must error, never panic — with
	// one exception: cutting exactly at the attributes/NLRI boundary leaves
	// a legal UPDATE that simply advertises nothing.
	nlriBoundary := len(full) - 4 // the single /24 NLRI entry occupies 4 bytes
	for cut := HeaderLen; cut < len(full); cut++ {
		trunc := append([]byte(nil), full[:cut]...)
		// Fix the header length so the parser attempts the short body.
		trunc[16], trunc[17] = byte(cut>>8), byte(cut)
		_, err := Parse(trunc)
		if cut == nlriBoundary {
			if err != nil {
				t.Errorf("cut at NLRI boundary should be a legal empty-NLRI update, got %v", err)
			}
			continue
		}
		if err == nil {
			t.Errorf("truncation at %d parsed successfully", cut)
		}
	}
}

func TestMissingMandatoryAttr(t *testing.T) {
	// Hand-build an UPDATE whose attributes lack NEXT_HOP.
	var attrs []byte
	attrs = appendAttr(attrs, flagTransitive, AttrOrigin, []byte{OriginIGP})
	attrs = appendAttr(attrs, flagTransitive, AttrASPath, []byte{ASSequence, 1, 0, 0, 0xfc, 0})
	body := []byte{0, 0, 0, byte(len(attrs))}
	body = append(body, attrs...)
	body = append(body, 24, 198, 51, 100) // NLRI
	b := make([]byte, HeaderLen+len(body))
	copy(b, marker[:])
	b[16], b[17] = byte(len(b)>>8), byte(len(b))
	b[18] = TypeUpdate
	copy(b[HeaderLen:], body)
	if _, err := Parse(b); err == nil {
		t.Error("UPDATE missing NEXT_HOP accepted")
	}
}

func TestUnknownOptionalAttrTolerated(t *testing.T) {
	var attrs []byte
	attrs = appendAttr(attrs, flagTransitive, AttrOrigin, []byte{OriginIGP})
	attrs = appendAttr(attrs, flagTransitive, AttrASPath, []byte{ASSequence, 1, 0, 0, 0xfc, 0})
	attrs = appendAttr(attrs, flagTransitive, AttrNextHop, []byte{192, 0, 2, 1})
	attrs = appendAttr(attrs, flagOptional|flagTransitive, 200, []byte{1, 2, 3}) // unknown optional
	body := []byte{0, 0, 0, byte(len(attrs))}
	body = append(body, attrs...)
	b := make([]byte, HeaderLen+len(body))
	copy(b, marker[:])
	b[16], b[17] = byte(len(b)>>8), byte(len(b))
	b[18] = TypeUpdate
	copy(b[HeaderLen:], body)
	if _, err := Parse(b); err != nil {
		t.Errorf("unknown optional attribute rejected: %v", err)
	}

	// The same attribute as well-known must be rejected.
	attrs2 := attrs[:len(attrs)-6]
	attrs2 = appendAttr(attrs2, 0, 200, []byte{1, 2, 3})
	body2 := []byte{0, 0, 0, byte(len(attrs2))}
	body2 = append(body2, attrs2...)
	b2 := make([]byte, HeaderLen+len(body2))
	copy(b2, marker[:])
	b2[16], b2[17] = byte(len(b2)>>8), byte(len(b2))
	b2[18] = TypeUpdate
	copy(b2[HeaderLen:], body2)
	if _, err := Parse(b2); err == nil {
		t.Error("unknown well-known attribute accepted")
	}
}

func TestPrefixBitsBeyondLengthRejected(t *testing.T) {
	// 198.51.100.0/22 encoded with a dirty last byte (host bits set).
	body := []byte{0, 4, 22, 198, 51, 101, 0, 0}
	b := make([]byte, HeaderLen+len(body))
	copy(b, marker[:])
	b[16], b[17] = byte(len(b)>>8), byte(len(b))
	b[18] = TypeUpdate
	copy(b[HeaderLen:], body)
	if _, err := Parse(b); err == nil {
		t.Error("prefix with dirty host bits accepted")
	}
}

func TestPropertyUpdateRoundTrip(t *testing.T) {
	f := func(asns []uint32, medSet bool, med uint32, nPfx uint8, seed uint32) bool {
		if len(asns) == 0 {
			asns = []uint32{64512}
		}
		if len(asns) > 50 {
			asns = asns[:50]
		}
		a := &PathAttrs{
			Origin:  OriginIncomplete,
			ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: asns}},
			NextHop: netip.AddrFrom4([4]byte{byte(seed), byte(seed >> 8), byte(seed >> 16), byte(seed >> 24)}),
			MED:     med, HasMED: medSet,
		}
		var nlri []netip.Prefix
		for i := 0; i < int(nPfx%8)+1; i++ {
			bits := 8 + (int(seed)+i*5)%25
			addr := netip.AddrFrom4([4]byte{byte(10 + i), byte(seed >> 3), byte(seed >> 11), 0})
			nlri = append(nlri, netip.PrefixFrom(addr, bits).Masked())
		}
		u := &Update{Attrs: a, NLRI: nlri}
		b, err := Marshal(u)
		if err != nil {
			return false
		}
		m, err := Parse(b)
		if err != nil {
			return false
		}
		got := m.(*Update)
		return reflect.DeepEqual(got.Attrs.ASPath, a.ASPath) &&
			got.Attrs.NextHop == a.NextHop &&
			got.Attrs.HasMED == medSet && (!medSet || got.Attrs.MED == med) &&
			reflect.DeepEqual(got.NLRI, nlri)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %x: %v", data, r)
			}
		}()
		_, _ = Parse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdateRoundTrip(b *testing.B) {
	u := &Update{Attrs: testAttrs(), NLRI: []netip.Prefix{pfx("198.51.100.0/24")}}
	for i := 0; i < b.N; i++ {
		buf, err := Marshal(u)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Parse(buf); err != nil {
			b.Fatal(err)
		}
	}
}
