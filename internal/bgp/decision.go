package bgp

import (
	"anyopt/internal/geo"
	"anyopt/internal/topology"
)

// interiorCost models the hot-potato "lowest interior cost" step at the
// single-speaker abstraction: the distance from the AS to the route's exit
// point, bucketed so that comparably distant exits still tie. For an AS with
// PoP structure the exit is its own attachment PoP; a single-location AS
// discriminates by where its neighbor's attachment sits.
func (s *Sim) interiorCost(as *topology.AS, l *topology.Link) int {
	if s.Cfg.InteriorCostBucketKm <= 0 {
		return 0
	}
	var exit geo.Coord
	if len(as.PoPs) > 0 {
		exit = as.PoPCoord(l.PoPAt(as.ASN))
	} else {
		nb := s.Topo.AS(l.Other(as.ASN))
		exit = nb.PoPCoord(l.PoPAt(nb.ASN))
	}
	return int(geo.DistanceKm(as.Coord, exit) / s.Cfg.InteriorCostBucketKm)
}

// selectBest runs the BGP decision process over AS a's Adj-RIB-In and returns
// the single best route plus the candidate set tied with it through
// LOCAL_PREF and AS-path length.
//
// Decision order (§4.1 of the paper, RFC 4271 §9.1.2.2, plus the
// implementation-specific step the paper studies):
//
//  1. highest LOCAL_PREF
//  2. shortest AS_PATH
//  3. lowest ORIGIN — all our announcements share one origin code; skipped
//  4. lowest MED (comparable only between routes from the same neighbor AS)
//  5. eBGP over iBGP — one speaker per AS, all routes eBGP; skipped
//  6. lowest interior cost — hot potato over quantized exit distance
//  7. oldest route (arrival order) — implementation tie-breaker, optional
//  8. lowest neighbor router ID
//  9. lowest neighbor address (modeled by link ID)
func (s *Sim) selectBest(a topology.ASN, rib *ribState) (*route, []*route) {
	if len(rib.in) == 0 {
		return nil, nil
	}
	// The working slice lives on the Sim and is reused across decisions; only
	// the candidate set (stored in the RIB) gets its own allocation.
	routes := s.routeScratch[:0]
	//lint:orderinvariant candidates are insertion-sorted by link ID just below
	for _, r := range rib.in {
		routes = append(routes, r)
	}
	// Deterministic base order regardless of map iteration. Insertion sort:
	// the slice is bounded by the AS's degree and usually tiny, and
	// sort.Slice would allocate a closure and swapper per decision.
	for i := 1; i < len(routes); i++ {
		r := routes[i]
		j := i - 1
		for j >= 0 && routes[j].link.ID > r.link.ID {
			routes[j+1] = routes[j]
			j--
		}
		routes[j+1] = r
	}
	s.routeScratch = routes[:0]

	best := routes[0]
	for _, r := range routes[1:] {
		if s.better(r, best) {
			best = r
		}
	}
	nCand := 0
	for _, r := range routes {
		if r.localPref == best.localPref && r.pathLen() == best.pathLen() {
			nCand++
		}
	}
	candidates := s.cands.alloc(nCand)
	for _, r := range routes {
		if r.localPref == best.localPref && r.pathLen() == best.pathLen() {
			candidates = append(candidates, r)
		}
	}
	return best, candidates
}

// better reports whether route x beats route y in the decision process.
func (s *Sim) better(x, y *route) bool {
	if x.localPref != y.localPref {
		return x.localPref > y.localPref
	}
	if x.pathLen() != y.pathLen() {
		return x.pathLen() < y.pathLen()
	}
	// MED compares only among routes from the same neighboring AS.
	if len(x.path) > 0 && len(y.path) > 0 && x.path[0] == y.path[0] && x.med != y.med {
		return x.med < y.med
	}
	if x.interiorCost != y.interiorCost {
		return x.interiorCost < y.interiorCost
	}
	if s.Cfg.ArrivalOrderTieBreak && x.arrival != y.arrival {
		if x.arrival < y.arrival {
			s.invRecordTie(x, y)
			return true
		}
		s.invRecordTie(y, x)
		return false
	}
	if x.neighborRouterID != y.neighborRouterID {
		return x.neighborRouterID < y.neighborRouterID
	}
	return x.link.ID < y.link.ID
}
