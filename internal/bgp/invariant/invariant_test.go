package invariant

import (
	"strings"
	"testing"

	"anyopt/internal/topology"
)

func TestCheckExport(t *testing.T) {
	roles := []topology.NeighborRole{topology.RoleCustomer, topology.RolePeer, topology.RoleProvider}
	for _, from := range roles {
		for _, to := range roles {
			c := NewChecker()
			c.CheckExport(7, from, to)
			wantOK := from == topology.RoleCustomer || to == topology.RoleCustomer
			if gotOK := len(c.Violations()) == 0; gotOK != wantOK {
				t.Errorf("CheckExport(from=%s, to=%s): violation recorded=%v, want %v", from, to, !gotOK, !wantOK)
			}
		}
	}
}

// mkRoute builds a route distinguished only by link ID unless modified.
func mkRoute(link topology.LinkID, mod func(*Route)) Route {
	r := Route{LinkID: link, FirstHop: 100, LocalPref: 200, PathLen: 3, InteriorCost: 5, Arrival: 10, NeighborRouterID: uint32(link)}
	if mod != nil {
		mod(&r)
	}
	return r
}

func TestCheckBestAcceptsTrueBest(t *testing.T) {
	c := NewChecker()
	best := mkRoute(1, func(r *Route) { r.LocalPref = 300 })
	routes := []Route{best, mkRoute(2, nil), mkRoute(3, nil)}
	c.CheckBest(7, &best, routes, true)
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCheckBestRejectsWorseSelection(t *testing.T) {
	c := NewChecker()
	worse := mkRoute(2, nil)
	routes := []Route{mkRoute(1, func(r *Route) { r.LocalPref = 300 }), worse}
	c.CheckBest(7, &worse, routes, true)
	v := c.Violations()
	if len(v) != 1 || v[0].Kind != "best-route" {
		t.Fatalf("want one best-route violation, got %v", v)
	}
}

func TestCheckBestRejectsNilWithCandidates(t *testing.T) {
	c := NewChecker()
	c.CheckBest(7, nil, []Route{mkRoute(1, nil)}, false)
	v := c.Violations()
	if len(v) != 1 || !strings.Contains(v[0].Detail, "non-empty") {
		t.Fatalf("want a non-empty-RIB violation, got %v", v)
	}
	c.Reset()
	c.CheckBest(7, nil, nil, false)
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("nil best over empty RIB should be fine, got %v", v)
	}
}

func TestCheckBestRejectsForeignRoute(t *testing.T) {
	c := NewChecker()
	foreign := mkRoute(9, func(r *Route) { r.LocalPref = 400 })
	c.CheckBest(7, &foreign, []Route{mkRoute(1, nil)}, false)
	v := c.Violations()
	if len(v) != 1 || !strings.Contains(v[0].Detail, "not in its Adj-RIB-In") {
		t.Fatalf("want a missing-from-RIB violation, got %v", v)
	}
}

// TestBetterDecisionOrder pins each step of the independent decision-order
// restatement, in order of precedence.
func TestBetterDecisionOrder(t *testing.T) {
	base := mkRoute(1, nil)
	cases := []struct {
		name string
		mod  func(*Route) // applied to the winner
	}{
		{"local pref", func(r *Route) { r.LocalPref++ }},
		{"path length", func(r *Route) { r.PathLen-- }},
		{"med same neighbor", func(r *Route) { r.MED-- }},
		{"interior cost", func(r *Route) { r.InteriorCost-- }},
		{"arrival", func(r *Route) { r.Arrival-- }},
		{"router id", func(r *Route) { r.NeighborRouterID-- }},
		{"link id", func(r *Route) { r.LinkID-- }},
	}
	for _, tc := range cases {
		winner := base
		tc.mod(&winner)
		if !Better(winner, base, true) {
			t.Errorf("%s: winner should beat base", tc.name)
		}
		if Better(base, winner, true) {
			t.Errorf("%s: base should lose to winner", tc.name)
		}
	}
}

func TestBetterSkipsDisabledArrival(t *testing.T) {
	x := mkRoute(2, func(r *Route) { r.Arrival = 1 })
	y := mkRoute(1, func(r *Route) { r.Arrival = 2 })
	if !Better(x, y, true) {
		t.Error("with arrival tie-break, earlier arrival should win")
	}
	if Better(x, y, false) {
		t.Error("without arrival tie-break, lower link ID should win instead")
	}
}

func TestBetterMEDOnlySameNeighbor(t *testing.T) {
	x := mkRoute(2, func(r *Route) { r.MED = 0; r.FirstHop = 100 })
	y := mkRoute(1, func(r *Route) { r.MED = 9; r.FirstHop = 101 })
	// Different neighbors: MED must be ignored, so the lower link ID wins.
	if Better(x, y, false) {
		t.Error("MED compared across different neighboring ASes")
	}
}

func TestTieLogAndReset(t *testing.T) {
	c := NewChecker()
	w, l := mkRoute(1, nil), mkRoute(2, nil)
	c.RecordTie(w, l)
	c.RecordTie(w, l)
	if got := c.TieCount(); got != 2 {
		t.Fatalf("TieCount = %d, want 2", got)
	}
	ties := c.Ties()
	if len(ties) != 2 || ties[0].Winner != w || ties[0].Loser != l {
		t.Fatalf("bad tie log: %v", ties)
	}
	c.Reset()
	if c.TieCount() != 0 || len(c.Ties()) != 0 || len(c.Violations()) != 0 {
		t.Fatal("Reset left state behind")
	}
}
