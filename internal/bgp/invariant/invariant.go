// Package invariant is the runtime auditor behind the -tags=invariants
// build: while the BGP simulator runs, it re-derives the properties the
// paper's predictions rest on and records every divergence.
//
// Three properties are audited:
//
//   - Gao-Rexford export compliance: every propagated route must either have
//     been learned from a customer or be headed to a customer. CheckExport is
//     an independent restatement of the simulator's export policy, so drift
//     between the two is a recorded violation rather than silent agreement.
//   - Best-route consistency: after every decision, the selected best must
//     beat every other Adj-RIB-In entry under Better, an independent
//     restatement of the decision order in (*bgp.Sim).better.
//   - Arrival-order ties: every decision resolved by the optional
//     oldest-route tie-breaker is logged with both candidates, because those
//     are exactly the decisions where event scheduling could leak into
//     results.
//
// The package has no build tag itself — it is ordinary, always-compilable
// library code with its own unit tests. Only the hooks in package bgp that
// call into it are gated, so the default build pays nothing.
//
// Checkers are safe for concurrent use: the parallel campaign executor runs
// many independent Sims at once, all reporting to Default.
package invariant

import (
	"fmt"
	"sync"
	"time"

	"anyopt/internal/topology"
)

// Route is an exported snapshot of one Adj-RIB-In entry, carrying exactly
// the attributes the decision process compares.
type Route struct {
	LinkID           topology.LinkID
	FirstHop         topology.ASN // advertising neighbor (path head); 0 if the path is empty
	LocalPref        int
	PathLen          int
	MED              int
	InteriorCost     int
	Arrival          time.Duration
	NeighborRouterID uint32
}

// Violation is one failed invariant.
type Violation struct {
	Kind   string // "gao-rexford" or "best-route"
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// Tie is one decision resolved by the arrival-order tie-breaker, with both
// candidates that reached that step.
type Tie struct {
	Winner, Loser Route
}

// maxRetainedTies bounds the tie log's memory; TieCount keeps counting past
// it.
const maxRetainedTies = 10000

// Checker accumulates violations and the tie log.
type Checker struct {
	mu         sync.Mutex
	violations []Violation
	ties       []Tie
	tieCount   uint64
}

// Default is the process-wide checker the -tags=invariants hooks report to.
var Default = NewChecker()

// NewChecker returns an empty checker.
func NewChecker() *Checker { return &Checker{} }

// Reset discards all recorded violations and ties.
func (c *Checker) Reset() {
	c.mu.Lock()
	c.violations = nil
	c.ties = nil
	c.tieCount = 0
	c.mu.Unlock()
}

func (c *Checker) violate(kind, format string, args ...any) {
	c.mu.Lock()
	c.violations = append(c.violations, Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)})
	c.mu.Unlock()
}

// CheckExport audits one propagation: a route learned from the learnedFrom
// role about to be advertised to the to role by AS as.
func (c *Checker) CheckExport(as topology.ASN, learnedFrom, to topology.NeighborRole) {
	if learnedFrom == topology.RoleCustomer || to == topology.RoleCustomer {
		return
	}
	c.violate("gao-rexford", "AS %d exported a route learned from a %s to a %s", as, learnedFrom, to)
}

// CheckBest audits one decision at AS as: best (nil when the RIB selected
// nothing) must be present in routes and beat every other entry under
// Better. routes must hold the full Adj-RIB-In, one entry per link.
func (c *Checker) CheckBest(as topology.ASN, best *Route, routes []Route, arrivalTieBreak bool) {
	if best == nil {
		if len(routes) > 0 {
			c.violate("best-route", "AS %d selected no best route from a non-empty Adj-RIB-In (%d entries)", as, len(routes))
		}
		return
	}
	seen := false
	for _, r := range routes {
		if r.LinkID == best.LinkID {
			seen = true
			continue
		}
		if !Better(*best, r, arrivalTieBreak) {
			c.violate("best-route", "AS %d selected the route over link %d as best, but the route over link %d beats it",
				as, best.LinkID, r.LinkID)
		}
	}
	if !seen {
		c.violate("best-route", "AS %d selected a best route (link %d) that is not in its Adj-RIB-In", as, best.LinkID)
	}
}

// RecordTie logs one decision resolved by arrival order.
func (c *Checker) RecordTie(winner, loser Route) {
	c.mu.Lock()
	c.tieCount++
	if len(c.ties) < maxRetainedTies {
		c.ties = append(c.ties, Tie{Winner: winner, Loser: loser})
	}
	c.mu.Unlock()
}

// Violations returns a copy of the recorded violations.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Ties returns a copy of the retained tie log (capped; see TieCount for the
// true total).
func (c *Checker) Ties() []Tie {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Tie, len(c.ties))
	copy(out, c.ties)
	return out
}

// TieCount returns how many arrival-order ties were recorded, including any
// past the retention cap.
func (c *Checker) TieCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tieCount
}

// Better is an independent restatement of the BGP decision order implemented
// by (*bgp.Sim).better: higher LOCAL_PREF, then shorter AS path, then lower
// MED among routes from the same neighboring AS, then lower interior cost,
// then (optionally) earlier arrival, then lower neighbor router ID, then
// lower link ID. It must NOT be refactored to share code with the simulator;
// the duplication is the point.
func Better(x, y Route, arrivalTieBreak bool) bool {
	if x.LocalPref != y.LocalPref {
		return x.LocalPref > y.LocalPref
	}
	if x.PathLen != y.PathLen {
		return x.PathLen < y.PathLen
	}
	if x.PathLen > 0 && y.PathLen > 0 && x.FirstHop == y.FirstHop && x.MED != y.MED {
		return x.MED < y.MED
	}
	if x.InteriorCost != y.InteriorCost {
		return x.InteriorCost < y.InteriorCost
	}
	if arrivalTieBreak && x.Arrival != y.Arrival {
		return x.Arrival < y.Arrival
	}
	if x.NeighborRouterID != y.NeighborRouterID {
		return x.NeighborRouterID < y.NeighborRouterID
	}
	return x.LinkID < y.LinkID
}
