// Package speaker is a minimal BGP-4 speaker: the session FSM (RFC 4271 §8)
// over an arbitrary net.Conn, exchanging wire-encoded messages.
//
// It plays the role GoBGP plays in the paper's testbed (§3.1): the
// orchestrator opens a session toward each site's router and injects or
// withdraws the anycast prefix over it. Only the parts of the protocol the
// orchestrator needs are implemented — session establishment, keepalives,
// hold-timer expiry, update exchange, and notification handling. There is no
// route server logic here; received updates are handed to the caller.
package speaker

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"anyopt/internal/bgp/wire"
)

// State is the BGP FSM state.
type State int32

const (
	StateIdle State = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	case StateClosed:
		return "Closed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Config identifies the local speaker.
type Config struct {
	// AS is the local autonomous system number (2-octet; the orchestrator's
	// private ASN fits).
	AS uint16
	// RouterID is the local BGP identifier.
	RouterID uint32
	// HoldTime is the proposed hold time; keepalives are sent at a third of
	// the negotiated value. Zero means 90 s.
	HoldTime time.Duration
}

// ErrClosed is returned from operations on a closed session.
var ErrClosed = errors.New("speaker: session closed")

// Session is an established BGP session.
type Session struct {
	conn     net.Conn
	peerOpen *wire.Open
	holdTime time.Duration

	mu     sync.Mutex
	state  State
	err    error
	closed chan struct{}

	updates chan *wire.Update

	writeMu sync.Mutex
}

// Establish performs the OPEN/KEEPALIVE handshake on conn and returns an
// established session. Both endpoints call Establish on their end of the
// connection. On handshake failure the connection is closed.
func Establish(cfg Config, conn net.Conn) (*Session, error) {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 90 * time.Second
	}
	s := &Session{
		conn:    conn,
		state:   StateIdle,
		closed:  make(chan struct{}),
		updates: make(chan *wire.Update, 64),
	}

	open := &wire.Open{
		Version:  4,
		AS:       cfg.AS,
		HoldTime: uint16(cfg.HoldTime / time.Second),
		RouterID: cfg.RouterID,
	}
	// Handshake sends run asynchronously: over synchronous transports (e.g.
	// net.Pipe) both endpoints write their OPEN before either reads, so a
	// blocking write here would deadlock the two FSMs against each other.
	openErr := make(chan error, 1)
	go func() { openErr <- s.send(open) }()
	s.setState(StateOpenSent)

	// Bound the whole handshake by the configured hold time.
	conn.SetReadDeadline(time.Now().Add(cfg.HoldTime))
	msg, err := readMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("speaker: awaiting OPEN: %w", err)
	}
	peerOpen, ok := msg.(*wire.Open)
	if !ok {
		s.send(&wire.Notification{Code: 5 /* FSM error */})
		conn.Close()
		return nil, fmt.Errorf("speaker: expected OPEN, got type %d", msg.Type())
	}
	if peerOpen.Version != 4 {
		s.send(&wire.Notification{Code: 2, Subcode: 1 /* unsupported version */})
		conn.Close()
		return nil, fmt.Errorf("speaker: peer version %d unsupported", peerOpen.Version)
	}
	s.peerOpen = peerOpen

	// Negotiate hold time: the smaller of ours and the peer's.
	hold := cfg.HoldTime
	if p := time.Duration(peerOpen.HoldTime) * time.Second; p < hold {
		hold = p
	}
	if hold > 0 && hold < 3*time.Second {
		hold = 3 * time.Second
	}
	s.holdTime = hold

	if err := <-openErr; err != nil {
		conn.Close()
		return nil, fmt.Errorf("speaker: sending OPEN: %w", err)
	}

	kaErr := make(chan error, 1)
	go func() { kaErr <- s.send(&wire.Keepalive{}) }()
	s.setState(StateOpenConfirm)

	msg, err = readMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("speaker: awaiting KEEPALIVE: %w", err)
	}
	if err := <-kaErr; err != nil {
		conn.Close()
		return nil, fmt.Errorf("speaker: sending KEEPALIVE: %w", err)
	}
	if n, ok := msg.(*wire.Notification); ok {
		conn.Close()
		return nil, fmt.Errorf("speaker: peer refused session: %w", n)
	}
	if _, ok := msg.(*wire.Keepalive); !ok {
		conn.Close()
		return nil, fmt.Errorf("speaker: expected KEEPALIVE, got type %d", msg.Type())
	}
	s.setState(StateEstablished)

	go s.readLoop()
	go s.keepaliveLoop()
	return s, nil
}

// State returns the current FSM state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// PeerAS returns the peer's AS number from its OPEN.
func (s *Session) PeerAS() uint16 { return s.peerOpen.AS }

// PeerRouterID returns the peer's router ID from its OPEN.
func (s *Session) PeerRouterID() uint32 { return s.peerOpen.RouterID }

// HoldTime returns the negotiated hold time.
func (s *Session) HoldTime() time.Duration { return s.holdTime }

func (s *Session) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// Announce advertises prefix with the given attributes.
func (s *Session) Announce(prefix netip.Prefix, attrs *wire.PathAttrs) error {
	return s.SendUpdate(&wire.Update{Attrs: attrs, NLRI: []netip.Prefix{prefix}})
}

// Withdraw withdraws prefix.
func (s *Session) Withdraw(prefix netip.Prefix) error {
	return s.SendUpdate(&wire.Update{Withdrawn: []netip.Prefix{prefix}})
}

// SendUpdate transmits an arbitrary UPDATE.
func (s *Session) SendUpdate(u *wire.Update) error {
	select {
	case <-s.closed:
		return s.closeErr()
	default:
	}
	return s.send(u)
}

// Updates returns the channel of received UPDATE messages. It is closed when
// the session dies; call Err for the reason.
func (s *Session) Updates() <-chan *wire.Update { return s.updates }

// Err returns the error that terminated the session, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Session) closeErr() error {
	if err := s.Err(); err != nil {
		return err
	}
	return ErrClosed
}

// Close sends a Cease notification and tears the session down.
func (s *Session) Close() error {
	s.shutdown(nil, true)
	return nil
}

// shutdown terminates the session once; notify controls whether a Cease is
// attempted.
func (s *Session) shutdown(cause error, notify bool) {
	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		return
	default:
	}
	s.err = cause
	s.state = StateClosed
	close(s.closed)
	s.mu.Unlock()

	if notify {
		s.send(&wire.Notification{Code: 6 /* Cease */})
	}
	s.conn.Close()
}

func (s *Session) send(m wire.Message) error {
	b, err := wire.Marshal(m)
	if err != nil {
		return err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	_, err = s.conn.Write(b)
	return err
}

// readLoop dispatches inbound messages until the session dies.
func (s *Session) readLoop() {
	defer close(s.updates)
	for {
		if s.holdTime > 0 {
			s.conn.SetReadDeadline(time.Now().Add(s.holdTime))
		}
		msg, err := readMessage(s.conn)
		if err != nil {
			select {
			case <-s.closed:
				s.shutdown(nil, false)
			default:
				if isTimeout(err) {
					err = fmt.Errorf("speaker: hold timer expired after %v", s.holdTime)
					s.send(&wire.Notification{Code: 4 /* hold timer expired */})
				}
				s.shutdown(err, false)
			}
			return
		}
		switch m := msg.(type) {
		case *wire.Update:
			select {
			case s.updates <- m:
			case <-s.closed:
				return
			}
		case *wire.Keepalive:
			// Receiving anything resets the hold timer (handled above).
		case *wire.Notification:
			s.shutdown(fmt.Errorf("speaker: peer sent notification: %w", m), false)
			return
		case *wire.Open:
			s.send(&wire.Notification{Code: 5 /* FSM error */})
			s.shutdown(fmt.Errorf("speaker: unexpected OPEN in established state"), false)
			return
		}
	}
}

// keepaliveLoop sends keepalives at a third of the hold time.
func (s *Session) keepaliveLoop() {
	if s.holdTime <= 0 {
		return
	}
	t := time.NewTicker(s.holdTime / 3)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.send(&wire.Keepalive{}); err != nil {
				s.shutdown(fmt.Errorf("speaker: keepalive send: %w", err), false)
				return
			}
		case <-s.closed:
			return
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// readMessage reads one framed BGP message from r.
func readMessage(r io.Reader) (wire.Message, error) {
	hdr := make([]byte, wire.HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	_, length, err := wire.ParseHeader(hdr)
	if err != nil {
		return nil, err
	}
	full := make([]byte, length)
	copy(full, hdr)
	if _, err := io.ReadFull(r, full[wire.HeaderLen:]); err != nil {
		return nil, err
	}
	return wire.Parse(full)
}
