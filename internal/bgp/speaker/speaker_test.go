package speaker

import (
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"anyopt/internal/bgp/wire"
)

// establishPair runs the handshake over a net.Pipe and returns both sessions.
func establishPair(t *testing.T, a, b Config) (*Session, *Session) {
	t.Helper()
	ca, cb := net.Pipe()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 2)
	go func() { s, err := Establish(a, ca); ch <- res{s, err} }()
	go func() { s, err := Establish(b, cb); ch <- res{s, err} }()
	r1, r2 := <-ch, <-ch
	if r1.err != nil {
		t.Fatalf("establish: %v", r1.err)
	}
	if r2.err != nil {
		t.Fatalf("establish: %v", r2.err)
	}
	// Map back to (a, b) order via ASN.
	if r1.s.PeerAS() == a.AS {
		return r2.s, r1.s
	}
	return r1.s, r2.s
}

func cfg(as uint16, id uint32) Config {
	return Config{AS: as, RouterID: id, HoldTime: 3 * time.Second}
}

func TestEstablish(t *testing.T) {
	sa, sb := establishPair(t, cfg(64512, 1), cfg(64513, 2))
	defer sa.Close()
	defer sb.Close()

	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("states = %v, %v", sa.State(), sb.State())
	}
	if sa.PeerAS() != 64513 || sb.PeerAS() != 64512 {
		t.Errorf("peer AS mixup: %d, %d", sa.PeerAS(), sb.PeerAS())
	}
	if sa.PeerRouterID() != 2 || sb.PeerRouterID() != 1 {
		t.Errorf("peer router ID mixup")
	}
	if sa.HoldTime() != 3*time.Second {
		t.Errorf("negotiated hold = %v", sa.HoldTime())
	}
}

func TestAnnounceWithdrawFlow(t *testing.T) {
	sa, sb := establishPair(t, cfg(64512, 1), cfg(64513, 2))
	defer sa.Close()
	defer sb.Close()

	prefix := netip.MustParsePrefix("203.0.113.0/24")
	attrs := &wire.PathAttrs{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{64512}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
	}
	if err := sa.Announce(prefix, attrs); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-sb.Updates():
		if len(u.NLRI) != 1 || u.NLRI[0] != prefix {
			t.Fatalf("received NLRI %v", u.NLRI)
		}
		if got := u.Attrs.FlatASPath(); len(got) != 1 || got[0] != 64512 {
			t.Fatalf("AS path %v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update not received")
	}

	if err := sa.Withdraw(prefix); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-sb.Updates():
		if len(u.Withdrawn) != 1 || u.Withdrawn[0] != prefix {
			t.Fatalf("received withdrawal %v", u.Withdrawn)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("withdrawal not received")
	}
}

func TestKeepalivesSustainSession(t *testing.T) {
	// Hold time 3 s (the floor); session must survive well past it when idle
	// because keepalives flow at hold/3.
	sa, sb := establishPair(t, cfg(64512, 1), cfg(64513, 2))
	defer sa.Close()
	defer sb.Close()

	time.Sleep(4 * time.Second)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("session died while keepalives should sustain it: %v / %v (err %v / %v)",
			sa.State(), sb.State(), sa.Err(), sb.Err())
	}
}

func TestCloseNotifiesPeer(t *testing.T) {
	sa, sb := establishPair(t, cfg(64512, 1), cfg(64513, 2))
	sa.Close()

	select {
	case _, ok := <-sb.Updates():
		if ok {
			t.Fatal("unexpected update")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer did not observe close")
	}
	if err := sb.Err(); err == nil || !strings.Contains(err.Error(), "notification") {
		t.Errorf("peer error = %v, want cease notification", err)
	}
	if err := sa.SendUpdate(&wire.Update{}); err == nil {
		t.Error("SendUpdate on closed session succeeded")
	}
}

func TestVersionMismatchRefused(t *testing.T) {
	ca, cb := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := Establish(cfg(64512, 1), ca)
		done <- err
	}()
	// Fake peer speaking BGP version 3.
	go func() {
		b, _ := wire.Marshal(&wire.Open{Version: 3, AS: 1, HoldTime: 90, RouterID: 9})
		cb.Write(b)
		// Drain whatever arrives.
		buf := make([]byte, 4096)
		for {
			if _, err := cb.Read(buf); err != nil {
				return
			}
		}
	}()
	err := <-done
	if err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestGarbageRefused(t *testing.T) {
	ca, cb := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := Establish(cfg(64512, 1), ca)
		done <- err
	}()
	go func() {
		cb.Write(make([]byte, 64)) // zero marker bytes: invalid header
		buf := make([]byte, 4096)
		for {
			if _, err := cb.Read(buf); err != nil {
				return
			}
		}
	}()
	if err := <-done; err == nil {
		t.Fatal("garbage handshake accepted")
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	// A peer that completes the handshake but then goes silent (no
	// keepalives) must be detected via hold-timer expiry.
	ca, cb := net.Pipe()
	done := make(chan *Session, 1)
	errCh := make(chan error, 1)
	go func() {
		s, err := Establish(cfg(64512, 1), ca)
		if err != nil {
			errCh <- err
			return
		}
		done <- s
	}()
	// Silent peer: handshake by hand, then nothing.
	go func() {
		b, _ := wire.Marshal(&wire.Open{Version: 4, AS: 64513, HoldTime: 3, RouterID: 9})
		cb.Write(b)
		k, _ := wire.Marshal(&wire.Keepalive{})
		// Read our peer's OPEN + KEEPALIVE first so the pipe doesn't block.
		buf := make([]byte, 4096)
		cb.Read(buf)
		cb.Write(k)
		for {
			if _, err := cb.Read(buf); err != nil {
				return
			}
		}
	}()
	var s *Session
	select {
	case s = <-done:
	case err := <-errCh:
		t.Fatalf("handshake failed: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("handshake stuck")
	}
	select {
	case _, ok := <-s.Updates():
		if ok {
			t.Fatal("unexpected update")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hold timer never expired")
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "hold timer") {
		t.Errorf("session error = %v, want hold timer expiry", err)
	}
}
