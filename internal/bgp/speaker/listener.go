package speaker

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Handler consumes an established inbound session. It runs on its own
// goroutine; when it returns, the session is closed.
type Handler func(*Session)

// Listener accepts inbound BGP sessions on a TCP (or any net.Listener)
// endpoint — the passive side of the FSM. The paper's site routers play this
// role toward the orchestrator's GoBGP.
type Listener struct {
	cfg     Config
	ln      net.Listener
	handler Handler

	mu       sync.Mutex
	closed   bool
	sessions []*Session
	wg       sync.WaitGroup
}

// Listen starts accepting BGP sessions on addr (e.g. "127.0.0.1:0"). Each
// established session is handed to handler.
func Listen(addr string, cfg Config, handler Handler) (*Listener, error) {
	if handler == nil {
		return nil, fmt.Errorf("speaker: Listen requires a handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("speaker: %w", err)
	}
	l := &Listener{cfg: cfg, ln: ln, handler: handler}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listening address (useful with port 0).
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			sess, err := Establish(l.cfg, conn)
			if err != nil {
				return // Establish already closed the connection
			}
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				sess.Close()
				return
			}
			l.sessions = append(l.sessions, sess)
			l.mu.Unlock()
			l.handler(sess)
			sess.Close()
		}()
	}
}

// SessionCount returns the number of sessions established so far (including
// since-closed ones).
func (l *Listener) SessionCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sessions)
}

// Close stops accepting and tears down every established session.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.closed = true
	sessions := append([]*Session(nil), l.sessions...)
	l.mu.Unlock()
	err := l.ln.Close()
	for _, s := range sessions {
		s.Close()
	}
	l.wg.Wait()
	return err
}

// Dial connects to a listening BGP speaker at addr and establishes a
// session — the active side of the FSM.
func Dial(addr string, cfg Config) (*Session, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("speaker: %w", err)
	}
	return Establish(cfg, conn)
}
