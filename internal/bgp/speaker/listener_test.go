package speaker

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"anyopt/internal/bgp/wire"
)

func TestListenDialExchange(t *testing.T) {
	// The "site router": collects announced prefixes.
	var mu sync.Mutex
	received := map[netip.Prefix]int{}
	done := make(chan struct{}, 4)

	ln, err := Listen("127.0.0.1:0", Config{AS: 65001, RouterID: 2, HoldTime: 5 * time.Second},
		func(s *Session) {
			for u := range s.Updates() {
				mu.Lock()
				for _, p := range u.NLRI {
					received[p]++
				}
				for _, p := range u.Withdrawn {
					received[p]--
				}
				mu.Unlock()
				done <- struct{}{}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	sess, err := Dial(ln.Addr().String(), Config{AS: 65000, RouterID: 1, HoldTime: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.PeerAS() != 65001 {
		t.Fatalf("peer AS = %d", sess.PeerAS())
	}

	prefix := netip.MustParsePrefix("203.0.113.0/24")
	attrs := &wire.PathAttrs{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{65000}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
	}
	if err := sess.Announce(prefix, attrs); err != nil {
		t.Fatal(err)
	}
	waitSignal(t, done)
	if err := sess.Withdraw(prefix); err != nil {
		t.Fatal(err)
	}
	waitSignal(t, done)

	mu.Lock()
	defer mu.Unlock()
	if received[prefix] != 0 {
		t.Errorf("announce/withdraw imbalance: %d", received[prefix])
	}
	if ln.SessionCount() != 1 {
		t.Errorf("session count = %d", ln.SessionCount())
	}
}

func TestListenerMultipleClients(t *testing.T) {
	updates := make(chan *wire.Update, 16)
	ln, err := Listen("127.0.0.1:0", Config{AS: 65001, RouterID: 2, HoldTime: 5 * time.Second},
		func(s *Session) {
			for u := range s.Updates() {
				updates <- u
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := Dial(ln.Addr().String(), Config{AS: uint16(64512 + i), RouterID: uint32(i + 1), HoldTime: 5 * time.Second})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		defer s.Close()
		sessions = append(sessions, s)
	}
	attrs := &wire.PathAttrs{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{64512}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
	}
	for i, s := range sessions {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)
		if err := s.Announce(p, attrs); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[netip.Prefix]bool{}
	for i := 0; i < 3; i++ {
		select {
		case u := <-updates:
			for _, p := range u.NLRI {
				seen[p] = true
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("only %d of 3 updates arrived", i)
		}
	}
	if len(seen) != 3 {
		t.Errorf("prefixes seen: %v", seen)
	}
}

func TestListenerCloseTearsDownSessions(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", Config{AS: 65001, RouterID: 2, HoldTime: 5 * time.Second},
		func(s *Session) {
			for range s.Updates() {
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Dial(ln.Addr().String(), Config{AS: 64512, RouterID: 1, HoldTime: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	// The client observes the teardown.
	select {
	case _, ok := <-sess.Updates():
		if ok {
			t.Fatal("unexpected update")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("client session survived listener close")
	}
	// Dialing a closed listener fails.
	if _, err := Dial(ln.Addr().String(), Config{AS: 64512, RouterID: 1}); err == nil {
		t.Error("dial to closed listener succeeded")
	}
}

func TestListenRequiresHandler(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", Config{}, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func waitSignal(t *testing.T, ch chan struct{}) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(3 * time.Second):
		t.Fatal("timed out waiting for update")
	}
}
