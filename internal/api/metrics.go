package api

// Prometheus text-format metrics, standard library only. All hot-path
// instrumentation is a handful of atomic adds: the endpoint table is frozen
// at construction, so recording a request takes no locks and adds nothing
// measurable to the lock-free read path it observes.

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// latencyBucketsSeconds are the histogram upper bounds, spanning
// microsecond-scale predictions to multi-minute discovery campaigns.
var latencyBucketsSeconds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// statusClasses labels the request counters; index by status/100 - 1.
var statusClasses = []string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// endpointStats is one endpoint's counters. Everything is atomic; the struct
// is never copied after construction.
type endpointStats struct {
	requests [5]atomic.Uint64
	buckets  []atomic.Uint64 // cumulative-at-export, per-bucket at record time
	count    atomic.Uint64
	sumNanos atomic.Uint64
}

func (e *endpointStats) record(status int, elapsed time.Duration) {
	class := status/100 - 1
	if class < 0 || class >= len(e.requests) {
		class = 4
	}
	e.requests[class].Add(1)
	e.count.Add(1)
	e.sumNanos.Add(uint64(elapsed.Nanoseconds()))
	secs := elapsed.Seconds()
	for i, ub := range latencyBucketsSeconds {
		if secs <= ub {
			e.buckets[i].Add(1)
			return
		}
	}
	// Above every bound: counted only in count (the +Inf bucket at export).
}

// metrics holds per-endpoint stats plus hooks into the server's other
// subsystems, rendered on GET /metrics.
type metrics struct {
	endpoints map[string]*endpointStats
	names     []string

	// solverEvals/solverMoves aggregate the anytime SPLPO solver's
	// candidate-move evaluations and accepted moves across /v1/optimize
	// requests that used it.
	solverEvals atomic.Uint64
	solverMoves atomic.Uint64
}

func newMetrics() *metrics {
	m := &metrics{endpoints: make(map[string]*endpointStats)}
	for _, name := range []string{
		"testbed", "discover", "jobs", "predict", "measure",
		"optimize", "schedule", "campaign", "churn", "reconcile",
	} {
		m.endpoints[name] = &endpointStats{buckets: make([]atomic.Uint64, len(latencyBucketsSeconds))}
		m.names = append(m.names, name)
	}
	sort.Strings(m.names)
	return m
}

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency recording.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	stats := m.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		stats.record(rec.status, time.Since(start))
	}
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP anyoptd_requests_total HTTP requests served, by endpoint and status class.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_requests_total counter\n")
	for _, name := range s.metrics.names {
		e := s.metrics.endpoints[name]
		for i, class := range statusClasses {
			if n := e.requests[i].Load(); n > 0 {
				fmt.Fprintf(w, "anyoptd_requests_total{endpoint=%q,code=%q} %d\n", name, class, n)
			}
		}
	}

	fmt.Fprintf(w, "# HELP anyoptd_request_duration_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_request_duration_seconds histogram\n")
	for _, name := range s.metrics.names {
		e := s.metrics.endpoints[name]
		count := e.count.Load()
		if count == 0 {
			continue
		}
		var cum uint64
		for i, ub := range latencyBucketsSeconds {
			cum += e.buckets[i].Load()
			fmt.Fprintf(w, "anyoptd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", name, ftoa(ub), cum)
		}
		fmt.Fprintf(w, "anyoptd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, count)
		fmt.Fprintf(w, "anyoptd_request_duration_seconds_sum{endpoint=%q} %s\n", name, ftoa(float64(e.sumNanos.Load())/1e9))
		fmt.Fprintf(w, "anyoptd_request_duration_seconds_count{endpoint=%q} %d\n", name, count)
	}

	fmt.Fprintf(w, "# HELP anyoptd_snapshot_generation Publication number of the current campaign snapshot (0 = none).\n")
	fmt.Fprintf(w, "# TYPE anyoptd_snapshot_generation gauge\n")
	var gen uint64
	var experiments int
	if snap := s.sys.CurrentSnapshot(); snap != nil {
		gen, experiments = snap.Gen, snap.Experiments
	}
	fmt.Fprintf(w, "anyoptd_snapshot_generation %d\n", gen)
	fmt.Fprintf(w, "# HELP anyoptd_snapshot_experiments BGP experiments in the current campaign snapshot.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_snapshot_experiments gauge\n")
	fmt.Fprintf(w, "anyoptd_snapshot_experiments %d\n", experiments)

	// Warm-simulator reuse, aggregated over the campaign session, every
	// measure session, and every discovery job's private session.
	hits, misses := s.sys.Disc.SimPoolStats()
	sh, sm := s.sessions.simPoolStats()
	hits += sh
	misses += sm
	for _, j := range s.jobs.list() {
		jh, jm := j.disc.SimPoolStats()
		hits += jh
		misses += jm
	}
	fmt.Fprintf(w, "# HELP anyoptd_sim_pool_acquires_total Simulator acquisitions, by warm-pool outcome.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_sim_pool_acquires_total counter\n")
	fmt.Fprintf(w, "anyoptd_sim_pool_acquires_total{outcome=\"hit\"} %d\n", hits)
	fmt.Fprintf(w, "anyoptd_sim_pool_acquires_total{outcome=\"miss\"} %d\n", misses)

	created, idle := s.sessions.sessionCount()
	fmt.Fprintf(w, "# HELP anyoptd_measure_sessions Measure sessions ever created and currently idle.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_measure_sessions gauge\n")
	fmt.Fprintf(w, "anyoptd_measure_sessions{state=\"created\"} %d\n", created)
	fmt.Fprintf(w, "anyoptd_measure_sessions{state=\"idle\"} %d\n", idle)

	fmt.Fprintf(w, "# HELP anyoptd_solver_evals_total Anytime SPLPO candidate moves evaluated by /v1/optimize.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_solver_evals_total counter\n")
	fmt.Fprintf(w, "anyoptd_solver_evals_total %d\n", s.metrics.solverEvals.Load())
	fmt.Fprintf(w, "# HELP anyoptd_solver_moves_total Anytime SPLPO moves accepted by /v1/optimize.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_solver_moves_total counter\n")
	fmt.Fprintf(w, "anyoptd_solver_moves_total %d\n", s.metrics.solverMoves.Load())

	counts := s.jobs.stateCounts()
	fmt.Fprintf(w, "# HELP anyoptd_discovery_jobs Discovery jobs, by state.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_discovery_jobs gauge\n")
	for _, state := range []string{jobRunning, jobDone, jobFailed, jobCancelled} {
		fmt.Fprintf(w, "anyoptd_discovery_jobs{state=%q} %d\n", state, counts[state])
	}

	// Churn reconciler (DESIGN.md §13).
	health, stats := s.recHealthView()
	staleRows := 0
	if snap := s.sys.CurrentSnapshot(); snap != nil {
		staleRows = len(snap.StaleRows)
	}
	fmt.Fprintf(w, "# HELP anyoptd_reconcile_health Reconciler health state (0=fresh 1=reconciling 2=degraded 3=stale).\n")
	fmt.Fprintf(w, "# TYPE anyoptd_reconcile_health gauge\n")
	fmt.Fprintf(w, "anyoptd_reconcile_health %d\n", uint8(health))
	fmt.Fprintf(w, "# HELP anyoptd_stale_rows Served prediction rows still backed by pre-churn data.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_stale_rows gauge\n")
	fmt.Fprintf(w, "anyoptd_stale_rows %d\n", staleRows)
	fmt.Fprintf(w, "# HELP anyoptd_cones_in_flight Cone repairs currently running.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_cones_in_flight gauge\n")
	fmt.Fprintf(w, "anyoptd_cones_in_flight %d\n", stats["cones_in_flight"])
	fmt.Fprintf(w, "# HELP anyoptd_repairs_total Completed cone repair cycles, by outcome.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_repairs_total counter\n")
	fmt.Fprintf(w, "anyoptd_repairs_total{outcome=\"ok\"} %d\n", stats["repairs"])
	fmt.Fprintf(w, "anyoptd_repairs_total{outcome=\"failed\"} %d\n", stats["repair_failures"])
	fmt.Fprintf(w, "# HELP anyoptd_repair_last_duration_seconds Wall-clock latency of the last successful cone repair.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_repair_last_duration_seconds gauge\n")
	fmt.Fprintf(w, "anyoptd_repair_last_duration_seconds %s\n", ftoa(float64(stats["last_repair_ms"].(int64))/1e3))
	fmt.Fprintf(w, "# HELP anyoptd_quorum_retries_total Extra K-of-N experiment attempts spent by cone repairs.\n")
	fmt.Fprintf(w, "# TYPE anyoptd_quorum_retries_total counter\n")
	fmt.Fprintf(w, "anyoptd_quorum_retries_total %d\n", stats["quorum_retries"])
}
