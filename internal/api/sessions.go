package api

import (
	"sync"

	"anyopt"
	"anyopt/internal/core/discovery"
)

// measureSession is one reusable discovery session serving ad-hoc
// /v1/measure experiments. Each session owns a private Discovery — and with
// it a private warm-simulator pool (PR 5's sync.Pool behind Sim.Reset,
// honoring Config.FreshSims) — so concurrent measure requests never share a
// simulator and a session reused across requests keeps its sims warm.
type measureSession struct {
	Disc *discovery.Discovery
}

// sessionPool hands out measure sessions. Sessions are created on demand (one
// per concurrent measure request at peak) and recycled; the pool never
// shrinks, mirroring how sync.Pool keeps per-worker simulators warm during a
// campaign. The mutex guards only the free list — it is held for a pointer
// push/pop, never across an experiment.
type sessionPool struct {
	sys  *anyopt.System
	mu   sync.Mutex
	free []*measureSession
	// all tracks every session ever built, for metrics aggregation.
	all []*measureSession
	// created counts sessions ever built; it doubles as the nonce-base
	// allocator below.
	created uint64
}

func newSessionPool(sys *anyopt.System) *sessionPool {
	return &sessionPool{sys: sys}
}

// sessionNonceStride spaces the jitter-nonce ranges of measure sessions. The
// campaign itself draws nonces from zero, so session n starting at
// (n+1)<<32 keeps every ad-hoc experiment's jitter stream disjoint from the
// campaign's and from every other session's — experiments stay mutually
// independent without any cross-session coordination.
const sessionNonceStride = uint64(1) << 32

// acquire pops a warm session or builds a fresh one.
func (p *sessionPool) acquire() *measureSession {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s
	}
	p.created++
	id := p.created
	p.mu.Unlock()

	d := discovery.New(p.sys.TB, p.sys.Options().Discovery)
	d.SeedNonces(id * sessionNonceStride)
	s := &measureSession{Disc: d}
	p.mu.Lock()
	p.all = append(p.all, s)
	p.mu.Unlock()
	return s
}

// release returns a session to the pool.
func (p *sessionPool) release(s *measureSession) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// simPoolStats sums warm-simulator reuse across every session ever created.
// The per-session counters are atomics, so in-flight sessions are safe to
// read; the mutex only pins the session list.
func (p *sessionPool) simPoolStats() (hits, misses uint64) {
	p.mu.Lock()
	sessions := p.all
	p.mu.Unlock()
	for _, s := range sessions {
		h, m := s.Disc.SimPoolStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// sessionCount returns how many sessions exist and how many are idle.
func (p *sessionPool) sessionCount() (created uint64, idle int) {
	p.mu.Lock()
	created, idle = p.created, len(p.free)
	p.mu.Unlock()
	return created, idle
}
