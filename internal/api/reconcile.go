package api

// Churn reconciliation: POST /v1/churn applies persistent routing churn to
// the live topology, marks the affected client cone stale in a fresh
// snapshot, and queues a cone-scoped repair; a background loop (this package
// is the lint policy's sanctioned goroutine owner) heals the campaign and
// publishes the patched rows through anyopt.System.PatchCampaign. GET
// /v1/reconcile reports the health state machine, staleness, and repair
// statistics.
//
// Locking (extends DESIGN.md §10): the live topology is read lock-free by
// every simulator, so mutating it requires quiescence — s.topoMu is
// write-locked for the brief instant churn events apply (and while the
// catchment walker runs, which serializes the walker's memo as a bonus), and
// read-locked around every campaign that reads the topology: discovery jobs,
// measure sessions, and cone repairs. Repair cycles serialize on
// rec.repairMu; snapshot publication stays on writeMu; rec.mu is a leaf lock
// for counters and the pending-cone queue. No path holds topoMu while
// acquiring writeMu, so the lock order is acyclic.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"anyopt"
	"anyopt/internal/campaign"
	"anyopt/internal/core/prefs"
	"anyopt/internal/fault"
	"anyopt/internal/reconcile"
	"anyopt/internal/topology"
)

// reconciler is the server's churn-reconciliation state.
type reconciler struct {
	// repairMu serializes repair cycles (background loop vs ?sync=1).
	repairMu sync.Mutex

	// warmOpt re-optimizes incrementally across patched generations. Only
	// touched under repairMu.
	warmOpt *anyopt.WarmOptimizer

	// mu guards everything below.
	mu sync.Mutex

	machine reconcile.Machine
	walker  *reconcile.CatchmentWalker
	ckpt    *campaign.Checkpoint

	// pending is the merged cone awaiting the next repair cycle;
	// pendingIDs are its checkpoint patch-record ids.
	pending    *reconcile.Cone
	pendingIDs []string

	// wake signals the background loop; buffered so enqueue never blocks.
	wake     chan struct{}
	loopOnce sync.Once

	inFlight       int
	churnBatches   uint64
	repairs        uint64
	repairFailures uint64
	quorumRetries  uint64
	lastRepairMS   int64
	lastProbed     int
	lastTotal      int
	lastError      string
	quarantined    []quarantinedCone

	// warm-optimizer result of the last successful repair.
	warmGen     uint64
	warmPatched int
	warmEvals   int
	warmMoves   int
	warmMeanMS  float64
}

// quarantinedCone records a cone whose repair failed: its rows stay
// stale-flagged until a later repair or full campaign covers them.
type quarantinedCone struct {
	Clients int    `json:"clients"`
	Reason  string `json:"reason"`
}

// churnRequest is the POST /v1/churn body: either explicit events or a
// seeded plan drawn by fault.PlanChurn.
type churnRequest struct {
	Events []fault.ChurnEvent `json:"events"`
	Seed   int64              `json:"seed"`
	Count  int                `json:"count"`
	Kinds  []string           `json:"kinds"`
}

// recWalker returns the catchment walker, building it on first use. Caller
// holds rec.mu or topoMu exclusively.
func (s *Server) recWalker() *reconcile.CatchmentWalker {
	if s.rec.walker == nil {
		s.rec.walker = reconcile.NewCatchmentWalker(s.sys.TB, s.sys.Options().Discovery.SimCfg)
	}
	return s.rec.walker
}

// recCheckpoint opens (once) the reconciler's patch journal, or returns nil
// when checkpointing is disabled. Open errors surface in /v1/reconcile.
func (s *Server) recCheckpoint() *campaign.Checkpoint {
	if s.checkpointDir == "" {
		return nil
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if s.rec.ckpt == nil {
		ck, err := campaign.NewCheckpoint(filepath.Join(s.checkpointDir, "reconcile.ckpt"))
		if err != nil {
			s.rec.lastError = err.Error()
			return nil
		}
		s.rec.ckpt = ck
	}
	return s.rec.ckpt
}

// startReconcileLoop launches the background repair goroutine exactly once.
func (s *Server) startReconcileLoop() {
	s.rec.loopOnce.Do(func() {
		s.rec.mu.Lock()
		if s.rec.wake == nil {
			s.rec.wake = make(chan struct{}, 1)
		}
		s.rec.mu.Unlock()
		go func() {
			for range s.rec.wake {
				s.runRepairCycle()
			}
		}()
	})
}

// enqueueRepair merges cone (and its checkpoint patch-record ids) into the
// pending queue and wakes the loop. Cone and ids land atomically, so a repair
// cycle never takes one without the other.
func (s *Server) enqueueRepair(cone *reconcile.Cone, ckptIDs ...string) {
	s.startReconcileLoop()
	s.rec.mu.Lock()
	if s.rec.pending == nil {
		s.rec.pending = cone
	} else {
		s.rec.pending.Merge(cone)
	}
	for _, id := range ckptIDs {
		if id != "" {
			s.rec.pendingIDs = append(s.rec.pendingIDs, id)
		}
	}
	wake := s.rec.wake
	s.rec.mu.Unlock()
	select {
	case wake <- struct{}{}:
	default:
	}
}

func (s *Server) handleChurn(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.snapshot(w); !ok {
		return
	}
	var req churnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad churn request: %v", err)
		return
	}
	kinds := make([]fault.ChurnKind, 0, len(req.Kinds))
	for _, name := range req.Kinds {
		k, err := fault.ChurnKindByName(name)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		kinds = append(kinds, k)
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}

	// Apply under the exclusive topology lock: simulators read the topology
	// lock-free, so churn must quiesce every in-flight campaign. The walker
	// diff runs under the same lock — its memo update and the application it
	// observes are atomic.
	s.topoMu.Lock()
	events := req.Events
	if len(events) == 0 {
		events = fault.PlanChurn(s.sys.Topo, req.Seed, count, kinds)
	}
	if len(events) == 0 {
		s.topoMu.Unlock()
		writeErr(w, http.StatusBadRequest, "no churn events to apply")
		return
	}
	if err := fault.ValidateChurn(s.sys.Topo, events); err != nil {
		s.topoMu.Unlock()
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	delta, err := fault.ApplyChurn(s.sys.Topo, events)
	if err != nil {
		s.topoMu.Unlock()
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cone := reconcile.StructuralCone(s.sys.Topo, s.sys.TB.Origin, delta)
	s.rec.mu.Lock()
	walker := s.recWalker()
	s.rec.mu.Unlock()
	walker.ExpandCone(cone)
	s.topoMu.Unlock()

	// Publish the stale marks before answering: from this response on, no
	// consumer sees a pre-churn row presented as fresh.
	s.writeMu.Lock()
	cur := s.sys.CurrentSnapshot()
	staleRows := reconcile.MarkStale(cur.StaleRows, cone, cur.Gen)
	patched := s.sys.PatchCampaign(cur.Pred, cur.RTT, cur.AnnOrder, cur.Experiments, cur.Quarantined, staleRows)
	s.writeMu.Unlock()

	var ckptID string
	var journalErr error
	if ck := s.recCheckpoint(); ck != nil {
		raw, _ := json.Marshal(events)
		ckptID = fmt.Sprintf("churn-%d", patched.Gen)
		if err := ck.RecordPatchPending(ckptID, campaign.PatchRecord{
			Gen:     patched.Gen,
			Clients: cone.SortedClients(),
			Events:  raw,
		}); err != nil {
			// The churn is already live and the stale marks are published;
			// aborting here would strand the cone stale forever. Repair
			// without a journal record — only crash-resumability for this one
			// cone is lost — and surface the failure to the caller.
			journalErr = fmt.Errorf("journaling churn: %w", err)
			ckptID = ""
		}
	}

	s.rec.mu.Lock()
	s.rec.machine.OnChurn()
	s.rec.churnBatches++
	if journalErr != nil {
		s.rec.lastError = journalErr.Error()
	}
	health := s.rec.machine.State()
	s.rec.mu.Unlock()

	s.enqueueRepair(cone, ckptID)

	body := map[string]any{
		"applied":       len(delta.Events),
		"events":        delta.Events,
		"delta":         delta.String(),
		"cone_clients":  len(cone.Clients),
		"cone_observed": cone.Observed,
		"stale_rows":    len(staleRows),
		"snapshot_gen":  patched.Gen,
		"health":        health.String(),
	}
	if journalErr != nil {
		body["journal_error"] = journalErr.Error()
	}
	if r.URL.Query().Get("sync") == "1" {
		s.runRepairCycle()
		s.rec.mu.Lock()
		body["health"] = s.rec.machine.State().String()
		body["repairs"] = s.rec.repairs
		body["last_repair_ms"] = s.rec.lastRepairMS
		body["last_probed_targets"] = s.rec.lastProbed
		body["last_total_targets"] = s.rec.lastTotal
		if s.rec.lastError != "" {
			body["last_error"] = s.rec.lastError
		}
		s.rec.mu.Unlock()
		if cur := s.sys.CurrentSnapshot(); cur != nil {
			body["stale_rows"] = len(cur.StaleRows)
			body["snapshot_gen"] = cur.Gen
		}
	}
	// Accepted, not OK: unless ?sync=1 drained it, the repair is still queued.
	writeJSON(w, http.StatusAccepted, body)
}

// runRepairCycle drains the pending cone queue through one cone-scoped repair
// campaign and publishes the healed rows. Cycles are serialized; a cycle with
// nothing pending is a no-op.
func (s *Server) runRepairCycle() {
	s.rec.repairMu.Lock()
	defer s.rec.repairMu.Unlock()

	s.rec.mu.Lock()
	cone, ids := s.rec.pending, s.rec.pendingIDs
	s.rec.pending, s.rec.pendingIDs = nil, nil
	if cone != nil {
		s.rec.inFlight++
	}
	s.rec.mu.Unlock()
	if cone == nil || len(cone.Clients) == 0 {
		return
	}
	defer func() {
		s.rec.mu.Lock()
		s.rec.inFlight--
		s.rec.mu.Unlock()
	}()

	snap := s.sys.CurrentSnapshot()
	if snap == nil {
		return
	}
	start := time.Now()
	s.topoMu.RLock()
	res, err := reconcile.Repair(s.sys.TB, snap, cone, reconcile.RepairConfig{
		Discovery: s.sys.Options().Discovery,
	})
	s.topoMu.RUnlock()
	elapsed := time.Since(start)

	if err != nil {
		s.recordRepairFailure(cone, err)
		return
	}

	s.writeMu.Lock()
	cur := s.sys.CurrentSnapshot()
	if cur.Pred != snap.Pred || cur.RTT != snap.RTT {
		// A full campaign or import superseded the snapshot we repaired;
		// patching over it would resurrect retired rows. The new campaign is
		// fresh by construction, so the repair is simply obsolete.
		s.writeMu.Unlock()
		s.finishCheckpointPatches(ids)
		return
	}
	// cur may carry stale marks from churn that arrived after our cone was
	// taken; ClearRepaired keeps them (their repair is still queued) and
	// clears only the rows this repair re-measured on the live topology.
	// snap.Gen gates the overlap: a cone client re-marked at snap.Gen or later
	// was churned after our measurement baseline, so its mark survives too.
	staleRows := reconcile.ClearRepaired(cur.StaleRows, cone, snap.Gen)
	patched := s.sys.PatchCampaign(res.Pred, res.RTT, res.AnnOrder, res.Experiments, res.Quarantined, staleRows)
	s.writeMu.Unlock()

	s.finishCheckpointPatches(ids)

	// The healed state is the walker's next diff baseline.
	s.topoMu.Lock()
	s.rec.mu.Lock()
	walker := s.recWalker()
	s.rec.mu.Unlock()
	walker.Refresh()
	s.topoMu.Unlock()

	// Warm-restart the optimizer against the patched generation: only the
	// cone's rows changed, so the incremental path converges in few moves.
	if s.rec.warmOpt == nil {
		s.rec.warmOpt = anyopt.NewWarmOptimizer()
	}
	opt, raw, optErr := s.rec.warmOpt.Reoptimize(patched, anyopt.OptimizeOptions{})

	s.rec.mu.Lock()
	s.rec.repairs++
	s.rec.lastRepairMS = elapsed.Milliseconds()
	s.rec.lastProbed, s.rec.lastTotal = res.ProbedTargets, res.TotalTargets
	s.rec.quorumRetries += res.QuorumRetries
	s.rec.lastError = ""
	if optErr == nil {
		s.rec.warmGen = patched.Gen
		s.rec.warmPatched = raw.Patched
		s.rec.warmEvals = raw.Evals
		s.rec.warmMoves = raw.Moves
		s.rec.warmMeanMS = float64(opt.PredictedMean) / 1e6
	} else {
		s.rec.lastError = optErr.Error()
	}
	morePending := s.rec.pending != nil
	if morePending {
		// Remaining stale rows belong to churn that queued behind this
		// repair — that is "reconciling", not a failed cycle.
		s.rec.machine.OnRepair(0, nil)
		s.rec.machine.OnChurn()
	} else {
		s.rec.machine.OnRepair(len(staleRows), nil)
	}
	s.rec.mu.Unlock()
}

// recordRepairFailure quarantines a cone whose repair failed: its rows stay
// stale-flagged, the health machine degrades, and the failure surfaces in
// /v1/reconcile and /metrics.
func (s *Server) recordRepairFailure(cone *reconcile.Cone, err error) {
	staleRows := 0
	if cur := s.sys.CurrentSnapshot(); cur != nil {
		staleRows = len(cur.StaleRows)
	}
	s.rec.mu.Lock()
	s.rec.repairFailures++
	s.rec.lastError = err.Error()
	s.rec.quarantined = append(s.rec.quarantined, quarantinedCone{
		Clients: len(cone.Clients),
		Reason:  err.Error(),
	})
	s.rec.machine.OnRepair(staleRows, err)
	s.rec.mu.Unlock()
}

// finishCheckpointPatches marks the given patch records committed.
func (s *Server) finishCheckpointPatches(ids []string) {
	if len(ids) == 0 {
		return
	}
	ck := s.recCheckpoint()
	if ck == nil {
		return
	}
	for _, id := range ids {
		if err := ck.RecordPatchDone(id); err != nil {
			s.rec.mu.Lock()
			s.rec.lastError = err.Error()
			s.rec.mu.Unlock()
			return
		}
	}
}

// ResumePendingRepairs replays unfinished cone repairs from the reconcile
// checkpoint after a crash: the journaled churn events are re-applied to the
// (pristine, regenerated) topology, the journaled cones are re-marked stale,
// and a repair is queued — so a restart never serves pre-churn rows as fresh.
// Call after the campaign snapshot is loaded; returns how many patch records
// were resumed.
func (s *Server) ResumePendingRepairs() (int, error) {
	ck := s.recCheckpoint()
	if ck == nil {
		return 0, nil
	}
	pend := ck.PendingPatches()
	if len(pend) == 0 {
		return 0, nil
	}
	if s.sys.CurrentSnapshot() == nil {
		return 0, fmt.Errorf("api: %d unfinished cone repairs journaled but no campaign is loaded", len(pend))
	}
	ids := make([]string, 0, len(pend))
	for id := range pend {
		ids = append(ids, id)
	}
	// Replay in generation order, not lexicographic id order ("churn-10"
	// sorts before "churn-2"): churn events carry absolute values, so
	// re-applying records that touch the same link or AS out of order would
	// reconstruct a topology different from the pre-crash one.
	sort.Slice(ids, func(i, j int) bool {
		gi, gj := pend[ids[i]].Gen, pend[ids[j]].Gen
		if gi != gj {
			return gi < gj
		}
		return ids[i] < ids[j]
	})

	cone := &reconcile.Cone{
		Clients: make(map[prefs.Client]bool),
		// No journaled AS walk to restore; must still be non-nil so a churn
		// arriving before the resumed repair drains can Merge into it.
		ASes: make(map[topology.ASN]bool),
	}
	s.topoMu.Lock()
	for _, id := range ids {
		rec := pend[id]
		var events []fault.ChurnEvent
		if len(rec.Events) > 0 {
			if err := json.Unmarshal(rec.Events, &events); err != nil {
				s.topoMu.Unlock()
				return 0, fmt.Errorf("api: resuming patch %s: %w", id, err)
			}
			if _, err := fault.ApplyChurn(s.sys.Topo, events); err != nil {
				s.topoMu.Unlock()
				return 0, fmt.Errorf("api: resuming patch %s: %w", id, err)
			}
		}
		for _, c := range rec.Clients {
			cone.Clients[c] = true
		}
	}
	s.topoMu.Unlock()

	s.writeMu.Lock()
	cur := s.sys.CurrentSnapshot()
	staleRows := reconcile.MarkStale(cur.StaleRows, cone, cur.Gen)
	s.sys.PatchCampaign(cur.Pred, cur.RTT, cur.AnnOrder, cur.Experiments, cur.Quarantined, staleRows)
	s.writeMu.Unlock()

	s.rec.mu.Lock()
	s.rec.machine.OnChurn()
	s.rec.mu.Unlock()

	// The old ids ride along with the resumed cone: they are marked Done only
	// when the resumed repair commits, so a second crash still resumes.
	s.enqueueRepair(cone, ids...)
	return len(ids), nil
}

// recHealthView snapshots the reconciler state for responses and metrics.
func (s *Server) recHealthView() (health reconcile.Health, stats map[string]any) {
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	pendingClients := 0
	if s.rec.pending != nil {
		pendingClients = len(s.rec.pending.Clients)
	}
	stats = map[string]any{
		"health":              s.rec.machine.State().String(),
		"failures":            s.rec.machine.Failures(),
		"churn_batches":       s.rec.churnBatches,
		"pending_clients":     pendingClients,
		"cones_in_flight":     s.rec.inFlight,
		"repairs":             s.rec.repairs,
		"repair_failures":     s.rec.repairFailures,
		"quorum_retries":      s.rec.quorumRetries,
		"last_repair_ms":      s.rec.lastRepairMS,
		"last_probed_targets": s.rec.lastProbed,
		"last_total_targets":  s.rec.lastTotal,
		"walker_warm":         s.rec.walker != nil && s.rec.walker.Warm(),
	}
	if s.rec.lastError != "" {
		stats["last_error"] = s.rec.lastError
	}
	if len(s.rec.quarantined) > 0 {
		stats["quarantined_cones"] = append([]quarantinedCone(nil), s.rec.quarantined...)
	}
	if s.rec.warmGen > 0 {
		stats["warm_optimize"] = map[string]any{
			"gen":               s.rec.warmGen,
			"patched_rows":      s.rec.warmPatched,
			"evals":             s.rec.warmEvals,
			"moves":             s.rec.warmMoves,
			"predicted_mean_ms": s.rec.warmMeanMS,
		}
	}
	return s.rec.machine.State(), stats
}

func (s *Server) handleReconcileStatus(w http.ResponseWriter, r *http.Request) {
	_, stats := s.recHealthView()
	if snap := s.sys.CurrentSnapshot(); snap != nil {
		stats["snapshot_gen"] = snap.Gen
		stats["stale_rows"] = len(snap.StaleRows)
	} else {
		stats["snapshot_gen"] = 0
		stats["stale_rows"] = 0
	}
	writeJSON(w, http.StatusOK, stats)
}
