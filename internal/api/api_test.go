package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"anyopt"
)

// testServer builds a server over a fresh (undiscovered) system.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// discoveredServer caches one discovered system for the expensive paths.
var sharedTS *httptest.Server

func discoveredServer(t *testing.T) *httptest.Server {
	t.Helper()
	if sharedTS != nil {
		return sharedTS
	}
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	sharedTS = httptest.NewServer(NewServer(sys).Handler())
	return sharedTS
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestTestbedEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var got struct {
		Sites []struct {
			ID      int    `json:"id"`
			City    string `json:"city"`
			Transit string `json:"transit"`
			Peers   int    `json:"peers"`
		} `json:"sites"`
		Targets int `json:"targets"`
	}
	if code := getJSON(t, ts.URL+"/v1/testbed", &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(got.Sites) != 15 || got.Targets == 0 {
		t.Fatalf("testbed: %+v", got)
	}
	if got.Sites[3].City != "Singapore" || got.Sites[3].Peers != 15 {
		t.Errorf("site 4 = %+v", got.Sites[3])
	}
}

func TestPredictRequiresDiscovery(t *testing.T) {
	_, ts := testServer(t)
	if code := getJSON(t, ts.URL+"/v1/predict?config=1,4", nil); code != http.StatusConflict {
		t.Errorf("status %d, want 409 before discovery", code)
	}
}

func TestDiscoverPredictOptimizeFlow(t *testing.T) {
	ts := discoveredServer(t)

	var pred struct {
		MeanRTTms   float64        `json:"mean_rtt_ms"`
		Predictable int            `json:"predictable"`
		Catchments  map[string]int `json:"catchment_szs"`
	}
	if code := getJSON(t, ts.URL+"/v1/predict?config=1,4,6", &pred); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if pred.MeanRTTms <= 0 || pred.Predictable < 100 {
		t.Fatalf("predict: %+v", pred)
	}
	for site := range pred.Catchments {
		if site != "1" && site != "4" && site != "6" {
			t.Errorf("catchment at unexpected site %s", site)
		}
	}

	var meas struct {
		MeanRTTms float64 `json:"mean_rtt_ms"`
		Measured  int     `json:"measured"`
	}
	if code := getJSON(t, ts.URL+"/v1/measure?config=1,4,6", &meas); code != 200 {
		t.Fatalf("measure status %d", code)
	}
	rel := (pred.MeanRTTms - meas.MeanRTTms) / meas.MeanRTTms
	if rel < -0.15 || rel > 0.15 {
		t.Errorf("prediction %0.1f vs measurement %0.1f diverge", pred.MeanRTTms, meas.MeanRTTms)
	}

	var opt struct {
		Config  []int   `json:"config"`
		Mean    float64 `json:"predicted_mean_ms"`
		Subsets int     `json:"subsets"`
	}
	if code := getJSON(t, ts.URL+"/v1/optimize?k=6", &opt); code != 200 {
		t.Fatalf("optimize status %d", code)
	}
	if len(opt.Config) != 6 || opt.Mean <= 0 {
		t.Fatalf("optimize: %+v", opt)
	}

	// Exclusion is honored.
	excluded := opt.Config[0]
	var opt2 struct {
		Config []int `json:"config"`
	}
	url := fmt.Sprintf("%s/v1/optimize?k=6&exclude=%d", ts.URL, excluded)
	if code := getJSON(t, url, &opt2); code != 200 {
		t.Fatalf("optimize exclude status %d", code)
	}
	for _, id := range opt2.Config {
		if id == excluded {
			t.Errorf("excluded site %d in config %v", excluded, opt2.Config)
		}
	}
}

func TestScheduleEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var got struct {
		Singleton      int     `json:"singleton_experiments"`
		Pairwise       int     `json:"pairwise_experiments"`
		SingletonHours float64 `json:"singleton_hours"`
	}
	if code := getJSON(t, ts.URL+"/v1/schedule?sites=500&providers=20&prefixes=4", &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got.Singleton != 500 || got.Pairwise != 380 || got.SingletonHours != 250 {
		t.Fatalf("schedule: %+v", got)
	}
}

func TestCampaignRoundTripOverHTTP(t *testing.T) {
	ts := discoveredServer(t)

	resp, err := http.Get(ts.URL + "/v1/campaign")
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("export: status %d err %v", resp.StatusCode, err)
	}

	// A fresh server imports the campaign and can predict immediately.
	_, ts2 := testServer(t)
	resp, err = http.Post(ts2.URL+"/v1/campaign", "application/json", bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("import status %d", resp.StatusCode)
	}
	if code := getJSON(t, ts2.URL+"/v1/predict?config=1,4", nil); code != 200 {
		t.Errorf("predict after import: status %d", code)
	}
}

func TestBadRequests(t *testing.T) {
	ts := discoveredServer(t)
	cases := []string{
		"/v1/predict",               // missing config
		"/v1/predict?config=x",      // bad id
		"/v1/optimize?k=abc",        // bad k
		"/v1/optimize?exclude=zz",   // bad exclude
		"/v1/schedule?sites=banana", // bad int
	}
	for _, path := range cases {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/discover")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/discover: status %d, want 405", resp.StatusCode)
	}
}

func TestDiscoverEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/discover", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Experiments int `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || got.Experiments == 0 {
		t.Fatalf("discover: status %d, %+v", resp.StatusCode, got)
	}
}
