package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anyopt"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// testServer builds a server over a fresh (undiscovered) system.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// discoveredServer caches one discovered system for the expensive paths.
var sharedTS *httptest.Server

func discoveredServer(t *testing.T) *httptest.Server {
	t.Helper()
	if sharedTS != nil {
		return sharedTS
	}
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	sharedTS = httptest.NewServer(NewServer(sys).Handler())
	return sharedTS
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestTestbedEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var got struct {
		Sites []struct {
			ID      int    `json:"id"`
			City    string `json:"city"`
			Transit string `json:"transit"`
			Peers   int    `json:"peers"`
		} `json:"sites"`
		Targets int `json:"targets"`
	}
	if code := getJSON(t, ts.URL+"/v1/testbed", &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(got.Sites) != 15 || got.Targets == 0 {
		t.Fatalf("testbed: %+v", got)
	}
	if got.Sites[3].City != "Singapore" || got.Sites[3].Peers != 15 {
		t.Errorf("site 4 = %+v", got.Sites[3])
	}
}

func TestPredictRequiresDiscovery(t *testing.T) {
	_, ts := testServer(t)
	if code := getJSON(t, ts.URL+"/v1/predict?config=1,4", nil); code != http.StatusConflict {
		t.Errorf("status %d, want 409 before discovery", code)
	}
}

func TestDiscoverPredictOptimizeFlow(t *testing.T) {
	ts := discoveredServer(t)

	var pred struct {
		MeanRTTms   float64        `json:"mean_rtt_ms"`
		Predictable int            `json:"predictable"`
		Catchments  map[string]int `json:"catchment_szs"`
	}
	if code := getJSON(t, ts.URL+"/v1/predict?config=1,4,6", &pred); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if pred.MeanRTTms <= 0 || pred.Predictable < 100 {
		t.Fatalf("predict: %+v", pred)
	}
	for site := range pred.Catchments {
		if site != "1" && site != "4" && site != "6" {
			t.Errorf("catchment at unexpected site %s", site)
		}
	}

	var meas struct {
		MeanRTTms float64 `json:"mean_rtt_ms"`
		Measured  int     `json:"measured"`
	}
	if code := getJSON(t, ts.URL+"/v1/measure?config=1,4,6", &meas); code != 200 {
		t.Fatalf("measure status %d", code)
	}
	rel := (pred.MeanRTTms - meas.MeanRTTms) / meas.MeanRTTms
	if rel < -0.15 || rel > 0.15 {
		t.Errorf("prediction %0.1f vs measurement %0.1f diverge", pred.MeanRTTms, meas.MeanRTTms)
	}

	var opt struct {
		Config  []int   `json:"config"`
		Mean    float64 `json:"predicted_mean_ms"`
		Subsets int     `json:"subsets"`
	}
	if code := getJSON(t, ts.URL+"/v1/optimize?k=6", &opt); code != 200 {
		t.Fatalf("optimize status %d", code)
	}
	if len(opt.Config) != 6 || opt.Mean <= 0 {
		t.Fatalf("optimize: %+v", opt)
	}

	// Exclusion is honored.
	excluded := opt.Config[0]
	var opt2 struct {
		Config []int `json:"config"`
	}
	url := fmt.Sprintf("%s/v1/optimize?k=6&exclude=%d", ts.URL, excluded)
	if code := getJSON(t, url, &opt2); code != 200 {
		t.Fatalf("optimize exclude status %d", code)
	}
	for _, id := range opt2.Config {
		if id == excluded {
			t.Errorf("excluded site %d in config %v", excluded, opt2.Config)
		}
	}

	// A time budget routes to the anytime solver, whose counters show up in
	// the response and in /metrics.
	var opt3 struct {
		Config []int   `json:"config"`
		Mean   float64 `json:"predicted_mean_ms"`
		Evals  int     `json:"solver_evals"`
		Moves  int     `json:"solver_moves"`
	}
	if code := getJSON(t, ts.URL+"/v1/optimize?k=6&time_budget_ms=500", &opt3); code != 200 {
		t.Fatalf("optimize with time budget: status %d", code)
	}
	if len(opt3.Config) != 6 || opt3.Mean <= 0 {
		t.Fatalf("anytime optimize: %+v", opt3)
	}
	if opt3.Evals <= 0 {
		t.Fatalf("anytime optimize reported no solver evals: %+v", opt3)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "anyoptd_solver_evals_total") {
		t.Error("solver counters missing from /metrics")
	}
}

func TestScheduleEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var got struct {
		Singleton      int     `json:"singleton_experiments"`
		Pairwise       int     `json:"pairwise_experiments"`
		SingletonHours float64 `json:"singleton_hours"`
	}
	if code := getJSON(t, ts.URL+"/v1/schedule?sites=500&providers=20&prefixes=4", &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got.Singleton != 500 || got.Pairwise != 380 || got.SingletonHours != 250 {
		t.Fatalf("schedule: %+v", got)
	}
}

func TestCampaignRoundTripOverHTTP(t *testing.T) {
	ts := discoveredServer(t)

	resp, err := http.Get(ts.URL + "/v1/campaign")
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("export: status %d err %v", resp.StatusCode, err)
	}

	// A fresh server imports the campaign and can predict immediately.
	_, ts2 := testServer(t)
	resp, err = http.Post(ts2.URL+"/v1/campaign", "application/json", bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("import status %d", resp.StatusCode)
	}
	if code := getJSON(t, ts2.URL+"/v1/predict?config=1,4", nil); code != 200 {
		t.Errorf("predict after import: status %d", code)
	}
}

func TestBadRequests(t *testing.T) {
	ts := discoveredServer(t)
	cases := []string{
		"/v1/predict",                      // missing config
		"/v1/predict?config=x",             // bad id
		"/v1/predict?config=1,1",           // duplicate site
		"/v1/predict?config=99",            // out-of-range site
		"/v1/predict?config=0",             // out-of-range site (low)
		"/v1/measure?config=4,4",           // duplicate site
		"/v1/measure?config=-2",            // out-of-range site
		"/v1/optimize?k=abc",               // bad k
		"/v1/optimize?k=-1",                // negative k
		"/v1/optimize?exclude=zz",          // bad exclude
		"/v1/optimize?time_budget_ms=nope", // bad time budget
		"/v1/optimize?time_budget_ms=-5",   // negative time budget
		"/v1/schedule?sites=banana",        // bad int
	}
	for _, path := range cases {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/discover")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/discover: status %d, want 405", resp.StatusCode)
	}
}

func TestDiscoverEndpointWait(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/discover?wait=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Experiments int `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || got.Experiments == 0 {
		t.Fatalf("discover: status %d, %+v", resp.StatusCode, got)
	}
}

// pollJob polls the job until it leaves the running state.
func pollJob(t *testing.T, ts *httptest.Server, id string) (state string, view map[string]any) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var got map[string]any
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &got); code != 200 {
			t.Fatalf("job status %d", code)
		}
		state, _ = got["state"].(string)
		if state != "running" {
			return state, got
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s still running after deadline", id)
	return "", nil
}

func TestDiscoverJobAsync(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/discover", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID string `json:"job_id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || accepted.JobID == "" {
		t.Fatalf("discover accept: status %d %+v err %v", resp.StatusCode, accepted, err)
	}

	// The read path answers (with 409) while the job runs — it is not blocked.
	if code := getJSON(t, ts.URL+"/v1/testbed", nil); code != 200 {
		t.Errorf("testbed during job: status %d", code)
	}

	state, view := pollJob(t, ts, accepted.JobID)
	if state != "done" {
		t.Fatalf("job finished as %q: %+v", state, view)
	}
	result, _ := view["result"].(map[string]any)
	if result == nil || result["experiments"].(float64) == 0 {
		t.Fatalf("job result: %+v", view)
	}
	if gen := result["snapshot_gen"].(float64); gen != 1 {
		t.Errorf("snapshot_gen = %v, want 1", gen)
	}

	// The completed campaign was published: predictions work now.
	if code := getJSON(t, ts.URL+"/v1/predict?config=1,4", nil); code != 200 {
		t.Errorf("predict after job: status %d", code)
	}

	// The job shows up in the listing.
	var list struct {
		Jobs []map[string]any `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != 200 || len(list.Jobs) != 1 {
		t.Errorf("job list: %+v", list)
	}
}

func TestDiscoverJobConflictAndCancel(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/discover", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("discover accept: status %d err %v", resp.StatusCode, err)
	}

	// A second concurrent campaign is refused while the first runs. The first
	// may finish before we ask; both outcomes are legal, only 202 is not.
	resp, err = http.Post(ts.URL+"/v1/discover", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		if state, _ := pollJob(t, ts, accepted.JobID); state == "running" {
			t.Errorf("second job accepted while first still running")
		}
	}

	// Cancellation: either it lands while running (job ends cancelled and no
	// snapshot appears) or the job already finished (409).
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+accepted.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	state, _ := pollJob(t, ts, accepted.JobID)
	switch dresp.StatusCode {
	case http.StatusOK:
		if state != "cancelled" && state != "done" {
			t.Errorf("after cancel, job state = %q", state)
		}
		if state == "cancelled" {
			if code := getJSON(t, ts.URL+"/v1/predict?config=1,4", nil); code != http.StatusConflict {
				t.Errorf("predict after cancelled job: status %d, want 409", code)
			}
		}
	case http.StatusConflict:
		if state != "done" {
			t.Errorf("cancel refused but job state = %q", state)
		}
	default:
		t.Errorf("cancel status %d", dresp.StatusCode)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

func TestEmptyTestbedSitesIsArray(t *testing.T) {
	srv := NewServer(&anyopt.System{
		Topo: &topology.Topology{},
		TB:   &testbed.Testbed{},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/testbed")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("testbed: status %d err %v", resp.StatusCode, err)
	}
	if !bytes.Contains(body, []byte(`"sites":[]`)) {
		t.Errorf("empty testbed sites not [] in %s", body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := discoveredServer(t)
	if code := getJSON(t, ts.URL+"/v1/predict?config=1,4", nil); code != 200 {
		t.Fatalf("predict: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("metrics: status %d err %v", resp.StatusCode, err)
	}
	for _, want := range []string{
		`anyoptd_requests_total{endpoint="predict",code="2xx"}`,
		`anyoptd_request_duration_seconds_bucket{endpoint="predict",le="+Inf"}`,
		"anyoptd_snapshot_generation 1",
		`anyoptd_sim_pool_acquires_total{outcome="hit"}`,
		`anyoptd_discovery_jobs{state="running"} 0`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
