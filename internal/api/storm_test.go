package api

// The concurrency contract test: a storm of parallel /v1/predict and
// /v1/optimize requests, fired while a discovery job is republishing the
// campaign, must produce responses byte-identical to the seed architecture —
// every request serialized behind one mutex — on the same snapshot. Run
// under -race this doubles as the data-race proof for the lock-free read
// path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"anyopt"
)

// serializedHandler wraps h the way the seed server worked: one request at a
// time, whole-server mutex. It is the byte-identity reference.
func serializedHandler(h http.Handler) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		h.ServeHTTP(w, r)
	})
}

func doRecorded(h http.Handler, method, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
	return rec
}

func TestStormPredictOptimizeDuringDiscoveryJob(t *testing.T) {
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	h := srv.Handler()

	// Read-path request mix: predictions over several configurations plus a
	// budgeted optimization. The budget keeps one optimize cheap enough to
	// hammer; determinism does not depend on it.
	urls := []string{
		"/v1/predict?config=1,4,6",
		"/v1/predict?config=2,3,5,7",
		"/v1/predict?config=1,2,3,4,5,6,7,8",
		"/v1/predict?config=15,14,13",
		"/v1/optimize?k=6&budget=200",
		"/v1/optimize?k=4&budget=200&exclude=3",
	}

	// Expected bytes come from the serialized reference on the current
	// snapshot, before the storm starts.
	ref := serializedHandler(h)
	want := make(map[string][]byte, len(urls))
	for _, u := range urls {
		rec := doRecorded(ref, http.MethodGet, u)
		if rec.Code != http.StatusOK {
			t.Fatalf("reference %s: status %d", u, rec.Code)
		}
		want[u] = rec.Body.Bytes()
	}

	// Kick off a discovery job mid-storm. Its fresh Discovery session replays
	// the same deterministic nonce schedule from zero, so the snapshot it
	// publishes is identical to the current one — responses must not change
	// even across the atomic swap.
	rec := doRecorded(h, http.MethodPost, "/v1/discover")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("discover: status %d body %s", rec.Code, rec.Body.String())
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &accepted); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 40
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := urls[(w+i)%len(urls)]
				rec := doRecorded(h, http.MethodGet, u)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("storm %s: status %d body %s", u, rec.Code, rec.Body.String())
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), want[u]) {
					errs <- fmt.Errorf("storm %s: response diverged from serialized reference\n got: %s\nwant: %s",
						u, rec.Body.Bytes(), want[u])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Drain the job and re-check: the republished snapshot serves the same
	// bytes.
	deadlineLoop := 0
	for {
		rec := doRecorded(h, http.MethodGet, "/v1/jobs/"+accepted.JobID)
		var got struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatal(err)
		}
		if got.State != "running" {
			if got.State != "done" {
				t.Fatalf("job finished as %q", got.State)
			}
			break
		}
		if deadlineLoop++; deadlineLoop > 100000 {
			t.Fatal("job never finished")
		}
	}
	if gen := sys.CurrentSnapshot().Gen; gen != 2 {
		t.Fatalf("snapshot generation = %d, want 2 after republication", gen)
	}
	for _, u := range urls {
		rec := doRecorded(h, http.MethodGet, u)
		if !bytes.Equal(rec.Body.Bytes(), want[u]) {
			t.Errorf("%s: response changed after republication\n got: %s\nwant: %s", u, rec.Body.Bytes(), want[u])
		}
	}
}
