// Package api exposes an AnyOpt system over a JSON HTTP API, for operators
// who drive the pipeline from dashboards or scripts rather than the CLI.
//
// Endpoints (all JSON):
//
//	GET    /v1/testbed                     testbed layout (Table 1)
//	POST   /v1/discover                    start an async discovery job (?wait=1 blocks)
//	GET    /v1/jobs                        list discovery jobs
//	GET    /v1/jobs/{id}                   job progress / result
//	DELETE /v1/jobs/{id}                   cancel a running job
//	GET    /v1/predict?config=1,3,5        catchment + mean-RTT prediction
//	GET    /v1/measure?config=1,3,5        deploy and measure (ground truth)
//	GET    /v1/optimize?k=12&budget=0&exclude=2,7
//	GET    /v1/schedule?sites=500&providers=20&prefixes=4
//	GET    /v1/campaign                    export the campaign snapshot
//	POST   /v1/campaign                    import a campaign snapshot
//	POST   /v1/churn                       apply routing churn, queue cone repair (?sync=1 repairs inline)
//	GET    /v1/reconcile                   reconciler health / staleness / repair stats
//	GET    /metrics                        Prometheus text-format metrics
//
// Concurrency model (DESIGN.md §10, §13): the read path — predict, optimize,
// schedule, campaign export — takes no locks at all. Each request loads the
// current immutable campaign Snapshot from an atomic pointer and computes
// against it; measure requests additionally draw a private warm discovery
// session from a session pool. Writers (discovery jobs, campaign import, the
// churn reconciler) serialize among themselves on writeMu and publish a fresh
// snapshot atomically, so a long-running discovery never blocks a prediction.
// The live topology itself is mutable only under topoMu's write lock (churn
// application); every campaign that reads the topology — discovery jobs,
// measure sessions, cone repairs — holds its read lock (see reconcile.go).
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"anyopt"
	"anyopt/internal/campaign"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/predict"
)

// Server wraps a System with HTTP handlers.
type Server struct {
	sys *anyopt.System

	// writeMu serializes campaign writers: discovery jobs, campaign imports,
	// and the churn reconciler's snapshot patches. Readers never touch it —
	// they go through sys.CurrentSnapshot().
	writeMu sync.Mutex

	// topoMu guards the live topology, which simulators otherwise read
	// lock-free: churn application write-locks it (quiescing every in-flight
	// campaign); discovery jobs, measure sessions, and cone repairs hold the
	// read lock while their simulations run.
	topoMu sync.RWMutex

	// rec is the churn reconciler's state (see reconcile.go).
	rec reconciler

	// sessions hands out warm per-request discovery sessions for /v1/measure.
	sessions *sessionPool

	// jobs tracks async discovery jobs.
	jobs jobRegistry

	// checkpointDir, when non-empty, enables ?checkpoint=name on discovery
	// jobs: the job journals completed experiments to that file and a re-run
	// after a crash resumes from it.
	checkpointDir string

	// metrics instruments every endpoint.
	metrics *metrics
}

// NewServer builds a server around sys.
func NewServer(sys *anyopt.System) *Server {
	return &Server{
		sys:      sys,
		sessions: newSessionPool(sys),
		metrics:  newMetrics(),
	}
}

// SetCheckpointDir enables discovery-job checkpointing under dir (see
// Server.checkpointDir). Call before serving.
func (s *Server) SetCheckpointDir(dir string) { s.checkpointDir = dir }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, name string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.metrics.instrument(name, h))
	}
	handle("GET /v1/testbed", "testbed", s.handleTestbed)
	handle("POST /v1/discover", "discover", s.handleDiscover)
	handle("GET /v1/jobs", "jobs", s.handleJobList)
	handle("GET /v1/jobs/{id}", "jobs", s.handleJobGet)
	handle("DELETE /v1/jobs/{id}", "jobs", s.handleJobCancel)
	handle("GET /v1/predict", "predict", s.handlePredict)
	handle("GET /v1/measure", "measure", s.handleMeasure)
	handle("GET /v1/optimize", "optimize", s.handleOptimize)
	handle("GET /v1/schedule", "schedule", s.handleSchedule)
	handle("GET /v1/campaign", "campaign", s.handleCampaignExport)
	handle("POST /v1/campaign", "campaign", s.handleCampaignImport)
	handle("POST /v1/churn", "churn", s.handleChurn)
	handle("GET /v1/reconcile", "reconcile", s.handleReconcileStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// httpError is the error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

// parseConfig reads and validates the config query parameter: well-formed
// integers naming distinct, existing sites. Garbage configurations are a 400
// at the door, never an input to prediction.
func (s *Server) parseConfig(r *http.Request) (anyopt.Config, error) {
	raw := r.URL.Query().Get("config")
	if raw == "" {
		return nil, fmt.Errorf("missing config parameter")
	}
	var cfg anyopt.Config
	for _, part := range strings.Split(raw, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad site id %q", part)
		}
		cfg = append(cfg, id)
	}
	if err := s.sys.ValidateConfig(cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", name, raw)
	}
	return v, nil
}

// snapshot returns the current campaign snapshot or writes the 409 that
// tells the client to run discovery first.
func (s *Server) snapshot(w http.ResponseWriter) (*anyopt.Snapshot, bool) {
	snap := s.sys.CurrentSnapshot()
	if snap == nil {
		writeErr(w, http.StatusConflict, "anyopt: RunDiscovery has not been executed")
		return nil, false
	}
	return snap, true
}

type siteJSON struct {
	ID        int     `json:"id"`
	City      string  `json:"city"`
	Transit   string  `json:"transit"`
	Peers     int     `json:"peers"`
	TunnelRTT float64 `json:"tunnel_rtt_ms"`
}

func (s *Server) handleTestbed(w http.ResponseWriter, r *http.Request) {
	sites := make([]siteJSON, 0, len(s.sys.TB.Sites))
	for _, site := range s.sys.TB.Sites {
		sites = append(sites, siteJSON{
			ID: site.ID, City: site.City, Transit: site.TransitName,
			Peers: len(site.PeerLinks), TunnelRTT: float64(site.TunnelRTT) / 1e6,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sites":   sites,
		"targets": len(s.sys.Topo.Targets),
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	cfg, err := s.parseConfig(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	body := predictResponse(snap, cfg)
	// Serving-quality annotations (DESIGN.md §13): the reconciler health
	// state and, when churn has outrun repair, exactly which client rows are
	// still backed by pre-churn data and from which generation.
	health, _ := s.recHealthView()
	body["health"] = health.String()
	if n := len(snap.StaleRows); n > 0 {
		body["stale_rows"] = n
		body["stale_clients"] = staleClientsJSON(snap)
	}
	writeJSON(w, http.StatusOK, body)
}

// predictResponse computes the /v1/predict body against one snapshot. Split
// out so the benchmark's serialized reference server produces byte-identical
// responses from the same code.
func predictResponse(snap *anyopt.Snapshot, cfg anyopt.Config) map[string]any {
	catch := snap.PredictCatchments(cfg)
	mean, n := snap.PredictMeanRTT(cfg)
	perSite := map[string]int{}
	for _, site := range catch {
		perSite[strconv.Itoa(site)]++
	}
	return map[string]any{
		"config":        cfg,
		"mean_rtt_ms":   float64(mean) / 1e6,
		"predictable":   n,
		"catchment_szs": perSite,
	}
}

// staleClientJSON is one stale prediction row: the client AS and the snapshot
// generation whose campaign data it still reflects.
type staleClientJSON struct {
	Client int64  `json:"client"`
	Gen    uint64 `json:"gen"`
}

// staleClientsJSON lists the snapshot's stale rows in client order.
func staleClientsJSON(snap *anyopt.Snapshot) []staleClientJSON {
	out := make([]staleClientJSON, 0, len(snap.StaleRows))
	for c, g := range snap.StaleRows {
		out = append(out, staleClientJSON{Client: int64(c), Gen: g})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	cfg, err := s.parseConfig(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The session's simulations read the live topology; hold the read lock so
	// churn application (which write-locks topoMu) quiesces us first.
	s.topoMu.RLock()
	sess := s.sessions.acquire()
	catch, rtts := sess.Disc.RunConfigurationRTTs(cfg)
	s.sessions.release(sess)
	s.topoMu.RUnlock()
	mean, n := predict.MeasuredMeanRTT(rtts)
	perSite := map[string]int{}
	for _, site := range catch {
		perSite[strconv.Itoa(site)]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"config":        cfg,
		"mean_rtt_ms":   float64(mean) / 1e6,
		"measured":      n,
		"catchment_szs": perSite,
	})
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k", 12)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	budget, err := intParam(r, "budget", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	timeBudgetMs, err := intParam(r, "time_budget_ms", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if timeBudgetMs < 0 {
		writeErr(w, http.StatusBadRequest, "time_budget_ms must be >= 0, got %d", timeBudgetMs)
		return
	}
	if k < 0 || budget < 0 {
		writeErr(w, http.StatusBadRequest, "k and budget must be >= 0")
		return
	}
	var exclude []int
	if raw := r.URL.Query().Get("exclude"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad exclude id %q", part)
				return
			}
			exclude = append(exclude, id)
		}
	}
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	body, err := optimizeResponse(snap, k, budget, timeBudgetMs, exclude)
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	if evals, ok := body["solver_evals"].(int); ok {
		s.metrics.solverEvals.Add(uint64(evals))
		s.metrics.solverMoves.Add(uint64(body["solver_moves"].(int)))
	}
	writeJSON(w, http.StatusOK, body)
}

// optimizeResponse computes the /v1/optimize body against one snapshot; see
// predictResponse for why it is split out. A positive timeBudgetMs routes
// the request to the anytime solver (which also takes over automatically on
// networks past the 63-site bitmask limit); the response then carries the
// solver's eval/move counters.
func optimizeResponse(snap *anyopt.Snapshot, k, budget, timeBudgetMs int, exclude []int) (map[string]any, error) {
	var res anyopt.OptimizeResult
	var err error
	anytime := timeBudgetMs > 0 || len(snap.TB.Sites) > 63
	switch {
	case anytime:
		res, err = snap.OptimizeWith(anyopt.OptimizeOptions{
			K:          k,
			MaxSubsets: budget,
			Exclude:    exclude,
			TimeBudget: time.Duration(timeBudgetMs) * time.Millisecond,
		})
	case len(exclude) > 0:
		res, err = snap.OptimizeExcluding(k, budget, exclude...)
	default:
		res, err = snap.Optimize(k, budget)
	}
	if err != nil {
		return nil, err
	}
	body := map[string]any{
		"config":            res.Config,
		"predicted_mean_ms": float64(res.PredictedMean) / 1e6,
		"subsets":           res.SubsetsEvaluated,
		"orderable_clients": res.OrderableClients,
	}
	if anytime {
		body["solver_evals"] = res.Evals
		body["solver_moves"] = res.Moves
	}
	return body, nil
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	sites, err := intParam(r, "sites", 500)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	providers, err := intParam(r, "providers", 20)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	prefixes, err := intParam(r, "prefixes", 4)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan := discovery.PlanTransitOnly(sites, providers, prefixes, true)
	writeJSON(w, http.StatusOK, map[string]any{
		"singleton_experiments": plan.SingletonExperiments,
		"pairwise_experiments":  plan.PairwiseExperiments,
		"singleton_hours":       plan.SingletonHours(),
		"pairwise_hours":        plan.PairwiseHours(),
		"total_days":            plan.TotalDays(),
	})
}

func (s *Server) handleCampaignExport(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := campaign.SaveSnapshot(w, snap); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
	}
}

func (s *Server) handleCampaignImport(w http.ResponseWriter, r *http.Request) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := campaign.Load(r.Body, s.sys); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"loaded": true})
}
