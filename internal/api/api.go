// Package api exposes an AnyOpt system over a JSON HTTP API, for operators
// who drive the pipeline from dashboards or scripts rather than the CLI.
//
// Endpoints (all JSON):
//
//	GET  /v1/testbed                     testbed layout (Table 1)
//	POST /v1/discover                    run the measurement campaign
//	GET  /v1/predict?config=1,3,5        catchment + mean-RTT prediction
//	GET  /v1/measure?config=1,3,5        deploy and measure (ground truth)
//	GET  /v1/optimize?k=12&budget=0&exclude=2,7
//	GET  /v1/schedule?sites=500&providers=20&prefixes=4
//	GET  /v1/campaign                    export the campaign snapshot
//	POST /v1/campaign                    import a campaign snapshot
//
// Discovery runs can take a while; they execute synchronously and the
// server serializes all system access, so the API is safe for concurrent
// clients without the System itself being thread-safe.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"anyopt"
	"anyopt/internal/campaign"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/predict"
)

// Server wraps a System with HTTP handlers.
type Server struct {
	mu  sync.Mutex
	sys *anyopt.System
}

// NewServer builds a server around sys.
func NewServer(sys *anyopt.System) *Server {
	return &Server{sys: sys}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/testbed", s.handleTestbed)
	mux.HandleFunc("POST /v1/discover", s.handleDiscover)
	mux.HandleFunc("GET /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/measure", s.handleMeasure)
	mux.HandleFunc("GET /v1/optimize", s.handleOptimize)
	mux.HandleFunc("GET /v1/schedule", s.handleSchedule)
	mux.HandleFunc("GET /v1/campaign", s.handleCampaignExport)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaignImport)
	return mux
}

// httpError is the error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

// parseConfig reads the config query parameter.
func parseConfig(r *http.Request) (anyopt.Config, error) {
	raw := r.URL.Query().Get("config")
	if raw == "" {
		return nil, fmt.Errorf("missing config parameter")
	}
	var cfg anyopt.Config
	for _, part := range strings.Split(raw, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad site id %q", part)
		}
		cfg = append(cfg, id)
	}
	return cfg, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", name, raw)
	}
	return v, nil
}

type siteJSON struct {
	ID        int     `json:"id"`
	City      string  `json:"city"`
	Transit   string  `json:"transit"`
	Peers     int     `json:"peers"`
	TunnelRTT float64 `json:"tunnel_rtt_ms"`
}

func (s *Server) handleTestbed(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sites []siteJSON
	for _, site := range s.sys.TB.Sites {
		sites = append(sites, siteJSON{
			ID: site.ID, City: site.City, Transit: site.TransitName,
			Peers: len(site.PeerLinks), TunnelRTT: float64(site.TunnelRTT) / 1e6,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sites":   sites,
		"targets": len(s.sys.Topo.Targets),
	})
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	if err := s.sys.RunDiscovery(); err != nil {
		writeErr(w, http.StatusInternalServerError, "discovery: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"experiments": s.sys.Experiments(),
		"probes":      s.sys.Disc.ProbesSent,
		"elapsed_ms":  time.Since(start).Milliseconds(),
		"ann_order":   s.sys.AnnOrder,
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg, err := parseConfig(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	catch, err := s.sys.PredictCatchments(cfg)
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	mean, n, err := s.sys.PredictMeanRTT(cfg)
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	perSite := map[string]int{}
	for _, site := range catch {
		perSite[strconv.Itoa(site)]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"config":        cfg,
		"mean_rtt_ms":   float64(mean) / 1e6,
		"predictable":   n,
		"catchment_szs": perSite,
	})
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg, err := parseConfig(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	catch, rtts := s.sys.MeasureConfiguration(cfg)
	mean, n := predict.MeasuredMeanRTT(rtts)
	perSite := map[string]int{}
	for _, site := range catch {
		perSite[strconv.Itoa(site)]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"config":        cfg,
		"mean_rtt_ms":   float64(mean) / 1e6,
		"measured":      n,
		"catchment_szs": perSite,
	})
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, err := intParam(r, "k", 12)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	budget, err := intParam(r, "budget", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var exclude []int
	if raw := r.URL.Query().Get("exclude"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad exclude id %q", part)
				return
			}
			exclude = append(exclude, id)
		}
	}
	var res anyopt.OptimizeResult
	if len(exclude) > 0 {
		res, err = s.sys.OptimizeExcluding(k, budget, exclude...)
	} else {
		res, err = s.sys.Optimize(k, budget)
	}
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"config":            res.Config,
		"predicted_mean_ms": float64(res.PredictedMean) / 1e6,
		"subsets":           res.SubsetsEvaluated,
		"orderable_clients": res.OrderableClients,
	})
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	sites, err := intParam(r, "sites", 500)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	providers, err := intParam(r, "providers", 20)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	prefixes, err := intParam(r, "prefixes", 4)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan := discovery.PlanTransitOnly(sites, providers, prefixes, true)
	writeJSON(w, http.StatusOK, map[string]any{
		"singleton_experiments": plan.SingletonExperiments,
		"pairwise_experiments":  plan.PairwiseExperiments,
		"singleton_hours":       plan.SingletonHours(),
		"pairwise_hours":        plan.PairwiseHours(),
		"total_days":            plan.TotalDays(),
	})
}

func (s *Server) handleCampaignExport(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := campaign.Save(w, s.sys); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
	}
}

func (s *Server) handleCampaignImport(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := campaign.Load(r.Body, s.sys); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"loaded": true})
}
