package api

// Async discovery jobs. POST /v1/discover no longer blocks the server for
// the length of a measurement campaign: it registers a job, runs the
// campaign on a private Discovery session in a background goroutine (this
// package is an allowed goroutine owner in the lint policy — the job runner
// is exactly why), and atomically publishes the finished campaign as a fresh
// snapshot. Readers keep serving the previous snapshot, uninterrupted, for
// the entire run.
//
// Jobs are cancellable (DELETE /v1/jobs/{id} cancels the Discovery context;
// exec.Pool.ForEachCtx drains queued experiments at the next batch boundary)
// and checkpointable (?checkpoint=name journals completed experiments
// through campaign.Checkpoint; a re-run with the same name replays them
// byte-identically and continues where the crash happened). A job uses a
// fresh Discovery whose nonces start at zero — the same deterministic
// schedule as System.RunDiscovery — so resumed and uninterrupted campaigns
// produce identical snapshots.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"anyopt"
	"anyopt/internal/campaign"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/predict"
	"anyopt/internal/core/prefs"
)

// Job states.
const (
	jobRunning   = "running"
	jobDone      = "done"
	jobFailed    = "failed"
	jobCancelled = "cancelled"
)

// discoverResult is the payload of a completed discovery job — the same
// shape the synchronous endpoint historically returned.
type discoverResult struct {
	Experiments int          `json:"experiments"`
	Probes      uint64       `json:"probes"`
	ElapsedMS   int64        `json:"elapsed_ms"`
	AnnOrder    []prefs.Item `json:"ann_order"`
	SnapshotGen uint64       `json:"snapshot_gen"`
}

// job is one discovery campaign run. Mutable fields are guarded by mu;
// progress is read lock-free from the session's atomic counters.
type job struct {
	id    string
	disc  *discovery.Discovery
	total int
	start time.Time

	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	errMsg   string
	finished time.Time
	result   *discoverResult
}

// view renders the job for JSON responses.
func (j *job) view() map[string]any {
	j.mu.Lock()
	state, errMsg, finished, result := j.state, j.errMsg, j.finished, j.result
	j.mu.Unlock()
	elapsed := time.Since(j.start)
	if !finished.IsZero() {
		elapsed = finished.Sub(j.start)
	}
	out := map[string]any{
		"id":                    j.id,
		"state":                 state,
		"completed_experiments": j.disc.CompletedExperiments(),
		"total_experiments":     j.total,
		"elapsed_ms":            elapsed.Milliseconds(),
	}
	if errMsg != "" {
		out["error"] = errMsg
	}
	if result != nil {
		out["result"] = result
	}
	return out
}

func (j *job) finish(state, errMsg string, result *discoverResult) {
	j.mu.Lock()
	j.state, j.errMsg, j.result, j.finished = state, errMsg, result, time.Now()
	j.mu.Unlock()
}

// jobRegistry tracks discovery jobs. At most one runs at a time: campaign
// writers are serialized, and queueing a second multi-week campaign behind
// the first silently is worse than telling the operator now.
type jobRegistry struct {
	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	seq     int
	running *job
}

// begin registers a new running job, failing if one is already in flight.
// The cancel func is installed before the job becomes visible, so a cancel
// request can never observe a half-built job.
func (r *jobRegistry) begin(disc *discovery.Discovery, total int, cancel context.CancelFunc) (*job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running != nil {
		return nil, fmt.Errorf("discovery job %s is already running", r.running.id)
	}
	r.seq++
	j := &job{
		id:     fmt.Sprintf("job-%d", r.seq),
		disc:   disc,
		total:  total,
		start:  time.Now(),
		state:  jobRunning,
		cancel: cancel,
	}
	if r.jobs == nil {
		r.jobs = make(map[string]*job)
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.running = j
	return j, nil
}

// done clears the running slot.
func (r *jobRegistry) done(j *job) {
	r.mu.Lock()
	if r.running == j {
		r.running = nil
	}
	r.mu.Unlock()
}

func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// list returns all jobs in creation order.
func (r *jobRegistry) list() []*job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*job, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.jobs[id])
	}
	return out
}

// stateCounts tallies jobs by state, for /metrics.
func (r *jobRegistry) stateCounts() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{jobRunning: 0, jobDone: 0, jobFailed: 0, jobCancelled: 0}
	for _, j := range r.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// estimateCampaignExperiments predicts how many experiments a full discovery
// campaign runs — singleton RTTs per site, order-controlled provider pairs
// both ways, and (without the RTT heuristic) one simultaneous experiment per
// intra-provider site pair — so job progress has a denominator.
func estimateCampaignExperiments(sys *anyopt.System) int {
	tb := sys.TB
	providers := tb.TransitProviders()
	p := len(providers)
	total := len(tb.Sites) + p*(p-1) // sites singletons + 2·C(p,2) ordered pairs
	if !sys.Options().UseRTTHeuristic {
		for _, prov := range providers {
			k := len(tb.SitesOfTransit(prov))
			total += k * (k - 1) / 2
		}
	}
	return total
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	disc := discovery.New(s.sys.TB, s.sys.Options().Discovery)
	if name := r.URL.Query().Get("checkpoint"); name != "" {
		if s.checkpointDir == "" {
			writeErr(w, http.StatusBadRequest, "checkpointing is not enabled on this server")
			return
		}
		if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
			writeErr(w, http.StatusBadRequest, "bad checkpoint name %q", name)
			return
		}
		ck, err := campaign.NewCheckpoint(filepath.Join(s.checkpointDir, name+".ckpt"))
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "opening checkpoint: %v", err)
			return
		}
		disc.SetJournal(ck)
	}

	ctx, cancel := context.WithCancel(context.Background())
	disc.SetContext(ctx)
	j, err := s.jobs.begin(disc, estimateCampaignExperiments(s.sys), cancel)
	if err != nil {
		cancel()
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}

	if r.URL.Query().Get("wait") == "1" {
		// Legacy synchronous mode: run the job inline and answer with the
		// completed campaign, exactly as the pre-job API did.
		s.runDiscoverJob(j)
		j.mu.Lock()
		state, errMsg, result := j.state, j.errMsg, j.result
		j.mu.Unlock()
		if state != jobDone {
			writeErr(w, http.StatusInternalServerError, "discovery: %s", errMsg)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"experiments": result.Experiments,
			"probes":      result.Probes,
			"elapsed_ms":  result.ElapsedMS,
			"ann_order":   result.AnnOrder,
		})
		return
	}

	go func() {
		s.runDiscoverJob(j)
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job_id": j.id,
		"state":  jobRunning,
		"status": "/v1/jobs/" + j.id,
	})
}

// runDiscoverJob executes one campaign to completion (or cancellation) and,
// on success, publishes the result as the System's current snapshot.
func (s *Server) runDiscoverJob(j *job) {
	defer s.jobs.done(j)
	defer j.cancel()

	// The campaign's simulations read the live topology; the read lock makes
	// churn application wait for the job instead of mutating under it.
	s.topoMu.RLock()
	pred, rtt, err := predict.NewPredictor(s.sys.TB, j.disc, s.sys.Options().UseRTTHeuristic)
	s.topoMu.RUnlock()
	if err == nil {
		// Batch APIs surface infrastructure errors (cancellation, checkpoint
		// I/O, schedule mismatch) out of band; a campaign built over them is
		// incomplete and must not be published.
		err = j.disc.Err()
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			j.finish(jobCancelled, "cancelled by operator", nil)
		} else {
			j.finish(jobFailed, err.Error(), nil)
		}
		return
	}
	order, _ := pred.Providers.BestAnnouncementOrder(7)

	s.writeMu.Lock()
	snap := s.sys.InstallCampaign(pred, rtt, order, j.disc.Experiments, j.disc.Quarantined())
	s.writeMu.Unlock()

	j.finish(jobDone, "", &discoverResult{
		Experiments: j.disc.Experiments,
		Probes:      j.disc.ProbesSent,
		ElapsedMS:   time.Since(j.start).Milliseconds(),
		AnnOrder:    append([]prefs.Item(nil), snap.AnnOrder...),
		SnapshotGen: snap.Gen,
	})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := make([]map[string]any, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.view())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	// Decide and act under the job lock: finish() also takes it, so a job
	// completing concurrently either lands before the check (the cancel is a
	// 409 carrying the terminal state and result) or after the cancel signal
	// (the context is already cancelled when the runner next checks). The
	// unlocked check-then-cancel this replaces could report "cancelling" for
	// a job that had already published its campaign.
	j.mu.Lock()
	state, errMsg, result := j.state, j.errMsg, j.result
	if state == jobRunning {
		j.cancel()
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "cancelling": true})
		return
	}
	j.mu.Unlock()
	body := map[string]any{
		"error": fmt.Sprintf("job %s is %s, not running", j.id, state),
		"id":    j.id,
		"state": state,
	}
	if errMsg != "" {
		body["job_error"] = errMsg
	}
	if result != nil {
		body["result"] = result
	}
	writeJSON(w, http.StatusConflict, body)
}
