package api

// Tests for the churn reconciler's HTTP surface: end-to-end churn → repair
// convergence, degraded-mode staleness visibility on /v1/predict, the
// /v1/reconcile health view, crash-resume from the reconcile checkpoint, and
// the job-cancel races.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"anyopt"
	"anyopt/internal/campaign"
	"anyopt/internal/core/prefs"
	"anyopt/internal/fault"
)

// discoveredChurnServer builds a private discovered server. Churn mutates the
// topology, so these tests never share the cached fixture.
func discoveredChurnServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

func TestChurnRequiresCampaign(t *testing.T) {
	_, ts := testServer(t)
	if code, _ := postJSON(t, ts.URL+"/v1/churn", `{"seed":7}`); code != http.StatusConflict {
		t.Errorf("churn before discovery: status %d, want 409", code)
	}
}

func TestChurnSyncHealsAndStaysFresh(t *testing.T) {
	srv, ts := discoveredChurnServer(t)
	startGen := srv.sys.CurrentSnapshot().Gen

	code, got := postJSON(t, ts.URL+"/v1/churn?sync=1", `{"seed":7,"count":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("churn status %d: %v", code, got)
	}
	if got["applied"].(float64) < 1 || got["cone_clients"].(float64) < 1 {
		t.Fatalf("churn response: %v", got)
	}
	// ?sync=1 drained the repair before answering: staleness must be gone and
	// the snapshot two generations ahead (stale-mark patch + healed patch).
	if got["health"] != "fresh" || got["stale_rows"].(float64) != 0 {
		t.Errorf("after sync churn: health=%v stale_rows=%v", got["health"], got["stale_rows"])
	}
	if gen := got["snapshot_gen"].(float64); gen != float64(startGen+2) {
		t.Errorf("snapshot gen %v, want %d", gen, startGen+2)
	}
	if got["repairs"].(float64) != 1 {
		t.Errorf("repairs = %v, want 1", got["repairs"])
	}
	probed := got["last_probed_targets"].(float64)
	total := got["last_total_targets"].(float64)
	if probed <= 0 || probed >= total {
		t.Errorf("repair scope %v/%v targets, want a strict subset", probed, total)
	}

	var pred map[string]any
	if code := getJSON(t, ts.URL+"/v1/predict?config=1,4,6", &pred); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if pred["health"] != "fresh" {
		t.Errorf("predict health = %v", pred["health"])
	}
	if _, ok := pred["stale_rows"]; ok {
		t.Error("healed snapshot still advertises stale rows on /v1/predict")
	}

	var rec map[string]any
	if code := getJSON(t, ts.URL+"/v1/reconcile", &rec); code != 200 {
		t.Fatalf("reconcile status %d", code)
	}
	if rec["health"] != "fresh" || rec["stale_rows"].(float64) != 0 ||
		rec["repairs"].(float64) != 1 || rec["walker_warm"] != true {
		t.Errorf("reconcile view: %v", rec)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		"anyoptd_reconcile_health 0",
		"anyoptd_stale_rows 0",
		"anyoptd_repairs_total{outcome=\"ok\"} 1",
		"anyoptd_cones_in_flight 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestChurnStalenessVisibleUntilRepair(t *testing.T) {
	srv, ts := discoveredChurnServer(t)

	// Hold the repair mutex so the queued repair cannot run: the degraded
	// window becomes observable instead of racing the background loop.
	srv.rec.repairMu.Lock()
	unlocked := false
	defer func() {
		if !unlocked {
			srv.rec.repairMu.Unlock()
		}
	}()

	code, got := postJSON(t, ts.URL+"/v1/churn", `{"seed":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("churn status %d: %v", code, got)
	}
	if got["health"] != "reconciling" {
		t.Errorf("queued churn health = %v, want reconciling", got["health"])
	}
	staleRows := got["stale_rows"].(float64)
	if staleRows < 1 {
		t.Fatalf("churn marked %v rows stale, want >= 1", staleRows)
	}

	// Degraded-mode serving: /v1/predict still answers, but carries the
	// staleness annotation until the repair commits.
	var pred map[string]any
	if code := getJSON(t, ts.URL+"/v1/predict?config=1,4,6", &pred); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if pred["health"] != "reconciling" {
		t.Errorf("predict health = %v, want reconciling", pred["health"])
	}
	if pred["stale_rows"].(float64) != staleRows {
		t.Errorf("predict stale_rows = %v, churn marked %v", pred["stale_rows"], staleRows)
	}
	clients, ok := pred["stale_clients"].([]any)
	if !ok || len(clients) != int(staleRows) {
		t.Fatalf("predict stale_clients = %v", pred["stale_clients"])
	}
	first := clients[0].(map[string]any)
	if first["client"].(float64) <= 0 || first["gen"].(float64) <= 0 {
		t.Errorf("stale client entry: %v", first)
	}

	var rec map[string]any
	getJSON(t, ts.URL+"/v1/reconcile", &rec)
	if rec["pending_clients"].(float64) < 1 {
		t.Errorf("reconcile pending_clients = %v, want >= 1", rec["pending_clients"])
	}

	// Release the repair and drain it inline: runRepairCycle serializes on
	// repairMu with the background loop, so when this call returns the cone is
	// healed whichever goroutine did the work.
	srv.rec.repairMu.Unlock()
	unlocked = true
	srv.runRepairCycle()

	pred = nil // decoding into a non-nil map merges keys; start clean
	if code := getJSON(t, ts.URL+"/v1/predict?config=1,4,6", &pred); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if pred["health"] != "fresh" {
		t.Errorf("post-repair predict health = %v", pred["health"])
	}
	if _, stale := pred["stale_rows"]; stale {
		t.Error("post-repair predict still advertises stale rows")
	}
}

func TestChurnBadRequests(t *testing.T) {
	srv, ts := discoveredChurnServer(t)
	gen := srv.sys.CurrentSnapshot().Gen

	if code, _ := postJSON(t, ts.URL+"/v1/churn", `{"kinds":["nope"]}`); code != http.StatusBadRequest {
		t.Errorf("bad kind: status %d, want 400", code)
	}
	// A batch with one bad event is rejected whole — ValidateChurn runs
	// before any mutation, so no prefix of the batch leaks into the topology.
	bad := `{"events":[{"kind":"link_cost","link":1,"new_delay":1000000},{"kind":"link_down","link":999999}]}`
	if code, _ := postJSON(t, ts.URL+"/v1/churn", bad); code != http.StatusBadRequest {
		t.Errorf("bad batch: status %d, want 400", code)
	}
	if got := srv.sys.CurrentSnapshot().Gen; got != gen {
		t.Errorf("rejected churn advanced the snapshot: gen %d -> %d", gen, got)
	}
	if len(srv.sys.CurrentSnapshot().StaleRows) != 0 {
		t.Error("rejected churn left stale marks")
	}
}

// TestJobCancelAfterComplete is the satellite regression: cancelling a job
// that already published its campaign must answer 409 with the terminal
// state, never 200 "cancelling" for work that cannot be uncommitted.
func TestJobCancelAfterComplete(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/discover?wait=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synchronous discover: status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel after complete: status %d, want 409", dresp.StatusCode)
	}
	var got struct {
		State  string         `json:"state"`
		Result map[string]any `json:"result"`
		Error  string         `json:"error"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != "done" || got.Error == "" {
		t.Errorf("cancel-after-complete body: %+v", got)
	}
	if got.Result == nil || got.Result["snapshot_gen"].(float64) < 1 {
		t.Errorf("409 should carry the terminal result, got %v", got.Result)
	}
}

// TestJobCancelMidFlight races a cancel against a running campaign: a 200
// means the cancel landed while running (the job must end cancelled or have
// won the race to done), a 409 means the job finished first and the response
// names the terminal state.
func TestJobCancelMidFlight(t *testing.T) {
	_, ts := testServer(t)
	code, accepted := postJSON(t, ts.URL+"/v1/discover", "")
	if code != http.StatusAccepted {
		t.Fatalf("discover: status %d", code)
	}
	id := accepted["job_id"].(string)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	err = json.NewDecoder(dresp.Body).Decode(&body)
	dresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	state, _ := pollJob(t, ts, id)
	switch dresp.StatusCode {
	case http.StatusOK:
		if body["cancelling"] != true {
			t.Errorf("200 cancel body: %v", body)
		}
		if state != "cancelled" && state != "done" {
			t.Errorf("after mid-flight cancel, job state = %q", state)
		}
	case http.StatusConflict:
		if body["state"] != state || state == "running" {
			t.Errorf("409 cancel: body state %v, job state %q", body["state"], state)
		}
	default:
		t.Errorf("cancel status %d", dresp.StatusCode)
	}
}

// TestReconcileResume is the satellite-2 regression: a crash between the
// stale-mark patch and the repair commit must resume — and replay only — the
// unfinished cone repair on restart.
func TestReconcileResume(t *testing.T) {
	dir := t.TempDir()

	srvA, tsA := discoveredChurnServer(t)
	srvA.SetCheckpointDir(dir)
	// Block A's repair loop: the churn below journals a pending patch record
	// that never commits — the crash window.
	srvA.rec.repairMu.Lock()
	defer srvA.rec.repairMu.Unlock()
	code, got := postJSON(t, tsA.URL+"/v1/churn", `{"seed":11}`)
	if code != http.StatusAccepted {
		t.Fatalf("churn status %d: %v", code, got)
	}
	staleRows := int(got["stale_rows"].(float64))
	if staleRows < 1 {
		t.Fatal("churn marked no rows stale")
	}

	// "Restart": a fresh identically-seeded server over the same checkpoint
	// directory. Its topology regenerates pristine, so the resume path must
	// re-apply the journaled churn events before re-queuing the repair.
	srvB, _ := discoveredChurnServer(t)
	srvB.SetCheckpointDir(dir)
	n, err := srvB.ResumePendingRepairs()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resumed %d cone repairs, want 1", n)
	}
	snap := srvB.sys.CurrentSnapshot()
	if len(snap.StaleRows) != staleRows {
		t.Errorf("resume re-marked %d rows stale, churn had marked %d", len(snap.StaleRows), staleRows)
	}

	srvB.runRepairCycle()
	healed := srvB.sys.CurrentSnapshot()
	if len(healed.StaleRows) != 0 {
		t.Errorf("resumed repair left %d stale rows", len(healed.StaleRows))
	}
	health, _ := srvB.recHealthView()
	if health.String() != "fresh" {
		t.Errorf("post-resume health = %v", health)
	}

	// A second restart finds nothing to do: the patch record was marked done
	// when the resumed repair committed.
	srvC, _ := discoveredChurnServer(t)
	srvC.SetCheckpointDir(dir)
	if n, err := srvC.ResumePendingRepairs(); err != nil || n != 0 {
		t.Errorf("second resume: n=%d err=%v, want 0 resumed", n, err)
	}
}

// TestResumeReplaysPatchesInGenOrder journals two pending patch records whose
// lexicographic id order ("churn-10" < "churn-2") inverts their generation
// order. Churn events carry absolute values, so replaying them out of order
// would reconstruct a post-crash topology different from the pre-crash one; a
// correct resume replays by generation and the later record's value wins. It
// also covers the resume-then-churn race: a churn arriving while the resumed
// cone is still queued must merge into it without panicking on the cone's
// unjournaled AS set.
func TestResumeReplaysPatchesInGenOrder(t *testing.T) {
	dir := t.TempDir()
	srv, ts := discoveredChurnServer(t)
	link := srv.sys.Topo.Links[0]
	client := prefs.Client(srv.sys.Topo.Targets[0].AS)

	ck, err := campaign.NewCheckpoint(filepath.Join(dir, "reconcile.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	evOld, _ := json.Marshal([]fault.ChurnEvent{
		{Kind: fault.ChurnLinkCost, Link: link.ID, NewDelay: 5 * time.Millisecond},
	})
	evNew, _ := json.Marshal([]fault.ChurnEvent{
		{Kind: fault.ChurnLinkCost, Link: link.ID, NewDelay: 9 * time.Millisecond},
	})
	if err := ck.RecordPatchPending("churn-2", campaign.PatchRecord{
		Gen: 2, Clients: []prefs.Client{client}, Events: evOld,
	}); err != nil {
		t.Fatal(err)
	}
	if err := ck.RecordPatchPending("churn-10", campaign.PatchRecord{
		Gen: 10, Clients: []prefs.Client{client}, Events: evNew,
	}); err != nil {
		t.Fatal(err)
	}

	srv.SetCheckpointDir(dir)
	// Hold the repair lock so the resumed cone stays queued: the churn below
	// must merge into it instead of racing the background drain.
	srv.rec.repairMu.Lock()
	defer srv.rec.repairMu.Unlock()

	n, err := srv.ResumePendingRepairs()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resumed %d records, want 2", n)
	}
	if link.Delay != 9*time.Millisecond {
		t.Errorf("replayed link delay = %v, want 9ms (the gen-10 record's value)", link.Delay)
	}

	if code, got := postJSON(t, ts.URL+"/v1/churn", `{"seed":11}`); code != http.StatusAccepted {
		t.Fatalf("churn while resumed cone queued: status %d: %v", code, got)
	}
}

// TestChurnJournalFailureStillRepairs breaks the reconcile journal out from
// under an already-applied churn: the stale marks are published and the
// topology mutated, so aborting would strand the cone stale forever. The
// handler must surface the journaling error but still queue (and here,
// synchronously drain) the repair.
func TestChurnJournalFailureStillRepairs(t *testing.T) {
	srv, ts := discoveredChurnServer(t)
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	srv.SetCheckpointDir(dir)
	if srv.recCheckpoint() == nil {
		t.Fatal("checkpoint did not open")
	}
	// The checkpoint is open; removing its directory makes the next persist
	// (the pending-patch record) fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}

	code, got := postJSON(t, ts.URL+"/v1/churn?sync=1", `{"seed":7}`)
	if code != http.StatusAccepted {
		t.Fatalf("churn status %d: %v", code, got)
	}
	if got["journal_error"] == nil {
		t.Error("journaling failure not surfaced in the response")
	}
	if got["health"] != "fresh" || got["stale_rows"].(float64) != 0 || got["repairs"].(float64) != 1 {
		t.Errorf("journal failure aborted the repair path: %v", got)
	}
}
