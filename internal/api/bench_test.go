package api

// Throughput benchmarks for the lock-free read path, against the serialized
// seed architecture on the same campaign snapshot. Run with -cpu 8 to
// measure scaling; fold into BENCH_6.json via `make loadbench`.

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"anyopt"
)

var (
	benchSysOnce sync.Once
	benchSys     *anyopt.System
	benchSysErr  error
)

// benchSystem returns one shared discovered system: campaign discovery costs
// seconds, the benchmarks microseconds per op.
func benchSystem(b *testing.B) *anyopt.System {
	b.Helper()
	benchSysOnce.Do(func() {
		benchSys, benchSysErr = anyopt.New(anyopt.DefaultOptions())
		if benchSysErr == nil {
			benchSysErr = benchSys.RunDiscovery()
		}
	})
	if benchSysErr != nil {
		b.Fatal(benchSysErr)
	}
	return benchSys
}

const benchPredictURL = "/v1/predict?config=1,4,6,9,12"

func benchPredict(b *testing.B, h http.Handler) {
	b.Helper()
	// One warm-up request, and a reference body for cheap sanity checking.
	want := doRecorded(h, http.MethodGet, benchPredictURL).Body.String()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, benchPredictURL, nil))
			if rec.Code != http.StatusOK || rec.Body.Len() != len(want) {
				b.Errorf("predict: status %d body %s", rec.Code, rec.Body.String())
				return
			}
		}
	})
}

// BenchmarkPredictParallel drives the lock-free handler from GOMAXPROCS
// goroutines: every request loads the snapshot pointer and predicts with no
// shared mutable state, so throughput scales with cores.
func BenchmarkPredictParallel(b *testing.B) {
	benchPredict(b, NewServer(benchSystem(b)).Handler())
}

// BenchmarkPredictSerialized is the seed architecture: the same handler
// behind one whole-server mutex. The gap between this and
// BenchmarkPredictParallel is the cost of the single-lane front door.
func BenchmarkPredictSerialized(b *testing.B) {
	benchPredict(b, serializedHandler(NewServer(benchSystem(b)).Handler()))
}

// BenchmarkOptimizeParallel exercises the heavier read path: a budgeted
// SPLPO search per request, still lock-free.
func BenchmarkOptimizeParallel(b *testing.B) {
	h := NewServer(benchSystem(b)).Handler()
	url := "/v1/optimize?k=6&budget=50"
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
			if rec.Code != http.StatusOK {
				b.Errorf("optimize: status %d", rec.Code)
				return
			}
		}
	})
}
