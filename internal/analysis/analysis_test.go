package analysis

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestMeanDuration(t *testing.T) {
	if got := MeanDuration([]time.Duration{10 * time.Millisecond, 30 * time.Millisecond}); got != 20*time.Millisecond {
		t.Errorf("MeanDuration = %v", got)
	}
	if got := MeanDuration(nil); got != 0 {
		t.Errorf("MeanDuration(nil) = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2 {
		t.Errorf("Median even (nearest-rank lower) = %v", got)
	}
	if got := MedianDuration([]time.Duration{3, 1, 2}); got != 2 {
		t.Errorf("MedianDuration = %v", got)
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("Stddev const = %v", got)
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if got := Stddev([]float64{1}); got != 0 {
		t.Errorf("Stddev single = %v", got)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if got := RelErr(5, 0); got != 0 {
		t.Errorf("RelErr want=0 should be 0, got %v", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 1, 2, 3})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("CDF = %v, want %v", pts, want)
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := CDFAt(xs, c.x); got != c.want {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Errorf("CDFAt(nil) = %v", got)
	}
}

func TestPropertyCDFMonotoneAndBounded(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		pts := CDF(xs)
		prevX, prevF := math.Inf(-1), 0.0
		for _, p := range pts {
			if p.X <= prevX || p.F <= prevF || p.F > 1 {
				return false
			}
			prevX, prevF = p.X, p.F
		}
		return len(xs) == 0 || pts[len(pts)-1].F == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPercentileWithinRange(t *testing.T) {
	f := func(xs []float64, p uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		got := Percentile(xs, float64(p%101))
		return got >= s[0] && got <= s[len(s)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationsToMs(t *testing.T) {
	got := DurationsToMs([]time.Duration{time.Millisecond, 2500 * time.Microsecond})
	if got[0] != 1 || got[1] != 2.5 {
		t.Errorf("DurationsToMs = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table 1", "Site", "Location", "RTT")
	tab.AddRow(1, "Atlanta", 25*time.Millisecond)
	tab.AddRow(2, "Amsterdam", 97.5)
	out := tab.String()
	for _, want := range []string{"== Table 1 ==", "Site", "Atlanta", "25.00ms", "97.50", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatCDFSeries(t *testing.T) {
	out := FormatCDFSeries("test", []float64{1, 2, 3}, []float64{0, 2, 5})
	if !strings.Contains(out, "# series: test") {
		t.Error("missing series header")
	}
	if !strings.Contains(out, "0.6667") {
		t.Errorf("missing CDF value at x=2:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q", got)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"a", "bb"}, []float64{2, 4}, 4)
	if !strings.Contains(out, "bb ████ 4.00") {
		t.Errorf("bar chart:\n%s", out)
	}
	if !strings.Contains(out, "a  ██ 2.00") {
		t.Errorf("bar chart:\n%s", out)
	}
	if BarChart([]string{"a"}, []float64{1, 2}, 4) != "" {
		t.Error("mismatched inputs accepted")
	}
	if BarChart(nil, nil, 4) != "" {
		t.Error("empty inputs accepted")
	}
}
