// Package analysis provides the statistics and rendering helpers the
// experiment harness uses to regenerate the paper's tables and figures:
// CDFs, percentiles, error metrics, and fixed-width text tables.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanDuration returns the mean of durations, or 0 for an empty slice.
func MeanDuration(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var s time.Duration
	for _, x := range xs {
		s += x
	}
	return s / time.Duration(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MedianDuration returns the median of durations.
func MedianDuration(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return time.Duration(Median(f))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// RelErr returns |got-want|/want, or 0 when want is 0.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return math.Abs(got-want) / want
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64 // fraction of samples ≤ X
}

// CDF returns the empirical CDF of xs as sorted points, one per distinct
// value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var out []CDFPoint
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{X: s[i], F: float64(i+1) / n})
	}
	return out
}

// CDFAt returns the empirical CDF of xs evaluated at x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// DurationsToMs converts durations to float milliseconds.
func DurationsToMs(xs []time.Duration) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x) / float64(time.Millisecond)
	}
	return out
}

// Table renders fixed-width text tables for figure/table output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2fms", float64(v)/float64(time.Millisecond))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatCDFSeries renders a CDF as "x f" pairs at the given x grid, for
// figure regeneration.
func FormatCDFSeries(name string, xs []float64, grid []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# series: %s\n", name)
	for _, g := range grid {
		fmt.Fprintf(&b, "%8.2f %6.4f\n", g, CDFAt(xs, g))
	}
	return b.String()
}

// sparkRunes are the eight block heights used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode bar strip, scaled to the
// series' own min..max. Empty input yields an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	out := make([]rune, len(values))
	for i, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// BarChart renders labeled horizontal bars scaled to the largest value, for
// terminal-readable figure output.
func BarChart(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if width <= 0 {
		width = 40
	}
	maxV, maxL := 0.0, 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %s %.2f\n", maxL, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}
