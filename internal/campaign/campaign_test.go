package campaign

import (
	"bytes"
	"strings"
	"testing"

	"anyopt"
)

// discovered builds a system with a completed campaign (shared across tests).
var shared *anyopt.System

func discovered(t *testing.T) *anyopt.System {
	t.Helper()
	if shared == nil {
		sys, err := anyopt.New(anyopt.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RunDiscovery(); err != nil {
			t.Fatal(err)
		}
		shared = sys
	}
	return shared
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := discovered(t)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty snapshot")
	}

	// A fresh system with the same topology/testbed but no discovery.
	dst, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}

	// The restored predictor must reproduce the original's predictions and
	// optimization outcome exactly.
	cfg := anyopt.Config{1, 3, 4, 5, 6, 10}
	a, err := src.PredictCatchments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.PredictCatchments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("prediction sizes differ: %d vs %d", len(a), len(b))
	}
	for c, site := range a {
		if b[c] != site {
			t.Fatalf("client %d: %d vs %d", c, site, b[c])
		}
	}
	optA, err := src.Optimize(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	optB, err := dst.Optimize(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if optA.PredictedMean != optB.PredictedMean {
		t.Errorf("optimization means differ: %v vs %v", optA.PredictedMean, optB.PredictedMean)
	}
	for i := range optA.Config {
		if optA.Config[i] != optB.Config[i] {
			t.Fatalf("optimized configs differ: %v vs %v", optA.Config, optB.Config)
		}
	}
}

func TestSaveRequiresDiscovery(t *testing.T) {
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, sys); err == nil {
		t.Error("saved a system without discovery results")
	}
}

func TestLoadRejectsBadSnapshots(t *testing.T) {
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"garbage":        "not json",
		"wrong version":  `{"version": 99, "sites": 15}`,
		"wrong sites":    `{"version": 1, "sites": 3}`,
		"bad provider":   `{"version": 1, "sites": 15, "providers": {"items": [], "relations": []}}`,
		"unknown winner": `{"version": 1, "sites": 15, "providers": {"items": [1, 2], "relations": [{"c": 7, "i": 1, "j": 2, "r": 1, "w": 9}]}}`,
	}
	for name, data := range cases {
		if err := Load(strings.NewReader(data), sys); err == nil {
			t.Errorf("%s: loaded successfully", name)
		}
	}
}

func TestSnapshotIsStable(t *testing.T) {
	src := discovered(t)
	var a, b bytes.Buffer
	if err := Save(&a, src); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two saves of the same campaign differ; serialization is not deterministic")
	}
}
