package campaign

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"anyopt"
	"anyopt/internal/core/discovery"
	"anyopt/internal/fault"
)

// runShard runs shard i of n (1-based) of the campaign schedule in its own
// fresh system — the in-process stand-in for an independent OS process —
// journaling to the shard's checkpoint file under base.
func runShard(t *testing.T, base string, i, n int) {
	t.Helper()
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := discovery.CampaignExperiments(sys.TB, sys.Options().UseRTTHeuristic)
	lo, hi := discovery.ShardRange(total, i-1, n)
	sys.Disc.Cfg.ShardLo, sys.Disc.Cfg.ShardHi = lo, hi
	ck, err := NewCheckpoint(ShardCheckpointPath(base, i, n))
	if err != nil {
		t.Fatal(err)
	}
	sys.Disc.SetJournal(ck)
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Disc.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := ck.Len(), int(hi-lo); got != want {
		t.Fatalf("shard %d/%d journaled %d experiments, want %d", i, n, got, want)
	}
}

// mergeAndSave merges the n shard journals under base, replays the campaign
// through them, and returns the saved snapshot bytes. The merge must be pure
// replay: every nonce of the schedule is already journaled.
func mergeAndSave(t *testing.T, base string, n int) []byte {
	t.Helper()
	ck, merged, err := MergeShardCheckpoints(base, n)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := discovery.CampaignExperiments(sys.TB, sys.Options().UseRTTHeuristic)
	if merged != total {
		t.Fatalf("merged %d experiments, schedule has %d", merged, total)
	}
	sys.Disc.SetJournal(ck)
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Disc.Err(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, sys); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardMergeDeterminism proves the sharding contract: splitting the
// campaign into 1, 2, or 7 shards, running each shard in a fresh system, and
// merging the journals yields a saved snapshot byte-identical to the
// single-process campaign.
func TestShardMergeDeterminism(t *testing.T) {
	var want bytes.Buffer
	if err := Save(&want, discovered(t)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			base := filepath.Join(t.TempDir(), "campaign.ck")
			for i := 1; i <= n; i++ {
				runShard(t, base, i, n)
			}
			got := mergeAndSave(t, base, n)
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("merged %d-shard campaign differs from single-process snapshot (%d vs %d bytes)",
					n, len(got), want.Len())
			}
		})
	}
}

// failAfter wraps a Checkpoint and fails every Record after the first n —
// simulating a shard process killed mid-campaign: the journal keeps what was
// persisted before the crash, and the campaign aborts.
type failAfter struct {
	ck      *Checkpoint
	n       int
	records int
}

func (f *failAfter) Lookup(nonce uint64) (discovery.JournalEntry, bool) { return f.ck.Lookup(nonce) }

func (f *failAfter) Record(nonce uint64, ent discovery.JournalEntry) error {
	if f.records >= f.n {
		return fmt.Errorf("simulated crash after %d records", f.n)
	}
	f.records++
	return f.ck.Record(nonce, ent)
}

// TestShardResumeAfterKill kills shard 1 of 2 partway through, re-runs it to
// completion against the same journal file, and checks the merged campaign is
// still byte-identical to the single-process run.
func TestShardResumeAfterKill(t *testing.T) {
	var want bytes.Buffer
	if err := Save(&want, discovered(t)); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "campaign.ck")

	// Shard 1 "crashes" after five journaled experiments.
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := discovery.CampaignExperiments(sys.TB, sys.Options().UseRTTHeuristic)
	lo, hi := discovery.ShardRange(total, 0, 2)
	sys.Disc.Cfg.ShardLo, sys.Disc.Cfg.ShardHi = lo, hi
	ck, err := NewCheckpoint(ShardCheckpointPath(base, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	sys.Disc.SetJournal(&failAfter{ck: ck, n: 5})
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	if sys.Disc.Err() == nil {
		t.Fatal("crashing journal did not abort the shard")
	}

	// Resume shard 1 (fresh process, same journal file), run shard 2, merge.
	runShard(t, base, 1, 2)
	runShard(t, base, 2, 2)
	got := mergeAndSave(t, base, 2)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("merged campaign after shard crash+resume differs from single-process snapshot")
	}
}

// TestShardRejectsFaults checks the guard: a sharded campaign with fault
// injection enabled must refuse to run rather than quarantine sites a single
// shard cannot see.
func TestShardRejectsFaults(t *testing.T) {
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys.Disc.Cfg.ShardLo, sys.Disc.Cfg.ShardHi = 1, 10
	sys.Disc.Cfg.Faults = &fault.Config{Seed: 1, ProbeLossProb: 0.01}
	if err := sys.RunDiscovery(); err == nil && sys.Disc.Err() == nil {
		t.Fatal("sharded campaign ran with fault injection enabled")
	}
}
