package campaign

import (
	"bytes"
	"encoding/json"
	"maps"
	"strings"
	"testing"

	"anyopt"
	"anyopt/internal/core/prefs"
	"anyopt/internal/topology"
)

// legacyMarshal is the pre-streaming SaveSnapshot: materialize the whole
// nested-map Snapshot struct and hand it to json.Encoder. The streaming
// encoder must reproduce these bytes exactly — that is the format contract.
func legacyMarshal(t *testing.T, sn *anyopt.Snapshot) []byte {
	t.Helper()
	snap := Snapshot{
		Version:         FormatVersion,
		Sites:           len(sn.TB.Sites),
		UseRTTHeuristic: sn.Pred.UseRTTHeuristic,
		AnnOrder:        append([]prefs.Item(nil), sn.AnnOrder...),
		Providers:       dumpStore(sn.Pred.Providers),
		RTT:             sn.RTT.Export(),
		Experiments:     sn.Experiments,
		Quarantined:     maps.Clone(sn.Quarantined),
	}
	if len(sn.Pred.Sites) > 0 {
		snap.SiteStores = make(map[topology.ASN]storeDump, len(sn.Pred.Sites))
		for prov, st := range sn.Pred.Sites {
			if st != nil {
				snap.SiteStores[prov] = dumpStore(st)
			}
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(&snap); err != nil {
		t.Fatalf("legacy marshal: %v", err)
	}
	return buf.Bytes()
}

func firstDiff(a, b []byte) (int, string, string) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+40, i+40
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return i, string(a[lo:hiA]), string(b[lo:hiB])
		}
	}
	return n, "", ""
}

func assertStreamMatchesLegacy(t *testing.T, sn *anyopt.Snapshot) {
	t.Helper()
	want := legacyMarshal(t, sn)
	var got bytes.Buffer
	if err := SaveSnapshot(&got, sn); err != nil {
		t.Fatalf("streaming save: %v", err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		off, a, b := firstDiff(want, got.Bytes())
		t.Fatalf("stream bytes differ from legacy encoder at offset %d (lens %d vs %d)\nlegacy: %q\nstream: %q",
			off, len(want), len(got.Bytes()), a, b)
	}
}

// TestStreamMatchesLegacyFullCampaign runs a real campaign and checks the
// streaming encoder against the legacy struct encoder byte for byte —
// including site stores, quarantine-free RTT rows, and the announcement
// order.
func TestStreamMatchesLegacyFullCampaign(t *testing.T) {
	sys := discovered(t)
	sn := sys.CurrentSnapshot()
	assertStreamMatchesLegacy(t, sn)
}

// TestStreamMatchesLegacyEdgeShapes drives the encoder corners the full
// campaign never hits: key orders where string sorting diverges from numeric
// (site 10 before 2), empty RTT rows, a quarantine map, no site stores, and
// a nil announcement order.
func TestStreamMatchesLegacyEdgeShapes(t *testing.T) {
	sys := discovered(t)
	base := sys.CurrentSnapshot()

	t.Run("quarantined", func(t *testing.T) {
		view := *base
		//lint:mutinvariant view is a private struct copy; the published snapshot is untouched
		view.Quarantined = map[int]string{
			2:  "blackout <sim> & probe loss",
			10: "operator pull",
			1:  "no RTT responses",
		}
		assertStreamMatchesLegacy(t, &view)
	})

	t.Run("nil-ann-order-no-sites", func(t *testing.T) {
		view := *base
		pred := *base.Pred
		pred.Sites = nil
		//lint:mutinvariant view and pred are private struct copies; the published snapshot is untouched
		view.Pred = &pred
		view.AnnOrder = nil
		assertStreamMatchesLegacy(t, &view)
	})
}

// TestStreamLoadRoundTrip confirms Load accepts the streamed bytes and the
// reloaded system re-streams to the identical file.
func TestStreamLoadRoundTrip(t *testing.T) {
	sys := discovered(t)
	var first bytes.Buffer
	if err := Save(&first, sys); err != nil {
		t.Fatalf("save: %v", err)
	}
	sys2, errNew := anyopt.New(anyopt.DefaultOptions())
	if errNew != nil {
		t.Fatal(errNew)
	}
	if err := Load(strings.NewReader(first.String()), sys2); err != nil {
		t.Fatalf("load: %v", err)
	}
	var second bytes.Buffer
	if err := Save(&second, sys2); err != nil {
		t.Fatalf("second save: %v", err)
	}
	if first.String() != second.String() {
		t.Fatalf("save→load→save not identical: %d vs %d bytes", first.Len(), second.Len())
	}
}
