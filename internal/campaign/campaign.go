// Package campaign persists and restores the outputs of a measurement
// campaign — provider- and site-level preference stores, the RTT table, and
// the chosen announcement order — as JSON.
//
// A real AnyOpt campaign costs weeks of wall-clock BGP experiments (§4.5),
// so its results are an asset: operators re-run the offline optimization
// against saved measurements whenever requirements change, and only
// re-measure on the paper's monthly cadence. Save/Load makes the predictor
// reproducible from a file.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"

	"anyopt"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/predict"
	"anyopt/internal/core/prefs"
	"anyopt/internal/topology"
)

// FormatVersion guards against loading incompatible snapshots.
const FormatVersion = 1

// storeDump serializes one preference store.
type storeDump struct {
	Items     []prefs.Item           `json:"items"`
	Relations []prefs.DumpedRelation `json:"relations"`
}

// Snapshot is the serialized form of a campaign.
type Snapshot struct {
	Version int `json:"version"`
	// Sites echoes the testbed layout for sanity checking at load time.
	Sites int `json:"sites"`
	// UseRTTHeuristic records the discovery mode.
	UseRTTHeuristic bool `json:"use_rtt_heuristic"`
	// AnnOrder is the chosen provider announcement order.
	AnnOrder []prefs.Item `json:"ann_order"`

	Providers   storeDump                      `json:"providers"`
	SiteStores  map[topology.ASN]storeDump     `json:"site_stores,omitempty"`
	RTT         map[int]map[prefs.Client]int64 `json:"rtt"`
	Experiments int                            `json:"experiments"`

	// Quarantined records sites the campaign pulled out after detecting
	// them dead (site ID → reason); absent for fault-free campaigns. The
	// field rides FormatVersion 1: older snapshots simply lack it.
	Quarantined map[int]string `json:"quarantined,omitempty"`
}

func dumpStore(s *prefs.Store) storeDump {
	return storeDump{Items: s.Items(), Relations: s.Dump()}
}

func restoreStore(d storeDump) (*prefs.Store, error) {
	s, err := prefs.NewStore(d.Items)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(d.Relations); err != nil {
		return nil, err
	}
	s.Compact()
	return s, nil
}

// Save writes sys's discovery results to w. RunDiscovery must have been
// executed.
func Save(w io.Writer, sys *anyopt.System) error {
	sn := sys.CurrentSnapshot()
	if sn == nil {
		return fmt.Errorf("campaign: system has no discovery results to save")
	}
	// Quarantine is live Discovery state: operators may pull a site after the
	// campaign snapshot was published. The System-level Save captures the
	// current view; SaveSnapshot alone freezes the snapshot's own record.
	view := *sn
	//lint:mutinvariant view is a private struct copy; the published snapshot is untouched
	view.Quarantined = sys.Disc.Quarantined()
	return SaveSnapshot(w, &view)
}

// SaveSnapshot writes one immutable campaign snapshot to w. Because a
// snapshot is frozen at publication, this is safe to call from any number of
// goroutines — including concurrently with a discovery job publishing its
// successor.
//
// The write streams straight off the columnar stores (see stream.go): peak
// memory is one table row, not the whole nested-map export, and the bytes
// are identical to what json.Encoder produced for the Snapshot struct in
// earlier releases — stream_test.go holds the two encoders equal.
func SaveSnapshot(w io.Writer, sn *anyopt.Snapshot) error {
	return writeSnapshotStream(w, sn)
}

// Load restores discovery results from r into sys, replacing any previous
// campaign. The testbed must structurally match the one that produced the
// snapshot. On success the restored campaign is atomically published as
// sys's current snapshot, so lock-free readers see it immediately.
func Load(r io.Reader, sys *anyopt.System) error {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("campaign: decoding snapshot: %w", err)
	}
	if snap.Version != FormatVersion {
		return fmt.Errorf("campaign: snapshot version %d, want %d", snap.Version, FormatVersion)
	}
	if snap.Sites != len(sys.TB.Sites) {
		return fmt.Errorf("campaign: snapshot has %d sites, testbed has %d", snap.Sites, len(sys.TB.Sites))
	}
	providers, err := restoreStore(snap.Providers)
	if err != nil {
		return fmt.Errorf("campaign: provider store: %w", err)
	}
	siteStores := make(map[topology.ASN]*prefs.Store, len(snap.SiteStores))
	for prov, d := range snap.SiteStores {
		st, err := restoreStore(d)
		if err != nil {
			return fmt.Errorf("campaign: site store for provider %d: %w", prov, err)
		}
		siteStores[prov] = st
	}
	rtt := discovery.ImportRTTTable(snap.RTT)
	pred := &predict.Predictor{
		TB:              sys.TB,
		Providers:       providers,
		Sites:           siteStores,
		RTT:             rtt,
		UseRTTHeuristic: snap.UseRTTHeuristic,
	}
	sys.Disc.RestoreQuarantine(snap.Quarantined)
	sys.InstallCampaign(pred, rtt, snap.AnnOrder, snap.Experiments, snap.Quarantined)
	return nil
}
