package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"anyopt/internal/core/discovery"
	"anyopt/internal/core/prefs"
)

// CheckpointVersion guards against loading incompatible checkpoint files.
const CheckpointVersion = 1

// checkpointFile is the on-disk shape: experiment nonces (as decimal
// strings, since JSON object keys are strings) to journal entries, plus the
// reconciler's patch records (absent in pre-churn checkpoints).
type checkpointFile struct {
	Version int                               `json:"version"`
	Entries map[string]discovery.JournalEntry `json:"entries"`
	Patches map[string]PatchRecord            `json:"patches,omitempty"`
}

// PatchRecord journals one reconciler repair: the snapshot generation whose
// rows the churn invalidated, the affected client cone, and the churn events
// themselves (opaque JSON — the api layer owns the concrete type). A record
// with Done still false after a crash means the rows it names were marked
// stale but never repaired; a resuming server must re-apply the events and
// re-run exactly those cone repairs instead of silently serving pre-churn
// rows as fresh.
type PatchRecord struct {
	Gen     uint64          `json:"gen"`
	Clients []prefs.Client  `json:"clients"`
	Events  json.RawMessage `json:"events,omitempty"`
	Done    bool            `json:"done,omitempty"`
}

// Checkpoint is a file-backed discovery.Journal: every completed experiment
// is recorded under its campaign nonce and persisted atomically
// (write-temp-then-rename), so a killed campaign loses at most the
// experiments that were still in flight. Re-running the same campaign with
// the same checkpoint replays completed experiments from the file — results,
// probe counts, and fault traces — making the resumed run byte-identical to
// an uninterrupted one.
//
// Lookup and Record are safe for concurrent use by worker goroutines.
type Checkpoint struct {
	mu      sync.Mutex
	path    string
	entries map[uint64]discovery.JournalEntry
	patches map[string]PatchRecord
}

// NewCheckpoint opens (or creates) the checkpoint at path. An existing file
// is loaded for replay; a corrupt or truncated file is a clean error, never
// a panic — the caller decides whether to delete and restart.
func NewCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, entries: make(map[uint64]discovery.JournalEntry)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: reading checkpoint %s: %w", path, err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s is corrupt (delete it to restart): %w", path, err)
	}
	if f.Version != CheckpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d", path, f.Version, CheckpointVersion)
	}
	for k, ent := range f.Entries {
		nonce, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("campaign: checkpoint %s has invalid experiment key %q", path, k)
		}
		c.entries[nonce] = ent
	}
	for id, p := range f.Patches {
		if c.patches == nil {
			c.patches = make(map[string]PatchRecord)
		}
		c.patches[id] = p
	}
	return c, nil
}

// Len returns the number of checkpointed experiments.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookup implements discovery.Journal.
func (c *Checkpoint) Lookup(nonce uint64) (discovery.JournalEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[nonce]
	return ent, ok
}

// Record implements discovery.Journal: it stores the entry and persists the
// whole journal atomically. A persistence failure is returned (and the entry
// kept in memory) so the campaign driver can abort instead of running
// unrecoverable experiments.
func (c *Checkpoint) Record(nonce uint64, ent discovery.JournalEntry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[nonce] = ent
	return c.persistLocked()
}

// RecordPatchPending journals a reconciler repair before it runs: the rows in
// rec are stale from this moment until RecordPatchDone. Persisted atomically,
// like experiment entries.
func (c *Checkpoint) RecordPatchPending(id string, rec PatchRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.patches == nil {
		c.patches = make(map[string]PatchRecord)
	}
	rec.Done = false
	c.patches[id] = rec
	return c.persistLocked()
}

// RecordPatchDone marks a patch record's repair as committed. Unknown ids are
// a no-op: a superseding full campaign may retire repairs wholesale.
func (c *Checkpoint) RecordPatchDone(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.patches[id]
	if !ok {
		return nil
	}
	rec.Done = true
	c.patches[id] = rec
	return c.persistLocked()
}

// PendingPatches returns the patch records whose repairs never committed —
// the resume set after a crash mid-reconcile.
func (c *Checkpoint) PendingPatches() map[string]PatchRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]PatchRecord)
	for id, rec := range c.patches {
		if !rec.Done {
			out[id] = rec
		}
	}
	return out
}

// persistLocked writes the journal to a temp file in the same directory and
// renames it over the checkpoint path, so readers never observe a torn file.
func (c *Checkpoint) persistLocked() error {
	f := checkpointFile{
		Version: CheckpointVersion,
		Entries: make(map[string]discovery.JournalEntry, len(c.entries)),
		Patches: c.patches,
	}
	for nonce, ent := range c.entries {
		f.Entries[strconv.FormatUint(nonce, 10)] = ent
	}
	data, err := json.Marshal(&f)
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("campaign: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("campaign: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, c.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: installing checkpoint: %w", err)
	}
	return nil
}
