package campaign

// Shard coordination for distributed discovery campaigns: `anyopt discover
// -shard i/n` runs shard i of n as its own OS process, journaling only its
// contiguous nonce range (see discovery.ShardRange) to a per-shard checkpoint
// file derived from the operator's base path. `-shard merge/n` folds the n
// shard journals into one checkpoint and replays the full schedule through
// it, reproducing the single-process campaign byte for byte. Shards never
// share a checkpoint file: Checkpoint rewrites the whole file on every
// Record, so concurrent writers would clobber each other.

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// Shard identifies one worker of an n-way sharded campaign (Index 1..n), or
// the merge step (Index 0).
type Shard struct {
	Index int
	Count int
}

// Merge reports whether this is the merge step.
func (s Shard) Merge() bool { return s.Index == 0 }

// ParseShard parses a -shard specification: "i/n" with 1 <= i <= n runs
// worker shard i, "merge/n" merges the n shard journals and replays.
func ParseShard(spec string) (Shard, error) {
	part, countStr, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("campaign: shard spec %q is not i/n or merge/n", spec)
	}
	n, err := strconv.Atoi(countStr)
	if err != nil || n < 1 {
		return Shard{}, fmt.Errorf("campaign: shard count in %q must be a positive integer", spec)
	}
	if part == "merge" {
		return Shard{Index: 0, Count: n}, nil
	}
	i, err := strconv.Atoi(part)
	if err != nil || i < 1 || i > n {
		return Shard{}, fmt.Errorf("campaign: shard index in %q must be merge or 1..%d", spec, n)
	}
	return Shard{Index: i, Count: n}, nil
}

// ShardCheckpointPath derives shard i's private checkpoint file from the
// operator's base checkpoint path.
func ShardCheckpointPath(base string, i, n int) string {
	return fmt.Sprintf("%s.shard-%d-of-%d", base, i, n)
}

// MergeShardCheckpoints folds the n per-shard journals for base into a single
// checkpoint at base and returns it with the merged entry count. Every shard
// file must exist (a missing file means that shard never ran — launch it
// first); a partial file is fine, since the merge replay runs any experiment
// the journals lack. Overlapping entries must agree byte for byte — shards
// own disjoint nonce ranges, so a conflict means the files belong to
// different campaigns.
func MergeShardCheckpoints(base string, n int) (*Checkpoint, int, error) {
	merged, err := NewCheckpoint(base)
	if err != nil {
		return nil, 0, err
	}
	for i := 1; i <= n; i++ {
		path := ShardCheckpointPath(base, i, n)
		shard, err := NewCheckpoint(path)
		if err != nil {
			return nil, 0, err
		}
		if shard.Len() == 0 {
			return nil, 0, fmt.Errorf("campaign: shard journal %s is missing or empty — run shard %d/%d first", path, i, n)
		}
		if err := merged.absorb(shard); err != nil {
			return nil, 0, fmt.Errorf("campaign: merging %s: %w", path, err)
		}
	}
	if err := merged.persist(); err != nil {
		return nil, 0, err
	}
	return merged, merged.Len(), nil
}

// absorb copies other's entries into c without persisting, erroring on a
// conflicting duplicate nonce.
func (c *Checkpoint) absorb(other *Checkpoint) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	for nonce, ent := range other.entries {
		if have, ok := c.entries[nonce]; ok && !reflect.DeepEqual(have, ent) {
			return fmt.Errorf("conflicting results for experiment %d", nonce)
		}
		c.entries[nonce] = ent
	}
	return nil
}

// persist writes the journal to disk once, for bulk loads that bypass Record.
func (c *Checkpoint) persist() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.persistLocked()
}
