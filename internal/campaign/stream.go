package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"anyopt"
	"anyopt/internal/core/prefs"
	"anyopt/internal/topology"
)

// This file streams a campaign snapshot to JSON without ever materializing
// the nested-map Snapshot struct: the columnar stores are walked cell by
// cell and encoded directly, so peak save memory is one table row instead of
// the whole campaign. The emitted bytes are exactly what
// json.Encoder.SetIndent("", " ") would produce for the Snapshot struct —
// the differential test in stream_test.go pins that equivalence — so saved
// files stay bit-compatible with every earlier release and with Load.
//
// Two encoding/json behaviors matter for byte-identity and are deliberately
// reproduced here: map keys are sorted lexicographically as strings (site 10
// sorts before site 2), and nil slices encode as null while empty non-nil
// maps encode as {}.

// streamEnc writes indented JSON with prefix "" and indent " ", the
// campaign format. All writes funnel through it so the first error sticks.
type streamEnc struct {
	w   *bufio.Writer
	err error
}

func (e *streamEnc) raw(s string) {
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

// nl starts a new line at the given nesting depth (one space per level).
func (e *streamEnc) nl(depth int) {
	e.raw("\n")
	for i := 0; i < depth; i++ {
		e.raw(" ")
	}
}

func (e *streamEnc) int64(v int64) { e.raw(strconv.FormatInt(v, 10)) }
func (e *streamEnc) int(v int)     { e.int64(int64(v)) }

func (e *streamEnc) bool(v bool) {
	if v {
		e.raw("true")
	} else {
		e.raw("false")
	}
}

// str emits a JSON string with encoding/json's exact escaping (including
// HTML escaping), via Marshal — strings are rare in the format (quarantine
// reasons), so the per-value allocation is irrelevant.
func (e *streamEnc) str(s string) {
	b, err := json.Marshal(s)
	if e.err == nil && err != nil {
		e.err = err
	}
	e.raw(string(b))
}

// items emits a []prefs.Item: null when nil-equivalent (empty), else one
// number per line at depth+1.
func (e *streamEnc) items(v []prefs.Item, depth int) {
	if len(v) == 0 {
		e.raw("null")
		return
	}
	e.raw("[")
	for i, it := range v {
		if i > 0 {
			e.raw(",")
		}
		e.nl(depth + 1)
		e.int64(int64(it))
	}
	e.nl(depth)
	e.raw("]")
}

// relation emits one DumpedRelation object at the given depth.
func (e *streamEnc) relation(r prefs.DumpedRelation, depth int) {
	e.raw("{")
	e.nl(depth + 1)
	e.raw(`"c": `)
	e.int64(int64(r.Client))
	e.raw(",")
	e.nl(depth + 1)
	e.raw(`"i": `)
	e.int64(int64(r.I))
	e.raw(",")
	e.nl(depth + 1)
	e.raw(`"j": `)
	e.int64(int64(r.J))
	e.raw(",")
	e.nl(depth + 1)
	e.raw(`"r": `)
	e.int(int(r.Rel))
	if r.Winner != 0 {
		e.raw(",")
		e.nl(depth + 1)
		e.raw(`"w": `)
		e.int64(int64(r.Winner))
	}
	e.nl(depth)
	e.raw("}")
}

// store emits one storeDump object, streaming relations straight off the
// columnar store.
func (e *streamEnc) store(s *prefs.Store, depth int) {
	e.raw("{")
	e.nl(depth + 1)
	e.raw(`"items": `)
	e.items(s.Items(), depth+1)
	e.raw(",")
	e.nl(depth + 1)
	e.raw(`"relations": `)
	if s.NumRelations() == 0 {
		e.raw("null")
	} else {
		e.raw("[")
		first := true
		s.ForEachRelation(func(r prefs.DumpedRelation) {
			if !first {
				e.raw(",")
			}
			first = false
			e.nl(depth + 2)
			e.relation(r, depth+2)
		})
		e.nl(depth + 1)
		e.raw("]")
	}
	e.nl(depth)
	e.raw("}")
}

// intKeys returns the decimal forms of ks sorted lexicographically — the
// order encoding/json emits integer-keyed maps in — with idx mapping each
// position back to the original slice.
func intKeys(ks []int64) (names []string, idx []int) {
	names = make([]string, len(ks))
	idx = make([]int, len(ks))
	for i, k := range ks {
		names[i] = strconv.FormatInt(k, 10)
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return names[idx[a]] < names[idx[b]] })
	sorted := make([]string, len(ks))
	for i, j := range idx {
		sorted[i] = names[j]
	}
	return sorted, idx
}

// rtt emits the site→client→ns table, one row in memory at a time.
func (e *streamEnc) rtt(sn *anyopt.Snapshot, depth int) {
	sites := sn.RTT.Sites()
	if len(sites) == 0 {
		e.raw("{}")
		return
	}
	ks := make([]int64, len(sites))
	for i, s := range sites {
		ks[i] = int64(s)
	}
	names, idx := intKeys(ks)
	e.raw("{")
	for i, name := range names {
		site := sites[idx[i]]
		if i > 0 {
			e.raw(",")
		}
		e.nl(depth + 1)
		e.raw(`"` + name + `": `)
		// One row: gather (client, ns) cells, re-sort by string key.
		type rttCell struct {
			c  prefs.Client
			ns int64
		}
		var cells []rttCell
		sn.RTT.SiteRTTs(site, func(c prefs.Client, ns int64) {
			cells = append(cells, rttCell{c: c, ns: ns})
		})
		if len(cells) == 0 {
			e.raw("{}")
			continue
		}
		cks := make([]int64, len(cells))
		for j, cell := range cells {
			cks[j] = int64(cell.c)
		}
		cNames, cIdx := intKeys(cks)
		e.raw("{")
		for j, cn := range cNames {
			if j > 0 {
				e.raw(",")
			}
			e.nl(depth + 2)
			e.raw(`"` + cn + `": `)
			e.int64(cells[cIdx[j]].ns)
		}
		e.nl(depth + 1)
		e.raw("}")
	}
	e.nl(depth)
	e.raw("}")
}

// writeSnapshotStream is the streaming implementation behind SaveSnapshot.
func writeSnapshotStream(w io.Writer, sn *anyopt.Snapshot) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	e := &streamEnc{w: bw}

	e.raw("{")
	e.nl(1)
	e.raw(`"version": `)
	e.int(FormatVersion)
	e.raw(",")
	e.nl(1)
	e.raw(`"sites": `)
	e.int(len(sn.TB.Sites))
	e.raw(",")
	e.nl(1)
	e.raw(`"use_rtt_heuristic": `)
	e.bool(sn.Pred.UseRTTHeuristic)
	e.raw(",")
	e.nl(1)
	e.raw(`"ann_order": `)
	e.items(sn.AnnOrder, 1)
	e.raw(",")
	e.nl(1)
	e.raw(`"providers": `)
	e.store(sn.Pred.Providers, 1)
	e.raw(",")

	var provs []topology.ASN
	for p, st := range sn.Pred.Sites {
		if st != nil {
			provs = append(provs, p)
		}
	}
	sort.Slice(provs, func(i, j int) bool { return provs[i] < provs[j] })
	if len(provs) > 0 {
		ks := make([]int64, len(provs))
		for i, p := range provs {
			ks[i] = int64(p)
		}
		names, idx := intKeys(ks)
		e.nl(1)
		e.raw(`"site_stores": {`)
		for i, name := range names {
			if i > 0 {
				e.raw(",")
			}
			e.nl(2)
			e.raw(`"` + name + `": `)
			e.store(sn.Pred.Sites[provs[idx[i]]], 2)
		}
		e.nl(1)
		e.raw("}")
		e.raw(",")
	}

	e.nl(1)
	e.raw(`"rtt": `)
	e.rtt(sn, 1)
	e.raw(",")
	e.nl(1)
	e.raw(`"experiments": `)
	e.int(sn.Experiments)

	if len(sn.Quarantined) > 0 {
		qs := make([]int64, 0, len(sn.Quarantined))
		for id := range sn.Quarantined {
			qs = append(qs, int64(id))
		}
		sort.Slice(qs, func(a, b int) bool { return qs[a] < qs[b] })
		names, idx := intKeys(qs)
		e.raw(",")
		e.nl(1)
		e.raw(`"quarantined": {`)
		for i, name := range names {
			if i > 0 {
				e.raw(",")
			}
			e.nl(2)
			e.raw(`"` + name + `": `)
			e.str(sn.Quarantined[int(qs[idx[i]])])
		}
		e.nl(1)
		e.raw("}")
	}

	e.nl(0)
	e.raw("}")
	e.raw("\n")
	if e.err != nil {
		return fmt.Errorf("campaign: streaming snapshot: %w", e.err)
	}
	return bw.Flush()
}
