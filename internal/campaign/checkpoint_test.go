package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"anyopt"
	"anyopt/internal/fault"
)

// resumeSites is the singleton schedule used by the resume tests: small
// enough to stay fast, large enough that a "killed" run leaves work behind.
var resumeSites = []int{1, 3, 4, 5}

func newSystem(t *testing.T, faults *fault.Config) *anyopt.System {
	t.Helper()
	opts := anyopt.DefaultOptions()
	opts.Discovery.Faults = faults
	sys, err := anyopt.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCheckpointResumeByteIdentical is the kill-and-restart property: a
// campaign checkpointed mid-run and resumed by a fresh process must produce
// results and probe accounting byte-identical to an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ckpt")

	// Reference: uninterrupted, no checkpoint.
	ref := newSystem(t, nil)
	refTbl, err := ref.Disc.MeasureRTTs(resumeSites)
	if err != nil {
		t.Fatal(err)
	}

	// Partial run, "killed" after three of four experiments.
	part := newSystem(t, nil)
	ck1, err := NewCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	part.Disc.SetJournal(ck1)
	if _, err := part.Disc.MeasureRTTs(resumeSites[:3]); err != nil {
		t.Fatal(err)
	}
	if err := part.Disc.Err(); err != nil {
		t.Fatal(err)
	}
	if ck1.Len() != 3 {
		t.Fatalf("checkpoint holds %d experiments, want 3", ck1.Len())
	}

	// Resume: a fresh system loads the same file and runs the full schedule.
	res := newSystem(t, nil)
	ck2, err := NewCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Len() != 3 {
		t.Fatalf("reloaded checkpoint holds %d experiments, want 3", ck2.Len())
	}
	res.Disc.SetJournal(ck2)
	resTbl, err := res.Disc.MeasureRTTs(resumeSites)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Disc.Err(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(refTbl.Export(), resTbl.Export()) {
		t.Error("resumed campaign results differ from an uninterrupted run")
	}
	if ref.Disc.ProbesSent != res.Disc.ProbesSent {
		t.Errorf("probe accounting diverged: uninterrupted %d vs resumed %d",
			ref.Disc.ProbesSent, res.Disc.ProbesSent)
	}
}

// TestCheckpointResumeReplaysFaultTrace extends the resume property to a
// faulted campaign: replayed experiments must restore their recorded fault
// traces so the resumed campaign's failure log matches the uninterrupted one.
func TestCheckpointResumeReplaysFaultTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	faults := func() *fault.Config {
		return &fault.Config{
			Seed:          5,
			ProbeLossProb: 0.005,
			FlapProb:      0.1,
			FlapWindow:    20 * time.Minute,
			FlapDownMin:   30 * time.Second,
			FlapDownMax:   2 * time.Minute,
		}
	}

	ref := newSystem(t, faults())
	refTbl, err := ref.Disc.MeasureRTTs(resumeSites)
	if err != nil {
		t.Fatal(err)
	}

	part := newSystem(t, faults())
	ck1, err := NewCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	part.Disc.SetJournal(ck1)
	if _, err := part.Disc.MeasureRTTs(resumeSites[:2]); err != nil {
		t.Fatal(err)
	}

	res := newSystem(t, faults())
	ck2, err := NewCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	res.Disc.SetJournal(ck2)
	resTbl, err := res.Disc.MeasureRTTs(resumeSites)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Disc.Err(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(refTbl.Export(), resTbl.Export()) {
		t.Error("faulted resume produced different results")
	}
	if !reflect.DeepEqual(ref.Disc.FaultLog(), res.Disc.FaultLog()) {
		t.Errorf("fault logs diverged: uninterrupted %d lines vs resumed %d",
			len(ref.Disc.FaultLog()), len(res.Disc.FaultLog()))
	}
	if ref.Disc.ProbesSent != res.Disc.ProbesSent {
		t.Errorf("probe accounting diverged: %d vs %d", ref.Disc.ProbesSent, res.Disc.ProbesSent)
	}
}

// TestCheckpointScheduleMismatch pins the safety check: resuming a checkpoint
// against a different campaign schedule is a loud error, never a silent
// misattribution of results.
func TestCheckpointScheduleMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	a := newSystem(t, nil)
	ck1, err := NewCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	a.Disc.SetJournal(ck1)
	if _, err := a.Disc.MeasureRTTs([]int{1}); err != nil {
		t.Fatal(err)
	}

	b := newSystem(t, nil)
	ck2, err := NewCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	b.Disc.SetJournal(ck2)
	b.Disc.RunConfiguration([]int{1, 3}) // kind "config" where the file says "rtt"
	if err := b.Disc.Err(); err == nil || !strings.Contains(err.Error(), "schedule changed") {
		t.Errorf("schedule mismatch not detected: err = %v", err)
	}
}

// TestCheckpointRejectsCorruptFiles: a damaged checkpoint is a clean error —
// never a panic, never silently treated as empty.
func TestCheckpointRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage":       "not json{{{",
		"truncated":     `{"version":1,"entries":{"1":{"kind":"rtt"`,
		"wrong version": `{"version":99,"entries":{}}`,
		"bad nonce key": `{"version":1,"entries":{"x":{"kind":"rtt","result":null,"probes":0}}}`,
	}
	i := 0
	for name, data := range cases {
		i++
		p := filepath.Join(dir, "ck"+string(rune('0'+i)))
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := NewCheckpoint(p); err == nil {
			t.Errorf("%s: corrupt checkpoint loaded without error", name)
		}
	}
	// A missing file is a fresh campaign, not an error.
	ck, err := NewCheckpoint(filepath.Join(dir, "absent.ckpt"))
	if err != nil {
		t.Fatalf("missing checkpoint file: %v", err)
	}
	if ck.Len() != 0 {
		t.Errorf("fresh checkpoint has %d entries", ck.Len())
	}
}

// TestSaveLoadQuarantine rides the snapshot round-trip test for the new
// Quarantined field: a campaign that pulled sites restores them on load.
func TestSaveLoadQuarantine(t *testing.T) {
	src := discovered(t)
	src.Disc.QuarantineSite(11, "blackout: no RTT responses")
	defer src.Disc.RestoreQuarantine(nil)

	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	want := map[int]string{11: "blackout: no RTT responses"}
	if got := dst.Disc.Quarantined(); !reflect.DeepEqual(got, want) {
		t.Errorf("restored quarantine = %v, want %v", got, want)
	}
	if !dst.Disc.IsQuarantined(11) {
		t.Error("site 11 not quarantined after load")
	}
	// Representatives must skip the restored quarantine (NTT falls back from
	// nothing here — 11 is not a representative — but the skip must hold).
	for _, rep := range dst.Disc.Representatives() {
		if rep == 11 {
			t.Error("quarantined site chosen as representative after load")
		}
	}
}
