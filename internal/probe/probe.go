// Package probe is the measurement plane: a Verfploeter-style prober
// (§3.1–3.2) that discovers anycast catchments and measures client↔site RTTs
// with real ICMP/GRE/IPv4 packets carried over the simulated Internet.
//
// Two probe forms exist, matching the paper:
//
//   - Catchment probe: the orchestrator sends an ICMP echo request to a
//     target with the *anycast address as source*. The target's reply is
//     routed by BGP to its catchment site, whose GRE tunnel returns it to
//     the orchestrator; the tunnel key identifies the catchment.
//
//   - RTT probe: the request is first tunneled to a chosen site and emitted
//     there, carrying a transmit timestamp. The orchestrator subtracts the
//     separately measured tunnel RTT from the echo delay to obtain the
//     site↔target RTT. Seven attempts are made and the median taken; at
//     least three valid replies are required (§3.1).
package probe

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"slices"
	"sort"
	"time"

	"anyopt/internal/netproto"
)

// ErrLost marks a probe lost in transit.
var ErrLost = errors.New("probe: packet lost")

// ErrUnreachable marks a target with no route to (or from) the prefix.
var ErrUnreachable = errors.New("probe: no route")

// Fabric delivers a probe packet and returns the reply as received at the
// orchestrator. req is the raw packet the orchestrator emits: either an
// IPv4(ICMP) probe sent directly, or IPv4(GRE(IPv4(ICMP))) tunneled via a
// site. The reply is always IPv4(GRE(IPv4(ICMP))) — anycast replies come
// back through a site tunnel. sentAt is the virtual transmit time; recvAt is
// the virtual receive time.
type Fabric interface {
	Probe(req []byte, sentAt time.Duration) (resp []byte, recvAt time.Duration, err error)
}

// Config parameterizes a Prober.
type Config struct {
	// OrchAddr is the orchestrator's unicast address (outer tunnel source).
	OrchAddr netip.Addr
	// AnycastAddr is the anycast address used as probe source.
	AnycastAddr netip.Addr
	// Attempts is the number of echo requests per RTT measurement
	// (paper: 7).
	Attempts int
	// MinValid is the minimum valid replies for a usable median (paper: 3).
	MinValid int
	// Gap spaces successive probe transmissions in virtual time.
	Gap time.Duration
}

// DefaultConfig mirrors the paper's choices.
func DefaultConfig(orch, anycast netip.Addr) Config {
	return Config{
		OrchAddr:    orch,
		AnycastAddr: anycast,
		Attempts:    7,
		MinValid:    3,
		Gap:         10 * time.Millisecond,
	}
}

// Prober issues measurement probes over a Fabric.
type Prober struct {
	cfg    Config
	fabric Fabric
	clock  time.Duration
	seq    uint16
	id     uint16

	// Sent and Received count probes for reporting.
	Sent, Received uint64

	// Scratch reused across probes: packets are built append-style and
	// parsed with the zero-copy Unmarshal variants, so steady-state probing
	// allocates nothing per packet. Probers are single-goroutine, like the
	// experiments that own them.
	tsBuf   [8]byte
	echoBuf []byte
	pktBuf  []byte
	greBuf  []byte
	reqBuf  []byte
	samples []time.Duration
}

// New creates a prober. The virtual clock starts at start.
func New(fabric Fabric, cfg Config, start time.Duration) *Prober {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 7
	}
	if cfg.MinValid <= 0 {
		cfg.MinValid = 3
	}
	if cfg.Gap <= 0 {
		cfg.Gap = 10 * time.Millisecond
	}
	return &Prober{cfg: cfg, fabric: fabric, clock: start, id: 0x4f50 /* "OP" */}
}

// Clock returns the prober's current virtual time.
func (p *Prober) Clock() time.Duration { return p.clock }

// TargetSeeder is implemented by fabrics (and fault models) whose random
// streams can be rewound to a per-target position, making each target's
// measurement independent of probe order.
type TargetSeeder interface {
	BeginTarget(id uint64)
}

// BeginTarget marks the start of probing one target, rewinding the fabric's
// noise/fault streams to that target's position if the fabric supports it.
// Callers that probe a subset of targets rely on this for reproducibility
// against a full sweep.
func (p *Prober) BeginTarget(id uint64) {
	if ts, ok := p.fabric.(TargetSeeder); ok {
		ts.BeginTarget(id)
	}
}

// buildEcho constructs the inner IPv4(ICMP echo request) with the anycast
// source address and a transmit timestamp. The returned packet aliases the
// prober's scratch buffer, valid until the next buildEcho call.
func (p *Prober) buildEcho(dst netip.Addr) ([]byte, error) {
	p.seq++
	echo := netproto.ICMPEcho{Type: netproto.ICMPEchoRequest, ID: p.id, Seq: p.seq, Payload: p.tsBuf[:]}
	echo.EncodeTimestamp(p.clock)
	p.echoBuf = echo.AppendMarshal(p.echoBuf[:0])
	inner := netproto.IPv4{
		TTL: 64, Protocol: netproto.ProtoICMP,
		Src: p.cfg.AnycastAddr, Dst: dst,
	}
	var err error
	p.pktBuf, err = inner.AppendMarshal(p.pktBuf[:0], p.echoBuf)
	if err != nil {
		return nil, err
	}
	return p.pktBuf, nil
}

// parseReply unwraps IPv4(GRE(IPv4(ICMP echo reply))) and returns the tunnel
// key and the echoed timestamp.
func (p *Prober) parseReply(resp []byte) (key uint32, ts time.Duration, err error) {
	// Headers live on the stack and payloads alias resp: parsing a reply
	// costs no allocations.
	var outer netproto.IPv4
	grePayload, err := outer.Unmarshal(resp)
	if err != nil {
		return 0, 0, fmt.Errorf("probe: outer header: %w", err)
	}
	if outer.Protocol != netproto.ProtoGRE {
		return 0, 0, fmt.Errorf("probe: reply protocol %d, want GRE", outer.Protocol)
	}
	if outer.Dst != p.cfg.OrchAddr {
		return 0, 0, fmt.Errorf("probe: reply delivered to %v, want orchestrator %v", outer.Dst, p.cfg.OrchAddr)
	}
	var gre netproto.GRE
	ipPayload, err := gre.Unmarshal(grePayload)
	if err != nil {
		return 0, 0, fmt.Errorf("probe: GRE: %w", err)
	}
	if !gre.KeyPresent {
		return 0, 0, fmt.Errorf("probe: reply tunnel carries no key")
	}
	var inner netproto.IPv4
	icmpBytes, err := inner.Unmarshal(ipPayload)
	if err != nil {
		return 0, 0, fmt.Errorf("probe: inner header: %w", err)
	}
	if inner.Dst != p.cfg.AnycastAddr {
		return 0, 0, fmt.Errorf("probe: inner reply to %v, want anycast %v", inner.Dst, p.cfg.AnycastAddr)
	}
	var echo netproto.ICMPEcho
	if err := echo.Unmarshal(icmpBytes); err != nil {
		return 0, 0, fmt.Errorf("probe: ICMP: %w", err)
	}
	if echo.Type != netproto.ICMPEchoReply {
		return 0, 0, fmt.Errorf("probe: ICMP type %d, want echo reply", echo.Type)
	}
	ts, err = echo.DecodeTimestamp()
	if err != nil {
		return 0, 0, err
	}
	return gre.Key, ts, nil
}

// Catchment sends one catchment probe to dst and returns the tunnel key of
// the site the reply came back through.
func (p *Prober) Catchment(dst netip.Addr) (uint32, error) {
	req, err := p.buildEcho(dst)
	if err != nil {
		return 0, err
	}
	p.Sent++
	sentAt := p.clock
	p.clock += p.cfg.Gap
	resp, recvAt, err := p.fabric.Probe(req, sentAt)
	if err != nil {
		return 0, err
	}
	p.Received++
	if recvAt > p.clock {
		p.clock = recvAt
	}
	key, _, err := p.parseReply(resp)
	return key, err
}

// CatchmentRetry probes up to attempts times, tolerating loss.
func (p *Prober) CatchmentRetry(dst netip.Addr, attempts int) (uint32, error) {
	var lastErr error
	for i := 0; i < attempts; i++ {
		key, err := p.Catchment(dst)
		if err == nil {
			return key, nil
		}
		lastErr = err
		if errors.Is(err, ErrUnreachable) {
			break // retries won't help
		}
	}
	return 0, lastErr
}

// RTT measures the round-trip time between the site behind tunnelKey and dst
// using the paper's methodology: tunnel the request to the site, echo a
// timestamp, take the median of Attempts samples, subtract tunnelRTT.
func (p *Prober) RTT(tunnelKey uint32, siteAddr netip.Addr, tunnelRTT time.Duration, dst netip.Addr) (time.Duration, error) {
	p.samples = p.samples[:0]
	var lastErr error
	for i := 0; i < p.cfg.Attempts; i++ {
		inner, err := p.buildEcho(dst)
		if err != nil {
			return 0, err
		}
		gre := netproto.GRE{Protocol: netproto.EtherTypeIPv4, KeyPresent: true, Key: tunnelKey}
		outer := netproto.IPv4{
			TTL: 64, Protocol: netproto.ProtoGRE,
			Src: p.cfg.OrchAddr, Dst: siteAddr,
		}
		p.greBuf = gre.AppendMarshal(p.greBuf[:0], inner)
		p.reqBuf, err = outer.AppendMarshal(p.reqBuf[:0], p.greBuf)
		if err != nil {
			return 0, err
		}
		req := p.reqBuf
		p.Sent++
		sentAt := p.clock
		p.clock += p.cfg.Gap
		resp, recvAt, err := p.fabric.Probe(req, sentAt)
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrUnreachable) {
				break
			}
			continue
		}
		p.Received++
		if recvAt > p.clock {
			p.clock = recvAt
		}
		_, ts, err := p.parseReply(resp)
		if err != nil {
			lastErr = err
			continue
		}
		p.samples = append(p.samples, recvAt-ts)
	}
	if len(p.samples) < p.cfg.MinValid {
		if lastErr == nil {
			lastErr = ErrLost
		}
		return 0, fmt.Errorf("probe: only %d of %d samples valid: %w", len(p.samples), p.cfg.Attempts, lastErr)
	}
	// Median in place on the scratch slice; sample order is never reused.
	slices.Sort(p.samples)
	rtt := p.samples[(len(p.samples)-1)/2] - tunnelRTT
	if rtt < 0 {
		rtt = 0
	}
	return rtt, nil
}

// median returns the median of samples (lower middle for even counts).
func median(samples []time.Duration) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// FaultModel injects deterministic measurement-plane faults on top of the
// baseline noise. internal/fault's Injector implements it; the indirection
// keeps this package free of a fault dependency.
type FaultModel interface {
	// DropProbe reports whether the next packet traversal is lost.
	DropProbe() bool
	// SiteDead reports whether a site is blacked out: its tunnel endpoint
	// answers nothing and replies reaching it die there.
	SiteDead(siteID int) bool
}

// NoiseModel injects measurement noise into path delays, as the real
// Internet would.
type NoiseModel struct {
	rng  *rand.Rand
	seed int64
	// JitterFrac scales multiplicative jitter (|N(0,1)|·frac of the delay).
	JitterFrac float64
	// SpikeProb is the chance of a queuing spike per traversal.
	SpikeProb float64
	// SpikeMax bounds a spike's added delay.
	SpikeMax time.Duration
	// LossProb is the chance a packet is dropped per traversal.
	LossProb float64
}

// NewNoiseModel builds a model with the given seed. Zero-value fractions mean
// a noise-free channel.
func NewNoiseModel(seed int64, jitterFrac, spikeProb float64, spikeMax time.Duration, lossProb float64) *NoiseModel {
	return &NoiseModel{
		rng:        rand.New(rand.NewSource(seed)),
		seed:       seed,
		JitterFrac: jitterFrac,
		SpikeProb:  spikeProb,
		SpikeMax:   spikeMax,
		LossProb:   lossProb,
	}
}

// splitmix64 is the finalizer of the splitmix64 generator, used to fold a
// target identity into a noise seed with full avalanche.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// BeginTarget rewinds the noise stream to a position derived only from the
// model's base seed and the given target identity. Draws for one target are
// then independent of which (or how many) other targets were probed before
// it — the property that lets a cone-scoped repair campaign skip targets and
// still reproduce the full campaign's measurements byte-for-byte.
func (n *NoiseModel) BeginTarget(id uint64) {
	if n == nil {
		return
	}
	n.rng.Seed(int64(splitmix64(uint64(n.seed)^id) >> 1))
}

// DefaultNoise matches a well-behaved Internet path: ~2% jitter, occasional
// spikes, 1% loss.
func DefaultNoise(seed int64) *NoiseModel {
	return NewNoiseModel(seed, 0.02, 0.02, 25*time.Millisecond, 0.01)
}

// Apply perturbs a one-way delay and reports whether the packet survived.
func (n *NoiseModel) Apply(d time.Duration) (time.Duration, bool) {
	if n == nil {
		return d, true
	}
	if n.LossProb > 0 && n.rng.Float64() < n.LossProb {
		return 0, false
	}
	out := d
	if n.JitterFrac > 0 {
		j := n.rng.NormFloat64()
		if j < 0 {
			j = -j
		}
		out += time.Duration(float64(d) * j * n.JitterFrac)
	}
	if n.SpikeProb > 0 && n.rng.Float64() < n.SpikeProb {
		out += time.Duration(n.rng.Int63n(int64(n.SpikeMax)))
	}
	return out, true
}
