package probe

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"anyopt/internal/netproto"

	"anyopt/internal/bgp"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

// rig bundles a converged deployment and a fabric over it.
type rig struct {
	tb   *testbed.Testbed
	topo *topology.Topology
	sim  *bgp.Sim
	dep  *testbed.Deployment
}

func newRig(t testing.TB, sites ...int) *rig {
	t.Helper()
	topo, err := topology.Generate(topology.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := testbed.New(topo, testbed.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim := bgp.New(topo, bgp.DefaultConfig())
	dep := tb.NewDeployment(sim, 0)
	if len(sites) > 0 {
		dep.AnnounceSites(sites...)
	}
	return &rig{tb: tb, topo: topo, sim: sim, dep: dep}
}

func (r *rig) prober(noise *NoiseModel) *Prober {
	fab := NewSimFabric(r.tb, r.sim, 0, noise)
	return New(fab, DefaultConfig(r.tb.OrchAddr, r.tb.AnycastAddrs[0]), r.sim.Engine.Now())
}

func TestCatchmentProbeIdentifiesSite(t *testing.T) {
	r := newRig(t, 1, 4, 6)
	p := r.prober(nil)

	enabled := map[int]bool{1: true, 4: true, 6: true}
	for _, tg := range r.topo.Targets[:100] {
		key, err := p.Catchment(tg.Addr)
		if err != nil {
			t.Fatalf("target %v: %v", tg.Addr, err)
		}
		site := r.tb.SiteByTunnelKey(key)
		if site == nil || !enabled[site.ID] {
			t.Fatalf("target %v caught by key %d (site %v)", tg.Addr, key, site)
		}
		// Cross-check against ground truth forwarding.
		fw, ok := r.sim.Forward(0, tg)
		if !ok {
			t.Fatal("ground truth unroutable")
		}
		if r.tb.SiteByLink(fw.EntryLink) != site {
			t.Fatalf("probe key %d disagrees with forwarding ground truth", key)
		}
		if link, ok := r.tb.LinkByTunnelKey(key); !ok || link != fw.EntryLink {
			t.Fatalf("tunnel key %d decodes to link %d, ground truth %d", key, link, fw.EntryLink)
		}
	}
	if p.Sent == 0 || p.Received != p.Sent {
		t.Errorf("sent/received = %d/%d with noise-free fabric", p.Sent, p.Received)
	}
}

func TestRTTProbeMatchesGroundTruth(t *testing.T) {
	// Single-site announcement (§3.1 RTT methodology). Noise-free: measured
	// RTT must equal 2× the forwarding delay exactly (tunnel RTT cancels).
	r := newRig(t, 4)
	p := r.prober(nil)
	site := r.tb.Site(4)

	for _, tg := range r.topo.Targets[:50] {
		rtt, err := p.RTT(site.TunnelKey, site.TunnelAddr, site.TunnelRTT, tg.Addr)
		if err != nil {
			t.Fatalf("target %v: %v", tg.Addr, err)
		}
		fw, ok := r.sim.Forward(0, tg)
		if !ok {
			t.Fatal("unroutable")
		}
		want := 2 * fw.Delay
		if d := rtt - want; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("target %v: RTT %v, ground truth %v", tg.Addr, rtt, want)
		}
	}
}

func TestRTTWithNoiseIsClose(t *testing.T) {
	r := newRig(t, 4)
	p := r.prober(DefaultNoise(7))
	site := r.tb.Site(4)

	var relErrs []float64
	for _, tg := range r.topo.Targets[:60] {
		rtt, err := p.RTT(site.TunnelKey, site.TunnelAddr, site.TunnelRTT, tg.Addr)
		if err != nil {
			continue // occasional loss bursts are fine
		}
		fw, _ := r.sim.Forward(0, tg)
		want := 2 * fw.Delay
		relErrs = append(relErrs, math.Abs(float64(rtt-want))/float64(want))
	}
	if len(relErrs) < 50 {
		t.Fatalf("only %d/60 measurements succeeded", len(relErrs))
	}
	sum := 0.0
	for _, e := range relErrs {
		sum += e
	}
	if mean := sum / float64(len(relErrs)); mean > 0.10 {
		t.Errorf("mean relative RTT error %.1f%% under default noise; median-of-7 should keep this under 10%%", mean*100)
	}
}

func TestProbeLossRetry(t *testing.T) {
	r := newRig(t, 1)
	// Heavy loss: 30%. CatchmentRetry with 7 attempts should still almost
	// always succeed; RTT needs ≥3 of 7 valid.
	p := r.prober(NewNoiseModel(3, 0, 0, 0, 0.30))

	ok := 0
	for _, tg := range r.topo.Targets[:80] {
		if _, err := p.CatchmentRetry(tg.Addr, 7); err == nil {
			ok++
		}
	}
	if float64(ok) < 0.95*80 {
		t.Errorf("only %d/80 catchment probes succeeded under 30%% loss with 7 retries", ok)
	}
}

func TestRTTFailsWhenTooFewSamples(t *testing.T) {
	r := newRig(t, 1)
	p := r.prober(NewNoiseModel(3, 0, 0, 0, 1.0)) // 100% loss
	site := r.tb.Site(1)
	if _, err := p.RTT(site.TunnelKey, site.TunnelAddr, site.TunnelRTT, r.topo.Targets[0].Addr); err == nil {
		t.Error("RTT succeeded with 100% loss")
	}
}

func TestUnreachableWhenNothingAnnounced(t *testing.T) {
	r := newRig(t) // no sites announced
	p := r.prober(nil)
	_, err := p.Catchment(r.topo.Targets[0].Addr)
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestUnknownTargetRejected(t *testing.T) {
	r := newRig(t, 1)
	p := r.prober(nil)
	if _, err := p.Catchment(r.tb.OrchAddr); err == nil {
		t.Error("probing a non-target address succeeded")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []time.Duration
		want time.Duration
	}{
		{[]time.Duration{5}, 5},
		{[]time.Duration{1, 9, 5}, 5},
		{[]time.Duration{9, 1, 5, 7}, 5},
		{[]time.Duration{3, 3, 3, 100, 200, 3, 3}, 3}, // outliers filtered
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNoiseModelProperties(t *testing.T) {
	n := DefaultNoise(1)
	base := 50 * time.Millisecond
	survived, total := 0, 5000
	var sum time.Duration
	for i := 0; i < total; i++ {
		d, ok := n.Apply(base)
		if !ok {
			continue
		}
		survived++
		if d < base {
			t.Fatalf("noise shrank delay: %v < %v", d, base)
		}
		sum += d
	}
	lossRate := 1 - float64(survived)/float64(total)
	if lossRate < 0.002 || lossRate > 0.03 {
		t.Errorf("loss rate %.3f outside [0.002, 0.03] for 1%% nominal", lossRate)
	}
	mean := sum / time.Duration(survived)
	if mean < base || mean > base+5*time.Millisecond {
		t.Errorf("mean noisy delay %v implausible for base %v", mean, base)
	}
	// Nil model is a pass-through.
	var nilModel *NoiseModel
	if d, ok := nilModel.Apply(base); !ok || d != base {
		t.Error("nil noise model altered the packet")
	}
}

func TestClockAdvances(t *testing.T) {
	r := newRig(t, 1)
	p := r.prober(nil)
	t0 := p.Clock()
	if _, err := p.Catchment(r.topo.Targets[0].Addr); err != nil {
		t.Fatal(err)
	}
	if p.Clock() <= t0 {
		t.Error("virtual clock did not advance across a probe")
	}
}

func BenchmarkCatchmentProbe(b *testing.B) {
	r := newRig(b, 1, 4, 6)
	p := r.prober(nil)
	tg := r.topo.Targets[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Catchment(tg.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFabricPcapCapture(t *testing.T) {
	r := newRig(t, 1, 4)
	fab := NewSimFabric(r.tb, r.sim, 0, nil)
	var buf bytes.Buffer
	w, err := netproto.NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fab.Capture = w
	p := New(fab, DefaultConfig(r.tb.OrchAddr, r.tb.AnycastAddrs[0]), 0)

	n := 5
	for _, tg := range r.topo.Targets[:n] {
		if _, err := p.Catchment(tg.Addr); err != nil {
			t.Fatal(err)
		}
	}
	// One request + one reply per probe.
	if w.Count() != 2*n {
		t.Fatalf("captured %d packets, want %d", w.Count(), 2*n)
	}
	_, packets, stamps, err := netproto.ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) != 2*n {
		t.Fatalf("parsed %d packets", len(packets))
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatalf("capture timestamps not monotone at %d", i)
		}
	}
	// Every captured packet must parse as IPv4.
	for i, pkt := range packets {
		if _, _, err := netproto.ParseIPv4(pkt); err != nil {
			t.Fatalf("packet %d unparseable: %v", i, err)
		}
	}
}
