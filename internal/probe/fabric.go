package probe

import (
	"fmt"
	"time"

	"anyopt/internal/bgp"
	"anyopt/internal/netproto"
	"anyopt/internal/testbed"
)

// SimFabric carries probe packets over the simulated Internet: requests leave
// the orchestrator (optionally via a site's GRE tunnel), replies follow the
// BGP forwarding state of the given prefix back to a catchment site and
// return through that site's tunnel.
type SimFabric struct {
	TB     *testbed.Testbed
	Sim    *bgp.Sim
	Prefix bgp.PrefixID
	// Noise perturbs every traversal; nil means a noise-free channel.
	Noise *NoiseModel
	// Fault, when non-nil, injects deterministic measurement-plane faults on
	// top of the baseline noise: extra per-traversal probe loss and
	// blacked-out sites whose tunnels answer nothing.
	Fault FaultModel
	// Capture, when set, records every request and reply the orchestrator
	// sees as raw-IP pcap records at their virtual timestamps — openable in
	// tcpdump/Wireshark for debugging the measurement plane.
	Capture *netproto.PcapWriter

	// Scratch reused across probes for reply assembly; a fabric serves one
	// single-goroutine experiment. The returned reply aliases wireBuf,
	// valid until the next Probe call.
	echoBuf  []byte
	innerBuf []byte
	greBuf   []byte
	wireBuf  []byte
}

// NewSimFabric builds a fabric for one prefix. Target lookup uses the
// testbed's shared by-address index rather than a per-fabric copy.
func NewSimFabric(tb *testbed.Testbed, sim *bgp.Sim, prefix bgp.PrefixID, noise *NoiseModel) *SimFabric {
	return &SimFabric{TB: tb, Sim: sim, Prefix: prefix, Noise: noise}
}

// Probe implements Fabric.
func (f *SimFabric) Probe(req []byte, sentAt time.Duration) ([]byte, time.Duration, error) {
	if f.Capture != nil {
		f.Capture.WritePacket(sentAt, req)
	}
	resp, recvAt, err := f.probe(req, sentAt)
	if err == nil && f.Capture != nil {
		f.Capture.WritePacket(recvAt, resp)
	}
	return resp, recvAt, err
}

// probe carries the packet over the simulated Internet. Header structs stay
// on the stack and payloads alias req, so the parse side allocates nothing.
func (f *SimFabric) probe(req []byte, sentAt time.Duration) ([]byte, time.Duration, error) {
	var outer netproto.IPv4
	payload, err := outer.Unmarshal(req)
	if err != nil {
		return nil, 0, fmt.Errorf("probe: malformed request: %w", err)
	}

	var inner netproto.IPv4
	var icmpBytes []byte
	var fwdDelay time.Duration // orchestrator → target

	switch outer.Protocol {
	case netproto.ProtoGRE:
		// RTT-mode probe: tunneled to a site, emitted there.
		var gre netproto.GRE
		ipPayload, err := gre.Unmarshal(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("probe: request GRE: %w", err)
		}
		if !gre.KeyPresent {
			return nil, 0, fmt.Errorf("probe: tunneled request without key")
		}
		site := f.TB.SiteByTunnelKey(gre.Key)
		if site == nil {
			return nil, 0, fmt.Errorf("probe: unknown tunnel key %d", gre.Key)
		}
		if f.Fault != nil && f.Fault.SiteDead(site.ID) {
			// The site is blacked out: its tunnel endpoint answers nothing,
			// so probing via it can never succeed.
			return nil, 0, ErrUnreachable
		}
		icmpBytes, err = inner.Unmarshal(ipPayload)
		if err != nil {
			return nil, 0, fmt.Errorf("probe: inner request: %w", err)
		}
		target, ok := f.TB.TargetByAddr(inner.Dst)
		if !ok {
			return nil, 0, fmt.Errorf("probe: unknown target %v", inner.Dst)
		}
		// Orchestrator → site over the tunnel, then site → target. The
		// site→target leg mirrors the BGP return path of the reply.
		// CatchmentEntry is Forward on the memoized fast path — the AS path
		// is never needed here.
		entry, fwd, routed := f.Sim.CatchmentEntry(f.Prefix, target)
		if !routed || f.TB.SiteByLink(entry) == nil {
			return nil, 0, ErrUnreachable
		}
		fwdDelay = site.TunnelRTT/2 + fwd

	case netproto.ProtoICMP:
		// Catchment-mode probe: sent directly toward the target.
		inner, icmpBytes = outer, payload
		target, ok := f.TB.TargetByAddr(inner.Dst)
		if !ok {
			return nil, 0, fmt.Errorf("probe: unknown target %v", inner.Dst)
		}
		// Direct unicast leg orchestrator → target.
		fwdDelay = f.TB.Topo.Model.RTT(f.TB.OrchCoord, f.TB.Topo.AS(target.AS).Coord, 8) / 2

	default:
		return nil, 0, fmt.Errorf("probe: request protocol %d unsupported", outer.Protocol)
	}

	var echo netproto.ICMPEcho
	if err := echo.Unmarshal(icmpBytes); err != nil {
		return nil, 0, fmt.Errorf("probe: request ICMP: %w", err)
	}
	if echo.Type != netproto.ICMPEchoRequest {
		return nil, 0, fmt.Errorf("probe: request ICMP type %d", echo.Type)
	}
	target, _ := f.TB.TargetByAddr(inner.Dst)

	// Request leg noise and loss.
	fwdDelay, alive := f.noise(fwdDelay)
	if !alive {
		return nil, 0, ErrLost
	}

	// The target replies to the anycast source; BGP routes it to the
	// catchment site.
	entryLink, retDelay0, ok := f.Sim.CatchmentEntry(f.Prefix, target)
	if !ok {
		return nil, 0, ErrUnreachable
	}
	site := f.TB.SiteByLink(entryLink)
	if site == nil {
		return nil, 0, fmt.Errorf("probe: reply entered over non-testbed link %d", entryLink)
	}
	if f.Fault != nil && f.Fault.SiteDead(site.ID) {
		// Blacked-out catchment site: the reply dies there instead of
		// returning through the tunnel.
		return nil, 0, ErrUnreachable
	}
	retDelay, alive := f.noise(retDelay0)
	if !alive {
		return nil, 0, ErrLost
	}
	// Site → orchestrator through the GRE tunnel.
	tunnelBack, alive := f.noise(site.TunnelRTT / 2)
	if !alive {
		return nil, 0, ErrLost
	}

	// Assemble the reply exactly as the site router would hand it up:
	// IPv4(orch←site, GRE(key, IPv4(anycast←target, ICMP echo reply))).
	// Built append-style into the fabric's scratch buffers; the echoed
	// payload still aliases req, which stays alive through the copy.
	reply := netproto.ICMPEcho{Type: netproto.ICMPEchoReply, ID: echo.ID, Seq: echo.Seq, Payload: echo.Payload}
	f.echoBuf = reply.AppendMarshal(f.echoBuf[:0])
	replyInner := netproto.IPv4{
		TTL: 60, Protocol: netproto.ProtoICMP,
		Src: inner.Dst, Dst: inner.Src,
	}
	f.innerBuf, err = replyInner.AppendMarshal(f.innerBuf[:0], f.echoBuf)
	if err != nil {
		return nil, 0, err
	}
	ord := site.LinkOrdinal(entryLink)
	if ord < 0 {
		return nil, 0, fmt.Errorf("probe: entry link %d not registered at site %d", entryLink, site.ID)
	}
	gre := netproto.GRE{
		Protocol:   netproto.EtherTypeIPv4,
		KeyPresent: true,
		Key:        testbed.EncodeTunnelKey(site.TunnelKey, ord),
	}
	f.greBuf = gre.AppendMarshal(f.greBuf[:0], f.innerBuf)
	replyOuter := netproto.IPv4{
		TTL: 62, Protocol: netproto.ProtoGRE,
		Src: site.TunnelAddr, Dst: f.TB.OrchAddr,
	}
	f.wireBuf, err = replyOuter.AppendMarshal(f.wireBuf[:0], f.greBuf)
	if err != nil {
		return nil, 0, err
	}
	return f.wireBuf, sentAt + fwdDelay + retDelay + tunnelBack, nil
}

// BeginTarget rewinds the fabric's noise stream — and the fault injector's
// probe-loss stream, when the injected FaultModel supports it — to the
// position derived from the target identity. See Prober.BeginTarget.
func (f *SimFabric) BeginTarget(id uint64) {
	f.Noise.BeginTarget(id)
	if ts, ok := f.Fault.(TargetSeeder); ok {
		ts.BeginTarget(id)
	}
}

// noise perturbs one traversal leg: injected fault loss first, then the
// baseline noise model.
func (f *SimFabric) noise(d time.Duration) (time.Duration, bool) {
	if f.Fault != nil && f.Fault.DropProbe() {
		return 0, false
	}
	if f.Noise == nil {
		return d, true
	}
	return f.Noise.Apply(d)
}
