package netproto

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Two real probe packets.
	echo := &ICMPEcho{Type: ICMPEchoRequest, ID: 7, Seq: 1}
	echo.EncodeTimestamp(5 * time.Millisecond)
	ip := &IPv4{TTL: 64, Protocol: ProtoICMP,
		Src: netip.MustParseAddr("203.0.113.10"), Dst: netip.MustParseAddr("10.0.0.1")}
	pkt1, err := ip.Marshal(echo.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	gre := &GRE{Protocol: EtherTypeIPv4, KeyPresent: true, Key: 3}
	outer := &IPv4{TTL: 62, Protocol: ProtoGRE,
		Src: netip.MustParseAddr("192.0.2.10"), Dst: netip.MustParseAddr("192.0.2.1")}
	pkt2, err := outer.Marshal(gre.Marshal(pkt1))
	if err != nil {
		t.Fatal(err)
	}

	if err := w.WritePacket(time.Second, pkt1); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Second+1500*time.Microsecond, pkt2); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Errorf("count = %d", w.Count())
	}

	linkType, packets, stamps, err := ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if linkType != LinkTypeRaw {
		t.Errorf("link type = %d", linkType)
	}
	if len(packets) != 2 {
		t.Fatalf("packets = %d", len(packets))
	}
	if !bytes.Equal(packets[0], pkt1) || !bytes.Equal(packets[1], pkt2) {
		t.Error("packet bytes mangled")
	}
	if stamps[0] != time.Second || stamps[1] != time.Second+1500*time.Microsecond {
		t.Errorf("timestamps = %v", stamps)
	}

	// The recorded packets still parse as valid protocol stacks.
	hdr, payload, err := ParseIPv4(packets[1])
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Protocol != ProtoGRE {
		t.Errorf("outer protocol = %d", hdr.Protocol)
	}
	g, inner, err := ParseGRE(payload)
	if err != nil {
		t.Fatal(err)
	}
	if g.Key != 3 {
		t.Errorf("tunnel key = %d", g.Key)
	}
	if _, _, err := ParseIPv4(inner); err != nil {
		t.Fatal(err)
	}
}

func TestPcapEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewPcapWriter(&buf); err != nil {
		t.Fatal(err)
	}
	_, packets, _, err := ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) != 0 {
		t.Errorf("packets in empty capture: %d", len(packets))
	}
}

func TestPcapErrors(t *testing.T) {
	if _, _, _, err := ReadPcap(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header accepted")
	}
	bad := make([]byte, 24)
	if _, _, _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	if err := w.WritePacket(0, make([]byte, pcapSnapLen+1)); err == nil {
		t.Error("oversize packet accepted")
	}
}
